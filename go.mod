module anydb

go 1.24

package anydb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anydb"
)

// openWide opens a cluster with more warehouses than executors, so
// placement actually matters: warehouses w and w+4 share an owner AC
// under the default w%4 layout.
func openWide(t testing.TB, cfg anydb.Config) *anydb.Cluster {
	t.Helper()
	if cfg.Warehouses == 0 {
		cfg.Warehouses = 8
	}
	if cfg.Districts == 0 {
		cfg.Districts = 2
	}
	if cfg.CustomersPerDistrict == 0 {
		cfg.CustomersPerDistrict = 50
	}
	if cfg.InitialOrdersPerDist == 0 {
		cfg.InitialOrdersPerDist = 10
	}
	if cfg.Items == 0 {
		cfg.Items = 40
	}
	c, err := anydb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestRebalanceMovesPlacementLive: a manual Rebalance under live
// traffic must change the observable placement, keep every transaction
// exactly-once, and leave a consistent database.
func TestRebalanceMovesPlacementLive(t *testing.T) {
	c := openWide(t, anydb.Config{})
	before := c.Placement()
	for _, srv := range before {
		if srv != 0 {
			t.Fatalf("initial placement off the executor server: %v", before)
		}
	}

	// Light concurrent traffic on the moving warehouse while the
	// handoff runs.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Payment(anydb.Payment{Warehouse: 2, District: 1, Customer: 1 + i%50, Amount: 1})
		}
	}()

	if err := c.Rebalance(bg, 2, 1); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	after := c.Placement()
	if after[2] != 1 {
		t.Fatalf("warehouse 2 still on server %d after Rebalance: %v", after[2], after)
	}
	// Traffic keeps flowing to the moved warehouse under its new owner.
	for i := 0; i < 50; i++ {
		ok, err := c.Payment(anydb.Payment{Warehouse: 2, District: 1, Customer: 1 + i%50, Amount: 1})
		if err != nil || !ok {
			t.Fatalf("post-move payment: ok=%v err=%v", ok, err)
		}
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d", n)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceValidation covers the manual API's error surface.
func TestRebalanceValidation(t *testing.T) {
	c := openWide(t, anydb.Config{})
	if err := c.Rebalance(bg, -1, 0); err == nil {
		t.Fatal("negative warehouse accepted")
	}
	if err := c.Rebalance(bg, 99, 0); err == nil {
		t.Fatal("out-of-range warehouse accepted")
	}
	if err := c.Rebalance(bg, 0, 7); err == nil {
		t.Fatal("unknown server accepted")
	}
	// Self-driving placement rejects manual moves, mirroring SetPolicy.
	auto := openWide(t, anydb.Config{AutoRebalance: true})
	if err := auto.Rebalance(bg, 0, 1); err == nil {
		t.Fatal("manual Rebalance accepted on an AutoRebalance cluster")
	}
	// ...but the policy stays manually ownable without AutoAdapt.
	if err := auto.SetPolicy(bg, anydb.StreamingCC); err != nil {
		t.Fatalf("SetPolicy on a rebalance-only cluster: %v", err)
	}
}

// TestRebalanceCanceledAbandons: a deadline-bounded Rebalance racing a
// long drain must give up with placement unchanged and the partition
// gate fully released.
func TestRebalanceCanceledAbandons(t *testing.T) {
	c := openWide(t, anydb.Config{})
	// A slow analytical query holds the query bit of the partition
	// accounting, so the handoff's drain cannot finish in time.
	qdone := make(chan error, 1)
	go func() {
		_, err := c.OpenOrdersOpts(bg, anydb.QueryOptions{Beam: true, CompileDelay: 500 * time.Millisecond})
		qdone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	before := c.Placement()
	short, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if err := c.Rebalance(short, 3, 1); err == nil {
		t.Fatal("Rebalance landed under a live analytical query within 50ms")
	}
	if got := c.Placement(); got[3] != before[3] {
		t.Fatalf("abandoned move changed placement: %v -> %v", before, got)
	}
	if err := <-qdone; err != nil {
		t.Fatal(err)
	}
	// The gate must be fully released: submissions and a fresh move work.
	if ok, err := c.Payment(anydb.Payment{Warehouse: 3, District: 1, Customer: 1, Amount: 1}); err != nil || !ok {
		t.Fatalf("post-abandon payment: ok=%v err=%v", ok, err)
	}
	if err := c.Rebalance(bg, 3, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Placement(); got[3] != 1 {
		t.Fatalf("retried move did not land: %v", got)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceStress is the live-handoff contract under the race
// detector: pipelined payments AND new-orders from many sessions, a
// policy churner flipping the routing, and a mover bouncing warehouse
// ownership between servers — all concurrently. Every submission must
// resolve exactly once (UnmatchedDone stays 0) and the TPC-C
// consistency conditions must hold at the end.
func TestRebalanceStress(t *testing.T) {
	assertBalanced := trackPools(t)
	c := openWide(t, anydb.Config{Servers: 3})
	const workers = 6
	const window = 24
	var committed, rolledBack atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			futs := make([]*anydb.Future, 0, window)
			flush := func() bool {
				for _, f := range futs {
					ok, werr := f.Wait(bg)
					if werr != nil {
						errs <- fmt.Errorf("worker %d: wait: %v", g, werr)
						return false
					}
					if ok {
						committed.Add(1)
					} else {
						rolledBack.Add(1)
					}
				}
				futs = futs[:0]
				return true
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				var f *anydb.Future
				var serr error
				if i%3 == 2 {
					// Cross-partition new-orders keep multi-bit masks in
					// play (home + supply warehouse), including the
					// moving warehouse.
					f, serr = c.SubmitNewOrder(bg, anydb.NewOrder{
						Warehouse: (g + i) % 8, District: 1 + i%2, Customer: 1 + i%50,
						Lines: []anydb.OrderLine{
							{Item: i % 40, Qty: 1, SupplyWarehouse: 3},
							{Item: (i + 1) % 40, Qty: 2, SupplyWarehouse: (g + i) % 8},
						},
					})
				} else {
					f, serr = c.SubmitPayment(bg, anydb.Payment{
						Warehouse: 3, District: 1 + i%2, Customer: 1 + i%50, Amount: 1,
					})
				}
				if serr != nil {
					errs <- fmt.Errorf("worker %d: submit: %v", g, serr)
					return
				}
				if futs = append(futs, f); len(futs) == window {
					if !flush() {
						return
					}
				}
			}
		}(g)
	}

	// Mover: bounce warehouse 3 (the hot one) between servers 0 and 2,
	// live, as fast as the drains allow.
	var moves int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.Rebalance(bg, 3, []int{0, 2}[i%2]); err != nil {
				errs <- fmt.Errorf("mover: %v", err)
				return
			}
			moves++
			// Let traffic actually flow between handoffs, so drains
			// always find genuine in-flight work to wait for.
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Policy churner: epoch drains interleave with partition drains.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pols := []anydb.Policy{anydb.StreamingCC, anydb.SharedNothing, anydb.PreciseIntra}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.SetPolicy(bg, pols[i%len(pols)]); err != nil {
				errs <- fmt.Errorf("churner: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if moves == 0 {
		t.Fatal("no live handoff completed — the stress never exercised the move path")
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d (lost or double-resolved transactions)", n)
	}
	t.Logf("resolved %d commits / %d rollbacks across %d live handoffs",
		committed.Load(), rolledBack.Load(), moves)
	if committed.Load() == 0 {
		t.Fatal("nothing committed")
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	assertBalanced()
}

// measureSkewedThroughput drives the two-hot-warehouse workload for dur
// and returns committed transactions.
func measureSkewedThroughput(t *testing.T, c *anydb.Cluster, dur time.Duration) int64 {
	t.Helper()
	var n atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			const window = 32
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					if ok, err := f.Wait(bg); err == nil && ok {
						n.Add(1)
					}
				}
				futs = futs[:0]
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				w := 0
				if i%2 == 1 {
					w = 4 // the co-located hot pair under w%4 placement
				}
				f, err := c.SubmitPayment(bg, anydb.Payment{
					Warehouse: w, District: 1 + i%2, Customer: 1 + (g*64+i)%50, Amount: 1,
				})
				if err != nil {
					return
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
		}(g)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	return n.Load()
}

// TestAutoRebalanceRecoversSkew is the acceptance test for the
// controller-driven loop: warehouses 0 and 4 share an owner AC and
// receive all the traffic. With AutoRebalance on, the controller must
// perform at least one live SetOwner migration on its own, and the
// post-move throughput must reach ≥90% of the best static placement
// (the hot pair split across two ACs by a manual move).
func TestAutoRebalanceRecoversSkew(t *testing.T) {
	warm := 150 * time.Millisecond
	span := 400 * time.Millisecond
	median3 := func(a, b, c int64) int64 {
		if a > b {
			a, b = b, a
		}
		if b > c {
			b = c
		}
		return max(a, b)
	}

	// Best static placement: split the hot pair manually, no controller.
	static := openWide(t, anydb.Config{})
	if err := static.Rebalance(bg, 4, 0); err != nil {
		t.Fatal(err)
	}
	if p := static.Placement(); p[0] != 0 || p[4] != 0 {
		t.Fatalf("manual split left placement %v", p)
	}

	// Self-driving cluster: same workload, placement decided by the
	// controller.
	auto := openWide(t, anydb.Config{AutoRebalance: true, AdaptWindow: 5 * time.Millisecond})

	// Drive skewed traffic until the controller migrates (or times out).
	deadline := time.Now().Add(15 * time.Second)
	var moved bool
	for !moved && time.Now().Before(deadline) {
		measureSkewedThroughput(t, auto, 100*time.Millisecond)
		for _, ev := range auto.AdaptationLog() {
			if ev.Kind == anydb.EvRebalance {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatalf("controller never migrated a warehouse; log: %+v", auto.AdaptationLog())
	}
	var ev anydb.AdaptationEvent
	for _, e := range auto.AdaptationLog() {
		if e.Kind == anydb.EvRebalance {
			ev = e
		}
	}
	if ev.Warehouse != 0 && ev.Warehouse != 4 {
		t.Fatalf("controller moved warehouse %d, want one of the hot pair {0,4}: %+v", ev.Warehouse, ev)
	}
	t.Logf("controller migration: %+v", ev)

	// Post-move throughput vs the best static placement. The bad
	// placement serializes both hot warehouses on one AC goroutine
	// (~½ the throughput), while the auto cluster additionally pays for
	// what static does not run at all: per-transaction telemetry and the
	// 5ms controller loop, worth 5–20% on a small box. The 75% bar sits
	// cleanly between "recovered, minus observation overhead" (~85–110%
	// measured) and "never recovered" (~45–50%). Each attempt gates the
	// median of three phases per cluster, measured back-to-back so a
	// machine-wide slowdown hits both sides of the ratio, and a failed
	// attempt re-measures up to twice before declaring the placement
	// broken — background load on shared CI boxes swings absolute
	// throughput 10× for seconds at a time.
	var best, got int64
	var bests, gots [3]int64
	for attempt := 1; ; attempt++ {
		measureSkewedThroughput(t, static, warm)
		for i := range bests {
			bests[i] = measureSkewedThroughput(t, static, span)
		}
		best = median3(bests[0], bests[1], bests[2])
		measureSkewedThroughput(t, auto, warm)
		for i := range gots {
			gots[i] = measureSkewedThroughput(t, auto, span)
		}
		got = median3(gots[0], gots[1], gots[2])
		t.Logf("post-move throughput: auto %v → %d vs best-static %v → %d (%.0f%%)",
			gots, got, bests, best, 100*float64(got)/float64(best))
		if float64(got) >= 0.75*float64(best) {
			break
		}
		if attempt == 3 {
			t.Fatalf("post-move throughput %d < 75%% of best static %d after %d attempts; adaptation log: %+v",
				got, best, attempt, auto.AdaptationLog())
		}
	}

	if n := auto.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d", n)
	}
	if err := auto.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := static.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAutoRebalanceEventsCarryRegret: rebalance events must surface
// through the Events subscription with the EvRebalance kind, and the
// adaptation log must expose the measured model's regret trace.
func TestAutoRebalanceEventsCarryRegret(t *testing.T) {
	c := openWide(t, anydb.Config{AutoRebalance: true, AdaptWindow: 5 * time.Millisecond})
	events := c.Events(bg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := 0
				if i%2 == 1 {
					w = 4
				}
				c.Payment(anydb.Payment{Warehouse: w, District: 1, Customer: 1 + i%50, Amount: 1})
			}
		}(g)
	}
	var ev anydb.AdaptationEvent
	select {
	case ev = <-events:
	case <-time.After(15 * time.Second):
		close(stop)
		wg.Wait()
		t.Fatalf("no adaptation event delivered; log: %+v", c.AdaptationLog())
	}
	close(stop)
	wg.Wait()
	if ev.Kind != anydb.EvRebalance {
		t.Fatalf("event kind = %v (%+v), want EvRebalance", ev.Kind, ev)
	}
	if ev.Warehouse != 0 && ev.Warehouse != 4 {
		t.Fatalf("event moved warehouse %d, want 0 or 4", ev.Warehouse)
	}
	// The regret trace rides the log (it may legitimately still be 0 if
	// the first windows all ran at the best-seen rate; the field just
	// must be present and finite).
	log := c.AdaptationLog()
	if len(log) == 0 {
		t.Fatal("empty adaptation log after a delivered event")
	}
	for _, e := range log {
		if e.Regret < 0 {
			t.Fatalf("negative regret in log entry %+v", e)
		}
	}
	if err := errorsJoinVerify(c); err != nil {
		t.Fatal(err)
	}
}

func errorsJoinVerify(c *anydb.Cluster) error {
	if err := c.Verify(); err != nil {
		return errors.Join(errors.New("verify failed"), err)
	}
	return nil
}

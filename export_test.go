package anydb

// Test-only exports: hooks the black-box test package (anydb_test)
// needs to inject faults that have no public-API surface.

// AbortMemberConns severs every member connection without marking the
// peers dead — a network drop, not a process death. The serve loops
// notice, fail in-flight work, and wait for the members to redial.
func (c *Cluster) AbortMemberConns() {
	for _, m := range c.peers {
		m.peer.Abort()
	}
}

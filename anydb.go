// Package anydb is an architecture-less DBMS: a cluster of generic
// AnyComponents (ACs) instrumented by event and data streams, able to
// mimic a shared-nothing system, a shared-disk system, or anything in
// between on a per-transaction/per-query basis purely through routing —
// a from-scratch implementation of Bang et al., "AnyDB: An
// Architecture-less DBMS for Any Workload" (CIDR 2021).
//
// The public API runs the real goroutine runtime: one goroutine per AC,
// multi-producer mailboxes as the event/data streams. The paper's
// figures are reproduced on a deterministic virtual-time twin of this
// runtime by cmd/anydb-bench.
//
// Quick start (blocking client):
//
//	cluster, err := anydb.Open(anydb.Config{})
//	defer cluster.Close()
//	committed, err := cluster.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 7, Amount: 42})
//	open, err := cluster.OpenOrders(ctx)
//
// Pipelined client — keep many transactions in flight per session
// instead of one round trip at a time:
//
//	futs := make([]*anydb.Future, 0, 128)
//	for i := 0; i < 128; i++ {
//		f, err := cluster.SubmitPayment(ctx, anydb.Payment{Warehouse: i % 4, District: 1, Customer: 7, Amount: 1})
//		if err != nil { ... }
//		futs = append(futs, f)
//	}
//	for _, f := range futs {
//		committed, err := f.Wait(ctx)
//		...
//	}
package anydb

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anydb/internal/adapt"
	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/route"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
	"anydb/internal/transport"
	"anydb/internal/wal"
)

// Policy selects how transactions are routed over the ACs — the paper's
// §3 execution strategies. All four are selectable at runtime via
// SetPolicy; the self-driving controller (Config.AutoAdapt) chooses
// among the same four.
type Policy int

const (
	// SharedNothing physically aggregates each transaction at its home
	// partition's owner AC (Figure 4b).
	SharedNothing Policy = Policy(oltp.SharedNothing)
	// NaiveIntra farms every operation out to a record-class AC with a
	// conservative one-transaction-per-warehouse admission barrier
	// (Figure 4c). Included for completeness — per §3.2 its per-event
	// overhead dominates.
	NaiveIntra Policy = Policy(oltp.NaiveIntra)
	// PreciseIntra pipelines each transaction as two balanced
	// sub-sequences across two ACs (Figure 4d).
	PreciseIntra Policy = Policy(oltp.PreciseIntra)
	// StreamingCC routes per-record-class segments through a sequencer
	// for lock-free pipelined execution under contention (§3.3).
	StreamingCC Policy = Policy(oltp.StreamingCC)
)

func (p Policy) String() string { return oltp.Policy(p).String() }

// Policies returns all routing policies, in their numeric order.
func Policies() []Policy {
	return []Policy{SharedNothing, NaiveIntra, PreciseIntra, StreamingCC}
}

// Config sizes the cluster and the built-in TPC-C-style database.
type Config struct {
	// Servers and CoresPerServer define the initial topology
	// (default 2×4, the paper's Figure 2 layout). CoresPerServer must be
	// at least 4: the control server hosts the dispatcher, sequencer,
	// commit-coordinator and query-optimizer roles on separate ACs.
	Servers        int
	CoresPerServer int
	// Warehouses etc. size the database (defaults are small).
	Warehouses           int
	Districts            int
	CustomersPerDistrict int
	Items                int
	InitialOrdersPerDist int
	Seed                 int64
	DisableInitialOrders bool
	// AutoAdapt turns on the self-driving loop: dispatchers report
	// workload signals to an adaptation-controller AC, which switches
	// the routing policy (and grows a server when analytical load
	// appears) on its own. The controller ranks policies with a
	// measured cost model: it starts from the hand-calibrated prior,
	// brackets every switch with probe phases, and converges on
	// realized throughput per workload class (regret is traced in
	// AdaptationLog). Inspect what it did via AdaptationLog, or
	// subscribe with Events.
	AutoAdapt bool
	// AutoRebalance extends the self-driving loop to data placement:
	// when one partition owner carries far more than its fair share of
	// admissions, the controller performs a live SetOwner handoff
	// moving a hot warehouse to a cooler AC — elasticity and
	// repartitioning out of the same observe→decide→reroute loop that
	// switches policies (§5: placement is just routing). Works with or
	// without AutoAdapt; manual Rebalance calls are rejected while it
	// is on. Migrations appear as EvRebalance entries in
	// AdaptationLog/Events.
	AutoRebalance bool
	// AdaptWindow is the sliding signal window for AutoAdapt and
	// AutoRebalance (default 10ms wall clock).
	AdaptWindow time.Duration
	// Durability selects the write-ahead command log. Off (the default)
	// keeps everything in memory. Batch group-commits: each dispatcher
	// AC appends its admitted transactions' command records to a
	// per-dispatcher log and fsyncs once per mailbox drain cycle — a
	// transaction's segments dispatch only after its record is durable,
	// so an acknowledged commit survives a crash. Strict fsyncs per
	// transaction. Open replays any logs found in WALDir into the fresh
	// database before serving (full replay from genesis — no
	// checkpointing yet; see ROADMAP).
	Durability Durability
	// WALDir is the directory holding the per-dispatcher command logs
	// (wal-*.log). Required when Durability is not Off.
	WALDir string
	// HeartbeatInterval paces liveness Pings between the head and member
	// processes on a multi-process cluster (default 1s; < 0 disables).
	// A peer silent for ~3 intervals is considered failed.
	HeartbeatInterval time.Duration
	// MemberGrace is how long the head waits for a disconnected member
	// to redial before declaring it dead and pulling its partitions home
	// (default 2s).
	MemberGrace time.Duration
	// Listen and RemoteServers turn the cluster into the head of a real
	// multi-process deployment: Open listens on Listen (host:port) and
	// waits for RemoteServers member processes (cmd/anydbd, or
	// ServeNode) to join. Each member hosts one server's ACs in its own
	// OS process; the event and data streams to those ACs travel over
	// batched TCP frames (internal/transport) with semantics identical
	// to the in-process mailboxes, and partitions rotate over the
	// head's executors and every member's ACs, so cross-process
	// transactions and scans flow from the first request. The routing
	// policy is fixed to SharedNothing (every access to a partition
	// happens at its owner — the only policy whose correctness does not
	// depend on a single shared heap), and AutoAdapt/AutoRebalance are
	// rejected; live Rebalance across processes is fully supported (the
	// quiet-window handoff ships the partition's rows between
	// processes).
	Listen        string
	RemoteServers int
}

// Cluster is a running architecture-less DBMS instance.
type Cluster struct {
	eng   *core.Engine
	topo  *core.Topology
	db    *storage.Database
	cfg   tpcc.Config
	cores int // cores per server, for elastic growth

	execs []core.ACID
	ctrl  []core.ACID
	// lay names the AC roles for internal/route: the first server's ACs
	// are the record-class executors and partition owners; the control
	// server hosts dispatch, sequencing and commit coordination. Built
	// once in Open (the role ACs never change; growth only adds compute
	// servers) so the submission hot path allocates nothing for it.
	lay route.Layout

	// The submission plane (see submit.go). shards holds the global
	// in-flight counters (transactions AND analytical queries — a drain
	// covers both); sub is the current epoch, carrying the active
	// routing policy and the draining gate. The steady-state entry
	// (enter/exitShard) takes no mutex; switchMu serializes the slow
	// path only — epoch transitions by SetPolicy, Verify and Close.
	shards    []submitShard
	shardMask int32
	sub       atomic.Pointer[submitEpoch]
	drainWake chan struct{}
	switchMu  sync.Mutex
	// whCounts is the partition-granularity half of the in-flight
	// accounting: per shard, one counter per warehouse bit (see
	// whSlots). gate is the partition handoff in progress, nil when
	// none — entries overlapping its mask park, the rest flow.
	whCounts []atomic.Int64
	gate     atomic.Pointer[moveGate]
	// closed flips once (Close); closedCh unblocks every parked entry
	// and drain, closeDrained marks the final drain's completion (safe
	// to read the database), closeDone marks full teardown.
	closed       atomic.Bool
	closedCh     chan struct{}
	closeDrained chan struct{}
	closeDone    chan struct{}

	nextTxn atomic.Uint64
	nextQ   atomic.Uint64

	// qMu guards the analytical-query completion table. Queries keep a
	// registration map (results are streamed values, not tokens); their
	// in-flight counts still live in the lock-free shards. Off the
	// transaction hot path.
	qMu   sync.Mutex
	qWait map[core.QueryID]*queryWait

	// mu guards the remaining slow-path state: the dispatcher registry
	// (grown servers register while switches reconfigure), the policy
	// those dispatchers were last configured with, the adaptation log
	// and decision queue, and the Events subscribers.
	mu        sync.Mutex
	curPolicy Policy
	dispers   map[core.ACID]*oltp.Dispatcher
	// subs are live Events subscribers; a subscriber detaches when its
	// context ends (reaped lazily at the next publish) and all remaining
	// channels close on Close.
	subs []eventSub

	// futPool recycles Futures (and their 1-buffered channels) so the
	// pipelined submission hot path allocates nothing per call in steady
	// state.
	futPool sync.Pool
	// sessPool recycles Sessions; nextSess round-robins their pinned
	// submission shards so concurrent sessions spread over the counters.
	sessPool sync.Pool
	nextSess atomic.Uint32

	// Self-driving state (Config.AutoAdapt). Decisions queue under mu
	// and the applier is kicked via decKick: the controller assumes
	// every emitted decision is applied (it tracks the policy it chose),
	// so none may be dropped.
	adaptCtrl     *adapt.Controller
	autoAdapt     bool
	autoRebalance bool
	adaptLog      []AdaptationEvent
	decQ          []*adapt.Decision
	decKick       chan struct{}
	applierWG     sync.WaitGroup
	start         time.Time
	// ownerCands is the placement pool the controller's Move decisions
	// index into: the executor ACs, extended by every elastically grown
	// server's ACs — so after a grow the controller can migrate OLTP
	// load onto hardware that did not exist a moment ago.
	ownerCands atomic.Pointer[[]core.ACID]
	// growAsked flips once the controller requested elastic growth;
	// query-completion signals only feed that one-shot trigger, so
	// injecting them afterwards would be pure overhead on the
	// controller AC.
	growAsked atomic.Bool
	// unmatchedDone counts completion events with no waiting caller —
	// a lost or double-resolved transaction if ever nonzero.
	unmatchedDone atomic.Int64

	// Multi-process deployment (Config.RemoteServers > 0; distributed.go).
	// remoteACs marks ACs hosted by member processes (nil on a purely
	// local cluster — the hot paths pay one nil check); tokens is the
	// head's client-token registry (futures never cross the wire, their
	// table keys do); peers are the joined member connections and
	// rpcWait matches partition-migration replies to their requests.
	remoteACs []bool
	tokens    *transport.TokenTable
	ln        net.Listener
	peers     []*member
	serveWG   sync.WaitGroup
	rpcSeq    atomic.Uint64
	rpcMu     sync.Mutex
	rpcWait   map[uint64]chan any

	// Durability plane (Config.Durability != DurabilityOff). walFiles
	// maps log path -> open device plus the LSN recovery replayed up to,
	// so each dispatcher's logger resumes numbering where the previous
	// incarnation stopped. walApplied counts replayed transactions —
	// when nonzero on a multi-process cluster, the head pushes the
	// replayed partitions to joining members (they repopulate from the
	// seed and would otherwise miss recovered state).
	durability Durability
	walDir     string
	walMu      sync.Mutex
	walFiles   map[string]*walFile
	walApplied int

	// Failure-detection pacing (multi-process clusters; distributed.go).
	heartbeat   time.Duration
	memberGrace time.Duration
}

// Durability selects how (whether) the cluster logs admitted
// transactions before executing them; see Config.Durability.
type Durability uint8

const (
	// DurabilityOff runs fully in memory (the default).
	DurabilityOff Durability = iota
	// DurabilityBatch group-commits: one fsync per dispatcher drain
	// cycle covers every transaction admitted in that burst.
	DurabilityBatch
	// DurabilityStrict fsyncs before dispatching each transaction.
	DurabilityStrict
)

func (d Durability) String() string {
	switch d {
	case DurabilityOff:
		return "Off"
	case DurabilityBatch:
		return "Batch"
	case DurabilityStrict:
		return "Strict"
	}
	return fmt.Sprintf("Durability(%d)", uint8(d))
}

// walFile is one per-dispatcher log: the open device and the last LSN
// recovery observed in it (0 for a fresh file).
type walFile struct {
	dev  *wal.FileDevice
	last uint64
}

// ErrClosed is returned by every entry point once Close has begun;
// match it with errors.Is to distinguish shutdown from other failures.
var ErrClosed = errors.New("anydb: cluster closed")

// ErrMemberDown resolves work that was in flight against a cluster
// member that died: pending Future.Wait calls and analytical queries
// fail with it instead of hanging. The member's partitions are pulled
// home to the head and subsequent submissions succeed.
var ErrMemberDown = errors.New("anydb: cluster member down")

// Open populates the database and starts the AC goroutines.
func Open(cfg Config) (*Cluster, error) {
	tc := tpcc.Config{
		Warehouses: cfg.Warehouses, Districts: cfg.Districts,
		Customers: cfg.CustomersPerDistrict, Items: cfg.Items,
		InitOrders: cfg.InitialOrdersPerDist, LinesPerOrder: 1, Seed: cfg.Seed,
	}.WithDefaults()
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.CoresPerServer == 0 {
		cfg.CoresPerServer = 4
	}
	if cfg.Servers < 2 {
		return nil, errors.New("anydb: need at least 2 servers (executors + control)")
	}
	if cfg.CoresPerServer < 4 {
		return nil, fmt.Errorf("anydb: CoresPerServer = %d, need at least 4 (the control server hosts the dispatcher, sequencer, coordinator and query-optimizer roles)", cfg.CoresPerServer)
	}
	db := storage.NewDatabase(tc.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, tc)

	c := &Cluster{
		db: db, cfg: tc, cores: cfg.CoresPerServer,
		dispers:      make(map[core.ACID]*oltp.Dispatcher),
		qWait:        make(map[core.QueryID]*queryWait),
		drainWake:    make(chan struct{}, 1),
		closedCh:     make(chan struct{}),
		closeDrained: make(chan struct{}),
		closeDone:    make(chan struct{}),
		start:        time.Now(),
	}
	if cfg.Durability != DurabilityOff {
		if cfg.WALDir == "" {
			return nil, errors.New("anydb: Config.Durability requires Config.WALDir")
		}
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("anydb: WALDir: %w", err)
		}
		c.durability, c.walDir = cfg.Durability, cfg.WALDir
		c.walFiles = make(map[string]*walFile)
		// Recovery: replay every existing log into the freshly populated
		// database before any AC serves traffic. Each log preserves its
		// dispatcher's admission order; cross-log order is not recorded,
		// which is sound because transactions admitted by different
		// dispatchers in the same epoch never conflicted (SharedNothing
		// partitioning) or were serialized by acks before acking clients.
		if err := c.replayWAL(); err != nil {
			return nil, err
		}
	}
	// Statistics for the SQL planner (partition 0 is representative:
	// population is symmetric across warehouses).
	for _, tn := range db.Catalog.Tables() {
		db.Catalog.SetStats(tn, storage.Analyze(db.Partition(0).Table(tn)))
	}
	c.heartbeat = cfg.HeartbeatInterval
	if c.heartbeat == 0 {
		c.heartbeat = time.Second
	} else if c.heartbeat < 0 {
		c.heartbeat = 0 // explicitly disabled
	}
	c.memberGrace = cfg.MemberGrace
	if c.memberGrace <= 0 {
		c.memberGrace = 2 * time.Second
	}
	// Size the submission shards to the parallelism the runtime can
	// actually offer (power of two for cheap masking, padded to cache
	// lines): enough that concurrent sessions rarely share a counter.
	nshards := 1
	for nshards < 4*runtime.GOMAXPROCS(0) {
		nshards <<= 1
	}
	if nshards < 8 {
		nshards = 8
	}
	if nshards > 256 {
		nshards = 256
	}
	c.shards = make([]submitShard, nshards)
	c.shardMask = int32(nshards - 1)
	c.whCounts = make([]atomic.Int64, nshards*whSlots)
	c.sub.Store(newEpoch(SharedNothing))
	c.topo = core.NewTopology(db)
	c.execs = c.topo.AddServer(cfg.CoresPerServer)
	c.ctrl = c.topo.AddServer(cfg.CoresPerServer)
	for s := 2; s < cfg.Servers; s++ {
		c.topo.AddServer(cfg.CoresPerServer)
	}
	ownerPool := c.execs
	if cfg.RemoteServers > 0 {
		remote, err := c.addRemoteServers(cfg)
		if err != nil {
			return nil, err
		}
		// Partitions rotate over the head's executors AND every member's
		// ACs, so cross-process segments and scans flow from the first
		// request rather than only after a Rebalance.
		ownerPool = append(append([]core.ACID(nil), c.execs...), remote...)
	}
	for w := 0; w < tc.Warehouses; w++ {
		c.topo.SetOwner(w, ownerPool[w%len(ownerPool)])
	}
	c.lay = route.Layout{
		Owner: c.topo.Owner, Execs: c.execs,
		Dispatch: c.ctrl[0], Seq: c.ctrl[1], Coord: c.ctrl[2],
	}
	if cfg.AutoAdapt || cfg.AutoRebalance {
		c.autoAdapt, c.autoRebalance = cfg.AutoAdapt, cfg.AutoRebalance
		window := cfg.AdaptWindow
		if window <= 0 {
			window = 10 * time.Millisecond
		}
		cands := append([]core.ACID(nil), c.execs...)
		c.ownerCands.Store(&cands)
		opts := adapt.Options{
			Start: oltp.SharedNothing,
			// Candidates defaults to all four §3 policies: the public
			// runtime routes every one of them (internal/route), so the
			// controller chooses over the full architecture space. The
			// measured model starts from the hand-calibrated prior and
			// converges on realized throughput per workload class.
			Model:      adapt.NewMeasuredModel(nil),
			Env:        adapt.Env{Executors: len(c.execs), Warehouses: tc.Warehouses},
			WindowSpan: sim.Time(window.Nanoseconds()),
			Elastic:    cfg.AutoAdapt,
			Rebalance:  cfg.AutoRebalance,
			OwnerIdx:   c.ownerIdx,
			NumOwners:  func() int { return len(*c.ownerCands.Load()) },
			// The goroutine runtime delivers telemetry in mailbox
			// bursts; evaluate on report count too so a burst is scored
			// while its reports are still inside the window.
			EvalEvery: 8,
		}
		if !cfg.AutoAdapt {
			// Rebalance-only self-driving: the controller owns
			// placement but never switches the routing policy.
			opts.Candidates = []oltp.Policy{oltp.SharedNothing}
		}
		c.adaptCtrl = adapt.NewController(opts)
		c.decKick = make(chan struct{}, 1)
		c.applierWG.Add(1)
		go c.runApplier()
	}
	if c.remoteACs != nil {
		c.eng = core.NewEngineAt(c.topo, c.setupAC, func(id core.ACID) bool { return !c.remoteACs[id] })
	} else {
		c.eng = core.NewEngine(c.topo, c.setupAC)
	}
	c.eng.SetClient(c.onDone)
	if c.remoteACs != nil {
		if err := c.acceptMembers(cfg); err != nil {
			c.eng.Stop()
			c.ln.Close()
			return nil, err
		}
	}
	return c, nil
}

// replayWAL re-executes every wal-*.log in WALDir against the freshly
// populated database, truncates each file back to its last intact
// record (discarding a torn tail from a mid-write crash), and records
// the per-file resume LSN for the dispatchers that will adopt the logs.
func (c *Cluster) replayWAL() error {
	paths, err := filepath.Glob(filepath.Join(c.walDir, "wal-*.log"))
	if err != nil {
		return fmt.Errorf("anydb: scanning WALDir: %w", err)
	}
	for _, path := range paths {
		dev, err := wal.OpenFile(path)
		if err != nil {
			return fmt.Errorf("anydb: opening %s: %w", path, err)
		}
		applied, clean, last, err := wal.Replay(dev, c.db)
		if err != nil {
			dev.Close()
			return fmt.Errorf("anydb: replaying %s: %w", path, err)
		}
		if err := dev.Truncate(clean); err != nil {
			dev.Close()
			return fmt.Errorf("anydb: truncating %s: %w", path, err)
		}
		c.walFiles[path] = &walFile{dev: dev, last: last}
		c.walApplied += applied
	}
	return nil
}

// walLogger opens (or adopts the recovered) log for one dispatcher AC
// and returns a logger resuming at the replayed LSN. GroupSize 0: the
// dispatcher controls flush boundaries (per batch or per transaction).
func (c *Cluster) walLogger(id core.ACID) *wal.Logger {
	path := filepath.Join(c.walDir, fmt.Sprintf("wal-%04d.log", id))
	c.walMu.Lock()
	defer c.walMu.Unlock()
	wf := c.walFiles[path]
	if wf == nil {
		dev, err := wal.OpenFile(path)
		if err != nil {
			// setupAC cannot return an error; Open already validated the
			// directory is writable, so this is an environment failure
			// (fd exhaustion, disk gone) where fail-stop is the only
			// durable answer.
			panic(fmt.Sprintf("anydb: opening %s: %v", path, err))
		}
		wf = &walFile{dev: dev}
		c.walFiles[path] = wf
	}
	lg := wal.NewLogger(wf.dev, 0)
	lg.Resume(wf.last)
	return lg
}

func (c *Cluster) setupAC(ac *core.AC) {
	// One free-list set per AC, shared by every OLTP behavior registered
	// on it: under aggregated routing the dispatcher, executor and
	// embedded coordinator of a transaction all run on the same AC
	// goroutine, so events, segments, acks and program blocks recycle
	// through plain slices instead of sync.Pools.
	pools := &oltp.Pools{}
	ac.Register(core.EvSegment, &oltp.Executor{DB: c.db, Pools: pools})
	ac.Register(core.EvInstallOp, &olap.Worker{DB: c.db})
	ac.Register(core.EvQuery, &plan.QO{Topo: c.topo})
	ac.Register(core.EvSeqStamp, &core.Sequencer{})
	// Every=32 keeps the signal stream dense enough that a sliding
	// window always aggregates several dispatchers' reports — placement
	// decisions need cross-owner coverage, not just volume (matches the
	// virtual-time harness cadence).
	tel := oltp.Telemetry{Sink: c.ctrl[1], Every: 32, Enabled: c.adaptCtrl != nil}
	if c.adaptCtrl != nil {
		// The controller registers on every AC (components stay
		// generic); only the telemetry sink receives reports, so its
		// state stays on one goroutine.
		ac.Register(core.EvSignal, c.adaptCtrl)
	}
	if len(c.ctrl) > 2 && ac.ID == c.ctrl[2] {
		coord := oltp.NewCoordinator()
		coord.Pools = pools
		coord.SetTelemetry(tel)
		ac.Register(core.EvAck, coord)
		return
	}
	// Servers grown at runtime inherit the active policy. Reading the
	// policy, building the dispatcher and publishing it happen in one
	// critical section so a concurrent SetPolicy either sees the new
	// dispatcher in the map or runs before it configures itself.
	c.mu.Lock()
	pol := c.curPolicy
	d := oltp.NewDispatcher(oltp.Policy(pol), c.db, c.routes(pol))
	d.Pools = pools
	d.SetTelemetry(tel)
	c.dispers[ac.ID] = d
	c.mu.Unlock()
	if c.durability != DurabilityOff {
		d.Log = c.walLogger(ac.ID)
		d.Strict = c.durability == DurabilityStrict
		if !d.Strict {
			// Group commit: admitted transactions queue in the
			// dispatcher until the runtime's batch-end hook fires —
			// one fsync covers the whole drain cycle, then the batch's
			// segments dispatch.
			ac.OnBatchEnd = d.FlushBatch
		}
	}
	ac.Register(core.EvTxn, d)
	ac.Register(core.EvAck, d)
}

func (c *Cluster) routes(p Policy) oltp.Routes {
	return route.For(oltp.Policy(p), c.lay)
}

// SetPolicy reroutes subsequent transactions. It gates new submissions
// and waits for in-flight transactions and analytical queries to finish
// first, so conflicting work never straddles two routings — the
// architecture shift itself is instantaneous (§2.1: no reconfiguration
// downtime). Safe to call concurrently with Payment/NewOrder/Submit*
// and queries from any goroutine: work arriving mid-switch briefly
// blocks, then runs under the new routing. Canceling ctx abandons the
// switch (the old routing stays in effect) and releases gated callers.
//
// On a self-driving cluster (Config.AutoAdapt) the controller owns the
// routing; manual switches would silently fight it, so SetPolicy
// returns an error instead.
func (c *Cluster) SetPolicy(ctx context.Context, p Policy) error {
	if c.autoAdapt {
		return errors.New("anydb: cluster is self-driving (Config.AutoAdapt); the controller owns the policy")
	}
	if c.remoteACs != nil && p != SharedNothing {
		// The fine-grained policies execute writes off the partition
		// owners; on a multi-process cluster that would write through
		// the head's stale copy of remote-owned partitions.
		return errors.New("anydb: multi-process clusters run SharedNothing only")
	}
	return c.setPolicy(ctx, p)
}

// setPolicy is the switch path shared by SetPolicy and the adaptation
// applier. The drain covers transactions AND analytical queries: under
// the fine-grained policies writes execute off the partition owners, so
// a query scan straddling the switch could race them. The switch is an
// epoch transition: close the current epoch (one flag store — gating
// every submitter), wait for the sharded in-flight counters to drain,
// reconfigure the dispatchers, publish a fresh epoch under the new
// policy.
func (c *Cluster) setPolicy(ctx context.Context, p Policy) error {
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	e := c.sub.Load()
	e.closed.Store(true)
	if err := c.drainLocked(ctx); err != nil {
		if !errors.Is(err, ErrClosed) {
			// Canceled: abandon the switch, the old routing stays in
			// effect, gated submitters resume under it.
			c.reopenLocked(e, e.policy)
		}
		// On ErrClosed the plane stays closed — Close owns it now and
		// closedCh has already released every gated submitter.
		return err
	}
	c.mu.Lock()
	c.curPolicy = p
	routes := c.routes(p)
	for _, d := range c.dispers {
		d.SetConfig(oltp.Policy(p), routes)
	}
	c.mu.Unlock()
	c.reopenLocked(e, p)
	return nil
}

// Payment identifies a TPC-C payment (§2.5).
type Payment struct {
	Warehouse, District int     // paying warehouse/district
	Customer            int     // customer id (ignored when ByLastName)
	ByLastName          bool    // select customer by last name
	LastName            string  // TPC-C syllable name, e.g. "BARBARBAR"
	Amount              float64 // payment amount
	// CustomerWarehouse/District default to the paying ones.
	CustomerWarehouse, CustomerDistrict int
}

// OrderLine is one new-order line.
type OrderLine struct {
	Item, Qty, SupplyWarehouse int
}

// NewOrder identifies a TPC-C new-order (§2.4).
type NewOrder struct {
	Warehouse, District, Customer int
	Lines                         []OrderLine
}

// paymentTxn builds a pooled transaction; the dispatcher recycles it
// once the op program is compiled (ROADMAP: the client-side *tpcc.Txn
// was one of the three remaining steady-state allocations).
func paymentTxn(p Payment) (*tpcc.Txn, error) {
	cw, cd := p.CustomerWarehouse, p.CustomerDistrict
	if cw == 0 && cd == 0 {
		cw, cd = p.Warehouse, p.District
	}
	t := tpcc.GetTxn()
	t.Kind = tpcc.TxnPayment
	t.Payment = tpcc.Payment{
		W: p.Warehouse, D: p.District, CW: cw, CD: cd,
		C: p.Customer, ByLast: p.ByLastName, Amount: p.Amount,
	}
	if p.ByLastName {
		num := tpcc.LastNameNum(p.LastName)
		if num < 0 {
			tpcc.FreeTxn(t)
			return nil, fmt.Errorf("anydb: %q is not a TPC-C last name", p.LastName)
		}
		t.Payment.Last = num
	}
	return t, nil
}

func newOrderTxn(no NewOrder) *tpcc.Txn {
	t := tpcc.GetTxn()
	t.Kind = tpcc.TxnNewOrder
	t.NewOrder = tpcc.NewOrder{W: no.Warehouse, D: no.District, C: no.Customer}
	for _, l := range no.Lines {
		t.NewOrder.Lines = append(t.NewOrder.Lines, tpcc.NewOrderLine{
			Item: l.Item, Qty: l.Qty, SupplyW: l.SupplyWarehouse,
		})
	}
	return t
}

// Future is the pending result of a submitted transaction. Futures are
// pooled: Wait consumes the future, and calling Wait again — or after a
// Wait that returned the transaction's result — panics if the future is
// still in the pool (a recycled future would otherwise steal another
// session's result; the guard is best-effort once it is re-issued).
type Future struct {
	c  *Cluster
	ch chan bool
	// shard is the submission shard this future's transaction entered,
	// and mask the warehouse bits it counted against; the completion
	// callback releases exactly those counts (see submit.go). The
	// future itself is the completion token: it rides the event plane
	// (core.Event.Client) and comes back on the DoneInfo, so resolving
	// needs no shared lookup table.
	shard int32
	mask  uint64
	// state sequences the waiter against the completion callback:
	// whichever side transitions it out of futPending owns delivery
	// (resolver) or abandonment (waiter); the loser follows the winner
	// and parks the future back in the pool (futPooled).
	state atomic.Uint32
	// sess and sgen tie a future issued through a Session to that
	// session's private freelist: Wait on the session goroutine recycles
	// it there (no atomics) when sgen still matches the session's
	// generation; stale futures — the session closed meanwhile — and
	// futures parked by the resolver fall back to the shared pool.
	sess *Session
	sgen uint32
	// err distinguishes an infrastructure failure (ErrMemberDown: the
	// member executing a segment died) from a logical rollback. Written
	// by the completion callback before the channel send, read by Wait
	// after the receive — the channel orders the pair.
	err error
}

const (
	futPending uint32 = iota
	futDelivered
	futAbandoned
	futPooled
)

func (c *Cluster) getFuture() *Future {
	if v := c.futPool.Get(); v != nil {
		f := v.(*Future)
		f.err = nil
		f.state.Store(futPending)
		return f
	}
	return &Future{c: c, ch: make(chan bool, 1)}
}

// park returns a consumed future to its pool: the owning session's
// freelist when the future was issued through a still-open session (park
// then runs on the session goroutine — Wait's contract), the shared
// cluster pool otherwise. Its channel is empty.
func (f *Future) park() {
	f.state.Store(futPooled)
	if s := f.sess; s != nil {
		if s.gen.Load() == f.sgen && len(s.free) < sessFutureCap {
			s.free = append(s.free, f)
			return
		}
		f.sess = nil
	}
	f.c.futPool.Put(f)
}

// resolve delivers the transaction outcome. Runs on AC goroutines and
// never blocks: the channel holds one result and each registration sends
// at most once.
func (f *Future) resolve(committed bool) {
	if f.state.CompareAndSwap(futPending, futDelivered) {
		f.ch <- committed
		return
	}
	// The waiter abandoned the future (context canceled); nobody will
	// ever Wait on it again, so recycle it here. This runs on an AC
	// goroutine, so a session-issued future may not touch its session's
	// freelist — it returns to the shared pool.
	f.state.Store(futPooled)
	f.sess = nil
	f.c.futPool.Put(f)
}

// Wait blocks until the transaction resolves and reports whether it
// committed (false with a nil error means it rolled back; false with
// ErrMemberDown means the cluster member executing one of its segments
// died before acknowledging). If ctx is
// canceled first, Wait returns ctx.Err() immediately; the transaction
// itself still completes in the background — cancellation abandons the
// wait, not the work — and the cluster's in-flight accounting drains
// normally.
func (f *Future) Wait(ctx context.Context) (bool, error) {
	if f.state.Load() == futPooled {
		panic("anydb: Future.Wait called on a consumed future")
	}
	select {
	case committed := <-f.ch:
		err := f.err
		f.park()
		return committed, err
	case <-ctx.Done():
		if f.state.CompareAndSwap(futPending, futAbandoned) {
			return false, ctx.Err()
		}
		// Lost the race: the result is (about to be) in the channel.
		committed := <-f.ch
		err := f.err
		f.park()
		return committed, err
	}
}

// SubmitPayment enqueues a payment transaction and returns immediately
// with a Future for its outcome. Submissions pipeline: a session can
// keep hundreds in flight and Wait on them in any order. ctx bounds only
// the submission itself (it can block while a policy switch drains);
// pass it again to Future.Wait to bound the wait.
func (c *Cluster) SubmitPayment(ctx context.Context, p Payment) (*Future, error) {
	t, err := paymentTxn(p)
	if err != nil {
		return nil, err
	}
	return c.submit(ctx, t)
}

// SubmitNewOrder enqueues a new-order transaction; see SubmitPayment.
func (c *Cluster) SubmitNewOrder(ctx context.Context, no NewOrder) (*Future, error) {
	return c.submit(ctx, newOrderTxn(no))
}

// Payment executes a payment transaction and reports whether it
// committed. It is SubmitPayment + Wait without a deadline.
func (c *Cluster) Payment(p Payment) (bool, error) {
	f, err := c.SubmitPayment(context.Background(), p)
	if err != nil {
		return false, err
	}
	return f.Wait(context.Background())
}

// NewOrder executes a new-order transaction; false means the transaction
// rolled back (invalid item). It is SubmitNewOrder + Wait without a
// deadline.
func (c *Cluster) NewOrder(no NewOrder) (bool, error) {
	f, err := c.SubmitNewOrder(context.Background(), no)
	if err != nil {
		return false, err
	}
	return f.Wait(context.Background())
}

// submit is the transaction entry hot path. Uncontended it takes zero
// locks: epoch entry is an atomic add on a goroutine-affine shard, the
// id an atomic counter, the event and future pooled, and the future
// itself travels as the completion token — nothing left to serialize.
func (c *Cluster) submit(ctx context.Context, t *tpcc.Txn) (*Future, error) {
	mask := txnMask(t)
	e, si, err := c.enter(ctx, mask)
	if err != nil {
		tpcc.FreeTxn(t)
		return nil, err
	}
	id := core.TxnID(c.nextTxn.Add(1))
	f := c.getFuture()
	f.shard, f.mask = si, mask
	// Resolve the entry AC before injecting: the dispatcher consumes
	// (and recycles) the txn, so it must not be touched after Inject.
	entry := route.Entry(oltp.Policy(e.policy), c.lay, t.HomeWarehouse())
	if c.remoteACs != nil && c.remoteACs[entry] {
		// Raw transactions never cross the wire (their op programs are
		// compiled from closures): enter at the head dispatcher instead,
		// which compiles locally and ships the routed segments — the
		// wire-encodable form — to the remote owner.
		entry = c.lay.Dispatch
	}
	ev := core.GetEvent()
	ev.Kind, ev.Txn, ev.Payload, ev.Client = core.EvTxn, id, t, f
	c.eng.Inject(entry, ev)
	return f, nil
}

// QueryOptions tunes analytical query execution.
type QueryOptions struct {
	// Beam initiates data streams at query arrival so transfers overlap
	// the compile window (§4 data beaming). Default off here; the
	// one-argument OpenOrders enables it.
	Beam bool
	// CompileDelay models the query-optimizer compile window (the paper
	// cites ~30ms for a commercial DBMS). With Beam set, scans push
	// data during this window.
	CompileDelay time.Duration
}

// q3SQL is the paper's §4 query expressed against the SQL surface; the
// OpenOrders wrappers run it through the same planner as Query.
var q3SQL = fmt.Sprintf(`SELECT COUNT(*)
	FROM customer
	JOIN orders ON customer.c_w_id = orders.o_w_id
		AND customer.c_d_id = orders.o_d_id
		AND customer.c_id = orders.o_c_id
	JOIN new_order ON orders.o_w_id = new_order.no_w_id
		AND orders.o_d_id = new_order.no_d_id
		AND orders.o_id = new_order.no_o_id
	WHERE c_state LIKE '%s%%' AND o_entry_d >= %d`,
	tpcc.Q3StatePrefix, tpcc.Q3SinceYear)

// OpenOrders runs the paper's analytical query (§4: all open orders for
// customers from states 'A%' since 2007) with full data beaming. It is a
// documented wrapper over the SQL path:
//
//	cluster.QueryRow(ctx, "SELECT COUNT(*) FROM customer JOIN orders ... JOIN new_order ...")
func (c *Cluster) OpenOrders(ctx context.Context) (int64, error) {
	return c.OpenOrdersOpts(ctx, QueryOptions{Beam: true})
}

// OpenOrdersOpts runs the analytical query with explicit options; it
// compiles the same SQL text as OpenOrders through the generic planner.
// Joins are placed on the newest server — disaggregated from the OLTP
// owners — so AddServer immediately gives analytics fresh compute (§5
// elasticity). Canceling ctx abandons the wait (the query completes in
// the background and its result is dropped).
//
// Scans execute at each partition's owner AC, interleaved with that
// partition's transactions, so concurrent OLTP is safe under the
// SharedNothing policy (all access to a partition serializes at its
// owner). Under the fine-grained policies — NaiveIntra, PreciseIntra,
// StreamingCC — writes run on record-class ACs instead of the owners;
// run analytics only while OLTP is quiescent in those modes. Policy
// switches drain in-flight queries, so a query never straddles a
// routing change.
func (c *Cluster) OpenOrdersOpts(ctx context.Context, o QueryOptions) (int64, error) {
	res, err := c.runQuery(ctx, q3SQL, o)
	if err != nil {
		return 0, err
	}
	rows := newRows(res)
	defer rows.Close()
	var n int64
	if !rows.Next() {
		return 0, ErrNoRows
	}
	if err := rows.Scan(&n); err != nil {
		return 0, err
	}
	return n, nil
}

// Query executes a read-only SQL query and streams the result. The
// grammar (internal/sql) covers filters over arbitrary columns, inner
// equi-joins, grouped aggregates (COUNT/SUM/MIN/MAX/AVG), ORDER BY and
// LIMIT:
//
//	rows, err := cluster.Query(ctx, `SELECT o_d_id, COUNT(*) FROM orders
//		WHERE o_entry_d >= 2007 GROUP BY o_d_id ORDER BY COUNT(*) DESC LIMIT 3`)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var d, n int64
//		if err := rows.Scan(&d, &n); err != nil { ... }
//	}
//
// Results iterate over the engine's pooled column batches directly — no
// [][]any materialization — and each batch is recycled as the cursor
// passes it. Scans attach to a per-partition shared cursor, so
// concurrent queries over the same table ride one scan pass; joins run
// on the newest server with full data beaming. Canceling ctx abandons
// the wait (the query completes in the background and its result set is
// recycled).
func (c *Cluster) Query(ctx context.Context, text string) (*Rows, error) {
	res, err := c.runQuery(ctx, text, QueryOptions{Beam: true})
	if err != nil {
		return nil, err
	}
	return newRows(res), nil
}

// QueryRow executes a query expected to return at most one row and
// defers errors to Scan:
//
//	var n int64
//	err := cluster.QueryRow(ctx, "SELECT COUNT(*) FROM district").Scan(&n)
//
// If the query returns no rows, Scan returns ErrNoRows; extra rows are
// discarded (and their batches recycled).
func (c *Cluster) QueryRow(ctx context.Context, text string) *Row {
	res, err := c.runQuery(ctx, text, QueryOptions{Beam: true})
	if err != nil {
		return &Row{err: err}
	}
	rows := newRows(res)
	defer rows.Close()
	if !rows.Next() {
		return &Row{err: ErrNoRows}
	}
	b := rows.batches[rows.bi]
	vals := make([]storage.Value, len(rows.cols))
	for i := range vals {
		vals[i] = b.Value(rows.ri, i)
	}
	return &Row{cols: rows.cols, vals: vals}
}

// QueryAll executes a query and materializes the whole result as
// [][]any rows (int64/float64/string cells).
//
// Deprecated: QueryAll is the previous Query signature, kept for one
// release as a migration shim. Use Query (streaming Rows) or QueryRow
// instead. For a bare COUNT(*) the first return is the count itself
// (matching the old behavior); otherwise it is the number of rows.
func (c *Cluster) QueryAll(ctx context.Context, text string) (int64, [][]any, error) {
	rows, err := c.Query(ctx, text)
	if err != nil {
		return 0, nil, err
	}
	defer rows.Close()
	var out [][]any
	for rows.Next() {
		vals := make([]any, len(rows.Columns()))
		ptrs := make([]any, len(vals))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			return 0, nil, err
		}
		out = append(out, vals)
	}
	cols := rows.Columns()
	if len(out) == 1 && len(cols) == 1 && cols[0] == "count" {
		n, _ := out[0][0].(int64)
		return n, nil, nil
	}
	return int64(len(out)), out, nil
}

// computeACs picks the pool that hosts a query's joins and final sink:
// the ACs of the highest-numbered live server. Normally that is the
// newest server — analytics get fresh compute, disaggregated from the
// OLTP owners (§5 elasticity) — but a cluster member the head has
// declared dead is skipped, falling back toward the head, so analytics
// keep flowing after a failover instead of planning onto a corpse.
func (c *Cluster) computeACs() []core.ACID {
	for s := c.topo.NumServers() - 1; s > 0; s-- {
		if !c.serverDown(s) {
			return c.topo.ACs(s)
		}
	}
	return c.topo.ACs(0)
}

// serverDown reports whether server s is a cluster member declared
// dead. Local servers and live members report false.
func (c *Cluster) serverDown(s int) bool {
	for _, m := range c.peers {
		if m.server == s {
			return m.down.Load()
		}
	}
	return false
}

// runQuery is the analytical entry point shared by Query, QueryRow and
// the OpenOrders wrappers: parse, compile onto the shared-scan operator
// plane, register with the in-flight accounting, inject, await.
func (c *Cluster) runQuery(ctx context.Context, text string, o QueryOptions) (*olap.QueryResult, error) {
	return c.runQueryAt(ctx, text, o, -1)
}

// runQueryAt is runQuery with a caller-pinned submission shard (< 0
// fingerprints the goroutine as usual); Session.Query pins its own.
func (c *Cluster) runQueryAt(ctx context.Context, text string, o QueryOptions, si int32) (*olap.QueryResult, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	if c.closed.Load() {
		return nil, ErrClosed
	}
	qid := core.QueryID(c.nextQ.Add(1))

	parts := make([]int, c.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	p, err := plan.CompileSQL(c.db.Catalog, q, qid, parts, c.computeACs(), core.ClientAC)
	if err != nil {
		return nil, err
	}
	p.Beam = o.Beam
	p.CompileTime = sim.Time(o.CompileDelay.Nanoseconds())

	// Enter the epoch only once compilation succeeded (enter re-checks
	// closed, so a registration can never slip past Close's drain).
	ch, err := c.registerQueryID(ctx, qid, si)
	if err != nil {
		return nil, err
	}
	qev := core.GetEvent()
	qev.Kind, qev.Query, qev.Payload = core.EvQuery, qid, p
	c.eng.Inject(c.ctrl[3], qev)
	return c.awaitQuery(ctx, qid, ch)
}

// queryWait is one registered analytical query: the 1-buffered result
// channel (nil once the waiter abandoned) and the submission shard the
// query entered, released when the result arrives.
type queryWait struct {
	ch    chan *olap.QueryResult
	shard int32
}

// registerQueryID enters the submission epoch (queries count toward the
// same sharded in-flight accounting as transactions — a drain covers
// both; their warehouse mask is the shared query bit, so partition
// handoffs drain them too) and registers the completion channel for qid.
func (c *Cluster) registerQueryID(ctx context.Context, qid core.QueryID, si int32) (chan *olap.QueryResult, error) {
	if si < 0 {
		si = c.shardIdx()
	}
	_, si, err := c.enterAt(ctx, si, queryMask)
	if err != nil {
		return nil, err
	}
	ch := make(chan *olap.QueryResult, 1)
	c.qMu.Lock()
	c.qWait[qid] = &queryWait{ch: ch, shard: si}
	c.qMu.Unlock()
	return ch, nil
}

// awaitQuery blocks for a registered query result, the context, or
// Close (which closes the channel).
func (c *Cluster) awaitQuery(ctx context.Context, qid core.QueryID, ch chan *olap.QueryResult) (*olap.QueryResult, error) {
	select {
	case res, ok := <-ch:
		if !ok {
			return nil, ErrClosed
		}
		if res == nil {
			// failQueries delivered a nil result: a member whose scans
			// this query depended on died mid-flight.
			return nil, ErrMemberDown
		}
		return res, nil
	case <-ctx.Done():
		// Abandon the wait: drop the channel so the eventual result is
		// discarded, but keep the registration — the query still runs,
		// and its completion must release the in-flight count.
		c.qMu.Lock()
		if qw := c.qWait[qid]; qw != nil {
			qw.ch = nil
		}
		c.qMu.Unlock()
		return nil, ctx.Err()
	}
}

// failQueries resolves every in-flight analytical query with
// ErrMemberDown (delivered as a nil result — see awaitQuery). Every
// query scans all partitions, so a member death strands every
// outstanding query's collector: failing them all is not conservative,
// it is exact. Late stragglers (results computed before the death
// raced here) find no registration and are discarded by onDone.
func (c *Cluster) failQueries() {
	c.qMu.Lock()
	for qid, qw := range c.qWait {
		delete(c.qWait, qid)
		if qw.ch != nil {
			qw.ch <- nil
		}
		c.exitShard(qw.shard, queryMask)
	}
	c.qMu.Unlock()
}

// failQuery resolves one analytical query with ErrMemberDown — invoked
// when a piece of its plan (a scan install, a stream batch) diverts to
// a dead peer, so the query can never complete. Idempotent: later
// diverted pieces of the same query find no registration.
func (c *Cluster) failQuery(qid core.QueryID) {
	c.qMu.Lock()
	qw := c.qWait[qid]
	delete(c.qWait, qid)
	c.qMu.Unlock()
	if qw == nil {
		return
	}
	if qw.ch != nil {
		qw.ch <- nil
	}
	c.exitShard(qw.shard, queryMask)
}

// onDone resolves waiting callers. It runs on AC goroutines and must
// never block. The transaction path is lock-free: the DoneInfo carries
// the submitter's *Future back as its client token, so resolution is a
// CAS on the future plus one atomic shard release.
func (c *Cluster) onDone(ev *core.Event) {
	switch p := ev.Payload.(type) {
	case *oltp.DoneInfo:
		committed := p.Committed
		failure := p.Err
		f, _ := p.Client.(*Future)
		oltp.FreeDoneInfo(p)
		if f == nil {
			// Every public submission carries its future; a completion
			// without one is a lost or duplicated resolution.
			c.unmatchedDone.Add(1)
			return
		}
		// Read the shard and mask before resolving: resolve may recycle
		// the future into the pool, where another session can claim it.
		si, mask := f.shard, f.mask
		f.err = failure
		f.resolve(committed)
		c.exitShard(si, mask)
	case *olap.QueryResult:
		c.qMu.Lock()
		qw := c.qWait[p.Query]
		delete(c.qWait, p.Query)
		c.qMu.Unlock()
		if qw == nil {
			c.unmatchedDone.Add(1)
			freeResult(p)
			return
		}
		if qw.ch != nil {
			qw.ch <- p
		} else {
			// The waiter abandoned the query (context canceled): nobody
			// will ever iterate this result, so recycle its batches here.
			freeResult(p)
		}
		c.exitShard(qw.shard, queryMask)
		if c.adaptCtrl != nil && !c.growAsked.Load() {
			// Feed analytical activity into the signal stream so the
			// controller can react with elasticity (a one-shot
			// trigger — once growth is requested, stop reporting).
			sig := core.GetEvent()
			sig.Kind = core.EvSignal
			sig.Payload = &oltp.Report{
				At: sim.Time(time.Since(c.start).Nanoseconds()), Queries: 1,
			}
			c.eng.Inject(c.ctrl[1], sig)
		}
	case *adapt.Decision:
		if p.Grow {
			c.growAsked.Store(true)
		}
		// Applied off the AC goroutine: applying drains in-flight
		// work, which needs the ACs to keep running.
		c.mu.Lock()
		c.decQ = append(c.decQ, p)
		c.mu.Unlock()
		select {
		case c.decKick <- struct{}{}:
		default: // applier already kicked; it drains the whole queue
		}
	}
}

// AddServer grows the cluster by one server (elasticity, §5) and returns
// how many ACs it added. On a self-driving cluster the new ACs also join
// the controller's placement pool, so AutoRebalance can migrate hot
// partitions onto the fresh hardware.
func (c *Cluster) AddServer(cores int) int {
	ids := c.eng.GrowServer(cores, c.setupAC)
	if len(ids) > 0 && c.ownerCands.Load() != nil {
		c.mu.Lock()
		grown := append(append([]core.ACID(nil), *c.ownerCands.Load()...), ids...)
		c.ownerCands.Store(&grown)
		c.mu.Unlock()
	}
	return len(ids)
}

// ownerIdx maps a warehouse to the placement-pool slot of its current
// owner — the indexing the controller's Move decisions speak. Runs on
// the controller's AC goroutine; lock-free (topology snapshot + atomic
// candidate list). -1 means the owner is outside the pool (topology in
// flux mid-grow); the controller skips that round.
func (c *Cluster) ownerIdx(w int) int {
	owner := c.topo.Owner(w)
	for i, id := range *c.ownerCands.Load() {
		if id == owner {
			return i
		}
	}
	return -1
}

// Rebalance performs a live elastic-repartitioning step: it migrates a
// warehouse's partition ownership to the least-loaded AC of the target
// server (excluding the current owner — on the owner's own server this
// is an intra-server move). The handoff reuses the submission plane's
// epoch gate at partition granularity: only work touching the moving
// warehouse (and analytical queries, whose scans run at the owners) is
// briefly gated and drained; everything else keeps flowing. Once quiet,
// storage hands the partition off and the new topology snapshot is
// published atomically — in an architecture-less system state never
// moves, so the "migration" is one routing-table flip (§5). Canceling
// ctx abandons the move with ownership unchanged.
//
// With Config.AutoRebalance the controller owns placement and manual
// moves are rejected, mirroring SetPolicy under AutoAdapt.
func (c *Cluster) Rebalance(ctx context.Context, warehouse, server int) error {
	if c.autoRebalance {
		return errors.New("anydb: cluster is self-driving (Config.AutoRebalance); the controller owns placement")
	}
	if warehouse < 0 || warehouse >= c.cfg.Warehouses {
		return fmt.Errorf("anydb: warehouse %d out of range [0,%d)", warehouse, c.cfg.Warehouses)
	}
	if server < 0 || server >= c.topo.NumServers() {
		return fmt.Errorf("anydb: server %d out of range [0,%d)", server, c.topo.NumServers())
	}
	cur := c.topo.Owner(warehouse)
	dst := core.NoAC
	bestN := int(^uint(0) >> 1)
	c.mu.Lock()
	for _, id := range c.topo.ACs(server) {
		if id == cur {
			continue
		}
		// Only ACs running a dispatcher can own partitions: under
		// shared-nothing the owner IS the transaction entry point. The
		// dedicated commit coordinator is the one AC without one.
		// Member-hosted ACs all run dispatchers in their own process
		// (they are not in the head's registry), so they are eligible.
		if _, ok := c.dispers[id]; !ok && !c.isRemote(id) {
			continue
		}
		if n := len(c.topo.OwnedPartitions(id)); n < bestN {
			dst, bestN = id, n
		}
	}
	c.mu.Unlock()
	if dst == core.NoAC {
		return nil // no eligible AC besides the current owner
	}
	return c.moveWarehouse(ctx, warehouse, dst)
}

// Placement reports, per warehouse, the server currently hosting its
// partition-owner AC — the observable half of elastic repartitioning
// (watch it change under Rebalance/AutoRebalance). Lock-free snapshot
// read; safe to call concurrently with everything.
func (c *Cluster) Placement() []int {
	out := make([]int, c.cfg.Warehouses)
	for w := range out {
		out[w] = c.topo.ServerOf(c.topo.Owner(w))
	}
	return out
}

// moveWarehouse is the live SetOwner handoff shared by Rebalance and
// the controller's Move decisions: publish a partition gate, drain the
// in-flight work touching the warehouse, hand the storage partition to
// the new owner, publish the topology snapshot, reopen. Serialized with
// policy switches, Verify and Close under switchMu — but unlike those,
// it never stops traffic on other partitions.
func (c *Cluster) moveWarehouse(ctx context.Context, w int, dst core.ACID) error {
	c.switchMu.Lock()
	defer c.switchMu.Unlock()
	if c.closed.Load() {
		return ErrClosed
	}
	if c.topo.Owner(w) == dst {
		return nil
	}
	mask := whBit(w) | queryMask
	g := &moveGate{mask: mask, reopen: make(chan struct{})}
	c.gate.Store(g)
	err := c.drainPartitionLocked(ctx, mask)
	if err == nil && c.remoteACs != nil {
		// Cross-process leg: ship the partition's live rows between
		// processes (pull from a remote source, push to a remote
		// destination) and broadcast the ownership flip, all inside the
		// same quiet window.
		err = c.migratePartition(w, dst)
	}
	if err == nil {
		// Quiet window: nothing in flight touches the partition, no
		// overlapping submission can slip past the gate. Hand off the
		// storage side, then flip the routing — dispatchers and entry
		// routing read the topology snapshot, so the very next
		// submission lands at the new owner.
		c.db.Partition(w).Handoff(int64(dst))
		c.topo.SetOwner(w, dst)
	}
	c.gate.Store(nil)
	close(g.reopen)
	return err
}

// AdaptationKind discriminates the architecture changes the
// self-driving controller applies.
type AdaptationKind int

const (
	// EvPolicySwitch is a routing-policy change (From → To).
	EvPolicySwitch AdaptationKind = iota
	// EvGrow is an elastic server addition for analytical load.
	EvGrow
	// EvRebalance is a live partition-ownership migration (Warehouse
	// moved to an AC on Server).
	EvRebalance
)

func (k AdaptationKind) String() string {
	switch k {
	case EvPolicySwitch:
		return "policy-switch"
	case EvGrow:
		return "grow"
	case EvRebalance:
		return "rebalance"
	}
	return fmt.Sprintf("AdaptationKind(%d)", int(k))
}

// AdaptationEvent records one decision the self-driving controller
// applied (Config.AutoAdapt / Config.AutoRebalance).
type AdaptationEvent struct {
	// At is the time since Open.
	At time.Duration
	// Kind says what changed: the routing policy, the server count, or
	// data placement.
	Kind AdaptationKind
	// From and To are the routing policies around the switch (equal
	// for grow and rebalance events).
	From, To Policy
	// Grew reports whether a server was added for analytical load.
	Grew bool
	// Warehouse and Server describe an EvRebalance migration: the
	// partition moved and the server now hosting its owner AC.
	Warehouse int
	Server    int
	// Probe marks switches the measured cost model made to measure an
	// unexplored policy (and the return switch ending the probe)
	// rather than because it already preferred the target.
	Probe bool
	// Regret is the measured model's cumulative normalized regret at
	// decision time — the trace that shows the self-driving loop
	// converging (flat = converged on the best-known arm per phase).
	Regret float64
	// Reason summarizes the window signals behind the decision.
	Reason string
}

// AdaptationLog returns the architecture changes the self-driving
// controller has applied so far (empty without Config.AutoAdapt).
func (c *Cluster) AdaptationLog() []AdaptationEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AdaptationEvent, len(c.adaptLog))
	copy(out, c.adaptLog)
	return out
}

// eventSub is one Events subscription.
type eventSub struct {
	ctx context.Context
	ch  chan AdaptationEvent
}

// Events subscribes to adaptation events: every architecture change the
// self-driving controller applies is delivered on the returned channel
// as it happens, in order. The channel is buffered; a subscriber that
// falls behind misses events rather than stalling adaptation (use
// AdaptationLog for the complete history). Ending ctx detaches the
// subscription (observed at the next publish); Close closes all
// remaining channels. On a cluster without Config.AutoAdapt the channel
// never delivers and is closed on Close.
func (c *Cluster) Events(ctx context.Context) <-chan AdaptationEvent {
	ch := make(chan AdaptationEvent, 16)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed.Load() || ctx.Err() != nil {
		close(ch)
		return ch
	}
	c.subs = append(c.subs, eventSub{ctx: ctx, ch: ch})
	return ch
}

// runApplier serializes controller decisions: each one drains in-flight
// work, reroutes, and/or grows a server, then is recorded in the log.
func (c *Cluster) runApplier() {
	defer c.applierWG.Done()
	for range c.decKick {
		c.drainDecisions()
	}
	c.drainDecisions() // decisions enqueued after the final kick
}

func (c *Cluster) drainDecisions() {
	for {
		c.mu.Lock()
		if len(c.decQ) == 0 {
			c.mu.Unlock()
			return
		}
		d := c.decQ[0]
		c.decQ = c.decQ[1:]
		c.mu.Unlock()
		c.applyDecision(d)
	}
}

func (c *Cluster) applyDecision(d *adapt.Decision) {
	if c.closed.Load() {
		return
	}
	ev := AdaptationEvent{
		At:   time.Since(c.start),
		From: Policy(d.From), To: Policy(d.To),
		Grew: d.Grow, Probe: d.Probe, Regret: d.Regret, Reason: d.Reason,
	}
	applied := false
	if d.Grow {
		// Fresh compute for analytics: OpenOrders places joins on the
		// newest server, so the very next query benefits. Growth can
		// be refused when Close races us — log only what happened.
		ev.Kind = EvGrow
		ev.Grew = c.AddServer(c.cores) > 0
		applied = ev.Grew
	}
	if d.Move != nil {
		// Elastic repartitioning: map the controller's owner slot to
		// its AC and perform the live handoff. A slot past the pool
		// (racing a concurrent grow) or a failed move is skipped; the
		// controller re-evaluates from ground truth next window.
		cands := *c.ownerCands.Load()
		if d.Move.ToOwner >= 0 && d.Move.ToOwner < len(cands) {
			dst := cands[d.Move.ToOwner]
			if err := c.moveWarehouse(context.Background(), d.Move.Warehouse, dst); err == nil {
				ev.Kind = EvRebalance
				ev.Warehouse = d.Move.Warehouse
				ev.Server = c.topo.ServerOf(dst)
				applied = true
			}
		}
	}
	if d.To != d.From {
		if err := c.setPolicy(context.Background(), Policy(d.To)); err != nil {
			return // closed mid-switch; nothing to record
		}
		ev.Kind = EvPolicySwitch
		applied = true
	}
	if !applied {
		return // nothing was applied
	}
	c.mu.Lock()
	c.adaptLog = append(c.adaptLog, ev)
	// Reap subscribers whose context ended; only the applier goroutine
	// publishes or closes subscriber channels, so this is race-free.
	live := c.subs[:0]
	var dead []chan AdaptationEvent
	for _, s := range c.subs {
		if s.ctx.Err() != nil {
			dead = append(dead, s.ch)
			continue
		}
		live = append(live, s)
	}
	c.subs = live
	subs := append([]eventSub(nil), live...)
	c.mu.Unlock()
	for _, ch := range dead {
		close(ch)
	}
	for _, s := range subs {
		select {
		case s.ch <- ev:
		default: // slow subscriber: drop rather than stall adaptation
		}
	}
}

// Verify checks the TPC-C consistency conditions over the current state.
// It quiesces the cluster first — an epoch drain, exactly like a policy
// switch: submissions arriving mid-verify briefly gate, in-flight work
// completes, the check runs over a stable snapshot, and the plane
// reopens under the unchanged policy. Concurrent with Close it waits
// for Close's own final drain instead (the engine is stopped, so the
// read is equally stable).
func (c *Cluster) Verify() error {
	c.switchMu.Lock()
	if !c.closed.Load() {
		e := c.sub.Load()
		e.closed.Store(true)
		if err := c.drainLocked(context.Background()); err == nil {
			// On a multi-process cluster the check runs against the head
			// database, so remote-owned partitions come home first.
			verr := c.pullRemotePartitions()
			if verr == nil {
				_, verr = tpcc.Verify(c.db, c.cfg)
			}
			c.reopenLocked(e, e.policy)
			c.switchMu.Unlock()
			return verr
		}
		// Close raced the drain and owns the plane now; fall through.
	}
	c.switchMu.Unlock()
	<-c.closeDrained
	if c.remoteACs != nil {
		// Close pulls the remote-owned partitions home after its final
		// drain; wait for the full teardown so the head copy is complete.
		<-c.closeDone
	}
	_, err := tpcc.Verify(c.db, c.cfg)
	return err
}

// Stats reports cluster-level counters.
type Stats struct {
	Servers, ACs int
	Warehouses   int
	// UnmatchedDone counts transaction completions that found no
	// waiting caller; nonzero means a transaction was resolved twice.
	UnmatchedDone int64
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	return Stats{
		Servers:       c.topo.NumServers(),
		ACs:           c.topo.NumACs(),
		Warehouses:    c.cfg.Warehouses,
		UnmatchedDone: c.unmatchedDone.Load(),
	}
}

// Close stops all AC goroutines. It closes the submission plane (every
// gated or future entry observes ErrClosed), waits for all in-flight
// transactions and analytical queries to drain — so no work is ever cut
// off mid-flight and the database is left consistent — then stops the
// engine and tears down subscriptions. Concurrent and repeated calls
// wait for the teardown to finish.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		<-c.closeDone
		return
	}
	// Release every parked submitter and abort any in-progress policy
	// switch (it observes closedCh, returns ErrClosed, and leaves the
	// plane closed for us).
	close(c.closedCh)
	c.switchMu.Lock()
	c.sub.Load().closed.Store(true)
	for c.inflightCount() != 0 {
		<-c.drainWake
	}
	c.switchMu.Unlock()
	close(c.closeDrained)
	if c.remoteACs != nil {
		// Bring every remote-owned partition home — the head database is
		// the complete post-run state (Verify after Close reads it) —
		// then dismiss the members; each stops its engine and closes its
		// connection.
		_ = c.pullRemotePartitions()
		for _, m := range c.peers {
			_ = m.peer.WriteControl(&transport.Bye{})
		}
	}
	c.eng.Stop()
	if c.remoteACs != nil {
		// Stop closed the remote-AC outboxes, so the router drainers are
		// exiting; wait for them, then drop the connections and the
		// head-side serve loops.
		for _, m := range c.peers {
			m.peer.WaitDrainers()
			m.peer.Close()
		}
		c.ln.Close()
		c.serveWG.Wait()
	}
	// The dispatcher goroutines are gone, so no appends are in flight:
	// closing the log devices is race-free. The final drain flushed
	// every admitted batch, so nothing durable is lost here.
	c.walMu.Lock()
	for _, wf := range c.walFiles {
		wf.dev.Close()
	}
	c.walMu.Unlock()
	// The drain above resolved every transaction and delivered every
	// query result, so the wait table is empty unless something slipped
	// past accounting; closing leftovers (race-free now — all AC
	// goroutines are gone) unblocks their callers with ErrClosed.
	c.qMu.Lock()
	for qid, qw := range c.qWait {
		delete(c.qWait, qid)
		if qw.ch != nil {
			close(qw.ch)
		}
	}
	c.qMu.Unlock()
	if c.decKick != nil {
		// No more decisions can arrive either; drain the applier.
		close(c.decKick)
		c.applierWG.Wait()
	}
	// The applier is gone (or never existed): nobody can publish another
	// adaptation event, so closing the subscriber channels is race-free.
	c.mu.Lock()
	subs := c.subs
	c.subs = nil
	c.mu.Unlock()
	for _, s := range subs {
		close(s.ch)
	}
	close(c.closeDone)
}

// Costs exposes the engine's cost model (used by the examples to print
// the calibration).
func (c *Cluster) Costs() sim.CostModel { return c.eng.Costs }

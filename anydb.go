// Package anydb is an architecture-less DBMS: a cluster of generic
// AnyComponents (ACs) instrumented by event and data streams, able to
// mimic a shared-nothing system, a shared-disk system, or anything in
// between on a per-transaction/per-query basis purely through routing —
// a from-scratch implementation of Bang et al., "AnyDB: An
// Architecture-less DBMS for Any Workload" (CIDR 2021).
//
// The public API runs the real goroutine runtime: one goroutine per AC,
// multi-producer mailboxes as the event/data streams. The paper's
// figures are reproduced on a deterministic virtual-time twin of this
// runtime by cmd/anydb-bench.
//
// Quick start:
//
//	cluster, err := anydb.Open(anydb.Config{})
//	defer cluster.Close()
//	committed, err := cluster.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 7, Amount: 42})
//	open, err := cluster.OpenOrders()
package anydb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anydb/internal/adapt"
	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Policy selects how transactions are routed over the ACs (the paper's
// §3 execution strategies).
type Policy int

const (
	// SharedNothing physically aggregates each transaction at its home
	// partition's owner AC (Figure 4b).
	SharedNothing Policy = iota
	// StreamingCC routes per-record-class segments through a sequencer
	// for lock-free pipelined execution under contention (§3.3).
	StreamingCC
)

func (p Policy) String() string {
	if p == SharedNothing {
		return "shared-nothing"
	}
	return "streaming-cc"
}

// Config sizes the cluster and the built-in TPC-C-style database.
type Config struct {
	// Servers and CoresPerServer define the initial topology
	// (default 2×4, the paper's Figure 2 layout).
	Servers        int
	CoresPerServer int
	// Warehouses etc. size the database (defaults are small).
	Warehouses            int
	Districts             int
	CustomersPerDistrict  int
	Items                 int
	InitialOrdersPerDist  int
	Seed                  int64
	DisableInitialOrders  bool
	LastNamesPerDistrict  int // unused; reserved
	PaymentsByLastAllowed bool
	// AutoAdapt turns on the self-driving loop: dispatchers report
	// workload signals to an adaptation-controller AC, which switches
	// the routing policy (and grows a server when analytical load
	// appears) on its own. Inspect what it did via AdaptationLog.
	AutoAdapt bool
	// AdaptWindow is the sliding signal window for AutoAdapt
	// (default 10ms wall clock).
	AdaptWindow time.Duration
}

// Cluster is a running architecture-less DBMS instance.
type Cluster struct {
	eng   *core.Engine
	topo  *core.Topology
	db    *storage.Database
	cfg   tpcc.Config
	cores int // cores per server, for elastic growth

	execs []core.ACID
	ctrl  []core.ACID

	mu      sync.Mutex
	idle    *sync.Cond // signaled when inflight drops to 0 or a drain ends
	policy  Policy
	dispers map[core.ACID]*oltp.Dispatcher
	nextTxn core.TxnID
	nextQ   core.QueryID
	txnWait map[core.TxnID]chan bool
	qWait   map[core.QueryID]chan *olap.QueryResult
	// inflight counts submitted transactions not yet resolved;
	// draining gates new submissions while a policy switch waits for
	// it to reach zero. Together they replace a WaitGroup, whose
	// concurrent Add-while-Wait pattern is documented misuse.
	inflight int
	draining bool
	closed   bool

	// Self-driving state (Config.AutoAdapt). Decisions queue under mu
	// and the applier is kicked via decKick: the controller assumes
	// every emitted decision is applied (it tracks the policy it chose),
	// so none may be dropped.
	adaptCtrl *adapt.Controller
	adaptLog  []AdaptationEvent
	decQ      []*adapt.Decision
	decKick   chan struct{}
	applierWG sync.WaitGroup
	start     time.Time
	// growAsked flips once the controller requested elastic growth;
	// query-completion signals only feed that one-shot trigger, so
	// injecting them afterwards would be pure overhead on the
	// controller AC.
	growAsked atomic.Bool
	// unmatchedDone counts completion events with no waiting caller —
	// a lost or double-resolved transaction if ever nonzero.
	unmatchedDone atomic.Int64
}

// Open populates the database and starts the AC goroutines.
func Open(cfg Config) (*Cluster, error) {
	tc := tpcc.Config{
		Warehouses: cfg.Warehouses, Districts: cfg.Districts,
		Customers: cfg.CustomersPerDistrict, Items: cfg.Items,
		InitOrders: cfg.InitialOrdersPerDist, LinesPerOrder: 1, Seed: cfg.Seed,
	}.WithDefaults()
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.CoresPerServer == 0 {
		cfg.CoresPerServer = 4
	}
	if cfg.Servers < 2 {
		return nil, errors.New("anydb: need at least 2 servers (executors + control)")
	}
	db := storage.NewDatabase(tc.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, tc)
	// Statistics for the SQL planner (partition 0 is representative:
	// population is symmetric across warehouses).
	for _, tn := range db.Catalog.Tables() {
		db.Catalog.SetStats(tn, storage.Analyze(db.Partition(0).Table(tn)))
	}

	c := &Cluster{
		db: db, cfg: tc, cores: cfg.CoresPerServer,
		dispers: make(map[core.ACID]*oltp.Dispatcher),
		txnWait: make(map[core.TxnID]chan bool),
		qWait:   make(map[core.QueryID]chan *olap.QueryResult),
		start:   time.Now(),
	}
	c.idle = sync.NewCond(&c.mu)
	c.topo = core.NewTopology(db)
	c.execs = c.topo.AddServer(cfg.CoresPerServer)
	c.ctrl = c.topo.AddServer(cfg.CoresPerServer)
	for s := 2; s < cfg.Servers; s++ {
		c.topo.AddServer(cfg.CoresPerServer)
	}
	for w := 0; w < tc.Warehouses; w++ {
		c.topo.SetOwner(w, c.execs[w%len(c.execs)])
	}
	if cfg.AutoAdapt {
		window := cfg.AdaptWindow
		if window <= 0 {
			window = 10 * time.Millisecond
		}
		c.adaptCtrl = adapt.NewController(adapt.Options{
			Start: oltp.SharedNothing,
			// The public API wires routes for the two headline
			// policies; the controller chooses between them.
			Candidates: []oltp.Policy{oltp.SharedNothing, oltp.StreamingCC},
			Env:        adapt.Env{Executors: len(c.execs), Warehouses: tc.Warehouses},
			WindowSpan: sim.Time(window.Nanoseconds()),
			Elastic:    true,
		})
		c.decKick = make(chan struct{}, 1)
		c.applierWG.Add(1)
		go c.runApplier()
	}
	c.eng = core.NewEngine(c.topo, c.setupAC)
	c.eng.SetClient(c.onDone)
	return c, nil
}

func (c *Cluster) setupAC(ac *core.AC) {
	ac.Register(core.EvSegment, &oltp.Executor{DB: c.db})
	ac.Register(core.EvInstallOp, &olap.Worker{DB: c.db})
	ac.Register(core.EvQuery, &plan.QO{Topo: c.topo})
	ac.Register(core.EvSeqStamp, &core.Sequencer{})
	tel := oltp.Telemetry{Sink: c.ctrl[1], Every: 64, Enabled: c.adaptCtrl != nil}
	if c.adaptCtrl != nil {
		// The controller registers on every AC (components stay
		// generic); only the telemetry sink receives reports, so its
		// state stays on one goroutine.
		ac.Register(core.EvSignal, c.adaptCtrl)
	}
	if len(c.ctrl) > 2 && ac.ID == c.ctrl[2] {
		coord := oltp.NewCoordinator()
		coord.SetTelemetry(tel)
		ac.Register(core.EvAck, coord)
		return
	}
	// Servers grown at runtime inherit the active policy. Reading the
	// policy, building the dispatcher and publishing it happen in one
	// critical section so a concurrent SetPolicy either sees the new
	// dispatcher in the map or runs before it configures itself.
	c.mu.Lock()
	pol := c.policy
	d := oltp.NewDispatcher(internalPolicy(pol), c.db, c.routes(pol))
	d.SetTelemetry(tel)
	c.dispers[ac.ID] = d
	c.mu.Unlock()
	ac.Register(core.EvTxn, d)
	ac.Register(core.EvAck, d)
}

// internalPolicy maps the public policy to the dispatcher's.
func internalPolicy(p Policy) oltp.Policy {
	if p == StreamingCC {
		return oltp.StreamingCC
	}
	return oltp.SharedNothing
}

// publicPolicy maps a dispatcher policy to the public type.
func publicPolicy(p oltp.Policy) Policy {
	if p == oltp.StreamingCC {
		return StreamingCC
	}
	return SharedNothing
}

func (c *Cluster) routes(p Policy) oltp.Routes {
	r := oltp.Routes{Owner: c.topo.Owner, Seq: c.ctrl[1], Coord: core.NoAC}
	if p == StreamingCC {
		execs := c.execs
		r.ClassRoute = func(w int, cl oltp.Class) core.ACID {
			switch cl {
			case oltp.ClassCustomer:
				return execs[1%len(execs)]
			case oltp.ClassHistory:
				return execs[2%len(execs)]
			case oltp.ClassStock:
				return execs[3%len(execs)]
			default:
				return execs[0]
			}
		}
		r.Coord = c.ctrl[2]
	}
	return r
}

// SetPolicy reroutes subsequent transactions. It gates new submissions
// and waits for in-flight transactions to finish first, so conflicting
// work never straddles two routings — the architecture shift itself is
// instantaneous (§2.1: no reconfiguration downtime). Safe to call
// concurrently with Payment/NewOrder from any goroutine: submissions
// arriving mid-switch briefly block, then run under the new routing.
//
// On a self-driving cluster (Config.AutoAdapt) the controller owns the
// routing; manual switches would silently fight it, so SetPolicy
// returns an error instead.
func (c *Cluster) SetPolicy(p Policy) error {
	if c.adaptCtrl != nil {
		return errors.New("anydb: cluster is self-driving (Config.AutoAdapt); the controller owns the policy")
	}
	return c.setPolicy(p)
}

// setPolicy is the switch path shared by SetPolicy and the adaptation
// applier.
func (c *Cluster) setPolicy(p Policy) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	// One switch at a time.
	for c.draining && !c.closed {
		c.idle.Wait()
	}
	if c.closed {
		return errors.New("anydb: cluster closed")
	}
	c.draining = true
	for c.inflight > 0 {
		c.idle.Wait()
	}
	if c.closed {
		// Close raced the drain; don't reconfigure a stopped cluster.
		c.draining = false
		c.idle.Broadcast()
		return errors.New("anydb: cluster closed")
	}
	c.policy = p
	routes := c.routes(p)
	for _, d := range c.dispers {
		d.SetConfig(internalPolicy(p), routes)
	}
	c.draining = false
	c.idle.Broadcast()
	return nil
}

// Payment identifies a TPC-C payment (§2.5).
type Payment struct {
	Warehouse, District int     // paying warehouse/district
	Customer            int     // customer id (ignored when ByLastName)
	ByLastName          bool    // select customer by last name
	LastName            string  // TPC-C syllable name, e.g. "BARBARBAR"
	Amount              float64 // payment amount
	// CustomerWarehouse/District default to the paying ones.
	CustomerWarehouse, CustomerDistrict int
}

// OrderLine is one new-order line.
type OrderLine struct {
	Item, Qty, SupplyWarehouse int
}

// NewOrder identifies a TPC-C new-order (§2.4).
type NewOrder struct {
	Warehouse, District, Customer int
	Lines                         []OrderLine
}

// Payment executes a payment transaction and reports whether it
// committed.
func (c *Cluster) Payment(p Payment) (bool, error) {
	cw, cd := p.CustomerWarehouse, p.CustomerDistrict
	if cw == 0 && cd == 0 {
		cw, cd = p.Warehouse, p.District
	}
	t := tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{
		W: p.Warehouse, D: p.District, CW: cw, CD: cd,
		C: p.Customer, ByLast: p.ByLastName, Amount: p.Amount,
	}}
	if p.ByLastName {
		num := tpcc.LastNameNum(p.LastName)
		if num < 0 {
			return false, fmt.Errorf("anydb: %q is not a TPC-C last name", p.LastName)
		}
		t.Payment.Last = num
	}
	return c.exec(&t)
}

// NewOrder executes a new-order transaction; false means the transaction
// rolled back (invalid item).
func (c *Cluster) NewOrder(no NewOrder) (bool, error) {
	t := tpcc.Txn{Kind: tpcc.TxnNewOrder, NewOrder: tpcc.NewOrder{
		W: no.Warehouse, D: no.District, C: no.Customer,
	}}
	for _, l := range no.Lines {
		t.NewOrder.Lines = append(t.NewOrder.Lines, tpcc.NewOrderLine{
			Item: l.Item, Qty: l.Qty, SupplyW: l.SupplyWarehouse,
		})
	}
	return c.exec(&t)
}

func (c *Cluster) exec(t *tpcc.Txn) (bool, error) {
	c.mu.Lock()
	for c.draining && !c.closed {
		c.idle.Wait()
	}
	if c.closed {
		c.mu.Unlock()
		return false, errors.New("anydb: cluster closed")
	}
	c.nextTxn++
	id := c.nextTxn
	ch := make(chan bool, 1)
	c.txnWait[id] = ch
	pol := c.policy
	c.inflight++
	c.mu.Unlock()

	entry := c.ctrl[0]
	if pol == SharedNothing {
		entry = c.topo.Owner(t.HomeWarehouse())
	}
	c.eng.Inject(entry, &core.Event{Kind: core.EvTxn, Txn: id, Payload: t})
	committed := <-ch
	return committed, nil
}

// QueryOptions tunes analytical query execution.
type QueryOptions struct {
	// Beam initiates data streams at query arrival so transfers overlap
	// the compile window (§4 data beaming). Default off here; the
	// zero-argument OpenOrders enables it.
	Beam bool
	// CompileDelay models the query-optimizer compile window (the paper
	// cites ~30ms for a commercial DBMS). With Beam set, scans push
	// data during this window.
	CompileDelay time.Duration
}

// OpenOrders runs the paper's analytical query (§4: all open orders for
// customers from states 'A%' since 2007) with full data beaming.
func (c *Cluster) OpenOrders() (int64, error) {
	return c.OpenOrdersOpts(QueryOptions{Beam: true})
}

// OpenOrdersOpts runs the analytical query with explicit options. Joins
// are placed on the newest server — disaggregated from the OLTP owners —
// so AddServer immediately gives analytics fresh compute (§5 elasticity).
//
// Scans execute at each partition's owner AC, interleaved with that
// partition's transactions, so concurrent OLTP is safe under the
// SharedNothing policy (all access to a partition serializes at its
// owner). Under StreamingCC, writes run on record-class ACs instead;
// run analytics only while OLTP is quiescent in that mode.
func (c *Cluster) OpenOrdersOpts(o QueryOptions) (int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errors.New("anydb: cluster closed")
	}
	c.nextQ++
	qid := c.nextQ
	ch := make(chan *olap.QueryResult, 1)
	c.qWait[qid] = ch
	c.mu.Unlock()

	parts := make([]int, c.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	beam := plan.BeamNone
	if o.Beam {
		beam = plan.BeamAll
	}
	computeACs := c.topo.ACs(c.topo.NumServers() - 1)
	p := &plan.Q3Plan{
		Query: qid, Beam: beam, CompileTime: sim.Time(o.CompileDelay.Nanoseconds()),
		Parts:   parts,
		Join1AC: computeACs[0], Join2AC: computeACs[1%len(computeACs)],
		Notify: core.ClientAC,
	}
	c.eng.Inject(c.ctrl[3], &core.Event{Kind: core.EvQuery, Query: qid, Payload: p})
	res, ok := <-ch
	if !ok {
		return 0, errors.New("anydb: cluster closed")
	}
	return res.Rows, nil
}

// Query executes a read-only SQL query — SELECT COUNT(*) or a projection
// over inner equi-joins with AND-composed predicates (see internal/sql
// for the grammar). It returns the row count and, for projections, the
// materialized rows (int64/float64/string cells, capped at
// olap-internal CollectCap). Scans execute at partition owners and joins
// on the newest server with full beaming, like OpenOrders.
func (c *Cluster) Query(text string) (int64, [][]any, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, errors.New("anydb: cluster closed")
	}
	c.nextQ++
	qid := c.nextQ
	c.mu.Unlock()

	parts := make([]int, c.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	compute := c.topo.ACs(c.topo.NumServers() - 1)
	p, err := plan.CompileSQL(c.db.Catalog, q, qid, parts, compute, core.ClientAC)
	if err != nil {
		return 0, nil, err
	}
	p.Beam = true

	ch := make(chan *olap.QueryResult, 1)
	c.mu.Lock()
	// Re-check: Close may have swept qWait while CompileSQL ran; a
	// channel registered after that sweep would never resolve.
	if c.closed {
		c.mu.Unlock()
		return 0, nil, errors.New("anydb: cluster closed")
	}
	c.qWait[qid] = ch
	c.mu.Unlock()
	c.eng.Inject(c.ctrl[3], &core.Event{Kind: core.EvQuery, Query: qid, Payload: p})
	res, ok := <-ch
	if !ok {
		return 0, nil, errors.New("anydb: cluster closed")
	}
	var rows [][]any
	for _, r := range res.Collected {
		out := make([]any, len(r))
		for i, v := range r {
			switch v.Kind {
			case storage.KInt:
				out[i] = v.I
			case storage.KFloat:
				out[i] = v.F
			default:
				out[i] = v.S
			}
		}
		rows = append(rows, out)
	}
	return res.Rows, rows, nil
}

// onDone resolves waiting callers. It runs on AC goroutines and must
// never block.
func (c *Cluster) onDone(ev *core.Event) {
	switch p := ev.Payload.(type) {
	case *oltp.DoneInfo:
		c.mu.Lock()
		ch := c.txnWait[ev.Txn]
		delete(c.txnWait, ev.Txn)
		if ch != nil {
			c.inflight--
			if c.inflight == 0 {
				c.idle.Broadcast()
			}
		}
		c.mu.Unlock()
		if ch != nil {
			ch <- p.Committed
		} else {
			c.unmatchedDone.Add(1)
		}
	case *olap.QueryResult:
		c.mu.Lock()
		ch := c.qWait[p.Query]
		delete(c.qWait, p.Query)
		c.mu.Unlock()
		if ch != nil {
			ch <- p
		}
		if c.adaptCtrl != nil && !c.growAsked.Load() {
			// Feed analytical activity into the signal stream so the
			// controller can react with elasticity (a one-shot
			// trigger — once growth is requested, stop reporting).
			c.eng.Inject(c.ctrl[1], &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
				At: sim.Time(time.Since(c.start).Nanoseconds()), Queries: 1,
			}})
		}
	case *adapt.Decision:
		if p.Grow {
			c.growAsked.Store(true)
		}
		// Applied off the AC goroutine: applying drains in-flight
		// work, which needs the ACs to keep running.
		c.mu.Lock()
		c.decQ = append(c.decQ, p)
		c.mu.Unlock()
		select {
		case c.decKick <- struct{}{}:
		default: // applier already kicked; it drains the whole queue
		}
	}
}

// AddServer grows the cluster by one server (elasticity, §5) and returns
// how many ACs it added.
func (c *Cluster) AddServer(cores int) int {
	ids := c.eng.GrowServer(cores, c.setupAC)
	return len(ids)
}

// AdaptationEvent records one decision the self-driving controller
// applied (Config.AutoAdapt).
type AdaptationEvent struct {
	// At is the time since Open.
	At time.Duration
	// From and To are the routing policies around the switch (equal
	// for grow-only events).
	From, To Policy
	// Grew reports whether a server was added for analytical load.
	Grew bool
	// Reason summarizes the window signals behind the decision.
	Reason string
}

// AdaptationLog returns the architecture changes the self-driving
// controller has applied so far (empty without Config.AutoAdapt).
func (c *Cluster) AdaptationLog() []AdaptationEvent {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]AdaptationEvent, len(c.adaptLog))
	copy(out, c.adaptLog)
	return out
}

// runApplier serializes controller decisions: each one drains in-flight
// work, reroutes, and/or grows a server, then is recorded in the log.
func (c *Cluster) runApplier() {
	defer c.applierWG.Done()
	for range c.decKick {
		c.drainDecisions()
	}
	c.drainDecisions() // decisions enqueued after the final kick
}

func (c *Cluster) drainDecisions() {
	for {
		c.mu.Lock()
		if len(c.decQ) == 0 {
			c.mu.Unlock()
			return
		}
		d := c.decQ[0]
		c.decQ = c.decQ[1:]
		c.mu.Unlock()
		c.applyDecision(d)
	}
}

func (c *Cluster) applyDecision(d *adapt.Decision) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return
	}
	ev := AdaptationEvent{
		At:   time.Since(c.start),
		From: publicPolicy(d.From), To: publicPolicy(d.To),
		Grew: d.Grow, Reason: d.Reason,
	}
	if d.Grow {
		// Fresh compute for analytics: OpenOrders places joins on the
		// newest server, so the very next query benefits. Growth can
		// be refused when Close races us — log only what happened.
		ev.Grew = c.AddServer(c.cores) > 0
	}
	if d.To != d.From {
		if err := c.setPolicy(publicPolicy(d.To)); err != nil {
			return // closed mid-switch; nothing to record
		}
	} else if !ev.Grew {
		return // nothing was applied
	}
	c.mu.Lock()
	c.adaptLog = append(c.adaptLog, ev)
	c.mu.Unlock()
}

// Verify checks the TPC-C consistency conditions over the current state.
func (c *Cluster) Verify() error {
	c.mu.Lock()
	for c.inflight > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
	_, err := tpcc.Verify(c.db, c.cfg)
	return err
}

// Stats reports cluster-level counters.
type Stats struct {
	Servers, ACs int
	Warehouses   int
	// UnmatchedDone counts transaction completions that found no
	// waiting caller; nonzero means a transaction was resolved twice.
	UnmatchedDone int64
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	return Stats{
		Servers:       c.topo.NumServers(),
		ACs:           c.topo.NumACs(),
		Warehouses:    c.cfg.Warehouses,
		UnmatchedDone: c.unmatchedDone.Load(),
	}
}

// Close stops all AC goroutines.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.idle.Broadcast() // release submitters blocked on a drain
	for c.inflight > 0 {
		c.idle.Wait()
	}
	c.mu.Unlock()
	c.eng.Stop()
	// The transaction drain above resolves every Payment/NewOrder
	// waiter, but queries have no inflight accounting: a query whose
	// result was still streaming when the engine stopped would leave
	// its caller blocked forever. All AC goroutines are gone now, so
	// closing the channels is race-free and unblocks those callers
	// with an error.
	c.mu.Lock()
	for qid, ch := range c.qWait {
		delete(c.qWait, qid)
		close(ch)
	}
	c.mu.Unlock()
	if c.decKick != nil {
		// No more decisions can arrive either; drain the applier.
		close(c.decKick)
		c.applierWG.Wait()
	}
}

// Costs exposes the engine's cost model (used by the examples to print
// the calibration).
func (c *Cluster) Costs() sim.CostModel { return c.eng.Costs }

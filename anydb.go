// Package anydb is an architecture-less DBMS: a cluster of generic
// AnyComponents (ACs) instrumented by event and data streams, able to
// mimic a shared-nothing system, a shared-disk system, or anything in
// between on a per-transaction/per-query basis purely through routing —
// a from-scratch implementation of Bang et al., "AnyDB: An
// Architecture-less DBMS for Any Workload" (CIDR 2021).
//
// The public API runs the real goroutine runtime: one goroutine per AC,
// multi-producer mailboxes as the event/data streams. The paper's
// figures are reproduced on a deterministic virtual-time twin of this
// runtime by cmd/anydb-bench.
//
// Quick start:
//
//	cluster, err := anydb.Open(anydb.Config{})
//	defer cluster.Close()
//	committed, err := cluster.Payment(anydb.Payment{Warehouse: 0, District: 1, Customer: 7, Amount: 42})
//	open, err := cluster.OpenOrders()
package anydb

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Policy selects how transactions are routed over the ACs (the paper's
// §3 execution strategies).
type Policy int

const (
	// SharedNothing physically aggregates each transaction at its home
	// partition's owner AC (Figure 4b).
	SharedNothing Policy = iota
	// StreamingCC routes per-record-class segments through a sequencer
	// for lock-free pipelined execution under contention (§3.3).
	StreamingCC
)

func (p Policy) String() string {
	if p == SharedNothing {
		return "shared-nothing"
	}
	return "streaming-cc"
}

// Config sizes the cluster and the built-in TPC-C-style database.
type Config struct {
	// Servers and CoresPerServer define the initial topology
	// (default 2×4, the paper's Figure 2 layout).
	Servers        int
	CoresPerServer int
	// Warehouses etc. size the database (defaults are small).
	Warehouses            int
	Districts             int
	CustomersPerDistrict  int
	Items                 int
	InitialOrdersPerDist  int
	Seed                  int64
	DisableInitialOrders  bool
	LastNamesPerDistrict  int // unused; reserved
	PaymentsByLastAllowed bool
}

// Cluster is a running architecture-less DBMS instance.
type Cluster struct {
	eng  *core.Engine
	topo *core.Topology
	db   *storage.Database
	cfg  tpcc.Config

	execs []core.ACID
	ctrl  []core.ACID

	mu       sync.Mutex
	policy   Policy
	dispers  map[core.ACID]*oltp.Dispatcher
	nextTxn  core.TxnID
	nextQ    core.QueryID
	txnWait  map[core.TxnID]chan bool
	qWait    map[core.QueryID]chan *olap.QueryResult
	inflight sync.WaitGroup
	closed   bool
}

// Open populates the database and starts the AC goroutines.
func Open(cfg Config) (*Cluster, error) {
	tc := tpcc.Config{
		Warehouses: cfg.Warehouses, Districts: cfg.Districts,
		Customers: cfg.CustomersPerDistrict, Items: cfg.Items,
		InitOrders: cfg.InitialOrdersPerDist, LinesPerOrder: 1, Seed: cfg.Seed,
	}.WithDefaults()
	if cfg.Servers == 0 {
		cfg.Servers = 2
	}
	if cfg.CoresPerServer == 0 {
		cfg.CoresPerServer = 4
	}
	if cfg.Servers < 2 {
		return nil, errors.New("anydb: need at least 2 servers (executors + control)")
	}
	db := storage.NewDatabase(tc.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, tc)
	// Statistics for the SQL planner (partition 0 is representative:
	// population is symmetric across warehouses).
	for _, tn := range db.Catalog.Tables() {
		db.Catalog.SetStats(tn, storage.Analyze(db.Partition(0).Table(tn)))
	}

	c := &Cluster{
		db: db, cfg: tc,
		dispers: make(map[core.ACID]*oltp.Dispatcher),
		txnWait: make(map[core.TxnID]chan bool),
		qWait:   make(map[core.QueryID]chan *olap.QueryResult),
	}
	c.topo = core.NewTopology(db)
	c.execs = c.topo.AddServer(cfg.CoresPerServer)
	c.ctrl = c.topo.AddServer(cfg.CoresPerServer)
	for s := 2; s < cfg.Servers; s++ {
		c.topo.AddServer(cfg.CoresPerServer)
	}
	for w := 0; w < tc.Warehouses; w++ {
		c.topo.SetOwner(w, c.execs[w%len(c.execs)])
	}
	c.eng = core.NewEngine(c.topo, c.setupAC)
	c.eng.SetClient(c.onDone)
	return c, nil
}

func (c *Cluster) setupAC(ac *core.AC) {
	ac.Register(core.EvSegment, &oltp.Executor{DB: c.db})
	ac.Register(core.EvInstallOp, &olap.Worker{DB: c.db})
	ac.Register(core.EvQuery, &plan.QO{Topo: c.topo})
	ac.Register(core.EvSeqStamp, &core.Sequencer{})
	if len(c.ctrl) > 2 && ac.ID == c.ctrl[2] {
		ac.Register(core.EvAck, oltp.NewCoordinator())
		return
	}
	d := oltp.NewDispatcher(oltp.SharedNothing, c.db, c.routes(SharedNothing))
	c.mu.Lock()
	c.dispers[ac.ID] = d
	c.mu.Unlock()
	ac.Register(core.EvTxn, d)
	ac.Register(core.EvAck, d)
}

func (c *Cluster) routes(p Policy) oltp.Routes {
	r := oltp.Routes{Owner: c.topo.Owner, Seq: c.ctrl[1], Coord: core.NoAC}
	if p == StreamingCC {
		execs := c.execs
		r.ClassRoute = func(w int, cl oltp.Class) core.ACID {
			switch cl {
			case oltp.ClassCustomer:
				return execs[1%len(execs)]
			case oltp.ClassHistory:
				return execs[2%len(execs)]
			case oltp.ClassStock:
				return execs[3%len(execs)]
			default:
				return execs[0]
			}
		}
		r.Coord = c.ctrl[2]
	}
	return r
}

// SetPolicy reroutes subsequent transactions. It waits for in-flight
// transactions to finish first, so conflicting work never straddles two
// routings — the architecture shift itself is instantaneous (§2.1: no
// reconfiguration downtime).
func (c *Cluster) SetPolicy(p Policy) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("anydb: cluster closed")
	}
	c.mu.Unlock()
	c.inflight.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.policy = p
	routes := c.routes(p)
	pol := oltp.SharedNothing
	if p == StreamingCC {
		pol = oltp.StreamingCC
	}
	for _, d := range c.dispers {
		d.SetConfig(pol, routes)
	}
	return nil
}

// Payment identifies a TPC-C payment (§2.5).
type Payment struct {
	Warehouse, District int     // paying warehouse/district
	Customer            int     // customer id (ignored when ByLastName)
	ByLastName          bool    // select customer by last name
	LastName            string  // TPC-C syllable name, e.g. "BARBARBAR"
	Amount              float64 // payment amount
	// CustomerWarehouse/District default to the paying ones.
	CustomerWarehouse, CustomerDistrict int
}

// OrderLine is one new-order line.
type OrderLine struct {
	Item, Qty, SupplyWarehouse int
}

// NewOrder identifies a TPC-C new-order (§2.4).
type NewOrder struct {
	Warehouse, District, Customer int
	Lines                         []OrderLine
}

// Payment executes a payment transaction and reports whether it
// committed.
func (c *Cluster) Payment(p Payment) (bool, error) {
	cw, cd := p.CustomerWarehouse, p.CustomerDistrict
	if cw == 0 && cd == 0 {
		cw, cd = p.Warehouse, p.District
	}
	t := tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{
		W: p.Warehouse, D: p.District, CW: cw, CD: cd,
		C: p.Customer, ByLast: p.ByLastName, Amount: p.Amount,
	}}
	if p.ByLastName {
		num := tpcc.LastNameNum(p.LastName)
		if num < 0 {
			return false, fmt.Errorf("anydb: %q is not a TPC-C last name", p.LastName)
		}
		t.Payment.Last = num
	}
	return c.exec(&t)
}

// NewOrder executes a new-order transaction; false means the transaction
// rolled back (invalid item).
func (c *Cluster) NewOrder(no NewOrder) (bool, error) {
	t := tpcc.Txn{Kind: tpcc.TxnNewOrder, NewOrder: tpcc.NewOrder{
		W: no.Warehouse, D: no.District, C: no.Customer,
	}}
	for _, l := range no.Lines {
		t.NewOrder.Lines = append(t.NewOrder.Lines, tpcc.NewOrderLine{
			Item: l.Item, Qty: l.Qty, SupplyW: l.SupplyWarehouse,
		})
	}
	return c.exec(&t)
}

func (c *Cluster) exec(t *tpcc.Txn) (bool, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false, errors.New("anydb: cluster closed")
	}
	c.nextTxn++
	id := c.nextTxn
	ch := make(chan bool, 1)
	c.txnWait[id] = ch
	pol := c.policy
	c.mu.Unlock()

	c.inflight.Add(1)
	entry := c.ctrl[0]
	if pol == SharedNothing {
		entry = c.topo.Owner(t.HomeWarehouse())
	}
	c.eng.Inject(entry, &core.Event{Kind: core.EvTxn, Txn: id, Payload: t})
	committed := <-ch
	return committed, nil
}

// QueryOptions tunes analytical query execution.
type QueryOptions struct {
	// Beam initiates data streams at query arrival so transfers overlap
	// the compile window (§4 data beaming). Default off here; the
	// zero-argument OpenOrders enables it.
	Beam bool
	// CompileDelay models the query-optimizer compile window (the paper
	// cites ~30ms for a commercial DBMS). With Beam set, scans push
	// data during this window.
	CompileDelay time.Duration
}

// OpenOrders runs the paper's analytical query (§4: all open orders for
// customers from states 'A%' since 2007) with full data beaming.
func (c *Cluster) OpenOrders() (int64, error) {
	return c.OpenOrdersOpts(QueryOptions{Beam: true})
}

// OpenOrdersOpts runs the analytical query with explicit options. Joins
// are placed on the newest server — disaggregated from the OLTP owners —
// so AddServer immediately gives analytics fresh compute (§5 elasticity).
//
// Scans execute at each partition's owner AC, interleaved with that
// partition's transactions, so concurrent OLTP is safe under the
// SharedNothing policy (all access to a partition serializes at its
// owner). Under StreamingCC, writes run on record-class ACs instead;
// run analytics only while OLTP is quiescent in that mode.
func (c *Cluster) OpenOrdersOpts(o QueryOptions) (int64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errors.New("anydb: cluster closed")
	}
	c.nextQ++
	qid := c.nextQ
	ch := make(chan *olap.QueryResult, 1)
	c.qWait[qid] = ch
	c.mu.Unlock()

	parts := make([]int, c.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	beam := plan.BeamNone
	if o.Beam {
		beam = plan.BeamAll
	}
	computeACs := c.topo.ACs(c.topo.NumServers() - 1)
	p := &plan.Q3Plan{
		Query: qid, Beam: beam, CompileTime: sim.Time(o.CompileDelay.Nanoseconds()),
		Parts:   parts,
		Join1AC: computeACs[0], Join2AC: computeACs[1%len(computeACs)],
		Notify: core.ClientAC,
	}
	c.eng.Inject(c.ctrl[3], &core.Event{Kind: core.EvQuery, Query: qid, Payload: p})
	return (<-ch).Rows, nil
}

// Query executes a read-only SQL query — SELECT COUNT(*) or a projection
// over inner equi-joins with AND-composed predicates (see internal/sql
// for the grammar). It returns the row count and, for projections, the
// materialized rows (int64/float64/string cells, capped at
// olap-internal CollectCap). Scans execute at partition owners and joins
// on the newest server with full beaming, like OpenOrders.
func (c *Cluster) Query(text string) (int64, [][]any, error) {
	q, err := sql.Parse(text)
	if err != nil {
		return 0, nil, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil, errors.New("anydb: cluster closed")
	}
	c.nextQ++
	qid := c.nextQ
	c.mu.Unlock()

	parts := make([]int, c.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	compute := c.topo.ACs(c.topo.NumServers() - 1)
	p, err := plan.CompileSQL(c.db.Catalog, q, qid, parts, compute, core.ClientAC)
	if err != nil {
		return 0, nil, err
	}
	p.Beam = true

	ch := make(chan *olap.QueryResult, 1)
	c.mu.Lock()
	c.qWait[qid] = ch
	c.mu.Unlock()
	c.eng.Inject(c.ctrl[3], &core.Event{Kind: core.EvQuery, Query: qid, Payload: p})
	res := <-ch
	var rows [][]any
	for _, r := range res.Collected {
		out := make([]any, len(r))
		for i, v := range r {
			switch v.Kind {
			case storage.KInt:
				out[i] = v.I
			case storage.KFloat:
				out[i] = v.F
			default:
				out[i] = v.S
			}
		}
		rows = append(rows, out)
	}
	return res.Rows, rows, nil
}

// onDone resolves waiting callers.
func (c *Cluster) onDone(ev *core.Event) {
	switch p := ev.Payload.(type) {
	case *oltp.DoneInfo:
		c.mu.Lock()
		ch := c.txnWait[ev.Txn]
		delete(c.txnWait, ev.Txn)
		c.mu.Unlock()
		if ch != nil {
			ch <- p.Committed
			c.inflight.Done()
		}
	case *olap.QueryResult:
		c.mu.Lock()
		ch := c.qWait[p.Query]
		delete(c.qWait, p.Query)
		c.mu.Unlock()
		if ch != nil {
			ch <- p
		}
	}
}

// AddServer grows the cluster by one server (elasticity, §5) and returns
// how many ACs it added.
func (c *Cluster) AddServer(cores int) int {
	ids := c.eng.GrowServer(cores, c.setupAC)
	return len(ids)
}

// Verify checks the TPC-C consistency conditions over the current state.
func (c *Cluster) Verify() error {
	c.inflight.Wait()
	_, err := tpcc.Verify(c.db, c.cfg)
	return err
}

// Stats reports cluster-level counters.
type Stats struct {
	Servers, ACs int
	Warehouses   int
}

// Stats returns a snapshot.
func (c *Cluster) Stats() Stats {
	return Stats{
		Servers:    c.topo.NumServers(),
		ACs:        c.topo.NumACs(),
		Warehouses: c.cfg.Warehouses,
	}
}

// Close stops all AC goroutines.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.inflight.Wait()
	c.eng.Stop()
}

// Costs exposes the engine's cost model (used by the examples to print
// the calibration).
func (c *Cluster) Costs() sim.CostModel { return c.eng.Costs }

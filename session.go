package anydb

import (
	"context"
	"errors"
	"sync/atomic"

	"anydb/internal/core"
	"anydb/internal/oltp"
	"anydb/internal/route"
	"anydb/internal/tpcc"
)

// ErrSessionClosed is returned by every Session method after Close.
var ErrSessionClosed = errors.New("anydb: session closed")

// sessFutureCap bounds a session's private future freelist; overflow
// spills to the shared cluster pool.
const sessFutureCap = 512

// Session is a client's pinned, pooled handle onto the submission plane.
// The session-less Submit*/Query entry points fingerprint the calling
// goroutine per call to pick an in-flight shard and revalidate the
// submission epoch from scratch every time; a Session resolves all of
// that once at open:
//
//   - it is pinned to one submission shard (round-robin over the shard
//     set, so concurrent sessions spread across the counters);
//   - it caches the current submission epoch and re-validates it with
//     one pointer compare per submit — only an actual epoch transition
//     (SetPolicy, Rebalance, Close) takes the slow path, which re-pins
//     the session to the successor epoch;
//   - it recycles its Futures through a private freelist with no
//     atomics, instead of the shared sync.Pool.
//
// A Session is NOT safe for concurrent use: all calls on it — and Wait
// on the futures it issued — must come from one goroutine at a time.
// For parallel load, open one session per worker goroutine (sessions
// are cheap and pooled). The session-less entry points remain available
// and fully concurrent-safe; both paths can be mixed freely on one
// cluster.
//
//	s := cluster.Session()
//	defer s.Close()
//	for i := 0; i < 128; i++ {
//		f, err := s.SubmitPayment(ctx, anydb.Payment{...})
//		...
//	}
type Session struct {
	c     *Cluster
	shard int32
	// epoch is the cached submission epoch; the fast path holds no
	// reference count on it (counts live in the cluster-lifetime
	// shards), so a stale pointer is only ever a missed fast path.
	epoch *submitEpoch
	// free is the private future freelist. Only the session goroutine
	// touches it (Session methods and Future.Wait's park).
	free []*Future
	// gen guards cross-goroutine future returns: Close bumps it, so a
	// future issued before Close can never land on the freelist of a
	// later incarnation of this pooled session. Read concurrently by
	// stale futures' park — hence atomic — but only the session
	// goroutine writes it.
	gen    atomic.Uint32
	closed bool
}

// Session opens a pooled client session. The returned session is pinned
// to a submission shard and the current routing epoch; see the type
// documentation for the concurrency contract. Sessions may outlive
// policy switches and rebalances (they re-pin transparently) but not
// the cluster: after Cluster.Close every method returns ErrClosed.
func (c *Cluster) Session() *Session {
	var s *Session
	if v := c.sessPool.Get(); v != nil {
		s = v.(*Session)
		s.closed = false
	} else {
		s = &Session{c: c}
	}
	s.shard = int32(c.nextSess.Add(1)) & c.shardMask
	s.epoch = c.sub.Load()
	return s
}

// Close returns the session to the cluster's pool. Futures still in
// flight stay valid — they detach from the session (generation bump)
// and recycle through the shared pool instead. Closing twice is a no-op.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.gen.Add(1)
	for i, f := range s.free {
		f.sess = nil
		s.free[i] = nil
		s.c.futPool.Put(f)
	}
	s.free = s.free[:0]
	s.c.sessPool.Put(s)
}

// getFuture issues a future from the session freelist, falling back to
// the shared pool.
func (s *Session) getFuture() *Future {
	if n := len(s.free) - 1; n >= 0 {
		f := s.free[n]
		s.free[n] = nil
		s.free = s.free[:n]
		f.state.Store(futPending)
		return f
	}
	f := s.c.getFuture()
	f.sess, f.sgen = s, s.gen.Load()
	return f
}

// enter joins the cached epoch with one in-flight count held on the
// session's pinned shard. The fast path is two atomic adds (shard +
// warehouse bits), three loads and a pointer compare; any mismatch —
// epoch transition, partition gate on our warehouses — backs out and
// takes the cluster's generic parked path, then re-pins the session to
// whatever epoch it ends up admitted under.
func (s *Session) enter(ctx context.Context, mask uint64) (*submitEpoch, error) {
	c := s.c
	e := s.epoch
	c.addInflight(s.shard, mask, 1)
	g := c.gate.Load()
	if (g == nil || g.mask&mask == 0) && e == c.sub.Load() && !e.closed.Load() {
		return e, nil
	}
	c.addInflight(s.shard, mask, -1)
	c.pingDrainer()
	e, _, err := c.enterAt(ctx, s.shard, mask)
	if err != nil {
		return nil, err
	}
	s.epoch = e // re-pin to the epoch that admitted us
	return e, nil
}

// SubmitPayment enqueues a payment transaction on this session; see
// Cluster.SubmitPayment for the pipelining and Future semantics.
func (s *Session) SubmitPayment(ctx context.Context, p Payment) (*Future, error) {
	t, err := paymentTxn(p)
	if err != nil {
		return nil, err
	}
	return s.submit(ctx, t)
}

// SubmitNewOrder enqueues a new-order transaction on this session; see
// Cluster.SubmitNewOrder.
func (s *Session) SubmitNewOrder(ctx context.Context, no NewOrder) (*Future, error) {
	return s.submit(ctx, newOrderTxn(no))
}

// Payment is SubmitPayment + Wait without a deadline.
func (s *Session) Payment(p Payment) (bool, error) {
	f, err := s.SubmitPayment(context.Background(), p)
	if err != nil {
		return false, err
	}
	return f.Wait(context.Background())
}

// NewOrder is SubmitNewOrder + Wait without a deadline.
func (s *Session) NewOrder(no NewOrder) (bool, error) {
	f, err := s.SubmitNewOrder(context.Background(), no)
	if err != nil {
		return false, err
	}
	return f.Wait(context.Background())
}

// submit is the sessioned transaction entry: Cluster.submit with the
// shard pick, epoch validation and future issue resolved session-side.
func (s *Session) submit(ctx context.Context, t *tpcc.Txn) (*Future, error) {
	if s.closed {
		tpcc.FreeTxn(t)
		return nil, ErrSessionClosed
	}
	c := s.c
	mask := txnMask(t)
	e, err := s.enter(ctx, mask)
	if err != nil {
		tpcc.FreeTxn(t)
		return nil, err
	}
	id := core.TxnID(c.nextTxn.Add(1))
	f := s.getFuture()
	f.shard, f.mask = s.shard, mask
	entry := route.Entry(oltp.Policy(e.policy), c.lay, t.HomeWarehouse())
	if c.remoteACs != nil && c.remoteACs[entry] {
		entry = c.lay.Dispatch
	}
	ev := core.GetEvent()
	ev.Kind, ev.Txn, ev.Payload, ev.Client = core.EvTxn, id, t, f
	c.eng.Inject(entry, ev)
	return f, nil
}

// Query executes a read-only SQL query on this session; semantics match
// Cluster.Query. The query's in-flight count rides the session's pinned
// shard.
func (s *Session) Query(ctx context.Context, text string) (*Rows, error) {
	if s.closed {
		return nil, ErrSessionClosed
	}
	res, err := s.c.runQueryAt(ctx, text, QueryOptions{Beam: true}, s.shard)
	if err != nil {
		return nil, err
	}
	return newRows(res), nil
}

package anydb_test

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anydb"
)

// freeAddr reserves a loopback port and releases it for the cluster to
// bind (the tiny reuse window is harmless in tests).
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// smallDistCfg keeps two full TPC-C populations (head + member) cheap.
func smallDistCfg(addr string) anydb.Config {
	return anydb.Config{
		Warehouses: 8, Districts: 2, CustomersPerDistrict: 20,
		Items: 50, InitialOrdersPerDist: 20,
		Listen: addr, RemoteServers: 1,
	}
}

// TestDistributedPair drives the full multi-process stack — wire codec,
// batched TCP transport, router drainers, member engine — with the
// member running in-process over a real loopback connection: pipelined
// payments and new-orders against head- and member-owned partitions,
// SQL queries whose scans and joins execute on the member, live
// cross-process Rebalance in both directions under load, TPC-C Verify,
// and exactly-once completion accounting.
func TestDistributedPair(t *testing.T) {
	assertBalanced := trackPools(t)
	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(ctx, addr) }()

	c, err := anydb.Open(smallDistCfg(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	placement := c.Placement()
	headOwned, memberOwned := -1, -1
	for w, s := range placement {
		if s == 0 && headOwned < 0 {
			headOwned = w
		}
		if s == 2 && memberOwned < 0 {
			memberOwned = w
		}
	}
	if headOwned < 0 || memberOwned < 0 {
		t.Fatalf("expected both head- and member-owned partitions, placement %v", placement)
	}

	// Pipelined mixed load across every warehouse: half the partitions
	// execute in the other process.
	runLoad := func(rounds int) {
		t.Helper()
		for r := 0; r < rounds; r++ {
			futs := make([]*anydb.Future, 0, 64)
			for w := 0; w < 8; w++ {
				f, err := c.SubmitPayment(ctx, anydb.Payment{
					Warehouse: w, District: 1 + r%2, Customer: 1 + w, Amount: 1,
				})
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, f)
				f, err = c.SubmitNewOrder(ctx, anydb.NewOrder{
					Warehouse: w, District: 1 + r%2, Customer: 1 + w,
					Lines: []anydb.OrderLine{{Item: 1 + (r+w)%50, Qty: 1, SupplyWarehouse: w}},
				})
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, f)
			}
			for _, f := range futs {
				if _, err := f.Wait(ctx); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	runLoad(10)

	// Analytics: scans run at the partition owners (half on the member),
	// joins and the sink on the member's compute server.
	var districts int64
	if err := c.QueryRow(ctx, "SELECT COUNT(*) FROM district").Scan(&districts); err != nil {
		t.Fatal(err)
	}
	if districts != 8*2 {
		t.Fatalf("district count = %d, want 16", districts)
	}
	if _, err := c.OpenOrders(ctx); err != nil {
		t.Fatal(err)
	}

	if err := c.Verify(); err != nil {
		t.Fatalf("verify after cross-process load: %v", err)
	}

	// Live cross-process migration under load: move a head-owned
	// warehouse into the member process and back while payments keep
	// flowing against it.
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			f, err := c.SubmitPayment(ctx, anydb.Payment{
				Warehouse: headOwned, District: 1, Customer: 3, Amount: 2,
			})
			if err != nil {
				return
			}
			if _, err := f.Wait(ctx); err != nil {
				return
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Rebalance(ctx, headOwned, 2); err != nil {
		t.Fatalf("rebalance to member: %v", err)
	}
	if got := c.Placement()[headOwned]; got != 2 {
		t.Fatalf("warehouse %d on server %d after move, want 2", headOwned, got)
	}
	runLoad(3)
	if err := c.Rebalance(ctx, headOwned, 0); err != nil {
		t.Fatalf("rebalance back to head: %v", err)
	}
	if got := c.Placement()[headOwned]; got != 0 {
		t.Fatalf("warehouse %d on server %d after move back, want 0", headOwned, got)
	}
	stop.Store(true)
	wg.Wait()
	runLoad(3)

	if err := c.Verify(); err != nil {
		t.Fatalf("verify after cross-process rebalance: %v", err)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d, want 0 (exactly-once violated)", n)
	}

	c.Close()
	select {
	case err := <-nodeErr:
		if err != nil {
			t.Fatalf("member exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("member did not shut down after Close")
	}
	// Verify still works post-Close: Close pulled the remote-owned
	// partitions home.
	if err := c.Verify(); err != nil {
		t.Fatalf("verify after close: %v", err)
	}
	// Both processes share this test binary's pools: a drained
	// cross-process shutdown must leave zero outstanding pooled
	// objects — the per-AC free lists count through the same balance.
	assertBalanced()
}

// TestDistributedConfigErrors pins the distributed-mode restrictions.
func TestDistributedConfigErrors(t *testing.T) {
	if _, err := anydb.Open(anydb.Config{RemoteServers: 1}); err == nil {
		t.Fatal("RemoteServers without Listen must fail")
	}
	if _, err := anydb.Open(anydb.Config{
		Listen: "127.0.0.1:0", RemoteServers: 1, AutoAdapt: true,
	}); err == nil {
		t.Fatal("AutoAdapt on a multi-process cluster must fail")
	}

	addr := freeAddr(t)
	ctx := context.Background()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(ctx, addr) }()
	c, err := anydb.Open(smallDistCfg(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SetPolicy(ctx, anydb.PreciseIntra); err == nil {
		t.Fatal("fine-grained policy on a multi-process cluster must fail")
	}
	if err := c.SetPolicy(ctx, anydb.SharedNothing); err != nil {
		t.Fatalf("SharedNothing no-op switch: %v", err)
	}
	c.Close()
	if err := <-nodeErr; err != nil {
		t.Fatalf("member exited with %v", err)
	}
}

package anydb_test

import (
	"math"
	"strings"
	"testing"

	"anydb"
	"anydb/internal/olap"
)

// The tests in this file are value oracles for the encoded columnar
// chunks: every filtered or grouped SQL result must equal an answer
// computed by hand in Go over the full unfiltered row stream. The
// filters are chosen to hit each encoding's predicate fast path —
// LIKE-prefix and equality resolve to dictionary code sets, o_entry_d
// ranges hit the code bitset, and c_id at 2500 customers per district
// overflows the int dictionary so its chunks fall back to
// frame-of-reference deltas.

// oracleConfig sizes customers past the int-dictionary cap (1<<10), so
// c_id columns seal their dictionary and rebuild as FoR — while the
// total row count stays under the result-collection cap, so the
// unfiltered oracle stream sees every row.
func oracleConfig() anydb.Config {
	return anydb.Config{
		Warehouses: 2, Districts: 2, CustomersPerDistrict: 2500,
		InitialOrdersPerDist: 10, Items: 100,
	}
}

type custOracle struct {
	id      int64
	state   string
	credit  string
	balance float64
}

// loadCustomers streams every customer row once — the per-row decode
// path, independent of predicate compilation — as the oracle data set.
func loadCustomers(t *testing.T, c *anydb.Cluster) []custOracle {
	t.Helper()
	rows, err := c.Query(bg, "SELECT c_id, c_state, c_credit, c_balance FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out []custOracle
	for rows.Next() {
		var r custOracle
		if err := rows.Scan(&r.id, &r.state, &r.credit, &r.balance); err != nil {
			t.Fatal(err)
		}
		out = append(out, r)
	}
	if rows.Truncated() {
		t.Fatal("oracle stream truncated")
	}
	return out
}

func queryCount(t *testing.T, c *anydb.Cluster, q string) int64 {
	t.Helper()
	var n int64
	if err := c.QueryRow(bg, q).Scan(&n); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return n
}

// TestEncodedPredicateOracle checks each code-level predicate mode
// against a hand filter of the same rows.
func TestEncodedPredicateOracle(t *testing.T) {
	c, err := anydb.Open(oracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cust := loadCustomers(t, c)
	if len(cust) != 2*2*2500 {
		t.Fatalf("oracle has %d customers, want %d", len(cust), 2*2*2500)
	}

	// LIKE prefix on a dictionary string column -> code-set bitset.
	var wantLike int64
	for _, r := range cust {
		if strings.HasPrefix(r.state, "A") {
			wantLike++
		}
	}
	if got := queryCount(t, c, "SELECT COUNT(*) FROM customer WHERE c_state LIKE 'A%'"); got != wantLike {
		t.Errorf("LIKE 'A%%': got %d, want %d", got, wantLike)
	}

	// String equality on a dictionary column -> single-code compare.
	// The probe state comes from the data, so the match set is
	// non-empty; with ~676 possible states it is also a strict subset.
	probe := cust[0].state
	var wantEq int64
	for _, r := range cust {
		if r.state == probe {
			wantEq++
		}
	}
	if wantEq == int64(len(cust)) {
		t.Fatalf("degenerate state split: every customer is %q", probe)
	}
	if got := queryCount(t, c, "SELECT COUNT(*) FROM customer WHERE c_state = '"+probe+"'"); got != wantEq {
		t.Errorf("c_state = %q: got %d, want %d", probe, got, wantEq)
	}

	// Equality on a constant dictionary column collapses to match-all
	// at the chunk level (one code, every row carries it).
	if got := queryCount(t, c, "SELECT COUNT(*) FROM customer WHERE c_credit = 'GC'"); got != int64(len(cust)) {
		t.Errorf("c_credit = 'GC': got %d, want %d", got, len(cust))
	}
	// ...and equality against an absent value collapses to match-none.
	if got := queryCount(t, c, "SELECT COUNT(*) FROM customer WHERE c_credit = 'BC'"); got != 0 {
		t.Errorf("c_credit = 'BC': got %d, want 0", got)
	}

	// Int range on a column past the dictionary cap -> FoR delta
	// compare (c_id runs 1..2500 per district, cap is 1024).
	var wantFoR int64
	for _, r := range cust {
		if r.id >= 2000 {
			wantFoR++
		}
	}
	if got := queryCount(t, c, "SELECT COUNT(*) FROM customer WHERE c_id >= 2000"); got != wantFoR {
		t.Errorf("c_id >= 2000: got %d, want %d", got, wantFoR)
	}

	// Int range on a small-domain dictionary column -> code bitset
	// (o_entry_d is a year in 2000..2019).
	rows, err := c.Query(bg, "SELECT o_entry_d FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	var wantYear, orders int64
	for rows.Next() {
		var y int64
		if err := rows.Scan(&y); err != nil {
			t.Fatal(err)
		}
		orders++
		if y >= 2007 {
			wantYear++
		}
	}
	rows.Close()
	if wantYear == 0 || wantYear == orders {
		t.Fatalf("degenerate year split: %d of %d", wantYear, orders)
	}
	if got := queryCount(t, c, "SELECT COUNT(*) FROM orders WHERE o_entry_d >= 2007"); got != wantYear {
		t.Errorf("o_entry_d >= 2007: got %d, want %d", got, wantYear)
	}
}

// TestGroupedAggOracle checks the dense grouped-aggregate fast path
// against a hand-grouped map of the same rows, and pins that forcing
// the hash-map fallback returns the identical result set.
func TestGroupedAggOracle(t *testing.T) {
	c, err := anydb.Open(oracleConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cust := loadCustomers(t, c)

	type agg struct {
		n   int64
		sum float64
	}
	want := make(map[string]*agg)
	for _, r := range cust {
		a := want[r.state]
		if a == nil {
			a = &agg{}
			want[r.state] = a
		}
		a.n++
		a.sum += float64(r.id)
	}

	const q = "SELECT c_state, COUNT(*), AVG(c_id) FROM customer GROUP BY c_state"
	run := func() map[string]agg {
		rows, err := c.Query(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		got := make(map[string]agg)
		for rows.Next() {
			var state string
			var n int64
			var avg float64
			if err := rows.Scan(&state, &n, &avg); err != nil {
				t.Fatal(err)
			}
			if _, dup := got[state]; dup {
				t.Fatalf("state %q appears twice in one result set", state)
			}
			got[state] = agg{n: n, sum: avg * float64(n)}
		}
		return got
	}

	check := func(label string, got map[string]agg) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d groups, want %d", label, len(got), len(want))
		}
		for state, w := range want {
			g, ok := got[state]
			if !ok {
				t.Fatalf("%s: missing group %q", label, state)
			}
			if g.n != w.n {
				t.Errorf("%s: %q count = %d, want %d", label, state, g.n, w.n)
			}
			if math.Abs(g.sum-w.sum) > 1e-6*math.Max(1, math.Abs(w.sum)) {
				t.Errorf("%s: %q sum = %v, want %v", label, state, g.sum, w.sum)
			}
		}
	}

	prev := olap.SetGroupedAggFastPath(true)
	defer olap.SetGroupedAggFastPath(prev)
	fast := run()
	check("fast path", fast)

	olap.SetGroupedAggFastPath(false)
	mapped := run()
	check("map fallback", mapped)

	for state, f := range fast {
		m, ok := mapped[state]
		if !ok || m.n != f.n || math.Abs(m.sum-f.sum) > 1e-6*math.Max(1, math.Abs(f.sum)) {
			t.Errorf("fast/map divergence at %q: fast %+v, map %+v (present %v)", state, f, m, ok)
		}
	}
}

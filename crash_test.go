package anydb_test

// Kill-and-restart crash recovery: a child process runs a durable
// cluster (Durability Batch), submits payments whose amounts are
// distinct powers of three, and prints an ACK line per acknowledged
// commit. The parent SIGKILLs it mid-burst, reopens the same WALDir,
// and checks (a) TPC-C Verify is clean after replay and (b) the base-3
// digits of the replayed payment total show every acknowledged
// transaction applied exactly once — digit 1, never 0 (lost) or 2
// (doubled). Unacknowledged transactions may legally land at 0 or 1
// (logged-but-unacked at the crash).

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"anydb"
)

// crashPayments is bounded by float64 exactness: 3^32 < 2^53, and the
// sum of all 33 amounts still is.
const crashPayments = 33

func crashConfig(dir string) anydb.Config {
	return anydb.Config{
		Warehouses: 2, Districts: 2, CustomersPerDistrict: 30,
		Items: 40, InitialOrdersPerDist: 10, Seed: 4,
		Durability: anydb.DurabilityBatch, WALDir: dir,
	}
}

// ytdSum reads the replay-sensitive aggregate: payments add their
// amount to the customer's c_ytd_payment, so the cluster-wide sum's
// delta over a fresh population decodes exactly which amounts applied.
func ytdSum(t *testing.T, c *anydb.Cluster) float64 {
	t.Helper()
	var sum float64
	if err := c.QueryRow(context.Background(), "SELECT SUM(c_ytd_payment) FROM customer").Scan(&sum); err != nil {
		t.Fatalf("ytd sum: %v", err)
	}
	return sum
}

// TestCrashChild is the re-exec target, not a test in its own right:
// it only runs with ANYDB_CRASH_DIR set, and it never exits cleanly —
// the parent kills it.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("ANYDB_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-child mode only (run by TestCrashRecovery)")
	}
	c, err := anydb.Open(crashConfig(dir))
	if err != nil {
		fmt.Fprintf(os.Stdout, "CHILD-ERR open: %v\n", err)
		os.Exit(1)
	}
	ctx := context.Background()
	for i := 0; i < crashPayments; i++ {
		f, err := c.SubmitPayment(ctx, anydb.Payment{
			Warehouse: i % 2, District: 1 + i%2, Customer: 1,
			Amount: math.Pow(3, float64(i)),
		})
		if err != nil {
			fmt.Fprintf(os.Stdout, "CHILD-ERR submit %d: %v\n", i, err)
			os.Exit(1)
		}
		committed, err := f.Wait(ctx)
		if err != nil {
			fmt.Fprintf(os.Stdout, "CHILD-ERR wait %d: %v\n", i, err)
			os.Exit(1)
		}
		if committed {
			// The ack implies the record was fsynced (group commit
			// dispatches only after the batch flush), so every printed
			// line MUST survive the parent's kill.
			fmt.Fprintf(os.Stdout, "ACK %d\n", i)
		}
		// Pace the burst so the parent's SIGKILL lands mid-stream.
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Fprintln(os.Stdout, "CHILD-DONE")
	// Never Close: hold the logs open until the kill arrives.
	time.Sleep(time.Minute)
}

func TestCrashRecovery(t *testing.T) {
	if os.Getenv("ANYDB_CRASH_DIR") != "" {
		t.Skip("already in crash-child mode")
	}
	dir := t.TempDir()

	// Baseline: what the aggregate looks like before any payment.
	base, err := anydb.Open(crashConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	ytd0 := ytdSum(t, base)
	base.Close()

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), "ANYDB_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Read ACK lines until roughly a third of the burst is in, then
	// kill mid-stream. Every line fully read before EOF counts as
	// acknowledged, including those racing the kill.
	acked := make(map[int]bool)
	killed := false
	deadline := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "CHILD-ERR") {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child failed: %s", line)
		}
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			i, err := strconv.Atoi(n)
			if err == nil {
				acked[i] = true
			}
		}
		if !killed && (len(acked) >= crashPayments/3 || line == "CHILD-DONE") {
			killed = true
			cmd.Process.Kill()
		}
	}
	deadline.Stop()
	cmd.Wait()
	if len(acked) == 0 {
		t.Fatal("child acknowledged nothing before the kill")
	}
	t.Logf("killed child after %d acknowledged payments", len(acked))

	// Recovery: reopen the same WALDir. Replay must leave a
	// Verify-clean state with every acknowledged payment applied
	// exactly once.
	c, err := anydb.Open(crashConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer c.Close()
	if err := c.Verify(); err != nil {
		t.Fatalf("replayed state fails TPC-C verification: %v", err)
	}
	delta := ytdSum(t, c) - ytd0
	rem := delta
	for i := crashPayments - 1; i >= 0; i-- {
		p := math.Pow(3, float64(i))
		digit := math.Floor(rem / p)
		rem -= digit * p
		switch {
		case digit == 1 && !acked[i]:
			// Logged at admit, crashed before the ack: replay applies
			// it. Legal — durability promises at-least-the-acked-set.
		case digit == 0 && !acked[i]:
		case digit == 1 && acked[i]:
		case digit == 0 && acked[i]:
			t.Errorf("payment %d was acknowledged but lost in replay", i)
		default:
			t.Errorf("payment %d applied %v times (delta %v)", i, digit, delta)
		}
	}
	if rem != 0 {
		t.Errorf("ytd delta %v does not decompose into the payment amounts (residue %v)", delta, rem)
	}
}

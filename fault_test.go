package anydb_test

// Transport fault tolerance: member death and reconnection. A member
// process dying mid-load must not wedge the head — in-flight futures
// against it resolve with ErrMemberDown (typed, never hung), its
// partitions are pulled home inside a routing epoch, and subsequent
// submissions, sessions and queries succeed. A member whose CONNECTION
// drops (but whose process survives) redials within the grace window
// and resumes.
//
// No Verify and no pool-balance assertions after a member death: the
// member's un-replicated recent writes are lost with it by design
// (k-way replication is the ROADMAP follow-up), and messages in flight
// at the break are deliberately dropped.

import (
	"context"
	"errors"
	"testing"
	"time"

	"anydb"
)

// faultCfg is smallDistCfg with failure detection fast enough for a
// test: 25ms heartbeats, 250ms rejoin grace.
func faultCfg(addr string) anydb.Config {
	cfg := smallDistCfg(addr)
	cfg.HeartbeatInterval = 25 * time.Millisecond
	cfg.MemberGrace = 250 * time.Millisecond
	return cfg
}

func TestMemberDeathFailover(t *testing.T) {
	addr := freeAddr(t)
	memberCtx, killMember := context.WithCancel(context.Background())
	defer killMember()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(memberCtx, addr) }()

	c, err := anydb.Open(faultCfg(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	memberOwned := -1
	for w, s := range c.Placement() {
		if s == 2 {
			memberOwned = w
			break
		}
	}
	if memberOwned < 0 {
		t.Fatalf("no member-owned partition in placement %v", c.Placement())
	}

	// A session pinned before the failure, used across it below.
	sess := c.Session()
	defer sess.Close()
	if committed, err := sess.Payment(anydb.Payment{
		Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
	}); err != nil || !committed {
		t.Fatalf("pre-failure session payment: committed=%v err=%v", committed, err)
	}

	// Put a pipelined burst in flight against member-owned partitions,
	// then kill the member process under it.
	var futs []*anydb.Future
	for i := 0; i < 64; i++ {
		f, err := c.SubmitPayment(ctx, anydb.Payment{
			Warehouse: memberOwned, District: 1 + i%2, Customer: 1 + i%20, Amount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	killMember()
	select {
	case <-nodeErr:
	case <-time.After(10 * time.Second):
		t.Fatal("member did not exit after its context was canceled")
	}

	// Every in-flight future resolves — committed (acked before the
	// break) or ErrMemberDown — under a deadline, so a hang fails the
	// test rather than jamming it.
	waitCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	downErrs := 0
	for i, f := range futs {
		committed, err := f.Wait(waitCtx)
		switch {
		case err == nil:
		case errors.Is(err, anydb.ErrMemberDown):
			downErrs++
			if committed {
				t.Fatalf("future %d: committed=true with ErrMemberDown", i)
			}
		default:
			t.Fatalf("future %d: unexpected error %v", i, err)
		}
	}
	t.Logf("burst of %d: %d resolved ErrMemberDown", len(futs), downErrs)

	// The member process is gone, so a payment submitted now against
	// its partition MUST fail typed — ownership cannot have moved home
	// yet if the grace window is still open, and after adoption the
	// path below succeeds instead. Either way: never a hang, never an
	// untyped failure.
	f, err := c.SubmitPayment(ctx, anydb.Payment{
		Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if committed, err := f.Wait(waitCtx); err != nil && !errors.Is(err, anydb.ErrMemberDown) {
		t.Fatalf("post-kill payment: unexpected error %v (committed=%v)", err, committed)
	}

	// The head declares the member dead after MemberGrace and adopts
	// its partitions; poll placement until no partition lives on
	// server 2.
	adoptDeadline := time.Now().Add(15 * time.Second)
	for {
		adopted := true
		for _, s := range c.Placement() {
			if s == 2 {
				adopted = false
			}
		}
		if adopted {
			break
		}
		if time.Now().After(adoptDeadline) {
			t.Fatalf("partitions still on dead member: placement %v", c.Placement())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Post-adoption: plain submissions, the pre-failure session (its
	// pinned shard re-enters via the parked path across the adoption
	// gate), and analytics all succeed on every warehouse.
	for w := 0; w < 8; w++ {
		if committed, err := c.Payment(anydb.Payment{
			Warehouse: w, District: 1, Customer: 2, Amount: 1,
		}); err != nil || !committed {
			t.Fatalf("post-adoption payment on w%d: committed=%v err=%v", w, committed, err)
		}
	}
	if committed, err := sess.Payment(anydb.Payment{
		Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
	}); err != nil || !committed {
		t.Fatalf("post-adoption session payment: committed=%v err=%v", committed, err)
	}
	var districts int64
	if err := c.QueryRow(ctx, "SELECT COUNT(*) FROM district").Scan(&districts); err != nil {
		t.Fatalf("post-adoption query: %v", err)
	}
	if districts != 8*2 {
		t.Fatalf("district count = %d, want 16", districts)
	}
}

// TestSessionAcrossMemberDeath pins the session story across a fault:
// a Session whose pipelined futures are in flight against the dying
// member sees every BLOCKED Wait return the typed error (never hang),
// and the same session — still pinned to its submission shard — keeps
// working after the partitions come home.
func TestSessionAcrossMemberDeath(t *testing.T) {
	addr := freeAddr(t)
	memberCtx, killMember := context.WithCancel(context.Background())
	defer killMember()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(memberCtx, addr) }()

	c, err := anydb.Open(faultCfg(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	memberOwned := -1
	for w, s := range c.Placement() {
		if s == 2 {
			memberOwned = w
			break
		}
	}
	sess := c.Session()
	defer sess.Close()

	// Block Waits in goroutines BEFORE the kill, so the typed error has
	// to wake real waiters rather than being observed after the fact.
	// These use cluster futures — session futures carry a single-
	// goroutine Wait contract (they recycle onto the session freelist
	// without atomics), so the session's own futures wait sequentially
	// on the test goroutine below.
	const inflight = 16
	futs := make([]*anydb.Future, inflight)
	for i := range futs {
		f, err := c.SubmitPayment(ctx, anydb.Payment{
			Warehouse: memberOwned, District: 1 + i%2, Customer: 1 + i%20, Amount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	sessFut, err := sess.SubmitPayment(ctx, anydb.Payment{
		Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		committed bool
		err       error
	}
	results := make(chan outcome, inflight)
	waitCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	for _, f := range futs {
		go func(f *anydb.Future) {
			committed, err := f.Wait(waitCtx)
			results <- outcome{committed, err}
		}(f)
	}
	killMember()
	for i := 0; i < inflight; i++ {
		r := <-results
		if r.err != nil && !errors.Is(r.err, anydb.ErrMemberDown) {
			t.Fatalf("blocked Wait %d: unexpected error %v", i, r.err)
		}
		if r.err != nil && r.committed {
			t.Fatalf("blocked Wait %d: committed=true with %v", i, r.err)
		}
	}
	// The session's in-flight future resolves the same way, on the
	// session goroutine.
	if committed, err := sessFut.Wait(waitCtx); err != nil {
		if !errors.Is(err, anydb.ErrMemberDown) {
			t.Fatalf("session future Wait: unexpected error %v", err)
		}
		if committed {
			t.Fatal("session future: committed=true with ErrMemberDown")
		}
	}
	select {
	case <-nodeErr:
	case <-time.After(10 * time.Second):
		t.Fatal("member did not exit")
	}

	// After adoption the SAME session must succeed on the adopted
	// warehouse: its pinned shard re-enters via the parked path across
	// the adoption gate. Retry while the grace window closes.
	deadline := time.Now().Add(15 * time.Second)
	for {
		committed, err := sess.Payment(anydb.Payment{
			Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
		})
		if err == nil && committed {
			break
		}
		if err != nil && !errors.Is(err, anydb.ErrMemberDown) {
			t.Fatalf("post-death session payment: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never recovered: committed=%v err=%v", committed, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMemberDeathFailsQueries pins the analytical side of failover: a
// query in flight when the member dies resolves with ErrMemberDown
// instead of hanging (its scans on the dead member can never report).
func TestMemberDeathFailsQueries(t *testing.T) {
	addr := freeAddr(t)
	memberCtx, killMember := context.WithCancel(context.Background())
	defer killMember()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(memberCtx, addr) }()

	c, err := anydb.Open(faultCfg(addr))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Keep queries flowing while the member dies: every one must end in
	// a result or ErrMemberDown, within the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sawDown := false
	for i := 0; i < 200; i++ {
		if i == 5 {
			killMember()
		}
		var n int64
		err := c.QueryRow(ctx, "SELECT COUNT(*) FROM district").Scan(&n)
		switch {
		case err == nil:
			if n != 8*2 {
				t.Fatalf("query %d: district count = %d, want 16", i, n)
			}
		case errors.Is(err, anydb.ErrMemberDown):
			sawDown = true
		default:
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	select {
	case <-nodeErr:
	case <-time.After(10 * time.Second):
		t.Fatal("member did not exit")
	}
	t.Logf("saw ErrMemberDown on at least one query: %v", sawDown)
}

// TestMemberReconnect drops the head↔member CONNECTION while both
// processes stay alive: the member must redial inside the grace
// window, the head must splice the fresh connection, and traffic must
// flow again — no partition adoption, no eviction.
func TestMemberReconnect(t *testing.T) {
	addr := freeAddr(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nodeErr := make(chan error, 1)
	go func() { nodeErr <- anydb.ServeNode(ctx, addr) }()

	cfg := faultCfg(addr)
	cfg.MemberGrace = 5 * time.Second // plenty for the redial
	c, err := anydb.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	memberOwned := -1
	for w, s := range c.Placement() {
		if s == 2 {
			memberOwned = w
			break
		}
	}
	pay := func() (bool, error) {
		f, err := c.SubmitPayment(ctx, anydb.Payment{
			Warehouse: memberOwned, District: 1, Customer: 1, Amount: 1,
		})
		if err != nil {
			return false, err
		}
		wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		return f.Wait(wctx)
	}
	if committed, err := pay(); err != nil || !committed {
		t.Fatalf("pre-drop payment: committed=%v err=%v", committed, err)
	}

	// Sever the wire. The hook closes the socket without marking the
	// peer dead — exactly what a network drop looks like to both sides.
	c.AbortMemberConns()

	// The break fails in-flight work and the member redials; once the
	// splice lands, payments against the member-owned partition succeed
	// again WITHOUT the partition moving home.
	deadline := time.Now().Add(10 * time.Second)
	for {
		committed, err := pay()
		if err == nil && committed {
			break
		}
		if err != nil && !errors.Is(err, anydb.ErrMemberDown) {
			t.Fatalf("payment during reconnect: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("member never reconnected: committed=%v err=%v", committed, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := c.Placement()[memberOwned]; got != 2 {
		t.Fatalf("warehouse %d moved to server %d — reconnect should not trigger adoption", memberOwned, got)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("verify after reconnect: %v", err)
	}
	c.Close()
	select {
	case err := <-nodeErr:
		if err != nil {
			t.Fatalf("member exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("member did not shut down after Close")
	}
}

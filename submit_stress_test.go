package anydb_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anydb"
)

// TestSubmitEpochStress is the drain-or-reject contract of the sharded
// submission plane under the race detector: many pipelined submitters
// race policy switches (epoch drains) — including deadline-abandoned
// ones — a concurrent Verify quiesce, and finally a Close in full
// flight. Every submission must either resolve exactly once or be
// rejected with ErrClosed; nothing may be lost, double-resolved
// (UnmatchedDone), or left blocking after Close.
func TestSubmitEpochStress(t *testing.T) {
	assertBalanced := trackPools(t)
	c, err := anydb.Open(anydb.Config{
		Warehouses: 4, Districts: 2, CustomersPerDistrict: 50,
		InitialOrdersPerDist: 10, Items: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No deferred Close: closing mid-flight is the point; Close is
	// idempotent and re-called at the end for teardown.

	const workers = 8
	const window = 32
	var resolved atomic.Int64
	stopSwitcher := make(chan struct{})

	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					if _, werr := f.Wait(bg); werr != nil {
						// Wait with a background context only fails if
						// the future never resolves — forbidden.
						errs <- fmt.Errorf("worker %d: wait: %v", g, werr)
						return
					}
					resolved.Add(1)
				}
				futs = futs[:0]
			}
			for i := 0; ; i++ {
				f, serr := c.SubmitPayment(bg, anydb.Payment{
					Warehouse: (g + i) % 4, District: 1 + i%2,
					Customer: 1 + i%50, Amount: 1,
				})
				if serr != nil {
					if !errors.Is(serr, anydb.ErrClosed) {
						errs <- fmt.Errorf("worker %d: submit: %v", g, serr)
					}
					break
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
			// Futures accepted before Close must still resolve: Close
			// drains in-flight work before stopping the engine.
			flush()
		}(g)
	}

	// Policy churner: alternate full switches with deadline-abandoned
	// drains, so epochs close, reopen under the old policy, and reopen
	// under a new one — all while submitters race the gate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		pols := []anydb.Policy{anydb.StreamingCC, anydb.SharedNothing, anydb.PreciseIntra}
		for i := 0; ; i++ {
			select {
			case <-stopSwitcher:
				return
			default:
			}
			ctx := bg
			var cancel context.CancelFunc = func() {}
			if i%3 == 2 {
				ctx, cancel = context.WithTimeout(bg, 200*time.Microsecond)
			}
			serr := c.SetPolicy(ctx, pols[i%len(pols)])
			cancel()
			if serr != nil && !errors.Is(serr, anydb.ErrClosed) &&
				!errors.Is(serr, context.DeadlineExceeded) && !errors.Is(serr, context.Canceled) {
				errs <- fmt.Errorf("switcher: %v", serr)
				return
			}
		}
	}()

	// A concurrent Verify exercises the quiesce path against live
	// traffic (it must see only complete transactions).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if verr := c.Verify(); verr != nil {
				errs <- fmt.Errorf("mid-flight verify: %v", verr)
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stopSwitcher)
	c.Close() // in full flight: submitters must observe ErrClosed promptly

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("workers did not drain after Close — a submission or wait is stuck")
	}
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if n := c.Stats().UnmatchedDone; n != 0 {
		t.Fatalf("UnmatchedDone = %d (lost or double-resolved transactions)", n)
	}
	if resolved.Load() == 0 {
		t.Fatal("no transactions resolved — the stress never exercised the plane")
	}
	t.Logf("resolved %d transactions across %d workers", resolved.Load(), workers)
	// Close already drained; the state must verify and the pools must
	// balance — nothing in flight at Close may outlive it.
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	assertBalanced()
}

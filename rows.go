package anydb

import (
	"errors"
	"fmt"

	"anydb/internal/olap"
	"anydb/internal/storage"
)

// ErrNoRows is returned by Row.Scan when QueryRow matched no rows.
var ErrNoRows = errors.New("anydb: no rows in result set")

// Rows is the streaming result set of Query. It iterates directly over
// the pooled column batches the sink produced — nothing is materialized
// as [][]any — and recycles each batch as soon as the cursor leaves it.
// Use it like database/sql:
//
//	rows, err := cluster.Query(ctx, "SELECT c_id, c_last FROM customer WHERE c_d_id = 1")
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var id int64
//		var last string
//		if err := rows.Scan(&id, &last); err != nil { ... }
//	}
//
// Rows is not safe for concurrent use. Close is idempotent and releases
// any batches the iteration did not reach.
type Rows struct {
	cols      []string
	batches   []*storage.Batch
	truncated bool
	bi, ri    int
	started   bool
	closed    bool
}

func newRows(res *olap.QueryResult) *Rows {
	return &Rows{cols: res.Cols, batches: res.Batches, truncated: res.Truncated}
}

// freeResult recycles a result set nobody will ever iterate (abandoned
// or unmatched waiters).
func freeResult(res *olap.QueryResult) {
	for _, b := range res.Batches {
		storage.FreeBatch(b)
	}
	res.Batches = nil
}

// Columns returns the result column names, in SELECT order.
func (r *Rows) Columns() []string { return r.cols }

// Next advances to the next row, reporting whether one exists. Batches
// behind the cursor are returned to the pool immediately.
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	if r.started {
		r.ri++
	} else {
		r.started = true
	}
	for r.bi < len(r.batches) {
		b := r.batches[r.bi]
		if r.ri < b.Len() {
			return true
		}
		storage.FreeBatch(b)
		r.batches[r.bi] = nil
		r.bi++
		r.ri = 0
	}
	r.closed = true
	return false
}

// Scan copies the current row into dest, one pointer per column:
// *int64/*int for integer columns, *float64 (integers widen), *string,
// or *any for dynamic typing.
func (r *Rows) Scan(dest ...any) error {
	if r.closed || !r.started || r.bi >= len(r.batches) {
		return errors.New("anydb: Scan called without a successful Next")
	}
	if len(dest) != len(r.cols) {
		return fmt.Errorf("anydb: Scan got %d destinations for %d columns", len(dest), len(r.cols))
	}
	b := r.batches[r.bi]
	for i := range dest {
		if err := assignValue(dest[i], b.Value(r.ri, i), r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// Err reports an error encountered during iteration. The event plane
// delivers results whole, so iteration itself cannot fail today; Err
// exists so callers can follow the database/sql idiom.
func (r *Rows) Err() error { return nil }

// Truncated reports whether the result set was cut off at the engine's
// collection cap.
func (r *Rows) Truncated() bool { return r.truncated }

// Close releases every batch the iteration did not consume. It is safe
// to call multiple times and after exhausting the rows.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	for ; r.bi < len(r.batches); r.bi++ {
		storage.FreeBatch(r.batches[r.bi])
		r.batches[r.bi] = nil
	}
	return nil
}

// Row is the single-row result of QueryRow; errors are deferred to Scan
// so calls chain like database/sql.
type Row struct {
	err  error
	cols []string
	vals []storage.Value
}

// Scan copies the row into dest (see Rows.Scan for supported types).
// It returns ErrNoRows when the query matched nothing.
func (r *Row) Scan(dest ...any) error {
	if r.err != nil {
		return r.err
	}
	if len(dest) != len(r.vals) {
		return fmt.Errorf("anydb: Scan got %d destinations for %d columns", len(dest), len(r.vals))
	}
	for i := range dest {
		if err := assignValue(dest[i], r.vals[i], r.cols[i]); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the query error, if any, without consuming the row.
func (r *Row) Err() error { return r.err }

func assignValue(dest any, v storage.Value, col string) error {
	switch d := dest.(type) {
	case *int64:
		if v.Kind != storage.KInt {
			return fmt.Errorf("anydb: column %s is %s, not int", col, v.Kind)
		}
		*d = v.I
	case *int:
		if v.Kind != storage.KInt {
			return fmt.Errorf("anydb: column %s is %s, not int", col, v.Kind)
		}
		*d = int(v.I)
	case *float64:
		switch v.Kind {
		case storage.KFloat:
			*d = v.F
		case storage.KInt:
			*d = float64(v.I)
		default:
			return fmt.Errorf("anydb: column %s is %s, not float", col, v.Kind)
		}
	case *string:
		if v.Kind != storage.KStr {
			return fmt.Errorf("anydb: column %s is %s, not string", col, v.Kind)
		}
		*d = v.S
	case *any:
		switch v.Kind {
		case storage.KInt:
			*d = v.I
		case storage.KFloat:
			*d = v.F
		default:
			*d = v.S
		}
	default:
		return fmt.Errorf("anydb: unsupported Scan destination %T for column %s", dest, col)
	}
	return nil
}

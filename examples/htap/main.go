// HTAP: run a skewed OLTP load concurrently with the analytical query,
// switching the transaction routing from shared-nothing to streaming CC
// mid-run — the architecture shift of the paper's Figure 1, on the real
// goroutine runtime.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"anydb"
)

const (
	warehouses = 4
	loaders    = 4
	window     = 400 * time.Millisecond
)

func main() {
	ctx := context.Background()
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           warehouses,
		Districts:            4,
		CustomersPerDistrict: 200,
		InitialOrdersPerDist: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var committed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Closed-loop loaders issuing skewed payments: 100% on warehouse 0
	// (the paper's §3.2 contended scenario).
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := cluster.Payment(anydb.Payment{
					Warehouse: 0, District: 1 + rng.Intn(4),
					Customer: 1 + rng.Intn(200), Amount: 5,
				})
				if err != nil {
					return
				}
				if ok {
					committed.Add(1)
				}
			}
		}(int64(i + 1))
	}

	measure := func(label string) {
		committed.Store(0)
		time.Sleep(window)
		n := committed.Load()
		fmt.Printf("%-34s %8.0f tx/s\n", label, float64(n)/window.Seconds())
	}

	// Phase 1: shared-nothing routing — all contended payments
	// serialize at warehouse 0's owner AC.
	measure("shared-nothing, skewed")

	// Phase 2: shift the architecture with zero downtime: streaming CC
	// pipelines the same transactions across record-class ACs. (Note:
	// the pipelining speedup needs real cores to run the ACs in
	// parallel — on a single-CPU host the extra hops are pure overhead;
	// cmd/anydb-bench shows the multi-core behavior deterministically.)
	if err := cluster.SetPolicy(ctx, anydb.StreamingCC); err != nil {
		log.Fatal(err)
	}
	measure("streaming-cc, skewed")

	// Phase 3: HTAP — back to shared-nothing (scans and transactions
	// then share each partition's owner AC, so analytics interleave
	// with OLTP safely) and run the analytical query concurrently. The
	// joins execute on the control server, sharing only storage
	// with OLTP.
	if err := cluster.SetPolicy(ctx, anydb.SharedNothing); err != nil {
		log.Fatal(err)
	}
	qdone := make(chan int64, 1)
	go func() {
		rows, err := cluster.OpenOrdersOpts(ctx, anydb.QueryOptions{
			Beam: true, CompileDelay: 30 * time.Millisecond,
		})
		if err != nil {
			log.Print(err)
		}
		qdone <- rows
	}()
	measure("streaming-cc + concurrent OLAP")
	fmt.Printf("%-34s %8d rows\n", "analytical query result", <-qdone)

	close(stop)
	wg.Wait()
	if err := cluster.Verify(); err != nil {
		log.Fatal("consistency violated: ", err)
	}
	fmt.Println("TPC-C consistency verified ✓")
}

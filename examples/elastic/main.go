// Elasticity: grow the cluster at runtime (§5 "elasticity for free").
// Newly added servers immediately host analytical operators because
// placement is just routing — and with AutoRebalance, the self-driving
// controller goes further: it watches per-owner admission load and
// performs live SetOwner handoffs, migrating hot OLTP partitions onto
// the fresh hardware with no restart, no repartitioning downtime, and
// no traffic stopped on any other partition.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"anydb"
)

func main() {
	ctx := context.Background()
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           8,
		Districts:            4,
		CustomersPerDistrict: 300,
		InitialOrdersPerDist: 300,
		AutoRebalance:        true,
		AdaptWindow:          5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("before: %+v\n", cluster.Stats())
	fmt.Printf("placement (warehouse -> server): %v\n", cluster.Placement())

	// Run the analytical query on the initial topology: its joins share
	// the control server with the dispatcher/sequencer roles.
	start := time.Now()
	rows, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query on 2 servers: %d rows in %v\n", rows, time.Since(start))

	// Grow: one new 4-core server joins. OpenOrders places joins on the
	// newest server automatically — and the new ACs also enter the
	// controller's placement pool, so hot partitions can migrate onto
	// them. No repartitioning pause, no restart: storage stays where it
	// is, events and data are simply routed to the new ACs.
	added := cluster.AddServer(4)
	fmt.Printf("added a server with %d ACs: %+v\n", added, cluster.Stats())

	start = time.Now()
	rows2, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query on 3 servers: %d rows in %v\n", rows2, time.Since(start))
	if rows != rows2 {
		log.Fatalf("results diverged after scale-out: %d vs %d", rows, rows2)
	}

	// Drive uniform traffic across all 8 warehouses. The 4 original
	// executor ACs each own two warehouses, so each carries twice the
	// fair share of a 3-server cluster — the controller notices and
	// live-migrates partitions onto the grown server's idle ACs, while
	// payments keep committing. True elasticity: OLTP load lands on
	// hardware that did not exist a moment ago.
	events := cluster.Events(ctx)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			const window = 32
			futs := make([]*anydb.Future, 0, window)
			flush := func() {
				for _, f := range futs {
					f.Wait(ctx)
				}
				futs = futs[:0]
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				f, err := cluster.SubmitPayment(ctx, anydb.Payment{
					Warehouse: (g + i) % 8, District: 1 + i%4, Customer: 1 + i%300, Amount: 1,
				})
				if err != nil {
					return
				}
				if futs = append(futs, f); len(futs) == window {
					flush()
				}
			}
		}(g)
	}
	select {
	case ev := <-events:
		fmt.Printf("controller: [%v] warehouse %d -> server %d (%s)\n",
			ev.Kind, ev.Warehouse, ev.Server, ev.Reason)
	case <-time.After(30 * time.Second):
		close(stop)
		wg.Wait()
		log.Fatal("controller never rebalanced")
	}
	close(stop)
	wg.Wait()
	fmt.Printf("placement after self-driving migration: %v\n", cluster.Placement())

	// OLTP keeps running against the migrated owners throughout.
	ok, err := cluster.Payment(anydb.Payment{Warehouse: 3, District: 2, Customer: 9, Amount: 1})
	if err != nil || !ok {
		log.Fatal("payment after migration failed")
	}
	fmt.Println("post-migration payment committed ✓")
	for _, ev := range cluster.AdaptationLog() {
		fmt.Printf("log: +%v [%v] %s (regret %.2f)\n", ev.At.Round(time.Millisecond), ev.Kind, ev.Reason, ev.Regret)
	}
}

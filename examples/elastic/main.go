// Elasticity: grow the cluster at runtime (§5 "elasticity for free") —
// newly added servers immediately host analytical operators, because
// placement is just routing.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anydb"
)

func main() {
	ctx := context.Background()
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           4,
		Districts:            6,
		CustomersPerDistrict: 300,
		InitialOrdersPerDist: 300,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("before: %+v\n", cluster.Stats())

	// Run the analytical query on the initial topology: its joins share
	// the control server with the dispatcher/sequencer roles.
	start := time.Now()
	rows, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query on 2 servers: %d rows in %v\n", rows, time.Since(start))

	// Grow: one new 4-core server joins; OpenOrders places joins on the
	// newest server automatically, so the next query runs on hardware
	// that did not exist a moment ago. No repartitioning, no restart —
	// storage stays where it is, events and data are simply routed to
	// the new ACs.
	added := cluster.AddServer(4)
	fmt.Printf("added a server with %d ACs: %+v\n", added, cluster.Stats())

	start = time.Now()
	rows2, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query on 3 servers: %d rows in %v\n", rows2, time.Since(start))
	if rows != rows2 {
		log.Fatalf("results diverged after scale-out: %d vs %d", rows, rows2)
	}

	// OLTP keeps running against the same owners throughout.
	ok, err := cluster.Payment(anydb.Payment{Warehouse: 3, District: 2, Customer: 9, Amount: 1})
	if err != nil || !ok {
		log.Fatal("payment after scale-out failed")
	}
	fmt.Println("post-scale-out payment committed ✓")
}

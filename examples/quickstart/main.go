// Quickstart: open an architecture-less cluster, run OLTP transactions,
// run the paper's analytical query, and verify TPC-C consistency.
package main

import (
	"fmt"
	"log"

	"anydb"
)

func main() {
	// A 2-server × 4-core cluster (the paper's Figure 2 layout) over a
	// small TPC-C-style database: 4 warehouses, one partition each,
	// owned by the first server's ACs.
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           4,
		Districts:            4,
		CustomersPerDistrict: 100,
		InitialOrdersPerDist: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %+v\n", cluster.Stats())

	// A payment by customer id...
	committed, err := cluster.Payment(anydb.Payment{
		Warehouse: 0, District: 1, Customer: 7, Amount: 123.45,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment by id committed:", committed)

	// ...and one by TPC-C last name (the 60% case, a range scan).
	committed, err = cluster.Payment(anydb.Payment{
		Warehouse: 2, District: 3, ByLastName: true, LastName: "BARBARBAR",
		Amount: 8.88,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment by last name committed:", committed)

	// A new-order with three lines.
	committed, err = cluster.NewOrder(anydb.NewOrder{
		Warehouse: 1, District: 2, Customer: 11,
		Lines: []anydb.OrderLine{
			{Item: 1, Qty: 3, SupplyWarehouse: 1},
			{Item: 5, Qty: 1, SupplyWarehouse: 1},
			{Item: 9, Qty: 2, SupplyWarehouse: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("new-order committed:", committed)

	// An invalid item triggers TPC-C's 1% rollback path.
	committed, err = cluster.NewOrder(anydb.NewOrder{
		Warehouse: 1, District: 2, Customer: 11,
		Lines: []anydb.OrderLine{{Item: -1, Qty: 1, SupplyWarehouse: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("invalid new-order committed:", committed, "(expected false)")

	// The analytical query of the paper's §4: open orders of customers
	// from states beginning with "A", since 2007 — 3 scans, 2 joins,
	// with all data streams beamed.
	open, err := cluster.OpenOrders()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("open qualifying orders:", open)

	// The same query in SQL: parsed, planned from table statistics, and
	// executed through the identical event/data-stream pipeline.
	n, _, err := cluster.Query(`SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_w_id = new_order.no_w_id
			AND orders.o_d_id = new_order.no_d_id
			AND orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query via SQL: %d rows (match: %v)\n", n, n == open)

	// And a small projection.
	_, rows, err := cluster.Query(
		"SELECT c_id, c_last FROM customer WHERE c_w_id = 0 AND c_d_id = 1 AND c_id <= 3")
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  customer %v: %v\n", r[0], r[1])
	}

	// TPC-C consistency must hold after all of the above.
	if err := cluster.Verify(); err != nil {
		log.Fatal("consistency violated: ", err)
	}
	fmt.Println("TPC-C consistency verified ✓")
}

// Quickstart: open an architecture-less cluster, run OLTP transactions
// (blocking and pipelined), run the paper's analytical query, and verify
// TPC-C consistency.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anydb"
)

func main() {
	ctx := context.Background()

	// A 2-server × 4-core cluster (the paper's Figure 2 layout) over a
	// small TPC-C-style database: 4 warehouses, one partition each,
	// owned by the first server's ACs.
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           4,
		Districts:            4,
		CustomersPerDistrict: 100,
		InitialOrdersPerDist: 50,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	fmt.Printf("cluster up: %+v\n", cluster.Stats())

	// A payment by customer id...
	committed, err := cluster.Payment(anydb.Payment{
		Warehouse: 0, District: 1, Customer: 7, Amount: 123.45,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment by id committed:", committed)

	// ...and one by TPC-C last name (the 60% case, a range scan).
	committed, err = cluster.Payment(anydb.Payment{
		Warehouse: 2, District: 3, ByLastName: true, LastName: "BARBARBAR",
		Amount: 8.88,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment by last name committed:", committed)

	// A new-order with three lines.
	committed, err = cluster.NewOrder(anydb.NewOrder{
		Warehouse: 1, District: 2, Customer: 11,
		Lines: []anydb.OrderLine{
			{Item: 1, Qty: 3, SupplyWarehouse: 1},
			{Item: 5, Qty: 1, SupplyWarehouse: 1},
			{Item: 9, Qty: 2, SupplyWarehouse: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("new-order committed:", committed)

	// An invalid item triggers TPC-C's 1% rollback path.
	committed, err = cluster.NewOrder(anydb.NewOrder{
		Warehouse: 1, District: 2, Customer: 11,
		Lines: []anydb.OrderLine{{Item: -1, Qty: 1, SupplyWarehouse: 1}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("invalid new-order committed:", committed, "(expected false)")

	// The async session idiom: SubmitPayment returns a pooled Future
	// immediately, so one session keeps a whole window of transactions
	// in flight instead of paying a round trip each. Pass a context to
	// Wait for cancellation/deadlines; canceling abandons the wait, not
	// the transaction.
	const pipeline = 64
	start := time.Now()
	futs := make([]*anydb.Future, 0, pipeline)
	for i := 0; i < pipeline; i++ {
		f, err := cluster.SubmitPayment(ctx, anydb.Payment{
			Warehouse: i % 4, District: 1 + i%4, Customer: 1 + i%100, Amount: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		futs = append(futs, f)
	}
	okAll := true
	for _, f := range futs {
		ok, err := f.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		okAll = okAll && ok
	}
	fmt.Printf("pipelined %d payments in %v (all committed: %v)\n",
		pipeline, time.Since(start), okAll)

	// The analytical query of the paper's §4: open orders of customers
	// from states beginning with "A", since 2007 — 3 scans, 2 joins,
	// with all data streams beamed.
	open, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("open qualifying orders:", open)

	// The same query in SQL: parsed, planned from table statistics, and
	// executed through the identical event/data-stream pipeline.
	var n int64
	err = cluster.QueryRow(ctx, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_w_id = new_order.no_w_id
			AND orders.o_d_id = new_order.no_d_id
			AND orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`).Scan(&n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("same query via SQL: %d rows (match: %v)\n", n, n == open)

	// A grouped aggregate with ordering, streamed row by row.
	rows, err := cluster.Query(ctx, `SELECT o_d_id, COUNT(*)
		FROM orders WHERE o_entry_d >= 2007
		GROUP BY o_d_id ORDER BY COUNT(*) DESC, o_d_id LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var d, cnt int64
		if err := rows.Scan(&d, &cnt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  district %d: %d recent orders\n", d, cnt)
	}
	rows.Close()

	// And a small projection.
	rows, err = cluster.Query(ctx,
		"SELECT c_id, c_last FROM customer WHERE c_w_id = 0 AND c_d_id = 1 AND c_id <= 3")
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var id int64
		var last string
		if err := rows.Scan(&id, &last); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  customer %d: %s\n", id, last)
	}
	rows.Close()

	// Any of the four §3 routing policies is one call away — here the
	// precise intra-transaction pipeline of Figure 4d.
	if err := cluster.SetPolicy(ctx, anydb.PreciseIntra); err != nil {
		log.Fatal(err)
	}
	if _, err := cluster.Payment(anydb.Payment{Warehouse: 3, District: 1, Customer: 1, Amount: 2}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("payment under", anydb.PreciseIntra, "committed")

	// TPC-C consistency must hold after all of the above.
	if err := cluster.Verify(); err != nil {
		log.Fatal("consistency violated: ", err)
	}
	fmt.Println("TPC-C consistency verified ✓")
}

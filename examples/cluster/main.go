// Cluster: the paper's architecture-less DBMS spanning two real OS
// processes. The parent becomes the head (client API + its own servers)
// and re-executes itself with -member to start a member process that
// joins over loopback TCP and hosts one more server. The same pipelined
// payments, new-orders, and SQL queries then run across the process
// boundary — scans execute inside the member against its live partition
// copies — and a live Rebalance migrates a warehouse between processes
// under load. Routing stays the only thing that changed: no code in the
// workload knows which side of the wire an AC lives on.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"anydb"
)

const warehouses = 8

func main() {
	member := flag.String("member", "", "run as a member process joining this head address")
	flag.Parse()
	if *member != "" {
		// Member half: serve our share of the cluster until dismissed.
		if err := anydb.ServeNode(context.Background(), *member); err != nil {
			log.Fatalf("member: %v", err)
		}
		return
	}

	ctx := context.Background()

	// Reserve a loopback port, hand it to the member we spawn, then
	// listen on it ourselves: the member dials with retry, so it may
	// come up before the head listens.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	child := exec.Command(os.Args[0], "-member", addr)
	child.Stdout, child.Stderr = os.Stdout, os.Stderr
	if err := child.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== head %d spawned member %d, joining on %s\n", os.Getpid(), child.Process.Pid, addr)

	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           warehouses,
		Districts:            2,
		CustomersPerDistrict: 50,
		InitialOrdersPerDist: 40,
		Listen:               addr,
		RemoteServers:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	placement := cluster.Placement()
	headOwned, memberOwned := -1, -1
	for w, s := range placement {
		if s < 2 && headOwned < 0 {
			headOwned = w
		}
		if s == 2 && memberOwned < 0 {
			memberOwned = w
		}
	}
	fmt.Printf("== placement across processes: %v (warehouse %d local, %d remote)\n",
		placement, headOwned, memberOwned)

	// Pipelined OLTP across every warehouse: half the partitions commit
	// in the other process, acks and done-notifications ride the wire.
	committed := runLoad(ctx, cluster, 12)
	fmt.Printf("== %d transactions committed across both processes\n", committed)

	// Analytics: the scans install at the partition owners, so half of
	// them execute member-side; joins and the sink run on the member's
	// compute server.
	var districts int64
	if err := cluster.QueryRow(ctx, "SELECT COUNT(*) FROM district").Scan(&districts); err != nil {
		log.Fatal(err)
	}
	open, err := cluster.OpenOrders(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== SQL across the wire: %d districts, %d open orders\n", districts, open)

	// Live migration: keep payments flowing against a head-owned
	// warehouse while it moves into the member process and back.
	var stop atomic.Bool
	var wg sync.WaitGroup
	var during atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			f, err := cluster.SubmitPayment(ctx, anydb.Payment{
				Warehouse: headOwned, District: 1, Customer: 2, Amount: 1,
			})
			if err != nil {
				return
			}
			if ok, err := f.Wait(ctx); err == nil && ok {
				during.Add(1)
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if err := cluster.Rebalance(ctx, headOwned, 2); err != nil {
		log.Fatal(err)
	}
	out := time.Since(start)
	runLoad(ctx, cluster, 3)
	start = time.Now()
	if err := cluster.Rebalance(ctx, headOwned, 0); err != nil {
		log.Fatal(err)
	}
	back := time.Since(start)
	stop.Store(true)
	wg.Wait()
	fmt.Printf("== warehouse %d migrated head→member in %v and back in %v; %d payments kept committing against it\n",
		headOwned, out, back, during.Load())

	if err := cluster.Verify(); err != nil {
		log.Fatalf("consistency check failed: %v", err)
	}
	if n := cluster.Stats().UnmatchedDone; n != 0 {
		log.Fatalf("exactly-once violated: %d unmatched completions", n)
	}
	fmt.Println("== TPC-C consistency verified, every transaction exactly-once")

	// Close pulls remote partitions home and dismisses the member; the
	// member process exits cleanly on its own.
	cluster.Close()
	if err := child.Wait(); err != nil {
		log.Fatalf("member process: %v", err)
	}
	fmt.Println("== member dismissed, both processes shut down clean")
}

// runLoad submits pipelined payments and new-orders against every
// warehouse and waits for the whole window, returning commits.
func runLoad(ctx context.Context, c *anydb.Cluster, rounds int) int64 {
	var committed int64
	for r := 0; r < rounds; r++ {
		futs := make([]*anydb.Future, 0, 2*warehouses)
		for w := 0; w < warehouses; w++ {
			f, err := c.SubmitPayment(ctx, anydb.Payment{
				Warehouse: w, District: 1 + r%2, Customer: 1 + w, Amount: 5,
			})
			if err != nil {
				log.Fatal(err)
			}
			futs = append(futs, f)
			f, err = c.SubmitNewOrder(ctx, anydb.NewOrder{
				Warehouse: w, District: 1 + r%2, Customer: 1 + w,
				Lines: []anydb.OrderLine{{Item: 1 + (r+w)%50, Qty: 1, SupplyWarehouse: w}},
			})
			if err != nil {
				log.Fatal(err)
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			if ok, err := f.Wait(ctx); err == nil && ok {
				committed++
			}
		}
	}
	return committed
}

// Autopilot: the paper's Figure-1 evolving workload with ZERO manual
// switches. Where examples/evolving scripts the oracle's per-phase
// policy, here the adaptation controller (internal/adapt) observes the
// telemetry stream — per-warehouse admissions, cross-partition ratio,
// abort rate — over sliding windows, scores the routing policies with
// its cost model, and reroutes the cluster on its own. The printout
// compares the self-driving run against every static policy and lists
// the decisions the controller took.
package main

import (
	"fmt"

	"anydb/internal/bench"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

func main() {
	opts := bench.DefaultOLTPOpts()
	opts.PhaseDur = 8 * sim.Millisecond

	fmt.Println("Self-driving AnyDB on the evolving workload (M tx/s), 12 phases:")
	fmt.Println("  0-2  partitionable OLTP   3-5  skewed OLTP")
	fmt.Println("  6-8  skewed HTAP          9-11 partitionable HTAP")
	fmt.Println("No phase is announced to the system; the controller infers")
	fmt.Println("everything from its signal windows.")
	fmt.Println()

	var series []*metrics.Series
	variants := []struct {
		label  string
		policy oltp.Policy
	}{
		{"static shared-nothing", oltp.SharedNothing},
		{"static streaming-cc", oltp.StreamingCC},
	}
	best := make([]float64, 12)
	for _, v := range variants {
		s, _ := bench.RunEvolvingStaticPolicy(opts, v.policy, v.label)
		for i, p := range s.Points {
			if p > best[i] {
				best[i] = p
			}
		}
		series = append(series, s)
	}

	adaptive, a := bench.RunEvolvingAdaptive(opts, oltp.SharedNothing)
	series = append(series, adaptive)
	fmt.Print(metrics.Table("series \\ phase", bench.PhaseHeaders(12), series, "%.2f"))

	fmt.Println("\ncontroller decisions (virtual time):")
	for _, d := range a.AdaptLog() {
		fmt.Printf("  %-10v %v -> %v\n      %s\n", d.At, d.From, d.To, d.Reason)
	}

	worst := 1.0
	for i, p := range adaptive.Points {
		if best[i] > 0 && p/best[i] < worst {
			worst = p / best[i]
		}
	}
	fmt.Printf("\nadaptive vs best static, worst phase: %.0f%%\n", worst*100)
}

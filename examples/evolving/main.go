// Evolving workload: a fast, deterministic mini-run of the paper's
// Figure 1 on the virtual-time runtime — the full regeneration lives in
// cmd/anydb-bench; this example prints the same two lines with a short
// phase window and explains what changes at each boundary.
package main

import (
	"fmt"

	"anydb/internal/bench"
	"anydb/internal/sim"
)

func main() {
	opts := bench.DefaultOLTPOpts()
	opts.PhaseDur = 8 * sim.Millisecond

	fmt.Println("Evolving workload (M tx/s), 12 phases:")
	fmt.Println("  0-2  partitionable OLTP  — AnyDB acts shared-nothing")
	fmt.Println("  3-5  skewed OLTP         — AnyDB shifts to streaming CC")
	fmt.Println("  6-8  skewed HTAP         — OLAP beamed to 2 extra servers")
	fmt.Println("  9-11 partitionable HTAP  — back to shared-nothing + isolated OLAP")
	fmt.Println()

	res := bench.Figure1(opts)
	fmt.Print(bench.RenderFigure1(res, opts))

	dbx, any := res.Series[0].Points, res.Series[1].Points
	avg := func(p []float64, from, to int) float64 {
		s := 0.0
		for i := from; i <= to; i++ {
			s += p[i]
		}
		return s / float64(to-from+1)
	}
	fmt.Println()
	fmt.Printf("skewed phases:  AnyDB %.2f vs DBx1000 %.2f M tx/s (%.1fx)\n",
		avg(any, 3, 5), avg(dbx, 3, 5), avg(any, 3, 5)/avg(dbx, 3, 5))
	fmt.Printf("skewed HTAP:    AnyDB %.2f vs DBx1000 %.2f M tx/s (%.1fx)\n",
		avg(any, 6, 8), avg(dbx, 6, 8), avg(any, 6, 8)/avg(dbx, 6, 8))
}

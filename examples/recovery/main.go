// Recovery: the paper's §2.3 naïve fault-tolerance route — committed
// transactions stream to durable storage as log events (command logging,
// group-committed); after a crash the state rebuilds by deterministic
// replay. Runs on the storage layer directly; see internal/wal for the
// machinery and its tests for torn-tail behavior.
package main

import (
	"fmt"
	"log"

	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
	"anydb/internal/wal"
)

func main() {
	cfg := tpcc.Config{Warehouses: 2, Districts: 4, Customers: 100,
		Items: 100, InitOrders: 20, Seed: 9}.WithDefaults()
	db, _ := tpcc.NewDatabase(cfg)

	dev := &wal.MemDevice{}
	logger := wal.NewLogger(dev, 8) // group commit every 8 txns

	// Run a workload, logging every commit.
	costs := sim.DefaultCosts()
	gen := tpcc.NewGenerator(cfg, tpcc.MixedOLTP(), 31)
	committed, aborted := 0, 0
	for i := 0; i < 500; i++ {
		txn := gen.Next()
		var undo storage.UndoLog
		ex := &oltp.Exec{DB: db, Costs: &costs, Charge: func(sim.Time) {}, Undo: &undo}
		failed := false
		for _, op := range oltp.Program(txn) {
			if err := op.Run(ex); err != nil {
				undo.Rollback()
				failed = true
				break
			}
		}
		if failed {
			aborted++
			continue
		}
		undo.Commit()
		if _, err := logger.Append(&txn); err != nil {
			log.Fatal(err)
		}
		committed++
	}
	if err := logger.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran %d transactions: %d committed, %d aborted, %d log syncs (group commit)\n",
		committed+aborted, committed, aborted, dev.Syncs)

	// 💥 Crash. All volatile state is gone; only the device survives.
	db = nil

	recovered, applied, err := wal.Recover(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered by replaying %d committed transactions\n", applied)

	if _, err := tpcc.Verify(recovered, cfg); err != nil {
		log.Fatal("recovered state inconsistent: ", err)
	}
	fmt.Println("TPC-C consistency holds on the recovered database ✓")
}

// Beaming: demonstrate §4's data beaming on the real goroutine runtime —
// with beaming, base-table streams push data while the query optimizer
// is still "compiling", so the compile window hides the transfers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"anydb"
)

func main() {
	ctx := context.Background()
	// Enough orders that the scans take a visible amount of time.
	cluster, err := anydb.Open(anydb.Config{
		Warehouses:           8,
		Districts:            10,
		CustomersPerDistrict: 500,
		InitialOrdersPerDist: 500,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const compile = 60 * time.Millisecond
	run := func(beam bool) (int64, time.Duration) {
		start := time.Now()
		rows, err := cluster.OpenOrdersOpts(ctx, anydb.QueryOptions{
			Beam: beam, CompileDelay: compile,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rows, time.Since(start)
	}

	// Warm caches with one throwaway run, then measure both modes.
	run(false)
	rowsNo, tNo := run(false)
	rowsBeam, tBeam := run(true)
	if rowsNo != rowsBeam {
		log.Fatalf("results differ: %d vs %d", rowsNo, rowsBeam)
	}

	fmt.Printf("analytical query (%d rows), compile window %v\n", rowsNo, compile)
	fmt.Printf("  without beaming: %v (compile, then scan+transfer+join)\n", tNo)
	fmt.Printf("  with beaming:    %v (scan+transfer overlap the compile)\n", tBeam)
	if tBeam < tNo {
		fmt.Printf("  beaming hid %v of work behind the compile window\n", tNo-tBeam)
	}
}

package anydb

// Member side of the multi-process deployment: ServeNode turns the
// calling process into one server of a head cluster opened with
// Config.Listen/RemoteServers. The member rebuilds the identical
// database and topology deterministically from the Welcome (no data
// ships at join time), runs ONLY its own server's ACs, and routes every
// other AC through transport outboxes drained onto the head connection
// — a star: member→member traffic relays through the head.

import (
	"context"
	"fmt"
	"net"
	"time"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/route"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
	"anydb/internal/transport"
)

// dialRetry paces connection attempts while the head is still coming
// up; dialWindow bounds the total wait.
const (
	dialRetry  = 100 * time.Millisecond
	dialWindow = 30 * time.Second
)

// ServeNode joins the head listening on addr as a member process and
// serves its share of the cluster's ACs until the head dismisses it
// (clean nil return), the connection drops, or ctx ends. It dials with
// retry, so members may start before the head listens. cmd/anydbd is a
// thin wrapper around this function.
func ServeNode(ctx context.Context, addr string) error {
	conn, err := dialHead(ctx, addr)
	if err != nil {
		return err
	}
	peer := transport.NewPeer(conn, nil)
	stop := context.AfterFunc(ctx, func() { peer.Close() })
	defer stop()

	if err := peer.WriteControl(&transport.Hello{Proto: transport.ProtoVersion}); err != nil {
		peer.Close()
		return err
	}
	wmsg, err := peer.ReadControl()
	if err != nil {
		peer.Close()
		return fmt.Errorf("anydb: handshake: %w", err)
	}
	w, ok := wmsg.(*transport.Welcome)
	if !ok || w.Proto != transport.ProtoVersion {
		peer.Close()
		return fmt.Errorf("anydb: handshake: unexpected %#v", wmsg)
	}

	// Rebuild the head's exact database and topology from the recipe:
	// population is deterministic in (config, seed), and the ownership
	// vector replays the head's SetOwner calls.
	db := storage.NewDatabase(w.TC.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, w.TC)
	for _, tn := range db.Catalog.Tables() {
		db.Catalog.SetStats(tn, storage.Analyze(db.Partition(0).Table(tn)))
	}
	topo := core.NewTopology(db)
	for s := 0; s < w.Servers; s++ {
		topo.AddServer(w.Cores)
	}
	for wh, ac := range w.Owners {
		topo.SetOwner(wh, core.ACID(ac))
	}
	local := make([]bool, topo.NumACs())
	for _, id := range topo.ACs(w.Server) {
		local[id] = true
	}

	// The member registers the full behavior set on its ACs — executors
	// for cross-process segments, workers for installed scans/joins, a
	// dispatcher per AC so the server can own partitions (under
	// shared-nothing the owner IS the entry point; the head redirects
	// raw transactions, but the role must exist for symmetry with local
	// owners). Telemetry stays disabled: the self-driving loop does not
	// run distributed.
	execs := topo.ACs(0)
	ctrl := topo.ACs(1)
	lay := route.Layout{
		Owner: topo.Owner, Execs: execs,
		Dispatch: ctrl[0], Seq: ctrl[1], Coord: ctrl[2],
	}
	setup := func(ac *core.AC) {
		pools := &oltp.Pools{}
		ac.Register(core.EvSegment, &oltp.Executor{DB: db, Pools: pools})
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, &plan.QO{Topo: topo})
		ac.Register(core.EvSeqStamp, &core.Sequencer{})
		d := oltp.NewDispatcher(oltp.SharedNothing, db, route.For(oltp.SharedNothing, lay))
		d.Pools = pools
		ac.Register(core.EvTxn, d)
		ac.Register(core.EvAck, d)
	}
	eng := core.NewEngineAt(topo, setup, func(id core.ACID) bool { return local[id] })
	// Completions surfacing here (query results, op-done notifications
	// from locally hosted operators) belong to the head's client: relay
	// them; the engine recycles the envelope when the callback returns.
	eng.SetClient(func(ev *core.Event) { _ = peer.ForwardClient(ev) })
	// Every non-local AC routes through one outbox drained to the head.
	for _, id := range topo.AllACs() {
		if !local[id] {
			peer.StartDrainer(id, eng.RegisterRemote(id))
		}
	}
	if err := peer.WriteControl(&transport.Ready{Server: w.Server}); err != nil {
		eng.Stop()
		peer.Close()
		return err
	}

	serveErr := peer.Serve(
		func(dst core.ACID, m any) {
			switch v := m.(type) {
			case *core.Event:
				eng.Inject(dst, v)
			case *core.DataMsg:
				eng.InjectData(dst, v)
			}
		},
		func(v any) error {
			switch msg := v.(type) {
			case *transport.PartReq:
				// Inside the head's quiet window: nothing local touches
				// the partition. Barrier extends the executors' last
				// flush into a happens-before edge for these reads.
				peer.Barrier()
				return peer.WriteControl(&transport.PartSnap{
					Ref: msg.Ref, W: msg.W,
					Tables: transport.SnapshotPartition(db, msg.W),
				})
			case *transport.PartInstall:
				peer.Barrier()
				ack := &transport.PartAck{Ref: msg.Ref}
				if err := transport.InstallPartition(db, msg.W, msg.Tables); err != nil {
					ack.Err = err.Error()
				}
				return peer.WriteControl(ack)
			case *transport.OwnerUpdate:
				topo.SetOwner(msg.W, core.ACID(msg.AC))
				db.Partition(msg.W).Handoff(int64(msg.AC))
			case *transport.Bye:
				return transport.ErrBye
			}
			return nil
		})
	eng.Stop()
	peer.WaitDrainers()
	peer.Close()
	if serveErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return serveErr
}

func dialHead(ctx context.Context, addr string) (net.Conn, error) {
	deadline := time.Now().Add(dialWindow)
	for {
		d := net.Dialer{Timeout: 2 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("anydb: dialing head %s: %w", addr, err)
		}
		time.Sleep(dialRetry)
	}
}

package anydb

// Member side of the multi-process deployment: ServeNode turns the
// calling process into one server of a head cluster opened with
// Config.Listen/RemoteServers. The member rebuilds the identical
// database and topology deterministically from the Welcome (no data
// ships at join time), runs ONLY its own server's ACs, and routes every
// other AC through transport outboxes drained onto the head connection
// — a star: member→member traffic relays through the head.

import (
	"context"
	"fmt"
	"net"
	"time"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/route"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
	"anydb/internal/transport"
)

// dialRetry paces connection attempts while the head is still coming
// up; dialWindow bounds the total wait. rejoinWindow bounds how long a
// disconnected member keeps redialing (backoff 50ms doubling to 1s)
// before giving up — it should comfortably exceed the head's
// MemberGrace, or a transient drop turns into a permanent eviction.
const (
	dialRetry    = 100 * time.Millisecond
	dialWindow   = 30 * time.Second
	rejoinWindow = 15 * time.Second
)

// ServeNode joins the head listening on addr as a member process and
// serves its share of the cluster's ACs until the head dismisses it
// (clean nil return), the connection drops, or ctx ends. It dials with
// retry, so members may start before the head listens. cmd/anydbd is a
// thin wrapper around this function.
func ServeNode(ctx context.Context, addr string) error {
	conn, err := dialHead(ctx, addr)
	if err != nil {
		return err
	}
	peer := transport.NewPeer(conn, nil)
	stop := context.AfterFunc(ctx, func() { peer.Close() })
	defer stop()

	if err := peer.WriteControl(&transport.Hello{Proto: transport.ProtoVersion}); err != nil {
		peer.Close()
		return err
	}
	wmsg, err := peer.ReadControl()
	if err != nil {
		peer.Close()
		return fmt.Errorf("anydb: handshake: %w", err)
	}
	w, ok := wmsg.(*transport.Welcome)
	if !ok || w.Proto != transport.ProtoVersion {
		peer.Close()
		return fmt.Errorf("anydb: handshake: unexpected %#v", wmsg)
	}

	// Rebuild the head's exact database and topology from the recipe:
	// population is deterministic in (config, seed), and the ownership
	// vector replays the head's SetOwner calls.
	db := storage.NewDatabase(w.TC.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, w.TC)
	for _, tn := range db.Catalog.Tables() {
		db.Catalog.SetStats(tn, storage.Analyze(db.Partition(0).Table(tn)))
	}
	topo := core.NewTopology(db)
	for s := 0; s < w.Servers; s++ {
		topo.AddServer(w.Cores)
	}
	for wh, ac := range w.Owners {
		topo.SetOwner(wh, core.ACID(ac))
	}
	local := make([]bool, topo.NumACs())
	for _, id := range topo.ACs(w.Server) {
		local[id] = true
	}

	// The member registers the full behavior set on its ACs — executors
	// for cross-process segments, workers for installed scans/joins, a
	// dispatcher per AC so the server can own partitions (under
	// shared-nothing the owner IS the entry point; the head redirects
	// raw transactions, but the role must exist for symmetry with local
	// owners). Telemetry stays disabled: the self-driving loop does not
	// run distributed.
	execs := topo.ACs(0)
	ctrl := topo.ACs(1)
	lay := route.Layout{
		Owner: topo.Owner, Execs: execs,
		Dispatch: ctrl[0], Seq: ctrl[1], Coord: ctrl[2],
	}
	setup := func(ac *core.AC) {
		pools := &oltp.Pools{}
		ac.Register(core.EvSegment, &oltp.Executor{DB: db, Pools: pools})
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, &plan.QO{Topo: topo})
		ac.Register(core.EvSeqStamp, &core.Sequencer{})
		d := oltp.NewDispatcher(oltp.SharedNothing, db, route.For(oltp.SharedNothing, lay))
		d.Pools = pools
		ac.Register(core.EvTxn, d)
		ac.Register(core.EvAck, d)
	}
	eng := core.NewEngineAt(topo, setup, func(id core.ACID) bool { return local[id] })
	// Completions surfacing here (query results, op-done notifications
	// from locally hosted operators) belong to the head's client: relay
	// them; the engine recycles the envelope when the callback returns.
	eng.SetClient(func(ev *core.Event) { _ = peer.ForwardClient(ev) })
	// Every non-local AC routes through one outbox drained to the head.
	for _, id := range topo.AllACs() {
		if !local[id] {
			peer.StartDrainer(id, eng.RegisterRemote(id))
		}
	}
	if err := peer.WriteControl(&transport.Ready{Server: w.Server}); err != nil {
		eng.Stop()
		peer.Close()
		return err
	}

	// Liveness: both sides Ping at the Welcome's cadence. The read
	// watchdog arms lazily on the first inbound Ping — the head starts
	// its heartbeats only once every member has joined, so arming
	// earlier would let a sibling's slow populate trip it.
	hb := time.Duration(w.HeartbeatNs)
	if hb > 0 {
		hbStop := make(chan struct{})
		defer close(hbStop)
		go func() {
			t := time.NewTicker(hb)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					_ = peer.WriteControl(&transport.Ping{})
				case <-hbStop:
					return
				}
			}
		}()
	}
	sawBye := false
	onMsg := func(dst core.ACID, m any) {
		switch v := m.(type) {
		case *core.Event:
			eng.Inject(dst, v)
		case *core.DataMsg:
			eng.InjectData(dst, v)
		}
	}
	onCtrl := func(v any) error {
		switch msg := v.(type) {
		case *transport.PartReq:
			// Inside the head's quiet window: nothing local touches
			// the partition. Barrier extends the executors' last
			// flush into a happens-before edge for these reads.
			peer.Barrier()
			return peer.WriteControl(&transport.PartSnap{
				Ref: msg.Ref, W: msg.W,
				Tables: transport.SnapshotPartition(db, msg.W),
			})
		case *transport.PartInstall:
			peer.Barrier()
			ack := &transport.PartAck{Ref: msg.Ref}
			if err := transport.InstallPartition(db, msg.W, msg.Tables); err != nil {
				ack.Err = err.Error()
			}
			return peer.WriteControl(ack)
		case *transport.OwnerUpdate:
			topo.SetOwner(msg.W, core.ACID(msg.AC))
			db.Partition(msg.W).Handoff(int64(msg.AC))
		case *transport.Ping:
			if hb > 0 {
				// Same goroutine as the read loop, so no race.
				peer.SetReadTimeout(3 * hb)
			}
		case *transport.Bye:
			sawBye = true
			return transport.ErrBye
		}
		return nil
	}
	// Transport fault tolerance: a broken connection is not the end of
	// the member. Redial with backoff; if the head is still inside its
	// grace window it splices the fresh connection (RejoinOK) and the
	// serve loop resumes — work the break interrupted was failed with
	// typed errors on the head, future traffic flows normally.
	var serveErr error
	for {
		serveErr = peer.Serve(onMsg, onCtrl)
		if sawBye || ctx.Err() != nil {
			break
		}
		conn, err := redialRejoin(ctx, addr, w.Server)
		if err != nil {
			if serveErr == nil {
				serveErr = err
			}
			break
		}
		peer.SetConn(conn)
	}
	eng.Stop()
	peer.WaitDrainers()
	peer.Close()
	if serveErr == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return serveErr
}

// redialRejoin re-establishes a member's head connection after a break:
// dial, Hello{Rejoin} with the member's assigned server slot, and wait
// for the head's RejoinOK (it only answers once its serve goroutine
// committed to the splice). The handshake peer reads exact frames — no
// buffered lookahead — so the raw connection can be spliced afterwards.
func redialRejoin(ctx context.Context, addr string, server int) (net.Conn, error) {
	backoff := 50 * time.Millisecond
	deadline := time.Now().Add(rejoinWindow)
	var lastErr error
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		d := net.Dialer{Timeout: 2 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			tmp := transport.NewPeer(conn, nil)
			err = tmp.WriteControl(&transport.Hello{
				Proto: transport.ProtoVersion, Rejoin: true, Server: server,
			})
			if err == nil {
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				var v any
				if v, err = tmp.ReadControl(); err == nil {
					if _, ok := v.(*transport.RejoinOK); ok {
						conn.SetReadDeadline(time.Time{})
						return conn, nil
					}
					err = fmt.Errorf("anydb: rejoin: unexpected %#v", v)
				}
			}
			conn.Close()
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("anydb: rejoining head %s: %w", addr, lastErr)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

func dialHead(ctx context.Context, addr string) (net.Conn, error) {
	deadline := time.Now().Add(dialWindow)
	for {
		d := net.Dialer{Timeout: 2 * time.Second}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err == nil {
			return conn, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("anydb: dialing head %s: %w", addr, err)
		}
		time.Sleep(dialRetry)
	}
}

package metrics

import "testing"

func TestWindowSlides(t *testing.T) {
	w := NewWindow(1000, 10) // 1µs span, 100ns buckets
	w.Add(0, 5)
	w.Add(500, 3)
	if got := w.Sum(500); got != 8 {
		t.Fatalf("sum at 500 = %v, want 8", got)
	}
	// At t=1400 the bucket holding t=0 has aged out; t=500 remains.
	if got := w.Sum(1400); got != 3 {
		t.Fatalf("sum at 1400 = %v, want 3", got)
	}
	// At t=1600 everything has aged out.
	if got := w.Sum(1600); got != 0 {
		t.Fatalf("sum at 1600 = %v, want 0", got)
	}
}

func TestWindowRingReuse(t *testing.T) {
	w := NewWindow(1000, 10)
	w.Add(50, 1)
	// One full span later the same ring slot is reused; the stale sum
	// must not leak into the new bucket.
	w.Add(1050, 2)
	if got := w.Sum(1050); got != 2 {
		t.Fatalf("sum after ring wrap = %v, want 2", got)
	}
}

func TestWindowRateAndReset(t *testing.T) {
	w := NewWindow(1_000_000_000, 10) // 1s span
	w.Add(900_000_000, 100)
	if got := w.Rate(1_000_000_000); got != 100 {
		t.Fatalf("rate = %v, want 100/s", got)
	}
	w.Reset()
	if got := w.Sum(1_000_000_000); got != 0 {
		t.Fatalf("sum after reset = %v", got)
	}
}

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(1000, 4)
	if w.Sum(123456) != 0 || w.Rate(123456) != 0 {
		t.Fatal("empty window must sum to zero")
	}
}

package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("Load = %d, want 5", c.Load())
	}
	if c.Reset() != 5 || c.Load() != 0 {
		t.Fatal("Reset did not return previous value and zero the counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 80000 {
		t.Fatalf("Load = %d, want 80000", c.Load())
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1000, time.Second); got != 1000 {
		t.Fatalf("Rate = %g, want 1000", got)
	}
	if got := Rate(500, 250*time.Millisecond); got != 2000 {
		t.Fatalf("Rate = %g, want 2000", got)
	}
	if got := Rate(5, 0); got != 0 {
		t.Fatalf("Rate with zero elapsed = %g, want 0", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	h.Record(100 * time.Nanosecond)
	h.Record(200 * time.Nanosecond)
	h.Record(300 * time.Nanosecond)
	if h.Count() != 3 {
		t.Fatalf("Count = %d, want 3", h.Count())
	}
	if h.Mean() != 200*time.Nanosecond {
		t.Fatalf("Mean = %v, want 200ns", h.Mean())
	}
	if h.Max() != 300*time.Nanosecond {
		t.Fatalf("Max = %v, want 300ns", h.Max())
	}
}

// TestHistogramQuantileAccuracy checks that quantiles are within the
// histogram's relative resolution of the true value.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q).Seconds()
		want := q * 10000 * 1e-6
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("Quantile(%g) = %gs, want within 10%% of %gs", q, got, want)
		}
	}
}

func TestHistogramBucketMonotone(t *testing.T) {
	prev := -1
	for ns := int64(1); ns < int64(1)<<40; ns *= 3 {
		idx := bucketOf(time.Duration(ns))
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %dns: %d < %d", ns, idx, prev)
		}
		prev = idx
	}
}

// TestHistogramBucketBounds: every duration lands in a bucket whose lower
// bound does not exceed it.
func TestHistogramBucketBounds(t *testing.T) {
	check := func(ns int64) bool {
		if ns < 16 {
			ns = 16
		}
		if ns > 1<<62 {
			ns = 1 << 62
		}
		idx := bucketOf(time.Duration(ns))
		return bucketLow(idx) <= ns
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 5000; j++ {
				h.Record(time.Duration(j) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 20000 {
		t.Fatalf("Count = %d, want 20000", h.Count())
	}
	if !strings.Contains(h.String(), "n=20000") {
		t.Fatalf("String() = %q missing count", h.String())
	}
}

func TestSeriesAndTable(t *testing.T) {
	s1 := &Series{Label: "DBx1000"}
	s1.Append(2.0)
	s1.Append(0.7)
	s2 := &Series{Label: "AnyDB"}
	s2.Append(2.0)
	out := Table("phase", []string{"0", "1"}, []*Series{s1, s2}, "%.2f")
	if !strings.Contains(out, "DBx1000") || !strings.Contains(out, "0.70") {
		t.Fatalf("table missing content:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("short series should render '-':\n%s", out)
	}
	csv := CSV("phase", []string{"0", "1"}, []*Series{s1, s2})
	if !strings.HasPrefix(csv, "phase,DBx1000,AnyDB\n0,2,2\n") {
		t.Fatalf("csv header/content wrong:\n%s", csv)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("SortedKeys = %v", got)
	}
}

package metrics

// Window is a sliding-window aggregator over timestamped observations:
// Add(at, v) accumulates values into fixed-width time buckets and
// Sum(now) returns the total over the trailing span, expiring buckets
// lazily. Timestamps are int64 nanoseconds (virtual or wall clock — the
// window is agnostic), must be non-decreasing within ~one span, and all
// operations are O(number of buckets).
//
// A Window is not safe for concurrent use; the adaptation controller
// owns its windows and only touches them from one AC's event handler.
type Window struct {
	span    int64 // trailing duration covered
	width   int64 // bucket width
	sums    []float64
	starts  []int64 // bucket start time per slot; -1 = empty
	started bool
}

// NewWindow returns a sliding window covering span nanoseconds with the
// given number of buckets (resolution of expiry). span and buckets must
// be positive.
func NewWindow(span int64, buckets int) *Window {
	if span <= 0 || buckets <= 0 {
		panic("metrics: Window needs positive span and buckets")
	}
	w := &Window{span: span, width: span / int64(buckets), sums: make([]float64, buckets), starts: make([]int64, buckets)}
	if w.width == 0 {
		w.width = 1
	}
	for i := range w.starts {
		w.starts[i] = -1
	}
	return w
}

// Span returns the trailing duration the window covers.
func (w *Window) Span() int64 { return w.span }

// slot maps a timestamp to its ring slot and bucket start.
func (w *Window) slot(at int64) (int, int64) {
	b := at / w.width
	return int(b % int64(len(w.sums))), b * w.width
}

// Add accumulates v at time at.
func (w *Window) Add(at int64, v float64) {
	i, start := w.slot(at)
	if w.starts[i] != start {
		w.sums[i] = 0
		w.starts[i] = start
	}
	w.sums[i] += v
	w.started = true
}

// Sum returns the total of observations within (now-span, now].
func (w *Window) Sum(now int64) float64 {
	if !w.started {
		return 0
	}
	var total float64
	oldest := now - w.span
	for i, start := range w.starts {
		if start >= 0 && start > oldest && start <= now {
			total += w.sums[i]
		}
	}
	return total
}

// Rate returns Sum(now) per second.
func (w *Window) Rate(now int64) float64 {
	return w.Sum(now) / (float64(w.span) / 1e9)
}

// Reset clears all buckets.
func (w *Window) Reset() {
	for i := range w.starts {
		w.starts[i] = -1
		w.sums[i] = 0
	}
	w.started = false
}

// Package metrics provides lightweight measurement primitives used by the
// benchmark harness and both engines: atomic counters, windowed rate
// series (throughput per workload phase), and log-scaled latency
// histograms.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is an atomic event counter.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.n.Load() }

// Reset sets the counter to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.n.Swap(0) }

// Rate converts a count observed over an elapsed duration into events per
// second. Durations of zero or less yield zero rather than Inf/NaN so the
// harness can render partial phases safely.
func Rate(count int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(count) / elapsed.Seconds()
}

// Series is a labeled sequence of per-phase measurements (e.g., OLTP
// throughput per workload phase). It is not safe for concurrent use; the
// harness owns it.
type Series struct {
	Label  string
	Points []float64
}

// Append adds a measurement point.
func (s *Series) Append(v float64) { s.Points = append(s.Points, v) }

// numBuckets covers nanosecond exponents 4..63 with 16 sub-buckets each;
// observations below 16ns share the first bucket.
const numBuckets = 16 * 60

// Histogram is a log-bucketed latency histogram with about 6% relative
// resolution. The zero value is ready to use. It is safe for concurrent
// recording.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // total nanoseconds
	max     atomic.Int64
}

// bucketOf maps a duration to a bucket index: 16 sub-buckets per power of
// two of nanoseconds, starting at 16ns.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 16 {
		ns = 16
	}
	exp := 63 - leadingZeros64(uint64(ns))
	sub := (ns >> (uint(exp) - 4)) & 15
	idx := (exp-4)*16 + int(sub)
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound of bucket idx in nanoseconds.
func bucketLow(idx int) int64 {
	exp := idx/16 + 4
	sub := int64(idx % 16)
	return (16 + sub) << (uint(exp) - 4)
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		cur := h.max.Load()
		if d.Nanoseconds() <= cur || h.max.CompareAndSwap(cur, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observation.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile returns an approximate q-quantile (0 <= q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return time.Duration(bucketLow(i))
		}
	}
	return h.Max()
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Max())
}

// Table renders labeled series as an aligned text table, one row per
// series and one column per phase/x-value. xlabel names the column axis;
// xs supplies the column headers (len(xs) must cover the longest series).
func Table(xlabel string, xs []string, series []*Series, format string) string {
	var b strings.Builder
	w := 12
	fmt.Fprintf(&b, "%-28s", xlabel)
	for _, x := range xs {
		fmt.Fprintf(&b, "%*s", w, x)
	}
	b.WriteByte('\n')
	for _, s := range series {
		fmt.Fprintf(&b, "%-28s", s.Label)
		for i := range xs {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%*s", w, fmt.Sprintf(format, s.Points[i]))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the same data as comma-separated values for plotting.
func CSV(xlabel string, xs []string, series []*Series) string {
	var b strings.Builder
	b.WriteString(xlabel)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Label)
	}
	b.WriteByte('\n')
	for i, x := range xs {
		b.WriteString(x)
		for _, s := range series {
			b.WriteByte(',')
			if i < len(s.Points) {
				fmt.Fprintf(&b, "%g", s.Points[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order; a small helper for stable
// report rendering.
func SortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

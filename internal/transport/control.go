package transport

import (
	"bytes"
	"encoding/gob"

	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Control plane: rare, latency-insensitive messages (handshake,
// partition migration, ownership broadcasts, shutdown) ride in gob
// frames so evolving them costs nothing — only the hot event/data plane
// uses the hand-rolled codec.

// ProtoVersion gates the handshake: both sides must speak the same wire
// format.
const ProtoVersion = 1

// Hello is the member's first frame after dialing. A reconnecting
// member sets Rejoin with its previously assigned server slot; the head
// splices the fresh connection into the existing peer instead of
// running a full join.
type Hello struct {
	Proto  int
	Rejoin bool
	Server int
}

// Welcome assigns the member its server slot and everything needed to
// deterministically rebuild the head's database and topology: members
// do not ship data at join time, they repopulate from the same seed.
type Welcome struct {
	Proto   int
	Server  int // the member's server index in the topology
	Servers int // total servers (head's + all members')
	Cores   int // ACs per server
	TC      tpcc.Config
	Owners  []int // warehouse -> owner ACID at join time
	// HeartbeatNs is the Ping cadence both sides keep (0 disables);
	// silence beyond a few intervals trips the peer's read watchdog.
	HeartbeatNs int64
}

// Ready signals the member has built its state and spawned its ACs.
type Ready struct {
	Server int
}

// TableSnap is one table's contents inside a partition snapshot, split
// the way storage.Table.InstallRows re-inserts them.
type TableSnap struct {
	Name    string
	Keys    []storage.Key
	Rows    []storage.Row
	Keyless []storage.Row
}

// PartReq asks the receiver to snapshot its live copy of partition W.
type PartReq struct {
	Ref uint64
	W   int
}

// PartSnap answers a PartReq.
type PartSnap struct {
	Ref    uint64
	W      int
	Tables []TableSnap
}

// PartInstall pushes a snapshot into the receiver's partition W,
// replacing its contents.
type PartInstall struct {
	Ref    uint64
	W      int
	Tables []TableSnap
}

// PartAck acknowledges a PartInstall.
type PartAck struct {
	Ref uint64
	Err string
}

// OwnerUpdate broadcasts a topology ownership change (SetOwner) so
// every process's snapshot reroutes identically.
type OwnerUpdate struct {
	W  int
	AC int
}

// Bye tells a member to shut down; its serve loop returns cleanly.
type Bye struct{}

// Ping is the liveness heartbeat. No reply: each side sends its own,
// and arrival alone feeds the receiver's read watchdog.
type Ping struct{}

// RejoinOK confirms a rejoin handshake: the head spliced the connection
// and resumed the member's drainers onto it.
type RejoinOK struct{}

// ctrlBox wraps the concrete control message so one gob round trip
// carries any of them.
type ctrlBox struct {
	M any
}

func init() {
	gob.Register(&Hello{})
	gob.Register(&Welcome{})
	gob.Register(&Ready{})
	gob.Register(&PartReq{})
	gob.Register(&PartSnap{})
	gob.Register(&PartInstall{})
	gob.Register(&PartAck{})
	gob.Register(&OwnerUpdate{})
	gob.Register(&Bye{})
	gob.Register(&Ping{})
	gob.Register(&RejoinOK{})
}

// encodeControl gobs v into a standalone blob (self-describing: each
// control frame carries its own type info, so frames are independent
// and may interleave with message frames freely).
func encodeControl(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&ctrlBox{M: v}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeControl(body []byte) (any, error) {
	var box ctrlBox
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&box); err != nil {
		return nil, err
	}
	return box.M, nil
}

// SnapshotPartition deep-copies every table of partition w — call only
// inside a drained quiet window.
func SnapshotPartition(db *storage.Database, w int) []TableSnap {
	p := db.Partition(w)
	tables := db.Catalog.Tables()
	out := make([]TableSnap, 0, len(tables))
	for _, tn := range tables {
		keys, rows, keyless := p.Table(tn).SnapshotRows()
		out = append(out, TableSnap{Name: tn, Keys: keys, Rows: rows, Keyless: keyless})
	}
	return out
}

// InstallPartition replaces partition w's contents with a snapshot.
func InstallPartition(db *storage.Database, w int, tables []TableSnap) error {
	p := db.Partition(w)
	for _, ts := range tables {
		if err := p.Table(ts.Name).InstallRows(ts.Keys, ts.Rows, ts.Keyless); err != nil {
			return err
		}
	}
	return nil
}

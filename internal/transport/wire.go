// Package transport is the pluggable stream plane: it carries the same
// event and data streams the in-process mailboxes deliver, across OS
// processes, with the same batched-push/batched-drain semantics. The
// in-process path stays the zero-cost default — senders route through
// the engine's published mailbox table exactly as before; an AC that
// lives in another process simply has its mailbox drained by a router
// goroutine that encodes whole batches into length-prefixed frames on a
// TCP connection instead of by an AC loop (core.Engine.RegisterRemote).
//
// The wire codec is hand-rolled, fixed little-endian, and append-only
// on encode: one reusable buffer per connection, so a steady-state
// flush allocates nothing. Decode is fully bounds-checked — a malformed
// or truncated frame surfaces as an error, never a panic — and
// materializes pooled messages (core.GetEvent / core.GetDataMsg /
// storage.GetBatch), so the receiving side re-enters the same pooled
// ownership discipline as local sends: the encode side frees its local
// copy at the boundary, the decode side's consumer frees the replica.
package transport

import (
	"encoding/binary"
	"errors"
	"math"
)

// errMalformed reports a frame that does not decode; connections treat
// it as fatal (framing is lost).
var errMalformed = errors.New("transport: malformed frame")

// wbuf is an append-only encode buffer. All writers are infallible
// (appends); the frame writer snapshots len() for the length prefix.
type wbuf struct {
	b []byte
}

func (w *wbuf) reset()        { w.b = w.b[:0] }
func (w *wbuf) u8(v uint8)    { w.b = append(w.b, v) }
func (w *wbuf) bool(v bool)   { w.b = append(w.b, b2u(v)) }
func (w *wbuf) u16(v uint16)  { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *wbuf) u32(v uint32)  { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)   { w.u64(uint64(v)) }
func (w *wbuf) i32(v int32)   { w.u32(uint32(v)) }
func (w *wbuf) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *wbuf) varint(v int)  { w.i64(int64(v)) }
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

func b2u(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// rbuf is a bounds-checked decode cursor. The first out-of-bounds read
// sets err and every subsequent read returns zero values, so decoders
// can run straight-line and check err once — malformed input degrades
// to an error, never an out-of-range panic.
type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() {
	if r.err == nil {
		r.err = errMalformed
	}
}

func (r *rbuf) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *rbuf) u8() uint8 {
	s := r.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (r *rbuf) bool() bool { return r.u8() != 0 }

func (r *rbuf) u16() uint16 {
	s := r.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (r *rbuf) u32() uint32 {
	s := r.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (r *rbuf) u64() uint64 {
	s := r.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (r *rbuf) i64() int64   { return int64(r.u64()) }
func (r *rbuf) i32() int32   { return int32(r.u32()) }
func (r *rbuf) f64() float64 { return math.Float64frombits(r.u64()) }

// varint decodes a non-negative scalar field previously written by
// wbuf.varint (indexes, fan-in widths, row budgets). Negative values
// are malformed; magnitude is NOT frame-bounded — scalars like a scan's
// chunk budget legitimately exceed their frame's byte length — but is
// capped at 32 bits so a corrupt field cannot masquerade as a sane int.
func (r *rbuf) varint() int {
	v := r.i64()
	if v < 0 || v > math.MaxInt32 {
		r.fail()
		return 0
	}
	return int(v)
}

// count decodes a collection length: non-negative and no larger than
// the remaining frame could possibly describe (every element occupies
// at least one byte), so a corrupt count cannot provoke an absurd
// pre-allocation before element decoding hits the end of the frame.
func (r *rbuf) count() int {
	v := r.i64()
	if v < 0 || v > int64(len(r.b)-r.off) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *rbuf) str() string {
	n := r.u32()
	if r.err != nil || int(n) > len(r.b)-r.off {
		r.fail()
		return ""
	}
	return string(r.take(int(n)))
}

// done reports whether the cursor consumed the buffer exactly.
func (r *rbuf) done() bool { return r.err == nil && r.off == len(r.b) }

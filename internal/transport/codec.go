package transport

import (
	"fmt"
	"sync"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Message type tags inside a messages frame.
const (
	mtEvent uint8 = 1
	mtData  uint8 = 2
)

// Payload type tags of an event body. Only payloads that actually cross
// process boundaries under the distributed deployment are encodable;
// anything else (plan continuations, sequencer batches, telemetry) is a
// routing bug surfaced as an encode error, not silently dropped.
const (
	pNil uint8 = iota
	pSegment
	pAck
	pDoneInfo
	pOpDone
	pQueryResult
	pScanSpec
	pSharedScanSpec
	pJoinSpec
	pAggSpec
	pCollectSpec
	pSinkSpec
)

// Op kind tags inside a segment body.
const (
	opUpdateWarehouseYTD uint8 = iota
	opUpdateDistrictYTD
	opPayCustomer
	opInsertHistory
	opInsertOrder
	opUpdateStock
)

// Client token tags.
const (
	cNil   uint8 = 0
	cToken uint8 = 1
)

// Token is an opaque client-completion token crossing the wire: the
// issuing node (the one holding the real token value, e.g. a *Future)
// replaces it with a table entry and ships the key; every other node
// carries the key around opaquely — segments thread it into acks —
// until it returns to the issuer, which resolves and retires it.
type Token uint64

// AckInfo is the commit-coordination identity of the segment a token
// rode out on: enough to synthesize the ack the dead member will never
// send, so the coordinator's pending count still converges and the
// waiting future resolves with a typed error instead of hanging.
type AckInfo struct {
	Coord core.ACID
	ID    core.TxnID
	Total int
	Home  int
}

// tokEntry is one outstanding token: the client value, the server the
// frame went to, and (for segment-carried tokens) the ack identity.
type tokEntry struct {
	v      any
	owner  int
	ack    AckInfo
	hasAck bool
}

// FailedToken is one entry reclaimed by FailOwner.
type FailedToken struct {
	Value  any
	Ack    AckInfo
	HasAck bool
}

// TokenTable is the issuer-side token registry. One per node; only the
// node that owns client tokens (the head, where submissions originate)
// resolves entries — everyone else passes Tokens through.
type TokenTable struct {
	mu   sync.Mutex
	next uint64
	m    map[uint64]tokEntry
}

// NewTokenTable returns an empty table.
func NewTokenTable() *TokenTable {
	return &TokenTable{m: make(map[uint64]tokEntry)}
}

// Put registers v, attributed to the destination server, and returns
// its wire key. hasAck marks tokens riding a segment, whose loss is
// repaired by a synthetic ack.
func (t *TokenTable) Put(v any, owner int, ack AckInfo, hasAck bool) uint64 {
	t.mu.Lock()
	t.next++
	k := t.next
	t.m[k] = tokEntry{v: v, owner: owner, ack: ack, hasAck: hasAck}
	t.mu.Unlock()
	return k
}

// Take resolves and retires a key. Unknown keys (issued by someone
// else, or already retired) report false.
func (t *TokenTable) Take(k uint64) (any, bool) {
	t.mu.Lock()
	e, ok := t.m[k]
	if ok {
		delete(t.m, k)
	}
	t.mu.Unlock()
	return e.v, ok
}

// FailOwner retires every token attributed to a dead server and returns
// them. Callers must have stopped token issuance toward that server
// first (Peer.MarkDead serializes with encodes), so the snapshot is
// complete: a returned key can never race a late Take — the bytes that
// would carry it back only existed on the dead member.
func (t *TokenTable) FailOwner(owner int) []FailedToken {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []FailedToken
	for k, e := range t.m {
		if e.owner == owner {
			out = append(out, FailedToken{Value: e.v, Ack: e.ack, HasAck: e.hasAck})
			delete(t.m, k)
		}
	}
	return out
}

// Len returns the number of outstanding tokens (leak check).
func (t *TokenTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// encoder is one connection's encode state: a reusable append buffer
// and the node's token table (nil on nodes that never issue tokens).
// Encoding is single-writer per connection (the peer's write mutex).
// owner is the server index of the connection's far end; curTxn and
// curAck thread the coordination identity of the event/segment being
// encoded down to the token issued for its client, so a dead-owner
// sweep can synthesize the lost ack.
type encoder struct {
	w     wbuf
	tok   *TokenTable
	owner int

	curTxn   core.TxnID
	curAck   AckInfo
	ackValid bool
}

// decoder is one connection's decode state: the schema cache (batches
// re-reference schemas by their wire encoding, so steady-state decode
// resolves them with one map hit) and the node's token table for
// resolving returning client tokens.
type decoder struct {
	tok     *TokenTable
	schemas map[string]*storage.Schema
	rowBuf  storage.Row
}

func newDecoder(tok *TokenTable) *decoder {
	return &decoder{tok: tok, schemas: make(map[string]*storage.Schema)}
}

// encodeMsg appends one event or data message to the frame body.
func (e *encoder) encodeMsg(m any) error {
	switch v := m.(type) {
	case *core.Event:
		e.w.u8(mtEvent)
		return e.encodeEvent(v)
	case *core.DataMsg:
		e.w.u8(mtData)
		e.encodeData(v)
		return nil
	default:
		return fmt.Errorf("transport: message %T cannot cross the wire", m)
	}
}

func (e *encoder) encodeEvent(ev *core.Event) error {
	e.curTxn, e.ackValid = ev.Txn, false
	e.w.u8(uint8(ev.Kind))
	e.w.u64(uint64(ev.Txn))
	e.w.u64(uint64(ev.Query))
	e.w.u64(ev.Seq)
	e.w.bool(ev.NeedClosed)
	e.w.varint(len(ev.Need))
	for _, s := range ev.Need {
		e.w.u64(uint64(s))
	}
	e.w.i64(ev.Size)
	if err := e.encodeClient(ev.Client); err != nil {
		return err
	}
	return e.encodePayload(ev.Payload)
}

func (e *encoder) encodeClient(c any) error {
	switch v := c.(type) {
	case nil:
		e.w.u8(cNil)
	case Token:
		e.w.u8(cToken)
		e.w.u64(uint64(v))
	default:
		if e.tok == nil {
			return fmt.Errorf("transport: cannot issue token for client %T on a non-issuing node", c)
		}
		e.w.u8(cToken)
		e.w.u64(e.tok.Put(v, e.owner, e.curAck, e.ackValid))
	}
	return nil
}

func (d *decoder) decodeClient(r *rbuf) any {
	switch r.u8() {
	case cNil:
		return nil
	case cToken:
		k := r.u64()
		if d.tok != nil {
			if v, ok := d.tok.Take(k); ok {
				return v
			}
		}
		return Token(k)
	default:
		r.fail()
		return nil
	}
}

func (e *encoder) encodePayload(p any) error {
	switch v := p.(type) {
	case nil:
		e.w.u8(pNil)
	case *oltp.Segment:
		e.w.u8(pSegment)
		return e.encodeSegment(v)
	case *oltp.Ack:
		e.w.u8(pAck)
		e.w.varint(v.Total)
		e.w.varint(v.Home)
		return e.encodeClient(v.Client)
	case *oltp.DoneInfo:
		if v.Err != nil {
			// Failure DoneInfos are head-local by construction (the
			// dispatchers that produce them live there); an attempt to
			// ship one is a routing bug, not a field to silently drop.
			return fmt.Errorf("transport: DoneInfo with error %q cannot cross the wire", v.Err)
		}
		e.w.u8(pDoneInfo)
		e.w.bool(v.Committed)
		e.w.varint(v.Home)
		return e.encodeClient(v.Client)
	case *olap.OpDone:
		e.w.u8(pOpDone)
		e.w.u64(uint64(v.Query))
		e.w.str(v.Label)
	case *olap.QueryResult:
		e.w.u8(pQueryResult)
		e.encodeQueryResult(v)
	case *olap.ScanSpec:
		e.w.u8(pScanSpec)
		e.w.u64(uint64(v.Query))
		e.w.i32(int32(v.Table))
		e.w.varint(v.Part)
		e.encodePreds(v.Filters)
		e.encodeStrs(v.Cols)
		e.w.u64(uint64(v.Out))
		e.w.i32(int32(v.To))
		e.w.varint(v.Producers)
		e.w.varint(v.ChunkRows)
		e.w.varint(v.BatchRows)
	case *olap.SharedScanSpec:
		e.w.u8(pSharedScanSpec)
		e.w.u64(uint64(v.Query))
		e.w.i32(int32(v.Table))
		e.w.varint(v.Part)
		e.encodePreds(v.Filters)
		e.encodeStrs(v.Cols)
		e.encodeStrs(v.GroupBy)
		e.encodeAggs(v.Aggs)
		e.w.u64(uint64(v.Out))
		e.w.i32(int32(v.To))
		e.w.varint(v.Producers)
		e.w.varint(v.BatchRows)
	case *olap.JoinSpec:
		e.w.u8(pJoinSpec)
		e.w.u64(uint64(v.Query))
		e.w.u64(uint64(v.Build))
		e.encodeStrs(v.BuildKey)
		e.w.u64(uint64(v.Probe))
		e.encodeStrs(v.ProbeKey)
		e.w.bool(v.Semi)
		e.w.u64(uint64(v.Out))
		e.w.i32(int32(v.To))
		e.w.varint(v.Producers)
		e.w.i32(int32(v.Notify))
		e.w.str(v.Label)
	case *olap.AggSpec:
		e.w.u8(pAggSpec)
		e.w.u64(uint64(v.Query))
		e.w.u64(uint64(v.In))
		e.w.i32(int32(v.Notify))
	case *olap.CollectSpec:
		e.w.u8(pCollectSpec)
		e.w.u64(uint64(v.Query))
		e.w.u64(uint64(v.In))
		e.encodeStrs(v.Cols)
		e.w.i32(int32(v.Notify))
	case *olap.SinkSpec:
		e.w.u8(pSinkSpec)
		e.w.u64(uint64(v.Query))
		e.w.u64(uint64(v.In))
		e.encodeStrs(v.GroupBy)
		e.encodeAggs(v.Aggs)
		e.w.bool(v.MergePartials)
		e.encodeStrs(v.Cols)
		e.encodeStrs(v.OutCols)
		e.w.varint(len(v.OutKinds))
		for _, k := range v.OutKinds {
			e.w.u8(uint8(k))
		}
		e.w.varint(len(v.OutSrc))
		for _, s := range v.OutSrc {
			e.w.varint(s)
		}
		e.w.varint(len(v.OrderBy))
		for _, o := range v.OrderBy {
			e.w.varint(o.Col)
			e.w.bool(o.Desc)
		}
		e.w.i64(int64(v.Limit))
		e.w.i32(int32(v.Notify))
	default:
		return fmt.Errorf("transport: payload %T cannot cross the wire", p)
	}
	return nil
}

func (e *encoder) encodeSegment(s *oltp.Segment) error {
	e.w.i32(int32(s.Coord))
	e.w.varint(s.Total)
	home := 0
	if len(s.Ops) > 0 {
		home = s.Ops[0].Warehouse()
	}
	e.curAck = AckInfo{Coord: s.Coord, ID: e.curTxn, Total: s.Total, Home: home}
	e.ackValid = true
	err := e.encodeClient(s.Client)
	e.ackValid = false
	if err != nil {
		return err
	}
	e.w.varint(len(s.Ops))
	for _, op := range s.Ops {
		switch o := op.(type) {
		case *oltp.UpdateWarehouseYTD:
			e.w.u8(opUpdateWarehouseYTD)
			e.w.varint(o.W)
			e.w.f64(o.Amount)
		case *oltp.UpdateDistrictYTD:
			e.w.u8(opUpdateDistrictYTD)
			e.w.varint(o.W)
			e.w.varint(o.D)
			e.w.f64(o.Amount)
		case *oltp.PayCustomer:
			e.w.u8(opPayCustomer)
			e.w.varint(o.W)
			e.w.varint(o.D)
			e.w.varint(o.C)
			e.w.bool(o.ByLast)
			e.w.varint(o.Last)
			e.w.f64(o.Amount)
		case *oltp.InsertHistory:
			e.w.u8(opInsertHistory)
			e.w.varint(o.W)
			e.w.varint(o.D)
			e.w.varint(o.CW)
			e.w.varint(o.CD)
			e.w.i64(o.CRef)
			e.w.f64(o.Amount)
		case *oltp.InsertOrder:
			e.w.u8(opInsertOrder)
			e.w.varint(o.W)
			e.w.varint(o.D)
			e.w.varint(o.C)
			e.w.i64(o.Year)
			e.encodeLines(o.Lines)
		case *oltp.UpdateStock:
			e.w.u8(opUpdateStock)
			e.w.varint(o.SupplyW)
			e.encodeLines(o.Lines)
		default:
			return fmt.Errorf("transport: op %T cannot cross the wire", op)
		}
	}
	return nil
}

func (e *encoder) encodeLines(lines []tpcc.NewOrderLine) {
	e.w.varint(len(lines))
	for _, l := range lines {
		e.w.varint(l.Item)
		e.w.varint(l.Qty)
		e.w.varint(l.SupplyW)
	}
}

func (d *decoder) decodeLines(r *rbuf) []tpcc.NewOrderLine {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]tpcc.NewOrderLine, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, tpcc.NewOrderLine{Item: r.varint(), Qty: r.varint(), SupplyW: r.varint()})
	}
	return out
}

func (e *encoder) encodeStrs(ss []string) {
	e.w.varint(len(ss))
	for _, s := range ss {
		e.w.str(s)
	}
}

func (d *decoder) decodeStrs(r *rbuf) []string {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str())
	}
	return out
}

func (e *encoder) encodePreds(ps []olap.Predicate) {
	e.w.varint(len(ps))
	for _, p := range ps {
		e.w.str(p.Col)
		e.w.u8(uint8(p.Kind))
		e.w.str(p.Prefix)
		e.w.str(p.Str)
		e.w.i64(p.MinI)
	}
}

func (d *decoder) decodePreds(r *rbuf) []olap.Predicate {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]olap.Predicate, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, olap.Predicate{
			Col: r.str(), Kind: olap.PredKind(r.u8()),
			Prefix: r.str(), Str: r.str(), MinI: r.i64(),
		})
	}
	return out
}

func (e *encoder) encodeAggs(as []olap.AggExpr) {
	e.w.varint(len(as))
	for _, a := range as {
		e.w.u8(uint8(a.Fn))
		e.w.str(a.Col)
	}
}

func (d *decoder) decodeAggs(r *rbuf) []olap.AggExpr {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]olap.AggExpr, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, olap.AggExpr{Fn: olap.AggFn(r.u8()), Col: r.str()})
	}
	return out
}

func (e *encoder) encodeQueryResult(v *olap.QueryResult) {
	e.w.u64(uint64(v.Query))
	e.w.i64(v.Rows)
	e.encodeStrs(v.Cols)
	e.w.bool(v.Truncated)
	e.w.varint(len(v.Batches))
	for _, b := range v.Batches {
		e.encodeBatch(b)
	}
	e.w.varint(len(v.Collected))
	for _, row := range v.Collected {
		e.encodeRow(row)
	}
}

func (e *encoder) encodeRow(row storage.Row) {
	e.w.varint(len(row))
	for _, v := range row {
		e.encodeValue(v)
	}
}

func (e *encoder) encodeValue(v storage.Value) {
	e.w.u8(uint8(v.Kind))
	switch v.Kind {
	case storage.KInt:
		e.w.i64(v.I)
	case storage.KFloat:
		e.w.f64(v.F)
	default:
		e.w.str(v.S)
	}
}

func (d *decoder) decodeRow(r *rbuf) storage.Row {
	n := r.count()
	if n == 0 || r.err != nil {
		return nil
	}
	out := make(storage.Row, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, d.decodeValue(r))
	}
	return out
}

func (d *decoder) decodeValue(r *rbuf) storage.Value {
	switch storage.Kind(r.u8()) {
	case storage.KInt:
		return storage.Int(r.i64())
	case storage.KFloat:
		return storage.Float(r.f64())
	default:
		return storage.Str(r.str())
	}
}

// encodeData writes one data message: header plus, when present, its
// columnar batch (schema inline; the decode side caches resolution).
func (e *encoder) encodeData(m *core.DataMsg) {
	e.w.u64(uint64(m.Stream))
	e.w.u64(uint64(m.Query))
	e.w.bool(m.Last)
	e.w.bool(m.Prehashed)
	e.w.varint(m.Producers)
	if m.Batch == nil {
		e.w.bool(false)
		return
	}
	e.w.bool(true)
	e.encodeBatch(m.Batch)
}

func (e *encoder) encodeBatch(b *storage.Batch) {
	e.w.str(b.Schema.Name)
	e.w.varint(len(b.Schema.Cols))
	for _, c := range b.Schema.Cols {
		e.w.u8(uint8(c.Kind))
		e.w.str(c.Name)
	}
	n := b.Len()
	e.w.varint(n)
	for c := range b.Cols {
		cv := &b.Cols[c]
		switch cv.Kind {
		case storage.KInt:
			for i := 0; i < n; i++ {
				e.w.i64(cv.Ints[i])
			}
		case storage.KFloat:
			for i := 0; i < n; i++ {
				e.w.f64(cv.Floats[i])
			}
		default:
			for i := 0; i < n; i++ {
				e.w.str(cv.Strs[i])
			}
		}
	}
}

// decodeMsg reads one message, returning a pooled *core.Event or
// *core.DataMsg replica of the sender's local copy.
func (d *decoder) decodeMsg(r *rbuf) (any, error) {
	switch r.u8() {
	case mtEvent:
		return d.decodeEvent(r)
	case mtData:
		return d.decodeData(r)
	default:
		r.fail()
		return nil, r.err
	}
}

func (d *decoder) decodeEvent(r *rbuf) (*core.Event, error) {
	ev := core.GetEvent()
	ev.Kind = core.EventKind(r.u8())
	ev.Txn = core.TxnID(r.u64())
	ev.Query = core.QueryID(r.u64())
	ev.Seq = r.u64()
	ev.NeedClosed = r.bool()
	if n := r.count(); n > 0 && r.err == nil {
		ev.Need = make([]core.StreamID, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ev.Need = append(ev.Need, core.StreamID(r.u64()))
		}
	}
	ev.Size = r.i64()
	ev.Client = d.decodeClient(r)
	ev.Payload = d.decodePayload(r)
	if r.err != nil {
		d.freeBadEvent(ev)
		return nil, r.err
	}
	return ev, nil
}

// freeBadEvent releases the partially decoded event of a malformed
// frame, including any pooled payload already materialized.
func (d *decoder) freeBadEvent(ev *core.Event) {
	switch p := ev.Payload.(type) {
	case *oltp.Segment:
		oltp.FreeSegment(p)
	case *oltp.Ack:
		oltp.FreeAck(p)
	case *oltp.DoneInfo:
		oltp.FreeDoneInfo(p)
	case *olap.QueryResult:
		for _, b := range p.Batches {
			storage.FreeBatch(b)
		}
	}
	core.FreeEvent(ev)
}

func (d *decoder) decodePayload(r *rbuf) any {
	switch r.u8() {
	case pNil:
		return nil
	case pSegment:
		// Guard the typed-nil: a malformed segment must yield an untyped
		// nil payload or freeBadEvent would free a nil *Segment.
		if s := d.decodeSegment(r); s != nil {
			return s
		}
		return nil
	case pAck:
		a := oltp.GetAck()
		a.Total = r.varint()
		a.Home = r.varint()
		a.Client = d.decodeClient(r)
		if r.err != nil {
			oltp.FreeAck(a)
			return nil
		}
		return a
	case pDoneInfo:
		di := oltp.GetDoneInfo()
		di.Committed = r.bool()
		di.Home = r.varint()
		di.Client = d.decodeClient(r)
		if r.err != nil {
			oltp.FreeDoneInfo(di)
			return nil
		}
		return di
	case pOpDone:
		return &olap.OpDone{Query: core.QueryID(r.u64()), Label: r.str()}
	case pQueryResult:
		if q := d.decodeQueryResult(r); q != nil {
			return q
		}
		return nil
	case pScanSpec:
		return &olap.ScanSpec{
			Query: core.QueryID(r.u64()), Table: storage.TableID(r.i32()), Part: r.varint(),
			Filters: d.decodePreds(r), Cols: d.decodeStrs(r),
			Out: core.StreamID(r.u64()), To: core.ACID(r.i32()),
			Producers: r.varint(), ChunkRows: r.varint(), BatchRows: r.varint(),
		}
	case pSharedScanSpec:
		return &olap.SharedScanSpec{
			Query: core.QueryID(r.u64()), Table: storage.TableID(r.i32()), Part: r.varint(),
			Filters: d.decodePreds(r), Cols: d.decodeStrs(r),
			GroupBy: d.decodeStrs(r), Aggs: d.decodeAggs(r),
			Out: core.StreamID(r.u64()), To: core.ACID(r.i32()),
			Producers: r.varint(), BatchRows: r.varint(),
		}
	case pJoinSpec:
		return &olap.JoinSpec{
			Query: core.QueryID(r.u64()),
			Build: core.StreamID(r.u64()), BuildKey: d.decodeStrs(r),
			Probe: core.StreamID(r.u64()), ProbeKey: d.decodeStrs(r),
			Semi: r.bool(),
			Out:  core.StreamID(r.u64()), To: core.ACID(r.i32()),
			Producers: r.varint(), Notify: core.ACID(r.i32()), Label: r.str(),
		}
	case pAggSpec:
		return &olap.AggSpec{
			Query: core.QueryID(r.u64()), In: core.StreamID(r.u64()),
			Notify: core.ACID(r.i32()),
		}
	case pCollectSpec:
		return &olap.CollectSpec{
			Query: core.QueryID(r.u64()), In: core.StreamID(r.u64()),
			Cols: d.decodeStrs(r), Notify: core.ACID(r.i32()),
		}
	case pSinkSpec:
		s := &olap.SinkSpec{
			Query: core.QueryID(r.u64()), In: core.StreamID(r.u64()),
			GroupBy: d.decodeStrs(r), Aggs: d.decodeAggs(r),
			MergePartials: r.bool(), Cols: d.decodeStrs(r),
			OutCols: d.decodeStrs(r),
		}
		if n := r.count(); n > 0 && r.err == nil {
			s.OutKinds = make([]storage.Kind, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				s.OutKinds = append(s.OutKinds, storage.Kind(r.u8()))
			}
		}
		if n := r.count(); n > 0 && r.err == nil {
			s.OutSrc = make([]int, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				s.OutSrc = append(s.OutSrc, r.varint())
			}
		}
		if n := r.count(); n > 0 && r.err == nil {
			s.OrderBy = make([]olap.OrderKey, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				s.OrderBy = append(s.OrderBy, olap.OrderKey{Col: r.varint(), Desc: r.bool()})
			}
		}
		s.Limit = int(r.i64())
		s.Notify = core.ACID(r.i32())
		return s
	default:
		r.fail()
		return nil
	}
}

func (d *decoder) decodeSegment(r *rbuf) *oltp.Segment {
	s := oltp.GetSegment()
	s.Coord = core.ACID(r.i32())
	s.Total = r.varint()
	s.Client = d.decodeClient(r)
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		var op oltp.Op
		switch r.u8() {
		case opUpdateWarehouseYTD:
			op = &oltp.UpdateWarehouseYTD{W: r.varint(), Amount: r.f64()}
		case opUpdateDistrictYTD:
			op = &oltp.UpdateDistrictYTD{W: r.varint(), D: r.varint(), Amount: r.f64()}
		case opPayCustomer:
			op = &oltp.PayCustomer{
				W: r.varint(), D: r.varint(), C: r.varint(),
				ByLast: r.bool(), Last: r.varint(), Amount: r.f64(),
			}
		case opInsertHistory:
			op = &oltp.InsertHistory{
				W: r.varint(), D: r.varint(), CW: r.varint(), CD: r.varint(),
				CRef: r.i64(), Amount: r.f64(),
			}
		case opInsertOrder:
			op = &oltp.InsertOrder{
				W: r.varint(), D: r.varint(), C: r.varint(),
				Year: r.i64(), Lines: d.decodeLines(r),
			}
		case opUpdateStock:
			op = &oltp.UpdateStock{SupplyW: r.varint(), Lines: d.decodeLines(r)}
		default:
			r.fail()
		}
		if r.err == nil {
			s.Ops = append(s.Ops, op)
		}
	}
	if r.err != nil {
		oltp.FreeSegment(s)
		return nil
	}
	return s
}

func (d *decoder) decodeQueryResult(r *rbuf) *olap.QueryResult {
	q := &olap.QueryResult{
		Query: core.QueryID(r.u64()), Rows: r.i64(),
		Cols: d.decodeStrs(r), Truncated: r.bool(),
	}
	nb := r.count()
	for i := 0; i < nb && r.err == nil; i++ {
		if b := d.decodeBatch(r); b != nil {
			q.Batches = append(q.Batches, b)
		}
	}
	nr := r.count()
	for i := 0; i < nr && r.err == nil; i++ {
		q.Collected = append(q.Collected, d.decodeRow(r))
	}
	if r.err != nil {
		for _, b := range q.Batches {
			storage.FreeBatch(b)
		}
		return nil
	}
	return q
}

func (d *decoder) decodeData(r *rbuf) (*core.DataMsg, error) {
	m := core.GetDataMsg()
	m.Stream = core.StreamID(r.u64())
	m.Query = core.QueryID(r.u64())
	m.Last = r.bool()
	m.Prehashed = r.bool()
	m.Producers = r.varint()
	if r.bool() {
		m.Batch = d.decodeBatch(r)
	}
	if r.err != nil {
		if m.Batch != nil {
			storage.FreeBatch(m.Batch)
		}
		core.FreeDataMsg(m)
		return nil, r.err
	}
	return m, nil
}

// decodeBatch reads one batch into a pooled replica, resolving the
// inline schema against the per-connection cache (keyed by its raw wire
// bytes, so a name collision with a different shape never aliases).
func (d *decoder) decodeBatch(r *rbuf) *storage.Batch {
	schemaStart := r.off
	name := r.str()
	ncols := r.count()
	if r.err != nil || ncols > 4096 {
		r.fail()
		return nil
	}
	cols := make([]storage.Column, 0, ncols)
	for i := 0; i < ncols && r.err == nil; i++ {
		k := storage.Kind(r.u8())
		if k != storage.KInt && k != storage.KFloat && k != storage.KStr {
			r.fail()
			break
		}
		cols = append(cols, storage.Column{Kind: k, Name: r.str()})
	}
	if r.err != nil {
		return nil
	}
	key := string(r.b[schemaStart:r.off])
	schema := d.schemas[key]
	if schema == nil {
		// Cache-miss only: NewSchema panics on duplicate column names, so
		// a corrupt frame must be rejected before constructing one.
		for i := range cols {
			for j := i + 1; j < len(cols); j++ {
				if cols[i].Name == cols[j].Name {
					r.fail()
					return nil
				}
			}
		}
		schema = storage.NewSchema(name, cols...)
		d.schemas[key] = schema
	}
	n := r.count()
	if r.err != nil {
		return nil
	}
	b := storage.GetBatch(schema)
	if cap(d.rowBuf) < ncols {
		d.rowBuf = make(storage.Row, ncols)
	}
	row := d.rowBuf[:ncols]
	// Column-major on the wire, row-major append: read each column into
	// the scratch row per row index. To keep decode single-pass, read
	// columns into the batch's vectors via AppendRow row by row instead:
	// materialize column vectors first.
	vecs := make([][]storage.Value, ncols)
	for c := 0; c < ncols; c++ {
		vec := make([]storage.Value, 0, n)
		switch cols[c].Kind {
		case storage.KInt:
			for i := 0; i < n && r.err == nil; i++ {
				vec = append(vec, storage.Int(r.i64()))
			}
		case storage.KFloat:
			for i := 0; i < n && r.err == nil; i++ {
				vec = append(vec, storage.Float(r.f64()))
			}
		default:
			for i := 0; i < n && r.err == nil; i++ {
				vec = append(vec, storage.Str(r.str()))
			}
		}
		vecs[c] = vec
	}
	if r.err != nil {
		storage.FreeBatch(b)
		return nil
	}
	for i := 0; i < n; i++ {
		for c := 0; c < ncols; c++ {
			row[c] = vecs[c][i]
		}
		b.AppendRow(row)
	}
	return b
}

// FreeLocal releases a message that will never be written — the peer
// died and WriteMessages diverted it to Peer.OnDead. Ownership passed
// to the callback; once it has extracted what it needs it must balance
// the pools exactly as an outbox flush would.
func FreeLocal(m any) { freeLocal(m) }

// freeLocal releases the encode-side copy of a message once its frame
// is written: the wire replica is now the live one, and freeing here is
// what keeps the sending process's pools balanced (an outbox flush has
// the same ownership semantics as local consumption).
func freeLocal(m any) {
	switch v := m.(type) {
	case *core.Event:
		switch p := v.Payload.(type) {
		case *oltp.Segment:
			oltp.FreeSegment(p)
		case *oltp.Ack:
			oltp.FreeAck(p)
		case *oltp.DoneInfo:
			oltp.FreeDoneInfo(p)
		case *olap.QueryResult:
			for _, b := range p.Batches {
				storage.FreeBatch(b)
			}
		}
		core.FreeEvent(v)
	case *core.DataMsg:
		if v.Batch != nil {
			storage.FreeBatch(v.Batch)
		}
		core.FreeDataMsg(v)
	}
}

package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/storage"
	"anydb/internal/stream"
)

// Frame kinds. A frame is `u32 length | u8 kind | body`; length covers
// kind+body.
const (
	fkMessages uint8 = 1 // i32 dst | u16 count | count × (u8 msgType | body)
	fkControl  uint8 = 2 // self-describing gob blob
)

// maxFrame bounds a frame read so a corrupt length prefix cannot ask
// for an absurd allocation.
const maxFrame = 1 << 28

// drainChunk matches the engine's consumer-side amortization width: one
// RecvBatch, one frame, one syscall for up to this many messages.
const drainChunk = 256

// ErrBye is returned by a Serve control handler to end the read loop
// cleanly (orderly shutdown rather than a failure).
var ErrBye = errors.New("transport: bye")

// ErrPeerDead reports a write toward a peer already marked dead.
var ErrPeerDead = errors.New("transport: peer is dead")

// Peer is one end of a node-to-node connection: a frame writer shared
// by all of this node's drainers (serialized by wmu), and a single-
// goroutine read loop (Serve). Encode and decode state are per-peer, so
// steady-state flushes reuse one buffer and batch schemas resolve from
// a warm cache.
type Peer struct {
	// cmu guards the connection pointer so a rejoin can swap in a fresh
	// conn (SetConn) while drainers and the read loop capture it.
	cmu  sync.Mutex
	conn net.Conn

	wmu sync.Mutex
	enc encoder
	// dead, guarded by wmu so it serializes with encodes, marks the far
	// end as failed: no further bytes (and crucially no further client
	// tokens) leave toward it. Outbound messages divert to OnDead.
	dead bool

	// OnDead, when set, consumes each message that would have been
	// written to a dead peer (ownership transfers: the callback must
	// free what it takes, typically after synthesizing failure acks).
	// nil drops-and-frees. Install before MarkDead can run.
	OnDead func(m any)

	// readTimeout, when positive, bounds the silence readFrame tolerates
	// — the heartbeat watchdog (peers Ping within this window).
	readTimeout time.Duration

	// Read-loop state (single goroutine, no locking).
	dec  *decoder
	body []byte

	wg sync.WaitGroup
}

// NewPeer wraps an established connection. tok is this node's token
// table (nil on nodes that never issue client tokens).
func NewPeer(conn net.Conn, tok *TokenTable) *Peer {
	if tc, ok := conn.(*net.TCPConn); ok {
		// The event plane is latency-bound: frames are already batched
		// (one per outbox drain), so Nagle only adds delay.
		tc.SetNoDelay(true)
	}
	return &Peer{conn: conn, enc: encoder{tok: tok}, dec: newDecoder(tok)}
}

// Close tears down the connection; a blocked Serve returns.
func (p *Peer) Close() error { return p.current().Close() }

// current returns the live connection (rejoin may have swapped it).
func (p *Peer) current() net.Conn {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	return p.conn
}

// SetOwner attributes future client tokens issued on this connection to
// a server index, so a dead-owner sweep can find them. Call before any
// message traffic.
func (p *Peer) SetOwner(server int) {
	p.wmu.Lock()
	p.enc.owner = server
	p.wmu.Unlock()
}

// SetReadTimeout arms the silence watchdog: if no frame (heartbeats
// included) arrives within d, the read loop fails. Zero disables.
func (p *Peer) SetReadTimeout(d time.Duration) { p.readTimeout = d }

// MarkDead declares the far end failed: the connection closes, and no
// further messages — or client tokens — leave toward it. Taking wmu
// serializes the flip with in-flight encodes, so once MarkDead returns,
// the token table's view of this owner is final (FailOwner may sweep).
func (p *Peer) MarkDead() {
	p.wmu.Lock()
	if !p.dead {
		p.dead = true
		p.current().Close()
	}
	p.wmu.Unlock()
}

// Dead reports whether MarkDead ran.
func (p *Peer) Dead() bool {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	return p.dead
}

// SetConn installs a fresh connection after a rejoin handshake and
// clears the dead mark. The caller must have completed the handshake on
// conn and guaranteed no Serve loop is still reading the old one.
func (p *Peer) SetConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	p.wmu.Lock()
	p.cmu.Lock()
	p.conn = conn
	p.cmu.Unlock()
	p.dead = false
	p.wmu.Unlock()
}

// Abort severs the connection without marking the peer dead — the
// fault-injection hook for reconnect tests (simulates a network drop
// rather than a process death).
func (p *Peer) Abort() { p.current().Close() }

// drop consumes messages bound for a dead peer: the OnDead callback
// takes ownership (synthesizing failure acks), or they are freed.
func (p *Peer) drop(msgs []any) {
	for _, m := range msgs {
		if p.OnDead != nil {
			p.OnDead(m)
		} else {
			freeLocal(m)
		}
	}
}

// frameStart resets the write buffer with a length placeholder. wmu
// must be held through frameWrite.
func (p *Peer) frameStart(kind uint8) {
	p.enc.w.reset()
	p.enc.w.u32(0)
	p.enc.w.u8(kind)
}

func (p *Peer) frameWrite() error {
	b := p.enc.w.b
	binary.LittleEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := p.current().Write(b)
	return err
}

// WriteMessages encodes one batch of events/data messages destined for
// dst into a single frame and writes it. Ownership of the local copies
// transfers here: after a successful encode they are freed (pools stay
// balanced on the sending process) whether or not the connection
// survived the write — the wire replica, delivered or lost, is the only
// live one. An encode error (a payload that cannot legally cross the
// wire) aborts the frame before any bytes are written.
func (p *Peer) WriteMessages(dst core.ACID, msgs []any) error {
	if len(msgs) > 0xffff {
		return fmt.Errorf("transport: frame of %d messages exceeds the count field", len(msgs))
	}
	p.wmu.Lock()
	if p.dead {
		p.wmu.Unlock()
		p.drop(msgs)
		return ErrPeerDead
	}
	p.frameStart(fkMessages)
	p.enc.w.i32(int32(dst))
	p.enc.w.u16(uint16(len(msgs)))
	var encErr error
	for _, m := range msgs {
		if encErr = p.enc.encodeMsg(m); encErr != nil {
			break
		}
	}
	var err error
	if encErr != nil {
		err = encErr
	} else {
		err = p.frameWrite()
	}
	p.wmu.Unlock()
	if encErr == nil {
		for _, m := range msgs {
			freeLocal(m)
		}
	}
	return err
}

// ForwardClient relays a completion event that surfaced at this node's
// client callback to the peer (dst = core.ClientAC). Unlike
// WriteMessages, the event envelope is NOT freed — the engine recycles
// it when the callback returns — but payload internals are, since the
// wire replica supersedes them.
func (p *Peer) ForwardClient(ev *core.Event) error {
	p.wmu.Lock()
	if p.dead {
		p.wmu.Unlock()
		// The far-end client is gone with its process; release the
		// payload (the envelope stays with the engine, per contract).
		switch pd := ev.Payload.(type) {
		case *oltp.DoneInfo:
			oltp.FreeDoneInfo(pd)
		case *oltp.Ack:
			oltp.FreeAck(pd)
		case *olap.QueryResult:
			for _, b := range pd.Batches {
				storage.FreeBatch(b)
			}
		}
		ev.Payload = nil
		return ErrPeerDead
	}
	p.frameStart(fkMessages)
	p.enc.w.i32(int32(core.ClientAC))
	p.enc.w.u16(1)
	p.enc.w.u8(mtEvent)
	encErr := p.enc.encodeEvent(ev)
	var err error
	if encErr != nil {
		err = encErr
	} else {
		err = p.frameWrite()
	}
	p.wmu.Unlock()
	if encErr == nil {
		switch pd := ev.Payload.(type) {
		case *oltp.DoneInfo:
			oltp.FreeDoneInfo(pd)
		case *oltp.Ack:
			oltp.FreeAck(pd)
		case *olap.QueryResult:
			for _, b := range pd.Batches {
				storage.FreeBatch(b)
			}
		}
		ev.Payload = nil
	}
	return err
}

// WriteControl sends one control message as its own frame.
func (p *Peer) WriteControl(v any) error {
	body, err := encodeControl(v)
	if err != nil {
		return err
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead {
		return ErrPeerDead
	}
	p.frameStart(fkControl)
	p.enc.w.b = append(p.enc.w.b, body...)
	return p.frameWrite()
}

// readFrame blocks for the next frame, reusing the body buffer. With a
// read timeout armed, the whole frame must arrive within the window —
// heartbeat Pings keep a healthy but idle link inside it.
func (p *Peer) readFrame() (uint8, []byte, error) {
	conn := p.current()
	if p.readTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(p.readTimeout))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, errMalformed
	}
	if cap(p.body) < int(n) {
		p.body = make([]byte, n)
	}
	body := p.body[:n]
	if _, err := io.ReadFull(conn, body); err != nil {
		return 0, nil, err
	}
	return body[0], body[1:], nil
}

// ReadControl blocks for one control frame — the handshake primitive,
// used before Serve starts (message frames are a protocol error here).
func (p *Peer) ReadControl() (any, error) {
	kind, body, err := p.readFrame()
	if err != nil {
		return nil, err
	}
	if kind != fkControl {
		return nil, fmt.Errorf("transport: expected control frame during handshake, got kind %d", kind)
	}
	return decodeControl(body)
}

// Serve runs the read loop until the connection drops (clean: nil) or a
// handler/decode error occurs. onMsg receives each decoded pooled
// message with its destination AC (core.ClientAC means the client
// callback); onCtrl receives control messages and may return ErrBye to
// end the loop cleanly.
func (p *Peer) Serve(onMsg func(dst core.ACID, m any), onCtrl func(v any) error) error {
	for {
		kind, body, err := p.readFrame()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch kind {
		case fkMessages:
			r := rbuf{b: body}
			dst := core.ACID(r.i32())
			n := int(r.u16())
			for i := 0; i < n; i++ {
				m, err := p.dec.decodeMsg(&r)
				if err != nil {
					return err
				}
				onMsg(dst, m)
			}
			if !r.done() {
				return errMalformed
			}
		case fkControl:
			v, err := decodeControl(body)
			if err != nil {
				return err
			}
			if err := onCtrl(v); err != nil {
				if errors.Is(err, ErrBye) {
					return nil
				}
				return err
			}
		default:
			return errMalformed
		}
	}
}

// StartDrainer spawns the router goroutine for one remote AC: it drains
// the engine-registered outbox mailbox in batches and writes each batch
// as one frame. The loop exits when the mailbox closes (Engine.Stop).
// Write errors do not stop the drain — the mailbox must keep emptying
// so local senders and shutdown never block on a dead connection; the
// messages were freed by WriteMessages either way.
func (p *Peer) StartDrainer(dst core.ACID, box *stream.Mailbox[any]) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		buf := make([]any, drainChunk)
		for {
			n, ok := box.RecvBatch(buf)
			if !ok {
				return
			}
			_ = p.WriteMessages(dst, buf[:n])
			clear(buf[:n])
		}
	}()
}

// WaitDrainers blocks until every StartDrainer goroutine exited (their
// mailboxes were closed by Engine.Stop).
func (p *Peer) WaitDrainers() { p.wg.Wait() }

// Barrier acquires and releases the frame-writer lock. Control handlers
// running on the Serve goroutine call it before reading state written
// by local ACs (e.g. snapshotting a partition inside a quiet window):
// an AC's writes happen-before its outgoing messages' flush (mailbox →
// drainer → wmu), so taking wmu here extends that happens-before chain
// to the handler — the protocol guarantees the flush already happened
// (the head only asks after observing the drain).
func (p *Peer) Barrier() {
	p.wmu.Lock()
	defer p.wmu.Unlock()
}

package transport

import (
	"bytes"
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// sampleBatch builds a three-kind batch exercising every column codec.
func sampleBatch() *storage.Batch {
	schema := storage.NewSchema("sample",
		storage.Column{Kind: storage.KInt, Name: "id"},
		storage.Column{Kind: storage.KStr, Name: "name"},
		storage.Column{Kind: storage.KFloat, Name: "amount"},
	)
	b := storage.NewBatch(schema)
	b.AppendValues(storage.Int(1), storage.Str("alpha"), storage.Float(1.5))
	b.AppendValues(storage.Int(-7), storage.Str(""), storage.Float(-0.25))
	b.AppendValues(storage.Int(1<<40), storage.Str("βeta"), storage.Float(0))
	return b
}

// sampleSegment covers every op kind the segment codec knows.
func sampleSegment() *oltp.Segment {
	lines := []tpcc.NewOrderLine{{Item: 3, Qty: 2, SupplyW: 1}, {Item: 9, Qty: 1, SupplyW: 0}}
	return &oltp.Segment{
		Coord: 5, Total: 3, Client: Token(42),
		Ops: []oltp.Op{
			&oltp.UpdateWarehouseYTD{W: 1, Amount: 12.5},
			&oltp.UpdateDistrictYTD{W: 1, D: 2, Amount: 12.5},
			&oltp.PayCustomer{W: 1, D: 2, C: 3, ByLast: true, Last: 17, Amount: 12.5},
			&oltp.InsertHistory{W: 1, D: 2, CW: 0, CD: 1, CRef: 99, Amount: 12.5},
			&oltp.InsertOrder{W: 1, D: 2, C: 3, Year: 2021, Lines: lines},
			&oltp.UpdateStock{SupplyW: 1, Lines: lines},
		},
	}
}

// sampleEvents yields one event per encodable payload type.
func sampleEvents() []*core.Event {
	mk := func(kind core.EventKind, payload any) *core.Event {
		return &core.Event{Kind: kind, Txn: 7, Query: 9, Seq: 11, Size: 128, Payload: payload}
	}
	return []*core.Event{
		mk(core.EvSegment, sampleSegment()),
		mk(core.EvAck, &oltp.Ack{Total: 3, Home: 1, Client: Token(8)}),
		mk(core.EvTxnDone, &oltp.DoneInfo{Committed: true, Home: 2, Client: Token(8)}),
		mk(core.EvOpDone, &olap.OpDone{Query: 4, Label: "scan:orders"}),
		mk(core.EvOpDone, &olap.QueryResult{
			Query: 4, Rows: 3, Cols: []string{"id", "name", "amount"}, Truncated: true,
			Batches:   []*storage.Batch{sampleBatch()},
			Collected: []storage.Row{{storage.Int(1), storage.Str("x"), storage.Float(2)}},
		}),
		mk(core.EvInstallOp, &olap.ScanSpec{
			Query: 4, Table: tpcc.TOrdersID, Part: 2,
			Filters: []olap.Predicate{{Col: "year", Kind: olap.PredEqInt, MinI: 2021}},
			Cols:    []string{"id"}, Out: 31, To: 6, Producers: 4, ChunkRows: 256, BatchRows: 512,
		}),
		mk(core.EvInstallOp, &olap.SharedScanSpec{
			Query: 4, Table: tpcc.TOrdersID, Part: 2,
			Cols: []string{"id"}, GroupBy: []string{"d"},
			Aggs: []olap.AggExpr{{Fn: olap.AggCount}},
			Out:  31, To: 6, Producers: 4, BatchRows: 512,
		}),
		mk(core.EvInstallOp, &olap.JoinSpec{
			Query: 4, Build: 31, BuildKey: []string{"id"}, Probe: 32, ProbeKey: []string{"oid"},
			Semi: true, Out: 33, To: 6, Producers: 2, Notify: 1, Label: "q3",
		}),
		mk(core.EvInstallOp, &olap.AggSpec{Query: 4, In: 33, Notify: 1}),
		mk(core.EvInstallOp, &olap.CollectSpec{Query: 4, In: 33, Cols: []string{"id"}, Notify: 1}),
		mk(core.EvInstallOp, &olap.SinkSpec{
			Query: 4, In: 33, GroupBy: []string{"d"},
			Aggs:          []olap.AggExpr{{Fn: olap.AggSum, Col: "amount"}},
			MergePartials: true, Cols: []string{"d", "amount"}, OutCols: []string{"d", "total"},
			OutKinds: []storage.Kind{storage.KStr, storage.KFloat}, OutSrc: []int{0, 1},
			OrderBy: []olap.OrderKey{{Col: 1, Desc: true}}, Limit: 10, Notify: 1,
		}),
	}
}

func sampleDataMsgs() []*core.DataMsg {
	return []*core.DataMsg{
		{Stream: 31, Query: 4, Producers: 2, Batch: sampleBatch()},
		{Stream: 31, Query: 4, Last: true, Prehashed: true, Producers: 2},
	}
}

func encodeOne(t testing.TB, tok *TokenTable, m any) []byte {
	t.Helper()
	e := encoder{tok: tok}
	if err := e.encodeMsg(m); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	return append([]byte(nil), e.w.b...)
}

// roundTrip decodes wire bytes, re-encodes the replica, and requires the
// canonical encoding to be a byte-identical fixed point. Byte equality of
// the canonical form is exactly decode(encode(x)) == x for every field
// the codec carries, without tripping over pooled envelopes or schema
// pointer identity.
func roundTrip(t *testing.T, wire []byte) {
	t.Helper()
	d := newDecoder(nil)
	r := rbuf{b: wire}
	m, err := d.decodeMsg(&r)
	if err != nil {
		return // malformed input rejected cleanly — nothing to round-trip
	}
	var e encoder
	if err := e.encodeMsg(m); err != nil {
		t.Fatalf("decoded message failed to re-encode: %v", err)
	}
	canon := append([]byte(nil), e.w.b...)
	freeLocal(m)

	r2 := rbuf{b: canon}
	m2, err := d.decodeMsg(&r2)
	if err != nil {
		t.Fatalf("canonical encoding failed to decode: %v", err)
	}
	if !r2.done() {
		t.Fatalf("canonical decode left %d trailing bytes", len(canon)-r2.off)
	}
	var e2 encoder
	if err := e2.encodeMsg(m2); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	freeLocal(m2)
	if !bytes.Equal(canon, e2.w.b) {
		t.Fatalf("encoding is not a fixed point:\n first %x\nsecond %x", canon, e2.w.b)
	}
}

// TestCodecRoundTrip pins decode(encode(x)) == x for one message of
// every encodable payload shape, and that no pooled object leaks on the
// way (the decode side materializes pooled replicas, freeLocal must
// retire them all).
func TestCodecRoundTrip(t *testing.T) {
	core.TrackPools(true)
	defer core.TrackPools(false)
	for _, ev := range sampleEvents() {
		roundTrip(t, encodeOne(t, nil, ev))
	}
	for _, m := range sampleDataMsgs() {
		roundTrip(t, encodeOne(t, nil, m))
	}
	if e, d, b := core.PoolBalances(); e != 0 || d != 0 || b != 0 {
		t.Fatalf("codec round trips leaked pooled objects: %s", core.PoolBalanceString())
	}
}

// TestClientTokenRoundTrip pins the token table contract: the issuing
// side replaces an opaque client handle with a table key on encode, and
// resolves the SAME handle back when the key returns — with the entry
// retired so each token resolves exactly once.
func TestClientTokenRoundTrip(t *testing.T) {
	tok := NewTokenTable()
	type future struct{ ch chan struct{} }
	orig := &future{ch: make(chan struct{})}
	ev := &core.Event{Kind: core.EvTxnDone, Payload: &oltp.DoneInfo{Committed: true, Client: orig}}

	wire := encodeOne(t, tok, ev)
	if tok.Len() != 1 {
		t.Fatalf("token table holds %d entries after encode, want 1", tok.Len())
	}
	d := newDecoder(tok)
	r := rbuf{b: wire}
	m, err := d.decodeMsg(&r)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(*core.Event).Payload.(*oltp.DoneInfo).Client
	if got != orig {
		t.Fatalf("token resolved to %v, want the original handle", got)
	}
	if tok.Len() != 0 {
		t.Fatalf("token table holds %d entries after resolve, want 0", tok.Len())
	}

	// A non-issuing node (nil table) carries the key through opaquely.
	d2 := newDecoder(nil)
	r2 := rbuf{b: wire}
	m2, err := d2.decodeMsg(&r2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.(*core.Event).Payload.(*oltp.DoneInfo).Client.(Token); !ok {
		t.Fatal("non-issuing decode must surface an opaque Token")
	}
}

// FuzzEventCodec throws arbitrary bytes at the event decoder: malformed
// frames must be rejected without panicking or leaking pooled objects,
// and anything that decodes must re-encode to a byte-stable canonical
// form.
func FuzzEventCodec(f *testing.F) {
	for _, ev := range sampleEvents() {
		f.Add(encodeOne(f, nil, ev))
	}
	f.Add([]byte{})
	f.Add([]byte{mtEvent})
	f.Fuzz(func(t *testing.T, data []byte) {
		core.TrackPools(true)
		defer core.TrackPools(false)
		roundTrip(t, data)
		if e, d, b := core.PoolBalances(); e != 0 || d != 0 || b != 0 {
			t.Fatalf("decode leaked pooled objects: %s", core.PoolBalanceString())
		}
	})
}

// FuzzDataMsgCodec is FuzzEventCodec for the data plane: batch frames
// with inline schemas, including truncated and corrupt column vectors.
func FuzzDataMsgCodec(f *testing.F) {
	for _, m := range sampleDataMsgs() {
		f.Add(encodeOne(f, nil, m))
	}
	f.Add([]byte{mtData})
	f.Add([]byte{mtData, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		core.TrackPools(true)
		defer core.TrackPools(false)
		roundTrip(t, data)
		if e, d, b := core.PoolBalances(); e != 0 || d != 0 || b != 0 {
			t.Fatalf("decode leaked pooled objects: %s", core.PoolBalanceString())
		}
	})
}

// BenchmarkEventCodec measures the steady-state encode of a pipelined
// payment's segment event — the transport hot path — and gates it at
// zero allocations per op: the frame buffer is reused, so a regression
// here silently taxes every cross-process transaction.
func BenchmarkEventCodec(b *testing.B) {
	ev := &core.Event{Kind: core.EvSegment, Txn: 7, Payload: sampleSegment()}
	var e encoder
	if err := e.encodeMsg(ev); err != nil {
		b.Fatal(err)
	}
	frame := len(e.w.b)
	b.SetBytes(int64(frame))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.w.reset()
		if err := e.encodeMsg(ev); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if avg := testing.AllocsPerRun(200, func() {
		e.w.reset()
		_ = e.encodeMsg(ev)
	}); avg != 0 {
		b.Fatalf("steady-state encode allocates %.1f/op, want 0", avg)
	}
}

package oltp

import (
	"fmt"
	"testing"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

func testCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 4, Districts: 2, Customers: 40,
		Items: 60, InitOrders: 20, Seed: 11}.WithDefaults()
}

// cluster wires the paper's Figure 2 layout: server 1 hosts the four
// partition-owner/executor ACs, server 2 hosts dispatcher, sequencer and
// coordinator.
type cluster struct {
	cl         *core.SimCluster
	dispatcher *Dispatcher
	dispAC     core.ACID
	execs      []core.ACID
	committed  int
	aborted    int
	lastDone   sim.Time
}

func buildCluster(db *storage.Database, cfg tpcc.Config, policy Policy) *cluster {
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%len(s1)])
	}
	dispAC, seqAC, coordAC := s2[0], s2[1], s2[2]

	// Fine-grained record-class routing for the intra policies: the
	// classes of any warehouse spread over server 1's ACs.
	classRoute := func(w int, c Class) core.ACID {
		switch c {
		case ClassWarehouse, ClassDistrict:
			return s1[0]
		case ClassCustomer:
			return s1[1]
		case ClassHistory:
			return s1[2]
		case ClassOrder:
			return s1[0]
		default: // stock
			return s1[3]
		}
	}
	if policy == PreciseIntra {
		// Two balanced sub-sequences (Fig. 4d): brief updates vs the
		// long customer scan.
		classRoute = func(w int, c Class) core.ACID {
			if c == ClassCustomer || c == ClassStock {
				return s1[1]
			}
			return s1[0]
		}
	}
	routes := Routes{Owner: topo.Owner, Seq: seqAC, Coord: core.NoAC}
	if policy != SharedNothing {
		routes.ClassRoute = classRoute
	}
	if policy == StreamingCC {
		routes.Coord = coordAC
	}

	c := &cluster{execs: s1, dispAC: dispAC}
	c.dispatcher = NewDispatcher(policy, db, routes)
	c.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvSegment, &Executor{DB: db})
		switch ac.ID {
		case dispAC:
			ac.Register(core.EvTxn, c.dispatcher)
			ac.Register(core.EvAck, c.dispatcher)
		case seqAC:
			ac.Register(core.EvSeqStamp, &core.Sequencer{})
		case coordAC:
			ac.Register(core.EvAck, NewCoordinator())
		}
	})
	c.cl.SetClient(func(at sim.Time, ev *core.Event) {
		info := ev.Payload.(*DoneInfo)
		if info.Committed {
			c.committed++
		} else {
			c.aborted++
		}
		c.lastDone = at
	})
	return c
}

// run injects txns and drains the simulation.
func (c *cluster) run(txns []tpcc.Txn) {
	for i := range txns {
		c.cl.Inject(c.dispAC, &core.Event{
			Kind: core.EvTxn, Txn: core.TxnID(i + 1), Payload: &txns[i],
		}, 0)
	}
	c.cl.Run()
}

func genTxns(cfg tpcc.Config, mix tpcc.Mix, n int) []tpcc.Txn {
	g := tpcc.NewGenerator(cfg, mix, 123)
	out := make([]tpcc.Txn, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// snapshot aggregates the database state that must be identical across
// all policies for the same committed transaction set.
func snapshot(db *storage.Database, cfg tpcc.Config) string {
	var wYTD, dYTD, bal, hAmt float64
	var hRows, orders int
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		wt := p.Table(tpcc.TWarehouse)
		wt.Scan(func(_ int32, r storage.Row) bool {
			wYTD += r[wt.Schema.MustCol("w_ytd")].F
			return true
		})
		dt := p.Table(tpcc.TDistrict)
		dt.Scan(func(_ int32, r storage.Row) bool {
			dYTD += r[dt.Schema.MustCol("d_ytd")].F
			return true
		})
		ct := p.Table(tpcc.TCustomer)
		ct.Scan(func(_ int32, r storage.Row) bool {
			bal += r[ct.Schema.MustCol("c_balance")].F
			return true
		})
		ht := p.Table(tpcc.THistory)
		ht.Scan(func(_ int32, r storage.Row) bool {
			hAmt += r[ht.Schema.MustCol("h_amount")].F
			return true
		})
		hRows += ht.Rows()
		orders += p.Table(tpcc.TOrders).Rows()
	}
	return fmt.Sprintf("wYTD=%.2f dYTD=%.2f bal=%.2f hist=%d/%.2f orders=%d",
		wYTD, dYTD, bal, hRows, hAmt, orders)
}

func policies() []Policy {
	return []Policy{SharedNothing, NaiveIntra, PreciseIntra, StreamingCC}
}

func TestAllPoliciesPaymentCorrectness(t *testing.T) {
	cfg := testCfg()
	txns := genTxns(cfg, tpcc.Partitionable(), 600)
	var snaps []string
	for _, pol := range policies() {
		db, _ := tpcc.NewDatabase(cfg)
		c := buildCluster(db, cfg, pol)
		c.run(txns)
		if c.committed != 600 || c.aborted != 0 {
			t.Fatalf("%v: committed=%d aborted=%d", pol, c.committed, c.aborted)
		}
		if _, err := tpcc.Verify(db, cfg); err != nil {
			t.Fatalf("%v violates TPC-C consistency: %v", pol, err)
		}
		snaps = append(snaps, snapshot(db, cfg))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("end states diverge:\n%v: %s\n%v: %s",
				policies()[0], snaps[0], policies()[i], snaps[i])
		}
	}
}

func TestAllPoliciesSkewedCorrectness(t *testing.T) {
	cfg := testCfg()
	txns := genTxns(cfg, tpcc.Skewed(), 500)
	var snaps []string
	for _, pol := range policies() {
		db, _ := tpcc.NewDatabase(cfg)
		c := buildCluster(db, cfg, pol)
		c.run(txns)
		if c.committed != 500 {
			t.Fatalf("%v: committed=%d", pol, c.committed)
		}
		if _, err := tpcc.Verify(db, cfg); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		snaps = append(snaps, snapshot(db, cfg))
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i] != snaps[0] {
			t.Fatalf("skewed end states diverge: %s vs %s", snaps[0], snaps[i])
		}
	}
}

func TestNewOrderMixWithAborts(t *testing.T) {
	cfg := testCfg()
	mix := tpcc.MixedOLTP()
	mix.InvalidItemFrac = 0.2 // force plenty of §2.4.1.4 rollbacks
	txns := genTxns(cfg, mix, 400)
	wantAborts := 0
	for _, txn := range txns {
		if !Valid(&txn) {
			wantAborts++
		}
	}
	if wantAborts == 0 {
		t.Fatal("test needs some invalid transactions")
	}
	for _, pol := range policies() {
		db, _ := tpcc.NewDatabase(cfg)
		c := buildCluster(db, cfg, pol)
		c.run(txns)
		if c.aborted != wantAborts {
			t.Fatalf("%v: aborted=%d, want %d", pol, c.aborted, wantAborts)
		}
		if c.committed != 400-wantAborts {
			t.Fatalf("%v: committed=%d", pol, c.committed)
		}
		if _, err := tpcc.Verify(db, cfg); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

// TestStreamingBeatsNaiveUnderSkew asserts the core Figure 5 shape in
// miniature: under contention, streaming CC completes the same work in
// less virtual time than naive intra-transaction parallelism, and
// precise-intra lands in between.
func TestStreamingBeatsNaiveUnderSkew(t *testing.T) {
	cfg := testCfg()
	txns := genTxns(cfg, tpcc.Skewed(), 800)
	times := make(map[Policy]sim.Time)
	for _, pol := range policies() {
		db, _ := tpcc.NewDatabase(cfg)
		c := buildCluster(db, cfg, pol)
		c.run(txns)
		times[pol] = c.lastDone
	}
	if times[StreamingCC] >= times[NaiveIntra] {
		t.Fatalf("streaming CC (%v) not faster than naive (%v)",
			times[StreamingCC], times[NaiveIntra])
	}
	if times[PreciseIntra] >= times[NaiveIntra] {
		t.Fatalf("precise intra (%v) not faster than naive (%v)",
			times[PreciseIntra], times[NaiveIntra])
	}
}

// TestSharedNothingScalesWhenPartitionable: the same work spread over 4
// warehouses finishes much faster than when skewed to 1 under
// shared-nothing routing (inter-transaction parallelism).
func TestSharedNothingScalesWhenPartitionable(t *testing.T) {
	cfg := testCfg()
	uniform := genTxns(cfg, tpcc.Partitionable(), 800)
	skewed := genTxns(cfg, tpcc.Skewed(), 800)

	db1, _ := tpcc.NewDatabase(cfg)
	c1 := buildCluster(db1, cfg, SharedNothing)
	c1.run(uniform)

	db2, _ := tpcc.NewDatabase(cfg)
	c2 := buildCluster(db2, cfg, SharedNothing)
	c2.run(skewed)

	if c1.lastDone >= c2.lastDone {
		t.Fatalf("partitionable (%v) should beat skewed (%v) under shared-nothing",
			c1.lastDone, c2.lastDone)
	}
	// Imbalance at this small transaction count and the 15% remote
	// payments keep the speedup below the ideal 4x.
	speedup := float64(c2.lastDone) / float64(c1.lastDone)
	if speedup < 1.5 {
		t.Fatalf("shared-nothing speedup = %.2fx, want >1.5x across 4 partitions", speedup)
	}
}

func TestProgramShapes(t *testing.T) {
	pay := tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{
		W: 1, D: 2, CW: 1, CD: 2, C: 3, Amount: 10,
	}}
	ops := Program(pay)
	if len(ops) != 4 {
		t.Fatalf("payment ops = %d, want 4", len(ops))
	}
	classes := []Class{ClassWarehouse, ClassDistrict, ClassCustomer, ClassHistory}
	for i, op := range ops {
		if op.Class() != classes[i] {
			t.Fatalf("op %d class = %v, want %v", i, op.Class(), classes[i])
		}
		if op.Warehouse() != 1 {
			t.Fatalf("op %d warehouse = %d", i, op.Warehouse())
		}
	}

	no := tpcc.Txn{Kind: tpcc.TxnNewOrder, NewOrder: tpcc.NewOrder{
		W: 0, D: 1, C: 1,
		Lines: []tpcc.NewOrderLine{
			{Item: 1, SupplyW: 0, Qty: 1},
			{Item: 2, SupplyW: 3, Qty: 2},
			{Item: 3, SupplyW: 0, Qty: 1},
		},
	}}
	ops = Program(no)
	if len(ops) != 3 { // InsertOrder + stock@0 + stock@3
		t.Fatalf("new-order ops = %d, want 3", len(ops))
	}
	if ops[1].(*UpdateStock).SupplyW != 0 || len(ops[1].(*UpdateStock).Lines) != 2 {
		t.Fatal("stock grouping by supply warehouse broken")
	}
	if ops[2].(*UpdateStock).SupplyW != 3 {
		t.Fatal("remote stock segment missing")
	}
}

func TestValidDetectsRollback(t *testing.T) {
	ok := tpcc.Txn{Kind: tpcc.TxnNewOrder, NewOrder: tpcc.NewOrder{
		Lines: []tpcc.NewOrderLine{{Item: 5}},
	}}
	bad := tpcc.Txn{Kind: tpcc.TxnNewOrder, NewOrder: tpcc.NewOrder{
		Lines: []tpcc.NewOrderLine{{Item: 5}, {Item: -1}},
	}}
	if !Valid(&ok) || Valid(&bad) {
		t.Fatal("Valid broken")
	}
	if !Valid(&tpcc.Txn{Kind: tpcc.TxnPayment}) {
		t.Fatal("payments are always valid")
	}
}

// TestOpsAgainstStorageDirect exercises each op outside the cluster.
func TestOpsAgainstStorageDirect(t *testing.T) {
	cfg := testCfg()
	db, _ := tpcc.NewDatabase(cfg)
	var charged sim.Time
	costs := sim.DefaultCosts()
	var undo storage.UndoLog
	e := &Exec{DB: db, Costs: &costs, Charge: func(d sim.Time) { charged += d }, Undo: &undo}

	if err := (&UpdateWarehouseYTD{W: 0, Amount: 5}).Run(e); err != nil {
		t.Fatal(err)
	}
	if err := (&PayCustomer{W: 0, D: 1, ByLast: true, Last: 0, Amount: 5}).Run(e); err != nil {
		t.Fatal(err)
	}
	if charged == 0 {
		t.Fatal("no cost charged")
	}
	// Rollback restores initial state (w_ytd seeds at 30000/district).
	undo.Rollback()
	wt := db.Partition(0).Table(tpcc.TWarehouse)
	slot, _ := wt.Lookup(tpcc.WarehouseKey(0))
	want := 30000 * float64(cfg.Districts)
	if got := wt.Field(slot, wt.Schema.MustCol("w_ytd")).F; got != want {
		t.Fatalf("w_ytd after rollback = %v, want %v", got, want)
	}

	// Invalid item aborts InsertOrder and undo removes partial rows.
	var undo2 storage.UndoLog
	e2 := &Exec{DB: db, Costs: &costs, Charge: func(sim.Time) {}, Undo: &undo2}
	ordersBefore := db.Partition(0).Table(tpcc.TOrders).Rows()
	err := (&InsertOrder{W: 0, D: 1, C: 1, Year: 2019,
		Lines: []tpcc.NewOrderLine{{Item: 1, SupplyW: 0, Qty: 1}, {Item: -1}}}).Run(e2)
	if err != ErrAbort {
		t.Fatalf("err = %v, want ErrAbort", err)
	}
	undo2.Rollback()
	if db.Partition(0).Table(tpcc.TOrders).Rows() != ordersBefore {
		t.Fatal("aborted order row survived rollback")
	}
	if _, err := tpcc.Verify(db, cfg); err != nil {
		t.Fatalf("post-rollback consistency: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if SharedNothing.String() != "shared-nothing" || StreamingCC.String() != "streaming-cc" {
		t.Fatal("policy names")
	}
	if ClassCustomer.String() != "customer" {
		t.Fatal("class names")
	}
}

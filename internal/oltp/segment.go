package oltp

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/storage"
)

// Segment is the payload of core.EvSegment: a physically-aggregated
// sub-sequence of one transaction's operations, executed atomically by
// one AC (the unit of the duality of disaggregation, §3.1).
type Segment struct {
	Ops   []Op
	Coord core.ACID // where the ack goes
	Total int       // segments in the whole transaction
}

// wireSize approximates the event payload size.
func (s *Segment) wireSize() int64 { return int64(len(s.Ops)) * 48 }

// Ack is the payload of core.EvAck.
type Ack struct {
	Total int
	Home  int // home warehouse (admission bookkeeping)
}

// DoneInfo is the payload of core.EvTxnDone toward the client.
type DoneInfo struct {
	Committed bool
	Home      int
}

// Executor is the worker-side behavior: it runs segments against the
// partitions this AC owns (or, under fine-grained routing, the record
// classes routed to it). Owner ACs process their inbox serially, so
// conflicting operations arriving in a consistent order — guaranteed by
// a single dispatcher or by a sequencer — execute consistently without
// any locking (§3.3).
type Executor struct {
	DB *storage.Database
	// Executed counts segments for observability.
	Executed int64

	// undo and exec are reused across segments: an executor runs on
	// exactly one AC, segments execute to completion, and Commit keeps
	// the log's capacity — so the execution environment costs nothing
	// per segment in steady state. execCtx caches the context the exec
	// was built against (stable per goroutine on the real runtime).
	undo    storage.UndoLog
	exec    Exec
	execCtx core.Context
}

// OnEvent implements core.Behavior for EvSegment.
func (x *Executor) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	seg, ok := ev.Payload.(*Segment)
	if !ok {
		panic("oltp: EvSegment payload must be *Segment")
	}
	if x.execCtx != ctx {
		x.exec = Exec{DB: x.DB, Costs: ctx.Costs(), Charge: ctx.Charge, Undo: &x.undo}
		x.execCtx = ctx
	}
	for _, op := range seg.Ops {
		if err := op.Run(&x.exec); err != nil {
			// AnyDB pre-validates transactions at dispatch, so a
			// logical abort inside a routed segment is a bug.
			panic(fmt.Sprintf("oltp: unexpected abort in routed segment: %v", err))
		}
	}
	x.undo.Commit()
	x.Executed++
	ack := getAck()
	ack.Total = seg.Total
	if len(seg.Ops) > 0 {
		ack.Home = seg.Ops[0].Warehouse()
	}
	coord, id := seg.Coord, ev.Txn
	// The segment and its envelope die here; the ack rides a fresh
	// pooled event.
	freeSegment(seg)
	core.FreeEvent(ev)
	ackEv := core.GetEvent()
	ackEv.Kind, ackEv.Txn, ackEv.Payload = core.EvAck, id, ack
	ctx.Send(coord, ackEv)
}

// Coordinator is the commit-coordination behavior: it counts segment
// acks and declares the transaction committed when all arrived. Under
// streaming CC it runs on its own AC so ack processing stays off the
// executors' critical path; in the other policies the dispatcher embeds
// the same logic.
type Coordinator struct {
	pending map[core.TxnID]int
	// win accumulates the telemetry window (commit-side signals).
	win sigWindow
	// Committed counts completed transactions; atomic because harness
	// code may read it while the coordinator's AC is running.
	Committed metrics.Counter
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{pending: make(map[core.TxnID]int)}
}

// SetTelemetry enables commit-rate reporting toward the adaptation
// controller. Install before the engine starts delivering events.
func (c *Coordinator) SetTelemetry(t Telemetry) { c.win.SetTelemetry(t) }

// OnEvent implements core.Behavior for EvAck.
func (c *Coordinator) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	ack := ev.Payload.(*Ack)
	ctx.Charge(ctx.Costs().AckProcess)
	id, ackHome, ackTotal := ev.Txn, ack.Home, ack.Total
	freeAck(ack)
	core.FreeEvent(ev)
	got := c.pending[id] + 1
	if got < ackTotal {
		c.pending[id] = got
		return
	}
	delete(c.pending, id)
	ctx.Charge(ctx.Costs().TxnCommit)
	c.Committed.Inc()
	// A dedicated coordinator only runs under streaming CC; its windows
	// advance on commits (it never sees admissions).
	c.win.observeCommit(true)
	c.win.maybeFlush(ctx, StreamingCC)
	sendTxnDone(ctx, id, true, ackHome)
}

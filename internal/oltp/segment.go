package oltp

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/storage"
)

// Segment is the payload of core.EvSegment: a physically-aggregated
// sub-sequence of one transaction's operations, executed atomically by
// one AC (the unit of the duality of disaggregation, §3.1).
type Segment struct {
	Ops   []Op
	Coord core.ACID // where the ack goes
	Total int       // segments in the whole transaction
}

// wireSize approximates the event payload size.
func (s *Segment) wireSize() int64 { return int64(len(s.Ops)) * 48 }

// Ack is the payload of core.EvAck.
type Ack struct {
	Total int
	Home  int // home warehouse (admission bookkeeping)
}

// DoneInfo is the payload of core.EvTxnDone toward the client.
type DoneInfo struct {
	Committed bool
	Home      int
}

// Executor is the worker-side behavior: it runs segments against the
// partitions this AC owns (or, under fine-grained routing, the record
// classes routed to it). Owner ACs process their inbox serially, so
// conflicting operations arriving in a consistent order — guaranteed by
// a single dispatcher or by a sequencer — execute consistently without
// any locking (§3.3).
type Executor struct {
	DB *storage.Database
	// Executed counts segments for observability.
	Executed int64
}

// OnEvent implements core.Behavior for EvSegment.
func (x *Executor) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	seg, ok := ev.Payload.(*Segment)
	if !ok {
		panic("oltp: EvSegment payload must be *Segment")
	}
	var undo storage.UndoLog
	e := NewExec(ctx, x.DB, &undo)
	for _, op := range seg.Ops {
		if err := op.Run(e); err != nil {
			// AnyDB pre-validates transactions at dispatch, so a
			// logical abort inside a routed segment is a bug.
			panic(fmt.Sprintf("oltp: unexpected abort in routed segment: %v", err))
		}
	}
	undo.Commit()
	x.Executed++
	ack := &Ack{Total: seg.Total}
	if len(seg.Ops) > 0 {
		ack.Home = seg.Ops[0].Warehouse()
	}
	ctx.Send(seg.Coord, &core.Event{Kind: core.EvAck, Txn: ev.Txn, Payload: ack})
}

// Coordinator is the commit-coordination behavior: it counts segment
// acks and declares the transaction committed when all arrived. Under
// streaming CC it runs on its own AC so ack processing stays off the
// executors' critical path; in the other policies the dispatcher embeds
// the same logic.
type Coordinator struct {
	pending map[core.TxnID]int
	// win accumulates the telemetry window (commit-side signals).
	win sigWindow
	// Committed counts completed transactions; atomic because harness
	// code may read it while the coordinator's AC is running.
	Committed metrics.Counter
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{pending: make(map[core.TxnID]int)}
}

// SetTelemetry enables commit-rate reporting toward the adaptation
// controller. Install before the engine starts delivering events.
func (c *Coordinator) SetTelemetry(t Telemetry) { c.win.SetTelemetry(t) }

// OnEvent implements core.Behavior for EvAck.
func (c *Coordinator) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	ack := ev.Payload.(*Ack)
	ctx.Charge(ctx.Costs().AckProcess)
	got := c.pending[ev.Txn] + 1
	if got < ack.Total {
		c.pending[ev.Txn] = got
		return
	}
	delete(c.pending, ev.Txn)
	ctx.Charge(ctx.Costs().TxnCommit)
	c.Committed.Inc()
	// A dedicated coordinator only runs under streaming CC; its windows
	// advance on commits (it never sees admissions).
	c.win.observeCommit(true)
	c.win.maybeFlush(ctx, StreamingCC)
	ctx.Send(core.ClientAC, &core.Event{
		Kind: core.EvTxnDone, Txn: ev.Txn,
		Payload: &DoneInfo{Committed: true, Home: ack.Home},
	})
}

package oltp

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/storage"
)

// Segment is the payload of core.EvSegment: a physically-aggregated
// sub-sequence of one transaction's operations, executed atomically by
// one AC (the unit of the duality of disaggregation, §3.1).
type Segment struct {
	Ops   []Op
	Coord core.ACID // where the ack goes
	Total int       // segments in the whole transaction
	// Client is the submitter's completion token (core.Event.Client),
	// threaded through every segment so the commit path can return it
	// on the DoneInfo without any shared lookup table.
	Client any
	// Prog is the pooled payment-program block the segment's ops live
	// in (nil for new-order segments). The last freed segment of the
	// transaction recycles it — see freeSegment.
	Prog *paymentProgram
}

// wireSize approximates the event payload size.
func (s *Segment) wireSize() int64 { return int64(len(s.Ops)) * 48 }

// Ack is the payload of core.EvAck.
type Ack struct {
	Total  int
	Home   int // home warehouse (admission bookkeeping)
	Client any // completion token, carried from the segment
	// Err marks a synthetic failure ack: the head injects one for each
	// segment lost to a dead member, so the coordinator's pending count
	// still converges and the transaction completes exactly once — as a
	// typed failure. Real executor acks never set it, and it never
	// crosses the wire.
	Err error
}

// DoneInfo is the payload of core.EvTxnDone toward the client.
type DoneInfo struct {
	Committed bool
	Home      int
	// Client is the token the submitter attached at injection (nil for
	// harness-driven transactions, which match completions themselves).
	Client any
	// Err is the failure the submitter's Wait surfaces when Committed
	// is false for an infrastructure reason (dead member, failed log
	// flush) rather than a logical abort. Local-only: dispatchers that
	// produce errors live on the head, so it never crosses the wire.
	Err error
}

// Executor is the worker-side behavior: it runs segments against the
// partitions this AC owns (or, under fine-grained routing, the record
// classes routed to it). Owner ACs process their inbox serially, so
// conflicting operations arriving in a consistent order — guaranteed by
// a single dispatcher or by a sequencer — execute consistently without
// any locking (§3.3).
type Executor struct {
	DB *storage.Database
	// Pools is the hosting AC's free-list set, shared with every other
	// behavior on that AC; nil uses the global pools.
	Pools *Pools
	// Executed counts segments for observability.
	Executed int64

	// undo and exec are reused across segments: an executor runs on
	// exactly one AC, segments execute to completion, and Commit keeps
	// the log's capacity — so the execution environment costs nothing
	// per segment in steady state. execCtx caches the context the exec
	// was built against (stable per goroutine on the real runtime).
	undo    storage.UndoLog
	exec    Exec
	execCtx core.Context
}

// OnEvent implements core.Behavior for EvSegment.
func (x *Executor) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	seg, ok := ev.Payload.(*Segment)
	if !ok {
		panic("oltp: EvSegment payload must be *Segment")
	}
	if x.execCtx != ctx {
		x.exec = Exec{DB: x.DB, Costs: ctx.Costs(), Charge: ctx.Charge, Undo: &x.undo}
		x.execCtx = ctx
	}
	for _, op := range seg.Ops {
		if err := op.Run(&x.exec); err != nil {
			// AnyDB pre-validates transactions at dispatch, so a
			// logical abort inside a routed segment is a bug.
			panic(fmt.Sprintf("oltp: unexpected abort in routed segment: %v", err))
		}
	}
	x.undo.Commit()
	x.Executed++
	ack := x.Pools.getAck()
	ack.Total, ack.Client = seg.Total, seg.Client
	if len(seg.Ops) > 0 {
		ack.Home = seg.Ops[0].Warehouse()
	}
	coord, id := seg.Coord, ev.Txn
	// The segment and its envelope die here; the ack rides a fresh
	// pooled event.
	x.Pools.freeSegment(seg)
	x.Pools.FreeEvent(ev)
	ackEv := x.Pools.GetEvent()
	ackEv.Kind, ackEv.Txn, ackEv.Payload = core.EvAck, id, ack
	ctx.Send(coord, ackEv)
}

// Coordinator is the commit-coordination behavior: it counts segment
// acks and declares the transaction committed when all arrived. Under
// streaming CC it runs on its own AC so ack processing stays off the
// executors' critical path; in the other policies the dispatcher embeds
// the same logic.
type Coordinator struct {
	// Pools is the hosting AC's free-list set; nil uses the globals.
	Pools   *Pools
	pending map[core.TxnID]int
	failed  map[core.TxnID]error
	// win accumulates the telemetry window (commit-side signals).
	win sigWindow
	// Committed counts completed transactions; atomic because harness
	// code may read it while the coordinator's AC is running.
	Committed metrics.Counter
}

// NewCoordinator returns an empty coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		pending: make(map[core.TxnID]int),
		failed:  make(map[core.TxnID]error),
	}
}

// SetTelemetry enables commit-rate reporting toward the adaptation
// controller. Install before the engine starts delivering events.
func (c *Coordinator) SetTelemetry(t Telemetry) { c.win.SetTelemetry(t) }

// takeAck consumes one pooled ack event — the shared half of the two
// commit-coordination paths (dedicated Coordinator and embedded
// Dispatcher.onAck). It copies the fields out, recycles the ack and its
// envelope (the pooled-ownership rule lives here, in one place), counts
// the ack against pending, and reports whether the transaction is now
// fully acked. A failure ack (synthetic, from the dead-member path)
// poisons the transaction: when the count converges, err carries the
// first failure and the caller completes the transaction as failed.
func takeAck(ctx core.Context, pools *Pools, pending map[core.TxnID]int, failed map[core.TxnID]error, ev *core.Event) (id core.TxnID, home int, client any, err error, done bool) {
	ack := ev.Payload.(*Ack)
	ctx.Charge(ctx.Costs().AckProcess)
	var total int
	id, home, total, client = ev.Txn, ack.Home, ack.Total, ack.Client
	if ack.Err != nil {
		if _, dup := failed[id]; !dup {
			failed[id] = ack.Err
		}
	}
	pools.freeAck(ack)
	pools.FreeEvent(ev)
	got := pending[id] + 1
	if got < total {
		pending[id] = got
		return id, home, client, nil, false
	}
	delete(pending, id)
	if e, ok := failed[id]; ok {
		delete(failed, id)
		err = e
	}
	return id, home, client, err, true
}

// OnEvent implements core.Behavior for EvAck.
func (c *Coordinator) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	id, ackHome, client, err, done := takeAck(ctx, c.Pools, c.pending, c.failed, ev)
	if !done {
		return
	}
	ctx.Charge(ctx.Costs().TxnCommit)
	if err != nil {
		sendTxnDone(ctx, c.Pools, id, false, ackHome, client, err)
		return
	}
	c.Committed.Inc()
	// A dedicated coordinator only runs under streaming CC; its windows
	// advance on commits (it never sees admissions).
	c.win.observeCommit(true)
	c.win.maybeFlush(ctx, StreamingCC)
	sendTxnDone(ctx, c.Pools, id, true, ackHome, client, nil)
}

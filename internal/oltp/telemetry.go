package oltp

import (
	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// Telemetry configures workload-signal reporting on the dispatch path:
// every Every completions the accumulating AC flushes a Report as an
// EvSignal event toward Sink (the adaptation controller AC). The zero
// value — Sink left at AC 0 is avoided by requiring Enabled — disables
// reporting entirely, so the static benchmark series pay nothing.
//
// Telemetry is installed before the engine starts and never mutated at
// runtime; the accumulating window state lives inside the reporting
// behavior and is only touched on that AC's goroutine (or actor), so no
// synchronization is needed on either runtime.
type Telemetry struct {
	Sink    core.ACID
	Every   int64
	Enabled bool
}

// Report is the payload of core.EvSignal: one window of workload
// signals observed by a dispatching or coordinating AC. The adaptation
// controller aggregates reports from all sources into sliding windows
// and scores the routing policies against them.
//
// Admission-side counters (Admitted, ByHome, CrossPart, Aborted) come
// from dispatchers, which see every transaction's operation program
// before routing; Committed comes from whichever AC coordinates the
// commit — the dispatcher itself, or the dedicated coordinator under
// streaming CC. The two sources are disjoint, so the controller can sum
// them without double counting.
type Report struct {
	// Src is the reporting AC.
	Src core.ACID
	// At is the reporter's local time when the report was flushed.
	At sim.Time
	// Policy is the routing policy the reporter was running under.
	Policy Policy
	// Admitted counts transactions that entered dispatch in the window.
	Admitted int64
	// Committed counts transactions whose commit this AC coordinated.
	Committed int64
	// Aborted counts transactions rejected at reconnaissance.
	Aborted int64
	// CrossPart counts admitted transactions whose operations touch
	// more than one warehouse (the cross-partition ratio numerator).
	CrossPart int64
	// ByHome holds per-warehouse admission counts (access skew).
	ByHome []int64
	// Queries counts analytical queries completed in the window
	// (reported by the client/harness side, not the dispatch path).
	Queries int64
}

// sigWindow accumulates one in-progress report. It is embedded in the
// Dispatcher and Coordinator and only touched from their own event
// handlers.
type sigWindow struct {
	tel       Telemetry
	admitted  int64
	committed int64
	aborted   int64
	crossPart int64
	byHome    map[int]int64
	// flushTick counts window-advancing observations since the last
	// flush (admissions at dispatchers, commits at coordinators).
	flushTick int64
}

// SetTelemetry installs the reporting configuration. Call before the
// engine starts delivering events.
func (w *sigWindow) SetTelemetry(t Telemetry) {
	if t.Every <= 0 {
		t.Every = 64
	}
	w.tel = t
}

// observeAdmit records one admitted transaction and its shape.
func (w *sigWindow) observeAdmit(home int, crossPart bool) {
	if !w.tel.Enabled {
		return
	}
	w.admitted++
	w.flushTick++
	if w.byHome == nil {
		w.byHome = make(map[int]int64)
	}
	w.byHome[home]++
	if crossPart {
		w.crossPart++
	}
}

// observeCommit records one coordinated commit. tick advances the flush
// counter — set by coordinators, whose windows contain commits only.
func (w *sigWindow) observeCommit(tick bool) {
	if !w.tel.Enabled {
		return
	}
	w.committed++
	if tick {
		w.flushTick++
	}
}

// observeAbort records one reconnaissance abort.
func (w *sigWindow) observeAbort() {
	if !w.tel.Enabled {
		return
	}
	w.aborted++
	w.flushTick++
}

// maybeFlush emits the window as an EvSignal toward the sink once
// enough observations accumulated.
func (w *sigWindow) maybeFlush(ctx core.Context, policy Policy) {
	if !w.tel.Enabled || w.flushTick < w.tel.Every {
		return
	}
	r := &Report{
		Src: ctx.Self(), At: ctx.Now(), Policy: policy,
		Admitted: w.admitted, Committed: w.committed,
		Aborted: w.aborted, CrossPart: w.crossPart,
	}
	if len(w.byHome) > 0 {
		max := 0
		for home := range w.byHome {
			if home > max {
				max = home
			}
		}
		r.ByHome = make([]int64, max+1)
		for home, n := range w.byHome {
			r.ByHome[home] = n
		}
	}
	w.admitted, w.committed, w.aborted, w.crossPart = 0, 0, 0, 0
	w.byHome = nil
	w.flushTick = 0
	ev := core.GetEvent()
	ev.Kind, ev.Payload = core.EvSignal, r
	ctx.Send(w.tel.Sink, ev)
}

// crossPartition reports whether a transaction's operations span more
// than one warehouse — a policy-independent signal (unlike segment
// counts, which depend on the active routing). It mirrors Program's
// warehouse placement without building the op slice, so the telemetry
// path allocates nothing.
func crossPartition(t *tpcc.Txn) bool {
	switch t.Kind {
	case tpcc.TxnPayment:
		return t.Payment.CW != t.Payment.W
	default: // new-order
		for _, l := range t.NewOrder.Lines {
			if l.SupplyW != t.NewOrder.W {
				return true
			}
		}
		return false
	}
}

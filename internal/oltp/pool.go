package oltp

import "sync"

// Pools for the OLTP hot-path payloads. Every transaction allocates a
// Segment per routed group, an Ack per segment, and a DoneInfo — with
// the pooled core.Event envelopes these are the entire steady-state
// allocation profile of the message plane. Ownership is single-consumer
// throughout: a Segment dies at the executor that ran it, an Ack at the
// coordinator that counted it, a DoneInfo at the client that resolved
// the waiter. Frees are optional (missed ones fall back to the GC), so
// the simulation runtime and tests that drop messages stay correct.
var (
	segPool  = sync.Pool{New: func() any { return new(Segment) }}
	ackPool  = sync.Pool{New: func() any { return new(Ack) }}
	donePool = sync.Pool{New: func() any { return new(DoneInfo) }}
	progPool = sync.Pool{New: func() any { return new(paymentProgram) }}
)

func getSegment() *Segment { return segPool.Get().(*Segment) }

// freeSegment recycles a fully executed segment, keeping the Ops
// capacity. The op references are cleared so the program block of the
// owning transaction is not pinned by the pool; if this was the last
// segment holding the transaction's pooled payment-program block, the
// block is recycled too (its ops all ran — the refcount is the number
// of routed segments, decremented here at each segment's death).
func freeSegment(s *Segment) {
	clear(s.Ops)
	s.Ops = s.Ops[:0]
	if p := s.Prog; p != nil {
		s.Prog = nil
		if p.refs.Add(-1) == 0 {
			progPool.Put(p)
		}
	}
	s.Coord, s.Total, s.Client = 0, 0, nil
	segPool.Put(s)
}

// getProg returns a payment-program block from the pool. Every field is
// fully overwritten by the builder, and refs is re-armed by the
// dispatcher once it knows the segment count.
func getProg() *paymentProgram { return progPool.Get().(*paymentProgram) }

func getAck() *Ack { return ackPool.Get().(*Ack) }

func freeAck(a *Ack) {
	*a = Ack{}
	ackPool.Put(a)
}

// GetSegment returns a pooled Segment for decode paths that materialize
// segments off the wire (the transport peer plays the dispatcher's role
// for remotely executed segments).
func GetSegment() *Segment { return getSegment() }

// FreeSegment recycles a segment owned by a wire codec (the encode side
// frees its local copy once the frame is written).
func FreeSegment(s *Segment) { freeSegment(s) }

// GetAck returns a pooled Ack for wire decode paths.
func GetAck() *Ack { return getAck() }

// FreeAck recycles an ack owned by a wire codec.
func FreeAck(a *Ack) { freeAck(a) }

// GetDoneInfo returns a zeroed DoneInfo from the pool. The dispatch side
// allocates it; whoever consumes the EvTxnDone (the anydb client
// callback) frees it with FreeDoneInfo once the outcome is recorded.
func GetDoneInfo() *DoneInfo { return donePool.Get().(*DoneInfo) }

// FreeDoneInfo recycles d. Callers must not touch d afterwards.
func FreeDoneInfo(d *DoneInfo) {
	*d = DoneInfo{}
	donePool.Put(d)
}

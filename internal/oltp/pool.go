package oltp

import (
	"sync"

	"anydb/internal/core"
)

// Pools for the OLTP hot-path payloads. Every transaction allocates a
// Segment per routed group, an Ack per segment, and a DoneInfo — with
// the pooled core.Event envelopes these are the entire steady-state
// allocation profile of the message plane. Ownership is single-consumer
// throughout: a Segment dies at the executor that ran it, an Ack at the
// coordinator that counted it, a DoneInfo at the client that resolved
// the waiter. Frees are optional (missed ones fall back to the GC), so
// the simulation runtime and tests that drop messages stay correct.
var (
	segPool  = sync.Pool{New: func() any { return new(Segment) }}
	ackPool  = sync.Pool{New: func() any { return new(Ack) }}
	donePool = sync.Pool{New: func() any { return new(DoneInfo) }}
	progPool = sync.Pool{New: func() any { return new(paymentProgram) }}
)

// Pools is one AC's private free-list set for the single-consumer OLTP
// payloads and their event envelopes. Under aggregated routing the same
// AC that gets an object frees it within the same drain loop (the
// dispatcher builds a segment, the owner-executor consumes it, the
// embedded coordinator counts the ack), so a plain slice with no
// atomics recycles objects for free — the sync.Pool pushHead/popHead
// CAS traffic disappears from the submit path. The global pools remain
// as spill/fill: an empty list falls through to them and a full one
// overflows into them, so objects still migrate correctly when producer
// and consumer land on different ACs (fine-grained policies, transport
// peers). A nil *Pools (simulation runtime, wire codecs) is valid and
// uses the global pools directly.
//
// All behaviors registered on one AC share one Pools value; it must
// only be touched from that AC's goroutine.
type Pools struct {
	events []*core.Event
	segs   []*Segment
	acks   []*Ack
	progs  []*paymentProgram
}

// poolsCap bounds each per-AC list; overflow spills to the globals.
const poolsCap = 256

// GetEvent returns a recycled event envelope, falling back to the
// global event pool. Leak accounting is preserved through the bypass.
func (p *Pools) GetEvent() *core.Event {
	if p != nil {
		if n := len(p.events) - 1; n >= 0 {
			ev := p.events[n]
			p.events[n] = nil
			p.events = p.events[:n]
			core.CountEventGet()
			return ev
		}
	}
	return core.GetEvent()
}

// FreeEvent recycles ev into the AC-local list (or the global pool when
// the list is full or p is nil). Same ownership contract as
// core.FreeEvent.
func (p *Pools) FreeEvent(ev *core.Event) {
	if p != nil && len(p.events) < poolsCap {
		core.ClearEvent(ev)
		core.CountEventFree()
		p.events = append(p.events, ev)
		return
	}
	core.FreeEvent(ev)
}

func (p *Pools) getSegment() *Segment {
	if p != nil {
		if n := len(p.segs) - 1; n >= 0 {
			s := p.segs[n]
			p.segs[n] = nil
			p.segs = p.segs[:n]
			return s
		}
	}
	return segPool.Get().(*Segment)
}

// freeSegment recycles a fully executed segment, keeping the Ops
// capacity. The op references are cleared so the program block of the
// owning transaction is not pinned by the pool; if this was the last
// segment holding the transaction's pooled payment-program block, the
// block is recycled too (its ops all ran — the refcount is the number
// of routed segments, decremented here at each segment's death).
func (p *Pools) freeSegment(s *Segment) {
	clear(s.Ops)
	s.Ops = s.Ops[:0]
	if prog := s.Prog; prog != nil {
		s.Prog = nil
		if prog.refs.Add(-1) == 0 {
			p.freeProg(prog)
		}
	}
	s.Coord = 0
	s.Total = 0
	s.Client = nil
	if p != nil && len(p.segs) < poolsCap {
		p.segs = append(p.segs, s)
		return
	}
	segPool.Put(s)
}

// getProg returns a payment-program block. Every field is fully
// overwritten by the builder, and refs is re-armed by the dispatcher
// once it knows the segment count.
func (p *Pools) getProg() *paymentProgram {
	if p != nil {
		if n := len(p.progs) - 1; n >= 0 {
			pr := p.progs[n]
			p.progs[n] = nil
			p.progs = p.progs[:n]
			return pr
		}
	}
	return progPool.Get().(*paymentProgram)
}

func (p *Pools) freeProg(pr *paymentProgram) {
	if p != nil && len(p.progs) < poolsCap {
		p.progs = append(p.progs, pr)
		return
	}
	progPool.Put(pr)
}

func (p *Pools) getAck() *Ack {
	if p != nil {
		if n := len(p.acks) - 1; n >= 0 {
			a := p.acks[n]
			p.acks[n] = nil
			p.acks = p.acks[:n]
			return a
		}
	}
	return ackPool.Get().(*Ack)
}

func (p *Pools) freeAck(a *Ack) {
	a.Total = 0
	a.Home = 0
	a.Client = nil
	a.Err = nil
	if p != nil && len(p.acks) < poolsCap {
		p.acks = append(p.acks, a)
		return
	}
	ackPool.Put(a)
}

// GetSegment returns a pooled Segment for decode paths that materialize
// segments off the wire (the transport peer plays the dispatcher's role
// for remotely executed segments).
func GetSegment() *Segment { return (*Pools)(nil).getSegment() }

// FreeSegment recycles a segment owned by a wire codec (the encode side
// frees its local copy once the frame is written).
func FreeSegment(s *Segment) { (*Pools)(nil).freeSegment(s) }

// GetAck returns a pooled Ack for wire decode paths.
func GetAck() *Ack { return (*Pools)(nil).getAck() }

// FreeAck recycles an ack owned by a wire codec.
func FreeAck(a *Ack) { (*Pools)(nil).freeAck(a) }

// GetDoneInfo returns a zeroed DoneInfo from the pool. The dispatch side
// allocates it; whoever consumes the EvTxnDone (the anydb client
// callback) frees it with FreeDoneInfo once the outcome is recorded.
// DoneInfos cross the AC/client boundary by design, so they stay on the
// global pool rather than any AC-local list.
func GetDoneInfo() *DoneInfo { return donePool.Get().(*DoneInfo) }

// FreeDoneInfo recycles d. Callers must not touch d afterwards.
func FreeDoneInfo(d *DoneInfo) {
	d.Committed = false
	d.Home = 0
	d.Client = nil
	d.Err = nil
	donePool.Put(d)
}

// Package oltp turns TPC-C transactions into the paper's execution model:
// a transaction is logically disaggregated into an ordered list of
// operations (Figure 4a); routing policies then decide how much of that
// list executes physically aggregated at which AnyComponent (Figures
// 4b–4d and streaming CC). The same operations also run directly inside
// the DBx1000 baseline, so both engines execute identical logic against
// identical storage.
package oltp

import (
	"errors"
	"fmt"
	"sync/atomic"

	"anydb/internal/cc"
	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Class is the record class an operation touches — the routing
// granularity for fine-grained (intra-transaction) parallelism.
type Class uint8

const (
	ClassWarehouse Class = iota
	ClassDistrict
	ClassCustomer
	ClassHistory
	ClassOrder // order/new_order/order_line inserts
	ClassStock
	numClasses
)

var classNames = [...]string{"warehouse", "district", "customer", "history", "order", "stock"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ErrAbort signals a logical transaction abort (TPC-C new-order §2.4.1.4
// invalid item).
var ErrAbort = errors.New("oltp: transaction abort")

// Exec is the environment an operation runs in: storage, cost charging,
// and the per-transaction undo log.
type Exec struct {
	DB     *storage.Database
	Costs  *sim.CostModel
	Charge func(sim.Time)
	Undo   *storage.UndoLog
}

// NewExec builds an Exec charging against ctx.
func NewExec(ctx core.Context, db *storage.Database, undo *storage.UndoLog) *Exec {
	return &Exec{DB: db, Costs: ctx.Costs(), Charge: ctx.Charge, Undo: undo}
}

// Op is one logical operation of a transaction.
type Op interface {
	// Warehouse returns the partition whose data the op touches.
	Warehouse() int
	// Class returns the record class for fine-grained routing.
	Class() Class
	// Run executes the op. It returns ErrAbort for logical aborts;
	// any other failure is an invariant violation and panics inside.
	Run(e *Exec) error
	// Locks lists the record resources a lock-based engine (the
	// DBx1000 baseline) must hold exclusively to run the op. AnyDB
	// never calls it — its consistency comes from event ordering.
	Locks() []cc.Resource
}

// ---- Payment operations (TPC-C §2.5) ----

// UpdateWarehouseYTD adds the payment amount to w_ytd.
type UpdateWarehouseYTD struct {
	W      int
	Amount float64
}

func (o *UpdateWarehouseYTD) Warehouse() int { return o.W }
func (o *UpdateWarehouseYTD) Class() Class   { return ClassWarehouse }
func (o *UpdateWarehouseYTD) Locks() []cc.Resource {
	return []cc.Resource{{Table: tpcc.TWarehouse, Key: tpcc.WarehouseKey(o.W)}}
}
func (o *UpdateWarehouseYTD) Run(e *Exec) error {
	t := e.DB.Partition(o.W).TableByID(tpcc.TWarehouseID)
	slot, ok := t.Lookup(tpcc.WarehouseKey(o.W))
	e.Charge(e.Costs.IndexLookup)
	if !ok {
		panic(fmt.Sprintf("oltp: warehouse %d missing", o.W))
	}
	col := tpcc.ColWYTD
	old := t.UpdateAt(slot, col, storage.Float(t.Field(slot, col).F+o.Amount))
	e.Undo.LogUpdate(t, slot, col, old)
	e.Charge(e.Costs.RecordUpdate)
	return nil
}

// UpdateDistrictYTD adds the payment amount to d_ytd.
type UpdateDistrictYTD struct {
	W, D   int
	Amount float64
}

func (o *UpdateDistrictYTD) Warehouse() int { return o.W }
func (o *UpdateDistrictYTD) Class() Class   { return ClassDistrict }
func (o *UpdateDistrictYTD) Locks() []cc.Resource {
	return []cc.Resource{{Table: tpcc.TDistrict, Key: tpcc.DistrictKey(o.W, o.D)}}
}
func (o *UpdateDistrictYTD) Run(e *Exec) error {
	t := e.DB.Partition(o.W).TableByID(tpcc.TDistrictID)
	slot, ok := t.Lookup(tpcc.DistrictKey(o.W, o.D))
	e.Charge(e.Costs.IndexLookup)
	if !ok {
		panic(fmt.Sprintf("oltp: district %d/%d missing", o.W, o.D))
	}
	col := tpcc.ColDYTD
	old := t.UpdateAt(slot, col, storage.Float(t.Field(slot, col).F+o.Amount))
	e.Undo.LogUpdate(t, slot, col, old)
	e.Charge(e.Costs.RecordUpdate)
	return nil
}

// PayCustomer finds the customer (by id, or by last name taking the
// middle match per §2.5.2.2) and moves the amount from balance to
// ytd_payment.
type PayCustomer struct {
	W, D   int // customer's warehouse/district
	C      int
	ByLast bool
	Last   int
	Amount float64
}

func (o *PayCustomer) Warehouse() int { return o.W }
func (o *PayCustomer) Class() Class   { return ClassCustomer }

// Locks returns the customer record lock, or a surrogate range lock on
// the (last name, district) index prefix for the by-name variant.
func (o *PayCustomer) Locks() []cc.Resource {
	if o.ByLast {
		return []cc.Resource{{Table: tpcc.TCustomer + "_last", Key: tpcc.CustomerLastKey(o.Last, o.D, 0)}}
	}
	return []cc.Resource{{Table: tpcc.TCustomer, Key: tpcc.CustomerKey(o.W, o.D, o.C)}}
}
func (o *PayCustomer) Run(e *Exec) error {
	t := e.DB.Partition(o.W).TableByID(tpcc.TCustomerID)
	var slot int32
	if o.ByLast {
		// Ordered range over the by-last-name index: the long scan
		// that precise splitting isolates (§3.2).
		var slots []int32
		lo := tpcc.CustomerLastKey(o.Last, o.D, 0)
		hi := tpcc.CustomerLastKey(o.Last, o.D, 1<<40)
		e.Charge(e.Costs.IndexLookup)
		t.Range(tpcc.IdxCustomerByLast, lo, hi, func(s int32, _ storage.Row) bool {
			slots = append(slots, s)
			e.Charge(e.Costs.IndexScanRow)
			return true
		})
		if len(slots) == 0 {
			panic(fmt.Sprintf("oltp: no customer with last name %d in %d/%d", o.Last, o.W, o.D))
		}
		slot = slots[len(slots)/2]
	} else {
		var ok bool
		slot, ok = t.Lookup(tpcc.CustomerKey(o.W, o.D, o.C))
		e.Charge(e.Costs.IndexLookup)
		if !ok {
			panic(fmt.Sprintf("oltp: customer %d/%d/%d missing", o.W, o.D, o.C))
		}
	}
	e.Charge(e.Costs.RecordRead)
	const bal, ytd, cnt = tpcc.ColCBalance, tpcc.ColCYtdPayment, tpcc.ColCPaymentCnt
	e.Undo.LogUpdate(t, slot, bal, t.UpdateAt(slot, bal, storage.Float(t.Field(slot, bal).F-o.Amount)))
	e.Undo.LogUpdate(t, slot, ytd, t.UpdateAt(slot, ytd, storage.Float(t.Field(slot, ytd).F+o.Amount)))
	e.Undo.LogUpdate(t, slot, cnt, t.UpdateAt(slot, cnt, storage.Int(t.Field(slot, cnt).I+1)))
	e.Charge(e.Costs.RecordUpdate)
	return nil
}

// InsertHistory appends the payment history row. CRef identifies the
// customer: the id when selected by id, or -(lastNum+1) when selected by
// last name — the split execution of Figure 4d runs this op in parallel
// with the customer scan, so the resolved id is not available; every
// mode stores the same selector form to keep end states comparable.
type InsertHistory struct {
	W, D   int
	CW, CD int
	CRef   int64
	Amount float64
}

func (o *InsertHistory) Warehouse() int { return o.W }
func (o *InsertHistory) Class() Class   { return ClassHistory }

// Locks: history is append-only with a fresh key; nothing to lock.
func (o *InsertHistory) Locks() []cc.Resource { return nil }

// Run appends the row through the partition's slab: history is
// insert-only and never point-looked-up or deleted, so it skips the
// primary index entirely and carves its row out of a block allocation —
// the per-transaction history insert costs no steady-state allocation
// (scans, row counts and the TPC-C consistency checks see slab rows
// exactly like keyed ones).
func (o *InsertHistory) Run(e *Exec) error {
	p := e.DB.Partition(o.W)
	t := p.TableByID(tpcc.THistoryID)
	row := p.Slab().NewRow(6)
	row[0] = storage.Int(o.CRef)
	row[1] = storage.Int(int64(o.CD))
	row[2] = storage.Int(int64(o.CW))
	row[3] = storage.Int(int64(o.D))
	row[4] = storage.Int(int64(o.W))
	row[5] = storage.Float(o.Amount)
	slot := t.Append(row)
	e.Undo.LogAppend(t, slot)
	e.Charge(e.Costs.RecordInsert)
	return nil
}

// ---- New-order operations (TPC-C §2.4) ----

// InsertOrder performs the home-warehouse part of new-order: bump
// d_next_o_id, insert the orders / new_order rows, and insert one
// order_line per item (reading the replicated item table for prices).
// Invalid items abort.
type InsertOrder struct {
	W, D, C int
	Lines   []tpcc.NewOrderLine
	Year    int64
}

func (o *InsertOrder) Warehouse() int { return o.W }
func (o *InsertOrder) Class() Class   { return ClassOrder }

// Locks: the district row (d_next_o_id counter); inserted rows are
// invisible until commit.
func (o *InsertOrder) Locks() []cc.Resource {
	return []cc.Resource{{Table: tpcc.TDistrict, Key: tpcc.DistrictKey(o.W, o.D)}}
}
func (o *InsertOrder) Run(e *Exec) error {
	p := e.DB.Partition(o.W)
	dt := p.TableByID(tpcc.TDistrictID)
	slot, ok := dt.Lookup(tpcc.DistrictKey(o.W, o.D))
	e.Charge(e.Costs.IndexLookup)
	if !ok {
		panic(fmt.Sprintf("oltp: district %d/%d missing", o.W, o.D))
	}
	const nextCol = tpcc.ColDNextOID
	oid := dt.Field(slot, nextCol).I
	e.Undo.LogUpdate(dt, slot, nextCol, dt.UpdateAt(slot, nextCol, storage.Int(oid+1)))
	e.Charge(e.Costs.RecordUpdate)

	it := p.TableByID(tpcc.TItemID)
	ot := p.TableByID(tpcc.TOrdersID)
	if _, err := ot.Insert(tpcc.OrderKey(o.W, o.D, oid), storage.Row{
		storage.Int(int64(o.W)), storage.Int(int64(o.D)), storage.Int(oid),
		storage.Int(int64(o.C)), storage.Int(o.Year), storage.Int(0),
		storage.Int(int64(len(o.Lines))),
	}); err != nil {
		panic(err)
	}
	e.Undo.LogInsert(ot, tpcc.OrderKey(o.W, o.D, oid))
	e.Charge(e.Costs.RecordInsert)

	not := p.TableByID(tpcc.TNewOrderID)
	if _, err := not.Insert(tpcc.NewOrderKey(o.W, o.D, oid), storage.Row{
		storage.Int(int64(o.W)), storage.Int(int64(o.D)), storage.Int(oid),
	}); err != nil {
		panic(err)
	}
	e.Undo.LogInsert(not, tpcc.NewOrderKey(o.W, o.D, oid))
	e.Charge(e.Costs.RecordInsert)

	olt := p.TableByID(tpcc.TOrderLineID)
	for i, l := range o.Lines {
		if l.Item < 0 {
			e.Charge(e.Costs.IndexLookup) // the failed item probe
			return ErrAbort
		}
		islot, ok := it.Lookup(tpcc.ItemKey(l.Item))
		e.Charge(e.Costs.IndexLookup)
		if !ok {
			return ErrAbort
		}
		price := it.Field(islot, tpcc.ColIPrice).F
		e.Charge(e.Costs.RecordRead)
		key := tpcc.OrderLineKey(o.W, o.D, oid, i+1)
		if _, err := olt.Insert(key, storage.Row{
			storage.Int(int64(o.W)), storage.Int(int64(o.D)), storage.Int(oid),
			storage.Int(int64(i + 1)), storage.Int(int64(l.Item)),
			storage.Int(int64(l.SupplyW)), storage.Int(int64(l.Qty)),
			storage.Float(price * float64(l.Qty)),
		}); err != nil {
			panic(err)
		}
		e.Undo.LogInsert(olt, key)
		e.Charge(e.Costs.RecordInsert)
	}
	return nil
}

// UpdateStock decrements stock quantities at one supply warehouse for the
// lines it supplies.
type UpdateStock struct {
	SupplyW int
	Lines   []tpcc.NewOrderLine // only lines with SupplyW == this warehouse
}

func (o *UpdateStock) Warehouse() int { return o.SupplyW }
func (o *UpdateStock) Class() Class   { return ClassStock }
func (o *UpdateStock) Locks() []cc.Resource {
	out := make([]cc.Resource, 0, len(o.Lines))
	for _, l := range o.Lines {
		if l.Item >= 0 {
			out = append(out, cc.Resource{Table: tpcc.TStock, Key: tpcc.StockKey(o.SupplyW, l.Item)})
		}
	}
	return out
}
func (o *UpdateStock) Run(e *Exec) error {
	t := e.DB.Partition(o.SupplyW).TableByID(tpcc.TStockID)
	const qCol, yCol, cCol = tpcc.ColSQuantity, tpcc.ColSYTD, tpcc.ColSOrderCnt
	for _, l := range o.Lines {
		if l.Item < 0 {
			continue // aborting txns never reach here in AnyDB; baseline aborts earlier
		}
		slot, ok := t.Lookup(tpcc.StockKey(o.SupplyW, l.Item))
		e.Charge(e.Costs.IndexLookup)
		if !ok {
			panic(fmt.Sprintf("oltp: stock %d/%d missing", o.SupplyW, l.Item))
		}
		q := t.Field(slot, qCol).I - int64(l.Qty)
		if q < 10 {
			q += 91
		}
		e.Undo.LogUpdate(t, slot, qCol, t.UpdateAt(slot, qCol, storage.Int(q)))
		e.Undo.LogUpdate(t, slot, yCol, t.UpdateAt(slot, yCol, storage.Int(t.Field(slot, yCol).I+int64(l.Qty))))
		e.Undo.LogUpdate(t, slot, cCol, t.UpdateAt(slot, cCol, storage.Int(t.Field(slot, cCol).I+1)))
		e.Charge(e.Costs.RecordUpdate)
	}
	return nil
}

// ---- Program builder: Figure 4a's logical disaggregation ----

// orderYear is the o_entry_d stamped on runtime-inserted orders; keeping
// it above the CH query's date filter means HTAP analytics see fresh
// orders.
const orderYear = 2019

// Program converts a generated transaction into its ordered operation
// list.
func Program(t tpcc.Txn) []Op { return ProgramAppend(nil, &t) }

// paymentProgram holds the four payment ops in one block, so building a
// payment program costs one allocation instead of four boxed ops — and
// with the pool below, zero in steady state. The block's lifecycle is
// tied to the segments carrying its ops: refs counts the segments the
// dispatcher routed; each freeSegment decrements it and the last one
// recycles the block (see pool.go). Blocks built outside the dispatch
// path (Program, the DBx1000 baseline, WAL replay) are simply never
// freed and fall back to the GC like every other missed pool free.
type paymentProgram struct {
	w    UpdateWarehouseYTD
	d    UpdateDistrictYTD
	c    PayCustomer
	h    InsertHistory
	refs atomic.Int32
}

// ProgramAppend appends the transaction's ordered operation list to ops
// (which may be a reused scratch slice) and returns it. The returned
// ops reference freshly built operation values; the input transaction
// is not retained beyond its Lines slices.
func ProgramAppend(ops []Op, t *tpcc.Txn) []Op {
	ops, _ = programInto(ops, t, nil)
	return ops
}

// programInto is ProgramAppend plus the pooled payment block the ops
// were carved from (nil for new-order programs, whose op shapes vary).
// The dispatcher uses it to set the block's segment refcount and thread
// the block through the segments for recycling. pools, when non-nil, is
// the dispatching AC's free-list set for the program block.
func programInto(ops []Op, t *tpcc.Txn, pools *Pools) ([]Op, *paymentProgram) {
	switch t.Kind {
	case tpcc.TxnPayment:
		p := t.Payment
		cref := int64(p.C)
		if p.ByLast {
			cref = -int64(p.Last) - 1
		}
		pp := pools.getProg()
		pp.w = UpdateWarehouseYTD{W: p.W, Amount: p.Amount}
		pp.d = UpdateDistrictYTD{W: p.W, D: p.D, Amount: p.Amount}
		pp.c = PayCustomer{W: p.CW, D: p.CD, C: p.C, ByLast: p.ByLast, Last: p.Last, Amount: p.Amount}
		pp.h = InsertHistory{W: p.W, D: p.D, CW: p.CW, CD: p.CD, CRef: cref, Amount: p.Amount}
		return append(ops, &pp.w, &pp.d, &pp.c, &pp.h), pp
	case tpcc.TxnNewOrder:
		no := t.NewOrder
		ops = append(ops, &InsertOrder{W: no.W, D: no.D, C: no.C, Lines: no.Lines, Year: orderYear})
		// Group lines by supply warehouse in first-seen order. Orders
		// have at most a handful of lines, so the quadratic scan beats
		// a map.
		for i, l := range no.Lines {
			dup := false
			for j := 0; j < i; j++ {
				if no.Lines[j].SupplyW == l.SupplyW {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			var lines []tpcc.NewOrderLine
			for j := i; j < len(no.Lines); j++ {
				if no.Lines[j].SupplyW == l.SupplyW {
					lines = append(lines, no.Lines[j])
				}
			}
			ops = append(ops, &UpdateStock{SupplyW: l.SupplyW, Lines: lines})
		}
		return ops, nil
	default:
		panic("oltp: unknown transaction kind")
	}
}

// Valid pre-validates a transaction the way AnyDB's dispatcher does
// (Calvin-style reconnaissance): new-order item ids are checked against
// the replicated item catalog before any event is dispatched, so
// distributed execution never needs cross-AC undo. It returns false for
// the §2.4.1.4 rollback case.
func Valid(t *tpcc.Txn) bool {
	if t.Kind != tpcc.TxnNewOrder {
		return true
	}
	for _, l := range t.NewOrder.Lines {
		if l.Item < 0 {
			return false
		}
	}
	return true
}

package oltp

import (
	"fmt"
	"sync/atomic"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Policy selects how a dispatcher lays a transaction's event stream over
// the ACs — the paper's routing strategies:
//
//   - SharedNothing (Fig. 4b): all operations of a transaction aggregate
//     into per-warehouse segments routed to the partition owners. Full
//     locality, classic inter-transaction parallelism.
//   - NaiveIntra (Fig. 4c): every operation is its own event, farmed out
//     to a different AC by record class. Conservative admission — one
//     transaction in flight per home warehouse — keeps conflicting
//     schedules serial, which is why per-event overhead dominates.
//   - PreciseIntra (Fig. 4d): two balanced sub-sequences — the brief
//     updates, and the long customer scan — pipelined across two ACs.
//   - StreamingCC (§3.3): per-record-class segments stamped by a
//     sequencer; executors apply conflicting operations in stamp order,
//     transactions pipeline freely, a dedicated coordinator commits.
type Policy uint8

const (
	SharedNothing Policy = iota
	NaiveIntra
	PreciseIntra
	StreamingCC
)

var policyNames = [...]string{"shared-nothing", "naive-intra", "precise-intra", "streaming-cc"}

func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Routes carries the routing tables a dispatcher needs. Owner is always
// required; ClassRoute powers the intra-transaction policies; Seq and
// Coord power streaming CC.
type Routes struct {
	// Owner maps a partition (warehouse) to the AC owning it.
	Owner func(partition int) core.ACID
	// ClassRoute maps (warehouse, record class) to the executing AC for
	// fine-grained policies. nil falls back to Owner.
	ClassRoute func(w int, c Class) core.ACID
	// Seq is the sequencer AC (streaming CC only).
	Seq core.ACID
	// Coord is the commit coordinator AC; NoAC embeds coordination in
	// the dispatcher.
	Coord core.ACID
}

// CommandLog is the durable command log a dispatcher writes ahead of
// dispatch (wal.Logger implements it; the interface lives here to avoid
// an import cycle — wal imports oltp for replay). Append buffers one
// record; Flush makes the open group durable with one device sync.
type CommandLog interface {
	Append(txn *tpcc.Txn) (uint64, error)
	Flush() error
}

// Dispatcher is the behavior of an AC acting as the transaction entry
// point (the "QO" role for OLTP in Figure 4): it logically disaggregates
// the transaction into operations, groups them into segments per the
// policy, and routes the event stream. It also embeds commit
// coordination unless Routes.Coord redirects acks elsewhere.
type Dispatcher struct {
	DB *storage.Database
	// Pools is the hosting AC's free-list set for events, segments,
	// acks, and program blocks; it is shared with the Executor (and any
	// Coordinator) registered on the same AC, so under aggregated
	// routing the get/free cycle of a local transaction never touches a
	// sync.Pool. nil (simulation runtime) uses the globals.
	Pools *Pools
	// cfg holds the active policy and routing atomically, so the engine
	// can reroute at runtime (the paper's zero-downtime architecture
	// shift) while AC goroutines dispatch concurrently.
	cfg atomic.Pointer[DispatchConfig]

	// Log, when set, makes admission write-ahead: a transaction's
	// command record must be durable before any of its segments
	// dispatch, so effects never precede the log and recovery replays
	// exactly the prefix whose effects may exist. Strict flushes per
	// transaction; otherwise admitted transactions park in logq until
	// the batch-end FlushBatch group-commits them (one fsync per AC
	// drain cycle).
	Log    CommandLog
	Strict bool
	logq   []queuedTxn
	// logErr latches the first log failure: the durability plane is
	// fail-stop, so every later admission fails fast with it.
	logErr error

	pending map[core.TxnID]int
	// failed poisons transactions that received a synthetic failure ack
	// (a segment lost to a dead member).
	failed map[core.TxnID]error
	// Naive-mode admission: one transaction in flight per home
	// warehouse; the rest queue here.
	busy   map[int]bool
	queued map[int][]queuedTxn
	homeOf map[core.TxnID]int

	// win accumulates the telemetry window (adaptation signals); it is
	// only touched from this dispatcher's event handlers.
	win sigWindow

	// ops and groups are dispatch scratch, reused across transactions
	// (a dispatcher runs on exactly one AC). Segments copy out of them,
	// so the steady-state dispatch path allocates only the program ops.
	ops    []Op
	groups []segGroup

	// Committed and Aborted are written on the dispatcher's AC
	// goroutine and may be read concurrently by harness code, so they
	// are atomic counters.
	Committed metrics.Counter
	Aborted   metrics.Counter
}

type queuedTxn struct {
	id     core.TxnID
	txn    *tpcc.Txn
	client any
}

// segGroup accumulates the ops routed to one destination AC.
type segGroup struct {
	dst core.ACID
	ops []Op
}

// DispatchConfig pairs a policy with its routing tables.
type DispatchConfig struct {
	Policy Policy
	Routes Routes
}

// NewDispatcher returns a dispatcher for the given policy.
func NewDispatcher(policy Policy, db *storage.Database, routes Routes) *Dispatcher {
	d := &Dispatcher{
		DB:      db,
		pending: make(map[core.TxnID]int),
		failed:  make(map[core.TxnID]error),
		busy:    make(map[int]bool),
		queued:  make(map[int][]queuedTxn),
		homeOf:  make(map[core.TxnID]int),
	}
	d.cfg.Store(&DispatchConfig{Policy: policy, Routes: routes})
	return d
}

// SetConfig atomically swaps policy and routes for subsequent
// transactions; in-flight work completes under the old routing.
func (d *Dispatcher) SetConfig(policy Policy, routes Routes) {
	d.cfg.Store(&DispatchConfig{Policy: policy, Routes: routes})
}

// Config returns the active configuration.
func (d *Dispatcher) Config() DispatchConfig { return *d.cfg.Load() }

// SetTelemetry enables signal reporting toward the adaptation
// controller. Install before the engine starts delivering events.
func (d *Dispatcher) SetTelemetry(t Telemetry) { d.win.SetTelemetry(t) }

// OnEvent implements core.Behavior for EvTxn and EvAck.
func (d *Dispatcher) OnEvent(ctx core.Context, ac *core.AC, ev *core.Event) {
	cfg := d.cfg.Load()
	switch ev.Kind {
	case core.EvTxn:
		txn, ok := ev.Payload.(*tpcc.Txn)
		if !ok {
			panic("oltp: EvTxn payload must be *tpcc.Txn")
		}
		id, client := ev.Txn, ev.Client
		// The envelope is dead once admission has the txn (queued
		// admissions keep the payload, never the event).
		d.Pools.FreeEvent(ev)
		d.admit(ctx, cfg, id, txn, client)
	case core.EvAck:
		d.onAck(ctx, cfg, ev)
	default:
		panic(fmt.Sprintf("oltp: dispatcher got %v", ev.Kind))
	}
}

func (d *Dispatcher) admit(ctx core.Context, cfg *DispatchConfig, id core.TxnID, txn *tpcc.Txn, client any) {
	ctx.Charge(ctx.Costs().TxnBegin)
	// Reconnaissance (Calvin-style): validate new-order items against
	// the replicated catalog before dispatching anything, so routed
	// segments never need distributed undo — and, under durability,
	// before logging anything, so replay never re-executes an abort.
	if txn.Kind == tpcc.TxnNewOrder {
		ctx.Charge(ctx.Costs().IndexLookup * sim.Time(len(txn.NewOrder.Lines)))
		if !Valid(txn) {
			d.failTxn(ctx, cfg, id, txn, client, nil)
			return
		}
	}
	if d.Log == nil {
		d.admitChecked(ctx, cfg, id, txn, client)
		return
	}
	// Write-ahead: the command record precedes any dispatch.
	if d.logErr != nil {
		d.failTxn(ctx, cfg, id, txn, client, d.logErr)
		return
	}
	if _, err := d.Log.Append(txn); err != nil {
		d.logErr = err
		d.failTxn(ctx, cfg, id, txn, client, err)
		return
	}
	if d.Strict {
		if err := d.Log.Flush(); err != nil {
			d.logErr = err
			d.failTxn(ctx, cfg, id, txn, client, err)
			return
		}
		d.admitChecked(ctx, cfg, id, txn, client)
		return
	}
	// Group commit: park until the batch-end fsync releases the group.
	d.logq = append(d.logq, queuedTxn{id: id, txn: txn, client: client})
}

// admitChecked is admission past reconnaissance and durability:
// telemetry, naive-mode serialization, dispatch.
func (d *Dispatcher) admitChecked(ctx core.Context, cfg *DispatchConfig, id core.TxnID, txn *tpcc.Txn, client any) {
	if d.win.tel.Enabled {
		d.win.observeAdmit(txn.HomeWarehouse(), crossPartition(txn))
		d.win.maybeFlush(ctx, cfg.Policy)
	}
	if cfg.Policy == NaiveIntra {
		home := txn.HomeWarehouse()
		if d.busy[home] {
			// The op program is compiled lazily at dispatch, so a
			// queued transaction holds one pointer, not a slice.
			d.queued[home] = append(d.queued[home], queuedTxn{id: id, txn: txn, client: client})
			return
		}
		d.busy[home] = true
		d.homeOf[id] = home
	}
	d.dispatch(ctx, cfg, id, txn, client)
}

// failTxn completes a transaction as aborted before it dispatched:
// reconnaissance rejection (err nil) or a durability failure (err set,
// surfaced on the DoneInfo so the submitter's Wait sees a typed error).
func (d *Dispatcher) failTxn(ctx core.Context, cfg *DispatchConfig, id core.TxnID, txn *tpcc.Txn, client any, err error) {
	ctx.Charge(ctx.Costs().TxnCommit) // abort bookkeeping
	d.Aborted.Inc()
	d.win.observeAbort()
	d.win.maybeFlush(ctx, cfg.Policy)
	home := txn.HomeWarehouse()
	tpcc.FreeTxn(txn)
	sendTxnDone(ctx, d.Pools, id, false, home, client, err)
}

// FlushBatch is the AC's batch-end hook (core.AC.OnBatchEnd) under
// group-commit durability: one fsync makes every transaction admitted
// during the drain batch durable, then their segments dispatch. If the
// flush fails, the whole group fails — no segment of an unlogged
// transaction ever executes.
func (d *Dispatcher) FlushBatch(ctx core.Context) {
	if len(d.logq) == 0 {
		return
	}
	err := d.Log.Flush()
	q := d.logq
	cfg := d.cfg.Load()
	if err != nil {
		d.logErr = err
		for i := range q {
			d.failTxn(ctx, cfg, q[i].id, q[i].txn, q[i].client, err)
			q[i] = queuedTxn{}
		}
		d.logq = q[:0]
		return
	}
	for i := range q {
		d.admitChecked(ctx, cfg, q[i].id, q[i].txn, q[i].client)
		q[i] = queuedTxn{}
	}
	d.logq = q[:0]
}

// dispatch groups the transaction's operations by destination AC and
// emits the segment events. Grouping runs over the dispatcher's scratch
// buffers with a linear destination scan (a transaction routes to a
// handful of ACs at most); the pooled segments copy their ops out, so
// the scratch is free for the next transaction immediately.
func (d *Dispatcher) dispatch(ctx core.Context, cfg *DispatchConfig, id core.TxnID, txn *tpcc.Txn, client any) {
	var prog *paymentProgram
	d.ops, prog = programInto(d.ops[:0], txn, d.Pools)
	// The transaction parameters are fully compiled into the op program
	// now; the txn itself dies here and is recycled for the next
	// submission (both runtimes inject pooled txns).
	tpcc.FreeTxn(txn)
	groups := d.groups
	ng := 0
	for _, op := range d.ops {
		dst := route(cfg, op)
		gi := -1
		for i := 0; i < ng; i++ {
			if groups[i].dst == dst {
				gi = i
				break
			}
		}
		if gi < 0 {
			if ng < len(groups) {
				groups[ng].dst = dst
				groups[ng].ops = groups[ng].ops[:0]
			} else {
				groups = append(groups, segGroup{dst: dst})
			}
			gi = ng
			ng++
		}
		groups[gi].ops = append(groups[gi].ops, op)
	}
	d.groups = groups

	coord := cfg.Routes.Coord
	if coord == core.NoAC {
		coord = ctx.Self()
	}
	total := ng
	// Arm the program block's segment refcount before any segment can
	// possibly execute (sends are outboxed until this handler returns,
	// but arming first keeps the invariant local and obvious).
	if prog != nil {
		prog.refs.Store(int32(ng))
	}
	if cfg.Policy == StreamingCC {
		batch := &core.SeqBatch{Events: make([]core.Outbound, 0, ng)}
		for i := 0; i < ng; i++ {
			batch.Events = append(batch.Events, core.Outbound{
				Dst: groups[i].dst,
				Ev:  d.segmentEvent(id, groups[i].ops, coord, total, client, prog),
			})
		}
		seq := d.Pools.GetEvent()
		seq.Kind, seq.Txn, seq.Payload = core.EvSeqStamp, id, batch
		ctx.Send(cfg.Routes.Seq, seq)
		return
	}
	for i := 0; i < ng; i++ {
		ctx.Send(groups[i].dst, d.segmentEvent(id, groups[i].ops, coord, total, client, prog))
	}
}

// segmentEvent builds one pooled EvSegment event owning a copy of ops.
func (d *Dispatcher) segmentEvent(id core.TxnID, ops []Op, coord core.ACID, total int, client any, prog *paymentProgram) *core.Event {
	seg := d.Pools.getSegment()
	seg.Ops = append(seg.Ops[:0], ops...)
	seg.Coord, seg.Total, seg.Client, seg.Prog = coord, total, client, prog
	ev := d.Pools.GetEvent()
	ev.Kind, ev.Txn, ev.Payload, ev.Size = core.EvSegment, id, seg, seg.wireSize()
	return ev
}

// sendTxnDone emits the pooled EvTxnDone completion toward the client;
// the consumer of the event frees the DoneInfo (FreeDoneInfo). Shared
// by the dispatcher-embedded and dedicated-coordinator commit paths.
// client is the submitter's completion token, handed back untouched.
// The DoneInfo itself stays on the global pool (it dies client-side),
// but the envelope comes from the AC's free lists: the real runtime
// frees client-bound envelopes synchronously on the sending AC's
// goroutine, so the event returns to the same lists.
func sendTxnDone(ctx core.Context, pools *Pools, id core.TxnID, committed bool, home int, client any, err error) {
	done := GetDoneInfo()
	done.Committed, done.Home, done.Client, done.Err = committed, home, client, err
	ev := pools.GetEvent()
	ev.Kind, ev.Txn, ev.Payload = core.EvTxnDone, id, done
	ctx.Send(core.ClientAC, ev)
}

// route picks the destination AC for one op under the current policy.
func route(cfg *DispatchConfig, op Op) core.ACID {
	switch cfg.Policy {
	case SharedNothing:
		return cfg.Routes.Owner(op.Warehouse())
	default:
		if cfg.Routes.ClassRoute != nil {
			return cfg.Routes.ClassRoute(op.Warehouse(), op.Class())
		}
		return cfg.Routes.Owner(op.Warehouse())
	}
}

func (d *Dispatcher) onAck(ctx core.Context, cfg *DispatchConfig, ev *core.Event) {
	id, ackHome, client, err, done := takeAck(ctx, d.Pools, d.pending, d.failed, ev)
	if !done {
		return
	}
	ctx.Charge(ctx.Costs().TxnCommit)
	if err != nil {
		// Some segments were lost to a dead member: the transaction's
		// effects are partial on the surviving copy, and the submitter
		// sees a typed failure instead of a hang.
		d.Aborted.Inc()
		d.win.observeAbort()
		d.win.maybeFlush(ctx, cfg.Policy)
		sendTxnDone(ctx, d.Pools, id, false, ackHome, client, err)
	} else {
		d.Committed.Inc()
		d.win.observeCommit(false)
		sendTxnDone(ctx, d.Pools, id, true, ackHome, client, nil)
	}
	// Naive admission: release the home warehouse and start the next
	// queued transaction.
	if cfg.Policy == NaiveIntra {
		home, ok := d.homeOf[id]
		if !ok {
			return
		}
		delete(d.homeOf, id)
		q := d.queued[home]
		if len(q) == 0 {
			d.busy[home] = false
			return
		}
		next := q[0]
		d.queued[home] = q[1:]
		d.homeOf[next.id] = home
		d.dispatch(ctx, cfg, next.id, next.txn, next.client)
	}
}

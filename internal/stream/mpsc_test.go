package stream

import (
	"sort"
	"sync"
	"testing"
)

func TestMPSCBasic(t *testing.T) {
	q := NewMPSC[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 10; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

// TestMPSCConcurrentProducers checks that no element is lost or duplicated
// with several producers, and that per-producer order is preserved.
func TestMPSCConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 20000
	q := NewMPSC[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}
	got := make([]int, 0, producers*perProducer)
	lastPer := make(map[int]int) // producer -> last value seen
	donech := make(chan struct{})
	go func() { wg.Wait(); close(donech) }()
	for {
		v, ok := q.Pop()
		if ok {
			p := v / perProducer
			if last, seen := lastPer[p]; seen && v <= last {
				t.Errorf("producer %d order violated: %d after %d", p, v, last)
			}
			lastPer[p] = v
			got = append(got, v)
			if len(got) == producers*perProducer {
				break
			}
			continue
		}
		select {
		case <-donech:
			// producers finished; drain whatever is left
			for {
				v, ok := q.Pop()
				if !ok {
					break
				}
				got = append(got, v)
			}
			if len(got) != producers*perProducer {
				t.Fatalf("lost elements: got %d, want %d", len(got), producers*perProducer)
			}
			goto verify
		default:
		}
	}
verify:
	sort.Ints(got)
	for i, v := range got {
		if v != i {
			t.Fatalf("element set corrupted at %d: %d", i, v)
		}
	}
}

func TestMailboxSendRecv(t *testing.T) {
	m := NewMailbox[string]()
	m.Send("x")
	m.Send("y")
	if v, ok := m.Recv(); !ok || v != "x" {
		t.Fatalf("Recv = (%q,%v), want (x,true)", v, ok)
	}
	if v, ok := m.TryRecv(); !ok || v != "y" {
		t.Fatalf("TryRecv = (%q,%v), want (y,true)", v, ok)
	}
	if _, ok := m.TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
}

func TestMailboxBlockingRecv(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan int)
	go func() {
		v, _ := m.Recv()
		done <- v
	}()
	m.Send(42)
	if v := <-done; v != 42 {
		t.Fatalf("blocking Recv = %d, want 42", v)
	}
}

func TestMailboxClose(t *testing.T) {
	m := NewMailbox[int]()
	m.Send(1)
	m.Close()
	if m.Send(2) {
		t.Fatal("Send succeeded on closed mailbox")
	}
	if v, ok := m.Recv(); !ok || v != 1 {
		t.Fatalf("Recv after close = (%d,%v), want (1,true)", v, ok)
	}
	if _, ok := m.Recv(); ok {
		t.Fatal("Recv on closed drained mailbox succeeded")
	}
	m.Close() // idempotent
}

func TestMailboxCloseWakesReceiver(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan bool)
	go func() {
		_, ok := m.Recv()
		done <- ok
	}()
	m.Close()
	if ok := <-done; ok {
		t.Fatal("Recv returned ok=true on closed empty mailbox")
	}
}

// TestMailboxStress hammers a mailbox from many producers while the
// consumer counts; every sent element must arrive exactly once.
func TestMailboxStress(t *testing.T) {
	const producers = 4
	const perProducer = 25000
	m := NewMailbox[int]()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				m.Send(1)
			}
		}()
	}
	go func() { wg.Wait(); m.Close() }()
	total := 0
	for {
		v, ok := m.Recv()
		if !ok {
			break
		}
		total += v
	}
	if total != producers*perProducer {
		t.Fatalf("received %d, want %d", total, producers*perProducer)
	}
}

func BenchmarkMPSCPushPop(b *testing.B) {
	q := NewMPSC[int]()
	for i := 0; i < b.N; i++ {
		q.Push(i)
		q.Pop()
	}
}

func BenchmarkMailboxSendRecv(b *testing.B) {
	m := NewMailbox[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			m.Recv()
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(i)
	}
	<-done
}

// Package stream provides the queue primitives that carry event and data
// streams between AnyComponents.
//
// The paper's prototype uses Folly's single-producer/single-consumer queue
// for local data beaming (footnote 1). SPSC is the equivalent here: a
// bounded lock-free ring buffer built on sync/atomic. MPSC is an unbounded
// multi-producer queue used for AC inboxes, and Mailbox adds blocking
// receive on top of it.
package stream

import (
	"sync/atomic"
)

// cacheLinePad separates hot atomics so producer and consumer do not
// false-share a cache line.
type cacheLinePad struct{ _ [64]byte }

// SPSC is a bounded lock-free single-producer/single-consumer ring buffer.
// Exactly one goroutine may call the producer methods (TryPush, Close) and
// exactly one goroutine may call the consumer methods (TryPop). The zero
// value is not usable; create instances with NewSPSC.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_ cacheLinePad
	// head is the next slot to pop (owned by the consumer, read by the
	// producer to detect fullness).
	head atomic.Uint64
	// cachedHead is the producer's last-seen head, avoiding an atomic
	// load on every push.
	cachedHead uint64

	_ cacheLinePad
	// tail is the next slot to push (owned by the producer, read by the
	// consumer to detect emptiness).
	tail atomic.Uint64
	// cachedTail is the consumer's last-seen tail.
	cachedTail uint64

	_      cacheLinePad
	closed atomic.Bool
}

// NewSPSC returns an SPSC ring with capacity rounded up to the next power
// of two (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	n := uint64(2)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns an instantaneous element count. It is only advisory under
// concurrency.
func (q *SPSC[T]) Len() int {
	t := q.tail.Load()
	h := q.head.Load()
	return int(t - h)
}

// TryPush appends v and reports whether there was room. Producer-only.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.cachedHead >= uint64(len(q.buf)) {
		q.cachedHead = q.head.Load()
		if t-q.cachedHead >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// TryPop removes the oldest element. Consumer-only. The second result is
// false when the queue is currently empty.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	h := q.head.Load()
	if h == q.cachedTail {
		q.cachedTail = q.tail.Load()
		if h == q.cachedTail {
			return zero, false
		}
	}
	v := q.buf[h&q.mask]
	q.buf[h&q.mask] = zero // release for GC
	q.head.Store(h + 1)
	return v, true
}

// Close marks the queue closed. Elements already queued can still be
// popped; Closed combined with an empty queue means end-of-stream.
func (q *SPSC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close was called.
func (q *SPSC[T]) Closed() bool { return q.closed.Load() }

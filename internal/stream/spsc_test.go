package stream

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", q.Cap())
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed on non-full queue", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("TryPush succeeded on full queue")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on drained queue succeeded")
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024},
	} {
		if got := NewSPSC[int](tc.ask).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](2)
	for i := 0; i < 1000; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestSPSCClose(t *testing.T) {
	q := NewSPSC[string](4)
	q.TryPush("a")
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if v, ok := q.TryPop(); !ok || v != "a" {
		t.Fatal("queued element lost after Close")
	}
}

// TestSPSCConcurrentFIFO streams a long sequence through a tiny ring and
// checks that order and content survive concurrent producer/consumer.
// The spin loops yield explicitly: callers of TryPush/TryPop are expected
// to back off (as Mailbox does), and on a single-CPU machine a tight
// spin would otherwise starve the peer until the next preemption slice.
func TestSPSCConcurrentFIFO(t *testing.T) {
	const n = 50000
	q := NewSPSC[int](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; {
			if q.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	for want := 0; want < n; {
		if v, ok := q.TryPop(); ok {
			if v != want {
				t.Errorf("out of order: got %d, want %d", v, want)
				break
			}
			want++
		} else {
			runtime.Gosched()
		}
	}
	wg.Wait()
}

// TestSPSCQuickSequences drives random push/pop interleavings against a
// slice-based reference implementation.
func TestSPSCQuickSequences(t *testing.T) {
	check := func(ops []bool, vals []int) bool {
		q := NewSPSC[int](4)
		var ref []int
		vi := 0
		for _, push := range ops {
			if push {
				v := 0
				if vi < len(vals) {
					v = vals[vi]
					vi++
				}
				pushed := q.TryPush(v)
				if pushed != (len(ref) < q.Cap()) {
					return false
				}
				if pushed {
					ref = append(ref, v)
				}
			} else {
				v, ok := q.TryPop()
				if ok != (len(ref) > 0) {
					return false
				}
				if ok {
					if v != ref[0] {
						return false
					}
					ref = ref[1:]
				}
			}
		}
		return q.Len() == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSPSCHop(b *testing.B) {
	q := NewSPSC[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		got := 0
		for got < b.N {
			if _, ok := q.TryPop(); ok {
				got++
			} else {
				runtime.Gosched()
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; {
		if q.TryPush(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}

func BenchmarkChannelHop(b *testing.B) {
	ch := make(chan int, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			<-ch
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch <- i
	}
	<-done
}

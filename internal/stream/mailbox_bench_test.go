package stream

import (
	"testing"
)

// BenchmarkQueueComparison is the Folly-substitute ablation (DESIGN.md
// §2): how do the three local stream carriers compare for one
// producer/one consumer hops? Run with:
//
//	go test -bench QueueComparison ./internal/stream
func BenchmarkQueueComparison(b *testing.B) {
	b.Run("spsc", func(b *testing.B) {
		q := NewSPSC[int](4096)
		for i := 0; i < b.N; i++ {
			if !q.TryPush(i) {
				q.TryPop()
				q.TryPush(i)
			}
			q.TryPop()
		}
	})
	b.Run("mpsc", func(b *testing.B) {
		q := NewMPSC[int]()
		for i := 0; i < b.N; i++ {
			q.Push(i)
			q.Pop()
		}
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 4096)
		for i := 0; i < b.N; i++ {
			ch <- i
			<-ch
		}
	})
	b.Run("mailbox", func(b *testing.B) {
		m := NewMailbox[int]()
		for i := 0; i < b.N; i++ {
			m.Send(i)
			m.TryRecv()
		}
	})
}

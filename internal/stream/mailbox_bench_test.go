package stream

import (
	"sync"
	"testing"
)

// BenchmarkEventPlane measures the mailbox hot path the AC runtime rides
// on: per-message send/recv versus chunked SendBatch/RecvBatch, and the
// contended multi-producer case. The batched variants should show the
// amortization (allocs/op and wakeups divided by the chunk size):
//
//	go test -bench EventPlane -benchmem ./internal/stream
func BenchmarkEventPlane(b *testing.B) {
	const chunk = 64
	b.Run("send-recv", func(b *testing.B) {
		b.ReportAllocs()
		m := NewMailbox[int]()
		for i := 0; i < b.N; i++ {
			m.Send(i)
			m.TryRecv()
		}
	})
	b.Run("sendbatch-recvbatch", func(b *testing.B) {
		b.ReportAllocs()
		m := NewMailbox[int]()
		out := make([]int, chunk)
		in := make([]int, chunk)
		for i := 0; i < b.N; i += chunk {
			m.SendBatch(out)
			for drained := 0; drained < chunk; {
				n, _ := m.RecvBatch(in)
				drained += n
			}
		}
	})
	b.Run("mpsc-4-producers", func(b *testing.B) {
		b.ReportAllocs()
		m := NewMailbox[int]()
		const producers = 4
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				batch := make([]int, chunk)
				for i := p; i < b.N; i += producers * chunk {
					m.SendBatch(batch)
				}
			}(p)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			buf := make([]int, 256)
			for {
				if _, ok := m.RecvBatch(buf); !ok {
					return
				}
			}
		}()
		wg.Wait()
		m.Close()
		<-done
	})
}

// BenchmarkQueueComparison is the Folly-substitute ablation (DESIGN.md
// §2): how do the three local stream carriers compare for one
// producer/one consumer hops? Run with:
//
//	go test -bench QueueComparison ./internal/stream
func BenchmarkQueueComparison(b *testing.B) {
	b.Run("spsc", func(b *testing.B) {
		q := NewSPSC[int](4096)
		for i := 0; i < b.N; i++ {
			if !q.TryPush(i) {
				q.TryPop()
				q.TryPush(i)
			}
			q.TryPop()
		}
	})
	b.Run("mpsc", func(b *testing.B) {
		q := NewMPSC[int]()
		for i := 0; i < b.N; i++ {
			q.Push(i)
			q.Pop()
		}
	})
	b.Run("channel", func(b *testing.B) {
		ch := make(chan int, 4096)
		for i := 0; i < b.N; i++ {
			ch <- i
			<-ch
		}
	})
	b.Run("mailbox", func(b *testing.B) {
		m := NewMailbox[int]()
		for i := 0; i < b.N; i++ {
			m.Send(i)
			m.TryRecv()
		}
	})
}

package stream

import (
	"sync/atomic"
)

// Mailbox is an unbounded multi-producer inbox with blocking receive,
// built from an MPSC queue plus a wakeup channel. It is the delivery
// mechanism for AC event and data streams in the goroutine runtime: many
// upstream components push, one AC goroutine drains.
//
// Close is idempotent and may be called by any goroutine; after Close,
// Recv drains the remaining elements and then reports closed.
type Mailbox[T any] struct {
	q      *MPSC[T]
	wake   chan struct{}
	closed atomic.Bool
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	return &Mailbox[T]{q: NewMPSC[T](), wake: make(chan struct{}, 1)}
}

// Send enqueues v and wakes the receiver. Send on a closed mailbox is a
// no-op (the element is dropped), mirroring delivery to a failed AC.
func (m *Mailbox[T]) Send(v T) bool {
	if m.closed.Load() {
		return false
	}
	m.q.Push(v)
	m.signal()
	return true
}

func (m *Mailbox[T]) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// TryRecv returns the next element without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) { return m.q.Pop() }

// Recv blocks until an element is available or the mailbox is closed and
// drained. The second result is false only in the closed-and-drained case.
func (m *Mailbox[T]) Recv() (T, bool) {
	for {
		if v, ok := m.q.Pop(); ok {
			return v, true
		}
		if m.closed.Load() {
			// Final drain: producers may have pushed between the
			// failed Pop and the closed check.
			if v, ok := m.q.Pop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		<-m.wake
	}
}

// Len returns the approximate queue length.
func (m *Mailbox[T]) Len() int { return m.q.Len() }

// Close marks the mailbox closed and wakes the receiver.
func (m *Mailbox[T]) Close() {
	if m.closed.CompareAndSwap(false, true) {
		m.signal()
	}
}

// Closed reports whether Close was called.
func (m *Mailbox[T]) Closed() bool { return m.closed.Load() }

package stream

import (
	"runtime"
	"sync/atomic"
)

// Mailbox is an unbounded multi-producer inbox with blocking receive,
// built from an MPSC queue plus a wakeup channel. It is the delivery
// mechanism for AC event and data streams in the goroutine runtime: many
// upstream components push, one AC goroutine drains. Batched variants
// (SendBatch/RecvBatch) amortize the per-message node and wakeup cost.
//
// Close is idempotent and may be called by any goroutine. Close versus
// Send is deterministic (drain-or-reject): every Send/SendBatch that
// returns true is visible to the receiver before Recv/RecvBatch reports
// closed — the final drain waits out producers that passed the closed
// check before Close landed — and every Send after that returns false
// and delivers nothing. No element is ever stranded in the queue.
type Mailbox[T any] struct {
	q      *MPSC[T]
	wake   chan struct{}
	closed atomic.Bool
	// sending counts producers inside Send/SendBatch. The closed-side
	// drain waits for it to reach zero, which makes close-vs-push
	// deterministic: a producer that saw closed==false completes its
	// push before the final drain, one that didn't rejects.
	sending atomic.Int64
}

// NewMailbox returns an empty open mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	return &Mailbox[T]{q: NewMPSC[T](), wake: make(chan struct{}, 1)}
}

// Send enqueues v and wakes the receiver. Send on a closed mailbox is a
// no-op (the element is dropped), mirroring delivery to a failed AC.
// A true return guarantees the receiver observes v before it observes
// the mailbox as closed-and-drained.
func (m *Mailbox[T]) Send(v T) bool {
	m.sending.Add(1)
	if m.closed.Load() {
		m.sending.Add(-1)
		return false
	}
	m.q.Push(v)
	m.sending.Add(-1)
	m.signal()
	return true
}

// SendBatch enqueues all of vs in order with one queue publish and one
// wakeup — the per-message cost of the event plane amortized across a
// chunk. vs is copied; the caller may reuse it immediately. Like Send,
// it is all-or-nothing: true means every element is visible to the
// receiver before closed-and-drained, false (closed) means none are.
func (m *Mailbox[T]) SendBatch(vs []T) bool {
	if len(vs) == 0 {
		return true
	}
	m.sending.Add(1)
	if m.closed.Load() {
		m.sending.Add(-1)
		return false
	}
	m.q.PushBatch(vs)
	m.sending.Add(-1)
	m.signal()
	return true
}

func (m *Mailbox[T]) signal() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// TryRecv returns the next element without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) { return m.q.Pop() }

// Recv blocks until an element is available or the mailbox is closed and
// drained. The second result is false only in the closed-and-drained case.
func (m *Mailbox[T]) Recv() (T, bool) {
	for {
		if v, ok := m.q.Pop(); ok {
			return v, true
		}
		if m.closed.Load() {
			// Final drain: wait out producers that passed the closed
			// check before Close landed (their pushes are part of the
			// drain-or-reject guarantee), then take what they left.
			m.awaitSenders()
			if v, ok := m.q.Pop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		<-m.wake
	}
}

// RecvBatch blocks until at least one element is available, moves up to
// len(buf) elements into buf, and returns the count. It returns (0,
// false) only once the mailbox is closed and fully drained. One wakeup
// can deliver a whole chunk — the consumer-side half of the amortized
// event plane.
func (m *Mailbox[T]) RecvBatch(buf []T) (int, bool) {
	for {
		if n := m.q.PopMany(buf); n > 0 {
			return n, true
		}
		if m.closed.Load() {
			m.awaitSenders()
			if n := m.q.PopMany(buf); n > 0 {
				return n, true
			}
			return 0, false
		}
		<-m.wake
	}
}

// awaitSenders spins until no producer is mid-push. Only called after
// closed is set; the window between a producer's closed check and its
// push is a handful of instructions, so this never spins long.
func (m *Mailbox[T]) awaitSenders() {
	for m.sending.Load() > 0 {
		runtime.Gosched()
	}
}

// Len returns the approximate queue length.
func (m *Mailbox[T]) Len() int { return m.q.Len() }

// Close marks the mailbox closed and wakes the receiver. It is
// idempotent. Sends that already returned true remain receivable
// (drain-or-reject; see the type comment).
func (m *Mailbox[T]) Close() {
	if m.closed.CompareAndSwap(false, true) {
		m.signal()
	}
}

// Closed reports whether Close was called.
func (m *Mailbox[T]) Closed() bool { return m.closed.Load() }

package stream

import (
	"sync"
	"sync/atomic"
)

// mpscNode is a link in the MPSC queue. Nodes are heap allocated; Go's GC
// makes the classic Vyukov design safe without hazard pointers. Popped
// nodes are recycled through a per-queue pool, so a steady-state
// push/pop cycle allocates nothing.
type mpscNode[T any] struct {
	next atomic.Pointer[mpscNode[T]]
	val  T
}

// MPSC is an unbounded lock-free multi-producer/single-consumer queue
// (Vyukov intrusive design). Any number of goroutines may Push; exactly
// one goroutine may Pop. Create instances with NewMPSC.
type MPSC[T any] struct {
	head atomic.Pointer[mpscNode[T]] // producers swap here
	_    cacheLinePad
	tail *mpscNode[T] // consumer-owned
	size atomic.Int64
	// nodes recycles retired nodes between the consumer (which frees
	// them as the tail advances) and producers (which reuse them in
	// Push). Recycling a node is safe the moment the tail moves past
	// it: the only other writer of a node is the single producer that
	// swapped it out of head, and that write (next) must already be
	// visible for the tail to advance at all.
	nodes sync.Pool
}

// NewMPSC returns an empty queue.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	stub := &mpscNode[T]{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

func (q *MPSC[T]) newNode(v T) *mpscNode[T] {
	if n, ok := q.nodes.Get().(*mpscNode[T]); ok {
		n.next.Store(nil)
		n.val = v
		return n
	}
	return &mpscNode[T]{val: v}
}

// retire recycles a node the tail has advanced past. Its val was already
// zeroed when the element was popped.
func (q *MPSC[T]) retire(n *mpscNode[T]) { q.nodes.Put(n) }

// Push appends v. Safe for concurrent producers; never blocks.
func (q *MPSC[T]) Push(v T) {
	n := q.newNode(v)
	prev := q.head.Swap(n)
	// Between the Swap and this Store the queue is momentarily
	// disconnected; Pop observes that as "empty" and retries later,
	// which preserves linearizability of the push.
	prev.next.Store(n)
	q.size.Add(1)
}

// PushBatch appends all of vs in order as one operation: the chunk's
// nodes come from a single block allocation (amortizing the per-message
// node cost), are linked privately, and become visible to the consumer
// with one publish — so a batch costs one allocation and two atomic
// stores regardless of length. Safe for concurrent producers; elements
// of concurrent batches do not interleave. vs is copied; the caller may
// reuse it immediately.
func (q *MPSC[T]) PushBatch(vs []T) {
	switch len(vs) {
	case 0:
		return
	case 1:
		q.Push(vs[0])
		return
	}
	block := make([]mpscNode[T], len(vs))
	for i := range vs {
		block[i].val = vs[i]
		if i > 0 {
			block[i-1].next.Store(&block[i])
		}
	}
	first, last := &block[0], &block[len(vs)-1]
	prev := q.head.Swap(last)
	prev.next.Store(first)
	q.size.Add(int64(len(vs)))
}

// Pop removes the oldest element. Consumer-only. Returns false when the
// queue is (momentarily) empty.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	next := q.tail.next.Load()
	if next == nil {
		return zero, false
	}
	old := q.tail
	q.tail = next
	v := next.val
	next.val = zero
	q.retire(old)
	q.size.Add(-1)
	return v, true
}

// PopMany removes up to len(buf) oldest elements into buf and returns
// how many it moved. Consumer-only; one traversal, nodes recycled as it
// goes. Returns 0 when the queue is (momentarily) empty.
func (q *MPSC[T]) PopMany(buf []T) int {
	var zero T
	n := 0
	for n < len(buf) {
		next := q.tail.next.Load()
		if next == nil {
			break
		}
		old := q.tail
		q.tail = next
		buf[n] = next.val
		next.val = zero
		q.retire(old)
		n++
	}
	if n > 0 {
		q.size.Add(-int64(n))
	}
	return n
}

// Len returns the approximate number of queued elements.
func (q *MPSC[T]) Len() int { return int(q.size.Load()) }

package stream

import (
	"sync/atomic"
)

// mpscNode is a link in the MPSC queue. Nodes are heap allocated; Go's GC
// makes the classic Vyukov design safe without hazard pointers.
type mpscNode[T any] struct {
	next atomic.Pointer[mpscNode[T]]
	val  T
}

// MPSC is an unbounded lock-free multi-producer/single-consumer queue
// (Vyukov intrusive design). Any number of goroutines may Push; exactly
// one goroutine may Pop. Create instances with NewMPSC.
type MPSC[T any] struct {
	head atomic.Pointer[mpscNode[T]] // producers swap here
	_    cacheLinePad
	tail *mpscNode[T] // consumer-owned
	size atomic.Int64
}

// NewMPSC returns an empty queue.
func NewMPSC[T any]() *MPSC[T] {
	q := &MPSC[T]{}
	stub := &mpscNode[T]{}
	q.head.Store(stub)
	q.tail = stub
	return q
}

// Push appends v. Safe for concurrent producers; never blocks.
func (q *MPSC[T]) Push(v T) {
	n := &mpscNode[T]{val: v}
	prev := q.head.Swap(n)
	// Between the Swap and this Store the queue is momentarily
	// disconnected; Pop observes that as "empty" and retries later,
	// which preserves linearizability of the push.
	prev.next.Store(n)
	q.size.Add(1)
}

// Pop removes the oldest element. Consumer-only. Returns false when the
// queue is (momentarily) empty.
func (q *MPSC[T]) Pop() (T, bool) {
	var zero T
	next := q.tail.next.Load()
	if next == nil {
		return zero, false
	}
	q.tail = next
	v := next.val
	next.val = zero
	q.size.Add(-1)
	return v, true
}

// Len returns the approximate number of queued elements.
func (q *MPSC[T]) Len() int { return int(q.size.Load()) }

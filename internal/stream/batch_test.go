package stream

import (
	"sync"
	"sync/atomic"
	"testing"
)

// item tags a message with its producer and per-producer sequence so the
// consumer can verify FIFO order and exactly-once delivery.
type item struct {
	producer int
	seq      int
}

// TestMPSCPushBatchOrder checks that batches keep their internal order
// and do not interleave with other pushes from the same producer.
func TestMPSCPushBatchOrder(t *testing.T) {
	q := NewMPSC[int]()
	q.Push(1)
	q.PushBatch([]int{2, 3, 4})
	q.Push(5)
	q.PushBatch(nil)
	q.PushBatch([]int{6})
	buf := make([]int, 4)
	if n := q.PopMany(buf); n != 4 || buf[0] != 1 || buf[1] != 2 || buf[2] != 3 || buf[3] != 4 {
		t.Fatalf("PopMany = %d %v", n, buf)
	}
	if v, ok := q.Pop(); !ok || v != 5 {
		t.Fatalf("Pop = %d %v", v, ok)
	}
	if n := q.PopMany(buf); n != 1 || buf[0] != 6 {
		t.Fatalf("PopMany = %d %v", n, buf)
	}
	if n := q.PopMany(buf); n != 0 {
		t.Fatalf("drained queue returned %d", n)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

// TestMailboxBatchStress drives many concurrent producers issuing an
// interleaved mix of Send and SendBatch at a single RecvBatch consumer,
// with a Close landing mid-stream. It asserts the drain-or-reject
// guarantee: every message whose send reported true arrives exactly
// once, in per-producer FIFO order, and no message arrives twice or out
// of nowhere. Run under -race this is the batch plane's memory-model
// test as well.
func TestMailboxBatchStress(t *testing.T) {
	const (
		producers = 8
		perProd   = 4000
		batchMax  = 7
	)
	m := NewMailbox[item]()

	// accepted[p][seq] records sends that returned true; sent counts
	// them for the mid-stream Close trigger below.
	accepted := make([][]bool, producers)
	var sent atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		accepted[p] = make([]bool, perProd)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			batch := make([]item, 0, batchMax)
			seq := 0
			flush := func() {
				if len(batch) == 0 {
					return
				}
				if m.SendBatch(batch) {
					for _, it := range batch {
						accepted[p][it.seq] = true
					}
					sent.Add(int64(len(batch)))
				}
				batch = batch[:0]
			}
			for seq < perProd {
				// Interleave singles and batches of varying size.
				if seq%(batchMax+2) == 0 {
					if m.Send(item{p, seq}) {
						accepted[p][seq] = true
						sent.Add(1)
					}
					seq++
					continue
				}
				n := 1 + seq%batchMax
				for i := 0; i < n && seq < perProd; i++ {
					batch = append(batch, item{p, seq})
					seq++
				}
				flush()
			}
			flush()
		}(p)
	}

	// Close mid-stream from yet another goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for sent.Load() < producers*perProd/4 {
			// Let roughly a quarter of the load through first.
		}
		m.Close()
	}()

	// Single consumer drains in chunks until closed-and-drained.
	got := make([][]int, producers)
	buf := make([]item, 64)
	for {
		n, ok := m.RecvBatch(buf)
		if !ok {
			break
		}
		for _, it := range buf[:n] {
			got[it.producer] = append(got[it.producer], it.seq)
		}
	}
	wg.Wait()

	for p := 0; p < producers; p++ {
		seen := make([]bool, perProd)
		last := -1
		for _, seq := range got[p] {
			if seen[seq] {
				t.Fatalf("producer %d: message %d delivered twice", p, seq)
			}
			seen[seq] = true
			if seq <= last {
				t.Fatalf("producer %d: FIFO violated (%d after %d)", p, seq, last)
			}
			last = seq
		}
		for seq := 0; seq < perProd; seq++ {
			if accepted[p][seq] && !seen[seq] {
				t.Fatalf("producer %d: accepted message %d lost", p, seq)
			}
			if !accepted[p][seq] && seen[seq] {
				t.Fatalf("producer %d: rejected message %d delivered", p, seq)
			}
		}
	}
}

// TestMailboxCloseRejectsAfterDrain pins the documented guarantee on the
// closed side: once Recv reported closed-and-drained, no Send succeeds.
func TestMailboxCloseRejectsAfterDrain(t *testing.T) {
	m := NewMailbox[int]()
	if !m.Send(1) {
		t.Fatal("send on open mailbox failed")
	}
	m.Close()
	if v, ok := m.Recv(); !ok || v != 1 {
		t.Fatalf("Recv = %d %v, want pre-close element", v, ok)
	}
	if _, ok := m.Recv(); ok {
		t.Fatal("Recv after drain should report closed")
	}
	if m.Send(2) {
		t.Fatal("Send after closed-and-drained must reject")
	}
	if m.SendBatch([]int{3, 4}) {
		t.Fatal("SendBatch after closed-and-drained must reject")
	}
	if n, ok := m.RecvBatch(make([]int, 4)); ok || n != 0 {
		t.Fatalf("RecvBatch on drained mailbox = %d %v", n, ok)
	}
}

// TestMailboxRecvBatchBlocks checks RecvBatch wakes on a later send.
func TestMailboxRecvBatchBlocks(t *testing.T) {
	m := NewMailbox[int]()
	done := make(chan []int)
	go func() {
		buf := make([]int, 8)
		n, ok := m.RecvBatch(buf)
		if !ok {
			t.Error("RecvBatch reported closed on open mailbox")
		}
		done <- append([]int(nil), buf[:n]...)
	}()
	m.SendBatch([]int{7, 8, 9})
	got := <-done
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("RecvBatch = %v", got)
	}
	m.Close()
}

package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError is a syntax error with the byte offset it occurred at.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sql: %s at position %d", e.Msg, e.Pos)
}

func errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// AggKind enumerates the aggregate of a select item (AggNone for a
// plain column reference).
type AggKind uint8

const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[string]AggKind{
	"COUNT": AggCount, "SUM": AggSum, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

func (a AggKind) String() string {
	switch a {
	case AggNone:
		return "none"
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("AggKind(%d)", uint8(a))
}

// SelectItem is one output expression: a column reference (possibly
// "table.col" qualified) or an aggregate over one. COUNT(*) has an
// empty Col.
type SelectItem struct {
	Agg AggKind
	Col string
	Pos int // byte offset, for resolution error messages
}

// OrderItem is one ORDER BY term; it must match a select item (same
// aggregate and column).
type OrderItem struct {
	Agg  AggKind
	Col  string
	Desc bool
	Pos  int
}

// Query is the parsed logical form:
//
//	SELECT item[, item...]          item := col | COUNT(*) | SUM(col) | MIN | MAX | AVG
//	FROM table [[INNER] JOIN table ON a.x = b.y [AND ...]]...
//	[WHERE col op literal [AND ...]]
//	[GROUP BY col[, col...]]
//	[ORDER BY item [ASC|DESC][, ...]]
//	[LIMIT n]
//
// Predicates support =, <, >, <=, >=, <> on numbers and strings, plus
// LIKE 'prefix%'.
type Query struct {
	Items   []SelectItem
	Tables  []string // in FROM/JOIN order
	Joins   []JoinCond
	Filters []Filter
	GroupBy []string
	OrderBy []OrderItem
	Limit   int // -1 when absent
}

// Aggregated reports whether any select item aggregates.
func (q *Query) Aggregated() bool {
	for _, it := range q.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// JoinCond is one equi-join edge between two tables' columns.
type JoinCond struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// CmpOp enumerates filter comparisons.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpLt
	OpGt
	OpLe
	OpGe
	OpNe
	OpLikePrefix
)

var opNames = map[string]CmpOp{
	"=": OpEq, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe, "<>": OpNe,
}

// Filter is one single-table predicate.
type Filter struct {
	Table, Col string // Table may be empty until resolution
	Op         CmpOp
	IsStr      bool
	Str        string
	Num        float64
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) peekIs(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return errAt(t.pos, "expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return errAt(t.pos, "expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected identifier, got %q", t.text)
	}
	return t.text, nil
}

// Parse parses one SELECT statement. Errors are *ParseError carrying
// the byte offset of the offending token.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{Limit: -1}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	for {
		it, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, it)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t0, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.Tables = append(q.Tables, t0)

	for p.peekIs("JOIN") || p.peekIs("INNER") {
		if p.next().text == "INNER" {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, tn)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		// ON conditions: a.x = b.y [AND a.z = b.w]...
		for {
			jc, err := p.joinCond()
			if err != nil {
				return nil, err
			}
			q.Joins = append(q.Joins, jc)
			if p.peekIs("AND") && p.isJoinCondAhead() {
				p.next()
				continue
			}
			break
		}
	}

	if p.peekIs("WHERE") {
		p.next()
		for {
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
			if p.peekIs("AND") {
				p.next()
				continue
			}
			break
		}
	}

	if p.peekIs("GROUP") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.peekIs("ORDER") {
		p.next()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			pos := p.peek().pos
			it, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Agg: it.Agg, Col: it.Col, Pos: pos}
			if p.peekIs("ASC") {
				p.next()
			} else if p.peekIs("DESC") {
				p.next()
				oi.Desc = true
			}
			q.OrderBy = append(q.OrderBy, oi)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if p.peekIs("LIMIT") {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, errAt(t.pos, "expected LIMIT count, got %q", t.text)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, errAt(t.pos, "bad LIMIT count %q", t.text)
		}
		q.Limit = n
	}

	if t := p.peek(); t.kind != tokEOF {
		return nil, errAt(t.pos, "trailing input %q", t.text)
	}
	return q, nil
}

// selectItem parses col | COUNT(*) | SUM(col) | MIN(col) | MAX(col) |
// AVG(col).
func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		if agg, ok := aggNames[t.text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return SelectItem{}, err
			}
			var col string
			if agg == AggCount {
				if err := p.expectSymbol("*"); err != nil {
					return SelectItem{}, err
				}
			} else {
				c, err := p.qualifiedName()
				if err != nil {
					return SelectItem{}, err
				}
				col = c
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: agg, Col: col, Pos: t.pos}, nil
		}
	}
	col, err := p.qualifiedName()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col, Pos: t.pos}, nil
}

// qualifiedName parses ident[.ident] and returns "table.col" or "col".
func (p *parser) qualifiedName() (string, error) {
	a, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		b, err := p.ident()
		if err != nil {
			return "", err
		}
		return a + "." + b, nil
	}
	return a, nil
}

// isJoinCondAhead distinguishes `AND a.x = b.y` (join condition, both
// sides qualified columns) from `AND col = 5` (filter) without consuming
// tokens.
func (p *parser) isJoinCondAhead() bool {
	// tokens: AND ident . ident cmp ident . ident
	j := p.i + 1 // skip AND
	isQualified := func(k int) (int, bool) {
		if p.toks[k].kind != tokIdent {
			return k, false
		}
		if p.toks[k+1].kind == tokSymbol && p.toks[k+1].text == "." {
			if p.toks[k+2].kind != tokIdent {
				return k, false
			}
			return k + 3, true
		}
		return k, false
	}
	j2, ok := isQualified(j)
	if !ok {
		return false
	}
	if !(p.toks[j2].kind == tokSymbol && p.toks[j2].text == "=") {
		return false
	}
	_, ok = isQualified(j2 + 1)
	return ok
}

func (p *parser) joinCond() (JoinCond, error) {
	var jc JoinCond
	pos := p.peek().pos
	l, err := p.qualifiedName()
	if err != nil {
		return jc, err
	}
	if err := p.expectSymbol("="); err != nil {
		return jc, err
	}
	r, err := p.qualifiedName()
	if err != nil {
		return jc, err
	}
	lt, lc, ok1 := splitQualified(l)
	rt, rc, ok2 := splitQualified(r)
	if !ok1 || !ok2 {
		return jc, errAt(pos, "join condition requires qualified columns, got %s = %s", l, r)
	}
	return JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc}, nil
}

func splitQualified(s string) (table, col string, ok bool) {
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return "", s, false
	}
	return s[:i], s[i+1:], true
}

func (p *parser) filter() (Filter, error) {
	var f Filter
	name, err := p.qualifiedName()
	if err != nil {
		return f, err
	}
	if t, c, ok := splitQualified(name); ok {
		f.Table, f.Col = t, c
	} else {
		f.Col = name
	}
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "=":
		f.Op = OpEq
	case t.kind == tokCompare:
		f.Op = opNames[t.text]
	case t.kind == tokKeyword && t.text == "LIKE":
		f.Op = OpLikePrefix
	default:
		return f, errAt(t.pos, "expected comparison, got %q", t.text)
	}
	v := p.next()
	switch v.kind {
	case tokNumber:
		if f.Op == OpLikePrefix {
			return f, errAt(v.pos, "LIKE requires a string")
		}
		n, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return f, errAt(v.pos, "bad number %q", v.text)
		}
		f.Num = n
	case tokString:
		f.IsStr = true
		f.Str = v.text
		if f.Op == OpLikePrefix {
			if !strings.HasSuffix(v.text, "%") || strings.Contains(strings.TrimSuffix(v.text, "%"), "%") {
				return f, errAt(v.pos, "only prefix LIKE ('abc%%') is supported")
			}
			f.Str = strings.TrimSuffix(v.text, "%")
		}
	default:
		return f, errAt(v.pos, "expected literal, got %q", v.text)
	}
	return f, nil
}

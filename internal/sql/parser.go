package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is the parsed logical form:
//
//	SELECT COUNT(*) | col[, col...]
//	FROM table [JOIN table ON a.x = b.y]...
//	[WHERE col op literal [AND ...]]
//
// Predicates support =, <, >, <=, >=, <> on numbers and strings, plus
// LIKE 'prefix%'.
type Query struct {
	Count   bool     // COUNT(*) aggregate
	Columns []string // projection when Count is false
	Tables  []string // in FROM/JOIN order
	Joins   []JoinCond
	Filters []Filter
}

// JoinCond is one equi-join edge between two tables' columns.
type JoinCond struct {
	LeftTable, LeftCol   string
	RightTable, RightCol string
}

// CmpOp enumerates filter comparisons.
type CmpOp uint8

const (
	OpEq CmpOp = iota
	OpLt
	OpGt
	OpLe
	OpGe
	OpNe
	OpLikePrefix
)

var opNames = map[string]CmpOp{
	"=": OpEq, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe, "<>": OpNe,
}

// Filter is one single-table predicate.
type Filter struct {
	Table, Col string // Table may be empty until resolution
	Op         CmpOp
	IsStr      bool
	Str        string
	Num        float64
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("sql: expected %s at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectSymbol(s string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != s {
		return fmt.Errorf("sql: expected %q at %d, got %q", s, t.pos, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier at %d, got %q", t.pos, t.text)
	}
	return t.text, nil
}

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.peek().kind == tokKeyword && p.peek().text == "COUNT" {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		q.Count = true
	} else {
		for {
			col, err := p.qualifiedName()
			if err != nil {
				return nil, err
			}
			q.Columns = append(q.Columns, col)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t0, err := p.ident()
	if err != nil {
		return nil, err
	}
	q.Tables = append(q.Tables, t0)

	for p.peek().kind == tokKeyword && (p.peek().text == "JOIN" || p.peek().text == "INNER") {
		if p.next().text == "INNER" {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		}
		tn, err := p.ident()
		if err != nil {
			return nil, err
		}
		q.Tables = append(q.Tables, tn)
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		// ON conditions: a.x = b.y [AND a.z = b.w]...
		for {
			jc, err := p.joinCond()
			if err != nil {
				return nil, err
			}
			q.Joins = append(q.Joins, jc)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" &&
				p.isJoinCondAhead() {
				p.next()
				continue
			}
			break
		}
	}

	if p.peek().kind == tokKeyword && p.peek().text == "WHERE" {
		p.next()
		for {
			f, err := p.filter()
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
			if p.peek().kind == tokKeyword && p.peek().text == "AND" {
				p.next()
				continue
			}
			break
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", t.pos, t.text)
	}
	return q, nil
}

// qualifiedName parses ident[.ident] and returns "table.col" or "col".
func (p *parser) qualifiedName() (string, error) {
	a, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.peek().kind == tokSymbol && p.peek().text == "." {
		p.next()
		b, err := p.ident()
		if err != nil {
			return "", err
		}
		return a + "." + b, nil
	}
	return a, nil
}

// isJoinCondAhead distinguishes `AND a.x = b.y` (join condition, both
// sides qualified columns) from `AND col = 5` (filter) without consuming
// tokens.
func (p *parser) isJoinCondAhead() bool {
	// tokens: AND ident . ident cmp ident . ident
	j := p.i + 1 // skip AND
	isQualified := func(k int) (int, bool) {
		if p.toks[k].kind != tokIdent {
			return k, false
		}
		if p.toks[k+1].kind == tokSymbol && p.toks[k+1].text == "." {
			if p.toks[k+2].kind != tokIdent {
				return k, false
			}
			return k + 3, true
		}
		return k, false
	}
	j2, ok := isQualified(j)
	if !ok {
		return false
	}
	if !(p.toks[j2].kind == tokSymbol && p.toks[j2].text == "=") {
		return false
	}
	_, ok = isQualified(j2 + 1)
	return ok
}

func (p *parser) joinCond() (JoinCond, error) {
	var jc JoinCond
	l, err := p.qualifiedName()
	if err != nil {
		return jc, err
	}
	if err := p.expectSymbol("="); err != nil {
		return jc, err
	}
	r, err := p.qualifiedName()
	if err != nil {
		return jc, err
	}
	lt, lc, ok1 := splitQualified(l)
	rt, rc, ok2 := splitQualified(r)
	if !ok1 || !ok2 {
		return jc, fmt.Errorf("sql: join condition requires qualified columns, got %s = %s", l, r)
	}
	return JoinCond{LeftTable: lt, LeftCol: lc, RightTable: rt, RightCol: rc}, nil
}

func splitQualified(s string) (table, col string, ok bool) {
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return "", s, false
	}
	return s[:i], s[i+1:], true
}

func (p *parser) filter() (Filter, error) {
	var f Filter
	name, err := p.qualifiedName()
	if err != nil {
		return f, err
	}
	if t, c, ok := splitQualified(name); ok {
		f.Table, f.Col = t, c
	} else {
		f.Col = name
	}
	t := p.next()
	switch {
	case t.kind == tokSymbol && t.text == "=":
		f.Op = OpEq
	case t.kind == tokCompare:
		f.Op = opNames[t.text]
	case t.kind == tokKeyword && t.text == "LIKE":
		f.Op = OpLikePrefix
	default:
		return f, fmt.Errorf("sql: expected comparison at %d, got %q", t.pos, t.text)
	}
	v := p.next()
	switch v.kind {
	case tokNumber:
		if f.Op == OpLikePrefix {
			return f, fmt.Errorf("sql: LIKE requires a string at %d", v.pos)
		}
		n, err := strconv.ParseFloat(v.text, 64)
		if err != nil {
			return f, fmt.Errorf("sql: bad number at %d: %v", v.pos, err)
		}
		f.Num = n
	case tokString:
		f.IsStr = true
		f.Str = v.text
		if f.Op == OpLikePrefix {
			if !strings.HasSuffix(v.text, "%") || strings.Contains(strings.TrimSuffix(v.text, "%"), "%") {
				return f, fmt.Errorf("sql: only prefix LIKE ('abc%%') is supported")
			}
			f.Str = strings.TrimSuffix(v.text, "%")
		}
	default:
		return f, fmt.Errorf("sql: expected literal at %d, got %q", v.pos, v.text)
	}
	return f, nil
}

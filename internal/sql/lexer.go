// Package sql is a small SQL front end for the analytical side of the
// public API: SELECT with COUNT(*) or a projection, inner equi-joins,
// and AND-composed predicates — enough to express the paper's query
// family textually. The parser produces a logical query that
// internal/plan compiles into the same scan/join/aggregate event-stream
// program the hand-built plans use.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . * =
	tokCompare // < > <= >= <>
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords uppercased, identifiers lowercased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"AND": true, "COUNT": true, "LIKE": true, "AS": true, "INNER": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sql: unterminated string at %d", i)
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: i})
			}
			i = j
		case c == '<' || c == '>':
			j := i + 1
			if j < len(input) && (input[j] == '=' || (c == '<' && input[j] == '>')) {
				j++
			}
			toks = append(toks, token{kind: tokCompare, text: input[i:j], pos: i})
			i = j
		case strings.ContainsRune("(),.*=", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// Package sql is a small SQL front end for the analytical side of the
// public API: SELECT over columns and aggregates (COUNT/SUM/MIN/MAX/
// AVG), inner equi-joins, AND-composed predicates, GROUP BY, ORDER BY
// and LIMIT — enough to express the paper's query family (and its
// CH-benCHmark neighborhood) textually. The parser produces a logical
// query that internal/plan compiles onto the shared-scan operator
// plane; syntax errors are *ParseError values carrying byte offsets.
package sql

import (
	"strings"
	"unicode"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // ( ) , . * =
	tokCompare // < > <= >= <>
	tokKeyword
)

type token struct {
	kind tokKind
	text string // keywords uppercased, identifiers lowercased
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "JOIN": true, "ON": true,
	"AND": true, "COUNT": true, "LIKE": true, "AS": true, "INNER": true,
	"GROUP": true, "BY": true, "ORDER": true, "LIMIT": true,
	"ASC": true, "DESC": true,
	"SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// lex splits the input into tokens.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			j := i + 1
			for j < len(input) && input[j] != '\'' {
				j++
			}
			if j >= len(input) {
				return nil, errAt(i, "unterminated string")
			}
			toks = append(toks, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && (unicode.IsDigit(rune(input[j])) || input[j] == '.') {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tokIdent, text: strings.ToLower(word), pos: i})
			}
			i = j
		case c == '<' || c == '>':
			j := i + 1
			if j < len(input) && (input[j] == '=' || (c == '<' && input[j] == '>')) {
				j++
			}
			toks = append(toks, token{kind: tokCompare, text: input[i:j], pos: i})
			i = j
		case strings.ContainsRune("(),.*=", c):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, errAt(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

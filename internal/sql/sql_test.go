package sql

import (
	"strings"
	"testing"
)

func TestParseCountJoinWhere(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Count {
		t.Fatal("COUNT not detected")
	}
	if len(q.Tables) != 3 || q.Tables[0] != "customer" || q.Tables[2] != "new_order" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	j := q.Joins[0]
	if j.LeftTable != "customer" || j.LeftCol != "c_id" || j.RightTable != "orders" || j.RightCol != "o_c_id" {
		t.Fatalf("join0 = %+v", j)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if q.Filters[0].Op != OpLikePrefix || q.Filters[0].Str != "A" {
		t.Fatalf("LIKE filter = %+v", q.Filters[0])
	}
	if q.Filters[1].Op != OpGe || q.Filters[1].Num != 2007 {
		t.Fatalf("range filter = %+v", q.Filters[1])
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT c_id, customer.c_last FROM customer WHERE c_id < 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Count || len(q.Columns) != 2 || q.Columns[1] != "customer.c_last" {
		t.Fatalf("q = %+v", q)
	}
	if q.Filters[0].Op != OpLt {
		t.Fatal("op")
	}
}

func TestParseMultiConditionJoin(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM a JOIN b ON a.x = b.x AND a.y = b.y WHERE a.z = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	if len(q.Filters) != 1 || q.Filters[0].Table != "a" || q.Filters[0].Col != "z" {
		t.Fatalf("filters = %+v", q.Filters)
	}
}

func TestParseInnerJoinKeyword(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM a INNER JOIN b ON a.x = b.x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Fatalf("tables = %v", q.Tables)
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	q, err := Parse("select count(*) from Customer where C_ID = 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0] != "customer" || q.Filters[0].Col != "c_id" {
		t.Fatalf("case folding broken: %+v", q)
	}
}

func TestParseStringEquality(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM customer WHERE c_credit = 'GC'")
	if err != nil {
		t.Fatal(err)
	}
	f := q.Filters[0]
	if !f.IsStr || f.Str != "GC" || f.Op != OpEq {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT * FROM t",                       // bare * not supported
		"SELECT COUNT(*) FROM",                  // missing table
		"SELECT COUNT(*) FROM t WHERE",          // missing predicate
		"SELECT COUNT(*) FROM t WHERE x LIKE 5", // LIKE needs string
		"SELECT COUNT(*) FROM t WHERE x LIKE '%abc'", // non-prefix LIKE
		"SELECT COUNT(*) FROM t WHERE x = 'unclosed", // bad string
		"SELECT COUNT(*) FROM a JOIN b ON x = b.y",   // unqualified join col
		"SELECT COUNT(*) FROM t WHERE x = 1 garbage", // trailing tokens
		"SELECT COUNT(*) FROM t WHERE x ! 1",         // bad char
		"SELECT COUNT( FROM t",                       // broken count
		"SELECT COUNT(*) FROM a JOIN b",              // missing ON
		"SELECT COUNT(*) FROM t WHERE x = 1.2.3 AND", // bad number then EOF
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("SELECT c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestParseComparisons(t *testing.T) {
	for text, op := range map[string]CmpOp{
		"=": OpEq, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe, "<>": OpNe,
	} {
		q, err := Parse("SELECT COUNT(*) FROM t WHERE x " + text + " 3")
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if q.Filters[0].Op != op {
			t.Fatalf("%s parsed as %v", text, q.Filters[0].Op)
		}
	}
}

func TestParseIsNotPanicky(t *testing.T) {
	// Fuzz-ish: truncations of a valid query must error, never panic.
	full := "SELECT COUNT(*) FROM a JOIN b ON a.x = b.y WHERE a.s LIKE 'Q%' AND b.n >= 7"
	for i := 0; i < len(full); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", full[:i], r)
				}
			}()
			Parse(full[:i])
		}()
	}
	if _, err := Parse(full); err != nil {
		t.Fatalf("full query rejected: %v", err)
	}
	if !strings.Contains(full, "LIKE") {
		t.Fatal("sanity")
	}
}

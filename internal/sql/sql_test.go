package sql

import (
	"errors"
	"strings"
	"testing"
)

func TestParseCountJoinWhere(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 1 || q.Items[0].Agg != AggCount || q.Items[0].Col != "" {
		t.Fatalf("items = %+v", q.Items)
	}
	if !q.Aggregated() {
		t.Fatal("COUNT not detected")
	}
	if len(q.Tables) != 3 || q.Tables[0] != "customer" || q.Tables[2] != "new_order" {
		t.Fatalf("tables = %v", q.Tables)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	j := q.Joins[0]
	if j.LeftTable != "customer" || j.LeftCol != "c_id" || j.RightTable != "orders" || j.RightCol != "o_c_id" {
		t.Fatalf("join0 = %+v", j)
	}
	if len(q.Filters) != 2 {
		t.Fatalf("filters = %+v", q.Filters)
	}
	if q.Filters[0].Op != OpLikePrefix || q.Filters[0].Str != "A" {
		t.Fatalf("LIKE filter = %+v", q.Filters[0])
	}
	if q.Filters[1].Op != OpGe || q.Filters[1].Num != 2007 {
		t.Fatalf("range filter = %+v", q.Filters[1])
	}
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("SELECT c_id, customer.c_last FROM customer WHERE c_id < 10")
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregated() || len(q.Items) != 2 || q.Items[1].Col != "customer.c_last" {
		t.Fatalf("q = %+v", q)
	}
	if q.Filters[0].Op != OpLt {
		t.Fatal("op")
	}
	if q.Limit != -1 {
		t.Fatalf("Limit = %d, want -1 (absent)", q.Limit)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT d_id, COUNT(*), SUM(o_ol_cnt), AVG(o_ol_cnt), MIN(o_id), MAX(orders.o_id) FROM orders GROUP BY d_id")
	if err != nil {
		t.Fatal(err)
	}
	want := []SelectItem{
		{Agg: AggNone, Col: "d_id"},
		{Agg: AggCount, Col: ""},
		{Agg: AggSum, Col: "o_ol_cnt"},
		{Agg: AggAvg, Col: "o_ol_cnt"},
		{Agg: AggMin, Col: "o_id"},
		{Agg: AggMax, Col: "orders.o_id"},
	}
	if len(q.Items) != len(want) {
		t.Fatalf("items = %+v", q.Items)
	}
	for i, w := range want {
		if q.Items[i].Agg != w.Agg || q.Items[i].Col != w.Col {
			t.Fatalf("item %d = %+v, want %+v", i, q.Items[i], w)
		}
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "d_id" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	q, err := Parse("SELECT c_id, c_last FROM customer ORDER BY c_last DESC, c_id LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.OrderBy[0].Col != "c_last" || !q.OrderBy[0].Desc {
		t.Fatalf("order0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Col != "c_id" || q.OrderBy[1].Desc {
		t.Fatalf("order1 = %+v", q.OrderBy[1])
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseOrderByAggregate(t *testing.T) {
	q, err := Parse("SELECT d_id, COUNT(*) FROM orders GROUP BY d_id ORDER BY COUNT(*) DESC, d_id ASC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.OrderBy[0].Agg != AggCount || !q.OrderBy[0].Desc {
		t.Fatalf("order0 = %+v", q.OrderBy[0])
	}
	if q.OrderBy[1].Agg != AggNone || q.OrderBy[1].Col != "d_id" || q.OrderBy[1].Desc {
		t.Fatalf("order1 = %+v", q.OrderBy[1])
	}
}

func TestParseMultiConditionJoin(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM a JOIN b ON a.x = b.x AND a.y = b.y WHERE a.z = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 2 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	if len(q.Filters) != 1 || q.Filters[0].Table != "a" || q.Filters[0].Col != "z" {
		t.Fatalf("filters = %+v", q.Filters)
	}
}

func TestParseInnerJoinKeyword(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM a INNER JOIN b ON a.x = b.x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Fatalf("tables = %v", q.Tables)
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	q, err := Parse("select count(*) from Customer where C_ID = 5 group by C_D_ID order by count(*) limit 2")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tables[0] != "customer" || q.Filters[0].Col != "c_id" || q.GroupBy[0] != "c_d_id" {
		t.Fatalf("case folding broken: %+v", q)
	}
}

func TestParseStringEquality(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM customer WHERE c_credit = 'GC'")
	if err != nil {
		t.Fatal(err)
	}
	f := q.Filters[0]
	if !f.IsStr || f.Str != "GC" || f.Op != OpEq {
		t.Fatalf("filter = %+v", f)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT",
		"SELECT * FROM t",                       // bare * not supported
		"SELECT COUNT(*) FROM",                  // missing table
		"SELECT COUNT(*) FROM t WHERE",          // missing predicate
		"SELECT COUNT(*) FROM t WHERE x LIKE 5", // LIKE needs string
		"SELECT COUNT(*) FROM t WHERE x LIKE '%abc'", // non-prefix LIKE
		"SELECT COUNT(*) FROM t WHERE x = 'unclosed", // bad string
		"SELECT COUNT(*) FROM a JOIN b ON x = b.y",   // unqualified join col
		"SELECT COUNT(*) FROM t WHERE x = 1 garbage", // trailing tokens
		"SELECT COUNT(*) FROM t WHERE x ! 1",         // bad char
		"SELECT COUNT( FROM t",                       // broken count
		"SELECT COUNT(*) FROM a JOIN b",              // missing ON
		"SELECT COUNT(*) FROM t WHERE x = 1.2.3 AND", // bad number then EOF
		"SELECT SUM(*) FROM t",                       // SUM needs a column
		"SELECT SUM(x FROM t",                        // unclosed aggregate
		"SELECT x FROM t GROUP",                      // GROUP without BY
		"SELECT x FROM t GROUP BY",                   // missing group column
		"SELECT x FROM t ORDER x",                    // ORDER without BY
		"SELECT x FROM t ORDER BY",                   // missing order term
		"SELECT x FROM t LIMIT",                      // missing limit count
		"SELECT x FROM t LIMIT x",                    // non-numeric limit
		"SELECT x FROM t LIMIT 1.5",                  // fractional limit
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestParseErrorPositions pins the byte offset reported for a few
// representative syntax errors.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		input string
		pos   int
	}{
		{"SELECT COUNT(*) FROM t WHERE x ! 1", 31},       // bad char at '!'
		{"SELECT COUNT(*) FROM t WHERE x = 1 extra", 35}, // trailing token
		{"SELECT FROM t", 7},                             // missing select item
		{"SELECT x FROM t LIMIT abc", 22},                // bad limit
		{"SELECT x FROM t WHERE y LIKE 'a%b%'", 29},      // bad LIKE pattern
	}
	for _, c := range cases {
		_, err := Parse(c.input)
		if err == nil {
			t.Errorf("accepted %q", c.input)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%q: error %v is not a *ParseError", c.input, err)
			continue
		}
		if pe.Pos != c.pos {
			t.Errorf("%q: error at %d, want %d (%v)", c.input, pe.Pos, c.pos, err)
		}
		if !strings.Contains(err.Error(), "at position") {
			t.Errorf("%q: error text %q lacks position", c.input, err)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lex("SELECT c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "SELECT" || toks[0].kind != tokKeyword {
		t.Fatalf("tok0 = %+v", toks[0])
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
}

func TestParseComparisons(t *testing.T) {
	for text, op := range map[string]CmpOp{
		"=": OpEq, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe, "<>": OpNe,
	} {
		q, err := Parse("SELECT COUNT(*) FROM t WHERE x " + text + " 3")
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		if q.Filters[0].Op != op {
			t.Fatalf("%s parsed as %v", text, q.Filters[0].Op)
		}
	}
}

func TestParseIsNotPanicky(t *testing.T) {
	// Fuzz-ish: truncations of a valid query must error, never panic.
	full := "SELECT d_id, SUM(b.n) FROM a JOIN b ON a.x = b.y WHERE a.s LIKE 'Q%' AND b.n >= 7 GROUP BY d_id ORDER BY SUM(b.n) DESC LIMIT 5"
	for i := 0; i < len(full); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on prefix %q: %v", full[:i], r)
				}
			}()
			Parse(full[:i])
		}()
	}
	if _, err := Parse(full); err != nil {
		t.Fatalf("full query rejected: %v", err)
	}
}

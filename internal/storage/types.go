// Package storage is the in-memory storage substrate: schemas, row heaps,
// hash and B+tree indexes, columnar batches for OLAP data streams,
// partitions, a catalog with table statistics, and per-transaction undo
// logs. It has no opinion about architecture — AnyDB and the DBx1000
// baseline both run on it, which keeps the comparison apples-to-apples.
package storage

import (
	"fmt"
	"strings"
)

// Kind enumerates column types. The subset covers TPC-C and the
// CH-benCHmark query used in the paper's evaluation.
type Kind uint8

const (
	KInt Kind = iota // 64-bit signed integer (also dates, as day numbers)
	KFloat
	KStr
)

func (k Kind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KStr:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a dynamically typed cell. A flat struct (no interface boxing)
// keeps row copies allocation-free on the OLTP hot path.
type Value struct {
	Kind Kind
	I    int64
	F    float64
	S    string
}

// Int, Float and Str construct Values.
func Int(v int64) Value     { return Value{Kind: KInt, I: v} }
func Float(v float64) Value { return Value{Kind: KFloat, F: v} }
func Str(v string) Value    { return Value{Kind: KStr, S: v} }

// Equal reports deep equality (kind and payload).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KInt:
		return v.I == o.I
	case KFloat:
		return v.F == o.F
	default:
		return v.S == o.S
	}
}

// Compare orders two values of the same kind: -1, 0, +1.
func (v Value) Compare(o Value) int {
	switch v.Kind {
	case KInt:
		switch {
		case v.I < o.I:
			return -1
		case v.I > o.I:
			return 1
		}
		return 0
	case KFloat:
		switch {
		case v.F < o.F:
			return -1
		case v.F > o.F:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.S, o.S)
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KFloat:
		return fmt.Sprintf("%g", v.F)
	default:
		return v.S
	}
}

// size returns the approximate wire size of the value in bytes, used to
// model data-stream transfer volume.
func (v Value) size() int64 {
	if v.Kind == KStr {
		return int64(len(v.S)) + 4
	}
	return 8
}

// Row is one record. Rows are copied by value on read so callers can not
// alias the heap.
type Row []Value

// Clone returns a deep-enough copy (Values are value types).
func (r Row) Clone() Row {
	c := make(Row, len(r))
	copy(c, r)
	return c
}

// Size returns the approximate wire size of the row.
func (r Row) Size() int64 {
	var s int64
	for i := range r {
		s += r[i].size()
	}
	return s
}

// Column describes one attribute.
type Column struct {
	Name string
	Kind Kind
}

// TableID is an interned table handle: the dense index a schema gets
// when it is registered with a catalog (and its tables created in each
// partition, in the same order). Hot paths carry the handle instead of
// the table name, so executing an op costs an array index rather than a
// string-keyed map probe.
type TableID int32

// NoTable is the ID of a schema never registered with a catalog.
const NoTable TableID = -1

// Schema describes a table: ordered columns plus the positions that make
// up the primary key (encoded into a single uint64 by the owner).
type Schema struct {
	Name string
	ID   TableID // assigned at catalog registration; NoTable before
	Cols []Column

	byName map[string]int
}

// NewSchema builds a schema and its name lookup.
func NewSchema(name string, cols ...Column) *Schema {
	s := &Schema{Name: name, ID: NoTable, Cols: cols, byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.byName[c.Name]; dup {
			panic("storage: duplicate column " + c.Name + " in " + name)
		}
		s.byName[c.Name] = i
	}
	return s
}

// Col returns the index of the named column, or -1.
func (s *Schema) Col(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustCol is Col but panics on unknown names; used where the schema is
// static and a miss is a programming error.
func (s *Schema) MustCol(name string) int {
	i := s.Col(name)
	if i < 0 {
		panic(fmt.Sprintf("storage: no column %q in table %q", name, s.Name))
	}
	return i
}

// NumCols returns the column count.
func (s *Schema) NumCols() int { return len(s.Cols) }

// Key is a packed primary or secondary key. Composite TPC-C keys pack
// into 64 bits comfortably: 12 bits warehouse, 8 bits district, 44 bits
// entity id.
type Key uint64

// MakeKey packs (warehouse, district, id) into a Key. id must fit 44
// bits.
func MakeKey(w, d int, id int64) Key {
	return Key(uint64(w)<<52 | uint64(d&0xff)<<44 | uint64(id)&((1<<44)-1))
}

// Warehouse, District and ID unpack the key components.
func (k Key) Warehouse() int { return int(k >> 52) }
func (k Key) District() int  { return int(k>>44) & 0xff }
func (k Key) ID() int64      { return int64(k & ((1 << 44) - 1)) }

func (k Key) String() string {
	return fmt.Sprintf("w%d/d%d/%d", k.Warehouse(), k.District(), k.ID())
}

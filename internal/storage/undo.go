package storage

// UndoLog collects inverse operations for one transaction so an abort can
// restore the pre-image. Both engines use it: the DBx1000 baseline rolls
// back on no-wait lock conflicts; AnyDB rolls back on logical aborts
// (e.g. new-order's 1% invalid item).
//
// Entries apply in reverse order, so overlapping updates to the same cell
// restore correctly.
type UndoLog struct {
	entries []undoEntry
}

type undoKind uint8

const (
	undoUpdate undoKind = iota
	undoInsert
	undoAppend
)

type undoEntry struct {
	kind  undoKind
	table *Table
	key   Key // inserts
	slot  int32
	col   int
	old   Value
}

// Len returns the number of recorded operations.
func (u *UndoLog) Len() int { return len(u.entries) }

// LogUpdate records the pre-image of a cell update.
func (u *UndoLog) LogUpdate(t *Table, slot int32, col int, old Value) {
	u.entries = append(u.entries, undoEntry{kind: undoUpdate, table: t, slot: slot, col: col, old: old})
}

// LogInsert records an insert for reversal.
func (u *UndoLog) LogInsert(t *Table, key Key) {
	u.entries = append(u.entries, undoEntry{kind: undoInsert, table: t, key: key})
}

// LogAppend records a keyless append (Table.Append) for reversal.
func (u *UndoLog) LogAppend(t *Table, slot int32) {
	u.entries = append(u.entries, undoEntry{kind: undoAppend, table: t, slot: slot})
}

// Rollback applies the log in reverse and clears it. It returns the
// number of operations undone (the engines charge virtual time per op).
func (u *UndoLog) Rollback() int {
	n := len(u.entries)
	for i := n - 1; i >= 0; i-- {
		e := u.entries[i]
		switch e.kind {
		case undoUpdate:
			e.table.rows[e.slot][e.col] = e.old
		case undoInsert:
			e.table.Delete(e.key)
		case undoAppend:
			e.table.AbortAppend(e.slot)
		}
	}
	clear(u.entries)
	u.entries = u.entries[:0]
	return n
}

// Commit discards the log (nothing to undo anymore). The backing array
// is kept — a reused log allocates only until it has seen its largest
// transaction — but entries are cleared so no row images stay pinned.
func (u *UndoLog) Commit() {
	clear(u.entries)
	u.entries = u.entries[:0]
}

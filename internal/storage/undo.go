package storage

// UndoLog collects inverse operations for one transaction so an abort can
// restore the pre-image. Both engines use it: the DBx1000 baseline rolls
// back on no-wait lock conflicts; AnyDB rolls back on logical aborts
// (e.g. new-order's 1% invalid item).
//
// Entries apply in reverse order, so overlapping updates to the same cell
// restore correctly.
type UndoLog struct {
	entries []undoEntry
}

type undoKind uint8

const (
	undoUpdate undoKind = iota
	undoInsert
	undoAppend
)

type undoEntry struct {
	kind  undoKind
	table *Table
	key   Key // inserts
	slot  int32
	col   int32
	old   Value
}

// Len returns the number of recorded operations.
func (u *UndoLog) Len() int { return len(u.entries) }

// next returns a pointer to the next free entry, extending within
// capacity when possible. Writing fields through the pointer (instead of
// appending a composite literal) keeps the ~70-byte undoEntry out of
// duffcopy on the per-update logging path; the profile showed those
// struct copies as the bulk of duffcopy time.
func (u *UndoLog) next() *undoEntry {
	n := len(u.entries)
	if n < cap(u.entries) {
		u.entries = u.entries[:n+1]
	} else {
		u.entries = append(u.entries, undoEntry{})
	}
	return &u.entries[n]
}

// LogUpdate records the pre-image of a cell update.
func (u *UndoLog) LogUpdate(t *Table, slot int32, col int, old Value) {
	e := u.next()
	e.kind = undoUpdate
	e.table = t
	e.key = 0
	e.slot = slot
	e.col = int32(col)
	e.old = old
}

// LogInsert records an insert for reversal.
func (u *UndoLog) LogInsert(t *Table, key Key) {
	e := u.next()
	e.kind = undoInsert
	e.table = t
	e.key = key
	e.slot = 0
	e.col = 0
	e.old = Value{}
}

// LogAppend records a keyless append (Table.Append) for reversal.
func (u *UndoLog) LogAppend(t *Table, slot int32) {
	e := u.next()
	e.kind = undoAppend
	e.table = t
	e.key = 0
	e.slot = slot
	e.col = 0
	e.old = Value{}
}

// Rollback applies the log in reverse and clears it. It returns the
// number of operations undone (the engines charge virtual time per op).
func (u *UndoLog) Rollback() int {
	n := len(u.entries)
	for i := n - 1; i >= 0; i-- {
		e := u.entries[i]
		switch e.kind {
		case undoUpdate:
			e.table.rows[e.slot][e.col] = e.old
		case undoInsert:
			e.table.Delete(e.key)
		case undoAppend:
			e.table.AbortAppend(e.slot)
		}
	}
	clear(u.entries)
	u.entries = u.entries[:0]
	return n
}

// Commit discards the log (nothing to undo anymore). The backing array
// is kept — a reused log allocates only until it has seen its largest
// transaction — but entries are cleared so no row images stay pinned.
func (u *UndoLog) Commit() {
	clear(u.entries)
	u.entries = u.entries[:0]
}

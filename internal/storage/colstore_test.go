package storage

import (
	"fmt"
	"testing"
)

func colTestSchema() *Schema {
	return NewSchema("t",
		Column{Name: "id", Kind: KInt},
		Column{Name: "name", Kind: KStr},
	)
}

func chunkInt(c *EncChunk, row, col int) int64  { return c.Value(row, col).I }
func chunkStr(c *EncChunk, row, col int) string { return c.Value(row, col).S }

func TestColChunkBuildsAndCaches(t *testing.T) {
	tb := NewTable(colTestSchema())
	for i := 0; i < ColChunkRows+10; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i)), Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.NumColChunks(); got != 2 {
		t.Fatalf("NumColChunks = %d, want 2", got)
	}
	c0 := tb.ColChunk(0)
	if c0.Len() != ColChunkRows {
		t.Fatalf("chunk 0 has %d rows, want %d", c0.Len(), ColChunkRows)
	}
	if again := tb.ColChunk(0); again != c0 {
		t.Fatal("clean chunk was rebuilt")
	}
	c1 := tb.ColChunk(1)
	if c1.Len() != 10 {
		t.Fatalf("chunk 1 has %d rows, want 10", c1.Len())
	}
	if got := chunkInt(c1, 0, 0); got != int64(ColChunkRows) {
		t.Fatalf("chunk 1 first id = %d, want %d", got, ColChunkRows)
	}
}

func TestColChunkInvalidation(t *testing.T) {
	tb := NewTable(colTestSchema())
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i)), Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("initial build has %d rows, want 100", got)
	}

	// An insert into the cached chunk's range must trigger a rebuild.
	if _, err := tb.Insert(Key(100), Row{Int(100), Str("y")}); err != nil {
		t.Fatal(err)
	}
	if got := tb.ColChunk(0).Len(); got != 101 {
		t.Fatalf("after insert: %d rows, want 101", got)
	}

	// Updates are reflected.
	slot, _ := tb.Lookup(Key(42))
	tb.UpdateAt(slot, 1, Str("updated"))
	if got := chunkStr(tb.ColChunk(0), 42, 1); got != "updated" {
		t.Fatalf("after update: cell = %q, want %q", got, "updated")
	}

	// Deletes tombstone the slot out of the rebuilt chunk.
	tb.Delete(Key(0))
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("after delete: %d rows, want 100", got)
	}
	if got := chunkInt(tb.ColChunk(0), 0, 0); got != 1 {
		t.Fatalf("after delete: first id = %d, want 1", got)
	}

	// AbortAppend likewise.
	slot2 := tb.Append(Row{Int(999), Str("z")})
	if got := tb.ColChunk(0).Len(); got != 101 {
		t.Fatalf("after append: %d rows, want 101", got)
	}
	tb.AbortAppend(slot2)
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("after abort: %d rows, want 100", got)
	}
}

func TestColChunkDirtyBeforeFirstBuild(t *testing.T) {
	// Writes before any ColChunk call must not panic or grow state.
	tb := NewTable(colTestSchema())
	for i := 0; i < 10; i++ {
		tb.Append(Row{Int(int64(i)), Str("x")})
	}
	if len(tb.colChunks) != 0 {
		t.Fatalf("colChunks grew to %d before any ColChunk call", len(tb.colChunks))
	}
	if got := tb.ColChunk(0).Len(); got != 10 {
		t.Fatalf("ColChunk(0) has %d rows, want 10", got)
	}
}

// TestEncChunkEncodings pins which encoding each column shape gets:
// low-cardinality ints and strings dictionary-encode, high-cardinality
// ints with a narrow range fall back to frame-of-reference, and a range
// wider than uint32 stays raw.
func TestEncChunkEncodings(t *testing.T) {
	schema := NewSchema("enc",
		Column{Name: "lo_int", Kind: KInt},  // 4 distinct -> dict
		Column{Name: "seq", Kind: KInt},     // > dict cap, narrow range -> FoR
		Column{Name: "wide", Kind: KInt},    // > uint32 range -> raw
		Column{Name: "state", Kind: KStr},   // few distinct -> dict
		Column{Name: "ratio", Kind: KFloat}, // floats always raw
	)
	tb := NewTable(schema)
	n := maxIntDictCodes + 100
	for i := 0; i < n; i++ {
		tb.Append(Row{
			Int(int64(i % 4)),
			Int(int64(1000 + i)),
			Int(int64(i) * (1 << 33)),
			Str(fmt.Sprintf("s%d", i%7)),
			Float(float64(i) / 3),
		})
	}
	c := tb.ColChunk(0)
	wantEnc := []EncKind{EncDict, EncFoR, EncRaw, EncDict, EncRaw}
	for col, want := range wantEnc {
		if got := c.Cols[col].Enc; got != want {
			t.Errorf("col %d (%s): enc = %d, want %d", col, schema.Cols[col].Name, got, want)
		}
	}
	if c.Cols[1].Ref != 1000 {
		t.Errorf("FoR ref = %d, want 1000", c.Cols[1].Ref)
	}
	// Every decoded cell must equal the heap row, whatever the encoding.
	for i := 0; i < c.Len(); i++ {
		row := tb.RowAt(int32(i))
		for col := range schema.Cols {
			if got := c.Value(i, col); !got.Equal(row[col]) {
				t.Fatalf("cell (%d,%d) = %v, want %v", i, col, got, row[col])
			}
		}
	}
}

// TestDictSealFallback drives an int column past the dictionary cap:
// the dictionary seals permanently, the rebuilt chunk falls back to a
// non-dictionary encoding, and previously assigned codes stay
// decodable.
func TestDictSealFallback(t *testing.T) {
	schema := NewSchema("seal", Column{Name: "v", Kind: KInt})
	tb := NewTable(schema)
	for i := 0; i < maxIntDictCodes/2; i++ {
		tb.Append(Row{Int(int64(i))})
	}
	c := tb.ColChunk(0)
	if c.Cols[0].Enc != EncDict {
		t.Fatalf("below cap: enc = %d, want EncDict", c.Cols[0].Enc)
	}
	d := tb.Dict(0)
	if d == nil || d.Sealed() {
		t.Fatal("dictionary missing or sealed below cap")
	}

	// Push past the cap; the rebuild must seal and fall back.
	for i := maxIntDictCodes / 2; i < maxIntDictCodes+10; i++ {
		tb.Append(Row{Int(int64(i))})
	}
	c = tb.ColChunk(0)
	if c.Cols[0].Enc == EncDict {
		t.Fatal("past cap: chunk still dictionary-encoded")
	}
	if !d.Sealed() {
		t.Fatal("dictionary did not seal past cap")
	}
	// Sealed dictionaries keep their codes decodable and lookupable.
	if got := d.DecodeInt(7); got != 7 {
		t.Fatalf("DecodeInt(7) = %d after seal", got)
	}
	if _, ok := d.LookupInt(7); !ok {
		t.Fatal("LookupInt lost a pre-seal code after sealing")
	}
	for i := 0; i < c.Len(); i++ {
		if got := chunkInt(c, i, 0); got != int64(i) {
			t.Fatalf("row %d = %d after fallback", i, got)
		}
	}
}

// TestDictRoundTripUnderMutation interleaves chunk reads with table
// mutation: every write invalidates the chunk, the dictionary grows
// incrementally across rebuilds, and decoded contents always match the
// heap.
func TestDictRoundTripUnderMutation(t *testing.T) {
	tb := NewTable(colTestSchema())
	for i := 0; i < 300; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i % 5)), Str(fmt.Sprintf("name-%d", i%11))}); err != nil {
			t.Fatal(err)
		}
	}
	check := func() {
		c := tb.ColChunk(0)
		i := 0
		tb.Scan(func(_ int32, row Row) bool {
			if !c.Value(i, 0).Equal(row[0]) || !c.Value(i, 1).Equal(row[1]) {
				t.Fatalf("row %d: chunk (%v,%v) != heap (%v,%v)",
					i, c.Value(i, 0), c.Value(i, 1), row[0], row[1])
			}
			i++
			return true
		})
		if i != c.Len() {
			t.Fatalf("chunk rows %d != live rows %d", c.Len(), i)
		}
	}
	check()
	dictLen := tb.Dict(1).Len()

	// Updates introducing new strings grow the dictionary; old codes in
	// untouched positions remain valid.
	for i := 0; i < 300; i += 17 {
		slot, _ := tb.Lookup(Key(i))
		tb.UpdateAt(slot, 1, Str(fmt.Sprintf("mut-%d", i)))
		check()
	}
	if got := tb.Dict(1).Len(); got <= dictLen {
		t.Fatalf("dictionary did not grow under mutation: %d -> %d", dictLen, got)
	}

	// Deletes and inserts churn the slot layout under the same codes.
	for i := 0; i < 300; i += 23 {
		tb.Delete(Key(i))
		check()
	}
	for i := 300; i < 350; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i)), Str("late")}); err != nil {
			t.Fatal(err)
		}
		check()
	}
}

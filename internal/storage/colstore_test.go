package storage

import "testing"

func colTestSchema() *Schema {
	return NewSchema("t",
		Column{Name: "id", Kind: KInt},
		Column{Name: "name", Kind: KStr},
	)
}

func TestColChunkBuildsAndCaches(t *testing.T) {
	tb := NewTable(colTestSchema())
	for i := 0; i < ColChunkRows+10; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i)), Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.NumColChunks(); got != 2 {
		t.Fatalf("NumColChunks = %d, want 2", got)
	}
	c0 := tb.ColChunk(0)
	if c0.Len() != ColChunkRows {
		t.Fatalf("chunk 0 has %d rows, want %d", c0.Len(), ColChunkRows)
	}
	if again := tb.ColChunk(0); again != c0 {
		t.Fatal("clean chunk was rebuilt")
	}
	c1 := tb.ColChunk(1)
	if c1.Len() != 10 {
		t.Fatalf("chunk 1 has %d rows, want 10", c1.Len())
	}
	if c1.Cols[0].Ints[0] != int64(ColChunkRows) {
		t.Fatalf("chunk 1 first id = %d, want %d", c1.Cols[0].Ints[0], ColChunkRows)
	}
}

func TestColChunkInvalidation(t *testing.T) {
	tb := NewTable(colTestSchema())
	for i := 0; i < 100; i++ {
		if _, err := tb.Insert(Key(i), Row{Int(int64(i)), Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("initial build has %d rows, want 100", got)
	}

	// An insert into the cached chunk's range must trigger a rebuild.
	if _, err := tb.Insert(Key(100), Row{Int(100), Str("y")}); err != nil {
		t.Fatal(err)
	}
	if got := tb.ColChunk(0).Len(); got != 101 {
		t.Fatalf("after insert: %d rows, want 101", got)
	}

	// Updates are reflected.
	slot, _ := tb.Lookup(Key(42))
	tb.UpdateAt(slot, 1, Str("updated"))
	if got := tb.ColChunk(0).Cols[1].Strs[42]; got != "updated" {
		t.Fatalf("after update: cell = %q, want %q", got, "updated")
	}

	// Deletes tombstone the slot out of the rebuilt chunk.
	tb.Delete(Key(0))
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("after delete: %d rows, want 100", got)
	}
	if got := tb.ColChunk(0).Cols[0].Ints[0]; got != 1 {
		t.Fatalf("after delete: first id = %d, want 1", got)
	}

	// AbortAppend likewise.
	slot2 := tb.Append(Row{Int(999), Str("z")})
	if got := tb.ColChunk(0).Len(); got != 101 {
		t.Fatalf("after append: %d rows, want 101", got)
	}
	tb.AbortAppend(slot2)
	if got := tb.ColChunk(0).Len(); got != 100 {
		t.Fatalf("after abort: %d rows, want 100", got)
	}
}

func TestColChunkDirtyBeforeFirstBuild(t *testing.T) {
	// Writes before any ColChunk call must not panic or grow state.
	tb := NewTable(colTestSchema())
	for i := 0; i < 10; i++ {
		tb.Append(Row{Int(int64(i)), Str("x")})
	}
	if len(tb.colChunks) != 0 {
		t.Fatalf("colChunks grew to %d before any ColChunk call", len(tb.colChunks))
	}
	if got := tb.ColChunk(0).Len(); got != 10 {
		t.Fatalf("ColChunk(0) has %d rows, want 10", got)
	}
}

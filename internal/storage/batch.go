package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ColVec is one column of a columnar batch. Only the slice matching Kind
// is populated.
type ColVec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

func (c *ColVec) appendValue(v Value) {
	switch c.Kind {
	case KInt:
		c.Ints = append(c.Ints, v.I)
	case KFloat:
		c.Floats = append(c.Floats, v.F)
	default:
		c.Strs = append(c.Strs, v.S)
	}
}

// value materializes row i of the column as a Value.
func (c *ColVec) value(i int) Value {
	switch c.Kind {
	case KInt:
		return Int(c.Ints[i])
	case KFloat:
		return Float(c.Floats[i])
	default:
		return Str(c.Strs[i])
	}
}

// Batch is a columnar chunk of rows flowing through a data stream. OLAP
// operators exchange batches, not rows: this is the paper's vectorized
// query processing micro-model, and batch boundaries are where the
// simulation charges transfer and dispatch costs.
type Batch struct {
	Schema *Schema
	Cols   []ColVec
	n      int
	bytes  int64
}

// NewBatch returns an empty batch shaped like schema.
func NewBatch(schema *Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]ColVec, schema.NumCols())}
	for i, c := range schema.Cols {
		b.Cols[i].Kind = c.Kind
	}
	return b
}

// batchClasses size-classes the batch pool by column count: a recycled
// batch is only useful when its column-vector capacities fit the next
// schema's arity, so each arity up to the cap pools separately (wider
// batches share the last class). TPC-C's scan/join schemas span 1–7
// columns, so classes stay hot.
const batchClasses = 9

var batchPools [batchClasses]sync.Pool

func batchClass(cols int) int {
	if cols >= batchClasses {
		return batchClasses - 1
	}
	return cols
}

// Batch-pool leak accounting, mirroring internal/core's event tracking
// (core.TrackPools toggles both). Off by default: one atomic flag load
// per Get/Free. The table-owned columnar chunk cache does not ride this
// pool at all — chunks are table state (colstore.go EncChunk), not
// in-flight messages, so only message batches are accounted here.
var (
	trackBatches atomic.Bool
	batchBal     atomic.Int64
)

// TrackBatches toggles batch-pool accounting and resets the counter.
func TrackBatches(on bool) {
	batchBal.Store(0)
	trackBatches.Store(on)
}

// BatchBalance reports outstanding tracked batches (gets minus frees).
func BatchBalance() int64 { return batchBal.Load() }

// GetBatch returns an empty batch shaped like schema, recycling vector
// capacity from the pool when a same-class batch is available. Pair
// with FreeBatch at the batch's single-consumer death point (after the
// last row was read or copied out).
func GetBatch(schema *Schema) *Batch {
	if trackBatches.Load() {
		batchBal.Add(1)
	}
	v := batchPools[batchClass(schema.NumCols())].Get()
	if v == nil {
		return NewBatch(schema)
	}
	b := v.(*Batch)
	b.Schema = schema
	n := schema.NumCols()
	if cap(b.Cols) < n {
		b.Cols = make([]ColVec, n)
	} else {
		b.Cols = b.Cols[:n]
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		c.Kind = schema.Cols[i].Kind
		c.Ints = c.Ints[:0]
		c.Floats = c.Floats[:0]
		c.Strs = c.Strs[:0]
	}
	b.n, b.bytes = 0, 0
	return b
}

// FreeBatch recycles b, keeping its column-vector capacity. Only the
// consumer the batch was delivered to may free it, and only once no row
// or projected reference escapes (Row/Project copy, so their results
// survive the free). String cells are released eagerly so the pool
// never pins row data. Frees are optional — missed ones fall back to
// the GC.
func FreeBatch(b *Batch) {
	if b == nil {
		return
	}
	if trackBatches.Load() {
		batchBal.Add(-1)
	}
	for i := range b.Cols {
		clear(b.Cols[i].Strs)
	}
	batchPools[batchClass(len(b.Cols))].Put(b)
}

// AppendRow copies row into the batch.
func (b *Batch) AppendRow(row Row) {
	if len(row) != len(b.Cols) {
		panic(fmt.Sprintf("storage: batch arity mismatch: row %d, batch %d", len(row), len(b.Cols)))
	}
	for i := range row {
		b.Cols[i].appendValue(row[i])
		b.bytes += row[i].size()
	}
	b.n++
}

// AppendValues appends one row given as individual values.
func (b *Batch) AppendValues(vals ...Value) { b.AppendRow(Row(vals)) }

// Row materializes row i (a copy).
func (b *Batch) Row(i int) Row {
	r := make(Row, len(b.Cols))
	for c := range b.Cols {
		r[c] = b.Cols[c].value(i)
	}
	return r
}

// Value returns the cell at (row, col) without materializing the row.
func (b *Batch) Value(row, col int) Value { return b.Cols[col].value(row) }

// Len returns the row count.
func (b *Batch) Len() int { return b.n }

// Bytes returns the approximate wire size.
func (b *Batch) Bytes() int64 { return b.bytes }

// Project returns a pooled batch containing only the named columns; the
// consumer frees it like any other batch.
func (b *Batch) Project(cols ...string) *Batch {
	idxs := make([]int, len(cols))
	outCols := make([]Column, len(cols))
	for i, name := range cols {
		idxs[i] = b.Schema.MustCol(name)
		outCols[i] = b.Schema.Cols[idxs[i]]
	}
	out := GetBatch(NewSchema(b.Schema.Name+"_proj", outCols...))
	for r := 0; r < b.n; r++ {
		for i, src := range idxs {
			v := b.Cols[src].value(r)
			out.Cols[i].appendValue(v)
			out.bytes += v.size()
		}
	}
	out.n = b.n
	return out
}

// ConcatSchema merges two schemas for join output, prefixing column names
// with each side's table name when they collide.
func ConcatSchema(name string, left, right *Schema) *Schema {
	cols := make([]Column, 0, left.NumCols()+right.NumCols())
	seen := make(map[string]bool)
	for _, c := range left.Cols {
		cols = append(cols, c)
		seen[c.Name] = true
	}
	for _, c := range right.Cols {
		n := c.Name
		if seen[n] {
			n = right.Name + "." + n
		}
		cols = append(cols, Column{Name: n, Kind: c.Kind})
		seen[n] = true
	}
	return NewSchema(name, cols...)
}

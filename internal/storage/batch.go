package storage

import "fmt"

// ColVec is one column of a columnar batch. Only the slice matching Kind
// is populated.
type ColVec struct {
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

func (c *ColVec) appendValue(v Value) {
	switch c.Kind {
	case KInt:
		c.Ints = append(c.Ints, v.I)
	case KFloat:
		c.Floats = append(c.Floats, v.F)
	default:
		c.Strs = append(c.Strs, v.S)
	}
}

// value materializes row i of the column as a Value.
func (c *ColVec) value(i int) Value {
	switch c.Kind {
	case KInt:
		return Int(c.Ints[i])
	case KFloat:
		return Float(c.Floats[i])
	default:
		return Str(c.Strs[i])
	}
}

// Batch is a columnar chunk of rows flowing through a data stream. OLAP
// operators exchange batches, not rows: this is the paper's vectorized
// query processing micro-model, and batch boundaries are where the
// simulation charges transfer and dispatch costs.
type Batch struct {
	Schema *Schema
	Cols   []ColVec
	n      int
	bytes  int64
}

// NewBatch returns an empty batch shaped like schema.
func NewBatch(schema *Schema) *Batch {
	b := &Batch{Schema: schema, Cols: make([]ColVec, schema.NumCols())}
	for i, c := range schema.Cols {
		b.Cols[i].Kind = c.Kind
	}
	return b
}

// AppendRow copies row into the batch.
func (b *Batch) AppendRow(row Row) {
	if len(row) != len(b.Cols) {
		panic(fmt.Sprintf("storage: batch arity mismatch: row %d, batch %d", len(row), len(b.Cols)))
	}
	for i := range row {
		b.Cols[i].appendValue(row[i])
		b.bytes += row[i].size()
	}
	b.n++
}

// AppendValues appends one row given as individual values.
func (b *Batch) AppendValues(vals ...Value) { b.AppendRow(Row(vals)) }

// Row materializes row i (a copy).
func (b *Batch) Row(i int) Row {
	r := make(Row, len(b.Cols))
	for c := range b.Cols {
		r[c] = b.Cols[c].value(i)
	}
	return r
}

// Value returns the cell at (row, col) without materializing the row.
func (b *Batch) Value(row, col int) Value { return b.Cols[col].value(row) }

// Len returns the row count.
func (b *Batch) Len() int { return b.n }

// Bytes returns the approximate wire size.
func (b *Batch) Bytes() int64 { return b.bytes }

// Project returns a new batch containing only the named columns.
func (b *Batch) Project(cols ...string) *Batch {
	idxs := make([]int, len(cols))
	outCols := make([]Column, len(cols))
	for i, name := range cols {
		idxs[i] = b.Schema.MustCol(name)
		outCols[i] = b.Schema.Cols[idxs[i]]
	}
	out := NewBatch(NewSchema(b.Schema.Name+"_proj", outCols...))
	for r := 0; r < b.n; r++ {
		for i, src := range idxs {
			v := b.Cols[src].value(r)
			out.Cols[i].appendValue(v)
			out.bytes += v.size()
		}
	}
	out.n = b.n
	return out
}

// ConcatSchema merges two schemas for join output, prefixing column names
// with each side's table name when they collide.
func ConcatSchema(name string, left, right *Schema) *Schema {
	cols := make([]Column, 0, left.NumCols()+right.NumCols())
	seen := make(map[string]bool)
	for _, c := range left.Cols {
		cols = append(cols, c)
		seen[c.Name] = true
	}
	for _, c := range right.Cols {
		n := c.Name
		if seen[n] {
			n = right.Name + "." + n
		}
		cols = append(cols, Column{Name: n, Kind: c.Kind})
		seen[n] = true
	}
	return NewSchema(name, cols...)
}

package storage

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHashIndexBasic(t *testing.T) {
	h := NewHashIndex(4)
	if _, ok := h.Get(1); ok {
		t.Fatal("Get on empty index succeeded")
	}
	h.Put(1, 100)
	h.Put(2, 200)
	if v, ok := h.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = (%d,%v)", v, ok)
	}
	h.Put(1, 111) // overwrite
	if v, _ := h.Get(1); v != 111 {
		t.Fatalf("overwrite failed: %d", v)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
}

func TestHashIndexGrowth(t *testing.T) {
	h := NewHashIndex(2)
	const n = 50000
	for i := 0; i < n; i++ {
		h.Put(Key(i), int32(i))
	}
	if h.Len() != n {
		t.Fatalf("Len = %d, want %d", h.Len(), n)
	}
	for i := 0; i < n; i++ {
		if v, ok := h.Get(Key(i)); !ok || v != int32(i) {
			t.Fatalf("Get(%d) = (%d,%v)", i, v, ok)
		}
	}
}

func TestHashIndexDelete(t *testing.T) {
	h := NewHashIndex(16)
	for i := 0; i < 1000; i++ {
		h.Put(Key(i), int32(i))
	}
	for i := 0; i < 1000; i += 3 {
		if !h.Delete(Key(i)) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	if h.Delete(Key(0)) {
		t.Fatal("double delete succeeded")
	}
	for i := 0; i < 1000; i++ {
		v, ok := h.Get(Key(i))
		if (i%3 == 0) == ok {
			t.Fatalf("Get(%d) presence = %v after deletes", i, ok)
		}
		if ok && v != int32(i) {
			t.Fatalf("Get(%d) = %d", i, v)
		}
	}
}

// TestHashIndexDeleteChains targets backward-shift correctness by forcing
// long probe chains (keys engineered to collide after masking).
func TestHashIndexDeleteChains(t *testing.T) {
	h := NewHashIndex(8) // 16 slots
	rng := rand.New(rand.NewSource(11))
	ref := make(map[Key]int32)
	for step := 0; step < 20000; step++ {
		k := Key(rng.Intn(24)) // dense key space → heavy collisions
		switch rng.Intn(3) {
		case 0, 1:
			v := int32(rng.Intn(1 << 20))
			h.Put(k, v)
			ref[k] = v
		case 2:
			dOK := h.Delete(k)
			_, rOK := ref[k]
			if dOK != rOK {
				t.Fatalf("step %d: Delete(%v) = %v, ref %v", step, k, dOK, rOK)
			}
			delete(ref, k)
		}
		if h.Len() != len(ref) {
			t.Fatalf("step %d: Len = %d, ref %d", step, h.Len(), len(ref))
		}
	}
	for k, v := range ref {
		if got, ok := h.Get(k); !ok || got != v {
			t.Fatalf("final Get(%v) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
}

func TestHashIndexQuickVsMap(t *testing.T) {
	type op struct {
		Key Key
		Val int32
		Del bool
	}
	check := func(ops []op) bool {
		h := NewHashIndex(4)
		ref := make(map[Key]int32)
		for _, o := range ops {
			k := o.Key % 128
			if o.Del {
				if h.Delete(k) != mapHas(ref, k) {
					return false
				}
				delete(ref, k)
			} else {
				h.Put(k, o.Val)
				ref[k] = o.Val
			}
		}
		if h.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if got, ok := h.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func mapHas(m map[Key]int32, k Key) bool {
	_, ok := m[k]
	return ok
}

func BenchmarkHashIndexGet(b *testing.B) {
	h := NewHashIndex(1 << 16)
	for i := 0; i < 1<<16; i++ {
		h.Put(Key(i), int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Get(Key(i & (1<<16 - 1)))
	}
}

func BenchmarkGoMapGet(b *testing.B) {
	m := make(map[Key]int32, 1<<16)
	for i := 0; i < 1<<16; i++ {
		m[Key(i)] = int32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[Key(i&(1<<16-1))]
	}
}

package storage

// Per-table column dictionaries (Vertica-style dictionary encoding).
// A Dict maps column values to dense uint32 codes, assigned in first-seen
// order and never reassigned: once a value has a code, every chunk built
// afterwards encodes it identically, so cached chunks from different
// rebuild generations stay mutually consistent and predicates compiled
// against the dictionary apply to any chunk of the table.
//
// Dictionaries are built incrementally by chunk rebuilds (colstore.go) —
// never on the OLTP write path, which only bumps chunk versions. They
// live and die with the table under the same single-ownership rule as
// the chunk cache, so no locking.
//
// Overflow: a column whose distinct-value count passes the cap stops
// being dictionary-encodable — sealed() flips permanently, future chunk
// rebuilds fall back to raw (or frame-of-reference for ints), and the
// decode arrays plus lookup maps are kept so already-built chunks remain
// decodable and predicate lookups keep working.

// Dictionary capacity caps. Strings get the full uint16-ish range
// (TPC-C's dictionary-friendly columns — states, credit flags, last
// names — sit far below it). Ints get a small cap: an int column only
// benefits from a dictionary when it is low-cardinality enough to drive
// the dense grouped-aggregate fast path (district ids, years, carrier
// ids); high-cardinality ints are better served by frame-of-reference.
const (
	maxStrDictCodes = 1 << 16
	maxIntDictCodes = 1 << 10
)

// Dict is one column's dictionary. Exactly one of the (strs, byStr) /
// (ints, byInt) pairs is populated, matching the column kind.
type Dict struct {
	kind   Kind
	strs   []string
	byStr  map[string]uint32
	ints   []int64
	byInt  map[int64]uint32
	sealed bool // cap hit: no new codes, existing ones stay valid
}

func newDict(kind Kind) *Dict {
	d := &Dict{kind: kind}
	switch kind {
	case KStr:
		d.byStr = make(map[string]uint32)
	case KInt:
		d.byInt = make(map[int64]uint32)
	default:
		panic("storage: no dictionary for kind " + kind.String())
	}
	return d
}

// Len returns the number of assigned codes (codes are dense: 0..Len-1).
func (d *Dict) Len() int {
	if d.kind == KStr {
		return len(d.strs)
	}
	return len(d.ints)
}

// Sealed reports whether the dictionary hit its cap: chunks built after
// sealing are not dictionary-encoded, but existing codes stay decodable.
func (d *Dict) Sealed() bool { return d.sealed }

// codeStr returns the code for s, assigning the next one if s is new.
// ok=false means the dictionary is (now) sealed and s has no code.
func (d *Dict) codeStr(s string) (uint32, bool) {
	if c, ok := d.byStr[s]; ok {
		return c, true
	}
	if d.sealed || len(d.strs) >= maxStrDictCodes {
		d.sealed = true
		return 0, false
	}
	c := uint32(len(d.strs))
	d.strs = append(d.strs, s)
	d.byStr[s] = c
	return c, true
}

// codeInt is codeStr for int columns.
func (d *Dict) codeInt(v int64) (uint32, bool) {
	if c, ok := d.byInt[v]; ok {
		return c, true
	}
	if d.sealed || len(d.ints) >= maxIntDictCodes {
		d.sealed = true
		return 0, false
	}
	c := uint32(len(d.ints))
	d.ints = append(d.ints, v)
	d.byInt[v] = c
	return c, true
}

// LookupStr resolves a string to its code without assigning one — the
// predicate-compilation entry point. ok=false means no chunk can contain
// the value under this dictionary.
func (d *Dict) LookupStr(s string) (uint32, bool) {
	c, ok := d.byStr[s]
	return c, ok
}

// LookupInt is LookupStr for int columns.
func (d *Dict) LookupInt(v int64) (uint32, bool) {
	c, ok := d.byInt[v]
	return c, ok
}

// DecodeStr returns the string for a code previously assigned.
func (d *Dict) DecodeStr(code uint32) string { return d.strs[code] }

// DecodeInt returns the int for a code previously assigned.
func (d *Dict) DecodeInt(code uint32) int64 { return d.ints[code] }

// DecodeValue materializes a code as a Value of the column kind.
func (d *Dict) DecodeValue(code uint32) Value {
	if d.kind == KStr {
		return Str(d.strs[code])
	}
	return Int(d.ints[code])
}

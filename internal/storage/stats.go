package storage

// TableStats summarizes a table for the query optimizer: row count,
// per-column min/max/NDV, an equi-width histogram for integer columns and
// a value sample for string columns (prefix-selectivity estimation, e.g.
// c_state LIKE 'A%'). The paper's QO "comes up with an efficient
// execution plan like a traditional query optimizer" — these statistics
// are what it plans from.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// ColStats holds one column's statistics.
type ColStats struct {
	Name string
	Kind Kind

	MinI, MaxI int64 // int columns
	NDV        int64
	hist       []int64 // equi-width over [MinI, MaxI], int columns only

	sample      []string // string columns: up to sampleCap values
	sampleEvery int
}

const (
	histBuckets = 64
	sampleCap   = 512
)

// Analyze scans a table and produces fresh statistics.
func Analyze(t *Table) *TableStats {
	st := &TableStats{Cols: make([]ColStats, t.Schema.NumCols())}
	for i, c := range t.Schema.Cols {
		st.Cols[i] = ColStats{Name: c.Name, Kind: c.Kind}
	}

	// Pass 1: bounds, counts, distinct estimation via small maps
	// (capped to bound memory on big tables).
	distinct := make([]map[int64]struct{}, len(st.Cols))
	distinctS := make([]map[string]struct{}, len(st.Cols))
	for i := range st.Cols {
		switch st.Cols[i].Kind {
		case KInt:
			distinct[i] = make(map[int64]struct{})
		case KStr:
			distinctS[i] = make(map[string]struct{})
		}
	}
	const distinctCap = 1 << 16
	first := true
	t.Scan(func(_ int32, row Row) bool {
		st.Rows++
		for i := range row {
			cs := &st.Cols[i]
			switch cs.Kind {
			case KInt:
				v := row[i].I
				if first || v < cs.MinI {
					cs.MinI = v
				}
				if first || v > cs.MaxI {
					cs.MaxI = v
				}
				if len(distinct[i]) < distinctCap {
					distinct[i][v] = struct{}{}
				}
			case KStr:
				if len(distinctS[i]) < distinctCap {
					distinctS[i][row[i].S] = struct{}{}
				}
			}
		}
		first = false
		return true
	})
	for i := range st.Cols {
		switch st.Cols[i].Kind {
		case KInt:
			st.Cols[i].NDV = int64(len(distinct[i]))
		case KStr:
			st.Cols[i].NDV = int64(len(distinctS[i]))
		}
	}

	// Pass 2: histograms and samples.
	if st.Rows == 0 {
		return st
	}
	for i := range st.Cols {
		if st.Cols[i].Kind == KInt && st.Cols[i].MaxI > st.Cols[i].MinI {
			st.Cols[i].hist = make([]int64, histBuckets)
		}
		if st.Cols[i].Kind == KStr {
			every := int(st.Rows/sampleCap) + 1
			st.Cols[i].sampleEvery = every
		}
	}
	rowNo := 0
	t.Scan(func(_ int32, row Row) bool {
		for i := range row {
			cs := &st.Cols[i]
			switch {
			case cs.hist != nil:
				span := cs.MaxI - cs.MinI + 1
				b := (row[i].I - cs.MinI) * histBuckets / span
				cs.hist[b]++
			case cs.Kind == KStr && rowNo%cs.sampleEvery == 0 && len(cs.sample) < sampleCap:
				cs.sample = append(cs.sample, row[i].S)
			}
		}
		rowNo++
		return true
	})
	return st
}

// Col returns the stats for a named column, or nil.
func (s *TableStats) Col(name string) *ColStats {
	for i := range s.Cols {
		if s.Cols[i].Name == name {
			return &s.Cols[i]
		}
	}
	return nil
}

// SelectivityEq estimates the fraction of rows equal to v (1/NDV).
func (s *TableStats) SelectivityEq(col string) float64 {
	cs := s.Col(col)
	if cs == nil || cs.NDV == 0 {
		return 0.1 // optimizer default guess
	}
	return 1 / float64(cs.NDV)
}

// SelectivityRange estimates the fraction of rows with lo <= col <= hi
// for int columns, using the histogram when available.
func (s *TableStats) SelectivityRange(col string, lo, hi int64) float64 {
	cs := s.Col(col)
	if cs == nil || cs.Kind != KInt || s.Rows == 0 {
		return 0.3
	}
	if lo > cs.MaxI || hi < cs.MinI {
		return 0
	}
	if cs.hist == nil {
		// Constant column or no histogram: uniform assumption.
		if cs.MaxI == cs.MinI {
			return 1
		}
		span := float64(cs.MaxI-cs.MinI) + 1
		width := float64(min64(hi, cs.MaxI)-max64(lo, cs.MinI)) + 1
		return clamp01(width / span)
	}
	span := cs.MaxI - cs.MinI + 1
	var hit int64
	for b, cnt := range cs.hist {
		bLo := cs.MinI + int64(b)*span/histBuckets
		bHi := cs.MinI + int64(b+1)*span/histBuckets - 1
		if bHi >= lo && bLo <= hi {
			hit += cnt
		}
	}
	return clamp01(float64(hit) / float64(s.Rows))
}

// SelectivityPrefix estimates the fraction of rows whose string column
// starts with prefix, from the sample.
func (s *TableStats) SelectivityPrefix(col, prefix string) float64 {
	cs := s.Col(col)
	if cs == nil || len(cs.sample) == 0 {
		return 1.0 / 26
	}
	match := 0
	for _, v := range cs.sample {
		if len(v) >= len(prefix) && v[:len(prefix)] == prefix {
			match++
		}
	}
	if match == 0 {
		return 0.5 / float64(len(cs.sample))
	}
	return float64(match) / float64(len(cs.sample))
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package storage

// BTree is a B+tree mapping packed Keys to row slots, used for ordered
// secondary indexes (e.g. customers by last name, orders by entry date).
// Leaves are chained for range scans. Deletes are lazy: the entry is
// removed from its leaf but the tree is not rebalanced — lookups and
// scans stay correct, space is reclaimed when the index is rebuilt. The
// transaction mix reproduced from the paper (payment, new-order) never
// deletes, so this trade keeps the code small without giving anything up.
type BTree struct {
	root *btNode
	size int
}

// Fan-out: up to btMax keys per node; split when exceeding.
const btMax = 64

type btNode struct {
	leaf bool
	keys []Key
	vals []int32   // leaf only, parallel to keys
	kids []*btNode // inner only, len = len(keys)+1
	next *btNode   // leaf chain
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btNode{leaf: true}}
}

// Len returns the number of entries.
func (t *BTree) Len() int { return t.size }

// lowerBound returns the first index i in keys with keys[i] >= k.
func lowerBound(keys []Key, k Key) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the slot stored under key.
func (t *BTree) Get(key Key) (int32, bool) {
	n := t.root
	for !n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++ // separators equal to the key route right
		}
		n = n.kids[i]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return 0, false
}

// Put inserts or replaces the slot under key.
func (t *BTree) Put(key Key, slot int32) {
	promoted, right, replaced := t.insert(t.root, key, slot)
	if right != nil {
		t.root = &btNode{
			keys: []Key{promoted},
			kids: []*btNode{t.root, right},
		}
	}
	if !replaced {
		t.size++
	}
}

// insert adds key to the subtree at n. If n splits, it returns the
// promoted separator and the new right sibling.
func (t *BTree) insert(n *btNode, key Key, slot int32) (Key, *btNode, bool) {
	if n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = slot
			return 0, nil, true
		}
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = slot
		if len(n.keys) <= btMax {
			return 0, nil, false
		}
		// Split the leaf in half; the right half's first key is
		// promoted (and kept in the leaf, B+tree style).
		mid := len(n.keys) / 2
		right := &btNode{
			leaf: true,
			keys: append([]Key(nil), n.keys[mid:]...),
			vals: append([]int32(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = right
		return right.keys[0], right, false
	}

	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		i++
	}
	promoted, right, replaced := t.insert(n.kids[i], key, slot)
	if right != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = promoted
		n.kids = append(n.kids, nil)
		copy(n.kids[i+2:], n.kids[i+1:])
		n.kids[i+1] = right
		if len(n.keys) > btMax {
			p, r := t.splitInner(n)
			return p, r, replaced
		}
	}
	return 0, nil, replaced
}

func (t *BTree) splitInner(n *btNode) (Key, *btNode) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &btNode{
		keys: append([]Key(nil), n.keys[mid+1:]...),
		kids: append([]*btNode(nil), n.kids[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	return promoted, right
}

// Delete removes key (lazy: leaf-only). It reports presence.
func (t *BTree) Delete(key Key) bool {
	n := t.root
	for !n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.kids[i]
	}
	i := lowerBound(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		t.size--
		return true
	}
	return false
}

// Range invokes fn for every entry with lo <= key < hi in ascending key
// order; fn returning false stops the scan.
func (t *BTree) Range(lo, hi Key, fn func(Key, int32) bool) {
	n := t.root
	for !n.leaf {
		i := lowerBound(n.keys, lo)
		if i < len(n.keys) && n.keys[i] == lo {
			i++
		}
		n = n.kids[i]
	}
	for n != nil {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k >= hi {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
	}
}

// Min returns the smallest key, or false when empty.
func (t *BTree) Min() (Key, bool) {
	n := t.root
	for !n.leaf {
		n = n.kids[0]
	}
	for n != nil {
		if len(n.keys) > 0 {
			return n.keys[0], true
		}
		n = n.next
	}
	return 0, false
}

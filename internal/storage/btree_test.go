package storage

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeEmpty(t *testing.T) {
	tr := NewBTree()
	if tr.Len() != 0 {
		t.Fatal("empty tree has nonzero Len")
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get on empty tree succeeded")
	}
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree succeeded")
	}
	tr.Range(0, ^Key(0), func(Key, int32) bool {
		t.Fatal("Range on empty tree visited an entry")
		return false
	})
}

func TestBTreePutGet(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 1000; i++ {
		tr.Put(Key(i*7%1000), int32(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(Key(i * 7 % 1000))
		if !ok || v != int32(i) {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", i*7%1000, v, ok, i)
		}
	}
	if _, ok := tr.Get(5000); ok {
		t.Fatal("Get of absent key succeeded")
	}
}

func TestBTreeOverwrite(t *testing.T) {
	tr := NewBTree()
	tr.Put(1, 10)
	tr.Put(1, 20)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", tr.Len())
	}
	if v, _ := tr.Get(1); v != 20 {
		t.Fatalf("Get = %d, want 20", v)
	}
}

func TestBTreeRangeOrder(t *testing.T) {
	tr := NewBTree()
	perm := rand.New(rand.NewSource(7)).Perm(5000)
	for _, k := range perm {
		tr.Put(Key(k), int32(k))
	}
	var got []Key
	tr.Range(1000, 2000, func(k Key, v int32) bool {
		if int32(k) != v {
			t.Fatalf("value mismatch at %d: %d", k, v)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 1000 {
		t.Fatalf("range size = %d, want 1000", len(got))
	}
	for i, k := range got {
		if k != Key(1000+i) {
			t.Fatalf("range order broken at %d: %v", i, k)
		}
	}
}

func TestBTreeRangeEarlyStop(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 100; i++ {
		tr.Put(Key(i), int32(i))
	}
	count := 0
	tr.Range(0, 100, func(Key, int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	tr := NewBTree()
	for i := 0; i < 500; i++ {
		tr.Put(Key(i), int32(i))
	}
	for i := 0; i < 500; i += 2 {
		if !tr.Delete(Key(i)) {
			t.Fatalf("Delete(%d) reported absent", i)
		}
	}
	if tr.Delete(Key(0)) {
		t.Fatal("double Delete succeeded")
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d, want 250", tr.Len())
	}
	for i := 0; i < 500; i++ {
		_, ok := tr.Get(Key(i))
		if ok != (i%2 == 1) {
			t.Fatalf("Get(%d) presence = %v", i, ok)
		}
	}
	var got []Key
	tr.Range(0, 500, func(k Key, _ int32) bool { got = append(got, k); return true })
	if len(got) != 250 {
		t.Fatalf("range after delete = %d entries, want 250", len(got))
	}
}

func TestBTreeMin(t *testing.T) {
	tr := NewBTree()
	tr.Put(50, 1)
	tr.Put(10, 2)
	tr.Put(90, 3)
	if k, ok := tr.Min(); !ok || k != 10 {
		t.Fatalf("Min = (%v,%v), want (10,true)", k, ok)
	}
	tr.Delete(10)
	if k, _ := tr.Min(); k != 50 {
		t.Fatalf("Min after delete = %v, want 50", k)
	}
}

// TestBTreeQuickVsMap compares random operation sequences against a map +
// sort reference.
func TestBTreeQuickVsMap(t *testing.T) {
	type op struct {
		Key Key
		Val int32
		Del bool
	}
	check := func(ops []op) bool {
		tr := NewBTree()
		ref := make(map[Key]int32)
		for _, o := range ops {
			k := o.Key % 512 // force collisions/overwrites
			if o.Del {
				dOK := tr.Delete(k)
				_, rOK := ref[k]
				if dOK != rOK {
					return false
				}
				delete(ref, k)
			} else {
				tr.Put(k, o.Val)
				ref[k] = o.Val
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Point lookups agree.
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Full range agrees in order and content.
		keys := make([]Key, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		i := 0
		okScan := true
		tr.Range(0, ^Key(0), func(k Key, v int32) bool {
			if i >= len(keys) || k != keys[i] || v != ref[k] {
				okScan = false
				return false
			}
			i++
			return true
		})
		return okScan && i == len(keys)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeLargeSequential exercises deep splits.
func TestBTreeLargeSequential(t *testing.T) {
	tr := NewBTree()
	const n = 200000
	for i := 0; i < n; i++ {
		tr.Put(Key(i), int32(i%1024))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	count := 0
	prev := Key(0)
	tr.Range(0, n, func(k Key, _ int32) bool {
		if count > 0 && k <= prev {
			t.Fatalf("order violated: %v after %v", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scanned %d, want %d", count, n)
	}
}

func BenchmarkBTreePut(b *testing.B) {
	tr := NewBTree()
	for i := 0; i < b.N; i++ {
		tr.Put(Key(i*2654435761), int32(i))
	}
}

func BenchmarkBTreeGet(b *testing.B) {
	tr := NewBTree()
	for i := 0; i < 100000; i++ {
		tr.Put(Key(i), int32(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(Key(i % 100000))
	}
}

package storage

// HashIndex is an open-addressing (linear probing) hash index mapping a
// packed Key to a row slot in a table heap. It exists instead of a plain
// Go map for two reasons: deletions use backward-shift (no tombstone
// decay), and the probe sequence is deterministic, which the simulation
// runtime relies on for reproducibility.
type HashIndex struct {
	keys  []Key
	slots []int32
	used  []bool
	n     int
	mask  uint64
}

const hashIdxMinCap = 16

// NewHashIndex returns an index sized for capacity entries.
func NewHashIndex(capacity int) *HashIndex {
	n := hashIdxMinCap
	for n < capacity*2 { // keep load factor under 0.5
		n <<= 1
	}
	return &HashIndex{
		keys:  make([]Key, n),
		slots: make([]int32, n),
		used:  make([]bool, n),
		mask:  uint64(n - 1),
	}
}

// mix is a 64-bit finalizer (splitmix64) giving a well-spread probe
// start.
func mix(k Key) uint64 {
	x := uint64(k)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of entries.
func (h *HashIndex) Len() int { return h.n }

// Get returns the row slot for key.
func (h *HashIndex) Get(key Key) (int32, bool) {
	i := mix(key) & h.mask
	for h.used[i] {
		if h.keys[i] == key {
			return h.slots[i], true
		}
		i = (i + 1) & h.mask
	}
	return 0, false
}

// Put inserts or overwrites the slot for key.
func (h *HashIndex) Put(key Key, slot int32) {
	if uint64(h.n)*2 >= uint64(len(h.keys)) {
		h.grow()
	}
	i := mix(key) & h.mask
	for h.used[i] {
		if h.keys[i] == key {
			h.slots[i] = slot
			return
		}
		i = (i + 1) & h.mask
	}
	h.used[i] = true
	h.keys[i] = key
	h.slots[i] = slot
	h.n++
}

// Delete removes key using backward-shift deletion, preserving probe
// chains without tombstones. It reports whether the key was present.
func (h *HashIndex) Delete(key Key) bool {
	i := mix(key) & h.mask
	for h.used[i] {
		if h.keys[i] == key {
			h.shiftBack(i)
			h.n--
			return true
		}
		i = (i + 1) & h.mask
	}
	return false
}

// shiftBack repairs the probe chain after emptying slot j: walk the
// cluster to the right and move back the first entry whose probe path
// crosses the hole; repeat until the cluster ends.
func (h *HashIndex) shiftBack(j uint64) {
	h.used[j] = false
	k := j
	for {
		k = (k + 1) & h.mask
		if !h.used[k] {
			return
		}
		home := mix(h.keys[k]) & h.mask
		// Entry at k may move into hole j iff j lies on its probe
		// path, i.e. dist(home→j) < dist(home→k) cyclically.
		if ((j - home) & h.mask) < ((k - home) & h.mask) {
			h.keys[j] = h.keys[k]
			h.slots[j] = h.slots[k]
			h.used[j] = true
			h.used[k] = false
			j = k
		}
	}
}

func (h *HashIndex) grow() {
	old := *h
	n := len(old.keys) * 2
	h.keys = make([]Key, n)
	h.slots = make([]int32, n)
	h.used = make([]bool, n)
	h.mask = uint64(n - 1)
	h.n = 0
	for i, u := range old.used {
		if u {
			h.Put(old.keys[i], old.slots[i])
		}
	}
}

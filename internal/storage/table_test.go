package storage

import (
	"testing"
)

func custSchema() *Schema {
	return NewSchema("customer",
		Column{"c_id", KInt},
		Column{"c_last", KStr},
		Column{"c_balance", KFloat},
	)
}

func TestKeyPacking(t *testing.T) {
	k := MakeKey(305, 9, 123456789)
	if k.Warehouse() != 305 || k.District() != 9 || k.ID() != 123456789 {
		t.Fatalf("round trip failed: %v", k)
	}
	if MakeKey(1, 0, 0) <= MakeKey(0, 255, 1<<44-1) {
		t.Fatal("warehouse must dominate ordering")
	}
	if MakeKey(1, 2, 0) <= MakeKey(1, 1, 1<<44-1) {
		t.Fatal("district must dominate id ordering")
	}
}

func TestTableInsertGet(t *testing.T) {
	tab := NewTable(custSchema())
	key := MakeKey(1, 1, 42)
	slot, err := tab.Insert(key, Row{Int(42), Str("BARBAR"), Float(10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(key, Row{Int(42), Str("X"), Float(0)}); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if _, err := tab.Insert(MakeKey(1, 1, 43), Row{Int(43)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	row, ok := tab.Get(key)
	if !ok || row[1].S != "BARBAR" {
		t.Fatalf("Get = %v, %v", row, ok)
	}
	// Get must return a copy.
	row[1] = Str("MUTATED")
	if tab.Field(slot, 1).S != "BARBAR" {
		t.Fatal("Get aliased the heap row")
	}
}

func TestTableUpdateUndo(t *testing.T) {
	tab := NewTable(custSchema())
	key := MakeKey(1, 1, 1)
	slot, _ := tab.Insert(key, Row{Int(1), Str("OUGHT"), Float(100)})

	var undo UndoLog
	old := tab.UpdateAt(slot, 2, Float(250))
	undo.LogUpdate(tab, slot, 2, old)
	old2 := tab.UpdateAt(slot, 2, Float(300))
	undo.LogUpdate(tab, slot, 2, old2)

	if tab.Field(slot, 2).F != 300 {
		t.Fatalf("balance = %v, want 300", tab.Field(slot, 2))
	}
	if n := undo.Rollback(); n != 2 {
		t.Fatalf("Rollback undid %d ops, want 2", n)
	}
	if tab.Field(slot, 2).F != 100 {
		t.Fatalf("balance after rollback = %v, want 100", tab.Field(slot, 2))
	}
}

func TestUndoInsertRollback(t *testing.T) {
	tab := NewTable(custSchema())
	var undo UndoLog
	key := MakeKey(2, 3, 7)
	tab.Insert(key, Row{Int(7), Str("ABLE"), Float(0)})
	undo.LogInsert(tab, key)
	undo.Rollback()
	if _, ok := tab.Get(key); ok {
		t.Fatal("insert survived rollback")
	}
	if tab.Rows() != 0 {
		t.Fatalf("Rows = %d, want 0", tab.Rows())
	}
}

func TestUndoCommitClears(t *testing.T) {
	tab := NewTable(custSchema())
	slot, _ := tab.Insert(MakeKey(1, 1, 1), Row{Int(1), Str("A"), Float(1)})
	var undo UndoLog
	undo.LogUpdate(tab, slot, 2, Float(1))
	undo.Commit()
	if undo.Len() != 0 {
		t.Fatal("Commit left entries")
	}
	if undo.Rollback() != 0 {
		t.Fatal("Rollback after Commit undid something")
	}
}

func TestTableSecondaryIndex(t *testing.T) {
	tab := NewTable(custSchema())
	// Index by (last-name-number, c_id): TPC-C last names map to
	// 0..999, so pack into the district field of the key.
	lastNum := map[string]int{"AAA": 1, "BBB": 2, "CCC": 3}
	keyOf := func(r Row) Key { return MakeKey(lastNum[r[1].S], 0, r[0].I) }
	for i, last := range []string{"BBB", "AAA", "CCC", "AAA", "BBB"} {
		tab.Insert(MakeKey(1, 1, int64(i)), Row{Int(int64(i)), Str(last), Float(0)})
	}
	tab.AddIndex("by_last", keyOf, "c_last")

	var ids []int64
	tab.Range("by_last", MakeKey(1, 0, 0), MakeKey(2, 0, 0), func(_ int32, r Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("AAA range = %v, want [1 3]", ids)
	}

	// Inserts after AddIndex are indexed too.
	tab.Insert(MakeKey(1, 1, 9), Row{Int(9), Str("AAA"), Float(0)})
	ids = ids[:0]
	tab.Range("by_last", MakeKey(1, 0, 0), MakeKey(2, 0, 0), func(_ int32, r Row) bool {
		ids = append(ids, r[0].I)
		return true
	})
	if len(ids) != 3 || ids[2] != 9 {
		t.Fatalf("after insert: %v", ids)
	}

	// Updating an indexed column must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("update of indexed column did not panic")
		}
	}()
	tab.UpdateAt(0, 1, Str("ZZZ"))
}

func TestTableDeleteAndScan(t *testing.T) {
	tab := NewTable(custSchema())
	for i := 0; i < 10; i++ {
		tab.Insert(MakeKey(1, 1, int64(i)), Row{Int(int64(i)), Str("X"), Float(0)})
	}
	if !tab.Delete(MakeKey(1, 1, 4)) {
		t.Fatal("Delete failed")
	}
	if tab.Delete(MakeKey(1, 1, 4)) {
		t.Fatal("double Delete succeeded")
	}
	seen := 0
	tab.Scan(func(_ int32, r Row) bool {
		if r[0].I == 4 {
			t.Fatal("tombstoned row visited")
		}
		seen++
		return true
	})
	if seen != 9 || tab.Rows() != 9 {
		t.Fatalf("seen=%d Rows=%d, want 9", seen, tab.Rows())
	}
	keys := tab.Keys()
	if len(keys) != 9 {
		t.Fatalf("Keys len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestValueCompareEqual(t *testing.T) {
	if Int(3).Compare(Int(5)) != -1 || Int(5).Compare(Int(3)) != 1 || Int(4).Compare(Int(4)) != 0 {
		t.Fatal("int compare broken")
	}
	if Float(1.5).Compare(Float(2.5)) != -1 {
		t.Fatal("float compare broken")
	}
	if Str("a").Compare(Str("b")) != -1 {
		t.Fatal("string compare broken")
	}
	if Int(1).Equal(Float(1)) {
		t.Fatal("cross-kind Equal true")
	}
	if !Str("x").Equal(Str("x")) {
		t.Fatal("string Equal broken")
	}
	if Int(7).String() != "7" || Str("q").String() != "q" {
		t.Fatal("String rendering broken")
	}
}

func TestSchemaLookups(t *testing.T) {
	s := custSchema()
	if s.Col("c_last") != 1 || s.Col("nope") != -1 {
		t.Fatal("Col lookup broken")
	}
	if s.MustCol("c_id") != 0 {
		t.Fatal("MustCol broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustCol on unknown column did not panic")
		}
	}()
	s.MustCol("nope")
}

func TestBatchRoundTrip(t *testing.T) {
	s := custSchema()
	b := NewBatch(s)
	b.AppendValues(Int(1), Str("AA"), Float(1.5))
	b.AppendValues(Int(2), Str("BB"), Float(2.5))
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	r := b.Row(1)
	if r[0].I != 2 || r[1].S != "BB" || r[2].F != 2.5 {
		t.Fatalf("Row(1) = %v", r)
	}
	if b.Value(0, 1).S != "AA" {
		t.Fatal("Value broken")
	}
	if b.Bytes() <= 0 {
		t.Fatal("Bytes not accounted")
	}
	p := b.Project("c_balance", "c_id")
	if p.Len() != 2 || p.Schema.NumCols() != 2 {
		t.Fatal("projection shape wrong")
	}
	if p.Value(0, 0).F != 1.5 || p.Value(1, 1).I != 2 {
		t.Fatalf("projection content wrong")
	}
}

func TestConcatSchema(t *testing.T) {
	l := NewSchema("l", Column{"id", KInt}, Column{"x", KStr})
	r := NewSchema("r", Column{"id", KInt}, Column{"y", KFloat})
	j := ConcatSchema("j", l, r)
	if j.NumCols() != 4 {
		t.Fatalf("NumCols = %d", j.NumCols())
	}
	if j.Col("r.id") != 2 || j.Col("y") != 3 {
		t.Fatalf("collision renaming failed: %+v", j.Cols)
	}
}

func TestDatabasePartitions(t *testing.T) {
	db := NewDatabase(4, custSchema())
	if db.NumPartitions() != 4 {
		t.Fatal("partition count")
	}
	db.Partition(2).Table("customer").Insert(MakeKey(2, 1, 1), Row{Int(1), Str("A"), Float(0)})
	if db.Partition(2).Table("customer").Rows() != 1 {
		t.Fatal("insert into partition 2 missing")
	}
	if db.Partition(0).Table("customer").Rows() != 0 {
		t.Fatal("partitions share state")
	}
	if !db.Partition(0).HasTable("customer") || db.Partition(0).HasTable("x") {
		t.Fatal("HasTable broken")
	}
	if db.Partition(2).Bytes() <= 0 {
		t.Fatal("partition Bytes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range partition did not panic")
		}
	}()
	db.Partition(9)
}

func TestAnalyzeStats(t *testing.T) {
	tab := NewTable(custSchema())
	states := []string{"AA", "AB", "BA", "CA", "AC"}
	for i := 0; i < 1000; i++ {
		tab.Insert(MakeKey(1, 1, int64(i)),
			Row{Int(int64(i % 100)), Str(states[i%len(states)]), Float(float64(i))})
	}
	st := Analyze(tab)
	if st.Rows != 1000 {
		t.Fatalf("Rows = %d", st.Rows)
	}
	cs := st.Col("c_id")
	if cs.MinI != 0 || cs.MaxI != 99 || cs.NDV != 100 {
		t.Fatalf("c_id stats = %+v", cs)
	}
	// Range selectivity ≈ 0.25 for [0,24].
	sel := st.SelectivityRange("c_id", 0, 24)
	if sel < 0.15 || sel > 0.35 {
		t.Fatalf("range selectivity = %g, want ≈0.25", sel)
	}
	if st.SelectivityRange("c_id", 200, 300) != 0 {
		t.Fatal("disjoint range selectivity not 0")
	}
	// 3 of 5 states start with "A".
	sel = st.SelectivityPrefix("c_last", "A")
	if sel < 0.4 || sel > 0.8 {
		t.Fatalf("prefix selectivity = %g, want ≈0.6", sel)
	}
	if eq := st.SelectivityEq("c_id"); eq != 0.01 {
		t.Fatalf("eq selectivity = %g, want 0.01", eq)
	}
}

func TestAnalyzeEmptyTable(t *testing.T) {
	st := Analyze(NewTable(custSchema()))
	if st.Rows != 0 {
		t.Fatal("rows on empty table")
	}
	if st.SelectivityRange("c_id", 0, 10) != 0.3 {
		t.Fatal("empty-table default selectivity")
	}
}

// TestAppendAndSlab covers the keyless append path history inserts ride:
// slab-carved rows, no primary-key entry, visible to scans and counts,
// reversible via AbortAppend.
func TestAppendAndSlab(t *testing.T) {
	tab := NewTable(custSchema())
	var slab RowSlab
	for i := 0; i < 100; i++ {
		r := slab.NewRow(3)
		r[0], r[1], r[2] = Int(int64(i)), Str("APPEND"), Float(float64(i))
		tab.Append(r)
	}
	if tab.Rows() != 100 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	var sum int64
	tab.Scan(func(_ int32, r Row) bool {
		sum += r[0].I
		return true
	})
	if sum != 99*100/2 {
		t.Fatalf("scan sum = %d", sum)
	}
	// Slab rows must not alias: every row keeps its own values.
	if tab.Field(0, 0).I != 0 || tab.Field(99, 0).I != 99 {
		t.Fatal("slab rows alias each other")
	}
	// Appends have no primary-key entry; keyed lookups stay unaffected.
	if _, ok := tab.Lookup(MakeKey(0, 0, 0)); ok {
		t.Fatal("append registered a primary key")
	}
	// Keyed and keyless rows coexist.
	if _, err := tab.Insert(MakeKey(1, 1, 7), Row{Int(7), Str("KEYED"), Float(0)}); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 101 {
		t.Fatalf("Rows after mixed insert = %d", tab.Rows())
	}
	// Undo an append (rollback path).
	slot := tab.Append(Row{Int(999), Str("DOOMED"), Float(0)})
	var undo UndoLog
	undo.LogAppend(tab, slot)
	undo.Rollback()
	if tab.Rows() != 101 {
		t.Fatalf("Rows after aborted append = %d", tab.Rows())
	}
	found := false
	tab.Scan(func(_ int32, r Row) bool {
		if r[0].I == 999 {
			found = true
		}
		return true
	})
	if found {
		t.Fatal("aborted append still visible")
	}
}

// TestAppendMaintainsSecondaryIndexes: append-only tables with secondary
// indexes keep them consistent through Append/AbortAppend.
func TestAppendMaintainsSecondaryIndexes(t *testing.T) {
	tab := NewTable(custSchema())
	tab.AddIndex("by_id", func(r Row) Key { return MakeKey(0, 0, r[0].I) }, "c_id")
	slot := tab.Append(Row{Int(5), Str("X"), Float(0)})
	var hits int
	tab.Range("by_id", MakeKey(0, 0, 0), MakeKey(0, 0, 10), func(_ int32, _ Row) bool {
		hits++
		return true
	})
	if hits != 1 {
		t.Fatalf("index hits = %d after append", hits)
	}
	tab.AbortAppend(slot)
	hits = 0
	tab.Range("by_id", MakeKey(0, 0, 0), MakeKey(0, 0, 10), func(_ int32, _ Row) bool {
		hits++
		return true
	})
	if hits != 0 {
		t.Fatalf("index hits = %d after aborted append", hits)
	}
}

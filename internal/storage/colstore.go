package storage

// Columnar chunk cache: the scan-side storage layout behind the shared
// analytical scans (Vertica's projection store, scaled to this repo's
// micro-model). The row heap stays the OLTP source of truth; each table
// lazily mirrors fixed-size slot ranges ("chunks") into pooled columnar
// Batches that analytical scans read directly, so a shared cursor
// amortizes a vectorized scan rather than a per-row map-lookup walk.
//
// Consistency is version-based: every heap write stamps the chunk it
// touches (markColDirty, a shift + bounds check + increment — nothing
// the 0-alloc OLTP path can feel), and ColChunk rebuilds a chunk only
// when its cached build is stale. Single ownership does the rest: the
// partition's owner AC is the only reader and the only writer, so no
// locking is needed, and the cache travels with the partition on a live
// handoff like every other table state.

// ColChunkShift sets the chunk size: 1<<ColChunkShift heap slots per
// columnar chunk. 2048 matches the scan operators' chunk granularity.
const ColChunkShift = 11

// ColChunkRows is the number of heap slots per columnar chunk.
const ColChunkRows = 1 << ColChunkShift

// colChunk is one cached columnar mirror of a heap slot range.
// version counts writes into the range; built records the version the
// cached batch was built at (valid iff batch != nil && built == version).
type colChunk struct {
	version uint32
	built   uint32
	batch   *Batch
}

// markColDirty stamps the chunk covering slot as stale. Called on every
// heap write; must stay allocation-free and branch-cheap.
func (t *Table) markColDirty(slot int32) {
	ci := int(slot >> ColChunkShift)
	if ci < len(t.colChunks) {
		t.colChunks[ci].version++
	}
}

// NumColChunks returns how many chunks cover the heap (including the
// trailing partial chunk). Chunks are addressed 0..NumColChunks()-1.
func (t *Table) NumColChunks() int {
	return (len(t.rows) + ColChunkRows - 1) >> ColChunkShift
}

// ColChunk returns the columnar mirror of chunk ci, rebuilding it from
// the row heap if it was never built or a write landed in its range.
// The returned batch is owned by the table: callers must not mutate,
// free, or retain it past the next table write. Tombstoned slots are
// skipped, so the batch's Len() is the chunk's live-row count.
func (t *Table) ColChunk(ci int) *Batch {
	if ci >= len(t.colChunks) {
		if ci >= cap(t.colChunks) {
			grown := make([]colChunk, ci+1, max(2*cap(t.colChunks), ci+1))
			copy(grown, t.colChunks)
			t.colChunks = grown
		} else {
			t.colChunks = t.colChunks[:ci+1]
		}
	}
	c := &t.colChunks[ci]
	if c.batch != nil && c.built == c.version {
		return c.batch
	}
	if c.batch != nil {
		freeBatchRaw(c.batch)
	}
	b := getBatchRaw(t.Schema)
	lo := ci << ColChunkShift
	hi := lo + ColChunkRows
	if hi > len(t.rows) {
		hi = len(t.rows)
	}
	for slot := lo; slot < hi; slot++ {
		if r := t.rows[slot]; r != nil {
			b.AppendRow(r)
		}
	}
	c.batch = b
	c.built = c.version
	return b
}

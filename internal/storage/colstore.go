package storage

import "math"

// Columnar chunk cache: the scan-side storage layout behind the shared
// analytical scans (Vertica's projection store, scaled to this repo's
// micro-model). The row heap stays the OLTP source of truth; each table
// lazily mirrors fixed-size slot ranges ("chunks") into encoded columnar
// vectors that analytical scans read directly, so a shared cursor
// amortizes a vectorized scan rather than a per-row map-lookup walk.
//
// Chunk rebuilds emit *encoded* columns, chosen per column per chunk:
//
//   - EncDict: dictionary codes (uint32) against the table's per-column
//     dictionary (dict.go) — strings always try this, ints try it under
//     a small cap so low-cardinality grouping columns get dense codes;
//   - EncFoR: frame-of-reference for int columns whose chunk-local range
//     fits uint32 — values are Ref (the chunk min) + a uint32 delta;
//   - EncRaw: the plain typed vector when neither encoding pays
//     (floats, sealed dictionaries with a wide value range).
//
// Consistency is version-based: every heap write stamps the chunk it
// touches (markColDirty, a shift + bounds check + increment — nothing
// the 0-alloc OLTP path can feel), and ColChunk rebuilds a chunk only
// when its cached build is stale. Dictionaries assign codes append-only,
// so chunks built at different dictionary generations stay mutually
// consistent. Single ownership does the rest: the partition's owner AC
// is the only reader and the only writer, so no locking is needed, and
// the cache travels with the partition on a live handoff like every
// other table state.

// ColChunkShift sets the chunk size: 1<<ColChunkShift heap slots per
// columnar chunk. 2048 matches the scan operators' chunk granularity.
const ColChunkShift = 11

// ColChunkRows is the number of heap slots per columnar chunk.
const ColChunkRows = 1 << ColChunkShift

// EncKind says how one chunk column is physically encoded.
type EncKind uint8

const (
	EncRaw  EncKind = iota // typed vector (Ints / Floats / Strs)
	EncDict                // Codes are dictionary codes; Dict decodes
	EncFoR                 // Codes are deltas from Ref (frame-of-reference)
)

// EncVec is one encoded column of a chunk. Exactly one representation is
// live, selected by Enc; the others keep their capacity for the next
// rebuild.
type EncVec struct {
	Enc    EncKind
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Codes  []uint32 // EncDict: dictionary codes; EncFoR: deltas from Ref
	Ref    int64    // EncFoR frame of reference (the chunk minimum)
	Dict   *Dict    // EncDict: the table's column dictionary
}

// reset prepares the vector for a rebuild, keeping slice capacity.
func (v *EncVec) reset(kind Kind) {
	v.Enc, v.Kind, v.Ref, v.Dict = EncRaw, kind, 0, nil
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	clear(v.Strs) // release string cells so the cache never pins old rows
	v.Strs = v.Strs[:0]
	v.Codes = v.Codes[:0]
}

// Value materializes row i of the column, decoding as needed. Dictionary
// decode returns the interned dictionary string — no allocation.
func (v *EncVec) Value(i int) Value {
	switch v.Enc {
	case EncDict:
		return v.Dict.DecodeValue(v.Codes[i])
	case EncFoR:
		return Int(v.Ref + int64(v.Codes[i]))
	default:
		switch v.Kind {
		case KInt:
			return Int(v.Ints[i])
		case KFloat:
			return Float(v.Floats[i])
		default:
			return Str(v.Strs[i])
		}
	}
}

// EncChunk is one cached columnar mirror of a heap slot range, in
// encoded form. It is owned by the table: readers must not mutate or
// retain it past the next table write.
type EncChunk struct {
	Schema *Schema
	Cols   []EncVec
	n      int
}

// Len returns the chunk's live-row count (tombstones are skipped).
func (c *EncChunk) Len() int { return c.n }

// Value returns the decoded cell at (row, col).
func (c *EncChunk) Value(row, col int) Value { return c.Cols[col].Value(row) }

// colChunk is one chunk-cache entry. version counts writes into the
// range; built records the version the cached chunk was built at (valid
// iff chunk != nil && built == version).
type colChunk struct {
	version uint32
	built   uint32
	chunk   *EncChunk
}

// markColDirty stamps the chunk covering slot as stale. Called on every
// heap write; must stay allocation-free and branch-cheap.
func (t *Table) markColDirty(slot int32) {
	ci := int(slot >> ColChunkShift)
	if ci < len(t.colChunks) {
		t.colChunks[ci].version++
	}
}

// NumColChunks returns how many chunks cover the heap (including the
// trailing partial chunk). Chunks are addressed 0..NumColChunks()-1.
func (t *Table) NumColChunks() int {
	return (len(t.rows) + ColChunkRows - 1) >> ColChunkShift
}

// dict returns the table's dictionary for col, creating it lazily on the
// first chunk rebuild that wants one. Float columns never dictionary-
// encode. The pointer is stable for the life of the table (sealing does
// not replace it), so chunk-cached Dict references never dangle.
func (t *Table) dict(col int) *Dict {
	if t.dicts == nil {
		t.dicts = make([]*Dict, t.Schema.NumCols())
	}
	d := t.dicts[col]
	if d == nil {
		d = newDict(t.Schema.Cols[col].Kind)
		t.dicts[col] = d
	}
	return d
}

// Dict exposes the column dictionary if one exists (nil otherwise) —
// read-only access for scan operators compiling predicates to codes.
func (t *Table) Dict(col int) *Dict {
	if t.dicts == nil {
		return nil
	}
	return t.dicts[col]
}

// ColChunk returns the encoded columnar mirror of chunk ci, rebuilding
// it from the row heap if it was never built or a write landed in its
// range. The returned chunk is owned by the table: callers must not
// mutate, free, or retain it past the next table write.
func (t *Table) ColChunk(ci int) *EncChunk {
	if ci >= len(t.colChunks) {
		if ci >= cap(t.colChunks) {
			grown := make([]colChunk, ci+1, max(2*cap(t.colChunks), ci+1))
			copy(grown, t.colChunks)
			t.colChunks = grown
		} else {
			t.colChunks = t.colChunks[:ci+1]
		}
	}
	c := &t.colChunks[ci]
	if c.chunk != nil && c.built == c.version {
		return c.chunk
	}
	ch := c.chunk
	if ch == nil {
		ch = &EncChunk{Schema: t.Schema, Cols: make([]EncVec, t.Schema.NumCols())}
	}

	// Live slots of the range, collected once so each column encodes in
	// a tight typed loop (scratch reused across rebuilds).
	lo := ci << ColChunkShift
	hi := min(lo+ColChunkRows, len(t.rows))
	slots := t.chunkSlots[:0]
	for slot := lo; slot < hi; slot++ {
		if t.rows[slot] != nil {
			slots = append(slots, int32(slot))
		}
	}
	t.chunkSlots = slots
	ch.n = len(slots)

	for col := range ch.Cols {
		v := &ch.Cols[col]
		kind := t.Schema.Cols[col].Kind
		v.reset(kind)
		switch kind {
		case KFloat:
			for _, s := range slots {
				v.Floats = append(v.Floats, t.rows[s][col].F)
			}
		case KStr:
			if !t.encodeDict(v, col, slots) {
				for _, s := range slots {
					v.Strs = append(v.Strs, t.rows[s][col].S)
				}
			}
		default: // KInt: dictionary first, then frame-of-reference, then raw
			if t.encodeDict(v, col, slots) {
				break
			}
			for _, s := range slots {
				v.Ints = append(v.Ints, t.rows[s][col].I)
			}
			encodeFoR(v)
		}
	}
	c.chunk, c.built = ch, c.version
	return ch
}

// encodeDict tries to dictionary-encode the column over the given slots,
// assigning new codes as it goes. It reports false — leaving v raw-empty
// — when the dictionary seals mid-encode (the cap was hit), which is
// permanent: later rebuilds skip the attempt via Sealed.
func (t *Table) encodeDict(v *EncVec, col int, slots []int32) bool {
	d := t.dict(col)
	if d.Sealed() {
		return false
	}
	if v.Kind == KStr {
		for _, s := range slots {
			code, ok := d.codeStr(t.rows[s][col].S)
			if !ok {
				v.Codes = v.Codes[:0]
				return false
			}
			v.Codes = append(v.Codes, code)
		}
	} else {
		for _, s := range slots {
			code, ok := d.codeInt(t.rows[s][col].I)
			if !ok {
				v.Codes = v.Codes[:0]
				return false
			}
			v.Codes = append(v.Codes, code)
		}
	}
	v.Enc, v.Dict = EncDict, d
	return true
}

// encodeFoR rewrites a raw int vector as frame-of-reference deltas when
// the chunk-local range fits uint32 (so the vector halves and predicate
// constants translate into the delta domain). Otherwise the raw vector
// stays — the range doesn't pay.
func encodeFoR(v *EncVec) {
	if len(v.Ints) == 0 {
		return
	}
	lo, hi := v.Ints[0], v.Ints[0]
	for _, x := range v.Ints[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if uint64(hi-lo) > math.MaxUint32 {
		return
	}
	for _, x := range v.Ints {
		v.Codes = append(v.Codes, uint32(x-lo))
	}
	v.Enc, v.Ref = EncFoR, lo
	v.Ints = v.Ints[:0]
}

package storage

// slabChunkValues sizes the value block a RowSlab carves rows out of.
// One block serves ~680 six-column rows, so the per-row allocation cost
// of an append-only table amortizes to effectively zero.
const slabChunkValues = 4096

// RowSlab carves fixed-arity rows out of large value blocks, so
// append-only tables (TPC-C history) cost no per-row heap allocation.
// A slab is single-writer: it belongs to whoever owns the partition the
// rows land in, which is exactly the discipline that already protects
// the tables themselves.
type RowSlab struct {
	block []Value
}

// NewRow returns a zeroed n-value row carved from the slab (blocks are
// freshly allocated and never recycled, so carved rows start zero). The
// row's capacity is clipped to its length, so appends can never bleed
// into a neighboring row.
func (s *RowSlab) NewRow(n int) Row {
	if len(s.block) < n {
		s.block = make([]Value, slabChunkValues)
	}
	r := Row(s.block[:n:n])
	s.block = s.block[n:]
	return r
}

package storage

import (
	"fmt"
	"sync/atomic"
)

// Partition groups the table shards belonging to one partition key range
// (one TPC-C warehouse in the reproduced workloads). A partition has a
// single owner at any time — an AnyComponent or a baseline transaction
// executor — which is how both engines guarantee race-free access.
type Partition struct {
	ID     int
	tables map[string]*Table
	list   []*Table // dense, indexed by Schema.ID — the hot-path lookup
	seq    int64
	slab   RowSlab
	// owner is an observability tag recording the last live handoff
	// target (an AC id, or -1 before any handoff). The tag is NOT the
	// routing source of truth — core.Topology is — but a handoff stamps
	// it atomically so tooling and tests can ask the storage layer who
	// it was last handed to.
	owner atomic.Int64
}

// Slab returns the partition's row slab for append-only inserts. Like
// the tables, it is single-writer under the ownership discipline: only
// the AC (or executor) currently allowed to write the partition may use
// it, and a live handoff fully drains that writer before the new owner
// takes over.
func (p *Partition) Slab() *RowSlab { return &p.slab }

// Handoff records the partition's transfer to a new owner. The caller
// (the engine's repartitioning path) must have quiesced all in-flight
// work touching the partition first; by that point every pending
// append has landed in the tables, so the only state to move is the
// ownership tag itself — the paper's "state never moves" elasticity.
func (p *Partition) Handoff(newOwner int64) { p.owner.Store(newOwner) }

// LastOwner returns the last Handoff target, or -1 if the partition has
// never been handed off (it still has its setup-time owner).
func (p *Partition) LastOwner() int64 { return p.owner.Load() }

// NextSeq returns a partition-local monotone sequence number (used to key
// tables without a natural primary key, e.g. TPC-C history).
func (p *Partition) NextSeq() int64 {
	p.seq++
	return p.seq
}

// NewPartition returns an empty partition.
func NewPartition(id int) *Partition {
	p := &Partition{ID: id, tables: make(map[string]*Table)}
	p.owner.Store(-1)
	return p
}

// CreateTable adds an empty table for schema and returns it. The table
// also lands in the partition's dense by-ID list: at schema.ID when the
// schema was already registered with a catalog, otherwise at the next
// free slot (assigning schema.ID). Creating tables in the same schema
// order in every partition — what NewDatabase does — therefore gives
// every partition the same TableID → table mapping.
func (p *Partition) CreateTable(schema *Schema) *Table {
	if _, dup := p.tables[schema.Name]; dup {
		panic("storage: duplicate table " + schema.Name + " in partition")
	}
	t := NewTable(schema)
	p.tables[schema.Name] = t
	if schema.ID == NoTable {
		schema.ID = TableID(len(p.list))
	}
	for int(schema.ID) >= len(p.list) {
		p.list = append(p.list, nil)
	}
	if p.list[schema.ID] != nil {
		panic(fmt.Sprintf("storage: TableID %d already bound in partition %d (schema %q)",
			schema.ID, p.ID, schema.Name))
	}
	p.list[schema.ID] = t
	return t
}

// Table returns the named table; it panics on unknown names (schema is
// static in both engines, a miss is a programming error).
func (p *Partition) Table(name string) *Table {
	t, ok := p.tables[name]
	if !ok {
		panic(fmt.Sprintf("storage: no table %q in partition %d", name, p.ID))
	}
	return t
}

// TableByID returns the table bound to an interned handle — the execute
// hot path's lookup: an array index instead of a string-keyed map probe.
func (p *Partition) TableByID(id TableID) *Table {
	t := p.list[id]
	if t == nil {
		panic(fmt.Sprintf("storage: no TableID %d in partition %d", id, p.ID))
	}
	return t
}

// HasTable reports whether the partition holds the named table.
func (p *Partition) HasTable(name string) bool {
	_, ok := p.tables[name]
	return ok
}

// Bytes returns the total approximate size of all tables.
func (p *Partition) Bytes() int64 {
	var s int64
	for _, t := range p.tables {
		s += t.Bytes()
	}
	return s
}

// Database is the full partitioned store: one Partition per warehouse
// plus the catalog. Both engines share this layout; they differ only in
// who executes against it and how access is coordinated.
type Database struct {
	Partitions []*Partition
	Catalog    *Catalog
}

// NewDatabase creates n empty partitions with the given schemas
// instantiated in each.
func NewDatabase(n int, schemas ...*Schema) *Database {
	db := &Database{Catalog: NewCatalog()}
	for _, s := range schemas {
		db.Catalog.AddSchema(s)
	}
	for i := 0; i < n; i++ {
		p := NewPartition(i)
		for _, s := range schemas {
			p.CreateTable(s)
		}
		db.Partitions = append(db.Partitions, p)
	}
	return db
}

// Partition returns partition id, panicking on out-of-range (ownership
// routing bugs should fail loudly).
func (db *Database) Partition(id int) *Partition {
	if id < 0 || id >= len(db.Partitions) {
		panic(fmt.Sprintf("storage: partition %d out of range [0,%d)", id, len(db.Partitions)))
	}
	return db.Partitions[id]
}

// NumPartitions returns the partition count.
func (db *Database) NumPartitions() int { return len(db.Partitions) }

// Catalog maps table names to schemas, statistics, and cardinality
// hints.
type Catalog struct {
	schemas  map[string]*Schema
	byID     []*Schema
	stats    map[string]*TableStats
	rowHints map[string]int
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		schemas:  make(map[string]*Schema),
		stats:    make(map[string]*TableStats),
		rowHints: make(map[string]int),
	}
}

// AddSchema registers a schema, assigning its interned TableID (the
// registration position) unless the schema already carries one from an
// earlier catalog — registration order is deterministic, so shared
// schema sets intern identically everywhere.
func (c *Catalog) AddSchema(s *Schema) {
	c.schemas[s.Name] = s
	if s.ID == NoTable {
		s.ID = TableID(len(c.byID))
	}
	for int(s.ID) >= len(c.byID) {
		c.byID = append(c.byID, nil)
	}
	c.byID[s.ID] = s
}

// Schema returns the schema for a table name, or nil.
func (c *Catalog) Schema(name string) *Schema { return c.schemas[name] }

// SchemaByID returns the schema for an interned handle, or nil.
func (c *Catalog) SchemaByID(id TableID) *Schema {
	if id < 0 || int(id) >= len(c.byID) {
		return nil
	}
	return c.byID[id]
}

// SetStats stores statistics for a table.
func (c *Catalog) SetStats(table string, st *TableStats) { c.stats[table] = st }

// Stats returns statistics for a table, or nil if never analyzed.
func (c *Catalog) Stats(table string) *TableStats { return c.stats[table] }

// SetRowHint records the expected steady-state row count per partition
// for a table. Loaders call Table.Reserve with it so heap growth
// reallocation never shows up on the ingest path.
func (c *Catalog) SetRowHint(table string, rowsPerPartition int) {
	c.rowHints[table] = rowsPerPartition
}

// RowHint returns the per-partition cardinality hint, or 0 if unset.
func (c *Catalog) RowHint(table string) int { return c.rowHints[table] }

// Tables lists registered table names (unordered).
func (c *Catalog) Tables() []string {
	out := make([]string, 0, len(c.schemas))
	for n := range c.schemas {
		out = append(out, n)
	}
	return out
}

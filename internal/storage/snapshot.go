package storage

// Partition migration snapshots (cross-process rebalancing). A snapshot
// is taken and installed inside a drained quiet window — the submission
// plane guarantees no transaction or scan touches the partition — so
// plain row copies are a consistent image.

// SnapshotRows returns a deep copy of the table's live contents split
// the way they must be re-inserted: keyed rows (with their primary
// keys, so point lookups resolve identically after install) and keyless
// heap rows (Append-only tables such as TPC-C history).
func (t *Table) SnapshotRows() (keys []Key, rows []Row, keyless []Row) {
	keyed := make(map[int32]bool, t.pk.Len())
	for i, used := range t.pk.used {
		if !used {
			continue
		}
		slot := t.pk.slots[i]
		keys = append(keys, t.pk.keys[i])
		rows = append(rows, t.rows[slot].Clone())
		keyed[slot] = true
	}
	for slot, r := range t.rows {
		if r != nil && !keyed[int32(slot)] {
			keyless = append(keyless, r.Clone())
		}
	}
	return keys, rows, keyless
}

// ResetRows empties the table in place: row heap, primary and secondary
// indexes, size accounting, the columnar mirror and its dictionaries.
// The schema and index definitions survive, so a snapshot installs into
// the same table identity. Dictionaries reset with the chunks: no chunk
// survives to reference old codes, and the incoming contents rebuild
// both from scratch.
func (t *Table) ResetRows() {
	t.rows = nil
	t.pk = NewHashIndex(64)
	t.live = 0
	t.bytes = 0
	for _, idx := range t.secondary {
		idx.tree = NewBTree()
	}
	t.colChunks = nil
	t.dicts = nil
}

// InstallRows replaces the table's contents with a snapshot taken by
// SnapshotRows on another node.
func (t *Table) InstallRows(keys []Key, rows []Row, keyless []Row) error {
	t.ResetRows()
	t.Reserve(len(keys) + len(keyless))
	for i, k := range keys {
		if _, err := t.Insert(k, rows[i]); err != nil {
			return err
		}
	}
	for _, r := range keyless {
		t.Append(r)
	}
	return nil
}

package storage

import (
	"fmt"
	"sort"
)

// KeyFunc derives an index key from a row.
type KeyFunc func(Row) Key

// SecondaryIndex is an ordered index over a table.
type SecondaryIndex struct {
	Name  string
	tree  *BTree
	keyOf KeyFunc
}

// Table is a row heap plus a primary hash index and optional ordered
// secondary indexes. Tables are not safe for concurrent use: each engine
// guarantees single ownership (one AC owns a partition; the simulation
// runtime is single-threaded).
//
// Secondary indexes are maintained on insert and delete. Updating a
// column that participates in a secondary key is not supported (TPC-C
// never does); UpdateAt panics if asked to.
type Table struct {
	Schema *Schema

	rows       []Row // slot = position; nil = tombstone
	pk         *HashIndex
	secondary  []*SecondaryIndex
	secCols    map[int]bool // columns used by any secondary key
	live       int
	bytes      int64
	colChunks  []colChunk // lazily built columnar mirror (colstore.go)
	dicts      []*Dict    // per-column dictionaries (dict.go), lazy
	chunkSlots []int32    // chunk-rebuild scratch: live slots of one range
}

// Reserve pre-sizes the row heap for at least n slots, so steady-state
// ingest appends land in place instead of growth-reallocating the heap
// (the catalog's cardinality hints feed this at population time).
func (t *Table) Reserve(n int) {
	if n <= cap(t.rows) {
		return
	}
	grown := make([]Row, len(t.rows), n)
	copy(grown, t.rows)
	t.rows = grown
}

// NewTable returns an empty table for schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		Schema:  schema,
		pk:      NewHashIndex(64),
		secCols: make(map[int]bool),
	}
}

// AddIndex registers (and builds) an ordered secondary index. cols lists
// the columns the key derives from, enforcing the no-update rule.
func (t *Table) AddIndex(name string, keyOf KeyFunc, cols ...string) *SecondaryIndex {
	idx := &SecondaryIndex{Name: name, tree: NewBTree(), keyOf: keyOf}
	for _, c := range cols {
		t.secCols[t.Schema.MustCol(c)] = true
	}
	for slot, r := range t.rows {
		if r != nil {
			idx.tree.Put(keyOf(r), int32(slot))
		}
	}
	t.secondary = append(t.secondary, idx)
	return idx
}

// Index returns the named secondary index, or nil.
func (t *Table) Index(name string) *SecondaryIndex {
	for _, idx := range t.secondary {
		if idx.Name == name {
			return idx
		}
	}
	return nil
}

// Insert adds row under key. Duplicate keys are an error.
func (t *Table) Insert(key Key, row Row) (int32, error) {
	if _, dup := t.pk.Get(key); dup {
		return 0, fmt.Errorf("storage: duplicate key %v in %s", key, t.Schema.Name)
	}
	if len(row) != t.Schema.NumCols() {
		return 0, fmt.Errorf("storage: arity mismatch inserting into %s: row has %d values, schema %d",
			t.Schema.Name, len(row), t.Schema.NumCols())
	}
	slot := int32(len(t.rows))
	t.rows = append(t.rows, row)
	t.pk.Put(key, slot)
	for _, idx := range t.secondary {
		idx.tree.Put(idx.keyOf(row), slot)
	}
	t.live++
	t.bytes += row.Size()
	t.markColDirty(slot)
	return slot, nil
}

// Append adds a keyless row to the heap: no primary-key entry, no
// duplicate check — the append-only fast path for tables that are never
// point-looked-up or deleted (TPC-C history). Secondary indexes, if any,
// are still maintained. Returns the slot (for AbortAppend).
func (t *Table) Append(row Row) int32 {
	if len(row) != t.Schema.NumCols() {
		panic(fmt.Sprintf("storage: arity mismatch appending to %s: row has %d values, schema %d",
			t.Schema.Name, len(row), t.Schema.NumCols()))
	}
	slot := int32(len(t.rows))
	t.rows = append(t.rows, row)
	for _, idx := range t.secondary {
		idx.tree.Put(idx.keyOf(row), slot)
	}
	t.live++
	t.bytes += row.Size()
	t.markColDirty(slot)
	return slot
}

// AbortAppend tombstones a row added by Append (transaction rollback).
func (t *Table) AbortAppend(slot int32) {
	row := t.rows[slot]
	if row == nil {
		return
	}
	for _, idx := range t.secondary {
		idx.tree.Delete(idx.keyOf(row))
	}
	t.bytes -= row.Size()
	t.rows[slot] = nil
	t.live--
	t.markColDirty(slot)
}

// Lookup resolves key to a row slot.
func (t *Table) Lookup(key Key) (int32, bool) { return t.pk.Get(key) }

// Get returns a copy of the row under key.
func (t *Table) Get(key Key) (Row, bool) {
	slot, ok := t.pk.Get(key)
	if !ok {
		return nil, false
	}
	return t.rows[slot].Clone(), true
}

// RowAt returns the row at slot without copying. Callers must not mutate
// it; use UpdateAt.
func (t *Table) RowAt(slot int32) Row { return t.rows[slot] }

// Field returns one cell.
func (t *Table) Field(slot int32, col int) Value { return t.rows[slot][col] }

// UpdateAt overwrites one cell, returning the previous value (for undo).
func (t *Table) UpdateAt(slot int32, col int, v Value) Value {
	if t.secCols[col] {
		panic(fmt.Sprintf("storage: update of indexed column %s.%s",
			t.Schema.Name, t.Schema.Cols[col].Name))
	}
	row := t.rows[slot]
	old := row[col]
	t.bytes += v.size() - old.size()
	row[col] = v
	t.markColDirty(slot)
	return old
}

// Delete tombstones the row under key.
func (t *Table) Delete(key Key) bool {
	slot, ok := t.pk.Get(key)
	if !ok {
		return false
	}
	row := t.rows[slot]
	for _, idx := range t.secondary {
		idx.tree.Delete(idx.keyOf(row))
	}
	t.pk.Delete(key)
	t.bytes -= row.Size()
	t.rows[slot] = nil
	t.live--
	t.markColDirty(slot)
	return true
}

// Rows returns the number of live rows.
func (t *Table) Rows() int { return t.live }

// Bytes returns the approximate heap size in bytes, used to model data
// stream volume.
func (t *Table) Bytes() int64 { return t.bytes }

// Scan visits every live row in slot order; fn returning false stops.
// The row is passed by reference: do not mutate or retain it.
func (t *Table) Scan(fn func(slot int32, row Row) bool) {
	for i, r := range t.rows {
		if r == nil {
			continue
		}
		if !fn(int32(i), r) {
			return
		}
	}
}

// ScanRange visits up to n live rows starting at heap slot `from` in slot
// order. It returns the slot to resume from and whether the table end was
// reached — the chunking primitive for cooperative scans that interleave
// with other work (the baseline's OLAP chunks, AnyDB's streaming scans).
func (t *Table) ScanRange(from int32, n int, fn func(slot int32, row Row) bool) (int32, bool) {
	i := int(from)
	visited := 0
	for ; i < len(t.rows) && visited < n; i++ {
		r := t.rows[i]
		if r == nil {
			continue
		}
		visited++
		if !fn(int32(i), r) {
			return int32(i + 1), i+1 >= len(t.rows)
		}
	}
	return int32(i), i >= len(t.rows)
}

// Range visits rows with lo <= indexKey < hi via the named secondary
// index in key order.
func (t *Table) Range(index string, lo, hi Key, fn func(slot int32, row Row) bool) {
	idx := t.Index(index)
	if idx == nil {
		panic(fmt.Sprintf("storage: no index %q on %s", index, t.Schema.Name))
	}
	idx.tree.Range(lo, hi, func(_ Key, slot int32) bool {
		return fn(slot, t.rows[slot])
	})
}

// Keys returns all live primary keys in sorted order — a helper for
// comparing engine end states in tests.
func (t *Table) Keys() []Key {
	keys := make([]Key, 0, t.live)
	for i, used := range t.pk.used {
		if used {
			keys = append(keys, t.pk.keys[i])
		}
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("dispatch order = %v, want [1 2 3]", got)
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %v, want 30", s.Now())
	}
}

func TestSchedulerTieBreakFIFO(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestSchedulerPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(10, func() { fired++ })
	s.At(20, func() { fired++ })
	s.At(30, func() { fired++ })
	s.RunUntil(20)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %v, want 20", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	// RunUntil advances the clock even with no events in range.
	s.RunUntil(25)
	if s.Now() != 25 || fired != 2 {
		t.Fatalf("Now=%v fired=%d after empty RunUntil", s.Now(), fired)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(10, func() {
		order = append(order, "a")
		s.After(5, func() { order = append(order, "c") })
		s.After(1, func() { order = append(order, "b") })
	})
	s.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
}

func TestActorSequentialProcessing(t *testing.T) {
	s := NewScheduler()
	var starts []Time
	a := NewActor(s, "ac0", func(a *Actor, _ Message) {
		starts = append(starts, a.Now())
		a.Charge(100)
	})
	// Three messages arrive at once; they must process back-to-back.
	a.Deliver("m1", 0)
	a.Deliver("m2", 0)
	a.Deliver("m3", 0)
	s.Run()
	want := []Time{0, 100, 200}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}
	if a.BusyTime != 300 {
		t.Fatalf("BusyTime = %v, want 300", a.BusyTime)
	}
	if a.Processed != 3 {
		t.Fatalf("Processed = %d, want 3", a.Processed)
	}
	if a.QueueWait != 0+100+200 {
		t.Fatalf("QueueWait = %v, want 300", a.QueueWait)
	}
}

func TestActorIdleGapsDoNotCharge(t *testing.T) {
	s := NewScheduler()
	a := NewActor(s, "ac0", func(a *Actor, _ Message) { a.Charge(10) })
	a.Deliver(1, 0)
	a.Deliver(2, 1000) // arrives long after the first completes
	s.Run()
	if a.BusyTime != 20 {
		t.Fatalf("BusyTime = %v, want 20", a.BusyTime)
	}
	if s.Now() != 1010 {
		t.Fatalf("Now = %v, want 1010", s.Now())
	}
	if u := a.Utilization(); u < 0.019 || u > 0.021 {
		t.Fatalf("Utilization = %v, want ~0.0198", u)
	}
}

func TestActorSendUsesLocalClock(t *testing.T) {
	s := NewScheduler()
	var bStart Time
	b := NewActor(s, "b", func(a *Actor, _ Message) { bStart = a.Now() })
	a := NewActor(s, "a", func(a *Actor, _ Message) {
		a.Charge(500)
		a.Send(b, "hi", 200) // emitted at local t=500, +200 latency
		a.Charge(100)        // work after the send
	})
	a.Deliver("go", 0)
	s.Run()
	if bStart != 700 {
		t.Fatalf("b started at %v, want 700", bStart)
	}
	if a.BusyTime != 600 {
		t.Fatalf("a.BusyTime = %v, want 600", a.BusyTime)
	}
}

func TestActorPipelineThroughput(t *testing.T) {
	// Two-stage pipeline: stage1 charges 60, stage2 charges 100. With n
	// messages the makespan must be ≈ 60 + n*100 (bottleneck-bound), the
	// core of the streaming-CC speedup argument.
	s := NewScheduler()
	done := 0
	st2 := NewActor(s, "st2", func(a *Actor, _ Message) { a.Charge(100); done++ })
	st1 := NewActor(s, "st1", func(a *Actor, m Message) {
		a.Charge(60)
		a.Send(st2, m, 0)
	})
	const n = 100
	for i := 0; i < n; i++ {
		st1.Deliver(i, 0)
	}
	s.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	makespan := s.Now()
	if makespan != 60+n*100 {
		t.Fatalf("makespan = %v, want %v", makespan, Time(60+n*100))
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	s := NewScheduler()
	l := NewLink(s, "net", 100, 1_000_000_000) // 1 GB/s → 1ns/byte
	var arrivals []Time
	l.Transfer(0, 1000, func(at Time) { arrivals = append(arrivals, at) })
	l.Transfer(0, 1000, func(at Time) { arrivals = append(arrivals, at) })
	s.Run()
	// First: tx 0..1000, +100 latency = 1100. Second waits for the wire:
	// tx 1000..2000, +100 = 2100.
	if arrivals[0] != 1100 || arrivals[1] != 2100 {
		t.Fatalf("arrivals = %v, want [1100 2100]", arrivals)
	}
	if l.BytesSent != 2000 || l.Transfers != 2 {
		t.Fatalf("accounting: bytes=%d transfers=%d", l.BytesSent, l.Transfers)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	s := NewScheduler()
	l := NewLink(s, "mem", 50, 0)
	at := l.Transfer(10, 1<<30, nil)
	if at != 60 {
		t.Fatalf("arrival = %v, want 60 (latency only)", at)
	}
}

func TestLinkTransferTo(t *testing.T) {
	s := NewScheduler()
	var got Message
	var at Time
	a := NewActor(s, "dst", func(a *Actor, m Message) { got, at = m, a.Now() })
	l := NewLink(s, "net", 500, 0)
	l.TransferTo(0, 64, a, "payload")
	s.Run()
	if got != "payload" || at != 500 {
		t.Fatalf("got %v at %v, want payload at 500", got, at)
	}
}

func TestTimeString(t *testing.T) {
	for _, tc := range []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	} {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.t), got, tc.want)
		}
	}
}

// TestSchedulerDeterminism: identical event programs produce identical
// execution traces (quick-checked over random delay vectors).
func TestSchedulerDeterminism(t *testing.T) {
	run := func(delays []uint16) []Time {
		s := NewScheduler()
		var trace []Time
		a := NewActor(s, "a", func(a *Actor, _ Message) {
			trace = append(trace, a.Now())
			a.Charge(75)
		})
		for _, d := range delays {
			a.Deliver(nil, Time(d))
		}
		s.Run()
		return trace
	}
	check := func(delays []uint16) bool {
		t1 := run(delays)
		t2 := run(delays)
		if len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelSane(t *testing.T) {
	c := DefaultCosts()
	if c.IndexLookup <= 0 || c.RecordUpdate <= 0 || c.TxnCommit <= 0 {
		t.Fatal("zero cost in default model")
	}
	// The calibration target from DESIGN.md: a payment-like op sequence
	// (4 record ops + txn overhead + locking) should cost 1–2µs so a
	// single executor lands in the 0.5–1.0 M tx/s band.
	payment := c.TxnBegin + c.TxnCommit +
		4*(c.IndexLookup+c.LockAcquire+c.RecordUpdate+c.LockRelease)
	if payment < 1*Microsecond || payment > 2*Microsecond {
		t.Fatalf("payment calibration = %v, want within [1µs, 2µs]", payment)
	}
	if c.SerializeCost(16<<10) != 1024 {
		t.Fatalf("SerializeCost(16KiB) = %v, want 1024ns", c.SerializeCost(16<<10))
	}
}

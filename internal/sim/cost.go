package sim

// CostModel holds the virtual-time prices for every primitive the engines
// execute. The constants are calibrated (DESIGN.md §3) so that a DBx1000
// transaction executor lands near the paper's anchors — a TPC-C payment
// costs ≈1.4µs of core time, giving ≈0.7 M tx/s per executor and ≈2 M tx/s
// for 4 executors on a partitionable workload — and all remaining figure
// numbers emerge from mechanisms (lock contention, event hops, pipelining,
// transfer/compile overlap), not per-series tuning.
type CostModel struct {
	// Storage primitives.
	IndexLookup  Time // hash index probe
	IndexScanRow Time // B+tree range scan, per row visited
	RecordRead   Time // copy a row out of the heap
	RecordUpdate Time // in-place field update + undo record
	RecordInsert Time // heap append + index maintenance
	ScanRow      Time // sequential scan w/ predicate, per row
	UndoOp       Time // applying one undo record on abort

	// Concurrency control.
	LockAcquire Time // uncontended lock-table op
	LockRelease Time
	LockAbort   Time // no-wait conflict: release + cleanup
	RetryDelay  Time // backoff before a txn retry
	TxnBegin    Time
	TxnCommit   Time

	// Event machinery (the AnyComponent tax).
	EventCreate   Time // build + route one event
	EventDispatch Time // dequeue + dispatch at the receiving AC
	SeqStamp      Time // sequencer stamping one event
	AckProcess    Time // commit coordinator consuming one ack

	// Query processing (per row unless noted).
	HashBuildRow  Time
	HashProbeRow  Time
	AggRow        Time
	PartitionRow  Time // hash-partitioning a row for shuffle
	BatchOverhead Time // fixed cost per data batch handled

	// Transport.
	LocalHopLatency Time  // shared-memory queue between ACs, same server
	NetHopLatency   Time  // cross-server one-way latency
	MemBytesPerSec  int64 // shared-memory queue bandwidth
	NetBytesPerSec  int64 // network link bandwidth (per flow)
	SerializePer16B Time  // CPU cost per 16 bytes for non-offloaded sends
}

// DefaultCosts returns the calibrated model. Rationale per constant:
// point ops reflect 2020-era main-memory DBMS costs (a hash probe ≈100ns,
// an in-place update with undo ≈100ns); lock-table operations ≈50ns
// uncontended (DBx1000 reports locks dominating only under contention);
// event machinery is priced like a function dispatch plus queue op
// (≈40–90ns); shared-memory hops ≈200ns (Folly SPSC + cacheline
// transfer); network hops 1.5µs with 2 GB/s per flow (InfiniBand-class
// DPI flows); memory queues 8 GB/s.
func DefaultCosts() CostModel {
	return CostModel{
		IndexLookup:  110 * Nanosecond,
		IndexScanRow: 25 * Nanosecond,
		RecordRead:   40 * Nanosecond,
		RecordUpdate: 100 * Nanosecond,
		RecordInsert: 180 * Nanosecond,
		ScanRow:      6 * Nanosecond,
		UndoOp:       60 * Nanosecond,

		LockAcquire: 50 * Nanosecond,
		LockRelease: 30 * Nanosecond,
		LockAbort:   80 * Nanosecond,
		RetryDelay:  300 * Nanosecond,
		TxnBegin:    80 * Nanosecond,
		TxnCommit:   150 * Nanosecond,

		EventCreate:   40 * Nanosecond,
		EventDispatch: 90 * Nanosecond,
		SeqStamp:      30 * Nanosecond,
		AckProcess:    40 * Nanosecond,

		HashBuildRow:  30 * Nanosecond,
		HashProbeRow:  12 * Nanosecond,
		AggRow:        8 * Nanosecond,
		PartitionRow:  10 * Nanosecond,
		BatchOverhead: 250 * Nanosecond,

		LocalHopLatency: 200 * Nanosecond,
		NetHopLatency:   1500 * Nanosecond,
		MemBytesPerSec:  8 << 30, // 8 GiB/s
		NetBytesPerSec:  1 << 30, // 1 GiB/s per DPI flow
		SerializePer16B: 1,       // 1ns per 16 bytes ≈ 16 GB/s memcpy
	}
}

// SerializeCost returns the CPU time to serialize size bytes for a
// non-offloaded network send. With DPI flows this work moves to the NIC
// (charged to the link's flow processor instead).
func (c CostModel) SerializeCost(size int64) Time {
	return Time(size) / 16 * c.SerializePer16B
}

package sim

// Link models a unidirectional transport with fixed propagation latency
// and finite bandwidth. Transfers serialize on the link: a transfer may
// begin only when the previous one has finished transmitting. This is the
// simulated stand-in for the paper's shared-memory queues (high bandwidth,
// ~100ns latency) and the InfiniBand network carrying DPI flows (lower
// bandwidth, microsecond latency); see DESIGN.md §3.
type Link struct {
	Name        string
	sched       *Scheduler
	Latency     Time  // propagation delay per message
	BytesPerSec int64 // bandwidth; 0 means infinite

	freeAt Time
	// Accounting.
	BytesSent int64
	Transfers int64
	BusyTime  Time
}

// NewLink returns a link on scheduler s.
func NewLink(s *Scheduler, name string, latency Time, bytesPerSec int64) *Link {
	return &Link{Name: name, sched: s, Latency: latency, BytesPerSec: bytesPerSec}
}

// txDuration returns the wire occupancy for size bytes.
func (l *Link) txDuration(size int64) Time {
	if l.BytesPerSec <= 0 || size <= 0 {
		return 0
	}
	d := Time(float64(size) / float64(l.BytesPerSec) * float64(Second))
	if d < 1 {
		d = 1
	}
	return d
}

// Transfer moves size bytes starting no earlier than `from` virtual time,
// invoking deliver at the arrival time. It returns the arrival time.
// Pass the sender's local clock as `from` (e.g. actor.Now()).
func (l *Link) Transfer(from Time, size int64, deliver func(arrival Time)) Time {
	start := from
	if l.freeAt > start {
		start = l.freeAt
	}
	dur := l.txDuration(size)
	l.freeAt = start + dur
	l.BusyTime += dur
	l.BytesSent += size
	l.Transfers++
	arrival := l.freeAt + l.Latency
	if deliver != nil {
		l.sched.At(arrival, func() { deliver(arrival) })
	}
	return arrival
}

// TransferTo is a convenience that delivers msg to an actor on arrival.
func (l *Link) TransferTo(from Time, size int64, to *Actor, msg Message) Time {
	return l.Transfer(from, size, func(Time) { to.enqueue(msg) })
}

// Utilization returns wire busy time as a fraction of elapsed virtual
// time.
func (l *Link) Utilization() float64 {
	now := l.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(l.BusyTime) / float64(now)
}

// Package sim is a deterministic discrete-event simulation kernel.
//
// It substitutes for the multi-core servers and InfiniBand network of the
// paper's testbed (see DESIGN.md §3): AnyComponents and transaction
// executors run as Actors pinned to virtual cores, operations charge
// virtual nanoseconds from a calibrated cost model while performing the
// real work on real data structures, and Links model message latency and
// bandwidth. All ties are broken by insertion sequence, so a simulation
// with a fixed seed is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since simulation start.
type Time int64

// Common durations in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String renders a Time using the most natural unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

type scheduled struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []scheduled

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)    { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)      { *h = append(*h, x.(scheduled)) }
func (h *eventHeap) Pop() any        { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }
func (h eventHeap) peek() *scheduled { return &h[0] }
func (h eventHeap) emptyHeap() bool  { return len(h) == 0 }
func (h eventHeap) String() string   { return fmt.Sprintf("eventHeap(len=%d)", len(h)) }

// Scheduler is the simulation event loop. It is strictly single-threaded:
// all scheduled functions run on the goroutine that calls Run/RunUntil.
type Scheduler struct {
	heap eventHeap
	now  Time
	seq  uint64
	// Executed counts dispatched events, a cheap progress/diagnostic
	// measure for tests.
	Executed int64
}

// NewScheduler returns an empty scheduler at virtual time zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics: it would silently reorder causality.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.heap, scheduled{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (s *Scheduler) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Step dispatches the next event; it reports false when the queue is
// empty.
func (s *Scheduler) Step() bool {
	if s.heap.emptyHeap() {
		return false
	}
	ev := heap.Pop(&s.heap).(scheduled)
	s.now = ev.at
	s.Executed++
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil dispatches events with timestamps <= deadline, then advances
// the clock to the deadline. Events scheduled beyond the deadline remain
// queued.
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.heap.emptyHeap() && s.heap.peek().at <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

package sim

import "fmt"

// Message is anything delivered to an actor.
type Message any

// Handler processes one message on behalf of an actor. It performs the
// real work (data-structure mutations, emitting follow-up messages) and
// charges the actor's virtual core for the time the work would take via
// Actor.Charge.
type Handler func(a *Actor, msg Message)

// Actor models one virtual CPU core executing messages sequentially from
// a FIFO inbox — the simulation-side incarnation of an AnyComponent or a
// DBx1000 transaction executor. Messages delivered while the core is busy
// wait in the inbox, accumulating queueing delay in virtual time, which is
// exactly the paper's non-blocking execution model: the component never
// blocks, work waits.
type Actor struct {
	Name    string
	sched   *Scheduler
	handler Handler

	inbox     []inboxEntry
	inboxHead int
	busy      bool
	// localNow is the virtual time within the currently running
	// handler: handler start plus everything charged so far.
	localNow Time

	// Accounting.
	BusyTime  Time  // total charged core time
	Processed int64 // messages handled
	QueueWait Time  // total inbox waiting time
	MaxQueue  int   // high-water mark of inbox length
}

type inboxEntry struct {
	msg Message
	at  Time // enqueue time, for queue-wait accounting
}

// NewActor registers a new actor on the scheduler.
func NewActor(s *Scheduler, name string, h Handler) *Actor {
	if h == nil {
		panic("sim: actor requires a handler")
	}
	return &Actor{Name: name, sched: s, handler: h}
}

// Scheduler returns the scheduler this actor runs on.
func (a *Actor) Scheduler() *Scheduler { return a.sched }

// Now returns the actor-local virtual time: during a handler this is the
// handler start time plus charged work, otherwise the global clock.
func (a *Actor) Now() Time {
	if a.busy {
		return a.localNow
	}
	return a.sched.Now()
}

// Charge advances the actor-local clock by d, modelling d nanoseconds of
// core work. Negative charges panic.
func (a *Actor) Charge(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative charge %v on %s", d, a.Name))
	}
	if !a.busy {
		panic("sim: Charge outside handler on " + a.Name)
	}
	a.localNow += d
	a.BusyTime += d
}

// Deliver enqueues msg for this actor after latency (0 = now). It may be
// called from any handler or from outside the simulation loop before Run.
func (a *Actor) Deliver(msg Message, latency Time) {
	a.sched.After(latency, func() { a.enqueue(msg) })
}

// DeliverAt enqueues msg at absolute virtual time t.
func (a *Actor) DeliverAt(msg Message, t Time) {
	a.sched.At(t, func() { a.enqueue(msg) })
}

// Send delivers msg timed from the sending actor's local clock plus
// latency; use it inside handlers so emission time reflects work already
// charged.
func (a *Actor) Send(to *Actor, msg Message, latency Time) {
	to.DeliverAt(msg, a.Now()+latency)
}

func (a *Actor) enqueue(msg Message) {
	a.inbox = append(a.inbox, inboxEntry{msg: msg, at: a.sched.Now()})
	if n := a.QueueLen(); n > a.MaxQueue {
		a.MaxQueue = n
	}
	if !a.busy {
		a.startNext()
	}
}

// QueueLen returns the current inbox length.
func (a *Actor) QueueLen() int { return len(a.inbox) - a.inboxHead }

func (a *Actor) startNext() {
	e := a.inbox[a.inboxHead]
	a.inboxHead++
	// Compact the inbox once the consumed prefix dominates.
	if a.inboxHead > 64 && a.inboxHead*2 >= len(a.inbox) {
		n := copy(a.inbox, a.inbox[a.inboxHead:])
		a.inbox = a.inbox[:n]
		a.inboxHead = 0
	}

	start := a.sched.Now()
	a.QueueWait += start - e.at
	a.busy = true
	a.localNow = start
	a.handler(a, e.msg)
	a.Processed++
	end := a.localNow
	// The core is occupied until `end`; completion re-examines the
	// inbox.
	a.sched.At(end, func() {
		a.busy = false
		if a.QueueLen() > 0 {
			a.startNext()
		}
	})
}

// Utilization returns busy time as a fraction of elapsed virtual time.
func (a *Actor) Utilization() float64 {
	now := a.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(a.BusyTime) / float64(now)
}

package route

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/oltp"
)

func layout4() Layout {
	owners := []core.ACID{0, 1, 2, 3}
	return Layout{
		Owner:    func(p int) core.ACID { return owners[p%len(owners)] },
		Execs:    []core.ACID{0, 1, 2, 3},
		Dispatch: 4, Seq: 5, Coord: 6,
	}
}

func TestSharedNothingRoutes(t *testing.T) {
	r := For(oltp.SharedNothing, layout4())
	if r.ClassRoute != nil {
		t.Fatal("shared-nothing must not class-route")
	}
	if r.Coord != core.NoAC {
		t.Fatal("shared-nothing coordinates at the dispatcher")
	}
	if r.Owner(2) != 2 {
		t.Fatal("owner passthrough broken")
	}
}

func TestStreamingRoutes(t *testing.T) {
	r := For(oltp.StreamingCC, layout4())
	if r.Coord != 6 || r.Seq != 5 {
		t.Fatalf("coord/seq = %d/%d, want 6/5", r.Coord, r.Seq)
	}
	want := map[oltp.Class]core.ACID{
		oltp.ClassWarehouse: 0, oltp.ClassDistrict: 0, oltp.ClassOrder: 0,
		oltp.ClassCustomer: 1, oltp.ClassHistory: 2, oltp.ClassStock: 3,
	}
	for cl, ac := range want {
		if got := r.ClassRoute(0, cl); got != ac {
			t.Errorf("streaming %v -> AC %d, want %d", cl, got, ac)
		}
	}
}

func TestPreciseRoutesTwoSubSequences(t *testing.T) {
	r := For(oltp.PreciseIntra, layout4())
	if r.Coord != core.NoAC {
		t.Fatal("precise coordinates at the dispatcher")
	}
	seen := map[core.ACID]bool{}
	for _, cl := range []oltp.Class{
		oltp.ClassWarehouse, oltp.ClassDistrict, oltp.ClassCustomer,
		oltp.ClassHistory, oltp.ClassOrder, oltp.ClassStock,
	} {
		seen[r.ClassRoute(1, cl)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("precise spreads over %d ACs, want exactly 2", len(seen))
	}
}

func TestNaiveRoutesFourClassesFourACs(t *testing.T) {
	r := For(oltp.NaiveIntra, layout4())
	seen := map[core.ACID]bool{}
	for _, cl := range []oltp.Class{
		oltp.ClassWarehouse, oltp.ClassDistrict, oltp.ClassCustomer, oltp.ClassHistory,
	} {
		seen[r.ClassRoute(0, cl)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("naive spreads the four payment classes over %d ACs, want 4", len(seen))
	}
}

func TestEntry(t *testing.T) {
	l := layout4()
	if got := Entry(oltp.SharedNothing, l, 2); got != 2 {
		t.Fatalf("shared-nothing entry = %d, want owner 2", got)
	}
	if got := Entry(oltp.NaiveIntra, l, 0); got != 3 {
		t.Fatalf("naive entry = %d, want co-located executor 3", got)
	}
	for _, p := range []oltp.Policy{oltp.PreciseIntra, oltp.StreamingCC} {
		if got := Entry(p, l, 1); got != 4 {
			t.Fatalf("%v entry = %d, want dispatch AC 4", p, got)
		}
	}
}

// TestSmallLayoutWraps guards the modulo fallback: a layout with fewer
// executors than record classes must still produce valid ACs.
func TestSmallLayoutWraps(t *testing.T) {
	l := layout4()
	l.Execs = l.Execs[:2]
	for _, p := range []oltp.Policy{oltp.NaiveIntra, oltp.PreciseIntra, oltp.StreamingCC} {
		r := For(p, l)
		for cl := oltp.ClassWarehouse; cl <= oltp.ClassStock; cl++ {
			if ac := r.ClassRoute(0, cl); ac != 0 && ac != 1 {
				t.Fatalf("%v class %v routed to AC %d outside the layout", p, cl, ac)
			}
		}
	}
}

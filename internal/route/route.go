// Package route builds the standard routing tables for the §3 execution
// strategies from a cluster layout. It is the single source of truth for
// "which AC executes what under policy P": both the public runtime
// (anydb.Cluster) and the virtual-time bench harness (internal/bench)
// consume it, so the two can never drift.
package route

import (
	"anydb/internal/core"
	"anydb/internal/oltp"
)

// Layout names the AC roles a routing table is built from. Execs are the
// record-class executors (by convention the first server's ACs, which
// also own the partitions); Dispatch, Seq and Coord live on the control
// server. Indices into Execs wrap modulo its length, so layouts with
// fewer or more than the canonical four executors still route.
type Layout struct {
	// Owner maps a partition (warehouse) to the AC owning it.
	Owner func(partition int) core.ACID
	// Execs are the ACs the fine-grained policies spread record classes
	// over. Must be non-empty.
	Execs []core.ACID
	// Dispatch is the central transaction entry AC for the pipelined
	// policies (precise intra-txn, streaming CC).
	Dispatch core.ACID
	// Seq is the sequencer AC (streaming CC stamping).
	Seq core.ACID
	// Coord is the dedicated commit coordinator AC (streaming CC);
	// the other policies coordinate at the dispatcher.
	Coord core.ACID
}

func (l Layout) exec(i int) core.ACID { return l.Execs[i%len(l.Execs)] }

// For returns the standard routing table for policy p over layout l.
//
//   - SharedNothing (Fig. 4b): transactions aggregate at partition
//     owners; no class routing.
//   - NaiveIntra (Fig. 4c): every record class on its own executor —
//     warehouse+order, district+stock, customer, history — with commit
//     coordination (and the admission barrier) at the dispatcher.
//   - PreciseIntra (Fig. 4d): two balanced sub-sequences — the brief
//     updates on one AC, the long customer/stock work on a second.
//   - StreamingCC (§3.3): per-class segments stamped by the sequencer,
//     committed by the dedicated coordinator.
func For(p oltp.Policy, l Layout) oltp.Routes {
	r := oltp.Routes{Owner: l.Owner, Seq: l.Seq, Coord: core.NoAC}
	switch p {
	case oltp.StreamingCC:
		r.ClassRoute = func(w int, c oltp.Class) core.ACID {
			switch c {
			case oltp.ClassCustomer:
				return l.exec(1)
			case oltp.ClassHistory:
				return l.exec(2)
			case oltp.ClassStock:
				return l.exec(3)
			default:
				return l.exec(0)
			}
		}
		r.Coord = l.Coord
	case oltp.PreciseIntra:
		r.ClassRoute = func(w int, c oltp.Class) core.ACID {
			if c == oltp.ClassCustomer || c == oltp.ClassStock {
				return l.exec(1)
			}
			return l.exec(0)
		}
	case oltp.NaiveIntra:
		r.ClassRoute = func(w int, c oltp.Class) core.ACID {
			switch c {
			case oltp.ClassWarehouse, oltp.ClassOrder:
				return l.exec(0)
			case oltp.ClassDistrict, oltp.ClassStock:
				return l.exec(1)
			case oltp.ClassCustomer:
				return l.exec(2)
			default: // history
				return l.exec(3)
			}
		}
	}
	return r
}

// Entry picks the AC where a transaction with the given home warehouse
// enters the system: under shared-nothing the partition owner itself
// acts as dispatcher (physically aggregated execution); naive-intra
// co-locates the dispatcher with the executors so its admission barrier
// pays local hops only — and keeps all admissions on ONE dispatcher,
// which the per-home serialization depends on; the pipelined policies
// use the central dispatch AC.
func Entry(p oltp.Policy, l Layout, home int) core.ACID {
	switch p {
	case oltp.SharedNothing:
		return l.Owner(home)
	case oltp.NaiveIntra:
		return l.exec(3)
	default:
		return l.Dispatch
	}
}

package bench

import (
	"anydb/internal/dbx1000"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// OLTPOpts parameterizes the Figure 1 / Figure 5 throughput experiments.
type OLTPOpts struct {
	Cfg         tpcc.Config
	PhaseDur    sim.Time // virtual time per workload phase
	Outstanding int      // closed-loop depth
	OLAPStreams int      // concurrent HTAP query chains (Figure 1)
	Seed        int64
}

// DefaultOLTPOpts mirrors the paper's setup: 4 warehouses over 2 servers
// × 4 cores, 100% payment (the transaction §3's experiments contend on).
func DefaultOLTPOpts() OLTPOpts {
	return OLTPOpts{
		Cfg: tpcc.Config{Warehouses: 4, Districts: 10, Customers: 600,
			Items: 1000, InitOrders: 1500, LinesPerOrder: 1, Seed: 42},
		PhaseDur:    20 * sim.Millisecond,
		Outstanding: 32,
		OLAPStreams: 4,
		Seed:        7,
	}
}

// fig5Phases: partitionable OLTP (0–2) then skewed OLTP (3–5).
func fig5Phases() []tpcc.Mix {
	var phases []tpcc.Mix
	for i := 0; i < 3; i++ {
		phases = append(phases, tpcc.Partitionable())
	}
	for i := 0; i < 3; i++ {
		phases = append(phases, tpcc.Skewed())
	}
	return phases
}

// mtps converts a committed count per window into million tx/s.
func mtps(committed int64, window sim.Time) float64 {
	return float64(committed) / window.Seconds() / 1e6
}

// RunDBxSeries measures the baseline with the given TE count across the
// phases; htapFrom >= 0 starts continuous OLAP at that phase index.
func RunDBxSeries(opts OLTPOpts, tes int, phases []tpcc.Mix, htapFrom int) (*metrics.Series, *dbx1000.Engine) {
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	sched := sim.NewScheduler()
	eng := dbx1000.New(sched, db, cfg, tes, sim.DefaultCosts())
	gen := tpcc.NewGenerator(cfg, phases[0], opts.Seed)
	eng.SetSource(func() *tpcc.Txn { txn := gen.Next(); return &txn })
	eng.Prime(opts.Outstanding)

	s := &metrics.Series{Label: seriesLabel("DBx1000", tes)}
	for i, mix := range phases {
		gen.SetMix(mix)
		if htapFrom >= 0 && i == htapFrom {
			eng.StartOLAP(true, opts.OLAPStreams)
		}
		eng.Committed.Reset()
		sched.RunUntil(sim.Time(i+1) * opts.PhaseDur)
		s.Append(mtps(eng.Committed.Load(), opts.PhaseDur))
	}
	return s, eng
}

func seriesLabel(base string, tes int) string {
	if tes == 1 {
		return base + " 1TE"
	}
	return base + " 4TE"
}

// anyDBVariant describes one AnyDB line of Figure 5. Routing tables come
// from internal/route via AnyDB.RoutesFor.
type anyDBVariant struct {
	label  string
	policy oltp.Policy
}

func fig5Variants() []anyDBVariant {
	return []anyDBVariant{
		{"AnyDB Shared-Nothing", oltp.SharedNothing},
		{"AnyDB Static Intra-Txn", oltp.NaiveIntra},
		{"AnyDB Precise Intra-Txn", oltp.PreciseIntra},
		{"AnyDB Streaming CC", oltp.StreamingCC},
	}
}

// RunAnyDBSeries measures one fixed AnyDB routing strategy across phases.
func RunAnyDBSeries(opts OLTPOpts, v anyDBVariant, phases []tpcc.Mix) (*metrics.Series, *AnyDB) {
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	a := NewAnyDB(db, cfg, sim.DefaultCosts())
	a.SetPolicy(v.policy, a.RoutesFor(v.policy))
	gen := tpcc.NewGenerator(cfg, phases[0], opts.Seed)
	a.SetWorkload(gen)
	a.Prime(opts.Outstanding)

	s := &metrics.Series{Label: v.label}
	for i, mix := range phases {
		gen.SetMix(mix)
		a.TakeWindow()
		a.Cl.RunUntil(sim.Time(i+1) * opts.PhaseDur)
		committed, _, _ := a.TakeWindow()
		s.Append(mtps(committed, opts.PhaseDur))
	}
	return s, a
}

// Figure5 reproduces the paper's Figure 5: OLTP throughput of six
// configurations across partitionable (0–2) and skewed (3–5) phases.
func Figure5(opts OLTPOpts) []*metrics.Series {
	phases := fig5Phases()
	var out []*metrics.Series
	for _, tes := range []int{4, 1} {
		s, _ := RunDBxSeries(opts, tes, phases, -1)
		out = append(out, s)
	}
	for _, v := range fig5Variants() {
		s, _ := RunAnyDBSeries(opts, v, phases)
		out = append(out, s)
	}
	return out
}

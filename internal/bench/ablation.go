package bench

import (
	"fmt"
	"strings"

	"anydb/internal/metrics"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// AblationRow quantifies the event-machinery cost of each routing mode
// (the Figure 4 duality made measurable): how many events and cross-AC
// hops one transaction costs, and what throughput that buys under skew.
type AblationRow struct {
	Mode         string
	EventsPerTxn float64
	Throughput   float64 // M tx/s in the skewed phase
	ExecUtil     []float64
}

// Ablation runs each AnyDB mode on the skewed workload and reports
// events/txn, throughput, and executor utilization — the data behind
// §3.2's "overhead of parallelizing within one transaction dominates".
func Ablation(opts OLTPOpts) []AblationRow {
	var rows []AblationRow
	for _, v := range fig5Variants() {
		db, cfg := tpcc.NewDatabase(opts.Cfg)
		a := NewAnyDB(db, cfg, sim.DefaultCosts())
		a.SetPolicy(v.policy, a.RoutesFor(v.policy))
		gen := tpcc.NewGenerator(cfg, tpcc.Skewed(), opts.Seed)
		a.SetWorkload(gen)
		a.Prime(opts.Outstanding)
		a.Cl.RunUntil(opts.PhaseDur)
		committed, _, _ := a.TakeWindow()

		var events int64
		for _, id := range a.Topo.AllACs() {
			events += a.Cl.AC(id).EventsHandled
		}
		var utils []float64
		for _, id := range a.Execs() {
			utils = append(utils, a.Cl.Actor(id).Utilization())
		}
		row := AblationRow{
			Mode:       v.label,
			Throughput: mtps(committed, opts.PhaseDur),
			ExecUtil:   utils,
		}
		if committed > 0 {
			row.EventsPerTxn = float64(events) / float64(committed)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderAblation formats the ablation table.
func RenderAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation — event machinery cost per routing mode (skewed payment)\n\n")
	fmt.Fprintf(&b, "%-26s %12s %12s  %s\n", "mode", "events/txn", "M tx/s", "executor utilization")
	for _, r := range rows {
		var u []string
		for _, v := range r.ExecUtil {
			u = append(u, fmt.Sprintf("%.2f", v))
		}
		fmt.Fprintf(&b, "%-26s %12.1f %12.2f  [%s]\n",
			r.Mode, r.EventsPerTxn, r.Throughput, strings.Join(u, " "))
	}
	return b.String()
}

// Headline summarizes the key paper-vs-measured anchors for Figure 5
// (used by EXPERIMENTS.md and the CLI).
func Headline(series []*metrics.Series) string {
	avg := func(label string, from, to int) float64 {
		for _, s := range series {
			if s.Label == label {
				sum := 0.0
				for i := from; i <= to && i < len(s.Points); i++ {
					sum += s.Points[i]
				}
				return sum / float64(to-from+1)
			}
		}
		return 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "skewed-phase anchors (paper → measured, M tx/s):\n")
	fmt.Fprintf(&b, "  DBx1000 4TE        0.7 → %.2f\n", avg("DBx1000 4TE", 3, 5))
	fmt.Fprintf(&b, "  naive intra-txn    0.8 → %.2f\n", avg("AnyDB Static Intra-Txn", 3, 5))
	fmt.Fprintf(&b, "  precise intra-txn  1.2 → %.2f\n", avg("AnyDB Precise Intra-Txn", 3, 5))
	fmt.Fprintf(&b, "  streaming CC       1.7 → %.2f\n", avg("AnyDB Streaming CC", 3, 5))
	fmt.Fprintf(&b, "partitionable-phase anchors:\n")
	fmt.Fprintf(&b, "  DBx1000 4TE        2.0 → %.2f\n", avg("DBx1000 4TE", 0, 2))
	fmt.Fprintf(&b, "  AnyDB shared-nothing 2.0 → %.2f\n", avg("AnyDB Shared-Nothing", 0, 2))
	return b.String()
}

package bench

import (
	"anydb/internal/adapt"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// fig1Phase describes one of the 12 evolving-workload phases of Figure 1.
type fig1Phase struct {
	mix    tpcc.Mix
	htap   bool
	policy oltp.Policy // AnyDB's oracle routing choice for the phase
}

// fig1Phases: partitionable OLTP (0–2) → skewed OLTP (3–5) → skewed HTAP
// (6–8) → partitionable HTAP (9–11). AnyDB's per-phase policy is the
// paper's "optimal decision" oracle (§2.3: the prototype showcases the
// approach with optimal routing; learned optimizers are future work).
func fig1Phases() []fig1Phase {
	var out []fig1Phase
	add := func(n int, mix tpcc.Mix, htap bool, pol oltp.Policy) {
		for i := 0; i < n; i++ {
			out = append(out, fig1Phase{mix: mix, htap: htap, policy: pol})
		}
	}
	add(3, tpcc.Partitionable(), false, oltp.SharedNothing)
	add(3, tpcc.Skewed(), false, oltp.StreamingCC)
	add(3, tpcc.Skewed(), true, oltp.StreamingCC)
	add(3, tpcc.Partitionable(), true, oltp.SharedNothing)
	return out
}

// Fig1Result carries the OLTP throughput lines — the static baseline,
// the scripted AnyDB oracle, and the self-driving adaptive run — plus
// the HTAP-side OLAP rates the paper's §4 narrative mentions.
type Fig1Result struct {
	Series []*metrics.Series
	// Queries completed during the HTAP phases.
	DBxQueries   int64
	AnyDBQueries int64
	// Adaptations is the controller's decision log from the adaptive
	// run (zero scripted switches; these are its own).
	Adaptations []adapt.Decision
}

// Figure1 reproduces the paper's Figure 1: OLTP throughput of the static
// DBx1000 versus AnyDB adapting its architecture per phase.
func Figure1(opts OLTPOpts) Fig1Result {
	phases := fig1Phases()
	var res Fig1Result

	// Baseline: static shared-nothing, OLAP co-located from phase 6 on.
	mixes := make([]tpcc.Mix, len(phases))
	for i, p := range phases {
		mixes[i] = p.mix
	}
	htapFrom := -1
	for i, p := range phases {
		if p.htap {
			htapFrom = i
			break
		}
	}
	dbxSeries, dbxEng := RunDBxSeries(opts, 4, mixes, htapFrom)
	dbxSeries.Label = "DBx1000"
	res.Series = append(res.Series, dbxSeries)
	res.DBxQueries = dbxEng.QueryDone

	// AnyDB: adapt policy and OLAP isolation per phase.
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	a := NewAnyDB(db, cfg, sim.DefaultCosts())
	gen := tpcc.NewGenerator(cfg, phases[0].mix, opts.Seed)
	a.SetWorkload(gen)
	a.SetPolicy(phases[0].policy, a.RoutesFor(phases[0].policy))
	a.Prime(opts.Outstanding)

	s := &metrics.Series{Label: "AnyDB"}
	cur := phases[0].policy
	for i, p := range phases {
		gen.SetMix(p.mix)
		if p.policy != cur {
			// Architecture shift: drain in-flight work (bounded by
			// the closed-loop depth), reroute, resume — no
			// reconfiguration downtime beyond that. The drain eats
			// into the phase's measured window, which is the visible
			// transition dip at phases 3 and 9.
			a.Drain()
			a.SetPolicy(p.policy, a.RoutesFor(p.policy))
			a.Prime(opts.Outstanding)
			cur = p.policy
		}
		if p.htap {
			a.EnableOLAP(opts.OLAPStreams)
		} else {
			a.DisableOLAP()
		}
		a.TakeWindow()
		a.Cl.RunUntil(sim.Time(i+1) * opts.PhaseDur)
		committed, _, queries := a.TakeWindow()
		res.AnyDBQueries += queries
		s.Append(mtps(committed, opts.PhaseDur))
	}
	res.Series = append(res.Series, s)

	// Self-driving AnyDB: same workload, zero scripted switches — the
	// adaptation controller observes and reroutes on its own.
	adaptive, auto := RunEvolvingAdaptive(opts, oltp.SharedNothing)
	res.Series = append(res.Series, adaptive)
	res.Adaptations = auto.AdaptLog()
	return res
}

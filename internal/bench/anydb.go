// Package bench regenerates every figure of the paper's evaluation:
// Figure 1 (evolving workload), Figure 5 (OLTP execution strategies) and
// Figure 6 (data beaming), plus ablations. Engines run on the
// virtual-time kernel; see DESIGN.md §2 for the experiment index and §3
// for the calibration rationale.
package bench

import (
	"anydb/internal/adapt"
	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/oltp"
	"anydb/internal/plan"
	"anydb/internal/route"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// AnyDB is the benchmark-side assembly of the architecture-less system:
// the Figure 2 layout (2 servers × 4 ACs, growable), with every AC
// registering the full generic behavior set — executor, OLAP worker,
// query optimizer, sequencer, dispatcher — so any AC can act as anything;
// routing alone decides who does what.
type AnyDB struct {
	Cl   *core.SimCluster
	Topo *core.Topology
	DB   *storage.Database
	Cfg  tpcc.Config

	execs   []core.ACID // server-1 ACs, partition owners
	ctrl    []core.ACID // server-2 ACs: dispatcher, sequencer, coordinator, QO
	extra   []core.ACID // grown servers for HTAP isolation
	dispers map[core.ACID]*oltp.Dispatcher

	gen      *tpcc.Generator
	policy   oltp.Policy
	routes   oltp.Routes
	lay      route.Layout // role layout, fixed at construction
	nextTxn  core.TxnID
	nextQID  core.QueryID
	inflight int
	paused   bool
	depth    int // closed-loop depth of the last Prime

	// Self-driving mode: the controller behavior observes EvSignal
	// telemetry and emits EvAdapt decisions; the harness applies a
	// pending switch once in-flight work drains.
	adapt         *adapt.Controller
	tel           oltp.Telemetry
	pendingSwitch *adapt.Decision

	// Window counters, reset by TakeWindow.
	committed int64
	aborted   int64
	queries   int64

	olapOn   bool
	olapPlan func(q core.QueryID) *plan.Q3Plan
}

// NewAnyDB builds the cluster over a freshly populated database.
func NewAnyDB(db *storage.Database, cfg tpcc.Config, costs sim.CostModel) *AnyDB {
	return newAnyDB(db, cfg, costs, nil)
}

// NewAdaptiveAnyDB builds the cluster with the self-driving loop wired
// in: every dispatcher and the commit coordinator report telemetry to
// the sequencer AC, where the controller runs as the EvSignal behavior.
// Decisions reach the harness as EvAdapt client events and are applied
// as soon as in-flight work drains — no scripted switches anywhere.
// Zero Env fields in opts are derived from the built topology, so the
// cost model always scores against the real executor count.
func NewAdaptiveAnyDB(db *storage.Database, cfg tpcc.Config, costs sim.CostModel, opts adapt.Options) *AnyDB {
	return newAnyDB(db, cfg, costs, &opts)
}

func newAnyDB(db *storage.Database, cfg tpcc.Config, costs sim.CostModel, aopts *adapt.Options) *AnyDB {
	a := &AnyDB{DB: db, Cfg: cfg.WithDefaults(), dispers: make(map[core.ACID]*oltp.Dispatcher)}
	a.Topo = core.NewTopology(db)
	a.execs = a.Topo.AddServer(4)
	a.ctrl = a.Topo.AddServer(4)
	for w := 0; w < a.Cfg.Warehouses; w++ {
		a.Topo.SetOwner(w, a.execs[w%len(a.execs)])
	}
	a.policy = oltp.SharedNothing
	a.lay = route.Layout{
		Owner: a.Topo.Owner, Execs: a.execs,
		Dispatch: a.DispatchAC(), Seq: a.SeqAC(), Coord: a.CoordAC(),
	}
	a.routes = route.For(a.policy, a.lay)
	if aopts != nil {
		if aopts.Env.Executors == 0 {
			aopts.Env.Executors = len(a.execs)
		}
		if aopts.Env.Warehouses == 0 {
			aopts.Env.Warehouses = a.Cfg.Warehouses
		}
		a.adapt = adapt.NewController(*aopts)
		a.tel = oltp.Telemetry{Sink: a.SeqAC(), Every: 32, Enabled: true}
	}
	a.Cl = core.NewSimCluster(a.Topo, costs, a.setupAC)
	// AnyDB's deployment uses DPI flows (§4): cross-server streams are
	// serialized and partitioned by the NICs, not the sending cores.
	a.Cl.DPI = true
	a.Cl.SetClient(a.onClient)
	return a
}

// Role accessors (server 2 layout).
func (a *AnyDB) DispatchAC() core.ACID { return a.ctrl[0] }
func (a *AnyDB) SeqAC() core.ACID      { return a.ctrl[1] }
func (a *AnyDB) CoordAC() core.ACID    { return a.ctrl[2] }
func (a *AnyDB) QOAC() core.ACID       { return a.ctrl[3] }

// Execs returns the partition-owner ACs.
func (a *AnyDB) Execs() []core.ACID { return a.execs }

// setupAC registers the generic behavior set on every AC. Dispatchers
// are per-AC instances; EvAck coordination lives with the dispatcher
// except on the dedicated coordinator AC.
func (a *AnyDB) setupAC(ac *core.AC) {
	ac.Register(core.EvSegment, &oltp.Executor{DB: a.DB})
	ac.Register(core.EvInstallOp, &olap.Worker{DB: a.DB})
	ac.Register(core.EvQuery, &plan.QO{Topo: a.Topo})
	ac.Register(core.EvSeqStamp, &core.Sequencer{})
	if a.adapt != nil {
		// The controller registers everywhere (components stay
		// generic); only the telemetry sink AC receives reports.
		ac.Register(core.EvSignal, a.adapt)
	}
	if len(a.ctrl) > 0 && ac.ID == a.CoordAC() {
		coord := oltp.NewCoordinator()
		coord.SetTelemetry(a.tel)
		ac.Register(core.EvAck, coord)
		return
	}
	d := oltp.NewDispatcher(a.policy, a.DB, a.routes)
	d.SetTelemetry(a.tel)
	a.dispers[ac.ID] = d
	ac.Register(core.EvTxn, d)
	ac.Register(core.EvAck, d)
}

// SetWorkload installs the transaction generator.
func (a *AnyDB) SetWorkload(gen *tpcc.Generator) { a.gen = gen }

// SetPolicy reconfigures routing for subsequent transactions. Callers
// must Drain first when switching between policies whose routings could
// interleave conflicting events differently (the harness drains at phase
// boundaries; in-flight work always completes under its old routing —
// the paper's "no downtime" reconfiguration).
func (a *AnyDB) SetPolicy(policy oltp.Policy, routes oltp.Routes) {
	a.policy = policy
	a.routes = routes
	for _, d := range a.dispers {
		d.SetConfig(policy, routes)
	}
}

// RoutesFor maps a policy to its standard routing table — the same
// internal/route mapping the public runtime (anydb.Cluster) uses, so
// the bench harness and the real engine can never drift apart. The
// layout is cached at construction (role ACs never change), keeping
// the closed-loop injection path allocation-free.
func (a *AnyDB) RoutesFor(p oltp.Policy) oltp.Routes {
	return route.For(p, a.lay)
}

// entryAC picks where a transaction enters the system (see route.Entry).
func (a *AnyDB) entryAC(txn *tpcc.Txn) core.ACID {
	return route.Entry(a.policy, a.lay, txn.HomeWarehouse())
}

// injectNext issues one transaction from the generator (closed loop).
// The txn rides the pool: the dispatcher frees it once the op program
// is compiled, so the closed loop allocates no Txn in steady state.
func (a *AnyDB) injectNext(at sim.Time) {
	txn := tpcc.GetTxn()
	a.gen.NextInto(txn)
	a.nextTxn++
	a.inflight++
	a.Cl.Inject(a.entryAC(txn), &core.Event{
		Kind: core.EvTxn, Txn: a.nextTxn, Payload: txn,
	}, at)
}

// Prime seeds the closed loop with n outstanding transactions.
func (a *AnyDB) Prime(n int) {
	a.paused = false
	a.depth = n
	for i := 0; i < n; i++ {
		a.injectNext(a.Cl.Sched.Now())
	}
}

// AdaptLog returns the self-driving controller's decisions (nil when
// the cluster was built without one).
func (a *AnyDB) AdaptLog() []adapt.Decision {
	if a.adapt == nil {
		return nil
	}
	return a.adapt.Log()
}

// onClient keeps the loop full and counts completions.
func (a *AnyDB) onClient(at sim.Time, ev *core.Event) {
	switch p := ev.Payload.(type) {
	case *oltp.DoneInfo:
		if p.Committed {
			a.committed++
		} else {
			a.aborted++
		}
		a.inflight--
		if a.pendingSwitch != nil {
			// Architecture shift in flight: stop refilling the loop;
			// once drained, reroute and resume. This is the same
			// drain-reroute-resume protocol the scripted harness uses,
			// driven by the controller instead of the script.
			if a.inflight == 0 {
				a.applyPendingSwitch()
			}
			return
		}
		if !a.paused {
			a.injectNext(at)
		}
	case *olap.QueryResult:
		a.queries++
		if a.olapOn {
			a.startQuery(at)
		}
	case *adapt.Decision:
		if p.From == p.To {
			// Grow-only decisions are the harness's business (the
			// evolving workload grows servers with the OLAP load).
			return
		}
		// Latest decision wins: the controller tracks the policy it
		// chose, so an un-applied older target must not shadow a
		// newer one (e.g. a revert emitted mid-drain).
		a.pendingSwitch = p
		if a.inflight == 0 {
			a.applyPendingSwitch()
		}
	case *olap.OpDone:
		// Figure 6 instrumentation; unused in throughput runs.
	}
}

// applyPendingSwitch reroutes to the controller's chosen policy and
// refills the closed loop. Runs inside the client callback with no
// transactions in flight, so no conflicting work straddles routings.
func (a *AnyDB) applyPendingSwitch() {
	d := a.pendingSwitch
	a.pendingSwitch = nil
	if d.To != a.policy {
		a.SetPolicy(d.To, a.RoutesFor(d.To))
	}
	if !a.paused {
		a.Prime(a.depth)
	}
}

// Drain pauses injection and runs until all in-flight transactions
// complete (used at policy switches).
func (a *AnyDB) Drain() {
	a.paused = true
	for a.inflight > 0 {
		a.Cl.RunUntil(a.Cl.Sched.Now() + sim.Millisecond)
	}
}

// TakeWindow returns and resets the window counters.
func (a *AnyDB) TakeWindow() (committed, aborted, queries int64) {
	committed, aborted, queries = a.committed, a.aborted, a.queries
	a.committed, a.aborted, a.queries = 0, 0, 0
	return
}

// EnableOLAP grows two extra servers (Figure 3b) on first use and starts
// `streams` continuous Q3 chains with full data beaming, isolated from
// the OLTP ACs: joins and the QO run on the new servers, scans stream
// from the storage owners.
func (a *AnyDB) EnableOLAP(streams int) {
	if len(a.extra) == 0 {
		a.extra = append(a.extra, a.Cl.GrowServer(4, a.setupAC)...)
		a.extra = append(a.extra, a.Cl.GrowServer(4, a.setupAC)...)
	}
	if a.olapPlan == nil {
		parts := make([]int, a.Cfg.Warehouses)
		for i := range parts {
			parts[i] = i
		}
		a.olapPlan = func(q core.QueryID) *plan.Q3Plan {
			// Spread the query streams' operators across the extra
			// servers' ACs.
			base := int(q) * 2 % len(a.extra)
			return &plan.Q3Plan{
				Query: q, Beam: plan.BeamAll, CompileTime: 2 * sim.Millisecond,
				Parts:   parts,
				Join1AC: a.extra[base], Join2AC: a.extra[(base+1)%len(a.extra)],
				Notify: core.ClientAC,
			}
		}
	}
	if !a.olapOn {
		a.olapOn = true
		if streams < 1 {
			streams = 1
		}
		for i := 0; i < streams; i++ {
			a.startQuery(a.Cl.Sched.Now())
		}
	}
}

// DisableOLAP stops issuing new queries.
func (a *AnyDB) DisableOLAP() { a.olapOn = false }

func (a *AnyDB) startQuery(at sim.Time) {
	a.nextQID++
	// Any AC can act as the query optimizer (Figure 2): rotate the QO
	// role across the extra servers so concurrent query streams compile
	// in parallel.
	qoAC := a.QOAC()
	if n := len(a.extra); n > 0 {
		qoAC = a.extra[(int(a.nextQID)*3+2)%n]
	}
	a.Cl.Inject(qoAC, &core.Event{
		Kind: core.EvQuery, Query: a.nextQID, Payload: a.olapPlan(a.nextQID),
	}, at)
}

package bench

import (
	"fmt"
	"strings"
	"testing"

	"anydb/internal/adapt"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// quickOLTP shrinks the experiment for test time; shapes must still hold.
func quickOLTP() OLTPOpts {
	o := DefaultOLTPOpts()
	o.PhaseDur = 4 * sim.Millisecond
	o.Cfg.Customers = 200
	o.Cfg.InitOrders = 1000 // enough scan/join volume for the HTAP phases
	return o
}

func quickFig6() Fig6Opts {
	o := DefaultFig6Opts()
	o.Cfg = tpcc.Config{Warehouses: 8, Districts: 4, Customers: 300,
		Items: 50, InitOrders: 300, LinesPerOrder: 1, DataPad: 8, Seed: 42}
	o.CompileTimes = []sim.Time{0, 2 * sim.Millisecond, 8 * sim.Millisecond}
	return o
}

func TestFigure5Shapes(t *testing.T) {
	opts := quickOLTP()
	series := Figure5(opts)
	if len(series) != 6 {
		t.Fatalf("series count = %d", len(series))
	}
	get := func(label string) []float64 {
		for _, s := range series {
			if s.Label == label {
				return s.Points
			}
		}
		t.Fatalf("missing %s", label)
		return nil
	}
	avg := func(p []float64, from, to int) float64 {
		s := 0.0
		for i := from; i <= to; i++ {
			s += p[i]
		}
		return s / float64(to-from+1)
	}
	dbx4 := get("DBx1000 4TE")
	dbx1 := get("DBx1000 1TE")
	sn := get("AnyDB Shared-Nothing")
	naive := get("AnyDB Static Intra-Txn")
	precise := get("AnyDB Precise Intra-Txn")
	streaming := get("AnyDB Streaming CC")

	// Shape 1: partitionable — 4TE scales over 1TE; AnyDB SN in the same
	// band as DBx 4TE.
	if avg(dbx4, 0, 2) < 2*avg(dbx1, 0, 2) {
		t.Errorf("4TE (%.2f) should scale over 1TE (%.2f) when partitionable",
			avg(dbx4, 0, 2), avg(dbx1, 0, 2))
	}
	if r := avg(sn, 0, 2) / avg(dbx4, 0, 2); r < 0.6 || r > 1.8 {
		t.Errorf("AnyDB SN / DBx 4TE partitionable ratio = %.2f, want ≈1", r)
	}
	// Shape 2: skewed — contention collapse: 4TE ≈ 1TE.
	if r := avg(dbx4, 3, 5) / avg(dbx1, 3, 5); r < 0.7 || r > 1.5 {
		t.Errorf("skewed 4TE/1TE = %.2f, want ≈1 (collapse)", r)
	}
	// Shape 3: skewed ordering — streaming > precise > baseline; naive
	// barely above baseline.
	if avg(streaming, 3, 5) <= avg(precise, 3, 5) {
		t.Errorf("streaming (%.2f) must beat precise (%.2f)",
			avg(streaming, 3, 5), avg(precise, 3, 5))
	}
	if avg(precise, 3, 5) <= avg(dbx4, 3, 5) {
		t.Errorf("precise (%.2f) must beat baseline (%.2f)",
			avg(precise, 3, 5), avg(dbx4, 3, 5))
	}
	if avg(naive, 3, 5) < avg(dbx4, 3, 5)*0.7 {
		t.Errorf("naive (%.2f) collapsed below baseline (%.2f)",
			avg(naive, 3, 5), avg(dbx4, 3, 5))
	}
	// Shape 4: streaming CC recovers a large fraction of partitionable
	// throughput (paper: 1.7 of 2.0).
	if avg(streaming, 3, 5) < 0.5*avg(dbx4, 0, 2) {
		t.Errorf("streaming skewed (%.2f) too far below partitionable (%.2f)",
			avg(streaming, 3, 5), avg(dbx4, 0, 2))
	}
	out := RenderFigure5(series, opts)
	if !strings.Contains(out, "AnyDB Streaming CC") {
		t.Fatal("render missing series")
	}
}

func TestFigure1Shapes(t *testing.T) {
	opts := quickOLTP()
	res := Figure1(opts)
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if res.Series[2].Label != "AnyDB Adaptive" {
		t.Fatalf("third series = %q, want the self-driving run", res.Series[2].Label)
	}
	if len(res.Adaptations) == 0 {
		t.Fatal("adaptive run recorded no controller decisions")
	}
	dbx, any := res.Series[0].Points, res.Series[1].Points
	if len(dbx) != 12 || len(any) != 12 {
		t.Fatalf("phase counts: %d/%d", len(dbx), len(any))
	}
	avg := func(p []float64, from, to int) float64 {
		s := 0.0
		for i := from; i <= to; i++ {
			s += p[i]
		}
		return s / float64(to-from+1)
	}
	// Phases 0-2: comparable.
	if r := avg(any, 0, 2) / avg(dbx, 0, 2); r < 0.6 || r > 1.9 {
		t.Errorf("partitionable ratio = %.2f, want ≈1", r)
	}
	// Phases 3-5: AnyDB well ahead (paper 1.7 vs 0.7).
	if avg(any, 3, 5) < 1.4*avg(dbx, 3, 5) {
		t.Errorf("skewed: AnyDB %.2f not well above DBx %.2f", avg(any, 3, 5), avg(dbx, 3, 5))
	}
	// Phases 6-8 (skewed HTAP): DBx drops below its own OLTP-only skewed
	// level; AnyDB roughly holds (isolation via beaming).
	if avg(dbx, 6, 8) > 0.9*avg(dbx, 3, 5) {
		t.Errorf("DBx HTAP (%.2f) should dip below OLTP-only (%.2f)",
			avg(dbx, 6, 8), avg(dbx, 3, 5))
	}
	if avg(any, 6, 8) < 0.7*avg(any, 3, 5) {
		t.Errorf("AnyDB HTAP (%.2f) dipped too much vs %.2f — isolation broken",
			avg(any, 6, 8), avg(any, 3, 5))
	}
	// AnyDB ahead in both HTAP bands (phase 9 is excluded: it carries
	// the architecture-shift drain, and at test scale the lighter query
	// stream lets the baseline keep more of its throughput there).
	if avg(any, 6, 8) <= avg(dbx, 6, 8) {
		t.Errorf("AnyDB must lead in skewed HTAP: %v vs %v", any, dbx)
	}
	if avg(any, 10, 11) <= avg(dbx, 10, 11)*0.9 {
		t.Errorf("AnyDB fell well behind in partitionable HTAP: %v vs %v", any, dbx)
	}
	if res.AnyDBQueries == 0 || res.DBxQueries == 0 {
		t.Errorf("OLAP side missing: dbx=%d anydb=%d", res.DBxQueries, res.AnyDBQueries)
	}
	out := RenderFigure1(res, opts)
	if !strings.Contains(out, "OLAP queries completed") {
		t.Fatal("render incomplete")
	}
	if !strings.Contains(out, "controller decisions") {
		t.Fatal("render missing the adaptation log")
	}
}

// TestAdaptiveTracksBestStatic is the self-driving acceptance bar: on
// the deterministic Figure-1 evolving workload, the controller —
// starting from ANY single static policy, with zero scripted switches —
// must reach at least 90% of the best static policy's committed
// throughput in every phase.
func TestAdaptiveTracksBestStatic(t *testing.T) {
	opts := quickOLTP()

	best := make([]float64, 12)
	for _, v := range fig5Variants() {
		s, _ := RunEvolvingStatic(opts, v)
		if len(s.Points) != 12 {
			t.Fatalf("%s: %d phases", v.label, len(s.Points))
		}
		for i, p := range s.Points {
			if p > best[i] {
				best[i] = p
			}
		}
	}

	for _, v := range fig5Variants() {
		s, a := RunEvolvingAdaptive(opts, v.policy)
		log := a.AdaptLog()
		if len(log) == 0 {
			t.Errorf("start=%v: controller never adapted", v.policy)
			continue
		}
		for ph := 0; ph < 12; ph++ {
			if s.Points[ph] < 0.9*best[ph] {
				t.Errorf("start=%v phase %d: adaptive %.3f < 90%% of best static %.3f (log: %v)",
					v.policy, ph, s.Points[ph], best[ph], summarize(log))
			}
		}
	}
}

func summarize(log []adapt.Decision) []string {
	var out []string
	for _, d := range log {
		out = append(out, fmt.Sprintf("%v:%v->%v", d.At, d.From, d.To))
	}
	return out
}

func TestFigure6Shapes(t *testing.T) {
	opts := quickFig6()
	res := Figure6(opts)
	if len(res.Labels) != 6 {
		t.Fatalf("labels = %v", res.Labels)
	}
	// Correctness: every run returns the oracle count.
	for label, pts := range res.Points {
		for i, p := range pts {
			if p.Rows != res.Oracle {
				t.Fatalf("%s[%d]: rows=%d oracle=%d", label, i, p.Rows, res.Oracle)
			}
		}
	}
	last := len(opts.CompileTimes) - 1
	for _, placement := range []string{"aggregated", "disaggregated"} {
		none := res.Points[placement+"/beam=none"]
		all := res.Points[placement+"/beam=build+probe"]
		build := res.Points[placement+"/beam=build"]
		// With a long compile window, full beaming must beat no
		// beaming on total time and build time must collapse.
		if all[last].Total >= none[last].Total {
			t.Errorf("%s: beamed total (%v) not faster than unbeamed (%v)",
				placement, all[last].Total, none[last].Total)
		}
		if build[last].Build >= none[last].Build {
			t.Errorf("%s: beamed build (%v) not shorter than unbeamed (%v)",
				placement, build[last].Build, none[last].Build)
		}
		if all[last].Probe >= none[last].Probe {
			t.Errorf("%s: beamed probe (%v) not shorter than unbeamed (%v)",
				placement, all[last].Probe, none[last].Probe)
		}
		// Beamed build shrinks as compile grows (monotone-ish tail).
		if build[last].Build > build[0].Build {
			t.Errorf("%s: beamed build grew with compile time: %v -> %v",
				placement, build[0].Build, build[last].Build)
		}
	}
	out := RenderFigure6(res)
	if !strings.Contains(out, "(b) Build side") {
		t.Fatal("render incomplete")
	}
}

func TestAblationRuns(t *testing.T) {
	rows := Ablation(quickOLTP())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.EventsPerTxn <= 0 {
			t.Fatalf("empty ablation row: %+v", r)
		}
	}
	// Naive mode must cost the most events per transaction.
	var naive, sn float64
	for _, r := range rows {
		switch r.Mode {
		case "AnyDB Static Intra-Txn":
			naive = r.EventsPerTxn
		case "AnyDB Shared-Nothing":
			sn = r.EventsPerTxn
		}
	}
	if naive <= sn {
		t.Errorf("naive events/txn (%.1f) should exceed shared-nothing (%.1f)", naive, sn)
	}
	if !strings.Contains(RenderAblation(rows), "events/txn") {
		t.Fatal("render incomplete")
	}
}

package bench

import (
	"anydb/internal/adapt"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

// RunEvolvingStatic measures one fixed routing policy across the
// 12-phase Figure 1 evolving workload (OLAP streams on during the HTAP
// phases). Together the four static series define, per phase, the bar
// the self-driving controller is judged against.
func RunEvolvingStatic(opts OLTPOpts, v anyDBVariant) (*metrics.Series, *AnyDB) {
	phases := fig1Phases()
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	a := NewAnyDB(db, cfg, sim.DefaultCosts())
	a.SetPolicy(v.policy, a.RoutesFor(v.policy))
	gen := tpcc.NewGenerator(cfg, phases[0].mix, opts.Seed)
	a.SetWorkload(gen)
	a.Prime(opts.Outstanding)

	s := &metrics.Series{Label: v.label}
	runEvolving(a, gen, opts, phases, s)
	return s, a
}

// RunEvolvingStaticPolicy is RunEvolvingStatic addressed by policy,
// for callers outside the package (the autopilot example).
func RunEvolvingStaticPolicy(opts OLTPOpts, p oltp.Policy, label string) (*metrics.Series, *AnyDB) {
	for _, v := range fig5Variants() {
		if v.policy == p {
			v.label = label
			return RunEvolvingStatic(opts, v)
		}
	}
	panic("bench: unknown policy")
}

// RunEvolvingAdaptive measures the self-driving cluster across the
// evolving workload: it starts on the given static policy and is never
// told about phase changes — the adaptation controller observes the
// telemetry stream and reroutes on its own. All four policies are
// candidates; Env comes from the built topology.
func RunEvolvingAdaptive(opts OLTPOpts, start oltp.Policy) (*metrics.Series, *AnyDB) {
	phases := fig1Phases()
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	a := NewAdaptiveAnyDB(db, cfg, sim.DefaultCosts(), adapt.Options{Start: start})
	a.SetPolicy(start, a.RoutesFor(start))
	gen := tpcc.NewGenerator(cfg, phases[0].mix, opts.Seed)
	a.SetWorkload(gen)
	a.Prime(opts.Outstanding)

	s := &metrics.Series{Label: "AnyDB Adaptive"}
	runEvolving(a, gen, opts, phases, s)
	return s, a
}

// runEvolving drives one engine through the evolving phases, appending
// per-phase throughput to s. Only the workload (mix, OLAP streams)
// changes at phase boundaries; routing is whatever the engine's policy
// (static, or controller-driven) currently is.
func runEvolving(a *AnyDB, gen *tpcc.Generator, opts OLTPOpts, phases []fig1Phase, s *metrics.Series) {
	for i, p := range phases {
		gen.SetMix(p.mix)
		if p.htap {
			a.EnableOLAP(opts.OLAPStreams)
		} else {
			a.DisableOLAP()
		}
		a.TakeWindow()
		a.Cl.RunUntil(sim.Time(i+1) * opts.PhaseDur)
		committed, _, _ := a.TakeWindow()
		s.Append(mtps(committed, opts.PhaseDur))
	}
}

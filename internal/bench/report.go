package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

// PhaseHeaders renders "0".."n-1" column headers.
func PhaseHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// CompileHeaders renders the Figure 6 x-axis in milliseconds.
func CompileHeaders(xs []sim.Time) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%dms", int64(x/sim.Millisecond))
	}
	return out
}

// RenderFigure1 formats the Figure 1 report.
func RenderFigure1(r Fig1Result, opts OLTPOpts) string {
	var b strings.Builder
	b.WriteString("Figure 1 — OLTP throughput (M tx/s) across the evolving workload\n")
	b.WriteString("phases: 0-2 partitionable OLTP, 3-5 skewed OLTP, 6-8 skewed HTAP, 9-11 partitionable HTAP\n")
	fmt.Fprintf(&b, "phase duration %v (virtual), closed loop depth %d\n\n",
		opts.PhaseDur, opts.Outstanding)
	b.WriteString(metrics.Table("series \\ phase", PhaseHeaders(12), r.Series, "%.2f"))
	fmt.Fprintf(&b, "\nOLAP queries completed in HTAP phases: DBx1000=%d AnyDB=%d\n",
		r.DBxQueries, r.AnyDBQueries)
	if len(r.Adaptations) > 0 {
		b.WriteString("\nself-driving run (AnyDB Adaptive) — controller decisions:\n")
		for _, d := range r.Adaptations {
			fmt.Fprintf(&b, "  %v  %v -> %v  (%s)\n", d.At, d.From, d.To, d.Reason)
		}
	}
	return b.String()
}

// RenderFigure5 formats the Figure 5 report.
func RenderFigure5(series []*metrics.Series, opts OLTPOpts) string {
	var b strings.Builder
	b.WriteString("Figure 5 — OLTP throughput (M tx/s): execution strategies under\n")
	b.WriteString("partitionable (phases 0-2) and skewed (phases 3-5) TPC-C payment\n\n")
	b.WriteString(metrics.Table("series \\ phase", PhaseHeaders(6), series, "%.2f"))
	b.WriteString(perThreadNote(series))
	return b.String()
}

// perThreadNote reproduces the paper's per-thread speedup claims (§3.2:
// precise intra-txn outperforms baseline and naive by 3.2x / 3x per
// thread).
func perThreadNote(series []*metrics.Series) string {
	get := func(label string) float64 {
		for _, s := range series {
			if s.Label == label && len(s.Points) >= 6 {
				return (s.Points[3] + s.Points[4] + s.Points[5]) / 3
			}
		}
		return 0
	}
	base := get("DBx1000 4TE") / 4 // 4 TEs
	naive := get("AnyDB Static Intra-Txn") / 4
	precise := get("AnyDB Precise Intra-Txn") / 2 // 2 ACs
	if base == 0 || naive == 0 || precise == 0 {
		return ""
	}
	return fmt.Sprintf("\nper-thread throughput, skewed phases: precise/baseline = %.1fx (paper 3.2x), precise/naive = %.1fx (paper 3x)\n",
		precise/base, precise/naive)
}

// RenderFigure6 formats the Figure 6 report: three panels like the paper.
func RenderFigure6(r Fig6Result) string {
	var b strings.Builder
	b.WriteString("Figure 6 — data beaming: runtimes (ms) vs query compile time\n")
	fmt.Fprintf(&b, "(query: CH-Q3 3 scans + 2 joins; oracle result %d rows; 30ms marks the paper's DB-C compile time)\n\n", r.Oracle)
	hdr := CompileHeaders(r.Compile)
	for _, panel := range []struct{ name, metric string }{
		{"(a) Query (compile + execution)", "total"},
		{"(b) Build side", "build"},
		{"(c) Probe side", "probe"},
	} {
		b.WriteString(panel.name + "\n")
		b.WriteString(metrics.Table("series \\ compile", hdr, Fig6Series(r, panel.metric), "%.1f"))
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCSV emits any series table as CSV (for plotting).
func RenderCSV(xlabel string, xs []string, series []*metrics.Series) string {
	return metrics.CSV(xlabel, xs, series)
}

// BenchReport is the machine-readable summary behind `anydb-bench -json`
// (and `make bench-json`): committed throughput per evolving-workload
// phase for every static §3 policy plus the self-driving adaptive run,
// so CI artifacts accumulate a comparable perf trajectory across PRs.
type BenchReport struct {
	PhaseDurMS  float64 `json:"phase_dur_ms"`
	Outstanding int     `json:"outstanding"`
	// MTPS maps a series label to its per-phase throughput in M tx/s.
	// Keys are the four static policies and "adaptive".
	MTPS map[string][]float64 `json:"mtps"`
	// AdaptiveWorstVsBest is the adaptive run's worst per-phase fraction
	// of the best static policy (the TestAdaptiveTracksBestStatic bar).
	AdaptiveWorstVsBest float64 `json:"adaptive_worst_vs_best"`
	// Decisions lists the controller's switches during the adaptive run.
	Decisions []string `json:"adaptive_decisions"`
}

// JSONReport runs the evolving workload once per static policy and once
// self-driving, and returns the summary as indented JSON.
func JSONReport(opts OLTPOpts) ([]byte, error) {
	r := BenchReport{
		PhaseDurMS:  opts.PhaseDur.Seconds() * 1e3,
		Outstanding: opts.Outstanding,
		MTPS:        make(map[string][]float64),
	}
	var best []float64
	for _, v := range fig5Variants() {
		s, _ := RunEvolvingStatic(opts, v)
		r.MTPS[v.policy.String()] = s.Points
		if best == nil {
			best = make([]float64, len(s.Points))
		}
		for i, p := range s.Points {
			if p > best[i] {
				best[i] = p
			}
		}
	}
	adaptive, a := RunEvolvingAdaptive(opts, oltp.SharedNothing)
	r.MTPS["adaptive"] = adaptive.Points
	worst := 1.0
	for i, p := range adaptive.Points {
		if best[i] > 0 && p/best[i] < worst {
			worst = p / best[i]
		}
	}
	r.AdaptiveWorstVsBest = worst
	for _, d := range a.AdaptLog() {
		r.Decisions = append(r.Decisions, fmt.Sprintf("%v %v->%v (%s)", d.At, d.From, d.To, d.Reason))
	}
	return json.MarshalIndent(r, "", "  ")
}

package bench

import (
	"fmt"
	"strings"

	"anydb/internal/metrics"
	"anydb/internal/sim"
)

// PhaseHeaders renders "0".."n-1" column headers.
func PhaseHeaders(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%d", i)
	}
	return out
}

// CompileHeaders renders the Figure 6 x-axis in milliseconds.
func CompileHeaders(xs []sim.Time) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%dms", int64(x/sim.Millisecond))
	}
	return out
}

// RenderFigure1 formats the Figure 1 report.
func RenderFigure1(r Fig1Result, opts OLTPOpts) string {
	var b strings.Builder
	b.WriteString("Figure 1 — OLTP throughput (M tx/s) across the evolving workload\n")
	b.WriteString("phases: 0-2 partitionable OLTP, 3-5 skewed OLTP, 6-8 skewed HTAP, 9-11 partitionable HTAP\n")
	fmt.Fprintf(&b, "phase duration %v (virtual), closed loop depth %d\n\n",
		opts.PhaseDur, opts.Outstanding)
	b.WriteString(metrics.Table("series \\ phase", PhaseHeaders(12), r.Series, "%.2f"))
	fmt.Fprintf(&b, "\nOLAP queries completed in HTAP phases: DBx1000=%d AnyDB=%d\n",
		r.DBxQueries, r.AnyDBQueries)
	if len(r.Adaptations) > 0 {
		b.WriteString("\nself-driving run (AnyDB Adaptive) — controller decisions:\n")
		for _, d := range r.Adaptations {
			fmt.Fprintf(&b, "  %v  %v -> %v  (%s)\n", d.At, d.From, d.To, d.Reason)
		}
	}
	return b.String()
}

// RenderFigure5 formats the Figure 5 report.
func RenderFigure5(series []*metrics.Series, opts OLTPOpts) string {
	var b strings.Builder
	b.WriteString("Figure 5 — OLTP throughput (M tx/s): execution strategies under\n")
	b.WriteString("partitionable (phases 0-2) and skewed (phases 3-5) TPC-C payment\n\n")
	b.WriteString(metrics.Table("series \\ phase", PhaseHeaders(6), series, "%.2f"))
	b.WriteString(perThreadNote(series))
	return b.String()
}

// perThreadNote reproduces the paper's per-thread speedup claims (§3.2:
// precise intra-txn outperforms baseline and naive by 3.2x / 3x per
// thread).
func perThreadNote(series []*metrics.Series) string {
	get := func(label string) float64 {
		for _, s := range series {
			if s.Label == label && len(s.Points) >= 6 {
				return (s.Points[3] + s.Points[4] + s.Points[5]) / 3
			}
		}
		return 0
	}
	base := get("DBx1000 4TE") / 4 // 4 TEs
	naive := get("AnyDB Static Intra-Txn") / 4
	precise := get("AnyDB Precise Intra-Txn") / 2 // 2 ACs
	if base == 0 || naive == 0 || precise == 0 {
		return ""
	}
	return fmt.Sprintf("\nper-thread throughput, skewed phases: precise/baseline = %.1fx (paper 3.2x), precise/naive = %.1fx (paper 3x)\n",
		precise/base, precise/naive)
}

// RenderFigure6 formats the Figure 6 report: three panels like the paper.
func RenderFigure6(r Fig6Result) string {
	var b strings.Builder
	b.WriteString("Figure 6 — data beaming: runtimes (ms) vs query compile time\n")
	fmt.Fprintf(&b, "(query: CH-Q3 3 scans + 2 joins; oracle result %d rows; 30ms marks the paper's DB-C compile time)\n\n", r.Oracle)
	hdr := CompileHeaders(r.Compile)
	for _, panel := range []struct{ name, metric string }{
		{"(a) Query (compile + execution)", "total"},
		{"(b) Build side", "build"},
		{"(c) Probe side", "probe"},
	} {
		b.WriteString(panel.name + "\n")
		b.WriteString(metrics.Table("series \\ compile", hdr, Fig6Series(r, panel.metric), "%.1f"))
		b.WriteString("\n")
	}
	return b.String()
}

// RenderCSV emits any series table as CSV (for plotting).
func RenderCSV(xlabel string, xs []string, series []*metrics.Series) string {
	return metrics.CSV(xlabel, xs, series)
}

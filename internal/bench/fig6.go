package bench

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/olap"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Fig6Opts parameterizes the data-beaming experiment.
type Fig6Opts struct {
	Cfg tpcc.Config
	// CompileTimes is the x-axis sweep.
	CompileTimes []sim.Time
}

// DefaultFig6Opts sizes the database so the probe-side transfer takes
// tens of milliseconds at the modelled link bandwidth — the regime where
// beaming matters (the paper's x-axis reaches 40ms with DB-C compiling at
// 30ms).
func DefaultFig6Opts() Fig6Opts {
	var xs []sim.Time
	for ms := 0; ms <= 40; ms += 5 {
		xs = append(xs, sim.Time(ms)*sim.Millisecond)
	}
	return Fig6Opts{
		Cfg: tpcc.Config{Warehouses: 24, Districts: 10, Customers: 1500,
			Items: 100, InitOrders: 3000, LinesPerOrder: 1, DataPad: 16, Seed: 42},
		CompileTimes: xs,
	}
}

// Fig6Point is one measurement of one series at one compile time.
type Fig6Point struct {
	Total sim.Time // query arrival → result (includes compile)
	Build sim.Time // execution start → join1 build complete
	Probe sim.Time // join1 build complete → join1 probe complete
	Rows  int64
}

// Fig6Result holds all series, keyed "<placement>/<beam>", in paper
// order, plus the oracle row count.
type Fig6Result struct {
	Labels  []string
	Points  map[string][]Fig6Point
	Compile []sim.Time
	Oracle  int64
}

// fig6Harness runs one query execution.
type fig6Harness struct {
	cl     *core.SimCluster
	qoAC   core.ACID
	plan   *plan.Q3Plan
	doneAt sim.Time
	rows   int64
	marks  map[string]sim.Time
}

func newFig6Harness(db *storage.Database, cfg tpcc.Config, disagg bool) *fig6Harness {
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	h := &fig6Harness{marks: make(map[string]sim.Time)}
	qo := &plan.QO{Topo: topo}
	h.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, qo)
	})
	join1, join2 := s1[0], s1[1]
	if disagg {
		// Disaggregated: joins on the second server, streams ride DPI
		// flows (NIC as co-processor).
		join1, join2 = s2[0], s2[1]
		h.cl.DPI = true
	}
	h.qoAC = s2[3]
	parts := make([]int, cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	h.plan = &plan.Q3Plan{
		Query: 1, Parts: parts,
		Join1AC: join1, Join2AC: join2, Notify: core.ClientAC,
	}
	h.cl.SetClient(func(at sim.Time, ev *core.Event) {
		switch p := ev.Payload.(type) {
		case *olap.QueryResult:
			h.rows = p.Rows
			h.doneAt = at
		case *olap.OpDone:
			h.marks[p.Label] = at
		}
	})
	return h
}

func (h *fig6Harness) run(beam plan.BeamMode, compile sim.Time) Fig6Point {
	h.plan.Beam = beam
	h.plan.CompileTime = compile
	h.cl.Inject(h.qoAC, &core.Event{Kind: core.EvQuery, Query: 1, Payload: h.plan}, 0)
	h.cl.Run()
	buildDone := h.marks["join1/build"]
	probeDone := h.marks["join1/probe"]
	return Fig6Point{
		Total: h.doneAt,
		Build: buildDone - compile,
		Probe: probeDone - buildDone,
		Rows:  h.rows,
	}
}

// Figure6 reproduces the paper's Figure 6: query/build/probe runtimes as
// a function of compile time, for no beaming / beam build / beam
// build+probe, each aggregated (local shared-memory queues) and
// disaggregated (network DPI flows).
func Figure6(opts Fig6Opts) Fig6Result {
	db, cfg := tpcc.NewDatabase(opts.Cfg)
	res := Fig6Result{
		Points:  make(map[string][]Fig6Point),
		Compile: opts.CompileTimes,
		Oracle:  tpcc.ReferenceQ3(db, cfg),
	}
	for _, disagg := range []bool{false, true} {
		placement := "aggregated"
		if disagg {
			placement = "disaggregated"
		}
		for _, beam := range []plan.BeamMode{plan.BeamNone, plan.BeamBuild, plan.BeamAll} {
			label := fmt.Sprintf("%s/beam=%s", placement, beam)
			res.Labels = append(res.Labels, label)
			for _, ct := range opts.CompileTimes {
				// A fresh cluster per run (the database is
				// read-only and shared).
				h := newFig6Harness(db, cfg, disagg)
				res.Points[label] = append(res.Points[label], h.run(beam, ct))
			}
		}
	}
	return res
}

// Fig6Series converts one metric of the result into plottable series.
func Fig6Series(r Fig6Result, metric string) []*metrics.Series {
	var out []*metrics.Series
	for _, label := range r.Labels {
		s := &metrics.Series{Label: label}
		for _, p := range r.Points[label] {
			var v sim.Time
			switch metric {
			case "total":
				v = p.Total
			case "build":
				v = p.Build
			case "probe":
				v = p.Probe
			}
			s.Append(float64(v) / float64(sim.Millisecond))
		}
		out = append(out, s)
	}
	return out
}

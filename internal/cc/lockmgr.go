// Package cc provides the concurrency-control substrate for the static
// baseline: a no-wait two-phase-locking lock table over record and
// partition resources. AnyDB's streaming concurrency control deliberately
// does NOT use it — consistency there comes from event ordering
// (internal/core.Sequencer); this package exists so the DBx1000-style
// baseline pays the coordination costs the paper attributes to
// traditional CC (§3.3).
package cc

import (
	"fmt"

	"anydb/internal/storage"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared allows concurrent readers.
	Shared Mode = iota
	// Exclusive allows a single writer.
	Exclusive
	// IntentExclusive marks a writer's presence at a coarser
	// granularity (a partition) without blocking other writers: IX is
	// compatible with IX but conflicts with S and X. The baseline's
	// OLAP scans take partition S locks; writers take partition IX plus
	// record X locks — the classic hierarchical scheme.
	IntentExclusive
)

func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return "IX"
	}
}

// compatible implements the S/X/IX compatibility matrix.
func compatible(held, want Mode) bool {
	switch held {
	case Shared:
		return want == Shared
	case IntentExclusive:
		return want == IntentExclusive
	default:
		return false
	}
}

// TxnID aliases the transaction identifier (kept local to avoid a core
// dependency; the engines map their ids onto it).
type TxnID uint64

// Resource names a lockable object: a record (table + key) or a whole
// partition (Table = "", Key = partition id), which is how the baseline's
// H-Store-style partition locks and the HTAP scan locks are expressed.
type Resource struct {
	Table string
	Key   storage.Key
}

// PartitionResource returns the whole-partition resource.
func PartitionResource(p int) Resource {
	return Resource{Table: "", Key: storage.Key(p)}
}

func (r Resource) String() string {
	if r.Table == "" {
		return fmt.Sprintf("partition(%d)", uint64(r.Key))
	}
	return fmt.Sprintf("%s(%v)", r.Table, r.Key)
}

type lockState struct {
	mode    Mode
	holders map[TxnID]struct{}
}

// LockManager is a no-wait lock table: conflicting requests fail
// immediately and the caller aborts and retries (DBx1000's NO_WAIT, the
// scheme that degrades most gracefully at high core counts per the
// DBx1000 study). It is not safe for concurrent use; the simulation
// runtime is single-threaded and owns it.
type LockManager struct {
	locks map[Resource]*lockState
	held  map[TxnID][]Resource

	// Stats.
	Acquired  int64
	Conflicts int64
}

// NewLockManager returns an empty lock table.
func NewLockManager() *LockManager {
	return &LockManager{
		locks: make(map[Resource]*lockState),
		held:  make(map[TxnID][]Resource),
	}
}

// Acquire attempts to lock res in mode for txn. It returns false on
// conflict (no waiting). Re-acquisition by the same txn succeeds;
// upgrading S→X succeeds only for a sole holder.
func (lm *LockManager) Acquire(txn TxnID, res Resource, mode Mode) bool {
	st, ok := lm.locks[res]
	if !ok {
		st = &lockState{mode: mode, holders: map[TxnID]struct{}{txn: {}}}
		lm.locks[res] = st
		lm.held[txn] = append(lm.held[txn], res)
		lm.Acquired++
		return true
	}
	if _, mine := st.holders[txn]; mine {
		if mode == Exclusive && st.mode != Exclusive {
			// Upgrade: only a sole holder may strengthen the mode.
			if len(st.holders) > 1 {
				lm.Conflicts++
				return false
			}
			st.mode = Exclusive
		}
		lm.Acquired++
		return true
	}
	if compatible(st.mode, mode) {
		st.holders[txn] = struct{}{}
		lm.held[txn] = append(lm.held[txn], res)
		lm.Acquired++
		return true
	}
	lm.Conflicts++
	return false
}

// Release drops txn's hold on res.
func (lm *LockManager) Release(txn TxnID, res Resource) {
	st, ok := lm.locks[res]
	if !ok {
		return
	}
	delete(st.holders, txn)
	if len(st.holders) == 0 {
		delete(lm.locks, res)
	}
	held := lm.held[txn]
	for i, r := range held {
		if r == res {
			lm.held[txn] = append(held[:i], held[i+1:]...)
			break
		}
	}
}

// ReleaseAll drops every lock txn holds (commit/abort) and returns how
// many were released.
func (lm *LockManager) ReleaseAll(txn TxnID) int {
	held := lm.held[txn]
	n := len(held)
	for _, res := range held {
		st := lm.locks[res]
		if st == nil {
			continue
		}
		delete(st.holders, txn)
		if len(st.holders) == 0 {
			delete(lm.locks, res)
		}
	}
	delete(lm.held, txn)
	return n
}

// Held returns the number of locks txn holds.
func (lm *LockManager) Held(txn TxnID) int { return len(lm.held[txn]) }

// Locked reports whether res is currently locked (any mode).
func (lm *LockManager) Locked(res Resource) bool {
	_, ok := lm.locks[res]
	return ok
}

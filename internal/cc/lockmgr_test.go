package cc

import (
	"math/rand"
	"testing"

	"anydb/internal/storage"
)

func res(t string, k uint64) Resource { return Resource{Table: t, Key: storage.Key(k)} }

func TestExclusiveConflict(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(1, res("w", 1), Exclusive) {
		t.Fatal("first X failed")
	}
	if lm.Acquire(2, res("w", 1), Exclusive) {
		t.Fatal("conflicting X granted")
	}
	if lm.Acquire(2, res("w", 1), Shared) {
		t.Fatal("S granted over X")
	}
	lm.ReleaseAll(1)
	if !lm.Acquire(2, res("w", 1), Exclusive) {
		t.Fatal("X after release failed")
	}
	if lm.Conflicts != 2 {
		t.Fatalf("Conflicts = %d, want 2", lm.Conflicts)
	}
}

func TestSharedCompatibility(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(1, res("c", 5), Shared) || !lm.Acquire(2, res("c", 5), Shared) {
		t.Fatal("concurrent S failed")
	}
	if lm.Acquire(3, res("c", 5), Exclusive) {
		t.Fatal("X granted over S holders")
	}
	lm.ReleaseAll(1)
	if lm.Acquire(3, res("c", 5), Exclusive) {
		t.Fatal("X granted with one S holder left")
	}
	lm.ReleaseAll(2)
	if !lm.Acquire(3, res("c", 5), Exclusive) {
		t.Fatal("X after all S released failed")
	}
}

func TestReentrantAndUpgrade(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(1, res("d", 9), Shared) || !lm.Acquire(1, res("d", 9), Shared) {
		t.Fatal("reentrant S failed")
	}
	if !lm.Acquire(1, res("d", 9), Exclusive) {
		t.Fatal("sole-holder upgrade failed")
	}
	lm2 := NewLockManager()
	lm2.Acquire(1, res("d", 9), Shared)
	lm2.Acquire(2, res("d", 9), Shared)
	if lm2.Acquire(1, res("d", 9), Exclusive) {
		t.Fatal("upgrade with co-holder granted")
	}
	// X then S re-acquire by the same txn succeeds.
	lm3 := NewLockManager()
	lm3.Acquire(1, res("d", 9), Exclusive)
	if !lm3.Acquire(1, res("d", 9), Shared) {
		t.Fatal("reentrant weaker acquire failed")
	}
}

func TestReleaseSingle(t *testing.T) {
	lm := NewLockManager()
	lm.Acquire(1, res("a", 1), Exclusive)
	lm.Acquire(1, res("a", 2), Exclusive)
	lm.Release(1, res("a", 1))
	if lm.Held(1) != 1 {
		t.Fatalf("Held = %d, want 1", lm.Held(1))
	}
	if lm.Locked(res("a", 1)) || !lm.Locked(res("a", 2)) {
		t.Fatal("wrong lock remains")
	}
	if !lm.Acquire(2, res("a", 1), Exclusive) {
		t.Fatal("released resource not reusable")
	}
}

func TestReleaseAllCount(t *testing.T) {
	lm := NewLockManager()
	for i := uint64(0); i < 5; i++ {
		lm.Acquire(7, res("s", i), Exclusive)
	}
	if n := lm.ReleaseAll(7); n != 5 {
		t.Fatalf("ReleaseAll = %d, want 5", n)
	}
	if lm.Held(7) != 0 {
		t.Fatal("locks remain after ReleaseAll")
	}
	if lm.ReleaseAll(7) != 0 {
		t.Fatal("second ReleaseAll released something")
	}
}

func TestPartitionResource(t *testing.T) {
	lm := NewLockManager()
	if !lm.Acquire(1, PartitionResource(2), Exclusive) {
		t.Fatal("partition lock failed")
	}
	if lm.Acquire(2, PartitionResource(2), Shared) {
		t.Fatal("S over partition X granted")
	}
	if !lm.Acquire(2, PartitionResource(3), Exclusive) {
		t.Fatal("other partition blocked")
	}
	if PartitionResource(2).String() != "partition(2)" {
		t.Fatal("String format")
	}
}

// TestLockTableInvariant: random no-wait workload never leaves two X
// holders or mixed S/X on one resource.
func TestLockTableInvariant(t *testing.T) {
	lm := NewLockManager()
	rng := rand.New(rand.NewSource(3))
	type holdKey struct {
		txn TxnID
		r   Resource
	}
	holding := make(map[holdKey]Mode)
	for step := 0; step < 50000; step++ {
		txn := TxnID(rng.Intn(8))
		r := res("t", uint64(rng.Intn(16)))
		switch rng.Intn(4) {
		case 0, 1:
			mode := Mode(rng.Intn(2))
			if lm.Acquire(txn, r, mode) {
				k := holdKey{txn, r}
				if old, ok := holding[k]; !ok || mode == Exclusive || old == Exclusive {
					if old == Exclusive {
						mode = Exclusive // held X dominates
					}
					holding[k] = mode
				}
			}
		case 2:
			lm.Release(txn, r)
			delete(holding, holdKey{txn, r})
		case 3:
			lm.ReleaseAll(txn)
			for k := range holding {
				if k.txn == txn {
					delete(holding, k)
				}
			}
		}
		// Invariant: at most one X holder per resource; no S+X mix.
		byRes := make(map[Resource][]Mode)
		for k, m := range holding {
			byRes[k.r] = append(byRes[k.r], m)
		}
		for r, modes := range byRes {
			x := 0
			for _, m := range modes {
				if m == Exclusive {
					x++
				}
			}
			if x > 1 || (x == 1 && len(modes) > 1) {
				t.Fatalf("step %d: invariant violated on %v: %v", step, r, modes)
			}
		}
	}
}

func TestModeString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Fatal("mode strings")
	}
	if res("w", 3).String() == "" {
		t.Fatal("resource string")
	}
}

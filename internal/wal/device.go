package wal

import (
	"errors"
	"io"
	"os"
	"sync"
	"time"
)

// Truncater is the optional Device extension recovery uses to cut a
// torn tail off before the log is reopened for appending: without it a
// partial record would sit in front of every future append.
type Truncater interface {
	Truncate(size int64) error
}

// ErrInjected is the failure FaultDevice injects; tests match it with
// errors.Is to distinguish injected faults from real device errors.
var ErrInjected = errors.New("wal: injected device fault")

// FileDevice is a real file-backed Device. Writes land in the OS page
// cache; Sync is fsync. Unlike MemDevice, Reader exposes everything
// written — after an OS-level crash the file's contents are exactly the
// durable prefix plus possibly a torn tail, which replay already stops
// at cleanly.
type FileDevice struct {
	f *os.File
}

// OpenFile opens (creating if absent) a log file for appending and
// recovery reads.
func OpenFile(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &FileDevice{f: f}, nil
}

// Write appends to the file.
func (d *FileDevice) Write(p []byte) (int, error) { return d.f.Write(p) }

// Sync fsyncs the file.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Reader returns a reader over the file's current contents. It reads
// via ReadAt, so it never disturbs the append position.
func (d *FileDevice) Reader() (io.Reader, error) {
	fi, err := d.f.Stat()
	if err != nil {
		return nil, err
	}
	return io.NewSectionReader(d.f, 0, fi.Size()), nil
}

// Truncate cuts the file to size bytes (recovery trimming a torn
// tail). Appends continue from the new end.
func (d *FileDevice) Truncate(size int64) error { return d.f.Truncate(size) }

// Size reports the current file length.
func (d *FileDevice) Size() (int64, error) {
	fi, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// Close closes the underlying file.
func (d *FileDevice) Close() error { return d.f.Close() }

// FaultDevice wraps a Device with crash-shaped failure injection for
// the recovery harness: short writes, failed fsyncs, and write/sync
// latency. Torn tails are simulated on the wrapped MemDevice directly
// (Corrupt) — a tear is a property of what survived, not of the write
// path.
type FaultDevice struct {
	Inner Device

	mu         sync.Mutex
	failSyncs  int
	shortAfter int // -1 = off; else bytes accepted before a short write
	latency    time.Duration
}

// NewFaultDevice wraps inner with no faults armed.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{Inner: inner, shortAfter: -1}
}

// FailSyncs makes the next n Sync calls fail with ErrInjected.
func (d *FaultDevice) FailSyncs(n int) {
	d.mu.Lock()
	d.failSyncs = n
	d.mu.Unlock()
}

// ShortWriteAfter accepts n more bytes, then fails the write that
// crosses the boundary after persisting only its prefix — the classic
// partial-append crash.
func (d *FaultDevice) ShortWriteAfter(n int) {
	d.mu.Lock()
	d.shortAfter = n
	d.mu.Unlock()
}

// SetLatency adds a fixed delay to every Write and Sync.
func (d *FaultDevice) SetLatency(t time.Duration) {
	d.mu.Lock()
	d.latency = t
	d.mu.Unlock()
}

// Write implements io.Writer with short-write injection.
func (d *FaultDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	short := d.shortAfter
	lat := d.latency
	if short >= 0 {
		if len(p) > short {
			d.shortAfter = 0
		} else {
			d.shortAfter -= len(p)
		}
	}
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if short >= 0 && len(p) > short {
		n, _ := d.Inner.Write(p[:short])
		return n, ErrInjected
	}
	return d.Inner.Write(p)
}

// Sync implements Device with failed-fsync injection.
func (d *FaultDevice) Sync() error {
	d.mu.Lock()
	fail := d.failSyncs > 0
	if fail {
		d.failSyncs--
	}
	lat := d.latency
	d.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	if fail {
		return ErrInjected
	}
	return d.Inner.Sync()
}

// Reader reads the durable prefix of the wrapped device.
func (d *FaultDevice) Reader() (io.Reader, error) { return d.Inner.Reader() }

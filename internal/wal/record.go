package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"

	"anydb/internal/tpcc"
)

// Record framing: `u32 payload-length | u32 crc32(payload) | payload`,
// all little-endian. The payload is a fixed-layout encoding of one
// committed transaction command:
//
//	u64 LSN | u8 kind | kind-specific fields
//
// Payment:   i32 W, D, CW, CD, C | u8 ByLast | i32 Last | f64 Amount
// New-order: i32 W, D, C | u16 lines | lines × (i32 Item, Qty, SupplyW)
//
// The encoding is canonical — every decodable record re-encodes to the
// identical bytes — which is what FuzzWALDecode pins. Command logging
// (§2.3) records transaction parameters only: replay re-executes the
// deterministic command, it never ships page images.
const (
	recHeader = 8
	// maxRecord bounds one payload so a corrupt length prefix cannot
	// ask the replay loop for an absurd slice.
	maxRecord = 1 << 20

	recPayment  = 1
	recNewOrder = 2

	paymentBody = 8 + 1 + 5*4 + 1 + 4 + 8 // lsn, kind, ints, bylast, last, amount
)

var (
	// errTorn marks an incomplete record at the end of the durable
	// prefix (a crash mid-write); replay stops cleanly before it.
	errTorn = errors.New("wal: torn record")
	// errCorrupt marks a record whose bytes are present but wrong (bad
	// checksum, unknown kind, impossible length).
	errCorrupt = errors.New("wal: corrupt record")
)

func le32(b []byte, v int) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(int32(v)))
}

func rd32(b []byte) (int, []byte) {
	return int(int32(binary.LittleEndian.Uint32(b))), b[4:]
}

// appendRecord encodes one committed transaction as a framed record
// appended to b. The caller's buffer is reused across a commit group,
// so steady-state appends cost no allocations beyond amortized growth.
func appendRecord(b []byte, lsn uint64, txn *tpcc.Txn) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc patched below
	b = binary.LittleEndian.AppendUint64(b, lsn)
	switch txn.Kind {
	case tpcc.TxnPayment:
		p := &txn.Payment
		b = append(b, recPayment)
		b = le32(b, p.W)
		b = le32(b, p.D)
		b = le32(b, p.CW)
		b = le32(b, p.CD)
		b = le32(b, p.C)
		if p.ByLast {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = le32(b, p.Last)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.Amount))
	case tpcc.TxnNewOrder:
		no := &txn.NewOrder
		b = append(b, recNewOrder)
		b = le32(b, no.W)
		b = le32(b, no.D)
		b = le32(b, no.C)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(no.Lines)))
		for _, l := range no.Lines {
			b = le32(b, l.Item)
			b = le32(b, l.Qty)
			b = le32(b, l.SupplyW)
		}
	}
	payload := b[start+recHeader:]
	binary.LittleEndian.PutUint32(b[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[start+4:], crc32.ChecksumIEEE(payload))
	return b
}

// decodeRecord decodes the record at the start of b, reporting the
// total bytes consumed. A buffer too short for the framed length is a
// torn tail (errTorn); bytes that are present but wrong — checksum,
// kind, layout — are corruption (errCorrupt). Either way the caller
// stops cleanly at the previous record.
func decodeRecord(b []byte) (lsn uint64, txn tpcc.Txn, n int, err error) {
	if len(b) < recHeader {
		return 0, txn, 0, errTorn
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < 9 || plen > maxRecord {
		return 0, txn, 0, errCorrupt
	}
	if len(b) < recHeader+plen {
		return 0, txn, 0, errTorn
	}
	payload := b[recHeader : recHeader+plen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[4:]) {
		return 0, txn, 0, errCorrupt
	}
	lsn = binary.LittleEndian.Uint64(payload)
	r := payload[9:]
	switch payload[8] {
	case recPayment:
		if len(r) != paymentBody-9 {
			return 0, txn, 0, errCorrupt
		}
		txn.Kind = tpcc.TxnPayment
		p := &txn.Payment
		p.W, r = rd32(r)
		p.D, r = rd32(r)
		p.CW, r = rd32(r)
		p.CD, r = rd32(r)
		p.C, r = rd32(r)
		switch r[0] {
		case 0:
			p.ByLast = false
		case 1:
			p.ByLast = true
		default:
			// Reject non-canonical booleans so decode(encode(x)) stays
			// a byte-level fixed point.
			return 0, txn, 0, errCorrupt
		}
		r = r[1:]
		p.Last, r = rd32(r)
		p.Amount = math.Float64frombits(binary.LittleEndian.Uint64(r))
	case recNewOrder:
		if len(r) < 3*4+2 {
			return 0, txn, 0, errCorrupt
		}
		txn.Kind = tpcc.TxnNewOrder
		no := &txn.NewOrder
		no.W, r = rd32(r)
		no.D, r = rd32(r)
		no.C, r = rd32(r)
		lines := int(binary.LittleEndian.Uint16(r))
		r = r[2:]
		if len(r) != lines*12 {
			return 0, txn, 0, errCorrupt
		}
		if lines > 0 {
			no.Lines = make([]tpcc.NewOrderLine, lines)
			for i := range no.Lines {
				l := &no.Lines[i]
				l.Item, r = rd32(r)
				l.Qty, r = rd32(r)
				l.SupplyW, r = rd32(r)
			}
		}
	default:
		return 0, txn, 0, errCorrupt
	}
	return lsn, txn, recHeader + plen, nil
}

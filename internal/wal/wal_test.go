package wal

import (
	"testing"

	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

func walCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 2, Districts: 2, Customers: 30,
		Items: 40, InitOrders: 10, Seed: 4}.WithDefaults()
}

// runAndLog executes n transactions directly against db, logging the
// committed ones.
func runAndLog(t *testing.T, db *storage.Database, cfg tpcc.Config, log *Logger, n int) int {
	t.Helper()
	costs := sim.DefaultCosts()
	g := tpcc.NewGenerator(cfg, tpcc.MixedOLTP(), 21)
	committed := 0
	for i := 0; i < n; i++ {
		txn := g.Next()
		var undo storage.UndoLog
		ex := &oltp.Exec{DB: db, Costs: &costs, Charge: func(sim.Time) {}, Undo: &undo}
		aborted := false
		for _, op := range oltp.Program(txn) {
			if err := op.Run(ex); err != nil {
				undo.Rollback()
				aborted = true
				break
			}
		}
		if aborted {
			continue
		}
		undo.Commit()
		if _, err := log.Append(&txn); err != nil {
			t.Fatal(err)
		}
		committed++
	}
	return committed
}

// stateDigest summarizes the aggregates recovery must restore.
func stateDigest(db *storage.Database, cfg tpcc.Config) [4]float64 {
	var out [4]float64
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		wt := p.Table(tpcc.TWarehouse)
		wt.Scan(func(_ int32, r storage.Row) bool {
			out[0] += r[wt.Schema.MustCol("w_ytd")].F
			return true
		})
		ct := p.Table(tpcc.TCustomer)
		ct.Scan(func(_ int32, r storage.Row) bool {
			out[1] += r[ct.Schema.MustCol("c_balance")].F
			return true
		})
		out[2] += float64(p.Table(tpcc.TOrders).Rows())
		out[3] += float64(p.Table(tpcc.THistory).Rows())
	}
	return out
}

func TestRecoverRebuildsState(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	dev := &MemDevice{}
	log := NewLogger(dev, 0)
	committed := runAndLog(t, db, cfg, log, 300)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	want := stateDigest(db, cfg)

	rec, applied, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if applied != committed {
		t.Fatalf("replayed %d, want %d", applied, committed)
	}
	if got := stateDigest(rec, cfg); got != want {
		t.Fatalf("state diverged: %v vs %v", got, want)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatalf("recovered database inconsistent: %v", err)
	}
}

func TestUnflushedTailIsLost(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	dev := &MemDevice{}
	log := NewLogger(dev, 0)
	runAndLog(t, db, cfg, log, 50)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := log.DurableLSN()
	// More commits, never flushed: a crash must lose exactly these.
	runAndLog(t, db, cfg, log, 50)
	if log.DurableLSN() != durable {
		t.Fatal("DurableLSN advanced without Flush")
	}

	_, applied, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(applied) != durable {
		t.Fatalf("replayed %d, want durable %d", applied, durable)
	}
}

func TestGroupCommitAmortizesSyncs(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	dev := &MemDevice{}
	log := NewLogger(dev, 16)
	committed := runAndLog(t, db, cfg, log, 200)
	log.Flush()
	if dev.Syncs >= committed {
		t.Fatalf("group commit did not amortize: %d syncs for %d commits", dev.Syncs, committed)
	}
	rec, applied, err := Recover(dev, cfg)
	if err != nil || applied != committed {
		t.Fatalf("recover: applied=%d err=%v", applied, err)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	dev := &MemDevice{}
	log := NewLogger(dev, 0)
	committed := runAndLog(t, db, cfg, log, 100)
	log.Flush()
	dev.Corrupt(7) // tear the last record's bytes

	rec, applied, err := Recover(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if applied >= committed || applied == 0 {
		t.Fatalf("torn-tail replay = %d of %d", applied, committed)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatalf("prefix recovery inconsistent: %v", err)
	}
}

func TestRecoverEmptyLog(t *testing.T) {
	cfg := walCfg()
	dev := &MemDevice{}
	rec, applied, err := Recover(dev, cfg)
	if err != nil || applied != 0 {
		t.Fatalf("empty log: applied=%d err=%v", applied, err)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMemDeviceSemantics(t *testing.T) {
	d := &MemDevice{}
	d.Write([]byte("hello"))
	r, _ := d.Reader()
	buf := make([]byte, 8)
	if n, _ := r.Read(buf); n != 0 {
		t.Fatal("unsynced bytes visible")
	}
	d.Sync()
	r, _ = d.Reader()
	n, _ := r.Read(buf)
	if string(buf[:n]) != "hello" {
		t.Fatalf("read %q", buf[:n])
	}
}

// Package wal implements the paper's "naïve" fault-tolerance approach
// (§2.3): committed transactions stream as log events to durable storage;
// after a crash the database is rebuilt by re-populating and replaying
// the log. Because AnyDB's transactions are deterministic commands (the
// same property streaming CC exploits), command logging suffices — the
// log records transaction parameters, not page images.
//
// The live cluster hangs one Logger off each dispatcher AC
// (write-ahead: a transaction's record is durable before any of its
// segments dispatch) and group-commits per drain batch — see
// oltp.Dispatcher and anydb.Config.Durability. Records use a canonical
// binary framing (record.go) so the hot path appends into a reused
// buffer, and recovery stops cleanly at the first torn, corrupt, or
// discontinuous record rather than failing the whole replay.
package wal

import (
	"fmt"
	"io"
	"sync"

	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Device is the durable medium: an append writer plus Sync and a reader
// over everything synced so far.
type Device interface {
	io.Writer
	// Sync makes everything written so far durable.
	Sync() error
	// Reader returns a reader over the durable prefix.
	Reader() (io.Reader, error)
}

// MemDevice is an in-memory Device for tests and examples. Crash is
// simulated by reading only the synced prefix: unsynced writes are lost.
type MemDevice struct {
	mu     sync.Mutex
	buf    []byte
	synced int
	Syncs  int
}

// Write implements io.Writer.
func (d *MemDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// Sync marks the current length durable.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = len(d.buf)
	d.Syncs++
	return nil
}

// Reader returns the durable prefix (what survives a crash).
func (d *MemDevice) Reader() (io.Reader, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &sliceReader{buf: d.buf[:d.synced]}, nil
}

// Corrupt truncates the durable prefix by n bytes, simulating a torn
// tail write.
func (d *MemDevice) Corrupt(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.synced > n {
		d.synced -= n
	} else {
		d.synced = 0
	}
}

type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// Logger appends committed transactions with group commit: records
// encode into an in-memory group buffer and one Write+Sync makes the
// whole group durable — amortizing the device round trip exactly like
// the acknowledgment batching the paper's storage events imply.
//
// The logger is fail-stop: the first device error latches, every
// subsequent Append and Flush reports it, and nothing more reaches the
// device. The database stays consistent because under write-ahead use
// the transactions of a failed group never execute.
type Logger struct {
	mu      sync.Mutex
	dev     Device
	buf     []byte // the open group: encoded but unwritten records
	lsn     uint64
	durable uint64
	pending int
	err     error
	// GroupSize flushes automatically every N appends (0 = manual
	// Flush only — the dispatcher's batch-end hook in the live engine).
	GroupSize int
}

// NewLogger returns a logger on dev.
func NewLogger(dev Device, groupSize int) *Logger {
	return &Logger{dev: dev, GroupSize: groupSize}
}

// Resume continues an existing log whose replay ended at lsn: the next
// Append gets lsn+1, keeping the on-device sequence continuous.
func (l *Logger) Resume(lsn uint64) {
	l.mu.Lock()
	l.lsn, l.durable = lsn, lsn
	l.mu.Unlock()
}

// Append logs one transaction command and returns its LSN. The record
// is durable only after the next Flush (or group auto-flush).
func (l *Logger) Append(txn *tpcc.Txn) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, l.err
	}
	l.lsn++
	l.buf = appendRecord(l.buf, l.lsn, txn)
	l.pending++
	if l.GroupSize > 0 && l.pending >= l.GroupSize {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	return l.lsn, nil
}

// Flush writes and syncs the open group, making every appended record
// durable. A clean logger with nothing pending is a no-op (no fsync).
func (l *Logger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Logger) flushLocked() error {
	if l.err != nil {
		return l.err
	}
	if l.pending == 0 && len(l.buf) == 0 {
		return nil
	}
	if _, err := l.dev.Write(l.buf); err != nil {
		l.err = fmt.Errorf("wal: write: %w", err)
		return l.err
	}
	l.buf = l.buf[:0]
	if err := l.dev.Sync(); err != nil {
		l.err = fmt.Errorf("wal: sync: %w", err)
		return l.err
	}
	l.durable = l.lsn
	l.pending = 0
	return nil
}

// DurableLSN returns the highest LSN guaranteed to survive a crash.
func (l *Logger) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Err reports the latched device failure, if any.
func (l *Logger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Replay decodes the durable prefix of dev and re-executes every record
// against db in LSN order. It returns the number of transactions
// applied, the byte offset of the clean prefix — callers truncate the
// device there (Truncater) before appending again, so a torn tail never
// sits in front of new records — and the last LSN applied (Logger.Resume
// continues from it).
//
// A torn tail, corrupt record, or LSN discontinuity ends the replay
// cleanly at the last good record: after a real crash the bytes past
// the durable prefix are garbage by definition, never an error. Device
// read failures and replay aborts are real errors.
func Replay(dev Device, db *storage.Database) (applied int, clean int64, lastLSN uint64, err error) {
	r, err := dev.Reader()
	if err != nil {
		return 0, 0, 0, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, 0, 0, err
	}
	costs := sim.DefaultCosts()
	off := 0
	for off < len(data) {
		lsn, txn, n, derr := decodeRecord(data[off:])
		if derr != nil {
			break // torn or corrupt tail: stop at the clean prefix
		}
		if lsn != lastLSN+1 {
			break // discontinuity: same corruption boundary
		}
		if rerr := replay(db, &costs, txn); rerr != nil {
			return applied, int64(off), lastLSN, rerr
		}
		lastLSN = lsn
		off += n
		applied++
	}
	return applied, int64(off), lastLSN, nil
}

// Recover replays the durable log into a freshly populated database:
// re-populate deterministically from cfg, then re-execute every logged
// command in LSN order. It returns the rebuilt database and the number
// of transactions replayed.
func Recover(dev Device, cfg tpcc.Config) (*storage.Database, int, error) {
	cfg = cfg.WithDefaults()
	db := storage.NewDatabase(cfg.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, cfg)
	applied, _, _, err := Replay(dev, db)
	if err != nil {
		return nil, applied, err
	}
	return db, applied, nil
}

// replay re-executes one committed command against db.
func replay(db *storage.Database, costs *sim.CostModel, txn tpcc.Txn) error {
	var undo storage.UndoLog
	ex := &oltp.Exec{DB: db, Costs: costs, Charge: func(sim.Time) {}, Undo: &undo}
	for _, op := range oltp.Program(txn) {
		if err := op.Run(ex); err != nil {
			// Only committed transactions are logged; an abort here
			// means the log is inconsistent with the command stream.
			undo.Rollback()
			return fmt.Errorf("wal: replayed transaction aborted: %w", err)
		}
	}
	undo.Commit()
	return nil
}

// Package wal implements the paper's "naïve" fault-tolerance approach
// (§2.3): committed transactions stream as log events to durable storage;
// after a crash the database is rebuilt by re-populating and replaying
// the log. Because AnyDB's transactions are deterministic commands (the
// same property streaming CC exploits), command logging suffices — the
// log records transaction parameters, not page images.
//
// The smarter direction the paper sketches — making the streams
// themselves reliable so work reroutes on AC failure — is exercised at
// the query level: analytics are pure consumers of beamed streams, so a
// failed query simply re-issues with a different routing (see the
// recovery example and the facade tests).
package wal

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"

	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Device is the durable medium: an append writer plus Sync and a reader
// over everything synced so far.
type Device interface {
	io.Writer
	// Sync makes everything written so far durable.
	Sync() error
	// Reader returns a reader over the durable prefix.
	Reader() (io.Reader, error)
}

// MemDevice is an in-memory Device for tests and examples. Crash is
// simulated by reading only the synced prefix: unsynced writes are lost.
type MemDevice struct {
	mu     sync.Mutex
	buf    []byte
	synced int
	Syncs  int
}

// Write implements io.Writer.
func (d *MemDevice) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = append(d.buf, p...)
	return len(p), nil
}

// Sync marks the current length durable.
func (d *MemDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.synced = len(d.buf)
	d.Syncs++
	return nil
}

// Reader returns the durable prefix (what survives a crash).
func (d *MemDevice) Reader() (io.Reader, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &sliceReader{buf: d.buf[:d.synced]}, nil
}

// Corrupt truncates the durable prefix by n bytes, simulating a torn
// tail write.
func (d *MemDevice) Corrupt(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.synced > n {
		d.synced -= n
	} else {
		d.synced = 0
	}
}

type sliceReader struct {
	buf []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.buf) {
		return 0, io.EOF
	}
	n := copy(p, r.buf[r.off:])
	r.off += n
	return n, nil
}

// Record is one durable log entry: a committed transaction command.
type Record struct {
	LSN uint64
	Txn tpcc.Txn
}

// Logger appends committed transactions with group commit: records
// buffer in memory and one Sync makes the whole group durable —
// amortizing the device round trip exactly like the acknowledgment
// batching the paper's storage events imply.
type Logger struct {
	mu      sync.Mutex
	dev     Device
	enc     *gob.Encoder
	lsn     uint64
	durable uint64
	pending int
	// GroupSize flushes automatically every N appends (0 = manual
	// Flush only).
	GroupSize int
}

// NewLogger returns a logger on dev.
func NewLogger(dev Device, groupSize int) *Logger {
	return &Logger{dev: dev, enc: gob.NewEncoder(dev), GroupSize: groupSize}
}

// Append logs one committed transaction and returns its LSN. The record
// is durable only after the next Flush (or group auto-flush).
func (l *Logger) Append(txn tpcc.Txn) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lsn++
	rec := Record{LSN: l.lsn, Txn: txn}
	if err := l.enc.Encode(&rec); err != nil {
		return 0, fmt.Errorf("wal: encode: %w", err)
	}
	l.pending++
	if l.GroupSize > 0 && l.pending >= l.GroupSize {
		if err := l.flushLocked(); err != nil {
			return 0, err
		}
	}
	return l.lsn, nil
}

// Flush makes all appended records durable.
func (l *Logger) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

func (l *Logger) flushLocked() error {
	if err := l.dev.Sync(); err != nil {
		return err
	}
	l.durable = l.lsn
	l.pending = 0
	return nil
}

// DurableLSN returns the highest LSN guaranteed to survive a crash.
func (l *Logger) DurableLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Recover replays the durable log into a freshly populated database:
// re-populate deterministically from cfg, then re-execute every logged
// command in LSN order. It returns the rebuilt database and the number
// of transactions replayed. A torn tail (partial last record) ends the
// replay cleanly at the last complete record.
func Recover(dev Device, cfg tpcc.Config) (*storage.Database, int, error) {
	cfg = cfg.WithDefaults()
	db := storage.NewDatabase(cfg.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, cfg)

	r, err := dev.Reader()
	if err != nil {
		return nil, 0, err
	}
	dec := gob.NewDecoder(r)
	costs := sim.DefaultCosts()
	applied := 0
	lastLSN := uint64(0)
	for {
		var rec Record
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			// A torn tail decodes as garbage; stop at the last
			// complete record rather than failing recovery.
			break
		}
		if rec.LSN != lastLSN+1 {
			return nil, applied, fmt.Errorf("wal: LSN gap: %d after %d", rec.LSN, lastLSN)
		}
		lastLSN = rec.LSN
		if err := replay(db, &costs, rec.Txn); err != nil {
			return nil, applied, err
		}
		applied++
	}
	return db, applied, nil
}

// replay re-executes one committed command against db.
func replay(db *storage.Database, costs *sim.CostModel, txn tpcc.Txn) error {
	var undo storage.UndoLog
	ex := &oltp.Exec{DB: db, Costs: costs, Charge: func(sim.Time) {}, Undo: &undo}
	for _, op := range oltp.Program(txn) {
		if err := op.Run(ex); err != nil {
			// Only committed transactions are logged; an abort here
			// means the log is inconsistent with the command stream.
			undo.Rollback()
			return fmt.Errorf("wal: replayed transaction aborted: %w", err)
		}
	}
	undo.Commit()
	return nil
}

package wal

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"anydb/internal/tpcc"
)

// TestTruncatedMidRecordStopsCleanly is the torn-tail regression the
// durability plane depends on: for every possible truncation depth into
// the final record, replay must stop cleanly at the last complete
// record, never error, and leave a Verify-clean database.
func TestTruncatedMidRecordStopsCleanly(t *testing.T) {
	cfg := walCfg()
	for cut := 1; cut < 40; cut += 3 {
		db, _ := tpcc.NewDatabase(cfg)
		dev := &MemDevice{}
		log := NewLogger(dev, 0)
		committed := runAndLog(t, db, cfg, log, 60)
		if err := log.Flush(); err != nil {
			t.Fatal(err)
		}
		dev.Corrupt(cut)
		rec, applied, err := Recover(dev, cfg)
		if err != nil {
			t.Fatalf("cut=%d: torn-tail recovery errored: %v", cut, err)
		}
		if applied >= committed {
			t.Fatalf("cut=%d: replayed %d of %d despite torn tail", cut, applied, committed)
		}
		if _, err := tpcc.Verify(rec, cfg); err != nil {
			t.Fatalf("cut=%d: prefix recovery inconsistent: %v", cut, err)
		}
	}
}

// TestFailedSyncLatchesLogger pins fail-stop semantics: after a failed
// fsync nothing else reaches the device, every subsequent append reports
// the latched fault, and recovery sees exactly the pre-fault prefix.
func TestFailedSyncLatchesLogger(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	mem := &MemDevice{}
	dev := NewFaultDevice(mem)
	log := NewLogger(dev, 0)
	runAndLog(t, db, cfg, log, 40)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	durable := log.DurableLSN()

	dev.FailSyncs(1)
	runAndLog(t, db, cfg, log, 20) // buffered: the fault hits at Flush
	if err := log.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Flush after injected sync failure = %v, want ErrInjected", err)
	}
	if _, err := log.Append(&tpcc.Txn{Kind: tpcc.TxnPayment}); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append after latched fault = %v, want ErrInjected", err)
	}
	if log.Err() == nil {
		t.Fatal("Err() did not latch")
	}
	if log.DurableLSN() != durable {
		t.Fatal("DurableLSN advanced past a failed sync")
	}
	rec, applied, err := Recover(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(applied) != durable {
		t.Fatalf("replayed %d, want the pre-fault prefix %d", applied, durable)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShortWriteStopsCleanly crashes a group mid-write: the device
// accepts a prefix of the flush and fails. The logger latches, and
// recovery replays only complete records out of what was synced before.
func TestShortWriteStopsCleanly(t *testing.T) {
	cfg := walCfg()
	db, _ := tpcc.NewDatabase(cfg)
	mem := &MemDevice{}
	dev := NewFaultDevice(mem)
	log := NewLogger(dev, 0)
	committed := runAndLog(t, db, cfg, log, 40)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	dev.ShortWriteAfter(13) // tear the next group mid-record
	runAndLog(t, db, cfg, log, 20)
	if err := log.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Flush across short write = %v, want ErrInjected", err)
	}
	// The torn bytes were never synced; even if they had been, replay
	// stops at the checksum boundary.
	mem.Sync()
	rec, applied, err := Recover(mem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if applied != committed {
		t.Fatalf("replayed %d, want the %d records of the clean prefix", applied, committed)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSyncLatency only pins that an injected delay is exercised on the
// flush path (the latency knob exists for crash-timing tests).
func TestSyncLatency(t *testing.T) {
	mem := &MemDevice{}
	dev := NewFaultDevice(mem)
	dev.SetLatency(5 * time.Millisecond)
	log := NewLogger(dev, 0)
	if _, err := log.Append(&tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{D: 1, C: 1}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency injection did not delay the flush")
	}
}

// TestLSNGapStopsCleanly: a discontinuous sequence is a corruption
// boundary, not a replay error.
func TestLSNGapStopsCleanly(t *testing.T) {
	cfg := walCfg()
	txn := &tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{W: 0, D: 1, CW: 0, CD: 1, C: 1, Amount: 5}}
	var raw []byte
	raw = appendRecord(raw, 1, txn)
	raw = appendRecord(raw, 2, txn)
	raw = appendRecord(raw, 4, txn) // gap: 3 is missing
	dev := &MemDevice{}
	dev.Write(raw)
	dev.Sync()

	rec, applied, err := Recover(dev, cfg)
	if err != nil {
		t.Fatalf("LSN gap must stop cleanly, got %v", err)
	}
	if applied != 2 {
		t.Fatalf("replayed %d, want the 2 records before the gap", applied)
	}
	if _, err := tpcc.Verify(rec, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFileDeviceRecoveryCycle runs the real-file path end to end:
// append, crash with a torn tail, replay, truncate to the clean offset,
// resume the LSN sequence, append more, and replay everything.
func TestFileDeviceRecoveryCycle(t *testing.T) {
	cfg := walCfg()
	path := filepath.Join(t.TempDir(), "wal.log")

	db, _ := tpcc.NewDatabase(cfg)
	dev, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log := NewLogger(dev, 8)
	first := runAndLog(t, db, cfg, log, 50)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash that tore the tail: append garbage half-record.
	if _, err := dev.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay, trim, resume, append more.
	dev, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	db2, _ := tpcc.NewDatabase(cfg)
	applied, clean, last, err := Replay(dev, db2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != first {
		t.Fatalf("replayed %d, want %d", applied, first)
	}
	if size, _ := dev.Size(); clean >= size {
		t.Fatalf("clean offset %d does not trim the torn tail (size %d)", clean, size)
	}
	if err := dev.Truncate(clean); err != nil {
		t.Fatal(err)
	}
	log = NewLogger(dev, 8)
	log.Resume(last)
	more := runAndLog(t, db2, cfg, log, 30)
	if err := log.Flush(); err != nil {
		t.Fatal(err)
	}

	db3, _ := tpcc.NewDatabase(cfg)
	applied, _, _, err = Replay(dev, db3)
	if err != nil {
		t.Fatal(err)
	}
	if applied != first+more {
		t.Fatalf("full replay = %d, want %d", applied, first+more)
	}
	if got, want := stateDigest(db3, cfg), stateDigest(db2, cfg); got != want {
		t.Fatalf("replayed state diverged: %v vs %v", got, want)
	}
	if _, err := tpcc.Verify(db3, cfg); err != nil {
		t.Fatal(err)
	}
}

package wal

import (
	"bytes"
	"testing"

	"anydb/internal/tpcc"
)

// fuzzSeeds returns representative wire images: clean single- and
// multi-record logs, a torn tail, a flipped checksum, and raw garbage.
func fuzzSeeds() [][]byte {
	pay := &tpcc.Txn{Kind: tpcc.TxnPayment,
		Payment: tpcc.Payment{W: 1, D: 2, CW: 0, CD: 1, C: 7, ByLast: true, Last: 3, Amount: 42.5}}
	no := &tpcc.Txn{Kind: tpcc.TxnNewOrder,
		NewOrder: tpcc.NewOrder{W: 0, D: 1, C: 4,
			Lines: []tpcc.NewOrderLine{{Item: 9, Qty: 2, SupplyW: 0}, {Item: 3, Qty: 1, SupplyW: 1}}}}
	var clean []byte
	clean = appendRecord(clean, 1, pay)
	clean = appendRecord(clean, 2, no)
	torn := append([]byte(nil), clean...)
	torn = torn[:len(torn)-5]
	flipped := append([]byte(nil), clean...)
	flipped[6] ^= 0x40 // corrupt the first record's crc
	return [][]byte{
		appendRecord(nil, 1, pay),
		appendRecord(nil, 1, no),
		clean,
		torn,
		flipped,
		{},
		{0xff, 0xff, 0xff, 0xff, 0x00, 0x01, 0x02},
	}
}

// FuzzWALDecode feeds arbitrary bytes through the record scanner: the
// decoder must never panic, must always make progress, and every record
// it accepts must re-encode to the identical bytes (the encoding is
// canonical, so decode(encode(x)) is a byte-level fixed point).
func FuzzWALDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		for off < len(data) {
			lsn, txn, n, err := decodeRecord(data[off:])
			if err != nil {
				break
			}
			if n <= recHeader || off+n > len(data) {
				t.Fatalf("decode consumed impossible length %d at offset %d", n, off)
			}
			re := appendRecord(nil, lsn, &txn)
			if !bytes.Equal(re, data[off:off+n]) {
				t.Fatalf("decode(encode) not a fixed point at offset %d:\n got %x\nwant %x",
					off, re, data[off:off+n])
			}
			off += n
		}
	})
}

// FuzzWALRecord fuzzes the transaction parameters themselves: any
// encodable command must round-trip exactly.
func FuzzWALRecord(f *testing.F) {
	f.Add(uint64(1), true, 3, 2, 1, 0, 9, true, 11, 25.25, 2)
	f.Add(uint64(900), false, 0, 1, 0, 1, 1, false, 0, -3.5, 0)
	f.Fuzz(func(t *testing.T, lsn uint64, payment bool, w, d, cw, cd, c int, byLast bool, last int, amount float64, lines int) {
		if amount != amount {
			t.Skip() // NaN: bit-preserved on the wire but not ==-comparable
		}
		txn := tpcc.Txn{}
		if payment {
			txn.Kind = tpcc.TxnPayment
			txn.Payment = tpcc.Payment{W: w, D: d, CW: cw, CD: cd, C: c,
				ByLast: byLast, Last: last, Amount: amount}
			// The wire layout is i32; out-of-range ints cannot round-trip
			// and cannot occur (partition counts are small).
			for _, v := range []int{w, d, cw, cd, c, last} {
				if int(int32(v)) != v {
					t.Skip()
				}
			}
		} else {
			txn.Kind = tpcc.TxnNewOrder
			if lines < 0 {
				lines = -lines
			}
			lines %= 6
			ls := make([]tpcc.NewOrderLine, 0, lines)
			for i := 0; i < lines; i++ {
				ls = append(ls, tpcc.NewOrderLine{Item: c + i, Qty: d, SupplyW: w})
			}
			if lines > 0 {
				txn.NewOrder = tpcc.NewOrder{W: w, D: d, C: c, Lines: ls}
			} else {
				txn.NewOrder = tpcc.NewOrder{W: w, D: d, C: c}
			}
			for _, v := range []int{w, d, c + lines} {
				if int(int32(v)) != v {
					t.Skip()
				}
			}
		}
		raw := appendRecord(nil, lsn, &txn)
		gotLSN, got, n, err := decodeRecord(raw)
		if err != nil {
			t.Fatalf("decode of freshly encoded record failed: %v", err)
		}
		if n != len(raw) || gotLSN != lsn {
			t.Fatalf("decode consumed %d of %d, lsn %d want %d", n, len(raw), gotLSN, lsn)
		}
		if got.Kind != txn.Kind || got.Payment != txn.Payment ||
			got.NewOrder.W != txn.NewOrder.W || got.NewOrder.D != txn.NewOrder.D ||
			got.NewOrder.C != txn.NewOrder.C || len(got.NewOrder.Lines) != len(txn.NewOrder.Lines) {
			t.Fatalf("round trip diverged: %+v vs %+v", got, txn)
		}
		for i := range got.NewOrder.Lines {
			if got.NewOrder.Lines[i] != txn.NewOrder.Lines[i] {
				t.Fatalf("line %d diverged", i)
			}
		}
	})
}

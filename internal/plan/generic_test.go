package plan_test

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

func planCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 4, Districts: 2, Customers: 100,
		Items: 40, InitOrders: 100, Seed: 8}.WithDefaults()
}

// sqlHarness runs a compiled SQL plan on a sim cluster.
type sqlHarness struct {
	cl     *core.SimCluster
	topo   *core.Topology
	db     *storage.Database
	cfg    tpcc.Config
	qoAC   core.ACID
	comp   []core.ACID
	result *olap.QueryResult
}

func newSQLHarness(t *testing.T) *sqlHarness {
	t.Helper()
	cfg := planCfg()
	db, _ := tpcc.NewDatabase(cfg)
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	// Analyze tables so the planner has statistics.
	for w := 0; w < cfg.Warehouses; w++ {
		for _, tn := range db.Catalog.Tables() {
			tab := db.Partition(w).Table(tn)
			if w == 0 {
				db.Catalog.SetStats(tn, storage.Analyze(tab))
			}
		}
	}
	h := &sqlHarness{topo: topo, db: db, cfg: cfg, qoAC: s2[3], comp: s2[:3]}
	qo := &plan.QO{Topo: topo}
	h.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, qo)
	})
	h.cl.SetClient(func(_ sim.Time, ev *core.Event) {
		if r, ok := ev.Payload.(*olap.QueryResult); ok {
			h.result = r
		}
	})
	return h
}

func (h *sqlHarness) run(t *testing.T, text string) *olap.QueryResult {
	t.Helper()
	q, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	parts := make([]int, h.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	p, err := plan.CompileSQL(h.db.Catalog, q, 1, parts, h.comp, core.ClientAC)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	h.result = nil
	h.cl.Inject(h.qoAC, &core.Event{Kind: core.EvQuery, Query: 1, Payload: p}, 0)
	h.cl.Run()
	if h.result == nil {
		t.Fatal("no result")
	}
	return h.result
}

// TestSQLQ3MatchesOracle: the paper's query expressed in SQL produces the
// oracle count through the full parse→plan→event-stream pipeline.
func TestSQLQ3MatchesOracle(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_w_id = new_order.no_w_id
			AND orders.o_d_id = new_order.no_d_id
			AND orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`)
	want := tpcc.ReferenceQ3(h.db, h.cfg)
	if want == 0 {
		t.Fatal("oracle empty")
	}
	if res.Rows != want {
		t.Fatalf("rows = %d, oracle %d", res.Rows, want)
	}
}

func TestSQLSingleTableCount(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, "SELECT COUNT(*) FROM orders WHERE o_entry_d >= 2010")
	// Reference.
	var want int64
	for w := 0; w < h.cfg.Warehouses; w++ {
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		col := ot.Schema.MustCol("o_entry_d")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if r[col].I >= 2010 {
				want++
			}
			return true
		})
	}
	if res.Rows != want || want == 0 {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

func TestSQLProjectionCollect(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, "SELECT c_id, c_last FROM customer WHERE c_id <= 3 AND c_w_id = 1 AND c_d_id = 1")
	if res.Rows != 3 || len(res.Collected) != 3 {
		t.Fatalf("rows=%d collected=%d, want 3", res.Rows, len(res.Collected))
	}
	if len(res.Collected[0]) != 2 {
		t.Fatalf("projection arity = %d", len(res.Collected[0]))
	}
	if res.Truncated {
		t.Fatal("tiny result truncated")
	}
}

func TestSQLJoinWithEquality(t *testing.T) {
	h := newSQLHarness(t)
	// Orders of one specific customer, via join.
	res := h.run(t, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_w_id = 2 AND c_d_id = 1 AND c_id = 7`)
	var want int64
	ot := h.db.Partition(2).Table(tpcc.TOrders)
	dc, cc2 := ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_c_id")
	ot.Scan(func(_ int32, r storage.Row) bool {
		if r[dc].I == 1 && r[cc2].I == 7 {
			want++
		}
		return true
	})
	if res.Rows != want {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

func TestCompileErrors(t *testing.T) {
	h := newSQLHarness(t)
	parts := []int{0}
	for _, text := range []string{
		"SELECT COUNT(*) FROM nosuch",
		"SELECT COUNT(*) FROM customer WHERE nope = 1",
		"SELECT COUNT(*) FROM customer JOIN orders ON customer.c_id = orders.nope",
		"SELECT COUNT(*) FROM customer JOIN item ON customer.c_id = item.i_id JOIN orders ON orders.o_w_id = orders.o_w_id", // orders unconnected to chain
		"SELECT COUNT(*) FROM customer WHERE c_last >= 5",                                                                   // >= on string
		"SELECT nope FROM customer",
	} {
		q, err := sql.Parse(text)
		if err != nil {
			continue // parser-level rejection also fine
		}
		if _, err := plan.CompileSQL(h.db.Catalog, q, 1, parts, h.comp, core.ClientAC); err == nil {
			t.Errorf("compiled %q", text)
		}
	}
}

// TestPlannerOrdersBySelectivity: with stats present, the most selective
// table becomes the first build side.
func TestPlannerOrdersBySelectivity(t *testing.T) {
	h := newSQLHarness(t)
	// customer filtered to ~1/26 is far smaller than orders: the Q3
	// oracle check above already exercises this; here assert compile
	// succeeds when tables are listed in "wrong" order too.
	q, err := sql.Parse(`SELECT COUNT(*)
		FROM orders
		JOIN customer ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_state LIKE 'A%'`)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int, h.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	p, err := plan.CompileSQL(h.db.Catalog, q, 2, parts, h.comp, core.ClientAC)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// And it runs correctly despite the reordering.
	res := h.run(t, `SELECT COUNT(*)
		FROM orders
		JOIN customer ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_state LIKE 'A%'`)
	var want int64
	for w := 0; w < h.cfg.Warehouses; w++ {
		cust := make(map[storage.Key]bool)
		ct := h.db.Partition(w).Table(tpcc.TCustomer)
		sc := ct.Schema.MustCol("c_state")
		wc, dc, cc2 := ct.Schema.MustCol("c_w_id"), ct.Schema.MustCol("c_d_id"), ct.Schema.MustCol("c_id")
		ct.Scan(func(_ int32, r storage.Row) bool {
			if r[sc].S[:1] == "A" {
				cust[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[cc2].I)] = true
			}
			return true
		})
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		ow, od, oc := ot.Schema.MustCol("o_w_id"), ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_c_id")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if cust[storage.MakeKey(int(r[ow].I), int(r[od].I), r[oc].I)] {
				want++
			}
			return true
		})
	}
	if res.Rows != want || want == 0 {
		t.Fatalf("rows = %d, want %d", res.Rows, want)
	}
}

package plan_test

import (
	"math"
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

func planCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 4, Districts: 2, Customers: 100,
		Items: 40, InitOrders: 100, Seed: 8}.WithDefaults()
}

// sqlHarness runs a compiled SQL plan on a sim cluster.
type sqlHarness struct {
	cl     *core.SimCluster
	topo   *core.Topology
	db     *storage.Database
	cfg    tpcc.Config
	qoAC   core.ACID
	comp   []core.ACID
	result *olap.QueryResult
}

func newSQLHarness(t *testing.T) *sqlHarness {
	t.Helper()
	cfg := planCfg()
	db, _ := tpcc.NewDatabase(cfg)
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	// Analyze tables so the planner has statistics.
	for w := 0; w < cfg.Warehouses; w++ {
		for _, tn := range db.Catalog.Tables() {
			tab := db.Partition(w).Table(tn)
			if w == 0 {
				db.Catalog.SetStats(tn, storage.Analyze(tab))
			}
		}
	}
	h := &sqlHarness{topo: topo, db: db, cfg: cfg, qoAC: s2[3], comp: s2[:3]}
	qo := &plan.QO{Topo: topo}
	h.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, qo)
	})
	h.cl.SetClient(func(_ sim.Time, ev *core.Event) {
		if r, ok := ev.Payload.(*olap.QueryResult); ok {
			h.result = r
		}
	})
	return h
}

func (h *sqlHarness) compile(t *testing.T, text string, qid core.QueryID) *plan.GenericPlan {
	t.Helper()
	q, err := sql.Parse(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	parts := make([]int, h.cfg.Warehouses)
	for i := range parts {
		parts[i] = i
	}
	p, err := plan.CompileSQL(h.db.Catalog, q, qid, parts, h.comp, core.ClientAC)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func (h *sqlHarness) run(t *testing.T, text string) *olap.QueryResult {
	t.Helper()
	p := h.compile(t, text, 1)
	h.result = nil
	h.cl.Inject(h.qoAC, &core.Event{Kind: core.EvQuery, Query: 1, Payload: p}, 0)
	h.cl.Run()
	if h.result == nil {
		t.Fatal("no result")
	}
	return h.result
}

// resultRows materializes a sink result set (copies, so freeing the
// batches afterwards would be safe).
func resultRows(res *olap.QueryResult) []storage.Row {
	var out []storage.Row
	for _, b := range res.Batches {
		for r := 0; r < b.Len(); r++ {
			out = append(out, b.Row(r))
		}
	}
	return out
}

// countOf extracts the single scalar of a global COUNT(*) result.
func countOf(t *testing.T, res *olap.QueryResult) int64 {
	t.Helper()
	rows := resultRows(res)
	if res.Rows != 1 || len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("count result shape: Rows=%d, %d materialized", res.Rows, len(rows))
	}
	if len(res.Cols) != 1 || res.Cols[0] != "count" {
		t.Fatalf("count result cols = %v", res.Cols)
	}
	return rows[0][0].I
}

// TestSQLQ3MatchesOracle: the paper's query expressed in SQL produces the
// oracle count through the full parse→plan→event-stream pipeline.
func TestSQLQ3MatchesOracle(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		JOIN new_order ON orders.o_w_id = new_order.no_w_id
			AND orders.o_d_id = new_order.no_d_id
			AND orders.o_id = new_order.no_o_id
		WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`)
	want := tpcc.ReferenceQ3(h.db, h.cfg)
	if want == 0 {
		t.Fatal("oracle empty")
	}
	if got := countOf(t, res); got != want {
		t.Fatalf("count = %d, oracle %d", got, want)
	}
}

func TestSQLSingleTableCount(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, "SELECT COUNT(*) FROM orders WHERE o_entry_d >= 2010")
	// Reference.
	var want int64
	for w := 0; w < h.cfg.Warehouses; w++ {
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		col := ot.Schema.MustCol("o_entry_d")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if r[col].I >= 2010 {
				want++
			}
			return true
		})
	}
	if got := countOf(t, res); got != want || want == 0 {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestSQLProjectionCollect(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, "SELECT c_id, c_last FROM customer WHERE c_id <= 3 AND c_w_id = 1 AND c_d_id = 1")
	rows := resultRows(res)
	if res.Rows != 3 || len(rows) != 3 {
		t.Fatalf("rows=%d materialized=%d, want 3", res.Rows, len(rows))
	}
	if len(rows[0]) != 2 {
		t.Fatalf("projection arity = %d", len(rows[0]))
	}
	if len(res.Cols) != 2 || res.Cols[0] != "c_id" || res.Cols[1] != "c_last" {
		t.Fatalf("cols = %v", res.Cols)
	}
	if res.Truncated {
		t.Fatal("tiny result truncated")
	}
}

func TestSQLJoinWithEquality(t *testing.T) {
	h := newSQLHarness(t)
	// Orders of one specific customer, via join.
	res := h.run(t, `SELECT COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_w_id = 2 AND c_d_id = 1 AND c_id = 7`)
	var want int64
	ot := h.db.Partition(2).Table(tpcc.TOrders)
	dc, cc2 := ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_c_id")
	ot.Scan(func(_ int32, r storage.Row) bool {
		if r[dc].I == 1 && r[cc2].I == 7 {
			want++
		}
		return true
	})
	if got := countOf(t, res); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// TestSQLGroupedAggregates: single-table grouped aggregates push down
// into the shared scan; partials from all partitions merge in the sink.
func TestSQLGroupedAggregates(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, `SELECT o_d_id, COUNT(*), SUM(o_ol_cnt), MIN(o_id), MAX(o_id), AVG(o_ol_cnt)
		FROM orders WHERE o_entry_d >= 2007 GROUP BY o_d_id ORDER BY o_d_id`)
	// Reference.
	type acc struct {
		n, sum, min, max int64
	}
	ref := map[int64]*acc{}
	for w := 0; w < h.cfg.Warehouses; w++ {
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		dc := ot.Schema.MustCol("o_d_id")
		ec := ot.Schema.MustCol("o_entry_d")
		oc := ot.Schema.MustCol("o_ol_cnt")
		ic := ot.Schema.MustCol("o_id")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if r[ec].I < 2007 {
				return true
			}
			a := ref[r[dc].I]
			if a == nil {
				a = &acc{min: math.MaxInt64, max: math.MinInt64}
				ref[r[dc].I] = a
			}
			a.n++
			a.sum += r[oc].I
			if r[ic].I < a.min {
				a.min = r[ic].I
			}
			if r[ic].I > a.max {
				a.max = r[ic].I
			}
			return true
		})
	}
	rows := resultRows(res)
	if len(rows) != len(ref) || len(ref) == 0 {
		t.Fatalf("groups = %d, want %d", len(rows), len(ref))
	}
	wantCols := []string{"o_d_id", "count", "sum_o_ol_cnt", "min_o_id", "max_o_id", "avg_o_ol_cnt"}
	for i, c := range wantCols {
		if res.Cols[i] != c {
			t.Fatalf("cols = %v, want %v", res.Cols, wantCols)
		}
	}
	prev := int64(math.MinInt64)
	for _, r := range rows {
		d := r[0].I
		if d < prev {
			t.Fatalf("ORDER BY o_d_id violated: %d after %d", d, prev)
		}
		prev = d
		a := ref[d]
		if a == nil {
			t.Fatalf("unexpected group %d", d)
		}
		if r[1].I != a.n || r[2].I != a.sum || r[3].I != a.min || r[4].I != a.max {
			t.Fatalf("group %d = %+v, want %+v", d, r, a)
		}
		wantAvg := float64(a.sum) / float64(a.n)
		if math.Abs(r[5].F-wantAvg) > 1e-9 {
			t.Fatalf("group %d avg = %v, want %v", d, r[5].F, wantAvg)
		}
	}
}

// TestSQLOrderByCountLimit: ORDER BY an aggregate, descending, limited.
func TestSQLOrderByCountLimit(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, `SELECT c_d_id, COUNT(*) FROM customer GROUP BY c_d_id ORDER BY COUNT(*) DESC, c_d_id LIMIT 1`)
	rows := resultRows(res)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (LIMIT)", len(rows))
	}
	// Every district has the same customer count, so the tiebreak
	// (ascending c_d_id) must pick district 1.
	if rows[0][0].I != 1 {
		t.Fatalf("top district = %d, want 1", rows[0][0].I)
	}
	wantN := int64(h.cfg.Warehouses) * int64(h.cfg.Customers)
	if rows[0][1].I != wantN {
		t.Fatalf("count = %d, want %d", rows[0][1].I, wantN)
	}
}

// TestSQLFloatAggregates: SUM/AVG over a float column keep float typing
// end to end (including sums that are exactly zero).
func TestSQLFloatAggregates(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, "SELECT SUM(c_balance), AVG(c_balance) FROM customer")
	var sum float64
	var n int64
	for w := 0; w < h.cfg.Warehouses; w++ {
		ct := h.db.Partition(w).Table(tpcc.TCustomer)
		bc := ct.Schema.MustCol("c_balance")
		ct.Scan(func(_ int32, r storage.Row) bool {
			sum += r[bc].F
			n++
			return true
		})
	}
	rows := resultRows(res)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0][0].F-sum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", rows[0][0].F, sum)
	}
	if math.Abs(rows[0][1].F-sum/float64(n)) > 1e-9 {
		t.Fatalf("avg = %v, want %v", rows[0][1].F, sum/float64(n))
	}
}

// TestSQLAggregateOverJoin: grouped aggregation over a join output folds
// raw rows in the sink (no pushdown possible).
func TestSQLAggregateOverJoin(t *testing.T) {
	h := newSQLHarness(t)
	res := h.run(t, `SELECT o_d_id, COUNT(*)
		FROM customer
		JOIN orders ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_state LIKE 'A%'
		GROUP BY o_d_id ORDER BY o_d_id`)
	ref := map[int64]int64{}
	for w := 0; w < h.cfg.Warehouses; w++ {
		cust := make(map[storage.Key]bool)
		ct := h.db.Partition(w).Table(tpcc.TCustomer)
		sc := ct.Schema.MustCol("c_state")
		wc, dc, cc2 := ct.Schema.MustCol("c_w_id"), ct.Schema.MustCol("c_d_id"), ct.Schema.MustCol("c_id")
		ct.Scan(func(_ int32, r storage.Row) bool {
			if r[sc].S[:1] == "A" {
				cust[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[cc2].I)] = true
			}
			return true
		})
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		ow, od, oc := ot.Schema.MustCol("o_w_id"), ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_c_id")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if cust[storage.MakeKey(int(r[ow].I), int(r[od].I), r[oc].I)] {
				ref[r[od].I]++
			}
			return true
		})
	}
	rows := resultRows(res)
	if len(rows) != len(ref) || len(ref) == 0 {
		t.Fatalf("groups = %d, want %d", len(rows), len(ref))
	}
	for _, r := range rows {
		if ref[r[0].I] != r[1].I {
			t.Fatalf("group %d count = %d, want %d", r[0].I, r[1].I, ref[r[0].I])
		}
	}
}

func TestCompileErrors(t *testing.T) {
	h := newSQLHarness(t)
	parts := []int{0}
	for _, text := range []string{
		"SELECT COUNT(*) FROM nosuch",
		"SELECT COUNT(*) FROM customer WHERE nope = 1",
		"SELECT COUNT(*) FROM customer JOIN orders ON customer.c_id = orders.nope",
		"SELECT COUNT(*) FROM customer JOIN item ON customer.c_id = item.i_id JOIN orders ON orders.o_w_id = orders.o_w_id", // orders unconnected to chain
		"SELECT COUNT(*) FROM customer WHERE c_last >= 5",                                                                   // >= on string
		"SELECT nope FROM customer",
		"SELECT c_id, COUNT(*) FROM customer",                                                                // non-grouped column with aggregate
		"SELECT c_id FROM customer GROUP BY c_id",                                                            // GROUP BY without aggregates
		"SELECT SUM(c_last) FROM customer",                                                                   // SUM over string
		"SELECT COUNT(*) FROM customer ORDER BY c_id",                                                        // ORDER BY term not in SELECT
		"SELECT c_id FROM customer WHERE c_last < 5",                                                         // int comparison on string column
		"SELECT COUNT(*) FROM customer JOIN orders ON customer.c_id = orders.o_c_id GROUP BY c_w_id, o_w_id", // fine shape...
	} {
		q, err := sql.Parse(text)
		if err != nil {
			continue // parser-level rejection also fine
		}
		_, cerr := plan.CompileSQL(h.db.Catalog, q, 1, parts, h.comp, core.ClientAC)
		if text == "SELECT COUNT(*) FROM customer JOIN orders ON customer.c_id = orders.o_c_id GROUP BY c_w_id, o_w_id" {
			if cerr != nil {
				t.Errorf("rejected valid query: %v", cerr)
			}
			continue
		}
		if cerr == nil {
			t.Errorf("compiled %q", text)
		}
	}
}

// TestPlanDescribeGolden pins the routed shape of representative plans:
// join ordering, stream wiring, pushdown vs fold vs collect sinks.
func TestPlanDescribeGolden(t *testing.T) {
	h := newSQLHarness(t)
	cases := []struct {
		name, query, want string
	}{
		{"join_count", `SELECT COUNT(*)
			FROM orders
			JOIN customer ON customer.c_w_id = orders.o_w_id
				AND customer.c_d_id = orders.o_d_id
				AND customer.c_id = orders.o_c_id
			WHERE c_state LIKE 'A%' AND o_entry_d >= 2007`,
			""},
		{"group_pushdown", `SELECT o_d_id, COUNT(*), SUM(o_ol_cnt)
			FROM orders GROUP BY o_d_id ORDER BY COUNT(*) DESC LIMIT 3`,
			""},
		{"projection_order_limit", `SELECT c_id, c_last FROM customer
			WHERE c_d_id = 1 ORDER BY c_last DESC LIMIT 10`,
			""},
	}
	// Golden strings below are derived from the harness topology: ACs
	// 0-7 (two servers of four), compute = {4,5,6}, qid = 7.
	cases[0].want = "scan customer parts=4 filters=1 cols=[c_d_id c_id c_w_id] -> s449@ac4\n" +
		"scan orders parts=4 filters=1 cols=[o_c_id o_d_id o_w_id] -> s450@ac4\n" +
		"join1 build=s449[c_w_id c_d_id c_id] probe=s450[o_w_id o_d_id o_c_id] @ac4 -> s480@ac4\n" +
		"sink in=s480 fold group=[] aggs=[count] out=[count] @ac4\n"
	cases[1].want = "scan orders parts=4 pushdown group=[o_d_id] dict aggs=[count sum(o_ol_cnt)] -> s449@ac4\n" +
		"sink in=s449 merge group=[o_d_id] aggs=[count sum(o_ol_cnt)] order=[{1 true}] limit=3 out=[o_d_id count sum_o_ol_cnt] @ac4\n"
	cases[2].want = "scan customer parts=4 filters=1 cols=[c_id c_last] -> s449@ac4\n" +
		"sink in=s449 collect cols=[c_id c_last] order=[{1 true}] limit=10 out=[c_id c_last] @ac4\n"
	for _, c := range cases {
		p := h.compile(t, c.query, 7)
		if got := p.Describe(); got != c.want {
			t.Errorf("%s:\ngot:\n%s\nwant:\n%s", c.name, got, c.want)
		}
	}
}

// TestPlannerOrdersBySelectivity: with stats present, the most selective
// table becomes the first build side.
func TestPlannerOrdersBySelectivity(t *testing.T) {
	h := newSQLHarness(t)
	// customer filtered to ~1/26 is far smaller than orders: even when
	// the tables are listed in the "wrong" order, customer must build.
	p := h.compile(t, `SELECT COUNT(*)
		FROM orders
		JOIN customer ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_state LIKE 'A%'`, 2)
	desc := p.Describe()
	if len(desc) == 0 || desc[:13] != "scan customer" {
		t.Fatalf("build side not customer:\n%s", desc)
	}
	// And it runs correctly despite the reordering.
	res := h.run(t, `SELECT COUNT(*)
		FROM orders
		JOIN customer ON customer.c_w_id = orders.o_w_id
			AND customer.c_d_id = orders.o_d_id
			AND customer.c_id = orders.o_c_id
		WHERE c_state LIKE 'A%'`)
	var want int64
	for w := 0; w < h.cfg.Warehouses; w++ {
		cust := make(map[storage.Key]bool)
		ct := h.db.Partition(w).Table(tpcc.TCustomer)
		sc := ct.Schema.MustCol("c_state")
		wc, dc, cc2 := ct.Schema.MustCol("c_w_id"), ct.Schema.MustCol("c_d_id"), ct.Schema.MustCol("c_id")
		ct.Scan(func(_ int32, r storage.Row) bool {
			if r[sc].S[:1] == "A" {
				cust[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[cc2].I)] = true
			}
			return true
		})
		ot := h.db.Partition(w).Table(tpcc.TOrders)
		ow, od, oc := ot.Schema.MustCol("o_w_id"), ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_c_id")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if cust[storage.MakeKey(int(r[ow].I), int(r[od].I), r[oc].I)] {
				want++
			}
			return true
		})
	}
	if got := countOf(t, res); got != want || want == 0 {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// Package plan contains the query-optimizer-as-AnyComponent: behaviors
// that turn a query into an instrumented event/data-stream program —
// operator placement (aggregated vs disaggregated), stream wiring, and
// the data-beaming schedule of §4. The paper's key observation is that
// the tables a query touches are known before optimization finishes, so
// their data streams can be initiated at query arrival and push data
// while the optimizer still "compiles" — hiding transfer latency behind
// compile time.
package plan

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// BeamMode selects which of the query's base-table streams are initiated
// at query arrival (beamed) versus at compile completion.
type BeamMode uint8

const (
	// BeamNone pulls all data only when execution starts (baseline).
	BeamNone BeamMode = iota
	// BeamBuild beams the join build side (the customer scan).
	BeamBuild
	// BeamAll beams build and probe sides (all three scans).
	BeamAll
)

var beamNames = [...]string{"none", "build", "build+probe"}

func (m BeamMode) String() string {
	if int(m) < len(beamNames) {
		return beamNames[m]
	}
	return fmt.Sprintf("BeamMode(%d)", uint8(m))
}

// Q3Plan parameterizes one execution of the paper's CH-Q3-style query:
// customer ⋈ orders ⋈ new_order with the §4 filters, 3 scans + 2 joins.
type Q3Plan struct {
	Query       core.QueryID
	Beam        BeamMode
	CompileTime sim.Time
	// Parts lists the partitions to scan (all warehouses).
	Parts []int
	// Join1AC hosts join1 (build customer, probe orders); Join2AC hosts
	// join2 (build join1 output, probe new_order) and the final count.
	Join1AC, Join2AC core.ACID
	// Notify receives EvOpDone/EvQueryDone instrumentation (usually
	// core.ClientAC).
	Notify core.ACID
}

// QO is the query-optimizer behavior: register for EvQuery on any AC.
// Receiving a query it (1) immediately initiates the beamed data streams,
// (2) charges the compile time, (3) emits the remaining operator
// installation events. Which architecture the query perceives —
// aggregated or disaggregated — is entirely decided by the ACs named in
// the plan.
type QO struct {
	Topo *core.Topology
	// Compiled counts optimized queries.
	Compiled int64
}

// OnEvent implements core.Behavior for EvQuery. The payload selects the
// program: *Q3Plan (the paper's hand-routed pipeline) or *GenericPlan
// (SQL-compiled).
func (q *QO) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	// The EvQuery envelope dies here (the plan payload lives on in the
	// emitted install events); freeing keeps the pool balance exact.
	defer core.FreeEvent(ev)
	if gp, ok := ev.Payload.(*GenericPlan); ok {
		q.Compiled++
		q.onGenericPlan(ctx, gp)
		return
	}
	p, ok := ev.Payload.(*Q3Plan)
	if !ok {
		panic("plan: EvQuery payload must be *Q3Plan or *GenericPlan")
	}
	q.Compiled++
	streams := q3Streams(p)

	// Phase 1 — beaming: initiate data streams before compiling. The
	// scans start pushing immediately; their data stages at the join
	// ACs until the operators are installed.
	if p.Beam >= BeamBuild {
		q.installScans(ctx, p, streams, true)
	}

	// Phase 2 — compile. The QO core is busy for the whole window
	// (the paper cites ~30ms for a commercial optimizer on this query).
	ctx.Charge(p.CompileTime)

	// Phase 3 — execution: install joins, aggregate, and whatever
	// scans were not beamed.
	q.installScans(ctx, p, streams, false)
	j1 := core.GetEvent()
	j1.Kind, j1.Query = core.EvInstallOp, p.Query
	j1.Payload = &olap.JoinSpec{
		Query: p.Query,
		Build: streams.cust, BuildKey: []string{"c_w_id", "c_d_id", "c_id"},
		Probe: streams.ord, ProbeKey: []string{"o_w_id", "o_d_id", "o_c_id"},
		Semi: true,
		Out:  streams.join1, To: p.Join2AC, Producers: 1,
		Notify: p.Notify, Label: "join1",
	}
	ctx.Send(p.Join1AC, j1)
	j2 := core.GetEvent()
	j2.Kind, j2.Query = core.EvInstallOp, p.Query
	j2.Payload = &olap.JoinSpec{
		Query: p.Query,
		Build: streams.join1, BuildKey: []string{"o_w_id", "o_d_id", "o_id"},
		Probe: streams.no, ProbeKey: []string{"no_w_id", "no_d_id", "no_o_id"},
		Semi: true,
		Out:  streams.agg, To: p.Join2AC, Producers: 1,
		Notify: p.Notify, Label: "join2",
	}
	ctx.Send(p.Join2AC, j2)
	ag := core.GetEvent()
	ag.Kind, ag.Query = core.EvInstallOp, p.Query
	ag.Payload = &olap.AggSpec{Query: p.Query, In: streams.agg, Notify: p.Notify}
	ctx.Send(p.Join2AC, ag)
}

// q3streams derives the five stream ids of the pipeline deterministically
// from the query id.
type streamSet struct {
	cust, ord, no, join1, agg core.StreamID
}

func q3Streams(p *Q3Plan) streamSet {
	base := core.StreamID(uint64(p.Query) * 16)
	return streamSet{
		cust:  base + 1,
		ord:   base + 2,
		no:    base + 3,
		join1: base + 4,
		agg:   base + 5,
	}
}

// installScans emits the scan operators; beamed selects which subset.
func (q *QO) installScans(ctx core.Context, p *Q3Plan, s streamSet, beamed bool) {
	type scan struct {
		table  storage.TableID
		filter []olap.Predicate
		cols   []string
		out    core.StreamID
		to     core.ACID
		beam   bool
	}
	scans := []scan{
		{tpcc.TCustomerID,
			[]olap.Predicate{{Col: "c_state", Kind: olap.PredPrefix, Prefix: tpcc.Q3StatePrefix}},
			[]string{"c_w_id", "c_d_id", "c_id"},
			s.cust, p.Join1AC, p.Beam >= BeamBuild},
		{tpcc.TOrdersID,
			[]olap.Predicate{{Col: "o_entry_d", Kind: olap.PredGEInt, MinI: tpcc.Q3SinceYear}},
			[]string{"o_w_id", "o_d_id", "o_id", "o_c_id"},
			s.ord, p.Join1AC, p.Beam >= BeamAll},
		{tpcc.TNewOrderID,
			nil,
			[]string{"no_w_id", "no_d_id", "no_o_id"},
			s.no, p.Join2AC, p.Beam >= BeamAll},
	}
	for _, sc := range scans {
		if sc.beam != beamed {
			continue
		}
		for _, part := range p.Parts {
			ev := core.GetEvent()
			ev.Kind, ev.Query = core.EvInstallOp, p.Query
			ev.Payload = &olap.ScanSpec{
				Query: p.Query, Table: sc.table, Part: part,
				Filters: sc.filter, Cols: sc.cols,
				Out: sc.out, To: sc.to, Producers: len(p.Parts),
			}
			ctx.Send(q.Topo.Owner(part), ev)
		}
	}
}

// Q3ResultOracle returns the reference result for the configured
// database (test support).
func Q3ResultOracle(db *storage.Database, cfg tpcc.Config) int64 {
	return tpcc.ReferenceQ3(db, cfg)
}

package plan

import (
	"fmt"
	"sort"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
)

// GenericPlan is the compiled, routed form of a SQL query: a left-deep
// chain of hash joins over filtered base-table scans, finished by a
// counting or collecting sink. The facade compiles it client-side (so
// errors surface synchronously) and the QO AC emits it as event/data
// streams, beaming the scans ahead of the compile window when asked.
type GenericPlan struct {
	Query       core.QueryID
	CompileTime sim.Time
	Beam        bool
	Parts       []int
	Notify      core.ACID

	scans   []scanTemplate
	joins   []*olap.JoinSpec
	joinACs []core.ACID // where each join executes
	sinkAC  core.ACID
	final   any // *olap.AggSpec or *olap.CollectSpec
}

type scanTemplate struct {
	table   string
	filters []olap.Predicate
	cols    []string
	out     core.StreamID
	to      core.ACID
}

// tableInfo is the planner's view of one FROM entry.
type tableInfo struct {
	name     string
	schema   *storage.Schema
	filters  []olap.Predicate
	estRows  float64
	joinCols []string // columns this table contributes to join keys
}

// CompileSQL turns a parsed query into a routed plan. compute lists the
// ACs that host the joins and the final sink (round-robin); owner
// placement of scans happens at emission via the topology.
func CompileSQL(cat *storage.Catalog, q *sql.Query, qid core.QueryID,
	parts []int, compute []core.ACID, notify core.ACID) (*GenericPlan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("plan: no tables")
	}
	if len(compute) == 0 {
		return nil, fmt.Errorf("plan: no compute ACs")
	}

	// Resolve tables and filters.
	infos := make(map[string]*tableInfo, len(q.Tables))
	var order []string
	for _, t := range q.Tables {
		schema := cat.Schema(t)
		if schema == nil {
			return nil, fmt.Errorf("plan: unknown table %q", t)
		}
		if _, dup := infos[t]; dup {
			return nil, fmt.Errorf("plan: table %q listed twice (self-joins unsupported)", t)
		}
		infos[t] = &tableInfo{name: t, schema: schema}
		order = append(order, t)
	}
	for _, f := range q.Filters {
		ti, err := resolveColumn(infos, order, f.Table, f.Col)
		if err != nil {
			return nil, err
		}
		pred, err := toPredicate(ti.schema, f)
		if err != nil {
			return nil, err
		}
		ti.filters = append(ti.filters, pred)
	}
	for _, jc := range q.Joins {
		for _, side := range []struct{ t, c string }{
			{jc.LeftTable, jc.LeftCol}, {jc.RightTable, jc.RightCol},
		} {
			ti, err := resolveColumn(infos, order, side.t, side.c)
			if err != nil {
				return nil, err
			}
			ti.joinCols = append(ti.joinCols, side.c)
		}
	}

	// Estimate filtered cardinalities from catalog statistics.
	for _, ti := range infos {
		ti.estRows = estimateRows(cat, ti)
	}

	// Left-deep join order: start from the smallest estimate, then
	// greedily attach the smallest table connected by a join edge.
	joined := map[string]bool{}
	var chain []string
	remaining := append([]string(nil), order...)
	sort.SliceStable(remaining, func(i, j int) bool {
		return infos[remaining[i]].estRows < infos[remaining[j]].estRows
	})
	chain = append(chain, remaining[0])
	joined[remaining[0]] = true
	remaining = remaining[1:]
	for len(remaining) > 0 {
		picked := -1
		for i, t := range remaining {
			if connected(q.Joins, joined, t) {
				picked = i
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("plan: table %q has no join condition to the rest (cross joins unsupported)", remaining[0])
		}
		chain = append(chain, remaining[picked])
		joined[remaining[picked]] = true
		remaining = append(remaining[:picked], remaining[picked+1:]...)
	}

	// Columns each scan must ship: join keys plus projected output.
	needed := make(map[string]map[string]bool)
	for _, t := range order {
		needed[t] = make(map[string]bool)
	}
	for _, jc := range q.Joins {
		needed[jc.LeftTable][jc.LeftCol] = true
		needed[jc.RightTable][jc.RightCol] = true
	}
	if !q.Count {
		for _, col := range q.Columns {
			ti, err := resolveColumn(infos, order, qualTable(col), qualCol(col))
			if err != nil {
				return nil, err
			}
			needed[ti.name][qualCol(col)] = true
		}
	}
	for t, cols := range needed {
		if len(cols) == 0 {
			// Ship at least one column so batches have shape.
			needed[t][infos[t].schema.Cols[0].Name] = true
		}
	}

	// Wire streams: scan of chain[i] → stream base+i; join_i output →
	// stream base+16+i.
	p := &GenericPlan{Query: qid, Parts: parts, Notify: notify}
	base := core.StreamID(uint64(qid) * 64)
	scanStream := func(i int) core.StreamID { return base + core.StreamID(i) + 1 }
	joinStream := func(i int) core.StreamID { return base + 32 + core.StreamID(i) }

	acOf := func(i int) core.ACID { return compute[i%len(compute)] }

	if len(chain) == 1 {
		p.scans = append(p.scans, scanTemplate{
			table: chain[0], filters: infos[chain[0]].filters,
			cols: setToSlice(needed[chain[0]]),
			out:  scanStream(0), to: acOf(0),
		})
		p.sinkAC = acOf(0)
		p.final = finalSpec(q, qid, scanStream(0), notify)
		return p, nil
	}

	// Accumulated (build) side starts as chain[0]'s scan; join_i runs on
	// compute AC J_i, builds on the accumulated stream and probes the
	// next table's scan. The last join's output stays local to feed the
	// sink.
	accSchemas := []*storage.Schema{scanSchema(infos[chain[0]], needed)}
	accStream := scanStream(0)
	joinAC := func(i int) core.ACID { return acOf(i - 1) } // J_i for i>=1
	p.scans = append(p.scans, scanTemplate{
		table: chain[0], filters: infos[chain[0]].filters,
		cols: setToSlice(needed[chain[0]]),
		out:  accStream, to: joinAC(1),
	})
	for i := 1; i < len(chain); i++ {
		t := chain[i]
		probeStream := scanStream(i)
		p.scans = append(p.scans, scanTemplate{
			table: t, filters: infos[t].filters,
			cols: setToSlice(needed[t]),
			out:  probeStream, to: joinAC(i),
		})
		buildKeys, probeKeys, err := joinKeys(q.Joins, accSchemas, infos[t], joined, chain[:i])
		if err != nil {
			return nil, err
		}
		out := joinStream(i - 1)
		outTo := joinAC(i + 1) // the next join consumes our output...
		if i == len(chain)-1 {
			outTo = joinAC(i) // ...except the last, which feeds the local sink
		}
		p.joins = append(p.joins, &olap.JoinSpec{
			Query: qid,
			Build: accStream, BuildKey: buildKeys,
			Probe: probeStream, ProbeKey: probeKeys,
			Semi: false,
			Out:  out, To: outTo, Producers: 1,
			Notify: core.NoAC, Label: fmt.Sprintf("join%d", i),
		})
		p.joinACs = append(p.joinACs, joinAC(i))
		accSchemas = append(accSchemas, scanSchema(infos[t], needed))
		accStream = out
	}
	p.sinkAC = joinAC(len(chain) - 1)
	p.final = finalSpec(q, qid, accStream, notify)
	return p, nil
}

// OnGenericPlan is the QO-side emission (called from QO.OnEvent).
func (q *QO) onGenericPlan(ctx core.Context, p *GenericPlan) {
	emitScans := func() {
		for i := range p.scans {
			sc := &p.scans[i]
			for _, part := range p.Parts {
				ctx.Send(q.Topo.Owner(part), &core.Event{
					Kind: core.EvInstallOp, Query: p.Query,
					Payload: &olap.ScanSpec{
						Query: p.Query, Table: sc.table, Part: part,
						Filters: sc.filters, Cols: sc.cols,
						Out: sc.out, To: sc.to, Producers: len(p.Parts),
					},
				})
			}
		}
	}
	if p.Beam {
		emitScans()
	}
	ctx.Charge(p.CompileTime)
	if !p.Beam {
		emitScans()
	}
	for i, js := range p.joins {
		ctx.Send(p.joinACs[i], &core.Event{Kind: core.EvInstallOp, Query: p.Query, Payload: js})
	}
	switch f := p.final.(type) {
	case *olap.AggSpec:
		ctx.Send(p.sinkAC, &core.Event{Kind: core.EvInstallOp, Query: p.Query, Payload: f})
	case *olap.CollectSpec:
		ctx.Send(p.sinkAC, &core.Event{Kind: core.EvInstallOp, Query: p.Query, Payload: f})
	default:
		panic("plan: generic plan without final sink")
	}
}

// ---- helpers ----

func resolveColumn(infos map[string]*tableInfo, order []string, table, col string) (*tableInfo, error) {
	if table != "" {
		ti, ok := infos[table]
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %q", table)
		}
		if ti.schema.Col(col) < 0 {
			return nil, fmt.Errorf("plan: no column %q in table %q", col, table)
		}
		return ti, nil
	}
	var found *tableInfo
	for _, t := range order {
		if infos[t].schema.Col(col) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("plan: column %q is ambiguous", col)
			}
			found = infos[t]
		}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %q", col)
	}
	return found, nil
}

func toPredicate(schema *storage.Schema, f sql.Filter) (olap.Predicate, error) {
	kind := schema.Cols[schema.MustCol(f.Col)].Kind
	switch f.Op {
	case sql.OpLikePrefix:
		if kind != storage.KStr {
			return olap.Predicate{}, fmt.Errorf("plan: LIKE on non-string column %q", f.Col)
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredPrefix, Prefix: f.Str}, nil
	case sql.OpGe:
		if kind != storage.KInt {
			return olap.Predicate{}, fmt.Errorf("plan: >= supported on int columns only (%q)", f.Col)
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredGEInt, MinI: int64(f.Num)}, nil
	case sql.OpEq:
		if f.IsStr {
			return olap.Predicate{Col: f.Col, Kind: olap.PredEqStr, Str: f.Str}, nil
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredEqInt, MinI: int64(f.Num)}, nil
	case sql.OpLt:
		return olap.Predicate{Col: f.Col, Kind: olap.PredLTInt, MinI: int64(f.Num)}, nil
	case sql.OpGt:
		return olap.Predicate{Col: f.Col, Kind: olap.PredGEInt, MinI: int64(f.Num) + 1}, nil
	case sql.OpLe:
		return olap.Predicate{Col: f.Col, Kind: olap.PredLTInt, MinI: int64(f.Num) + 1}, nil
	case sql.OpNe:
		return olap.Predicate{Col: f.Col, Kind: olap.PredNeInt, MinI: int64(f.Num)}, nil
	}
	return olap.Predicate{}, fmt.Errorf("plan: unsupported operator")
}

// estimateRows multiplies the table's row count by per-filter
// selectivities from the catalog statistics (optimizer defaults when
// never analyzed).
func estimateRows(cat *storage.Catalog, ti *tableInfo) float64 {
	st := cat.Stats(ti.name)
	rows := 1000.0
	if st != nil {
		rows = float64(st.Rows)
	}
	for _, f := range ti.filters {
		sel := 0.3
		if st != nil {
			switch f.Kind {
			case olap.PredPrefix:
				sel = st.SelectivityPrefix(f.Col, f.Prefix)
			case olap.PredGEInt:
				cs := st.Col(f.Col)
				if cs != nil {
					sel = st.SelectivityRange(f.Col, f.MinI, cs.MaxI)
				}
			case olap.PredLTInt:
				cs := st.Col(f.Col)
				if cs != nil {
					sel = st.SelectivityRange(f.Col, cs.MinI, f.MinI-1)
				}
			case olap.PredEqInt, olap.PredEqStr:
				sel = st.SelectivityEq(f.Col)
			case olap.PredNeInt:
				sel = 1 - st.SelectivityEq(f.Col)
			}
		}
		rows *= sel
	}
	return rows
}

func connected(joins []sql.JoinCond, joined map[string]bool, t string) bool {
	for _, jc := range joins {
		if (joined[jc.LeftTable] && jc.RightTable == t) ||
			(joined[jc.RightTable] && jc.LeftTable == t) {
			return true
		}
	}
	return false
}

// joinKeys collects the equi-join columns between the accumulated side
// (tables in chainSoFar) and table ti.
func joinKeys(joins []sql.JoinCond, accSchemas []*storage.Schema, ti *tableInfo,
	joined map[string]bool, chainSoFar []string) (build, probe []string, err error) {
	inChain := make(map[string]bool, len(chainSoFar))
	for _, t := range chainSoFar {
		inChain[t] = true
	}
	for _, jc := range joins {
		switch {
		case inChain[jc.LeftTable] && jc.RightTable == ti.name:
			build = append(build, jc.LeftCol)
			probe = append(probe, jc.RightCol)
		case inChain[jc.RightTable] && jc.LeftTable == ti.name:
			build = append(build, jc.RightCol)
			probe = append(probe, jc.LeftCol)
		}
	}
	if len(build) == 0 {
		return nil, nil, fmt.Errorf("plan: no join keys for %q", ti.name)
	}
	if len(build) > 3 {
		return nil, nil, fmt.Errorf("plan: at most 3 join key columns supported")
	}
	return build, probe, nil
}

func scanSchema(ti *tableInfo, needed map[string]map[string]bool) *storage.Schema {
	cols := setToSlice(needed[ti.name])
	out := make([]storage.Column, len(cols))
	for i, c := range cols {
		out[i] = ti.schema.Cols[ti.schema.MustCol(c)]
	}
	return storage.NewSchema(ti.name+"_scan", out...)
}

func setToSlice(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func finalSpec(q *sql.Query, qid core.QueryID, in core.StreamID, notify core.ACID) any {
	if q.Count {
		return &olap.AggSpec{Query: qid, In: in, Notify: notify}
	}
	return &olap.CollectSpec{Query: qid, In: in, Cols: unqualify(q.Columns), Notify: notify}
}

func qualTable(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i]
		}
	}
	return ""
}

func qualCol(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

func unqualify(cols []string) []string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = qualCol(c)
	}
	return out
}

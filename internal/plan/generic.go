package plan

import (
	"fmt"
	"sort"
	"strings"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/sim"
	"anydb/internal/sql"
	"anydb/internal/storage"
)

// GenericPlan is the compiled, routed form of a SQL query: shared-scan
// registrations over the base tables (with grouped aggregates pushed
// into the scan when the query is single-table), an optional left-deep
// chain of hash joins, and one generic sink that merges, orders and
// limits the result. The facade compiles it client-side (so errors
// surface synchronously) and the QO AC emits it as event/data streams,
// beaming the scans ahead of the compile window when asked.
type GenericPlan struct {
	Query       core.QueryID
	CompileTime sim.Time
	Beam        bool
	Parts       []int
	Notify      core.ACID

	scans   []scanTemplate
	joins   []*olap.JoinSpec
	joinACs []core.ACID // where each join executes
	sinkAC  core.ACID
	sink    *olap.SinkSpec
}

// scanTemplate is one table's shared-scan registration, instantiated
// per partition at emission.
type scanTemplate struct {
	table   string
	tableID storage.TableID // interned handle the emitted specs carry
	filters []olap.Predicate
	cols    []string       // streaming projection
	groupBy []string       // aggregate pushdown
	aggs    []olap.AggExpr // aggregate pushdown
	// dictGroups marks the grouping dictionary-eligible (no float group
	// columns): the scan may fold into a dense packed-code accumulator
	// instead of a per-row map probe.
	dictGroups bool
	out        core.StreamID
	to         core.ACID
}

// tableInfo is the planner's view of one FROM entry.
type tableInfo struct {
	name     string
	schema   *storage.Schema
	filters  []olap.Predicate
	estRows  float64
	joinCols []string // columns this table contributes to join keys
}

// outItem is one resolved select item.
type outItem struct {
	agg   sql.AggKind
	table string // resolved table ("" for COUNT(*))
	col   string // unqualified source column ("" for COUNT(*))
	name  string // output column name
	kind  storage.Kind
}

// CompileSQL turns a parsed query into a routed plan. compute lists the
// ACs that host the joins and the final sink (round-robin); owner
// placement of scans happens at emission via the topology.
func CompileSQL(cat *storage.Catalog, q *sql.Query, qid core.QueryID,
	parts []int, compute []core.ACID, notify core.ACID) (*GenericPlan, error) {
	if len(q.Tables) == 0 {
		return nil, fmt.Errorf("plan: no tables")
	}
	if len(compute) == 0 {
		return nil, fmt.Errorf("plan: no compute ACs")
	}

	// Resolve tables and filters.
	infos := make(map[string]*tableInfo, len(q.Tables))
	var order []string
	for _, t := range q.Tables {
		schema := cat.Schema(t)
		if schema == nil {
			return nil, fmt.Errorf("plan: unknown table %q", t)
		}
		if _, dup := infos[t]; dup {
			return nil, fmt.Errorf("plan: table %q listed twice (self-joins unsupported)", t)
		}
		infos[t] = &tableInfo{name: t, schema: schema}
		order = append(order, t)
	}
	for _, f := range q.Filters {
		ti, err := resolveColumn(infos, order, f.Table, f.Col)
		if err != nil {
			return nil, err
		}
		pred, err := toPredicate(ti.schema, f)
		if err != nil {
			return nil, err
		}
		ti.filters = append(ti.filters, pred)
	}
	for _, jc := range q.Joins {
		for _, side := range []struct{ t, c string }{
			{jc.LeftTable, jc.LeftCol}, {jc.RightTable, jc.RightCol},
		} {
			ti, err := resolveColumn(infos, order, side.t, side.c)
			if err != nil {
				return nil, err
			}
			ti.joinCols = append(ti.joinCols, side.c)
		}
	}

	// Resolve select items, GROUP BY, ORDER BY.
	items, err := resolveItems(infos, order, q)
	if err != nil {
		return nil, err
	}
	groupTables, groupCols, err := resolveGroupBy(infos, order, q)
	if err != nil {
		return nil, err
	}
	if err := checkGrouping(items, groupCols, q); err != nil {
		return nil, err
	}
	if len(order) > 1 {
		if err := checkJoinUnambiguous(infos, order, items, groupCols); err != nil {
			return nil, err
		}
	}

	// Output shape: names uniquified, kinds fixed, plus where each
	// output column comes from in the sink's internal layout.
	outCols := make([]string, len(items))
	outKinds := make([]storage.Kind, len(items))
	seen := map[string]int{}
	for i, it := range items {
		name := it.name
		if n := seen[name]; n > 0 {
			name = fmt.Sprintf("%s_%d", name, n+1)
		}
		seen[it.name]++
		outCols[i] = name
		outKinds[i] = it.kind
	}
	outSrc, aggs, aggTables, err := layoutAgg(items, groupTables, groupCols)
	if err != nil {
		return nil, err
	}
	orderKeys, err := resolveOrderBy(infos, order, q, items)
	if err != nil {
		return nil, err
	}

	// Estimate filtered cardinalities from catalog statistics.
	for _, ti := range infos {
		ti.estRows = estimateRows(cat, ti)
	}

	// Left-deep join order: start from the smallest estimate, then
	// greedily attach the smallest table connected by a join edge.
	joined := map[string]bool{}
	var chain []string
	remaining := append([]string(nil), order...)
	sort.SliceStable(remaining, func(i, j int) bool {
		return infos[remaining[i]].estRows < infos[remaining[j]].estRows
	})
	chain = append(chain, remaining[0])
	joined[remaining[0]] = true
	remaining = remaining[1:]
	for len(remaining) > 0 {
		picked := -1
		for i, t := range remaining {
			if connected(q.Joins, joined, t) {
				picked = i
				break
			}
		}
		if picked < 0 {
			return nil, fmt.Errorf("plan: table %q has no join condition to the rest (cross joins unsupported)", remaining[0])
		}
		chain = append(chain, remaining[picked])
		joined[remaining[picked]] = true
		remaining = append(remaining[:picked], remaining[picked+1:]...)
	}

	// Columns each scan must ship downstream: join keys, projected
	// output, grouping columns, aggregate sources. (Single-table
	// aggregate plans push the aggregation into the scan instead and
	// ship only partial-aggregate rows.)
	needed := make(map[string]map[string]bool)
	for _, t := range order {
		needed[t] = make(map[string]bool)
	}
	for _, jc := range q.Joins {
		needed[jc.LeftTable][jc.LeftCol] = true
		needed[jc.RightTable][jc.RightCol] = true
	}
	for _, it := range items {
		if it.col != "" {
			needed[it.table][it.col] = true
		}
	}
	for i, t := range groupTables {
		needed[t][groupCols[i]] = true
	}
	for t, cols := range needed {
		if len(cols) == 0 {
			// Ship at least one column so batches have shape.
			needed[t][infos[t].schema.Cols[0].Name] = true
		}
	}

	// Wire streams: scan of chain[i] → stream base+i+1; join_i output →
	// stream base+32+i.
	p := &GenericPlan{Query: qid, Parts: parts, Notify: notify}
	base := core.StreamID(uint64(qid) * 64)
	scanStream := func(i int) core.StreamID { return base + core.StreamID(i) + 1 }
	joinStream := func(i int) core.StreamID { return base + 32 + core.StreamID(i) }

	acOf := func(i int) core.ACID { return compute[i%len(compute)] }

	sink := &olap.SinkSpec{
		Query:    qid,
		OutCols:  outCols,
		OutKinds: outKinds,
		OutSrc:   outSrc,
		OrderBy:  orderKeys,
		Limit:    q.Limit,
		Notify:   notify,
	}

	if len(chain) == 1 {
		t := chain[0]
		if len(aggs) > 0 {
			// Aggregate pushdown: the shared scan folds the grouped
			// aggregates per partition; the sink merges partials. The
			// grouping is dictionary-eligible when no group column is a
			// float (ints and strings dictionary-encode in the chunk
			// cache; floats never do).
			dict := len(groupCols) > 0
			for _, g := range groupCols {
				if infos[t].schema.Cols[infos[t].schema.MustCol(g)].Kind == storage.KFloat {
					dict = false
				}
			}
			p.scans = append(p.scans, scanTemplate{
				table: t, tableID: infos[t].schema.ID, filters: infos[t].filters,
				groupBy: groupCols, aggs: aggs, dictGroups: dict,
				out: scanStream(0), to: acOf(0),
			})
			sink.GroupBy = groupCols
			sink.Aggs = aggs
			sink.MergePartials = true
		} else {
			p.scans = append(p.scans, scanTemplate{
				table: t, tableID: infos[t].schema.ID, filters: infos[t].filters,
				cols: setToSlice(needed[t]),
				out:  scanStream(0), to: acOf(0),
			})
			sink.Cols = itemCols(items)
		}
		sink.In = scanStream(0)
		p.sinkAC = acOf(0)
		p.sink = sink
		return p, nil
	}
	_ = aggTables

	// Accumulated (build) side starts as chain[0]'s scan; join_i runs on
	// compute AC J_i, builds on the accumulated stream and probes the
	// next table's scan. The last join's output stays local to feed the
	// sink.
	accSchemas := []*storage.Schema{scanSchema(infos[chain[0]], needed)}
	accStream := scanStream(0)
	joinAC := func(i int) core.ACID { return acOf(i - 1) } // J_i for i>=1
	p.scans = append(p.scans, scanTemplate{
		table: chain[0], tableID: infos[chain[0]].schema.ID,
		filters: infos[chain[0]].filters,
		cols:    setToSlice(needed[chain[0]]),
		out:     accStream, to: joinAC(1),
	})
	for i := 1; i < len(chain); i++ {
		t := chain[i]
		probeStream := scanStream(i)
		p.scans = append(p.scans, scanTemplate{
			table: t, tableID: infos[t].schema.ID, filters: infos[t].filters,
			cols: setToSlice(needed[t]),
			out:  probeStream, to: joinAC(i),
		})
		buildKeys, probeKeys, err := joinKeys(q.Joins, accSchemas, infos[t], joined, chain[:i])
		if err != nil {
			return nil, err
		}
		out := joinStream(i - 1)
		outTo := joinAC(i + 1) // the next join consumes our output...
		if i == len(chain)-1 {
			outTo = joinAC(i) // ...except the last, which feeds the local sink
		}
		p.joins = append(p.joins, &olap.JoinSpec{
			Query: qid,
			Build: accStream, BuildKey: buildKeys,
			Probe: probeStream, ProbeKey: probeKeys,
			Semi: false,
			Out:  out, To: outTo, Producers: 1,
			Notify: core.NoAC, Label: fmt.Sprintf("join%d", i),
		})
		p.joinACs = append(p.joinACs, joinAC(i))
		accSchemas = append(accSchemas, scanSchema(infos[t], needed))
		accStream = out
	}
	if len(aggs) > 0 {
		// Aggregate over join output: the sink folds raw rows.
		sink.GroupBy = groupCols
		sink.Aggs = aggs
	} else {
		sink.Cols = itemCols(items)
	}
	sink.In = accStream
	p.sinkAC = joinAC(len(chain) - 1)
	p.sink = sink
	return p, nil
}

// resolveItems resolves each select item to its source table/column,
// output name and kind.
func resolveItems(infos map[string]*tableInfo, order []string, q *sql.Query) ([]outItem, error) {
	items := make([]outItem, 0, len(q.Items))
	for _, it := range q.Items {
		switch it.Agg {
		case sql.AggCount:
			items = append(items, outItem{agg: it.Agg, name: "count", kind: storage.KInt})
			continue
		case sql.AggNone, sql.AggSum, sql.AggMin, sql.AggMax, sql.AggAvg:
		default:
			return nil, fmt.Errorf("plan: unsupported aggregate %v", it.Agg)
		}
		ti, err := resolveColumn(infos, order, qualTable(it.Col), qualCol(it.Col))
		if err != nil {
			return nil, err
		}
		col := qualCol(it.Col)
		kind := ti.schema.Cols[ti.schema.MustCol(col)].Kind
		o := outItem{agg: it.Agg, table: ti.name, col: col, name: col, kind: kind}
		switch it.Agg {
		case sql.AggSum:
			if kind == storage.KStr {
				return nil, fmt.Errorf("plan: SUM over string column %q", col)
			}
			o.name = "sum_" + col
		case sql.AggAvg:
			if kind == storage.KStr {
				return nil, fmt.Errorf("plan: AVG over string column %q", col)
			}
			o.name, o.kind = "avg_"+col, storage.KFloat
		case sql.AggMin:
			o.name = "min_" + col
		case sql.AggMax:
			o.name = "max_" + col
		}
		items = append(items, o)
	}
	return items, nil
}

// resolveGroupBy resolves GROUP BY columns to (table, column) pairs.
func resolveGroupBy(infos map[string]*tableInfo, order []string, q *sql.Query) (tables, cols []string, err error) {
	for _, g := range q.GroupBy {
		ti, err := resolveColumn(infos, order, qualTable(g), qualCol(g))
		if err != nil {
			return nil, nil, err
		}
		tables = append(tables, ti.name)
		cols = append(cols, qualCol(g))
	}
	return tables, cols, nil
}

// checkGrouping enforces the usual aggregation rules.
func checkGrouping(items []outItem, groupCols []string, q *sql.Query) error {
	aggregated := false
	for _, it := range items {
		if it.agg != sql.AggNone {
			aggregated = true
		}
	}
	if !aggregated && len(groupCols) > 0 {
		return fmt.Errorf("plan: GROUP BY without aggregates is unsupported")
	}
	if !aggregated {
		return nil
	}
	for _, it := range items {
		if it.agg != sql.AggNone {
			continue
		}
		found := false
		for _, g := range groupCols {
			if g == it.col {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("plan: column %q must appear in GROUP BY", it.col)
		}
	}
	return nil
}

// checkJoinUnambiguous rejects queries whose output/grouping columns
// exist in more than one joined table: the join output schema renames
// colliding right-side columns, so the sink could silently bind the
// wrong one.
func checkJoinUnambiguous(infos map[string]*tableInfo, order []string, items []outItem, groupCols []string) error {
	check := func(col string) error {
		if col == "" {
			return nil
		}
		n := 0
		for _, t := range order {
			if infos[t].schema.Col(col) >= 0 {
				n++
			}
		}
		if n > 1 {
			return fmt.Errorf("plan: column %q exists in multiple joined tables", col)
		}
		return nil
	}
	for _, it := range items {
		if err := check(it.col); err != nil {
			return err
		}
	}
	for _, g := range groupCols {
		if err := check(g); err != nil {
			return err
		}
	}
	return nil
}

// layoutAgg derives the aggregate list (in select order) and the OutSrc
// mapping from output columns onto the sink's internal layout (group
// values first, then finalized aggregates).
func layoutAgg(items []outItem, groupTables, groupCols []string) (outSrc []int, aggs []olap.AggExpr, aggTables []string, err error) {
	aggregated := false
	for _, it := range items {
		if it.agg != sql.AggNone {
			aggregated = true
		}
	}
	if !aggregated {
		return nil, nil, nil, nil
	}
	outSrc = make([]int, len(items))
	for i, it := range items {
		if it.agg == sql.AggNone {
			for g, col := range groupCols {
				if col == it.col {
					outSrc[i] = g
					break
				}
			}
			continue
		}
		outSrc[i] = len(groupCols) + len(aggs)
		aggs = append(aggs, olap.AggExpr{Fn: aggFn(it.agg), Col: it.col})
		aggTables = append(aggTables, it.table)
	}
	_ = groupTables
	return outSrc, aggs, aggTables, nil
}

// resolveOrderBy maps ORDER BY terms onto output column indexes: each
// term must match a select item (same aggregate, same column).
func resolveOrderBy(infos map[string]*tableInfo, order []string, q *sql.Query, items []outItem) ([]olap.OrderKey, error) {
	var keys []olap.OrderKey
	for _, oi := range q.OrderBy {
		col := qualCol(oi.Col)
		table := qualTable(oi.Col)
		if oi.Agg != sql.AggCount && table != "" {
			// Normalize a qualified reference to its resolved table so it
			// matches the (also resolved) select item.
			ti, err := resolveColumn(infos, order, table, col)
			if err != nil {
				return nil, err
			}
			table = ti.name
		}
		idx := -1
		for i, it := range items {
			if it.agg != aggOf(oi.Agg) {
				continue
			}
			if oi.Agg == sql.AggCount || (it.col == col && (table == "" || it.table == table)) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("plan: ORDER BY term (at offset %d) must appear in SELECT", oi.Pos)
		}
		keys = append(keys, olap.OrderKey{Col: idx, Desc: oi.Desc})
	}
	return keys, nil
}

func aggOf(a sql.AggKind) sql.AggKind { return a }

// aggFn maps the parser's aggregate kind onto the operator plane's.
func aggFn(a sql.AggKind) olap.AggFn {
	switch a {
	case sql.AggCount:
		return olap.AggCount
	case sql.AggSum:
		return olap.AggSum
	case sql.AggMin:
		return olap.AggMin
	case sql.AggMax:
		return olap.AggMax
	case sql.AggAvg:
		return olap.AggAvg
	}
	panic(fmt.Sprintf("plan: no aggregate mapping for %v", a))
}

// itemCols returns the (unqualified) source columns of a plain
// projection, in select order.
func itemCols(items []outItem) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = it.col
	}
	return out
}

// OnGenericPlan is the QO-side emission (called from QO.OnEvent).
func (q *QO) onGenericPlan(ctx core.Context, p *GenericPlan) {
	emitScans := func() {
		for i := range p.scans {
			sc := &p.scans[i]
			for _, part := range p.Parts {
				ev := core.GetEvent()
				ev.Kind, ev.Query = core.EvInstallOp, p.Query
				ev.Payload = &olap.SharedScanSpec{
					Query: p.Query, Table: sc.tableID, Part: part,
					Filters: sc.filters, Cols: sc.cols,
					GroupBy: sc.groupBy, Aggs: sc.aggs, DictGroups: sc.dictGroups,
					Out: sc.out, To: sc.to, Producers: len(p.Parts),
				}
				ctx.Send(q.Topo.Owner(part), ev)
			}
		}
	}
	if p.Beam {
		emitScans()
	}
	ctx.Charge(p.CompileTime)
	if !p.Beam {
		emitScans()
	}
	for i, js := range p.joins {
		ev := core.GetEvent()
		ev.Kind, ev.Query, ev.Payload = core.EvInstallOp, p.Query, js
		ctx.Send(p.joinACs[i], ev)
	}
	if p.sink == nil {
		panic("plan: generic plan without final sink")
	}
	ev := core.GetEvent()
	ev.Kind, ev.Query, ev.Payload = core.EvInstallOp, p.Query, p.sink
	ctx.Send(p.sinkAC, ev)
}

// Describe renders the routed plan as a deterministic multi-line
// summary (golden-test support and EXPLAIN-style debugging).
func (p *GenericPlan) Describe() string {
	var b strings.Builder
	for i := range p.scans {
		sc := &p.scans[i]
		fmt.Fprintf(&b, "scan %s parts=%d", sc.table, len(p.Parts))
		if len(sc.filters) > 0 {
			fmt.Fprintf(&b, " filters=%d", len(sc.filters))
		}
		if len(sc.aggs) > 0 {
			fmt.Fprintf(&b, " pushdown group=%v", sc.groupBy)
			if sc.dictGroups {
				b.WriteString(" dict")
			}
			fmt.Fprintf(&b, " aggs=%s", aggList(sc.aggs))
		} else {
			fmt.Fprintf(&b, " cols=%v", sc.cols)
		}
		fmt.Fprintf(&b, " -> s%d@ac%d\n", sc.out, sc.to)
	}
	for i, js := range p.joins {
		fmt.Fprintf(&b, "%s build=s%d%v probe=s%d%v @ac%d -> s%d@ac%d\n",
			js.Label, js.Build, js.BuildKey, js.Probe, js.ProbeKey, p.joinACs[i], js.Out, js.To)
	}
	s := p.sink
	fmt.Fprintf(&b, "sink in=s%d", s.In)
	if len(s.Aggs) > 0 {
		mode := "fold"
		if s.MergePartials {
			mode = "merge"
		}
		fmt.Fprintf(&b, " %s group=%v aggs=%s", mode, s.GroupBy, aggList(s.Aggs))
	} else {
		fmt.Fprintf(&b, " collect cols=%v", s.Cols)
	}
	if len(s.OrderBy) > 0 {
		fmt.Fprintf(&b, " order=%v", s.OrderBy)
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " limit=%d", s.Limit)
	}
	fmt.Fprintf(&b, " out=%v @ac%d\n", s.OutCols, p.sinkAC)
	return b.String()
}

func aggList(aggs []olap.AggExpr) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		if a.Col == "" {
			parts[i] = a.Fn.String()
		} else {
			parts[i] = a.Fn.String() + "(" + a.Col + ")"
		}
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// ---- helpers ----

func resolveColumn(infos map[string]*tableInfo, order []string, table, col string) (*tableInfo, error) {
	if table != "" {
		ti, ok := infos[table]
		if !ok {
			return nil, fmt.Errorf("plan: unknown table %q", table)
		}
		if ti.schema.Col(col) < 0 {
			return nil, fmt.Errorf("plan: no column %q in table %q", col, table)
		}
		return ti, nil
	}
	var found *tableInfo
	for _, t := range order {
		if infos[t].schema.Col(col) >= 0 {
			if found != nil {
				return nil, fmt.Errorf("plan: column %q is ambiguous", col)
			}
			found = infos[t]
		}
	}
	if found == nil {
		return nil, fmt.Errorf("plan: unknown column %q", col)
	}
	return found, nil
}

func toPredicate(schema *storage.Schema, f sql.Filter) (olap.Predicate, error) {
	kind := schema.Cols[schema.MustCol(f.Col)].Kind
	intOnly := func(op string) error {
		if kind != storage.KInt {
			return fmt.Errorf("plan: %s supported on int columns only (%q)", op, f.Col)
		}
		return nil
	}
	switch f.Op {
	case sql.OpLikePrefix:
		if kind != storage.KStr {
			return olap.Predicate{}, fmt.Errorf("plan: LIKE on non-string column %q", f.Col)
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredPrefix, Prefix: f.Str}, nil
	case sql.OpGe:
		if err := intOnly(">="); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredGEInt, MinI: int64(f.Num)}, nil
	case sql.OpEq:
		if f.IsStr {
			if kind != storage.KStr {
				return olap.Predicate{}, fmt.Errorf("plan: string comparison on %s column %q", kind, f.Col)
			}
			return olap.Predicate{Col: f.Col, Kind: olap.PredEqStr, Str: f.Str}, nil
		}
		if err := intOnly("="); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredEqInt, MinI: int64(f.Num)}, nil
	case sql.OpLt:
		if err := intOnly("<"); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredLTInt, MinI: int64(f.Num)}, nil
	case sql.OpGt:
		if err := intOnly(">"); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredGEInt, MinI: int64(f.Num) + 1}, nil
	case sql.OpLe:
		if err := intOnly("<="); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredLTInt, MinI: int64(f.Num) + 1}, nil
	case sql.OpNe:
		if err := intOnly("<>"); err != nil {
			return olap.Predicate{}, err
		}
		return olap.Predicate{Col: f.Col, Kind: olap.PredNeInt, MinI: int64(f.Num)}, nil
	}
	return olap.Predicate{}, fmt.Errorf("plan: unsupported operator")
}

// estimateRows multiplies the table's row count by per-filter
// selectivities from the catalog statistics (optimizer defaults when
// never analyzed).
func estimateRows(cat *storage.Catalog, ti *tableInfo) float64 {
	st := cat.Stats(ti.name)
	rows := 1000.0
	if st != nil {
		rows = float64(st.Rows)
	}
	for _, f := range ti.filters {
		sel := 0.3
		if st != nil {
			switch f.Kind {
			case olap.PredPrefix:
				sel = st.SelectivityPrefix(f.Col, f.Prefix)
			case olap.PredGEInt:
				cs := st.Col(f.Col)
				if cs != nil {
					sel = st.SelectivityRange(f.Col, f.MinI, cs.MaxI)
				}
			case olap.PredLTInt:
				cs := st.Col(f.Col)
				if cs != nil {
					sel = st.SelectivityRange(f.Col, cs.MinI, f.MinI-1)
				}
			case olap.PredEqInt, olap.PredEqStr:
				sel = st.SelectivityEq(f.Col)
			case olap.PredNeInt:
				sel = 1 - st.SelectivityEq(f.Col)
			}
		}
		rows *= sel
	}
	return rows
}

func connected(joins []sql.JoinCond, joined map[string]bool, t string) bool {
	for _, jc := range joins {
		if (joined[jc.LeftTable] && jc.RightTable == t) ||
			(joined[jc.RightTable] && jc.LeftTable == t) {
			return true
		}
	}
	return false
}

// joinKeys collects the equi-join columns between the accumulated side
// (tables in chainSoFar) and table ti.
func joinKeys(joins []sql.JoinCond, accSchemas []*storage.Schema, ti *tableInfo,
	joined map[string]bool, chainSoFar []string) (build, probe []string, err error) {
	inChain := make(map[string]bool, len(chainSoFar))
	for _, t := range chainSoFar {
		inChain[t] = true
	}
	for _, jc := range joins {
		switch {
		case inChain[jc.LeftTable] && jc.RightTable == ti.name:
			build = append(build, jc.LeftCol)
			probe = append(probe, jc.RightCol)
		case inChain[jc.RightTable] && jc.LeftTable == ti.name:
			build = append(build, jc.RightCol)
			probe = append(probe, jc.LeftCol)
		}
	}
	if len(build) == 0 {
		return nil, nil, fmt.Errorf("plan: no join keys for %q", ti.name)
	}
	if len(build) > 3 {
		return nil, nil, fmt.Errorf("plan: at most 3 join key columns supported")
	}
	return build, probe, nil
}

func scanSchema(ti *tableInfo, needed map[string]map[string]bool) *storage.Schema {
	cols := setToSlice(needed[ti.name])
	out := make([]storage.Column, len(cols))
	for i, c := range cols {
		out[i] = ti.schema.Cols[ti.schema.MustCol(c)]
	}
	return storage.NewSchema(ti.name+"_scan", out...)
}

func setToSlice(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

func qualTable(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[:i]
		}
	}
	return ""
}

func qualCol(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

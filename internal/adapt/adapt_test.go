package adapt

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

// fakeCtx drives the controller without an engine.
type fakeCtx struct {
	now   sim.Time
	costs sim.CostModel
	sent  []*core.Event
}

func newFakeCtx() *fakeCtx { return &fakeCtx{costs: sim.DefaultCosts()} }

func (c *fakeCtx) Self() core.ACID                   { return 5 }
func (c *fakeCtx) Now() sim.Time                     { return c.now }
func (c *fakeCtx) Charge(sim.Time)                   {}
func (c *fakeCtx) Costs() *sim.CostModel             { return &c.costs }
func (c *fakeCtx) Topology() *core.Topology          { return nil }
func (c *fakeCtx) Offloaded(core.ACID) bool          { return false }
func (c *fakeCtx) SendData(core.ACID, *core.DataMsg) {}
func (c *fakeCtx) Send(dst core.ACID, ev *core.Event) {
	if dst == core.ClientAC {
		c.sent = append(c.sent, ev)
	}
}

func (c *fakeCtx) decisions() []*Decision {
	var out []*Decision
	for _, ev := range c.sent {
		if ev.Kind == core.EvAdapt {
			out = append(out, ev.Payload.(*Decision))
		}
	}
	return out
}

func testOptions(start oltp.Policy) Options {
	return Options{
		Start:      start,
		Candidates: []oltp.Policy{oltp.SharedNothing, oltp.StreamingCC},
		Env:        Env{Executors: 4, Warehouses: 4},
	}
}

// feed delivers a report with the given per-warehouse admissions,
// advancing the fake clock by more than one window bucket per report
// so every report passes the evaluation rate limit.
func feed(ctrl *Controller, ctx *fakeCtx, byHome []int64) {
	ctx.now += 30 * sim.Microsecond
	var admitted int64
	for _, n := range byHome {
		admitted += n
	}
	ctrl.OnEvent(ctx, nil, &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
		Src: 0, At: ctx.now, Admitted: admitted, Committed: admitted, ByHome: byHome,
	}})
}

func TestControllerSwitchesOnSkew(t *testing.T) {
	ctx := newFakeCtx()
	ctrl := NewController(testOptions(oltp.SharedNothing))
	// Uniform load: shared-nothing stays.
	for i := 0; i < 30; i++ {
		feed(ctrl, ctx, []int64{16, 16, 16, 16})
	}
	if len(ctx.decisions()) != 0 {
		t.Fatalf("controller switched on a uniform workload: %+v", ctx.decisions()[0])
	}
	// All traffic collapses onto warehouse 0: streaming CC must win.
	for i := 0; i < 30; i++ {
		feed(ctrl, ctx, []int64{64, 0, 0, 0})
	}
	ds := ctx.decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want exactly 1 (hysteresis)", len(ds))
	}
	if ds[0].From != oltp.SharedNothing || ds[0].To != oltp.StreamingCC {
		t.Fatalf("decision = %v -> %v", ds[0].From, ds[0].To)
	}
	if ctrl.Current() != oltp.StreamingCC {
		t.Fatalf("current = %v", ctrl.Current())
	}
	// And back once the load spreads out again.
	for i := 0; i < 60; i++ {
		feed(ctrl, ctx, []int64{16, 16, 16, 16})
	}
	ds = ctx.decisions()
	if len(ds) != 2 || ds[1].To != oltp.SharedNothing {
		t.Fatalf("expected the return switch, got %d decisions", len(ds))
	}
}

func TestControllerNeedsMinSample(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.MinSample = 1000
	ctrl := NewController(opts)
	for i := 0; i < 50; i++ {
		feed(ctrl, ctx, []int64{8, 0, 0, 0}) // fully skewed but tiny
	}
	if len(ctx.decisions()) != 0 {
		t.Fatal("controller acted below the minimum sample size")
	}
}

func TestControllerPatience(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.Patience = 5
	ctrl := NewController(opts)
	// Fewer skewed evaluations than Patience: no switch yet.
	for i := 0; i < 4; i++ {
		feed(ctrl, ctx, []int64{64, 0, 0, 0})
	}
	if len(ctx.decisions()) != 0 {
		t.Fatal("switched before patience ran out")
	}
	feed(ctrl, ctx, []int64{64, 0, 0, 0})
	if len(ctx.decisions()) != 1 {
		t.Fatalf("decisions = %d after patience satisfied", len(ctx.decisions()))
	}
}

func TestControllerGrowsOnQueries(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.Elastic = true
	ctrl := NewController(opts)
	for i := 0; i < 3; i++ {
		ctx.now += 10 * sim.Microsecond
		ctrl.OnEvent(ctx, nil, &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
			At: ctx.now, Queries: 2,
		}})
	}
	var grows int
	for _, d := range ctx.decisions() {
		if d.Grow {
			grows++
		}
	}
	if grows != 1 {
		t.Fatalf("grow decisions = %d, want exactly 1", grows)
	}
}

func TestSignalsDerivations(t *testing.T) {
	s := Signals{
		Admitted: 100, Aborted: 25, CrossPart: 15,
		HomeShare: []float64{0.25, 0.25, 0.25, 0.25},
	}
	if got := s.EffPartitions(); got < 3.99 || got > 4.01 {
		t.Fatalf("uniform EffPartitions = %v, want 4", got)
	}
	if got := s.TopShare(); got != 0.25 {
		t.Fatalf("TopShare = %v", got)
	}
	if got := s.CrossFrac(); got != 0.15 {
		t.Fatalf("CrossFrac = %v", got)
	}
	if got := s.AbortRate(); got != 0.2 {
		t.Fatalf("AbortRate = %v", got)
	}
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	if got := skewed.EffPartitions(); got != 1 {
		t.Fatalf("skewed EffPartitions = %v, want 1", got)
	}
	var empty Signals
	if empty.EffPartitions() != 0 || empty.AbortRate() != 0 || empty.CrossFrac() != 0 {
		t.Fatal("empty signals must not divide by zero")
	}
}

// TestMeasuredModelOverridesPrior: the measured model must fall back to
// the prior on unseen arms and converge onto realized throughput — even
// when the measurements contradict the hand-calibrated constants.
func TestMeasuredModelOverridesPrior(t *testing.T) {
	env := Env{Executors: 4, Warehouses: 4}
	m := NewMeasuredModel(nil)
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}

	// Cold: identical to the prior.
	for _, p := range []oltp.Policy{oltp.SharedNothing, oltp.StreamingCC} {
		if got, want := m.Score(p, skewed, env), (DefaultModel{}).Score(p, skewed, env); got != want {
			t.Fatalf("cold score(%v) = %v, want prior %v", p, got, want)
		}
	}

	// Feed measurements where — contra the prior — shared-nothing beats
	// streaming CC under skew. The model must learn to rank it first.
	for i := 0; i < 20; i++ {
		m.Observe(oltp.SharedNothing, skewed, 2_000_000, env)
		m.Observe(oltp.StreamingCC, skewed, 500_000, env)
	}
	if m.Score(oltp.SharedNothing, skewed, env) <= m.Score(oltp.StreamingCC, skewed, env) {
		t.Fatalf("measured model kept the prior's ranking against the evidence: SN %.2f vs SCC %.2f",
			m.Score(oltp.SharedNothing, skewed, env), m.Score(oltp.StreamingCC, skewed, env))
	}
	if !m.Sampled(oltp.SharedNothing, skewed) || m.Sampled(oltp.PreciseIntra, skewed) {
		t.Fatal("Sampled must reflect which arms have data")
	}
}

// TestMeasuredModelGeneralizesByClass: measurements under one workload
// class must not leak into another (a skewed-phase rate says nothing
// about a uniform phase).
func TestMeasuredModelGeneralizesByClass(t *testing.T) {
	env := Env{Executors: 4, Warehouses: 4}
	m := NewMeasuredModel(nil)
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	uniform := Signals{Admitted: 100, HomeShare: []float64{0.25, 0.25, 0.25, 0.25}}
	for i := 0; i < 10; i++ {
		m.Observe(oltp.StreamingCC, skewed, 1_700_000, env)
	}
	if m.Sampled(oltp.StreamingCC, uniform) {
		t.Fatal("a skewed-phase measurement leaked into the uniform class")
	}
	if got, want := m.Score(oltp.StreamingCC, uniform, env), (DefaultModel{}).Score(oltp.StreamingCC, uniform, env); got != want {
		t.Fatalf("uniform-class score = %v, want untouched prior %v", got, want)
	}
}

// TestMeasuredModelRegret: running below the best-seen arm accumulates
// regret; running at the best does not.
func TestMeasuredModelRegret(t *testing.T) {
	env := Env{Executors: 4, Warehouses: 4}
	m := NewMeasuredModel(nil)
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	m.Observe(oltp.StreamingCC, skewed, 1_000_000, env)
	if m.Regret() != 0 {
		t.Fatalf("regret after first observation = %v, want 0", m.Regret())
	}
	m.Observe(oltp.SharedNothing, skewed, 500_000, env) // half the best: +0.5
	if r := m.Regret(); r < 0.49 || r > 0.51 {
		t.Fatalf("regret = %v, want ~0.5", r)
	}
	m.Observe(oltp.StreamingCC, skewed, 1_000_000, env) // at the best: no regret
	if r := m.Regret(); r < 0.49 || r > 0.51 {
		t.Fatalf("regret grew while running the best arm: %v", r)
	}
	if m.Samples() != 3 {
		t.Fatalf("samples = %d", m.Samples())
	}
}

// measuredOptions builds controller options with a measured model and a
// probe cadence small enough for the fake clock.
func measuredOptions(start oltp.Policy) Options {
	o := testOptions(start)
	o.Model = NewMeasuredModel(nil)
	return o
}

// TestControllerProbesUnmeasuredArms: once stable and measured on its
// own arm, the controller must spend a probe on the unexplored
// candidate, then return — bracketing the probe with switches.
func TestControllerProbesUnmeasuredArms(t *testing.T) {
	ctx := newFakeCtx()
	ctrl := NewController(measuredOptions(oltp.SharedNothing))
	// Long uniform run: shared-nothing stays best and gets measured;
	// eventually the controller probes streaming CC, measures it worse,
	// and returns.
	for i := 0; i < 800; i++ {
		feed(ctrl, ctx, []int64{16, 16, 16, 16})
	}
	ds := ctx.decisions()
	var probeOut, probeBack bool
	for _, d := range ds {
		if d.Probe && d.From == oltp.SharedNothing && d.To == oltp.StreamingCC {
			probeOut = true
		}
		if d.Probe && d.From == oltp.StreamingCC && d.To == oltp.SharedNothing {
			probeBack = true
		}
	}
	if !probeOut {
		t.Fatalf("controller never probed the unmeasured candidate; decisions: %+v", ds)
	}
	if !probeBack {
		t.Fatalf("probe never returned to the better policy; decisions: %+v", ds)
	}
	if ctrl.Current() != oltp.SharedNothing {
		t.Fatalf("current = %v after probe cycle", ctrl.Current())
	}
	// The regret trace must be populated on emitted decisions.
	last := ds[len(ds)-1]
	if last.Regret == 0 {
		t.Log("note: zero regret — acceptable if the probe ran exactly at the best rate")
	}
}

// rebalanceOptions wires a 4-slot static placement: warehouses 0..7 on
// owners w%4 until the test's move table says otherwise.
func rebalanceOptions(owners []int) Options {
	o := Options{
		Start:      oltp.SharedNothing,
		Candidates: []oltp.Policy{oltp.SharedNothing},
		Env:        Env{Executors: 4, Warehouses: len(owners)},
		Rebalance:  true,
		OwnerIdx:   func(w int) int { return owners[w] },
		NumOwners:  func() int { return 4 },
	}
	return o
}

// TestControllerRebalancesHotOwner: two hot warehouses co-located on
// one owner must trigger exactly one Move decision (hysteresis), naming
// a warehouse whose migration levels the load, toward the coolest slot.
func TestControllerRebalancesHotOwner(t *testing.T) {
	owners := []int{0, 1, 2, 3, 0, 1, 2, 3} // w%4 placement, 8 warehouses
	ctx := newFakeCtx()
	ctrl := NewController(rebalanceOptions(owners))
	// All load on warehouses 0 and 4 — both on owner 0. Apply emitted
	// moves immediately, the way the cluster's applier does (OwnerIdx
	// reflects ground truth as soon as the handoff lands).
	hot := []int64{32, 0, 0, 0, 32, 0, 0, 0}
	var moves []*Move
	for i := 0; i < 70; i++ {
		feed(ctrl, ctx, hot)
		for _, d := range ctx.decisions() {
			if d.Move != nil && len(moves) == 0 {
				moves = append(moves, d.Move)
				owners[d.Move.Warehouse] = d.Move.ToOwner
			}
		}
	}
	if len(moves) != 1 {
		t.Fatalf("no move emitted; decisions: %+v", ctx.decisions())
	}
	mv := moves[0]
	if mv.Warehouse != 0 && mv.Warehouse != 4 {
		t.Fatalf("moved warehouse %d, want one of the hot pair {0,4}", mv.Warehouse)
	}
	if mv.FromOwner != 0 || mv.ToOwner == 0 {
		t.Fatalf("move %+v must leave owner 0", mv)
	}
	// With the load leveled, no further moves may have accumulated.
	var total int
	for _, d := range ctx.decisions() {
		if d.Move != nil {
			total++
		}
	}
	if total != 1 {
		t.Fatalf("controller kept moving after the load leveled: %d moves", total)
	}
}

// TestRebalanceOnlyTracksReportedPolicy: a single-candidate controller
// (rebalance-only mode) does not own the routing — manual switches
// happen around it — so it must adopt the policy the dispatchers
// report running, and stamp Move decisions with it.
func TestRebalanceOnlyTracksReportedPolicy(t *testing.T) {
	owners := []int{0, 1, 2, 3, 0, 1, 2, 3}
	ctx := newFakeCtx()
	ctrl := NewController(rebalanceOptions(owners))
	hot := []int64{32, 0, 0, 0, 32, 0, 0, 0}
	feedPolicy := func(pol oltp.Policy) {
		ctx.now += 30 * sim.Microsecond
		var admitted int64
		for _, n := range hot {
			admitted += n
		}
		ctrl.OnEvent(ctx, nil, &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
			At: ctx.now, Policy: pol, Admitted: admitted, Committed: admitted, ByHome: hot,
		}})
	}
	// The cluster was manually switched to streaming CC; reports say so.
	var move *Decision
	for i := 0; i < 70 && move == nil; i++ {
		feedPolicy(oltp.StreamingCC)
		for _, d := range ctx.decisions() {
			if d.Move != nil {
				move = d
			}
		}
	}
	if ctrl.Current() != oltp.StreamingCC {
		t.Fatalf("controller did not adopt the reported policy: %v", ctrl.Current())
	}
	if move == nil {
		t.Fatalf("no move emitted; decisions: %+v", ctx.decisions())
	}
	if move.From != oltp.StreamingCC || move.To != oltp.StreamingCC {
		t.Fatalf("move stamped with %v -> %v, want the reported streaming-cc", move.From, move.To)
	}
}

// TestControllerNeverSplitsSoleHotWarehouse: pure §3.2 skew (one hot
// warehouse) cannot be fixed by placement — the controller must not
// emit useless moves.
func TestControllerNeverSplitsSoleHotWarehouse(t *testing.T) {
	owners := []int{0, 1, 2, 3}
	ctx := newFakeCtx()
	ctrl := NewController(rebalanceOptions(owners))
	for i := 0; i < 50; i++ {
		feed(ctrl, ctx, []int64{64, 0, 0, 0})
	}
	for _, d := range ctx.decisions() {
		if d.Move != nil {
			t.Fatalf("useless move emitted for a sole hot warehouse: %+v", d.Move)
		}
	}
}

func TestDefaultModelRanking(t *testing.T) {
	env := Env{Executors: 4, Warehouses: 4}
	m := DefaultModel{}
	uniform := Signals{Admitted: 100, HomeShare: []float64{0.25, 0.25, 0.25, 0.25}, CrossPart: 15}
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	if m.Score(oltp.SharedNothing, uniform, env) <= m.Score(oltp.StreamingCC, uniform, env) {
		t.Fatal("shared-nothing must win a partitionable workload")
	}
	if m.Score(oltp.StreamingCC, skewed, env) <= m.Score(oltp.SharedNothing, skewed, env) {
		t.Fatal("streaming CC must win a fully skewed workload")
	}
	for _, s := range []Signals{uniform, skewed} {
		if m.Score(oltp.NaiveIntra, s, env) >= m.Score(oltp.PreciseIntra, s, env) {
			t.Fatal("naive intra must score below precise intra (§3.2)")
		}
	}
}

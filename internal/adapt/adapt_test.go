package adapt

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

// fakeCtx drives the controller without an engine.
type fakeCtx struct {
	now   sim.Time
	costs sim.CostModel
	sent  []*core.Event
}

func newFakeCtx() *fakeCtx { return &fakeCtx{costs: sim.DefaultCosts()} }

func (c *fakeCtx) Self() core.ACID                   { return 5 }
func (c *fakeCtx) Now() sim.Time                     { return c.now }
func (c *fakeCtx) Charge(sim.Time)                   {}
func (c *fakeCtx) Costs() *sim.CostModel             { return &c.costs }
func (c *fakeCtx) Topology() *core.Topology          { return nil }
func (c *fakeCtx) Offloaded(core.ACID) bool          { return false }
func (c *fakeCtx) SendData(core.ACID, *core.DataMsg) {}
func (c *fakeCtx) Send(dst core.ACID, ev *core.Event) {
	if dst == core.ClientAC {
		c.sent = append(c.sent, ev)
	}
}

func (c *fakeCtx) decisions() []*Decision {
	var out []*Decision
	for _, ev := range c.sent {
		if ev.Kind == core.EvAdapt {
			out = append(out, ev.Payload.(*Decision))
		}
	}
	return out
}

func testOptions(start oltp.Policy) Options {
	return Options{
		Start:      start,
		Candidates: []oltp.Policy{oltp.SharedNothing, oltp.StreamingCC},
		Env:        Env{Executors: 4, Warehouses: 4},
	}
}

// feed delivers a report with the given per-warehouse admissions,
// advancing the fake clock by more than one window bucket per report
// so every report passes the evaluation rate limit.
func feed(ctrl *Controller, ctx *fakeCtx, byHome []int64) {
	ctx.now += 30 * sim.Microsecond
	var admitted int64
	for _, n := range byHome {
		admitted += n
	}
	ctrl.OnEvent(ctx, nil, &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
		Src: 0, At: ctx.now, Admitted: admitted, Committed: admitted, ByHome: byHome,
	}})
}

func TestControllerSwitchesOnSkew(t *testing.T) {
	ctx := newFakeCtx()
	ctrl := NewController(testOptions(oltp.SharedNothing))
	// Uniform load: shared-nothing stays.
	for i := 0; i < 30; i++ {
		feed(ctrl, ctx, []int64{16, 16, 16, 16})
	}
	if len(ctx.decisions()) != 0 {
		t.Fatalf("controller switched on a uniform workload: %+v", ctx.decisions()[0])
	}
	// All traffic collapses onto warehouse 0: streaming CC must win.
	for i := 0; i < 30; i++ {
		feed(ctrl, ctx, []int64{64, 0, 0, 0})
	}
	ds := ctx.decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want exactly 1 (hysteresis)", len(ds))
	}
	if ds[0].From != oltp.SharedNothing || ds[0].To != oltp.StreamingCC {
		t.Fatalf("decision = %v -> %v", ds[0].From, ds[0].To)
	}
	if ctrl.Current() != oltp.StreamingCC {
		t.Fatalf("current = %v", ctrl.Current())
	}
	// And back once the load spreads out again.
	for i := 0; i < 60; i++ {
		feed(ctrl, ctx, []int64{16, 16, 16, 16})
	}
	ds = ctx.decisions()
	if len(ds) != 2 || ds[1].To != oltp.SharedNothing {
		t.Fatalf("expected the return switch, got %d decisions", len(ds))
	}
}

func TestControllerNeedsMinSample(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.MinSample = 1000
	ctrl := NewController(opts)
	for i := 0; i < 50; i++ {
		feed(ctrl, ctx, []int64{8, 0, 0, 0}) // fully skewed but tiny
	}
	if len(ctx.decisions()) != 0 {
		t.Fatal("controller acted below the minimum sample size")
	}
}

func TestControllerPatience(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.Patience = 5
	ctrl := NewController(opts)
	// Fewer skewed evaluations than Patience: no switch yet.
	for i := 0; i < 4; i++ {
		feed(ctrl, ctx, []int64{64, 0, 0, 0})
	}
	if len(ctx.decisions()) != 0 {
		t.Fatal("switched before patience ran out")
	}
	feed(ctrl, ctx, []int64{64, 0, 0, 0})
	if len(ctx.decisions()) != 1 {
		t.Fatalf("decisions = %d after patience satisfied", len(ctx.decisions()))
	}
}

func TestControllerGrowsOnQueries(t *testing.T) {
	ctx := newFakeCtx()
	opts := testOptions(oltp.SharedNothing)
	opts.Elastic = true
	ctrl := NewController(opts)
	for i := 0; i < 3; i++ {
		ctx.now += 10 * sim.Microsecond
		ctrl.OnEvent(ctx, nil, &core.Event{Kind: core.EvSignal, Payload: &oltp.Report{
			At: ctx.now, Queries: 2,
		}})
	}
	var grows int
	for _, d := range ctx.decisions() {
		if d.Grow {
			grows++
		}
	}
	if grows != 1 {
		t.Fatalf("grow decisions = %d, want exactly 1", grows)
	}
}

func TestSignalsDerivations(t *testing.T) {
	s := Signals{
		Admitted: 100, Aborted: 25, CrossPart: 15,
		HomeShare: []float64{0.25, 0.25, 0.25, 0.25},
	}
	if got := s.EffPartitions(); got < 3.99 || got > 4.01 {
		t.Fatalf("uniform EffPartitions = %v, want 4", got)
	}
	if got := s.TopShare(); got != 0.25 {
		t.Fatalf("TopShare = %v", got)
	}
	if got := s.CrossFrac(); got != 0.15 {
		t.Fatalf("CrossFrac = %v", got)
	}
	if got := s.AbortRate(); got != 0.2 {
		t.Fatalf("AbortRate = %v", got)
	}
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	if got := skewed.EffPartitions(); got != 1 {
		t.Fatalf("skewed EffPartitions = %v, want 1", got)
	}
	var empty Signals
	if empty.EffPartitions() != 0 || empty.AbortRate() != 0 || empty.CrossFrac() != 0 {
		t.Fatal("empty signals must not divide by zero")
	}
}

func TestDefaultModelRanking(t *testing.T) {
	env := Env{Executors: 4, Warehouses: 4}
	m := DefaultModel{}
	uniform := Signals{Admitted: 100, HomeShare: []float64{0.25, 0.25, 0.25, 0.25}, CrossPart: 15}
	skewed := Signals{Admitted: 100, HomeShare: []float64{1, 0, 0, 0}}
	if m.Score(oltp.SharedNothing, uniform, env) <= m.Score(oltp.StreamingCC, uniform, env) {
		t.Fatal("shared-nothing must win a partitionable workload")
	}
	if m.Score(oltp.StreamingCC, skewed, env) <= m.Score(oltp.SharedNothing, skewed, env) {
		t.Fatal("streaming CC must win a fully skewed workload")
	}
	for _, s := range []Signals{uniform, skewed} {
		if m.Score(oltp.NaiveIntra, s, env) >= m.Score(oltp.PreciseIntra, s, env) {
			t.Fatal("naive intra must score below precise intra (§3.2)")
		}
	}
}

// Package adapt closes the loop from observation to architecture
// change: the self-driving half the paper leaves as future work ("the
// system observes its workload and transitions itself", cf. §2.3's
// optimal-routing oracle and the evolutionary-data-systems vision).
//
// The adaptation controller is itself an AC behavior — architecture
// adaptation is just another event stream. Dispatching ACs flush
// windowed workload signals (per-warehouse admission counts,
// abort/conflict rates, cross-partition ratios) as EvSignal events
// toward the controller AC; the controller aggregates them into sliding
// windows, scores every candidate routing policy with a pluggable cost
// model, and — with hysteresis, so transient mixtures at phase
// boundaries don't cause flapping — emits an EvAdapt decision toward
// the client/harness, which owns injection and can therefore drain
// in-flight work and reroute without losing transactions. The same
// controller runs unchanged on the goroutine runtime (anydb.Config
// AutoAdapt) and the deterministic virtual-time runtime
// (internal/bench's adaptive series).
package adapt

import (
	"anydb/internal/sim"
)

// Env describes the cluster resources the cost model scores against.
type Env struct {
	// Executors is the number of partition-owner/executor ACs.
	Executors int
	// Warehouses is the number of storage partitions.
	Warehouses int
}

// Signals is one sliding-window snapshot of the workload, aggregated
// across every reporting AC.
type Signals struct {
	// Window is the trailing duration the snapshot covers.
	Window sim.Time
	// Admitted, Committed, Aborted count transactions in the window.
	Admitted  float64
	Committed float64
	Aborted   float64
	// CrossPart counts admitted transactions touching >1 warehouse.
	CrossPart float64
	// Queries counts analytical queries completed in the window.
	Queries float64
	// HomeShare is each warehouse's share of admissions (sums to 1
	// when Admitted > 0).
	HomeShare []float64
}

// AbortRate returns the aborted fraction of admitted+aborted work.
func (s Signals) AbortRate() float64 {
	total := s.Admitted + s.Aborted
	if total == 0 {
		return 0
	}
	return s.Aborted / total
}

// CrossFrac returns the cross-partition fraction of admissions.
func (s Signals) CrossFrac() float64 {
	if s.Admitted == 0 {
		return 0
	}
	return s.CrossPart / s.Admitted
}

// TopShare returns the hottest warehouse's admission share — 1/W when
// uniform, →1 under §3.2 skew.
func (s Signals) TopShare() float64 {
	top := 0.0
	for _, sh := range s.HomeShare {
		if sh > top {
			top = sh
		}
	}
	return top
}

// EffPartitions returns the effective number of active partitions: the
// inverse Herfindahl index of the admission shares. A uniform load over
// W warehouses yields W; full skew yields 1. This is the parallelism a
// physically-aggregated (shared-nothing) routing can actually exploit.
func (s Signals) EffPartitions() float64 {
	var hhi float64
	for _, sh := range s.HomeShare {
		hhi += sh * sh
	}
	if hhi == 0 {
		return 0
	}
	return 1 / hhi
}

package adapt

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

// Decision is the payload of core.EvAdapt: one architecture change the
// controller wants applied. The receiver (anydb.Cluster or the bench
// harness) drains in-flight work, calls Dispatcher.SetConfig with the
// new policy's routes, and — when Grow is set — adds a server; when
// Move is set it performs a live partition-ownership handoff instead.
type Decision struct {
	At       sim.Time
	From, To oltp.Policy
	// Grow asks for one extra server (elasticity, §5): analytical load
	// appeared and should land on fresh compute instead of the OLTP
	// ACs.
	Grow bool
	// Move asks for an elastic repartitioning step: migrate one
	// warehouse to another owner (nil for policy/grow decisions). In an
	// architecture-less system placement is just routing, so this rides
	// the same decision stream as policy switches.
	Move *Move
	// Probe marks switches made to measure an unexplored policy (and
	// the return switch at probe end) rather than because the model
	// already preferred the target.
	Probe bool
	// Regret is the measured model's cumulative normalized regret at
	// emit time (0 without a MeasuredModel) — the trace that shows the
	// self-driving loop converging.
	Regret float64
	// Reason summarizes the signals behind the decision.
	Reason string
	// Scores holds the cost-model score per candidate policy.
	Scores map[oltp.Policy]float64
}

// Move is the rebalance half of a Decision: migrate one warehouse to
// another owner slot. Owner slots index the receiver's owner-candidate
// list (Options.OwnerIdx speaks the same indexing); the receiver maps
// the slot to a concrete AC. FromOwner is informational.
type Move struct {
	Warehouse          int
	FromOwner, ToOwner int
}

// Options tunes the controller. Zero fields take defaults sized for the
// virtual-time runtime; the real runtime passes a wider window.
type Options struct {
	// Start is the policy the cluster is currently running.
	Start oltp.Policy
	// Candidates are the policies the controller may choose between.
	// Default: all four.
	Candidates []oltp.Policy
	// Model scores candidates; default DefaultModel.
	Model CostModel
	// Env describes the cluster.
	Env Env
	// WindowSpan is the sliding-window length (default 200µs virtual).
	WindowSpan sim.Time
	// Buckets is the window resolution (default 8).
	Buckets int
	// MinSample is the minimum admissions in a window before the
	// controller trusts it (default 48).
	MinSample float64
	// Margin is the score advantage a candidate needs over the current
	// policy (default 1.2 = 20% better) — hysteresis against flapping.
	Margin float64
	// Patience is how many consecutive evaluations must agree before
	// switching (default 3) — more hysteresis.
	Patience int
	// MinDwell is the minimum time between switches (default 2×span).
	MinDwell sim.Time
	// Elastic lets the controller request server growth when
	// analytical queries appear.
	Elastic bool

	// Rebalance extends the decision space beyond policy choice to
	// data placement: when the admission load carried by one owner
	// exceeds MoveSkew× its fair share (with the same patience/dwell
	// hysteresis as switches), the controller emits a Move decision
	// relocating the warehouse whose migration best levels the load.
	// Requires OwnerIdx and NumOwners.
	Rebalance bool
	// OwnerIdx maps a warehouse to the owner slot currently holding it
	// (an index into the receiver's owner-candidate list). It runs on
	// the controller's AC goroutine and must be safe to call there
	// (the cluster backs it with lock-free topology snapshots). A
	// negative return means "in flux, skip this round".
	OwnerIdx func(warehouse int) int
	// NumOwners returns the current owner-candidate count; it grows
	// when elastic servers join the placement pool.
	NumOwners func() int
	// MoveSkew is the overload trigger: hottest owner's admission
	// share vs the ideal 1/NumOwners (default 1.6 = 60% above fair).
	MoveSkew float64
	// MoveDwell is the minimum time between moves (default 4×span).
	MoveDwell sim.Time
	// MoveMinSample is the admission floor for placement decisions
	// (default 4×MinSample): a migration is costlier to get wrong than
	// a switch, and a sparse window — one dispatcher's report arriving
	// ahead of the others — must never read as skew.
	MoveMinSample float64
	// MovePatience is the consecutive-evaluation streak required
	// before a move (default 2×Patience).
	MovePatience int

	// ProbeEvery is how long the controller stays on one policy before
	// spending a probe on an unmeasured candidate (default 24×span);
	// ProbeSpan is the probe's length (default 3×span — one settle
	// window plus two measured ones). Probes only happen with a
	// MeasuredModel and >1 candidate.
	ProbeEvery sim.Time
	ProbeSpan  sim.Time

	// EvalEvery additionally evaluates after this many reports even
	// inside the time-based rate limit (0 = time-based only). The
	// goroutine runtime needs it: its mailbox delivers reports in
	// batch bursts whose processing takes microseconds, so a purely
	// time-gated evaluation fires on a burst's first report — against a
	// window the rest of the burst has not reached yet — and the full
	// picture expires before the next burst. Counting reports makes
	// evaluations happen mid-burst, when the window holds every
	// dispatcher's view. The virtual-time runtime delivers reports
	// spread in time and keeps this off.
	EvalEvery int
}

func (o Options) withDefaults() Options {
	if len(o.Candidates) == 0 {
		o.Candidates = []oltp.Policy{
			oltp.SharedNothing, oltp.NaiveIntra, oltp.PreciseIntra, oltp.StreamingCC,
		}
	}
	if o.Model == nil {
		o.Model = DefaultModel{}
	}
	if o.WindowSpan == 0 {
		o.WindowSpan = 200 * sim.Microsecond
	}
	if o.Buckets == 0 {
		o.Buckets = 8
	}
	if o.MinSample == 0 {
		o.MinSample = 48
	}
	if o.Margin == 0 {
		o.Margin = 1.2
	}
	if o.Patience == 0 {
		o.Patience = 3
	}
	if o.MinDwell == 0 {
		o.MinDwell = 2 * o.WindowSpan
	}
	if o.MoveSkew == 0 {
		o.MoveSkew = 1.6
	}
	if o.MoveDwell == 0 {
		o.MoveDwell = 4 * o.WindowSpan
	}
	if o.MoveMinSample == 0 {
		o.MoveMinSample = 4 * o.MinSample
	}
	if o.MovePatience == 0 {
		o.MovePatience = 2 * o.Patience
	}
	if o.ProbeEvery == 0 {
		o.ProbeEvery = 24 * o.WindowSpan
	}
	if o.ProbeSpan == 0 {
		o.ProbeSpan = 3 * o.WindowSpan
	}
	return o
}

// Controller is the adaptation controller AC behavior: it consumes
// EvSignal reports, maintains sliding windows of the workload signals,
// and emits EvAdapt decisions toward core.ClientAC. Register it for
// core.EvSignal on every AC (components stay generic); only the AC the
// telemetry sinks to will receive reports, so the state is effectively
// single-threaded on both runtimes.
type Controller struct {
	opt Options
	cur oltp.Policy

	admitted  *metrics.Window
	committed *metrics.Window
	aborted   *metrics.Window
	crossPart *metrics.Window
	queries   *metrics.Window
	byHome    []*metrics.Window

	candidate  oltp.Policy
	streak     int
	lastSwitch sim.Time
	lastEval   sim.Time
	evaluated  bool
	switched   bool
	grew       bool
	// reportsSinceEval drives the optional EvalEvery count trigger.
	reportsSinceEval int

	// Measurement state (nil/zero unless Options.Model is a
	// *MeasuredModel): observation cadence and the probe bracket.
	measured     *MeasuredModel
	observedOnce bool
	lastObserve  sim.Time
	probing      bool
	probeStart   sim.Time

	// Rebalance hysteresis (mirrors the switch hysteresis).
	moveCandidate int
	moveStreak    int
	lastMove      sim.Time
	moved         bool

	log []Decision
}

// NewController returns a controller observing from opts.Start.
func NewController(opts Options) *Controller {
	opts = opts.withDefaults()
	span, n := int64(opts.WindowSpan), opts.Buckets
	c := &Controller{
		opt: opts, cur: opts.Start,
		admitted:  metrics.NewWindow(span, n),
		committed: metrics.NewWindow(span, n),
		aborted:   metrics.NewWindow(span, n),
		crossPart: metrics.NewWindow(span, n),
		queries:   metrics.NewWindow(span, n),
	}
	w := opts.Env.Warehouses
	if w < 1 {
		w = 1
	}
	c.byHome = make([]*metrics.Window, w)
	for i := range c.byHome {
		c.byHome[i] = metrics.NewWindow(span, n)
	}
	if mm, ok := opts.Model.(*MeasuredModel); ok {
		c.measured = mm
	}
	return c
}

// Current returns the policy the controller believes is active.
func (c *Controller) Current() oltp.Policy { return c.cur }

// Log returns the decisions taken so far. Call only once the engine is
// quiesced (the log is appended on the controller AC's goroutine).
func (c *Controller) Log() []Decision { return c.log }

// OnEvent implements core.Behavior for core.EvSignal.
func (c *Controller) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	// The report's fields are folded into the windows below; neither the
	// envelope nor the payload is retained.
	defer core.FreeEvent(ev)
	r, ok := ev.Payload.(*oltp.Report)
	if !ok {
		panic("adapt: EvSignal payload must be *oltp.Report")
	}
	ctx.Charge(ctx.Costs().AckProcess)
	now := int64(ctx.Now())
	// A single-candidate controller (rebalance-only mode) does not own
	// the routing policy — manual SetPolicy is allowed around it. Track
	// the policy the dispatchers actually report running, so Move
	// decisions and measured-model observations are attributed to the
	// truth rather than the starting policy.
	if len(c.opt.Candidates) == 1 && r.Admitted > 0 && r.Policy != c.cur {
		c.cur = r.Policy
	}
	c.admitted.Add(now, float64(r.Admitted))
	c.committed.Add(now, float64(r.Committed))
	c.aborted.Add(now, float64(r.Aborted))
	c.crossPart.Add(now, float64(r.CrossPart))
	c.queries.Add(now, float64(r.Queries))
	for home, n := range r.ByHome {
		if home < len(c.byHome) && n > 0 {
			c.byHome[home].Add(now, float64(n))
		}
	}
	// The grow trigger is checked on every report, ahead of the rate
	// limit below: a single query completion may be the only
	// analytical signal for a long time, and skipping its report could
	// let it slide out of the window before the next evaluation.
	if c.opt.Elastic && !c.grew && r.Queries > 0 {
		c.grew = true
		c.emit(ctx, Decision{
			At: sim.Time(now), From: c.cur, To: c.cur, Grow: true,
			Reason: fmt.Sprintf("queries=%d in window: grow a server for analytics", r.Queries),
		})
	}
	// Evaluation sums every window (O(warehouses × buckets)); reports
	// can arrive much faster than the windows change, and the sink AC
	// may sit on a hot path (the sequencer under streaming CC). Rate-
	// limit to one evaluation per bucket width — decisions lag at most
	// one bucket, which hysteresis already absorbs. EvalEvery, when
	// set, also triggers on report count so burst-delivered reports
	// (goroutine runtime) are evaluated while still in the window.
	c.reportsSinceEval++
	width := c.opt.WindowSpan / sim.Time(c.opt.Buckets)
	if c.evaluated && sim.Time(now)-c.lastEval < width &&
		(c.opt.EvalEvery == 0 || c.reportsSinceEval < c.opt.EvalEvery) {
		return
	}
	c.evaluated = true
	c.lastEval = sim.Time(now)
	c.reportsSinceEval = 0
	c.evaluate(ctx, sim.Time(now))
}

// Snapshot assembles the current sliding-window signals.
func (c *Controller) Snapshot(now sim.Time) Signals {
	t := int64(now)
	s := Signals{
		Window:    c.opt.WindowSpan,
		Admitted:  c.admitted.Sum(t),
		Committed: c.committed.Sum(t),
		Aborted:   c.aborted.Sum(t),
		CrossPart: c.crossPart.Sum(t),
		Queries:   c.queries.Sum(t),
	}
	if s.Admitted > 0 {
		s.HomeShare = make([]float64, len(c.byHome))
		for i, w := range c.byHome {
			s.HomeShare[i] = w.Sum(t) / s.Admitted
		}
	}
	return s
}

// evaluate scores the candidates against the current window and emits a
// decision once hysteresis is satisfied. With a MeasuredModel it also
// records realized throughput into the model, brackets switches with
// probe phases, and — with Options.Rebalance — weighs data-placement
// moves alongside policy choice.
func (c *Controller) evaluate(ctx core.Context, now sim.Time) {
	s := c.Snapshot(now)
	if s.Admitted < c.opt.MinSample {
		return
	}
	c.observe(now, s)
	if !c.evaluatePolicy(ctx, now, s) {
		c.evaluateRebalance(ctx, now, s)
	}
}

// observe feeds one realized-throughput measurement to the measured
// model: the commit rate of the trailing window, attributed to the
// running policy. A full window after any switch — or any rebalance
// move, whose partition drain dips throughput just like a routing
// change (placement IS routing) — is blacked out so a rate is never
// attributed across either, and observations are spaced half a window
// apart so overlapping windows don't overcount.
func (c *Controller) observe(now sim.Time, s Signals) {
	if c.measured == nil {
		return
	}
	if c.switched && now-c.lastSwitch < c.opt.WindowSpan {
		return
	}
	if c.moved && now-c.lastMove < c.opt.WindowSpan {
		return
	}
	if c.observedOnce && now-c.lastObserve < c.opt.WindowSpan/2 {
		return
	}
	c.observedOnce = true
	c.lastObserve = now
	rate := s.Committed * 1e9 / float64(c.opt.WindowSpan)
	c.measured.Observe(c.cur, s, rate, c.opt.Env)
}

// scoreCandidates scores every candidate against the current window,
// returning the score table and the best entry — the one scoring pass
// both normal evaluation and probe exits decide from.
func (c *Controller) scoreCandidates(s Signals) (scores map[oltp.Policy]float64, best oltp.Policy, bestScore float64) {
	scores = make(map[oltp.Policy]float64, len(c.opt.Candidates))
	best, bestScore = c.cur, 0.0
	for _, p := range c.opt.Candidates {
		sc := c.opt.Model.Score(p, s, c.opt.Env)
		scores[p] = sc
		if sc > bestScore {
			best, bestScore = p, sc
		}
	}
	return scores, best, bestScore
}

// evaluatePolicy runs the switch half of the decision space and reports
// whether it emitted a decision this round.
func (c *Controller) evaluatePolicy(ctx core.Context, now sim.Time, s Signals) bool {
	if c.probing {
		if now-c.probeStart < c.opt.ProbeSpan {
			return false
		}
		return c.endProbe(ctx, now, s)
	}
	scores, best, bestScore := c.scoreCandidates(s)
	curScore, ok := scores[c.cur]
	if !ok {
		curScore = c.opt.Model.Score(c.cur, s, c.opt.Env)
	}
	if best == c.cur || bestScore < c.opt.Margin*curScore {
		c.streak = 0
		return c.maybeProbe(ctx, now, s)
	}
	if best != c.candidate {
		c.candidate = best
		c.streak = 0
	}
	c.streak++
	if c.streak < c.opt.Patience {
		return false
	}
	if c.switched && now-c.lastSwitch < c.opt.MinDwell {
		return false
	}
	c.streak = 0
	d := Decision{
		At: now, From: c.cur, To: best, Scores: scores,
		Reason: fmt.Sprintf("skew=%.2f effparts=%.1f cross=%.2f abort=%.2f: %v %.2f > %v %.2f",
			s.TopShare(), s.EffPartitions(), s.CrossFrac(), s.AbortRate(),
			best, bestScore, c.cur, curScore),
	}
	c.cur = best
	c.lastSwitch = now
	c.switched = true
	c.emit(ctx, d)
	return true
}

// maybeProbe spends a short measurement phase on a candidate the model
// has never observed under the current workload class — the exploration
// half of the measured loop. The controller must itself be measured
// (its own arm sampled) and stable for ProbeEvery first, so probes cost
// throughput only when the loop has settled.
func (c *Controller) maybeProbe(ctx core.Context, now sim.Time, s Signals) bool {
	m := c.measured
	if m == nil || len(c.opt.Candidates) < 2 {
		return false
	}
	if now-c.lastSwitch < c.opt.ProbeEvery || !m.Sampled(c.cur, s) {
		return false
	}
	for _, p := range c.opt.Candidates {
		if p == c.cur || m.Sampled(p, s) {
			continue
		}
		d := Decision{
			At: now, From: c.cur, To: p, Probe: true,
			Reason: fmt.Sprintf("probe: no measurement for %v under this workload class", p),
		}
		c.probing, c.probeStart = true, now
		c.cur = p
		c.lastSwitch = now
		c.switched = true
		c.emit(ctx, d)
		return true
	}
	return false
}

// endProbe closes a probe bracket: with the probed arm now measured,
// rescore every candidate and land on the best — back where the probe
// started if the probe lost, staying if it won. The return switch
// bypasses patience (the probe was the evidence-gathering).
func (c *Controller) endProbe(ctx core.Context, now sim.Time, s Signals) bool {
	c.probing = false
	scores, best, bestScore := c.scoreCandidates(s)
	if best == c.cur {
		return false // the probed policy won; stay on it
	}
	d := Decision{
		At: now, From: c.cur, To: best, Scores: scores, Probe: true,
		Reason: fmt.Sprintf("probe of %v done: %v scores %.2f > %.2f", c.cur, best, bestScore, scores[c.cur]),
	}
	c.cur = best
	c.lastSwitch = now
	c.switched = true
	c.emit(ctx, d)
	return true
}

// evaluateRebalance is the placement half of the decision space: when
// one owner carries far more than its fair share of admissions, emit a
// Move relocating the warehouse whose migration levels the load best.
// Placement changes ride the same hysteresis (patience + dwell) as
// policy switches, so transient spikes never trigger a handoff.
func (c *Controller) evaluateRebalance(ctx core.Context, now sim.Time, s Signals) {
	o := &c.opt
	if !o.Rebalance || o.OwnerIdx == nil || o.NumOwners == nil || len(s.HomeShare) == 0 {
		return
	}
	if s.Admitted < o.MoveMinSample {
		return
	}
	n := o.NumOwners()
	if n < 2 {
		return
	}
	// Quantize shares to 1/64 before any comparison: measured shares
	// jitter a little every window, and the hysteresis streak only
	// works if near-ties resolve to the SAME owner and warehouse each
	// round (first index wins). Real skew dwarfs the quantum.
	const quantum = 1.0 / 64
	quant := func(v float64) float64 { return float64(int(v/quantum+0.5)) * quantum }
	loads := make([]float64, n)
	owner := make([]int, len(s.HomeShare))
	share := make([]float64, len(s.HomeShare))
	for w, sh := range s.HomeShare {
		oi := o.OwnerIdx(w)
		if oi < 0 || oi >= n {
			return // topology in flux; retry next round
		}
		owner[w] = oi
		share[w] = quant(sh)
		loads[oi] += sh
	}
	for i := range loads {
		loads[i] = quant(loads[i])
	}
	hi, lo := 0, 0
	for i, l := range loads {
		if l > loads[hi] {
			hi = i
		}
		if l < loads[lo] {
			lo = i
		}
	}
	ideal := 1.0 / float64(n)
	if loads[hi] < o.MoveSkew*ideal {
		c.moveStreak = 0
		return
	}
	// Pick the warehouse whose move to the coolest owner minimizes the
	// resulting hotter of the two. Moving an owner's sole contributor
	// never improves the max, so a single fully-hot warehouse (the pure
	// §3.2 skew that only a policy switch can address) stays put.
	bestW, bestMax := -1, loads[hi]
	for w, sh := range share {
		if owner[w] != hi || sh <= 0 {
			continue
		}
		newMax := loads[hi] - sh
		if m := loads[lo] + sh; m > newMax {
			newMax = m
		}
		if newMax < bestMax-quantum/2 {
			bestMax, bestW = newMax, w
		}
	}
	if bestW < 0 || bestMax > 0.9*loads[hi] {
		c.moveStreak = 0
		return
	}
	if bestW != c.moveCandidate {
		c.moveCandidate = bestW
		c.moveStreak = 0
	}
	c.moveStreak++
	if c.moveStreak < o.MovePatience {
		return
	}
	if c.moved && now-c.lastMove < o.MoveDwell {
		return
	}
	c.moveStreak = 0
	c.lastMove, c.moved = now, true
	c.emit(ctx, Decision{
		At: now, From: c.cur, To: c.cur,
		Move: &Move{Warehouse: bestW, FromOwner: hi, ToOwner: lo},
		Reason: fmt.Sprintf("owner %d carries %.0f%% of admissions (fair %.0f%%): move warehouse %d to owner %d",
			hi, loads[hi]*100, ideal*100, bestW, lo),
	})
}

func (c *Controller) emit(ctx core.Context, d Decision) {
	if c.measured != nil {
		d.Regret = c.measured.Regret()
	}
	c.log = append(c.log, d)
	ev := core.GetEvent()
	ev.Kind, ev.Payload = core.EvAdapt, &d
	ctx.Send(core.ClientAC, ev)
}

package adapt

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
)

// Decision is the payload of core.EvAdapt: one architecture change the
// controller wants applied. The receiver (anydb.Cluster or the bench
// harness) drains in-flight work, calls Dispatcher.SetConfig with the
// new policy's routes, and — when Grow is set — adds a server.
type Decision struct {
	At       sim.Time
	From, To oltp.Policy
	// Grow asks for one extra server (elasticity, §5): analytical load
	// appeared and should land on fresh compute instead of the OLTP
	// ACs.
	Grow bool
	// Reason summarizes the signals behind the decision.
	Reason string
	// Scores holds the cost-model score per candidate policy.
	Scores map[oltp.Policy]float64
}

// Options tunes the controller. Zero fields take defaults sized for the
// virtual-time runtime; the real runtime passes a wider window.
type Options struct {
	// Start is the policy the cluster is currently running.
	Start oltp.Policy
	// Candidates are the policies the controller may choose between.
	// Default: all four.
	Candidates []oltp.Policy
	// Model scores candidates; default DefaultModel.
	Model CostModel
	// Env describes the cluster.
	Env Env
	// WindowSpan is the sliding-window length (default 200µs virtual).
	WindowSpan sim.Time
	// Buckets is the window resolution (default 8).
	Buckets int
	// MinSample is the minimum admissions in a window before the
	// controller trusts it (default 48).
	MinSample float64
	// Margin is the score advantage a candidate needs over the current
	// policy (default 1.2 = 20% better) — hysteresis against flapping.
	Margin float64
	// Patience is how many consecutive evaluations must agree before
	// switching (default 3) — more hysteresis.
	Patience int
	// MinDwell is the minimum time between switches (default 2×span).
	MinDwell sim.Time
	// Elastic lets the controller request server growth when
	// analytical queries appear.
	Elastic bool
}

func (o Options) withDefaults() Options {
	if len(o.Candidates) == 0 {
		o.Candidates = []oltp.Policy{
			oltp.SharedNothing, oltp.NaiveIntra, oltp.PreciseIntra, oltp.StreamingCC,
		}
	}
	if o.Model == nil {
		o.Model = DefaultModel{}
	}
	if o.WindowSpan == 0 {
		o.WindowSpan = 200 * sim.Microsecond
	}
	if o.Buckets == 0 {
		o.Buckets = 8
	}
	if o.MinSample == 0 {
		o.MinSample = 48
	}
	if o.Margin == 0 {
		o.Margin = 1.2
	}
	if o.Patience == 0 {
		o.Patience = 3
	}
	if o.MinDwell == 0 {
		o.MinDwell = 2 * o.WindowSpan
	}
	return o
}

// Controller is the adaptation controller AC behavior: it consumes
// EvSignal reports, maintains sliding windows of the workload signals,
// and emits EvAdapt decisions toward core.ClientAC. Register it for
// core.EvSignal on every AC (components stay generic); only the AC the
// telemetry sinks to will receive reports, so the state is effectively
// single-threaded on both runtimes.
type Controller struct {
	opt Options
	cur oltp.Policy

	admitted  *metrics.Window
	committed *metrics.Window
	aborted   *metrics.Window
	crossPart *metrics.Window
	queries   *metrics.Window
	byHome    []*metrics.Window

	candidate  oltp.Policy
	streak     int
	lastSwitch sim.Time
	lastEval   sim.Time
	evaluated  bool
	switched   bool
	grew       bool

	log []Decision
}

// NewController returns a controller observing from opts.Start.
func NewController(opts Options) *Controller {
	opts = opts.withDefaults()
	span, n := int64(opts.WindowSpan), opts.Buckets
	c := &Controller{
		opt: opts, cur: opts.Start,
		admitted:  metrics.NewWindow(span, n),
		committed: metrics.NewWindow(span, n),
		aborted:   metrics.NewWindow(span, n),
		crossPart: metrics.NewWindow(span, n),
		queries:   metrics.NewWindow(span, n),
	}
	w := opts.Env.Warehouses
	if w < 1 {
		w = 1
	}
	c.byHome = make([]*metrics.Window, w)
	for i := range c.byHome {
		c.byHome[i] = metrics.NewWindow(span, n)
	}
	return c
}

// Current returns the policy the controller believes is active.
func (c *Controller) Current() oltp.Policy { return c.cur }

// Log returns the decisions taken so far. Call only once the engine is
// quiesced (the log is appended on the controller AC's goroutine).
func (c *Controller) Log() []Decision { return c.log }

// OnEvent implements core.Behavior for core.EvSignal.
func (c *Controller) OnEvent(ctx core.Context, _ *core.AC, ev *core.Event) {
	r, ok := ev.Payload.(*oltp.Report)
	if !ok {
		panic("adapt: EvSignal payload must be *oltp.Report")
	}
	ctx.Charge(ctx.Costs().AckProcess)
	now := int64(ctx.Now())
	c.admitted.Add(now, float64(r.Admitted))
	c.committed.Add(now, float64(r.Committed))
	c.aborted.Add(now, float64(r.Aborted))
	c.crossPart.Add(now, float64(r.CrossPart))
	c.queries.Add(now, float64(r.Queries))
	for home, n := range r.ByHome {
		if home < len(c.byHome) && n > 0 {
			c.byHome[home].Add(now, float64(n))
		}
	}
	// The grow trigger is checked on every report, ahead of the rate
	// limit below: a single query completion may be the only
	// analytical signal for a long time, and skipping its report could
	// let it slide out of the window before the next evaluation.
	if c.opt.Elastic && !c.grew && r.Queries > 0 {
		c.grew = true
		c.emit(ctx, Decision{
			At: sim.Time(now), From: c.cur, To: c.cur, Grow: true,
			Reason: fmt.Sprintf("queries=%d in window: grow a server for analytics", r.Queries),
		})
	}
	// Evaluation sums every window (O(warehouses × buckets)); reports
	// can arrive much faster than the windows change, and the sink AC
	// may sit on a hot path (the sequencer under streaming CC). Rate-
	// limit to one evaluation per bucket width — decisions lag at most
	// one bucket, which hysteresis already absorbs.
	width := c.opt.WindowSpan / sim.Time(c.opt.Buckets)
	if c.evaluated && sim.Time(now)-c.lastEval < width {
		return
	}
	c.evaluated = true
	c.lastEval = sim.Time(now)
	c.evaluate(ctx, sim.Time(now))
}

// Snapshot assembles the current sliding-window signals.
func (c *Controller) Snapshot(now sim.Time) Signals {
	t := int64(now)
	s := Signals{
		Window:    c.opt.WindowSpan,
		Admitted:  c.admitted.Sum(t),
		Committed: c.committed.Sum(t),
		Aborted:   c.aborted.Sum(t),
		CrossPart: c.crossPart.Sum(t),
		Queries:   c.queries.Sum(t),
	}
	if s.Admitted > 0 {
		s.HomeShare = make([]float64, len(c.byHome))
		for i, w := range c.byHome {
			s.HomeShare[i] = w.Sum(t) / s.Admitted
		}
	}
	return s
}

// evaluate scores the candidates against the current window and emits a
// decision once hysteresis is satisfied.
func (c *Controller) evaluate(ctx core.Context, now sim.Time) {
	s := c.Snapshot(now)
	if s.Admitted < c.opt.MinSample {
		return
	}
	scores := make(map[oltp.Policy]float64, len(c.opt.Candidates))
	best, bestScore := c.cur, 0.0
	for _, p := range c.opt.Candidates {
		sc := c.opt.Model.Score(p, s, c.opt.Env)
		scores[p] = sc
		if sc > bestScore {
			best, bestScore = p, sc
		}
	}
	curScore, ok := scores[c.cur]
	if !ok {
		curScore = c.opt.Model.Score(c.cur, s, c.opt.Env)
	}
	if best == c.cur || bestScore < c.opt.Margin*curScore {
		c.streak = 0
		return
	}
	if best != c.candidate {
		c.candidate = best
		c.streak = 0
	}
	c.streak++
	if c.streak < c.opt.Patience {
		return
	}
	if c.switched && now-c.lastSwitch < c.opt.MinDwell {
		return
	}
	c.streak = 0
	d := Decision{
		At: now, From: c.cur, To: best, Scores: scores,
		Reason: fmt.Sprintf("skew=%.2f effparts=%.1f cross=%.2f abort=%.2f: %v %.2f > %v %.2f",
			s.TopShare(), s.EffPartitions(), s.CrossFrac(), s.AbortRate(),
			best, bestScore, c.cur, curScore),
	}
	c.cur = best
	c.lastSwitch = now
	c.switched = true
	c.emit(ctx, d)
}

func (c *Controller) emit(ctx core.Context, d Decision) {
	c.log = append(c.log, d)
	ctx.Send(core.ClientAC, &core.Event{Kind: core.EvAdapt, Payload: &d})
}

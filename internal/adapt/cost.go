package adapt

import (
	"anydb/internal/oltp"
)

// CostModel scores a routing policy against a window of workload
// signals; higher is better. Scores are relative throughput estimates
// (units cancel in comparisons), so a model only has to rank policies
// correctly, not predict absolute rates.
type CostModel interface {
	Score(p oltp.Policy, s Signals, env Env) float64
}

// DefaultModel estimates each policy's exploitable parallelism times an
// efficiency factor, mirroring the §3 analysis:
//
//   - SharedNothing wins exactly the inter-transaction parallelism the
//     partitioning exposes: the effective partition count (inverse
//     Herfindahl of admission shares), capped by the executor count,
//     discounted by cross-partition transactions (extra hops + acks).
//   - StreamingCC pipelines conflicting transactions over the
//     record-class ACs regardless of skew, paying sequencer overhead —
//     a roughly constant multiple of one core.
//   - PreciseIntra is the two-AC balanced pipeline of Figure 4d.
//   - NaiveIntra serializes per home warehouse at admission and pays
//     per-operation event overhead — per §3.2 it barely beats one core.
//
// The constants are calibrated against the Figure 5 reproduction (see
// internal/bench: skewed-phase anchors streaming 1.7 / precise 1.2 /
// naive 0.8 M tx/s against shared-nothing's partitionable 2.0).
type DefaultModel struct{}

// Score implements CostModel.
func (DefaultModel) Score(p oltp.Policy, s Signals, env Env) float64 {
	execs := float64(env.Executors)
	if execs == 0 {
		execs = 1
	}
	switch p {
	case oltp.SharedNothing:
		par := s.EffPartitions()
		if par > execs {
			par = execs
		}
		return par * (1 - 0.3*s.CrossFrac())
	case oltp.StreamingCC:
		// Class pipeline over up to 4 ACs plus off-path commit
		// coordination; ~0.65 efficiency per stage covers the
		// sequencer hop.
		return 0.65 * min4(execs)
	case oltp.PreciseIntra:
		// Two balanced sub-sequences, no sequencer stamping.
		return 0.8 * 2
	default: // NaiveIntra
		// Admission barrier + per-event overhead: about one core.
		return 0.25 * min4(execs)
	}
}

func min4(v float64) float64 {
	if v > 4 {
		return 4
	}
	return v
}

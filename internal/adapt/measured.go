package adapt

import (
	"anydb/internal/oltp"
)

// MeasuredModel replaces hand-calibrated cost-model constants with
// measurement — the evolutionary-data-systems refactor the ROADMAP asks
// for. It keeps a prior (normally DefaultModel) for policies it has
// never observed and blends toward measured throughput as evidence
// accumulates, so the controller behaves exactly like the prior on a
// cold start and like a multi-armed bandit once warm.
//
// An arm is a (policy, workload class) pair: realized commit rates are
// recorded per arm, where the workload class coarsely quantizes the
// signal window (skew and cross-partition buckets). Classing is what
// lets a measurement generalize: the rate observed under "skewed,
// local" traffic predicts other skewed, local windows, not uniform
// ones.
//
// Prior scores are unit-less relative throughput estimates; measured
// rates are transactions per second. The two are made comparable by a
// learned calibration: unitRate tracks the realized rate per unit of
// prior score for whatever policy is running, so a measured arm scores
// as rate/unitRate — in the prior's units. Ranking therefore never
// mixes incompatible scales.
//
// The model also tracks regret: for every observation window it
// accumulates the normalized shortfall of the realized rate against the
// best rate ever seen for the same workload class. A regret trace that
// flattens means the controller has converged on the best-known arm for
// each phase; the public API exposes it through AdaptationLog.
//
// MeasuredModel is not safe for concurrent use: like the controller's
// windows it lives on the adaptation-controller AC and is only touched
// from its event handler. Readers (AdaptationLog) get values snapshotted
// into the emitted Decision instead.
type MeasuredModel struct {
	// Prior scores unmeasured arms; default DefaultModel.
	Prior CostModel
	// Alpha is the EWMA step for arm rates (default 0.3).
	Alpha float64
	// Blend is the pseudo-count governing prior/measured mixing: an arm
	// with n samples is weighted n/(n+Blend) (default 2).
	Blend float64

	arms map[arm]*armStat
	best map[sigClass]float64 // best rate ever seen per workload class

	unitRate float64 // realized rate per unit of prior score
	unitN    float64

	regret  float64
	samples int
}

// sigClass is the coarse workload signature measurements generalize
// over: quantized skew (top-warehouse admission share) and
// cross-partition fraction.
type sigClass struct {
	skew  uint8
	cross uint8
}

// arm is one measured (policy, workload class) cell.
type arm struct {
	pol oltp.Policy
	sig sigClass
}

type armStat struct {
	rate float64 // EWMA of realized commit rate (txn/s)
	n    float64 // sample count (saturating weight input)
}

// NewMeasuredModel returns a model with the given prior (nil means
// DefaultModel).
func NewMeasuredModel(prior CostModel) *MeasuredModel {
	if prior == nil {
		prior = DefaultModel{}
	}
	return &MeasuredModel{
		Prior: prior, Alpha: 0.3, Blend: 2,
		arms: make(map[arm]*armStat),
		best: make(map[sigClass]float64),
	}
}

// classify buckets a signal window into its workload class.
func classify(s Signals) sigClass {
	return sigClass{skew: bucket3(s.TopShare()), cross: bucket3(s.CrossFrac())}
}

// bucket3 quantizes a [0,1] fraction into low/mid/high.
func bucket3(f float64) uint8 {
	switch {
	case f < 0.3:
		return 0
	case f < 0.65:
		return 1
	default:
		return 2
	}
}

// Observe records one realized measurement: policy p ran against window
// s and committed at rate txn/s. The controller calls it once per
// settled window (never inside the blackout right after a switch, so a
// rate is always attributed to the policy that produced it).
func (m *MeasuredModel) Observe(p oltp.Policy, s Signals, rate float64, env Env) {
	if rate <= 0 {
		return
	}
	sig := classify(s)
	k := arm{pol: p, sig: sig}
	st := m.arms[k]
	if st == nil {
		st = &armStat{rate: rate}
		m.arms[k] = st
	} else {
		st.rate += m.Alpha * (rate - st.rate)
	}
	st.n++
	m.samples++

	// Calibrate the unit: how much realized rate one point of prior
	// score is worth right now.
	if ps := m.Prior.Score(p, s, env); ps > 0 {
		u := rate / ps
		if m.unitN == 0 {
			m.unitRate = u
		} else {
			m.unitRate += m.Alpha * (u - m.unitRate)
		}
		m.unitN++
	}

	// Regret against the best arm ever seen for this workload class.
	if best := m.best[sig]; best > rate {
		m.regret += (best - rate) / best
	} else {
		m.best[sig] = rate
	}
}

// Score implements CostModel: the prior blended toward the measured
// rate (converted into prior units via the learned calibration) as the
// arm accumulates samples.
func (m *MeasuredModel) Score(p oltp.Policy, s Signals, env Env) float64 {
	prior := m.Prior.Score(p, s, env)
	st := m.arms[arm{pol: p, sig: classify(s)}]
	if st == nil || st.n == 0 || m.unitRate <= 0 {
		return prior
	}
	w := st.n / (st.n + m.Blend)
	return (1-w)*prior + w*(st.rate/m.unitRate)
}

// Sampled reports whether the model has at least one measurement for
// policy p under the workload class of s — the probe planner uses it to
// find unexplored arms.
func (m *MeasuredModel) Sampled(p oltp.Policy, s Signals) bool {
	st := m.arms[arm{pol: p, sig: classify(s)}]
	return st != nil && st.n > 0
}

// Regret returns the cumulative normalized regret: the summed relative
// shortfall of realized throughput against the best-seen arm per
// workload class. Flat means converged.
func (m *MeasuredModel) Regret() float64 { return m.regret }

// Samples returns the total number of observations recorded.
func (m *MeasuredModel) Samples() int { return m.samples }

// MeasuredRate returns the model's current rate estimate for policy p
// under the workload class of s, and whether the arm has data.
func (m *MeasuredModel) MeasuredRate(p oltp.Policy, s Signals) (float64, bool) {
	st := m.arms[arm{pol: p, sig: classify(s)}]
	if st == nil || st.n == 0 {
		return 0, false
	}
	return st.rate, true
}

// Package olap implements AnyDB's analytical operators as AnyComponent
// behaviors: chunked filtered scans that actively push columnar batches
// into data streams, hash joins whose build and probe sides are separate
// streams (so either can be beamed ahead of time, §4), and a counting
// aggregate. Operators are installed by EvInstallOp events; which AC they
// land on — co-located with storage (aggregated) or on another server
// (disaggregated) — is purely a routing decision.
package olap

import (
	"fmt"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
)

// PredKind selects a scan predicate.
type PredKind uint8

const (
	// PredNone passes every row.
	PredNone PredKind = iota
	// PredPrefix keeps rows whose string column starts with Prefix.
	PredPrefix
	// PredGEInt keeps rows whose int column is >= MinI.
	PredGEInt
	// PredLTInt keeps rows whose int column is < MinI.
	PredLTInt
	// PredEqInt keeps rows whose int column equals MinI.
	PredEqInt
	// PredNeInt keeps rows whose int column differs from MinI.
	PredNeInt
	// PredEqStr keeps rows whose string column equals Str.
	PredEqStr
)

// Predicate is a single-column filter (the paper's query needs prefix and
// range predicates; richer trees live in the plan package).
type Predicate struct {
	Col    string
	Kind   PredKind
	Prefix string
	Str    string
	MinI   int64
}

// colIdx resolves the predicate's column against schema once (PredNone
// has no column and resolves to -1); evaluation then uses matchesAt so
// the per-row path never probes the name map.
func (p *Predicate) colIdx(schema *storage.Schema) int {
	if p.Kind == PredNone {
		return -1
	}
	return schema.MustCol(p.Col)
}

// Matches evaluates the predicate on a row of the given schema. Cold
// path — per-row evaluation resolves the column every call; scans
// resolve once with colIdx and use matchesAt.
func (p Predicate) Matches(schema *storage.Schema, row storage.Row) bool {
	return p.matchesAt(p.colIdx(schema), row)
}

// matchesAt evaluates the predicate against the pre-resolved column.
func (p *Predicate) matchesAt(col int, row storage.Row) bool {
	switch p.Kind {
	case PredNone:
		return true
	case PredPrefix:
		v := row[col].S
		return len(v) >= len(p.Prefix) && v[:len(p.Prefix)] == p.Prefix
	case PredGEInt:
		return row[col].I >= p.MinI
	case PredLTInt:
		return row[col].I < p.MinI
	case PredEqInt:
		return row[col].I == p.MinI
	case PredNeInt:
		return row[col].I != p.MinI
	case PredEqStr:
		return row[col].S == p.Str
	default:
		panic("olap: unknown predicate kind")
	}
}

// ScanSpec instructs an AC to scan one partition's table, filter,
// project, and push batches into Out toward To. The scan runs in chunks,
// re-enqueueing itself between chunks so OLTP events interleave (the
// non-blocking rule applied to long-running operators).
type ScanSpec struct {
	Query     core.QueryID
	Table     storage.TableID
	Part      int
	Filters   []Predicate // AND-composed
	Cols      []string
	Out       core.StreamID
	To        core.ACID
	Producers int // fan-in of Out (number of parallel scans feeding it)
	ChunkRows int
	BatchRows int

	cursor int32
	schema *storage.Schema
	batch  *storage.Batch
	cols   []int
	fcols  []int // Filters[i].Col resolved once against the schema
	rowBuf storage.Row
}

// DefaultChunkRows bounds rows scanned per event; DefaultBatchRows is the
// target batch granularity for the data stream.
const (
	DefaultChunkRows = 2048
	DefaultBatchRows = 1024
)

// JoinSpec instructs an AC to hash-join two incoming streams. The build
// side is consumed entirely first (NeedClosed semantics); probe batches
// stream through afterwards — any probe data beamed early waits staged at
// the AC.
type JoinSpec struct {
	Query    core.QueryID
	Build    core.StreamID
	BuildKey []string // join key columns in the build batch schema
	Probe    core.StreamID
	ProbeKey []string
	// Semi emits only matching probe rows (sufficient for the paper's
	// query); otherwise the concatenated row is produced.
	Semi      bool
	Out       core.StreamID
	To        core.ACID
	Producers int
	// Notify receives EvOpDone events at build completion and probe
	// completion (the harness's Figure 6 instrumentation).
	Notify core.ACID
	Label  string
}

// AggSpec counts rows of a stream and reports the result.
type AggSpec struct {
	Query core.QueryID
	In    core.StreamID
	// Notify receives the EvQueryDone event carrying *QueryResult.
	Notify core.ACID
}

// QueryResult is the payload of EvQueryDone.
type QueryResult struct {
	Query core.QueryID
	// Rows is the result-row count for SinkSpec queries; legacy
	// AggSpec sinks report the counted input rows here instead.
	Rows int64
	// Cols and Batches carry the result set of SinkSpec sinks: pooled
	// columnar batches, in order, whose consumer frees them (or hands
	// them to anydb.Rows, which frees as the caller iterates).
	Cols    []string
	Batches []*storage.Batch
	// Collected carries projected result rows for CollectSpec sinks
	// (capped at CollectCap; Truncated reports overflow).
	Collected []storage.Row
	Truncated bool
}

// CollectSpec gathers projected result rows of a stream and reports them
// (small results; the sink caps at CollectCap rows).
type CollectSpec struct {
	Query  core.QueryID
	In     core.StreamID
	Cols   []string
	Notify core.ACID
}

// CollectCap bounds collected result sets.
const CollectCap = 16384

// OpDone is the payload of EvOpDone.
type OpDone struct {
	Query core.QueryID
	Label string // e.g. "join1/build", "join1/probe"
}

// Worker is the AC behavior executing installed operators; register it
// for EvInstallOp on every AC. The shared map holds the AC's live
// shared-scan cursors (sharedscan.go); it is only ever touched by the
// owning AC's handler, so it needs no lock.
type Worker struct {
	DB *storage.Database

	shared map[sharedKey]*sharedScan
}

// OnEvent implements core.Behavior.
func (w *Worker) OnEvent(ctx core.Context, ac *core.AC, ev *core.Event) {
	switch spec := ev.Payload.(type) {
	case *ScanSpec:
		w.scanChunk(ctx, ac, ev, spec)
	case *SharedScanSpec:
		w.attachShared(ctx, ev, spec)
	case *sharedScan:
		spec.step(ctx, w)
	case *JoinSpec:
		newJoin(ctx, ac, spec)
		core.FreeEvent(ev)
	case *AggSpec:
		agg := &aggState{spec: spec}
		ac.Subscribe(ctx, spec.In, agg)
		core.FreeEvent(ev)
	case *CollectSpec:
		ac.Subscribe(ctx, spec.In, &collectState{spec: spec})
		core.FreeEvent(ev)
	case *SinkSpec:
		newSink(ctx, ac, spec)
		core.FreeEvent(ev)
	default:
		panic(fmt.Sprintf("olap: unknown operator spec %T", ev.Payload))
	}
}

// scanChunk advances a scan by one chunk and re-enqueues the event until
// the table is exhausted.
func (w *Worker) scanChunk(ctx core.Context, _ *core.AC, ev *core.Event, s *ScanSpec) {
	if s.schema == nil {
		t := w.DB.Partition(s.Part).TableByID(s.Table)
		s.schema = t.Schema
		s.cols = make([]int, len(s.Cols))
		outCols := make([]storage.Column, len(s.Cols))
		for i, c := range s.Cols {
			s.cols[i] = t.Schema.MustCol(c)
			outCols[i] = t.Schema.Cols[s.cols[i]]
		}
		s.fcols = make([]int, len(s.Filters))
		for i := range s.Filters {
			s.fcols[i] = s.Filters[i].colIdx(t.Schema)
		}
		s.batch = storage.GetBatch(storage.NewSchema(t.Schema.Name+"_scan", outCols...))
		s.rowBuf = make(storage.Row, len(s.cols))
		if s.ChunkRows == 0 {
			s.ChunkRows = DefaultChunkRows
		}
		if s.BatchRows == 0 {
			s.BatchRows = DefaultBatchRows
		}
	}
	t := w.DB.Partition(s.Part).TableByID(s.Table)
	costs := ctx.Costs()
	offloaded := ctx.Offloaded(s.To)
	next, done := t.ScanRange(s.cursor, s.ChunkRows, func(_ int32, row storage.Row) bool {
		ctx.Charge(costs.ScanRow)
		for i := range s.Filters {
			if !s.Filters[i].matchesAt(s.fcols[i], row) {
				return true
			}
		}
		// AppendRow copies, so one scratch row serves the whole scan.
		for i, c := range s.cols {
			s.rowBuf[i] = row[c]
		}
		s.batch.AppendRow(s.rowBuf)
		if !offloaded {
			// Shuffle partitioning runs on this core unless a DPI
			// flow carries the stream (§4's co-processor effect).
			ctx.Charge(costs.PartitionRow)
		}
		if s.batch.Len() >= s.BatchRows {
			w.flush(ctx, s, false)
		}
		return true
	})
	s.cursor = next
	if done {
		w.flush(ctx, s, true)
		// The scan is over; its continuation envelope dies here.
		core.FreeEvent(ev)
		return
	}
	// Yield: re-enqueue the continuation behind whatever else queued.
	ctx.Send(ctx.Self(), ev)
}

// flush emits the accumulated batch (if any) as one pooled data message.
// The scan's batch scratch is recycled, not reallocated: the consumer
// frees each emitted batch at its death point, so steady-state flushing
// allocates nothing.
func (w *Worker) flush(ctx core.Context, s *ScanSpec, last bool) {
	if s.batch.Len() == 0 && !last {
		return
	}
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = s.Out, s.Query, last, s.Producers
	if s.batch.Len() > 0 {
		msg.Batch = s.batch
		if last {
			s.batch = nil
		} else {
			s.batch = storage.GetBatch(msg.Batch.Schema)
		}
	} else {
		// Final flush with an empty scratch: the scan is done, the
		// scratch dies here.
		storage.FreeBatch(s.batch)
		s.batch = nil
	}
	ctx.SendData(s.To, msg)
}

// joinState is a two-phase hash join bound to one AC.
type joinState struct {
	spec  *JoinSpec
	ht    map[joinKey][]int32 // build key -> build row indexes (inner) or presence (semi)
	build []*storage.Batch
	built bool
	out   *storage.Batch
}

type joinKey struct {
	a, b, c int64
}

func keyOf(batch *storage.Batch, row int, cols []int) joinKey {
	var k joinKey
	for i, c := range cols {
		v := batch.Cols[c].Ints[row]
		switch i {
		case 0:
			k.a = v
		case 1:
			k.b = v
		default:
			k.c = v
		}
	}
	return k
}

func newJoin(ctx core.Context, ac *core.AC, spec *JoinSpec) {
	j := &joinState{spec: spec, ht: make(map[joinKey][]int32)}
	// Consume the build side first; staged (beamed) batches replay
	// immediately inside Subscribe.
	ac.Subscribe(ctx, spec.Build, (*joinBuildSink)(j))
}

// joinBuildSink and joinProbeSink give the two phases distinct OnData
// methods over the same state.
type joinBuildSink joinState

func (j *joinBuildSink) OnData(ctx core.Context, ac *core.AC, msg *core.DataMsg) {
	st := (*joinState)(j)
	costs := ctx.Costs()
	if msg.Batch != nil {
		buildCost := costs.HashBuildRow
		if msg.Prehashed {
			// DPI flows hash rows in flight (§4 co-processor).
			buildCost = buildCost * 3 / 4
		}
		cols := colIdx(msg.Batch.Schema, st.spec.BuildKey)
		bi := len(st.build)
		if !st.spec.Semi {
			// Inner joins materialize build rows at probe time, so the
			// batch must live until the probe side closes.
			st.build = append(st.build, msg.Batch)
		}
		for r := 0; r < msg.Batch.Len(); r++ {
			ctx.Charge(buildCost)
			k := keyOf(msg.Batch, r, cols)
			st.ht[k] = append(st.ht[k], int32(bi)<<16|int32(r))
		}
		if st.spec.Semi {
			// A semi join only ever consults key presence: the build
			// rows are dead as soon as they are hashed.
			storage.FreeBatch(msg.Batch)
		}
	}
	if msg.Last {
		st.built = true
		if st.spec.Notify != core.NoAC {
			done := core.GetEvent()
			done.Kind, done.Query = core.EvOpDone, st.spec.Query
			done.Payload = &OpDone{Query: st.spec.Query, Label: st.spec.Label + "/build"}
			ctx.Send(st.spec.Notify, done)
		}
		// Now attach the probe side; beamed probe data replays here.
		ac.Subscribe(ctx, st.spec.Probe, (*joinProbeSink)(j))
	}
}

type joinProbeSink joinState

func (j *joinProbeSink) OnData(ctx core.Context, ac *core.AC, msg *core.DataMsg) {
	st := (*joinState)(j)
	spec := st.spec
	costs := ctx.Costs()
	if msg.Batch != nil {
		probeCost := costs.HashProbeRow
		if msg.Prehashed {
			probeCost = probeCost * 3 / 4
		}
		cols := colIdx(msg.Batch.Schema, spec.ProbeKey)
		if st.out == nil {
			st.out = storage.GetBatch(outSchema(st, msg.Batch.Schema))
		}
		for r := 0; r < msg.Batch.Len(); r++ {
			ctx.Charge(probeCost)
			matches := st.ht[keyOf(msg.Batch, r, cols)]
			if len(matches) == 0 {
				continue
			}
			if spec.Semi {
				st.out.AppendRow(msg.Batch.Row(r))
			} else {
				for _, m := range matches {
					b := st.build[m>>16]
					row := append(b.Row(int(m&0xffff)), msg.Batch.Row(r)...)
					st.out.AppendRow(row)
				}
			}
			if st.out.Len() >= DefaultBatchRows {
				st.emit(ctx, false)
			}
		}
		// AppendRow/Row copy, so the probe batch dies here.
		storage.FreeBatch(msg.Batch)
	}
	if msg.Last {
		st.emit(ctx, true)
		// The join is over: release the build side (inner joins only —
		// semi builds were recycled as they were hashed) and the hash
		// table.
		for _, b := range st.build {
			storage.FreeBatch(b)
		}
		st.build, st.ht = nil, nil
		if spec.Notify != core.NoAC {
			done := core.GetEvent()
			done.Kind, done.Query = core.EvOpDone, spec.Query
			done.Payload = &OpDone{Query: spec.Query, Label: spec.Label + "/probe"}
			ctx.Send(spec.Notify, done)
		}
	}
}

// emit forwards the accumulated output batch (if any) as one pooled
// data message; the downstream consumer recycles both.
func (st *joinState) emit(ctx core.Context, last bool) {
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = st.spec.Out, st.spec.Query, last, st.spec.Producers
	if st.out != nil && st.out.Len() > 0 {
		msg.Batch = st.out
		if last {
			st.out = nil
		} else {
			st.out = storage.GetBatch(msg.Batch.Schema)
		}
	} else if last {
		storage.FreeBatch(st.out)
		st.out = nil
	}
	ctx.SendData(st.spec.To, msg)
}

func outSchema(st *joinState, probe *storage.Schema) *storage.Schema {
	if st.spec.Semi || len(st.build) == 0 {
		return probe
	}
	return storage.ConcatSchema("join_out", st.build[0].Schema, probe)
}

func colIdx(s *storage.Schema, names []string) []int {
	out := make([]int, len(names))
	for i, n := range names {
		out[i] = s.MustCol(n)
	}
	return out
}

// aggState counts rows.
type aggState struct {
	spec *AggSpec
	rows int64
}

func (a *aggState) OnData(ctx core.Context, _ *core.AC, msg *core.DataMsg) {
	if msg.Batch != nil {
		ctx.Charge(ctx.Costs().AggRow * sim.Time(msg.Batch.Len()))
		a.rows += int64(msg.Batch.Len())
		// The aggregate only counts: the batch dies here.
		storage.FreeBatch(msg.Batch)
	}
	if msg.Last {
		done := core.GetEvent()
		done.Kind, done.Query = core.EvQueryDone, a.spec.Query
		done.Payload = &QueryResult{Query: a.spec.Query, Rows: a.rows}
		ctx.Send(a.spec.Notify, done)
	}
}

// collectState materializes projected result rows.
type collectState struct {
	spec      *CollectSpec
	rows      []storage.Row
	truncated bool
	n         int64
}

func (c *collectState) OnData(ctx core.Context, _ *core.AC, msg *core.DataMsg) {
	if msg.Batch != nil {
		ctx.Charge(ctx.Costs().AggRow * sim.Time(msg.Batch.Len()))
		c.n += int64(msg.Batch.Len())
		proj := msg.Batch.Project(c.spec.Cols...)
		for r := 0; r < proj.Len(); r++ {
			if len(c.rows) >= CollectCap {
				c.truncated = true
				break
			}
			c.rows = append(c.rows, proj.Row(r))
		}
		// Row copies out of the projection; both batches die here.
		storage.FreeBatch(proj)
		storage.FreeBatch(msg.Batch)
	}
	if msg.Last {
		done := core.GetEvent()
		done.Kind, done.Query = core.EvQueryDone, c.spec.Query
		done.Payload = &QueryResult{
			Query: c.spec.Query, Rows: c.n,
			Collected: c.rows, Truncated: c.truncated,
		}
		ctx.Send(c.spec.Notify, done)
	}
}

package olap_test

import (
	"testing"
	"time"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/plan"
	"anydb/internal/tpcc"
)

// TestQueryRerouteAfterACFailure exercises the paper's §2.3 recovery
// direction for analytics on the real goroutine runtime: queries are pure
// consumers of (re-playable) beamed streams, so when the AC hosting the
// joins dies, the query is simply re-issued with a different routing —
// no state to rebuild, same result.
func TestQueryRerouteAfterACFailure(t *testing.T) {
	cfg := tpcc.Config{Warehouses: 4, Districts: 2, Customers: 80,
		Items: 40, InitOrders: 60, Seed: 13}.WithDefaults()
	db, _ := tpcc.NewDatabase(cfg)
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	results := make(chan int64, 4)
	qo := &plan.QO{Topo: topo}
	eng := core.NewEngine(topo, func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, qo)
	})
	defer eng.Stop()
	eng.SetClient(func(ev *core.Event) {
		if r, ok := ev.Payload.(*olap.QueryResult); ok {
			results <- r.Rows
		}
	})
	parts := []int{0, 1, 2, 3}
	issue := func(qid core.QueryID, join1, join2 core.ACID) {
		eng.Inject(s2[3], &core.Event{Kind: core.EvQuery, Query: qid, Payload: &plan.Q3Plan{
			Query: qid, Beam: plan.BeamAll, Parts: parts,
			Join1AC: join1, Join2AC: join2, Notify: core.ClientAC,
		}})
	}

	// Baseline result on healthy ACs.
	issue(1, s2[0], s2[1])
	var want int64
	select {
	case want = <-results:
	case <-time.After(10 * time.Second):
		t.Fatal("healthy query timed out")
	}
	if oracle := tpcc.ReferenceQ3(db, cfg); want != oracle {
		t.Fatalf("healthy run = %d, oracle %d", want, oracle)
	}

	// Kill the join host, then issue a query routed at the dead AC: it
	// can never complete (its events and data are dropped).
	eng.KillAC(s2[0])
	issue(2, s2[0], s2[1])
	select {
	case r := <-results:
		t.Fatalf("query on dead AC returned %d", r)
	case <-time.After(100 * time.Millisecond):
		// expected: no result
	}

	// Failure detected (timeout above): re-issue the SAME query with the
	// joins routed to a surviving AC — the architecture-less recovery
	// move. The result matches the pre-failure run.
	issue(3, s2[2], s2[1])
	select {
	case got := <-results:
		if got != want {
			t.Fatalf("rerouted query = %d, want %d", got, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("rerouted query timed out")
	}
}

package olap

import (
	"sort"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
)

// SinkSpec terminates a planned query: it consumes one stream (scan
// partials, scan projections, or join output), optionally folds it
// through a grouped aggregation, applies ORDER BY / LIMIT, and reports
// the result batches via EvQueryDone. One sink shape serves every plan
// the general planner emits:
//
//   - MergePartials: the stream carries partial-aggregate batches in
//     the shared-scan partial layout (group columns, then aggregate
//     cells); the sink merges them — the distributed-aggregation
//     combine step.
//   - Aggs without MergePartials: the stream carries raw rows (join
//     output); the sink folds them into group accumulators directly.
//   - No Aggs: plain collection of projected rows (capped at
//     CollectCap, like CollectSpec).
type SinkSpec struct {
	Query core.QueryID
	In    core.StreamID

	GroupBy       []string // raw-fold grouping columns (stream schema names)
	Aggs          []AggExpr
	MergePartials bool
	Cols          []string // collect-mode projection (stream schema names)

	// Output shape: one entry per result column, in SELECT order.
	// OutSrc maps each result column onto the sink's internal layout
	// (group values first, then one finalized value per aggregate); it
	// is nil in collect mode, where Cols already fixes the order.
	OutCols  []string
	OutKinds []storage.Kind
	OutSrc   []int

	OrderBy []OrderKey
	Limit   int // -1: no limit

	Notify core.ACID
}

// OrderKey is one ORDER BY term, indexing the result columns.
type OrderKey struct {
	Col  int
	Desc bool
}

// sinkState accumulates one query's result.
type sinkState struct {
	spec      *SinkSpec
	groups    map[string]*groupAcc
	order     []string
	rows      []storage.Row
	truncated bool
	keyBuf    []byte

	// Raw-fold column resolution, cached per batch schema.
	resolved *storage.Schema
	groupIdx []int
	aggIdx   []int

	// Partial-merge scratch: the partial layout leads with the group
	// columns, so the index list is the identity — built once here, not
	// per incoming batch.
	partIdx []int
}

func newSink(ctx core.Context, ac *core.AC, spec *SinkSpec) {
	s := &sinkState{spec: spec}
	if len(spec.Aggs) > 0 {
		s.groups = make(map[string]*groupAcc)
	}
	if spec.MergePartials {
		s.partIdx = make([]int, len(spec.GroupBy))
		for i := range s.partIdx {
			s.partIdx[i] = i
		}
	}
	ac.Subscribe(ctx, spec.In, s)
}

func (s *sinkState) OnData(ctx core.Context, ac *core.AC, msg *core.DataMsg) {
	if msg.Batch != nil {
		ctx.Charge(ctx.Costs().AggRow * sim.Time(msg.Batch.Len()))
		switch {
		case s.spec.MergePartials:
			s.mergePartials(msg.Batch)
		case len(s.spec.Aggs) > 0:
			s.foldRaw(msg.Batch)
		default:
			s.collect(msg.Batch)
		}
		storage.FreeBatch(msg.Batch)
	}
	if msg.Last {
		s.finalize(ctx, ac)
	}
}

// mergePartials folds partial-aggregate rows (shared-scan partial
// layout) into the sink's accumulators.
func (s *sinkState) mergePartials(b *storage.Batch) {
	g := len(s.spec.GroupBy)
	for r := 0; r < b.Len(); r++ {
		acc := s.acc(b, r, s.partIdx)
		col := g
		for j, a := range s.spec.Aggs {
			cell := &acc.cells[j]
			switch a.Fn {
			case AggCount:
				cell.count += b.Cols[col].Ints[r]
				col++
			case AggSum:
				if b.Cols[col].Kind == storage.KInt {
					cell.sumI += b.Cols[col].Ints[r]
				} else {
					cell.sumF += b.Cols[col].Floats[r]
				}
				col++
			case AggAvg:
				cell.sumF += b.Cols[col].Floats[r]
				cell.count += b.Cols[col+1].Ints[r]
				col += 2
			default: // min/max merge by comparison
				cell.addRaw(a.Fn, b.Value(r, col))
				col++
			}
		}
	}
}

// foldRaw folds raw stream rows (join output) into the accumulators.
func (s *sinkState) foldRaw(b *storage.Batch) {
	if s.resolved != b.Schema {
		s.groupIdx = colIdx(b.Schema, s.spec.GroupBy)
		s.aggIdx = make([]int, len(s.spec.Aggs))
		for j, a := range s.spec.Aggs {
			s.aggIdx[j] = -1
			if a.Fn != AggCount {
				s.aggIdx[j] = b.Schema.MustCol(a.Col)
			}
		}
		s.resolved = b.Schema
	}
	for r := 0; r < b.Len(); r++ {
		acc := s.acc(b, r, s.groupIdx)
		for j := range acc.cells {
			var v storage.Value
			if s.aggIdx[j] >= 0 {
				v = b.Value(r, s.aggIdx[j])
			}
			acc.cells[j].addRaw(s.spec.Aggs[j].Fn, v)
		}
	}
}

// acc finds or creates the group accumulator for row r.
func (s *sinkState) acc(b *storage.Batch, r int, groupIdx []int) *groupAcc {
	s.keyBuf = encodeGroupKey(s.keyBuf[:0], b, r, groupIdx)
	acc := s.groups[string(s.keyBuf)]
	if acc == nil {
		acc = &groupAcc{cells: make([]aggCell, len(s.spec.Aggs))}
		if len(groupIdx) > 0 {
			acc.keyVals = make([]storage.Value, len(groupIdx))
			for j, c := range groupIdx {
				acc.keyVals[j] = b.Value(r, c)
			}
		}
		key := string(s.keyBuf)
		s.groups[key] = acc
		s.order = append(s.order, key)
	}
	return acc
}

// collect appends projected rows (no aggregation).
func (s *sinkState) collect(b *storage.Batch) {
	proj := b.Project(s.spec.Cols...)
	for r := 0; r < proj.Len(); r++ {
		if len(s.rows) >= CollectCap {
			s.truncated = true
			break
		}
		s.rows = append(s.rows, proj.Row(r))
	}
	storage.FreeBatch(proj)
}

// finalize orders, limits, and batches the result, then reports it.
func (s *sinkState) finalize(ctx core.Context, ac *core.AC) {
	spec := s.spec
	var out []storage.Row
	if len(spec.Aggs) > 0 {
		// Deterministic group order: sort by encoded group key. ORDER BY,
		// when present, re-sorts below.
		sort.Strings(s.order)
		if len(s.order) == 0 && len(spec.GroupBy) == 0 {
			// Global aggregate over zero rows still yields one row
			// (COUNT(*) = 0; sums and extrema zero-valued — no NULLs in
			// this value model).
			out = append(out, s.zeroRow())
		}
		// Result kind of each aggregate, recovered from its SELECT slot
		// (every aggregate came from a select item, so one exists).
		base := len(spec.GroupBy)
		aggKind := make([]storage.Kind, len(spec.Aggs))
		for i, src := range spec.OutSrc {
			if src >= base {
				aggKind[src-base] = spec.OutKinds[i]
			}
		}
		vals := make(storage.Row, base+len(spec.Aggs))
		for _, k := range s.order {
			acc := s.groups[k]
			copy(vals, acc.keyVals)
			for j := range acc.cells {
				vals[base+j] = finalizeCell(spec.Aggs[j].Fn, aggKind[j], &acc.cells[j])
			}
			row := make(storage.Row, len(spec.OutSrc))
			for i, src := range spec.OutSrc {
				row[i] = vals[src]
			}
			out = append(out, row)
		}
	} else {
		out = s.rows
	}
	if len(spec.OrderBy) > 0 {
		sort.SliceStable(out, func(a, b int) bool {
			for _, k := range spec.OrderBy {
				c := out[a][k.Col].Compare(out[b][k.Col])
				if c == 0 {
					continue
				}
				return (c < 0) != k.Desc
			}
			return false
		})
	}
	if spec.Limit >= 0 && len(out) > spec.Limit {
		out = out[:spec.Limit]
	}
	if len(out) > CollectCap {
		out = out[:CollectCap]
		s.truncated = true
	}

	cols := make([]storage.Column, len(spec.OutCols))
	for i := range cols {
		cols[i] = storage.Column{Name: spec.OutCols[i], Kind: spec.OutKinds[i]}
	}
	schema := storage.NewSchema("result", cols...)
	var batches []*storage.Batch
	var cur *storage.Batch
	for _, row := range out {
		if cur == nil || cur.Len() >= DefaultBatchRows {
			cur = storage.GetBatch(schema)
			batches = append(batches, cur)
		}
		cur.AppendRow(row)
	}

	s.groups, s.order, s.rows = nil, nil, nil
	ac.DropStream(spec.In)
	done := core.GetEvent()
	done.Kind, done.Query = core.EvQueryDone, spec.Query
	done.Payload = &QueryResult{
		Query: spec.Query, Rows: int64(len(out)),
		Cols: spec.OutCols, Batches: batches, Truncated: s.truncated,
	}
	ctx.Send(spec.Notify, done)
}

// zeroRow synthesizes the zero-input global-aggregate result row in
// SELECT order.
func (s *sinkState) zeroRow() storage.Row {
	spec := s.spec
	row := make(storage.Row, len(spec.OutSrc))
	for i := range spec.OutSrc {
		switch spec.OutKinds[i] {
		case storage.KInt:
			row[i] = storage.Int(0)
		case storage.KFloat:
			row[i] = storage.Float(0)
		default:
			row[i] = storage.Str("")
		}
	}
	return row
}

// finalizeCell turns an accumulator into its result value.
func finalizeCell(fn AggFn, kind storage.Kind, c *aggCell) storage.Value {
	switch fn {
	case AggCount:
		return storage.Int(c.count)
	case AggSum:
		if kind == storage.KFloat {
			return storage.Float(c.sumF)
		}
		return storage.Int(c.sumI)
	case AggAvg:
		if c.count == 0 {
			return storage.Float(0)
		}
		return storage.Float(c.sumF / float64(c.count))
	default:
		return c.cur
	}
}

package olap_test

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// sharedCfg sizes the customer table to span multiple columnar chunks
// per partition (2 districts × 1200 > ColChunkRows), so registrations
// can attach mid-pass and exercise the wrap-around window.
func sharedCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 2, Districts: 2, Customers: 1200,
		Items: 10, InitOrders: 10, Seed: 5}.WithDefaults()
}

// sharedHarness drives raw SharedScanSpec/SinkSpec installs (no SQL, no
// planner) on a sim cluster.
type sharedHarness struct {
	cl      *core.SimCluster
	topo    *core.Topology
	db      *storage.Database
	cfg     tpcc.Config
	sinkAC  core.ACID
	results map[core.QueryID]*olap.QueryResult
	doneAt  map[core.QueryID]sim.Time
}

func newSharedHarness(t *testing.T) *sharedHarness {
	t.Helper()
	cfg := sharedCfg()
	db, _ := tpcc.NewDatabase(cfg)
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	h := &sharedHarness{
		topo: topo, db: db, cfg: cfg, sinkAC: s2[0],
		results: make(map[core.QueryID]*olap.QueryResult),
		doneAt:  make(map[core.QueryID]sim.Time),
	}
	h.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
	})
	h.cl.SetClient(func(at sim.Time, ev *core.Event) {
		if r, ok := ev.Payload.(*olap.QueryResult); ok {
			h.results[r.Query] = r
			h.doneAt[r.Query] = at
		}
	})
	return h
}

// installCount registers a global COUNT(*) over the customer table for
// qid at sim time at: one shared-scan registration per partition plus
// the merging sink.
func (h *sharedHarness) installCount(qid core.QueryID, at sim.Time) {
	out := core.StreamID(uint64(qid) * 64)
	aggs := []olap.AggExpr{{Fn: olap.AggCount}}
	for w := 0; w < h.cfg.Warehouses; w++ {
		h.cl.Inject(h.topo.Owner(w), &core.Event{
			Kind: core.EvInstallOp, Query: qid,
			Payload: &olap.SharedScanSpec{
				Query: qid, Table: tpcc.TCustomerID, Part: w,
				Aggs: aggs, Out: out, To: h.sinkAC, Producers: h.cfg.Warehouses,
			},
		}, at)
	}
	h.cl.Inject(h.sinkAC, &core.Event{
		Kind: core.EvInstallOp, Query: qid,
		Payload: &olap.SinkSpec{
			Query: qid, In: out, Aggs: aggs, MergePartials: true,
			OutCols: []string{"count"}, OutKinds: []storage.Kind{storage.KInt},
			OutSrc: []int{0}, Limit: -1, Notify: core.ClientAC,
		},
	}, at)
}

func (h *sharedHarness) countOf(t *testing.T, qid core.QueryID) int64 {
	t.Helper()
	res := h.results[qid]
	if res == nil {
		t.Fatalf("query %d: no result", qid)
	}
	if res.Rows != 1 || len(res.Batches) != 1 || res.Batches[0].Len() != 1 {
		t.Fatalf("query %d: result shape %+v", qid, res)
	}
	return res.Batches[0].Value(0, 0).I
}

// TestSharedScanMidPassAttach: a second query attaching while the first
// pass is between chunks joins the in-flight cursor, scans the remaining
// chunks, wraps to the start, and still counts every row exactly once.
func TestSharedScanMidPassAttach(t *testing.T) {
	h := newSharedHarness(t)
	want := int64(h.cfg.Warehouses) * int64(h.cfg.Districts) * int64(h.cfg.Customers)
	h.installCount(1, 0)
	// One chunk costs ≈ ColChunkRows×(ScanRow+AggRow) ≈ 29µs; inject
	// mid-pass, after chunk 0 and before the 2-chunk pass completes.
	h.installCount(2, 30*sim.Microsecond)
	h.cl.Run()
	if got := h.countOf(t, 1); got != want {
		t.Fatalf("query 1 count = %d, want %d", got, want)
	}
	if got := h.countOf(t, 2); got != want {
		t.Fatalf("query 2 (mid-pass attach) count = %d, want %d", got, want)
	}
	if h.doneAt[2] <= h.doneAt[1] {
		// Query 2 joined later and must finish after query 1 — wrapping
		// past the point it attached at, not piggybacking on 1's result.
		t.Fatalf("doneAt: q2 %v <= q1 %v", h.doneAt[2], h.doneAt[1])
	}
}

// TestSharedScanAmortizesCursor: N concurrent registrations ride one
// cursor pass, so the makespan grows by per-registration fold costs
// only — far slower than N separate passes would.
func TestSharedScanAmortizesCursor(t *testing.T) {
	solo := newSharedHarness(t)
	solo.installCount(1, 0)
	solo.cl.Run()
	tSolo := solo.doneAt[1]

	shared := newSharedHarness(t)
	const n = 8
	for q := core.QueryID(1); q <= n; q++ {
		shared.installCount(q, 0)
	}
	shared.cl.Run()
	want := int64(shared.cfg.Warehouses) * int64(shared.cfg.Districts) * int64(shared.cfg.Customers)
	var tLast sim.Time
	for q := core.QueryID(1); q <= n; q++ {
		if got := shared.countOf(t, q); got != want {
			t.Fatalf("query %d count = %d, want %d", q, got, want)
		}
		if at := shared.doneAt[q]; at > tLast {
			tLast = at
		}
	}
	// Unshared, 8 passes would cost ≈ 8× the solo makespan. Shared, the
	// ScanRow cursor cost is charged once per chunk while each
	// registration still pays its own per-row fold, so the fleet must
	// land measurably under the 8× unshared estimate.
	if tLast >= 6*tSolo {
		t.Fatalf("8 shared queries took %v, solo %v — cursor not amortized", tLast, tSolo)
	}
}

// TestSharedScanStreamingAttach: streaming (projection) registrations
// share the cursor too, each keeping private filters and batches.
func TestSharedScanStreamingAttach(t *testing.T) {
	h := newSharedHarness(t)
	// Query 1 projects district-1 customers, query 2 district-2, both
	// into collect sinks, installed together so they share the pass.
	for qid, dist := range map[core.QueryID]int64{1: 1, 2: 2} {
		out := core.StreamID(uint64(qid) * 64)
		for w := 0; w < h.cfg.Warehouses; w++ {
			h.cl.Inject(h.topo.Owner(w), &core.Event{
				Kind: core.EvInstallOp, Query: qid,
				Payload: &olap.SharedScanSpec{
					Query: qid, Table: tpcc.TCustomerID, Part: w,
					Filters: []olap.Predicate{{Col: "c_d_id", Kind: olap.PredEqInt, MinI: dist}},
					Cols:    []string{"c_id", "c_d_id"},
					Out:     out, To: h.sinkAC, Producers: h.cfg.Warehouses,
				},
			}, 0)
		}
		h.cl.Inject(h.sinkAC, &core.Event{
			Kind: core.EvInstallOp, Query: qid,
			Payload: &olap.SinkSpec{
				Query: qid, In: out, Cols: []string{"c_id", "c_d_id"},
				OutCols:  []string{"c_id", "c_d_id"},
				OutKinds: []storage.Kind{storage.KInt, storage.KInt},
				Limit:    -1, Notify: core.ClientAC,
			},
		}, 0)
	}
	h.cl.Run()
	wantPer := int64(h.cfg.Warehouses) * int64(h.cfg.Customers)
	for qid, dist := range map[core.QueryID]int64{1: 1, 2: 2} {
		res := h.results[qid]
		if res == nil {
			t.Fatalf("query %d: no result", qid)
		}
		if res.Rows != wantPer {
			t.Fatalf("query %d rows = %d, want %d", qid, res.Rows, wantPer)
		}
		for _, b := range res.Batches {
			for r := 0; r < b.Len(); r++ {
				if b.Value(r, 1).I != dist {
					t.Fatalf("query %d leaked row from district %d", qid, b.Value(r, 1).I)
				}
			}
		}
	}
}

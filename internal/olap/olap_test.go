package olap_test

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/plan"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

func testCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 4, Districts: 2, Customers: 120,
		Items: 40, InitOrders: 120, Seed: 3}.WithDefaults()
}

// harness wires storage owners on server 1 and join ACs either on server
// 1 (aggregated) or server 2 (disaggregated).
type harness struct {
	cl      *core.SimCluster
	qoAC    core.ACID
	plan    *plan.Q3Plan
	rows    int64
	doneAt  sim.Time
	events  map[string]sim.Time // OpDone label -> time
	started sim.Time
}

func build(db *storage.Database, cfg tpcc.Config, disagg bool, dpi bool) *harness {
	topo := core.NewTopology(db)
	s1 := topo.AddServer(4)
	s2 := topo.AddServer(4)
	for w := 0; w < cfg.Warehouses; w++ {
		topo.SetOwner(w, s1[w%4])
	}
	h := &harness{events: make(map[string]sim.Time)}
	qo := &plan.QO{Topo: topo}
	h.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
		ac.Register(core.EvQuery, qo)
	})
	h.cl.DPI = dpi
	join1, join2 := s1[0], s1[1]
	if disagg {
		join1, join2 = s2[0], s2[1]
	}
	h.qoAC = s2[3]
	h.plan = &plan.Q3Plan{
		Query: 1, Beam: plan.BeamNone, CompileTime: 2 * sim.Millisecond,
		Parts:   []int{0, 1, 2, 3},
		Join1AC: join1, Join2AC: join2,
		Notify: core.ClientAC,
	}
	h.cl.SetClient(func(at sim.Time, ev *core.Event) {
		switch p := ev.Payload.(type) {
		case *olap.QueryResult:
			h.rows = p.Rows
			h.doneAt = at
		case *olap.OpDone:
			h.events[p.Label] = at
		}
	})
	return h
}

func (h *harness) run(beam plan.BeamMode) {
	h.plan.Beam = beam
	h.cl.Inject(h.qoAC, &core.Event{Kind: core.EvQuery, Query: 1, Payload: h.plan}, 0)
	h.cl.Run()
}

func TestQ3CorrectAllModes(t *testing.T) {
	cfg := testCfg()
	for _, disagg := range []bool{false, true} {
		for _, dpi := range []bool{false, true} {
			for _, beam := range []plan.BeamMode{plan.BeamNone, plan.BeamBuild, plan.BeamAll} {
				db, _ := tpcc.NewDatabase(cfg)
				want := tpcc.ReferenceQ3(db, cfg)
				if want == 0 {
					t.Fatal("oracle returned 0 rows; enlarge the dataset")
				}
				h := build(db, cfg, disagg, dpi)
				h.run(beam)
				if h.rows != want {
					t.Fatalf("disagg=%v dpi=%v beam=%v: rows=%d want=%d",
						disagg, dpi, beam, h.rows, want)
				}
				if h.doneAt <= h.plan.CompileTime {
					t.Fatalf("query finished before compile time: %v", h.doneAt)
				}
				if h.events["join1/build"] == 0 || h.events["join1/probe"] == 0 ||
					h.events["join2/probe"] == 0 {
					t.Fatalf("missing op instrumentation: %v", h.events)
				}
				if h.events["join1/build"] > h.events["join1/probe"] {
					t.Fatal("probe finished before build")
				}
			}
		}
	}
}

// TestBeamingHidesTransfer is Figure 6's core claim in miniature: with
// full beaming the query completes sooner than without, because base
// table data transfers overlap the compile window.
func TestBeamingHidesTransfer(t *testing.T) {
	cfg := testCfg()
	times := make(map[plan.BeamMode]sim.Time)
	for _, beam := range []plan.BeamMode{plan.BeamNone, plan.BeamBuild, plan.BeamAll} {
		db, _ := tpcc.NewDatabase(cfg)
		h := build(db, cfg, true, true)
		h.plan.CompileTime = 5 * sim.Millisecond
		h.run(beam)
		times[beam] = h.doneAt
	}
	if times[plan.BeamAll] >= times[plan.BeamNone] {
		t.Fatalf("beam all (%v) not faster than none (%v)",
			times[plan.BeamAll], times[plan.BeamNone])
	}
	if times[plan.BeamBuild] > times[plan.BeamNone] {
		t.Fatalf("beam build (%v) slower than none (%v)",
			times[plan.BeamBuild], times[plan.BeamNone])
	}
}

// TestBeamedBuildFinishesEarly: with build beaming and a generous compile
// window, the build side should complete (almost) immediately after
// execution starts — the "build runtime ≈ 0" effect of Figure 6(b).
func TestBeamedBuildFinishesEarly(t *testing.T) {
	cfg := testCfg()
	compile := 10 * sim.Millisecond

	db1, _ := tpcc.NewDatabase(cfg)
	h1 := build(db1, cfg, true, true)
	h1.plan.CompileTime = compile
	h1.run(plan.BeamNone)
	noBeam := h1.events["join1/build"] - compile

	db2, _ := tpcc.NewDatabase(cfg)
	h2 := build(db2, cfg, true, true)
	h2.plan.CompileTime = compile
	h2.run(plan.BeamBuild)
	beamed := h2.events["join1/build"] - compile

	if beamed >= noBeam {
		t.Fatalf("beamed build runtime (%v) not shorter than unbeamed (%v)", beamed, noBeam)
	}
	if beamed > noBeam/2 {
		t.Fatalf("beamed build runtime %v should be well under unbeamed %v", beamed, noBeam)
	}
}

func TestPredicates(t *testing.T) {
	sch := storage.NewSchema("t",
		storage.Column{Name: "s", Kind: storage.KStr},
		storage.Column{Name: "n", Kind: storage.KInt})
	row := storage.Row{storage.Str("AZ"), storage.Int(2010)}
	if !(olap.Predicate{Kind: olap.PredNone}).Matches(sch, row) {
		t.Fatal("PredNone")
	}
	if !(olap.Predicate{Col: "s", Kind: olap.PredPrefix, Prefix: "A"}).Matches(sch, row) {
		t.Fatal("prefix hit")
	}
	if (olap.Predicate{Col: "s", Kind: olap.PredPrefix, Prefix: "B"}).Matches(sch, row) {
		t.Fatal("prefix miss")
	}
	if !(olap.Predicate{Col: "n", Kind: olap.PredGEInt, MinI: 2007}).Matches(sch, row) {
		t.Fatal("ge hit")
	}
	if (olap.Predicate{Col: "n", Kind: olap.PredGEInt, MinI: 2011}).Matches(sch, row) {
		t.Fatal("ge miss")
	}
}

func TestBeamModeString(t *testing.T) {
	if plan.BeamNone.String() != "none" || plan.BeamAll.String() != "build+probe" {
		t.Fatal("beam names")
	}
}

package olap

import (
	"fmt"
	"sort"
	"strconv"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
)

// This file implements the shared analytical scan (SharedDB's "one
// cursor, many queries" applied to AnyDB's operator plane) and the
// generic query sink that terminates every planned query.
//
// A SharedScanSpec does not start a private cursor like ScanSpec does.
// It REGISTERS with the per-(table, partition) shared cursor living on
// the owning AC: the registration compiles its predicates against the
// table schema once, joins the pass at the cursor's current chunk, and
// detaches after seeing every chunk exactly once (one full circle).
// One driver continuation event advances the cursor one columnar chunk
// at a time — the chunk fetch, the event-plane hop, and the shared
// per-row scan charge are paid once per chunk regardless of how many
// registrations ride the pass; only each registration's own predicate
// evaluation and fold are per-query. Registrations carry private
// result state (a projection batch or a grouped-aggregate table), so
// detaching is just emitting it downstream.
//
// Safety under live repartitioning: queries hold a submission-plane
// registration (queryMask) from registration to completion, and a
// partition move drains that mask before the storage handoff — so no
// shared-scan registration can exist while a partition moves, and the
// driver additionally stops (and drops its continuation) the moment
// its registration list is empty.

// AggFn selects an aggregate function.
type AggFn uint8

const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("AggFn(%d)", uint8(f))
}

// AggExpr is one aggregate over a source column (empty for COUNT(*)).
type AggExpr struct {
	Fn  AggFn
	Col string
}

// SharedScanSpec registers one query with the shared cursor of a
// partition's table. Two modes:
//
//   - streaming (len(Aggs) == 0): matching rows are projected onto Cols
//     and pushed into Out in pooled batches — the shared-scan analogue
//     of ScanSpec, feeding joins or a collecting sink;
//   - aggregate pushdown (len(Aggs) > 0): matching rows fold into a
//     grouped partial-aggregate table private to the registration, and
//     one partial batch (layout: group columns, then per-aggregate
//     cells — AVG carries sum+count) is emitted when the pass
//     completes. The sink merges partials with MergePartials.
type SharedScanSpec struct {
	Query     core.QueryID
	Table     storage.TableID
	Part      int
	Filters   []Predicate // AND-composed
	Cols      []string    // streaming projection
	GroupBy   []string    // pushdown grouping
	Aggs      []AggExpr   // pushdown aggregates
	Out       core.StreamID
	To        core.ACID
	Producers int
	BatchRows int
}

// sharedKey addresses one shared cursor.
type sharedKey struct {
	table storage.TableID
	part  int
}

// compiledPred is a Predicate with its column resolved to a vector
// index, evaluated directly against columnar chunks.
type compiledPred struct {
	col    int
	kind   PredKind
	prefix string
	str    string
	minI   int64
}

func (p *compiledPred) match(b *storage.Batch, i int) bool {
	switch p.kind {
	case PredNone:
		return true
	case PredPrefix:
		v := b.Cols[p.col].Strs[i]
		return len(v) >= len(p.prefix) && v[:len(p.prefix)] == p.prefix
	case PredGEInt:
		return b.Cols[p.col].Ints[i] >= p.minI
	case PredLTInt:
		return b.Cols[p.col].Ints[i] < p.minI
	case PredEqInt:
		return b.Cols[p.col].Ints[i] == p.minI
	case PredNeInt:
		return b.Cols[p.col].Ints[i] != p.minI
	case PredEqStr:
		return b.Cols[p.col].Strs[i] == p.str
	default:
		panic("olap: unknown predicate kind")
	}
}

// compilePred resolves pred against schema, validating kinds so a
// mis-typed predicate fails at registration, not mid-chunk.
func compilePred(schema *storage.Schema, pred Predicate) compiledPred {
	cp := compiledPred{kind: pred.Kind, prefix: pred.Prefix, str: pred.Str, minI: pred.MinI}
	if pred.Kind == PredNone {
		return cp
	}
	cp.col = schema.MustCol(pred.Col)
	kind := schema.Cols[cp.col].Kind
	switch pred.Kind {
	case PredPrefix, PredEqStr:
		if kind != storage.KStr {
			panic(fmt.Sprintf("olap: string predicate on %s column %s.%s", kind, schema.Name, pred.Col))
		}
	default:
		if kind != storage.KInt {
			panic(fmt.Sprintf("olap: int predicate on %s column %s.%s", kind, schema.Name, pred.Col))
		}
	}
	return cp
}

// aggCell is one accumulator: which fields are live depends on the
// aggregate function (count for COUNT/AVG, sumI/sumF for SUM, sumF for
// AVG, cur/seen for MIN/MAX).
type aggCell struct {
	count int64
	sumI  int64
	sumF  float64
	cur   storage.Value
	seen  bool
}

func (c *aggCell) addRaw(fn AggFn, v storage.Value) {
	switch fn {
	case AggCount:
		c.count++
	case AggSum:
		if v.Kind == storage.KInt {
			c.sumI += v.I
		} else {
			c.sumF += v.F
		}
	case AggAvg:
		c.count++
		if v.Kind == storage.KInt {
			c.sumF += float64(v.I)
		} else {
			c.sumF += v.F
		}
	case AggMin:
		if !c.seen || v.Compare(c.cur) < 0 {
			c.cur, c.seen = v, true
		}
	case AggMax:
		if !c.seen || v.Compare(c.cur) > 0 {
			c.cur, c.seen = v, true
		}
	}
}

// groupAcc is one group's accumulators plus its key values (kept for
// output).
type groupAcc struct {
	keyVals []storage.Value
	cells   []aggCell
}

// encodeGroupKey appends a canonical byte encoding of the group columns
// of row i to buf (NUL-separated; kinds are fixed per column so the
// encoding cannot collide across kinds).
func encodeGroupKey(buf []byte, b *storage.Batch, i int, cols []int) []byte {
	for _, c := range cols {
		cv := &b.Cols[c]
		switch cv.Kind {
		case storage.KInt:
			buf = strconv.AppendInt(buf, cv.Ints[i], 10)
		case storage.KFloat:
			buf = strconv.AppendFloat(buf, cv.Floats[i], 'g', -1, 64)
		default:
			buf = append(buf, cv.Strs[i]...)
		}
		buf = append(buf, 0)
	}
	return buf
}

// scanReg is one query's registration with a shared cursor.
type scanReg struct {
	spec  *SharedScanSpec
	preds []compiledPred
	sig   string // canonical predicate signature, for match sharing

	// Pass window: the registration joined at some chunk and detaches
	// after `total` chunks (the chunk count at attach — chunks appended
	// later belong to later passes). next is the chunk it consumes
	// next; done counts consumed chunks.
	next, done, total int

	// Streaming mode.
	outIdx []int
	out    *storage.Batch
	rowBuf storage.Row

	// Aggregate-pushdown mode.
	groupIdx []int
	aggIdx   []int // source column per aggregate; -1 for COUNT(*)
	partial  *storage.Schema
	groups   map[string]*groupAcc
	order    []string  // insertion-ordered keys, sorted at emit
	global   *groupAcc // fast path: the single group of a global aggregate
}

// matchBuf caches one predicate signature's matched rows for the chunk
// of the current step (valid while step == sharedScan.steps).
type matchBuf struct {
	rows []int32
	step uint64
}

// sharedScan is the per-(table, partition) shared cursor state, owned
// by the partition's AC.
type sharedScan struct {
	key    sharedKey
	cursor int
	regs   []*scanReg
	ev     *core.Event // the driver continuation, re-sent per chunk
	keyBuf []byte      // scratch: group-key encoding

	// Predicate evaluation is shared across registrations, not just the
	// chunk fetch: all registrations whose filters have the same
	// canonical signature reuse one matchChunk evaluation per chunk.
	// steps increments once per driven chunk (cursor positions repeat
	// across passes, so the step counter is the validity token); buffers
	// live as long as the cursor does — one busy period.
	steps    uint64
	sigMatch map[string]*matchBuf
}

// attachShared registers spec with the shared cursor, creating (and
// starting) the driver when the cursor is idle. The install event is
// recycled as the driver continuation when one is needed.
func (w *Worker) attachShared(ctx core.Context, ev *core.Event, spec *SharedScanSpec) {
	t := w.DB.Partition(spec.Part).TableByID(spec.Table)
	r := &scanReg{spec: spec}
	r.preds = make([]compiledPred, 0, len(spec.Filters))
	for _, f := range spec.Filters {
		r.preds = append(r.preds, compilePred(t.Schema, f))
	}
	r.sig = predSignature(r.preds)
	if spec.BatchRows == 0 {
		spec.BatchRows = DefaultBatchRows
	}
	if len(spec.Aggs) == 0 {
		r.outIdx = make([]int, len(spec.Cols))
		outCols := make([]storage.Column, len(spec.Cols))
		for i, c := range spec.Cols {
			r.outIdx[i] = t.Schema.MustCol(c)
			outCols[i] = t.Schema.Cols[r.outIdx[i]]
		}
		r.out = storage.GetBatch(storage.NewSchema(t.Schema.Name+"_scan", outCols...))
		r.rowBuf = make(storage.Row, len(r.outIdx))
	} else {
		r.groupIdx = colIdx(t.Schema, spec.GroupBy)
		r.aggIdx = make([]int, len(spec.Aggs))
		cols := make([]storage.Column, 0, len(spec.GroupBy)+2*len(spec.Aggs))
		for i := range spec.GroupBy {
			cols = append(cols, storage.Column{
				Name: fmt.Sprintf("g%d", i), Kind: t.Schema.Cols[r.groupIdx[i]].Kind,
			})
		}
		for j, a := range spec.Aggs {
			r.aggIdx[j] = -1
			srcKind := storage.KInt
			if a.Fn != AggCount {
				r.aggIdx[j] = t.Schema.MustCol(a.Col)
				srcKind = t.Schema.Cols[r.aggIdx[j]].Kind
			}
			switch a.Fn {
			case AggCount:
				cols = append(cols, storage.Column{Name: fmt.Sprintf("p%d", j), Kind: storage.KInt})
			case AggAvg:
				cols = append(cols,
					storage.Column{Name: fmt.Sprintf("p%d_s", j), Kind: storage.KFloat},
					storage.Column{Name: fmt.Sprintf("p%d_c", j), Kind: storage.KInt})
			default:
				cols = append(cols, storage.Column{Name: fmt.Sprintf("p%d", j), Kind: srcKind})
			}
		}
		r.partial = storage.NewSchema(t.Schema.Name+"_partial", cols...)
		r.groups = make(map[string]*groupAcc)
	}

	r.total = t.NumColChunks()
	if r.total == 0 {
		// Empty table: the pass is already over; the install event dies.
		r.finish(ctx)
		core.FreeEvent(ev)
		return
	}

	key := sharedKey{table: spec.Table, part: spec.Part}
	ss := w.shared[key]
	if ss != nil {
		// Join the in-flight pass at the cursor's current position; the
		// install event is dead (a continuation is already circulating).
		r.next = ss.cursor
		if r.next >= r.total {
			r.next = 0
		}
		ss.regs = append(ss.regs, r)
		core.FreeEvent(ev)
		return
	}
	if w.shared == nil {
		w.shared = make(map[sharedKey]*sharedScan)
	}
	ss = &sharedScan{key: key, ev: ev}
	ss.regs = append(ss.regs, r)
	w.shared[key] = ss
	// Reuse the install event as the driver continuation.
	ev.Payload = ss
	ctx.Send(ctx.Self(), ev)
}

// step advances the shared cursor one chunk: every registration whose
// window includes the chunk evaluates its predicates over the columnar
// chunk and folds matches into its private state. Registrations that
// completed their circle detach; the driver stops when none remain.
func (ss *sharedScan) step(ctx core.Context, w *Worker) {
	if w.shared[ss.key] != ss {
		core.FreeEvent(ss.ev) // superseded or stopped: stale continuation, drop it
		return
	}
	if len(ss.regs) == 0 {
		delete(w.shared, ss.key)
		core.FreeEvent(ss.ev)
		return
	}
	t := w.DB.Partition(ss.key.part).TableByID(ss.key.table)
	m := 0
	for _, r := range ss.regs {
		if r.total > m {
			m = r.total
		}
	}
	if ss.cursor >= m {
		ss.cursor = 0
	}
	ci := ss.cursor
	costs := ctx.Costs()
	var chunk *storage.Batch
	for i := 0; i < len(ss.regs); {
		r := ss.regs[i]
		if r.next != ci {
			i++
			continue
		}
		if chunk == nil {
			// The chunk fetch and the per-row scan charge are shared:
			// paid once however many registrations ride this pass.
			chunk = t.ColChunk(ci)
			ctx.Charge(costs.ScanRow * sim.Time(chunk.Len()))
			ss.steps++
		}
		// Registrations with the same predicate signature share one
		// evaluation of this chunk.
		mb := ss.sigMatch[r.sig]
		if mb == nil {
			if ss.sigMatch == nil {
				ss.sigMatch = make(map[string]*matchBuf)
			}
			mb = &matchBuf{}
			ss.sigMatch[r.sig] = mb
		}
		if mb.step != ss.steps {
			mb.rows = matchChunk(chunk, r.preds, mb.rows)
			mb.step = ss.steps
		}
		if len(r.spec.Aggs) == 0 {
			r.foldStream(ctx, chunk, mb.rows)
		} else {
			ss.keyBuf = r.foldAgg(ctx, chunk, mb.rows, ss.keyBuf)
		}
		r.done++
		r.next++
		if r.next >= r.total {
			r.next = 0
		}
		if r.done >= r.total {
			r.finish(ctx)
			ss.regs = append(ss.regs[:i], ss.regs[i+1:]...)
			continue
		}
		i++
	}
	ss.cursor = ci + 1
	if len(ss.regs) == 0 {
		delete(w.shared, ss.key)
		core.FreeEvent(ss.ev)
		return
	}
	ctx.Send(ctx.Self(), ss.ev)
}

// predSignature canonically encodes a compiled predicate list so
// registrations with identical filters can share match results. Columns
// are already resolved to indexes and predicates are AND-composed in
// plan order, so a byte-equal signature means row-equal matches.
func predSignature(preds []compiledPred) string {
	if len(preds) == 0 {
		return ""
	}
	buf := make([]byte, 0, 16*len(preds))
	for i := range preds {
		p := &preds[i]
		buf = strconv.AppendInt(buf, int64(p.kind), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(p.col), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, p.minI, 10)
		buf = append(buf, ':')
		buf = append(buf, p.prefix...)
		buf = append(buf, 0)
		buf = append(buf, p.str...)
		buf = append(buf, 0)
	}
	return string(buf)
}

// matchChunk returns the row indexes of chunk b passing all preds,
// reusing buf.
func matchChunk(b *storage.Batch, preds []compiledPred, buf []int32) []int32 {
	buf = buf[:0]
	n := b.Len()
rows:
	for i := 0; i < n; i++ {
		for p := range preds {
			if !preds[p].match(b, i) {
				continue rows
			}
		}
		buf = append(buf, int32(i))
	}
	return buf
}

// foldStream appends the matched rows, projected, to the registration's
// output batch, flushing at batch granularity.
func (r *scanReg) foldStream(ctx core.Context, chunk *storage.Batch, match []int32) {
	if len(match) == 0 {
		return
	}
	for _, m := range match {
		for j, c := range r.outIdx {
			r.rowBuf[j] = chunk.Value(int(m), c)
		}
		r.out.AppendRow(r.rowBuf)
		if r.out.Len() >= r.spec.BatchRows {
			r.flush(ctx, false)
		}
	}
	if !ctx.Offloaded(r.spec.To) {
		ctx.Charge(ctx.Costs().PartitionRow * sim.Time(len(match)))
	}
}

// foldAgg folds the matched rows into the registration's grouped
// accumulators, returning the (possibly grown) key scratch buffer.
func (r *scanReg) foldAgg(ctx core.Context, chunk *storage.Batch, match []int32, keyBuf []byte) []byte {
	if len(match) == 0 {
		return keyBuf
	}
	ctx.Charge(ctx.Costs().AggRow * sim.Time(len(match)))
	if len(r.groupIdx) == 0 {
		// Global aggregate: one accumulator, no per-row group-key encode
		// or map lookup; COUNT folds a whole chunk in O(1).
		acc := r.global
		if acc == nil {
			acc = &groupAcc{cells: make([]aggCell, len(r.spec.Aggs))}
			r.global = acc
			r.groups[""] = acc
			r.order = append(r.order, "")
		}
		for j := range acc.cells {
			if fn := r.spec.Aggs[j].Fn; fn == AggCount {
				acc.cells[j].count += int64(len(match))
			} else {
				c := r.aggIdx[j]
				for _, m := range match {
					acc.cells[j].addRaw(fn, chunk.Value(int(m), c))
				}
			}
		}
		return keyBuf
	}
	for _, m := range match {
		i := int(m)
		keyBuf = encodeGroupKey(keyBuf[:0], chunk, i, r.groupIdx)
		acc := r.groups[string(keyBuf)]
		if acc == nil {
			acc = &groupAcc{cells: make([]aggCell, len(r.spec.Aggs))}
			if len(r.groupIdx) > 0 {
				acc.keyVals = make([]storage.Value, len(r.groupIdx))
				for j, c := range r.groupIdx {
					acc.keyVals[j] = chunk.Value(i, c)
				}
			}
			key := string(keyBuf)
			r.groups[key] = acc
			r.order = append(r.order, key)
		}
		for j := range acc.cells {
			var v storage.Value
			if r.aggIdx[j] >= 0 {
				v = chunk.Value(i, r.aggIdx[j])
			}
			acc.cells[j].addRaw(r.spec.Aggs[j].Fn, v)
		}
	}
	return keyBuf
}

// finish detaches the registration: streaming mode flushes the tail
// batch with the Last marker; pushdown mode emits the partial-aggregate
// batch (group-key-sorted for determinism) and Last.
func (r *scanReg) finish(ctx core.Context) {
	if len(r.spec.Aggs) == 0 {
		r.flush(ctx, true)
		return
	}
	var b *storage.Batch
	if len(r.order) > 0 {
		sort.Strings(r.order)
		b = storage.GetBatch(r.partial)
		row := make(storage.Row, 0, r.partial.NumCols())
		for _, k := range r.order {
			acc := r.groups[k]
			row = append(row[:0], acc.keyVals...)
			for j := range acc.cells {
				cell := &acc.cells[j]
				switch r.spec.Aggs[j].Fn {
				case AggCount:
					row = append(row, storage.Int(cell.count))
				case AggSum:
					if r.partial.Cols[len(acc.keyVals)+partialWidth(r.spec.Aggs[:j])].Kind == storage.KInt {
						row = append(row, storage.Int(cell.sumI))
					} else {
						row = append(row, storage.Float(cell.sumF))
					}
				case AggAvg:
					row = append(row, storage.Float(cell.sumF), storage.Int(cell.count))
				default: // min/max
					row = append(row, cell.cur)
				}
			}
			b.AppendRow(row)
		}
	}
	r.groups, r.order, r.global = nil, nil, nil
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = r.spec.Out, r.spec.Query, true, r.spec.Producers
	msg.Batch = b
	ctx.SendData(r.spec.To, msg)
}

// partialWidth returns how many partial-layout columns the given
// aggregate prefix occupies (AVG takes two).
func partialWidth(aggs []AggExpr) int {
	n := 0
	for _, a := range aggs {
		if a.Fn == AggAvg {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// flush emits the registration's accumulated streaming batch as one
// pooled data message (mirrors ScanSpec.flush).
func (r *scanReg) flush(ctx core.Context, last bool) {
	if r.out.Len() == 0 && !last {
		return
	}
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = r.spec.Out, r.spec.Query, last, r.spec.Producers
	if r.out.Len() > 0 {
		msg.Batch = r.out
		if last {
			r.out = nil
		} else {
			r.out = storage.GetBatch(msg.Batch.Schema)
		}
	} else {
		storage.FreeBatch(r.out)
		r.out = nil
	}
	ctx.SendData(r.spec.To, msg)
}

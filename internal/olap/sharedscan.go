package olap

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync/atomic"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
)

// This file implements the shared analytical scan (SharedDB's "one
// cursor, many queries" applied to AnyDB's operator plane) and the
// generic query sink that terminates every planned query.
//
// A SharedScanSpec does not start a private cursor like ScanSpec does.
// It REGISTERS with the per-(table, partition) shared cursor living on
// the owning AC: the registration compiles its predicates against the
// table schema once, joins the pass at the cursor's current chunk, and
// detaches after seeing every chunk exactly once (one full circle).
// One driver continuation event advances the cursor one columnar chunk
// at a time — the chunk fetch, the event-plane hop, and the shared
// per-row scan charge are paid once per chunk regardless of how many
// registrations ride the pass; only each registration's own predicate
// evaluation and fold are per-query. Registrations carry private
// result state (a projection batch or a grouped-aggregate table), so
// detaching is just emitting it downstream.
//
// Safety under live repartitioning: queries hold a submission-plane
// registration (queryMask) from registration to completion, and a
// partition move drains that mask before the storage handoff — so no
// shared-scan registration can exist while a partition moves, and the
// driver additionally stops (and drops its continuation) the moment
// its registration list is empty.

// AggFn selects an aggregate function.
type AggFn uint8

const (
	AggCount AggFn = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("AggFn(%d)", uint8(f))
}

// AggExpr is one aggregate over a source column (empty for COUNT(*)).
type AggExpr struct {
	Fn  AggFn
	Col string
}

// SharedScanSpec registers one query with the shared cursor of a
// partition's table. Two modes:
//
//   - streaming (len(Aggs) == 0): matching rows are projected onto Cols
//     and pushed into Out in pooled batches — the shared-scan analogue
//     of ScanSpec, feeding joins or a collecting sink;
//   - aggregate pushdown (len(Aggs) > 0): matching rows fold into a
//     grouped partial-aggregate table private to the registration, and
//     one partial batch (layout: group columns, then per-aggregate
//     cells — AVG carries sum+count) is emitted when the pass
//     completes. The sink merges partials with MergePartials.
type SharedScanSpec struct {
	Query   core.QueryID
	Table   storage.TableID
	Part    int
	Filters []Predicate // AND-composed
	Cols    []string    // streaming projection
	GroupBy []string    // pushdown grouping
	Aggs    []AggExpr   // pushdown aggregates
	// DictGroups marks the grouping dictionary-eligible (planner hint:
	// no float group columns), letting the scan fold matched chunks
	// into a dense accumulator indexed by packed dictionary codes
	// instead of probing a map per row. The scan still validates per
	// chunk and falls back to the map path when chunks are not
	// dictionary-encoded or the code space outgrows the dense table.
	DictGroups bool
	Out        core.StreamID
	To         core.ACID
	Producers  int
	BatchRows  int
}

// sharedKey addresses one shared cursor.
type sharedKey struct {
	table storage.TableID
	part  int
}

// compiledPred is a Predicate with its column resolved to a vector
// index, evaluated directly against encoded columnar chunks. Before a
// chunk is scanned, prepare translates the predicate into the chunk's
// encoding domain — a dictionary code, a code bitset, or a
// frame-of-reference delta bound — so the per-row test is an integer
// compare (or nothing at all, when the chunk-level answer is all/none).
type compiledPred struct {
	col    int
	kind   PredKind
	prefix string
	str    string
	minI   int64

	// Per-chunk prepared state (prepare): mode selects the row test;
	// code / bits / lo / hi are mode-specific operands.
	mode    predMode
	code    uint32        // modeEqCode/NeCode: dict code; modeEq/NeDelta: delta
	lo, hi  uint32        // modeGEDelta / modeLTDelta thresholds
	bits    []uint64      // modeBits: per-dictionary-code predicate results
	bitsFor *storage.Dict // dictionary bits was built against
	bitsLen int           // dictionary prefix covered by bits
}

// predMode is the prepared per-chunk evaluation strategy.
type predMode uint8

const (
	modeAll       predMode = iota // every row matches
	modeNone                      // no row matches
	modeEqCode                    // Codes[i] == code (dictionary)
	modeNeCode                    // Codes[i] != code (dictionary)
	modeBits                      // bits[Codes[i]] set (dictionary)
	modeGEDelta                   // Codes[i] >= lo (frame-of-reference)
	modeLTDelta                   // Codes[i] < hi (frame-of-reference)
	modeEqDelta                   // Codes[i] == code (frame-of-reference)
	modeNeDelta                   // Codes[i] != code (frame-of-reference)
	modeRawGE                     // Ints[i] >= minI
	modeRawLT                     // Ints[i] < minI
	modeRawEq                     // Ints[i] == minI
	modeRawNe                     // Ints[i] != minI
	modeRawEqStr                  // Strs[i] == str
	modeRawPrefix                 // Strs[i] starts with prefix
)

// prepare resolves the predicate against one chunk's column encoding.
func (p *compiledPred) prepare(c *storage.EncChunk) {
	if p.kind == PredNone {
		p.mode = modeAll
		return
	}
	v := &c.Cols[p.col]
	switch v.Enc {
	case storage.EncDict:
		p.prepareDict(v.Dict)
	case storage.EncFoR:
		p.prepareFoR(v.Ref)
	default:
		switch p.kind {
		case PredGEInt:
			p.mode = modeRawGE
		case PredLTInt:
			p.mode = modeRawLT
		case PredEqInt:
			p.mode = modeRawEq
		case PredNeInt:
			p.mode = modeRawNe
		case PredEqStr:
			p.mode = modeRawEqStr
		case PredPrefix:
			p.mode = modeRawPrefix
		default:
			panic("olap: unknown predicate kind")
		}
	}
}

// prepareDict compiles the predicate to dictionary-code membership:
// equality is one dictionary lookup (a miss means no chunk row can
// match), and prefix/range predicates become a bitset over the
// dictionary's codes — built once and extended incrementally as the
// dictionary grows, so a whole pass pays O(dict) once, not O(rows).
func (p *compiledPred) prepareDict(d *storage.Dict) {
	switch p.kind {
	case PredEqStr:
		if code, ok := d.LookupStr(p.str); ok {
			p.code, p.mode = code, modeEqCode
		} else {
			p.mode = modeNone
		}
	case PredEqInt:
		if code, ok := d.LookupInt(p.minI); ok {
			p.code, p.mode = code, modeEqCode
		} else {
			p.mode = modeNone
		}
	case PredNeInt:
		if code, ok := d.LookupInt(p.minI); ok {
			p.code, p.mode = code, modeNeCode
		} else {
			p.mode = modeAll
		}
	default: // PredPrefix, PredGEInt, PredLTInt
		p.extendBits(d)
		p.mode = modeBits
	}
}

// extendBits (re)builds the per-code predicate bitset for dictionary d,
// evaluating only codes assigned since the last call.
func (p *compiledPred) extendBits(d *storage.Dict) {
	n := d.Len()
	if p.bitsFor != d {
		p.bitsFor, p.bitsLen = d, 0
		p.bits = p.bits[:0]
	}
	for len(p.bits)*64 < n {
		p.bits = append(p.bits, 0)
	}
	for code := p.bitsLen; code < n; code++ {
		var ok bool
		switch p.kind {
		case PredPrefix:
			s := d.DecodeStr(uint32(code))
			ok = len(s) >= len(p.prefix) && s[:len(p.prefix)] == p.prefix
		case PredGEInt:
			ok = d.DecodeInt(uint32(code)) >= p.minI
		case PredLTInt:
			ok = d.DecodeInt(uint32(code)) < p.minI
		}
		if ok {
			p.bits[code>>6] |= 1 << (code & 63)
		}
	}
	p.bitsLen = n
}

// prepareFoR translates an int predicate into the chunk's delta domain
// (value = Ref + delta, delta in [0, 2³²)). Out-of-domain constants
// collapse to all/none at the chunk level.
func (p *compiledPred) prepareFoR(ref int64) {
	var diff uint64
	above := p.minI > ref
	if above {
		// Exact under two's-complement wraparound for any int64 pair.
		diff = uint64(p.minI) - uint64(ref)
	}
	switch p.kind {
	case PredGEInt:
		switch {
		case !above:
			p.mode = modeAll
		case diff > math.MaxUint32:
			p.mode = modeNone
		default:
			p.lo, p.mode = uint32(diff), modeGEDelta
		}
	case PredLTInt:
		switch {
		case !above:
			p.mode = modeNone
		case diff > math.MaxUint32:
			p.mode = modeAll
		default:
			p.hi, p.mode = uint32(diff), modeLTDelta
		}
	default: // PredEqInt, PredNeInt
		out := p.minI < ref || diff > math.MaxUint32
		if p.kind == PredEqInt {
			if out {
				p.mode = modeNone
			} else {
				p.code, p.mode = uint32(diff), modeEqDelta
			}
		} else {
			if out {
				p.mode = modeAll
			} else {
				p.code, p.mode = uint32(diff), modeNeDelta
			}
		}
	}
}

// matchAt tests row i of the prepared chunk column.
func (p *compiledPred) matchAt(v *storage.EncVec, i int) bool {
	switch p.mode {
	case modeAll:
		return true
	case modeNone:
		return false
	case modeEqCode:
		return v.Codes[i] == p.code
	case modeNeCode:
		return v.Codes[i] != p.code
	case modeBits:
		c := v.Codes[i]
		return p.bits[c>>6]&(1<<(c&63)) != 0
	case modeGEDelta:
		return v.Codes[i] >= p.lo
	case modeLTDelta:
		return v.Codes[i] < p.hi
	case modeEqDelta:
		return v.Codes[i] == p.code
	case modeNeDelta:
		return v.Codes[i] != p.code
	case modeRawGE:
		return v.Ints[i] >= p.minI
	case modeRawLT:
		return v.Ints[i] < p.minI
	case modeRawEq:
		return v.Ints[i] == p.minI
	case modeRawNe:
		return v.Ints[i] != p.minI
	case modeRawEqStr:
		return v.Strs[i] == p.str
	default: // modeRawPrefix
		s := v.Strs[i]
		return len(s) >= len(p.prefix) && s[:len(p.prefix)] == p.prefix
	}
}

// compilePred resolves pred against schema, validating kinds so a
// mis-typed predicate fails at registration, not mid-chunk.
func compilePred(schema *storage.Schema, pred Predicate) compiledPred {
	cp := compiledPred{kind: pred.Kind, prefix: pred.Prefix, str: pred.Str, minI: pred.MinI}
	if pred.Kind == PredNone {
		return cp
	}
	cp.col = schema.MustCol(pred.Col)
	kind := schema.Cols[cp.col].Kind
	switch pred.Kind {
	case PredPrefix, PredEqStr:
		if kind != storage.KStr {
			panic(fmt.Sprintf("olap: string predicate on %s column %s.%s", kind, schema.Name, pred.Col))
		}
	default:
		if kind != storage.KInt {
			panic(fmt.Sprintf("olap: int predicate on %s column %s.%s", kind, schema.Name, pred.Col))
		}
	}
	return cp
}

// aggCell is one accumulator: which fields are live depends on the
// aggregate function (count for COUNT/AVG, sumI/sumF for SUM, sumF for
// AVG, cur/seen for MIN/MAX).
type aggCell struct {
	count int64
	sumI  int64
	sumF  float64
	cur   storage.Value
	seen  bool
}

func (c *aggCell) addRaw(fn AggFn, v storage.Value) {
	switch fn {
	case AggCount:
		c.count++
	case AggSum:
		if v.Kind == storage.KInt {
			c.sumI += v.I
		} else {
			c.sumF += v.F
		}
	case AggAvg:
		c.count++
		if v.Kind == storage.KInt {
			c.sumF += float64(v.I)
		} else {
			c.sumF += v.F
		}
	case AggMin:
		if !c.seen || v.Compare(c.cur) < 0 {
			c.cur, c.seen = v, true
		}
	case AggMax:
		if !c.seen || v.Compare(c.cur) > 0 {
			c.cur, c.seen = v, true
		}
	}
}

// groupAcc is one group's accumulators plus its key values (kept for
// output).
type groupAcc struct {
	keyVals []storage.Value
	cells   []aggCell
}

// appendKeyVal appends one value's canonical group-key encoding to buf
// (NUL-terminated; kinds are fixed per column so the encoding cannot
// collide across kinds). Every group-key producer — batch rows at the
// sink, encoded chunks at the scan, dense-slot migration — goes through
// this one helper, so their keys merge identically.
func appendKeyVal(buf []byte, v storage.Value) []byte {
	switch v.Kind {
	case storage.KInt:
		buf = strconv.AppendInt(buf, v.I, 10)
	case storage.KFloat:
		buf = strconv.AppendFloat(buf, v.F, 'g', -1, 64)
	default:
		buf = append(buf, v.S...)
	}
	return append(buf, 0)
}

// encodeGroupKey appends the canonical encoding of the group columns of
// batch row i to buf.
func encodeGroupKey(buf []byte, b *storage.Batch, i int, cols []int) []byte {
	for _, c := range cols {
		buf = appendKeyVal(buf, b.Value(i, c))
	}
	return buf
}

// encodeChunkKey is encodeGroupKey over an encoded chunk: values decode
// per cell, so chunks with different encodings of the same table (a
// dictionary chunk next to a raw one) produce identical keys.
func encodeChunkKey(buf []byte, c *storage.EncChunk, i int, cols []int) []byte {
	for _, col := range cols {
		buf = appendKeyVal(buf, c.Value(i, col))
	}
	return buf
}

// encodeValsKey is encodeGroupKey over already-materialized values.
func encodeValsKey(buf []byte, vals []storage.Value) []byte {
	for _, v := range vals {
		buf = appendKeyVal(buf, v)
	}
	return buf
}

// scanReg is one query's registration with a shared cursor.
type scanReg struct {
	spec  *SharedScanSpec
	preds []compiledPred
	sig   string // canonical predicate signature, for match sharing

	// Pass window: the registration joined at some chunk and detaches
	// after `total` chunks (the chunk count at attach — chunks appended
	// later belong to later passes). next is the chunk it consumes
	// next; done counts consumed chunks.
	next, done, total int

	// Streaming mode.
	outIdx []int
	out    *storage.Batch
	rowBuf storage.Row

	// Aggregate-pushdown mode.
	groupIdx []int
	aggIdx   []int // source column per aggregate; -1 for COUNT(*)
	partial  *storage.Schema
	groups   map[string]*groupAcc
	order    []string  // insertion-ordered keys, sorted at emit
	global   *groupAcc // fast path: the single group of a global aggregate

	// Dense grouped-aggregate fast path (spec.DictGroups): group codes
	// pack into one flat accumulator slot per combination — a
	// bounds-checked array index per row instead of a key encode + map
	// probe. Initialized lazily at the first dictionary-encoded chunk;
	// abandoned (state migrated into groups) if a chunk arrives with a
	// different encoding or a code outgrows the slack-padded dims.
	denseOK      bool      // hinted, enabled, and not abandoned
	denseReady   bool      // dims/strides sized, dense allocated
	dense        []aggCell // len = slots × len(Aggs)
	denseSeen    []bool
	denseTouched []int32 // touched packed slots, first-touch order
	denseDims    []int
	denseStride  []int
	denseDicts   []*storage.Dict
}

// denseSlotCap bounds the dense accumulator's group-combination space.
// Past it (high-cardinality or many-column groupings) the map path is
// the right tool anyway.
const denseSlotCap = 4096

// groupedFastPath gates the dense grouped-aggregate path globally; the
// benchmark suite flips it off to measure the map-probe baseline.
var groupedFastPath atomic.Bool

func init() { groupedFastPath.Store(true) }

// SetGroupedAggFastPath toggles the dense grouped-aggregate fast path
// for newly registered scans and returns the previous setting. On by
// default; exists so benchmarks can pin either path.
func SetGroupedAggFastPath(on bool) bool { return groupedFastPath.Swap(on) }

// matchBuf caches one predicate signature's matched rows for the chunk
// of the current step (valid while step == sharedScan.steps).
type matchBuf struct {
	rows []int32
	step uint64
}

// sharedScan is the per-(table, partition) shared cursor state, owned
// by the partition's AC.
type sharedScan struct {
	key    sharedKey
	cursor int
	regs   []*scanReg
	ev     *core.Event // the driver continuation, re-sent per chunk
	keyBuf []byte      // scratch: group-key encoding

	// Predicate evaluation is shared across registrations, not just the
	// chunk fetch: all registrations whose filters have the same
	// canonical signature reuse one matchChunk evaluation per chunk.
	// steps increments once per driven chunk (cursor positions repeat
	// across passes, so the step counter is the validity token); buffers
	// live as long as the cursor does — one busy period.
	steps    uint64
	sigMatch map[string]*matchBuf
}

// attachShared registers spec with the shared cursor, creating (and
// starting) the driver when the cursor is idle. The install event is
// recycled as the driver continuation when one is needed.
func (w *Worker) attachShared(ctx core.Context, ev *core.Event, spec *SharedScanSpec) {
	t := w.DB.Partition(spec.Part).TableByID(spec.Table)
	r := &scanReg{spec: spec}
	r.preds = make([]compiledPred, 0, len(spec.Filters))
	for _, f := range spec.Filters {
		r.preds = append(r.preds, compilePred(t.Schema, f))
	}
	r.sig = predSignature(r.preds)
	if spec.BatchRows == 0 {
		spec.BatchRows = DefaultBatchRows
	}
	if len(spec.Aggs) == 0 {
		r.outIdx = make([]int, len(spec.Cols))
		outCols := make([]storage.Column, len(spec.Cols))
		for i, c := range spec.Cols {
			r.outIdx[i] = t.Schema.MustCol(c)
			outCols[i] = t.Schema.Cols[r.outIdx[i]]
		}
		r.out = storage.GetBatch(storage.NewSchema(t.Schema.Name+"_scan", outCols...))
		r.rowBuf = make(storage.Row, len(r.outIdx))
	} else {
		r.groupIdx = colIdx(t.Schema, spec.GroupBy)
		r.aggIdx = make([]int, len(spec.Aggs))
		cols := make([]storage.Column, 0, len(spec.GroupBy)+2*len(spec.Aggs))
		for i := range spec.GroupBy {
			cols = append(cols, storage.Column{
				Name: fmt.Sprintf("g%d", i), Kind: t.Schema.Cols[r.groupIdx[i]].Kind,
			})
		}
		for j, a := range spec.Aggs {
			r.aggIdx[j] = -1
			srcKind := storage.KInt
			if a.Fn != AggCount {
				r.aggIdx[j] = t.Schema.MustCol(a.Col)
				srcKind = t.Schema.Cols[r.aggIdx[j]].Kind
			}
			switch a.Fn {
			case AggCount:
				cols = append(cols, storage.Column{Name: fmt.Sprintf("p%d", j), Kind: storage.KInt})
			case AggAvg:
				cols = append(cols,
					storage.Column{Name: fmt.Sprintf("p%d_s", j), Kind: storage.KFloat},
					storage.Column{Name: fmt.Sprintf("p%d_c", j), Kind: storage.KInt})
			default:
				cols = append(cols, storage.Column{Name: fmt.Sprintf("p%d", j), Kind: srcKind})
			}
		}
		r.partial = storage.NewSchema(t.Schema.Name+"_partial", cols...)
		r.groups = make(map[string]*groupAcc)
		r.denseOK = spec.DictGroups && len(spec.GroupBy) > 0 && groupedFastPath.Load()
	}

	r.total = t.NumColChunks()
	if r.total == 0 {
		// Empty table: the pass is already over; the install event dies.
		r.finish(ctx)
		core.FreeEvent(ev)
		return
	}

	key := sharedKey{table: spec.Table, part: spec.Part}
	ss := w.shared[key]
	if ss != nil {
		// Join the in-flight pass at the cursor's current position; the
		// install event is dead (a continuation is already circulating).
		r.next = ss.cursor
		if r.next >= r.total {
			r.next = 0
		}
		ss.regs = append(ss.regs, r)
		core.FreeEvent(ev)
		return
	}
	if w.shared == nil {
		w.shared = make(map[sharedKey]*sharedScan)
	}
	ss = &sharedScan{key: key, ev: ev}
	ss.regs = append(ss.regs, r)
	w.shared[key] = ss
	// Reuse the install event as the driver continuation.
	ev.Payload = ss
	ctx.Send(ctx.Self(), ev)
}

// step advances the shared cursor one chunk: every registration whose
// window includes the chunk evaluates its predicates over the columnar
// chunk and folds matches into its private state. Registrations that
// completed their circle detach; the driver stops when none remain.
func (ss *sharedScan) step(ctx core.Context, w *Worker) {
	if w.shared[ss.key] != ss {
		core.FreeEvent(ss.ev) // superseded or stopped: stale continuation, drop it
		return
	}
	if len(ss.regs) == 0 {
		delete(w.shared, ss.key)
		core.FreeEvent(ss.ev)
		return
	}
	t := w.DB.Partition(ss.key.part).TableByID(ss.key.table)
	m := 0
	for _, r := range ss.regs {
		if r.total > m {
			m = r.total
		}
	}
	if ss.cursor >= m {
		ss.cursor = 0
	}
	ci := ss.cursor
	costs := ctx.Costs()
	var chunk *storage.EncChunk
	for i := 0; i < len(ss.regs); {
		r := ss.regs[i]
		if r.next != ci {
			i++
			continue
		}
		if chunk == nil {
			// The chunk fetch and the per-row scan charge are shared:
			// paid once however many registrations ride this pass.
			chunk = t.ColChunk(ci)
			ctx.Charge(costs.ScanRow * sim.Time(chunk.Len()))
			ss.steps++
		}
		// Registrations with the same predicate signature share one
		// evaluation of this chunk.
		mb := ss.sigMatch[r.sig]
		if mb == nil {
			if ss.sigMatch == nil {
				ss.sigMatch = make(map[string]*matchBuf)
			}
			mb = &matchBuf{}
			ss.sigMatch[r.sig] = mb
		}
		if mb.step != ss.steps {
			mb.rows = matchChunk(chunk, r.preds, mb.rows)
			mb.step = ss.steps
		}
		if len(r.spec.Aggs) == 0 {
			r.foldStream(ctx, chunk, mb.rows)
		} else {
			ss.keyBuf = r.foldAgg(ctx, chunk, mb.rows, ss.keyBuf)
		}
		r.done++
		r.next++
		if r.next >= r.total {
			r.next = 0
		}
		if r.done >= r.total {
			r.finish(ctx)
			ss.regs = append(ss.regs[:i], ss.regs[i+1:]...)
			continue
		}
		i++
	}
	ss.cursor = ci + 1
	if len(ss.regs) == 0 {
		delete(w.shared, ss.key)
		core.FreeEvent(ss.ev)
		return
	}
	ctx.Send(ctx.Self(), ss.ev)
}

// predSignature canonically encodes a compiled predicate list so
// registrations with identical filters can share match results. Columns
// are already resolved to indexes and predicates are AND-composed in
// plan order, so a byte-equal signature means row-equal matches.
func predSignature(preds []compiledPred) string {
	if len(preds) == 0 {
		return ""
	}
	buf := make([]byte, 0, 16*len(preds))
	for i := range preds {
		p := &preds[i]
		buf = strconv.AppendInt(buf, int64(p.kind), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, int64(p.col), 10)
		buf = append(buf, ':')
		buf = strconv.AppendInt(buf, p.minI, 10)
		buf = append(buf, ':')
		buf = append(buf, p.prefix...)
		buf = append(buf, 0)
		buf = append(buf, p.str...)
		buf = append(buf, 0)
	}
	return string(buf)
}

// matchChunk returns the row indexes of chunk c passing all preds,
// reusing buf. Each predicate prepares against the chunk's encoding
// first, so chunk-level all/none answers skip row work entirely: the
// first selective predicate scans the full chunk, later ones filter the
// survivors in place.
func matchChunk(c *storage.EncChunk, preds []compiledPred, buf []int32) []int32 {
	buf = buf[:0]
	n := c.Len()
	dense := true // no selective predicate applied yet: buf is implicitly 0..n-1
	for pi := range preds {
		p := &preds[pi]
		p.prepare(c)
		switch p.mode {
		case modeAll:
			continue
		case modeNone:
			return buf[:0]
		}
		v := &c.Cols[p.col]
		if dense {
			for i := 0; i < n; i++ {
				if p.matchAt(v, i) {
					buf = append(buf, int32(i))
				}
			}
			dense = false
			continue
		}
		w := 0
		for _, m := range buf {
			if p.matchAt(v, int(m)) {
				buf[w] = m
				w++
			}
		}
		buf = buf[:w]
	}
	if dense {
		for i := 0; i < n; i++ {
			buf = append(buf, int32(i))
		}
	}
	return buf
}

// foldStream appends the matched rows, projected, to the registration's
// output batch, flushing at batch granularity.
func (r *scanReg) foldStream(ctx core.Context, chunk *storage.EncChunk, match []int32) {
	if len(match) == 0 {
		return
	}
	for _, m := range match {
		for j, c := range r.outIdx {
			r.rowBuf[j] = chunk.Value(int(m), c)
		}
		r.out.AppendRow(r.rowBuf)
		if r.out.Len() >= r.spec.BatchRows {
			r.flush(ctx, false)
		}
	}
	if !ctx.Offloaded(r.spec.To) {
		ctx.Charge(ctx.Costs().PartitionRow * sim.Time(len(match)))
	}
}

// foldAgg folds the matched rows into the registration's grouped
// accumulators, returning the (possibly grown) key scratch buffer.
func (r *scanReg) foldAgg(ctx core.Context, chunk *storage.EncChunk, match []int32, keyBuf []byte) []byte {
	if len(match) == 0 {
		return keyBuf
	}
	ctx.Charge(ctx.Costs().AggRow * sim.Time(len(match)))
	if len(r.groupIdx) == 0 {
		// Global aggregate: one accumulator, no per-row group-key encode
		// or map lookup; COUNT folds a whole chunk in O(1).
		acc := r.global
		if acc == nil {
			acc = &groupAcc{cells: make([]aggCell, len(r.spec.Aggs))}
			r.global = acc
			r.groups[""] = acc
			r.order = append(r.order, "")
		}
		for j := range acc.cells {
			if fn := r.spec.Aggs[j].Fn; fn == AggCount {
				acc.cells[j].count += int64(len(match))
			} else {
				c := r.aggIdx[j]
				for _, m := range match {
					acc.cells[j].addRaw(fn, chunk.Value(int(m), c))
				}
			}
		}
		return keyBuf
	}
	if r.denseOK {
		rest, ok := r.tryFoldDense(chunk, match)
		if ok {
			return keyBuf
		}
		// The fast path bowed out (non-dictionary chunk, dimension
		// overflow, or too many group combinations — denseOK is now
		// false): migrate what it accumulated into the map and fold the
		// remaining rows there.
		keyBuf = r.abandonDense(keyBuf)
		match = rest
	}
	for _, m := range match {
		i := int(m)
		keyBuf = encodeChunkKey(keyBuf[:0], chunk, i, r.groupIdx)
		acc := r.groups[string(keyBuf)]
		if acc == nil {
			acc = &groupAcc{cells: make([]aggCell, len(r.spec.Aggs))}
			acc.keyVals = make([]storage.Value, len(r.groupIdx))
			for j, c := range r.groupIdx {
				acc.keyVals[j] = chunk.Value(i, c)
			}
			key := string(keyBuf)
			r.groups[key] = acc
			r.order = append(r.order, key)
		}
		for j := range acc.cells {
			var v storage.Value
			if r.aggIdx[j] >= 0 {
				v = chunk.Value(i, r.aggIdx[j])
			}
			acc.cells[j].addRaw(r.spec.Aggs[j].Fn, v)
		}
	}
	return keyBuf
}

// initDense sizes the dense accumulator from the group columns'
// dictionaries, padding each dimension with slack so codes assigned
// later in the pass (the dictionary grows as dirtied chunks rebuild)
// still land in range. Reports false when a group column is not
// dictionary-encoded in this chunk or the combination space exceeds
// denseSlotCap.
func (r *scanReg) initDense(c *storage.EncChunk) bool {
	nG := len(r.groupIdx)
	dims := make([]int, nG)
	dicts := make([]*storage.Dict, nG)
	slots := 1
	for g, col := range r.groupIdx {
		v := &c.Cols[col]
		if v.Enc != storage.EncDict {
			return false
		}
		d := v.Dict
		dim := d.Len() + d.Len()/2 + 8
		dims[g], dicts[g] = dim, d
		slots *= dim
		if slots > denseSlotCap {
			return false
		}
	}
	stride := make([]int, nG)
	s := 1
	for g := 0; g < nG; g++ {
		stride[g] = s
		s *= dims[g]
	}
	r.dense = make([]aggCell, slots*len(r.spec.Aggs))
	r.denseSeen = make([]bool, slots)
	r.denseDims, r.denseStride, r.denseDicts = dims, stride, dicts
	r.denseReady = true
	return true
}

// tryFoldDense folds the matched rows into the dense accumulator.
// ok=false means the fast path just died (denseOK cleared); the
// returned slice is the unfolded tail of match, which the caller folds
// via the map path after migrating the dense state.
func (r *scanReg) tryFoldDense(c *storage.EncChunk, match []int32) ([]int32, bool) {
	if !r.denseReady && !r.initDense(c) {
		r.denseOK = false
		return match, false
	}
	for g, col := range r.groupIdx {
		v := &c.Cols[col]
		if v.Enc != storage.EncDict || v.Dict != r.denseDicts[g] {
			r.denseOK = false
			return match, false
		}
	}
	nA := len(r.spec.Aggs)
	aggs := r.spec.Aggs
	if len(r.groupIdx) == 1 && nA == 1 && aggs[0].Fn == AggCount {
		// The headline shape — GROUP BY one dictionary column, COUNT(*):
		// one bounds-checked array index per row, nothing else.
		codes := c.Cols[r.groupIdx[0]].Codes
		dim := r.denseDims[0]
		for mi, m := range match {
			code := int(codes[m])
			if code >= dim {
				r.denseOK = false
				return match[mi:], false
			}
			if !r.denseSeen[code] {
				r.denseSeen[code] = true
				r.denseTouched = append(r.denseTouched, int32(code))
			}
			r.dense[code].count++
		}
		return nil, true
	}
	for mi, m := range match {
		i := int(m)
		packed := 0
		for g, col := range r.groupIdx {
			code := int(c.Cols[col].Codes[i])
			if code >= r.denseDims[g] {
				r.denseOK = false
				return match[mi:], false
			}
			packed += code * r.denseStride[g]
		}
		if !r.denseSeen[packed] {
			r.denseSeen[packed] = true
			r.denseTouched = append(r.denseTouched, int32(packed))
		}
		cells := r.dense[packed*nA : packed*nA+nA]
		for j := range cells {
			var v storage.Value
			if r.aggIdx[j] >= 0 {
				v = c.Value(i, r.aggIdx[j])
			}
			cells[j].addRaw(aggs[j].Fn, v)
		}
	}
	return nil, true
}

// denseKey decodes a packed slot back into its group values.
func (r *scanReg) denseKey(packed int) []storage.Value {
	vals := make([]storage.Value, len(r.groupIdx))
	for g := len(r.groupIdx) - 1; g >= 0; g-- {
		code := packed / r.denseStride[g]
		packed -= code * r.denseStride[g]
		vals[g] = r.denseDicts[g].DecodeValue(uint32(code))
	}
	return vals
}

// abandonDense migrates the dense accumulator's touched slots into the
// map representation — keys encoded exactly as the map path encodes
// them, so both halves of a converted pass merge as one group set.
func (r *scanReg) abandonDense(keyBuf []byte) []byte {
	if !r.denseReady {
		return keyBuf
	}
	nA := len(r.spec.Aggs)
	for _, packed := range r.denseTouched {
		p := int(packed)
		acc := &groupAcc{
			keyVals: r.denseKey(p),
			cells:   make([]aggCell, nA),
		}
		copy(acc.cells, r.dense[p*nA:p*nA+nA])
		keyBuf = encodeValsKey(keyBuf[:0], acc.keyVals)
		key := string(keyBuf)
		r.groups[key] = acc
		r.order = append(r.order, key)
	}
	r.dense, r.denseSeen, r.denseTouched = nil, nil, nil
	r.denseReady = false
	return keyBuf
}

// finish detaches the registration: streaming mode flushes the tail
// batch with the Last marker; pushdown mode emits the partial-aggregate
// batch (group-key-sorted for determinism) and Last.
func (r *scanReg) finish(ctx core.Context) {
	if len(r.spec.Aggs) == 0 {
		r.flush(ctx, true)
		return
	}
	var b *storage.Batch
	nA := len(r.spec.Aggs)
	switch {
	case r.denseReady && len(r.denseTouched) > 0:
		// Dense fast path: decode packed group codes back to values once
		// per touched group, in packed-code order (content-deterministic;
		// the sink re-sorts groups by encoded key before finalizing).
		sort.Slice(r.denseTouched, func(a, b int) bool { return r.denseTouched[a] < r.denseTouched[b] })
		b = storage.GetBatch(r.partial)
		row := make(storage.Row, 0, r.partial.NumCols())
		for _, packed := range r.denseTouched {
			p := int(packed)
			row = r.appendPartialRow(row[:0], r.denseKey(p), r.dense[p*nA:p*nA+nA])
			b.AppendRow(row)
		}
	case len(r.order) > 0:
		sort.Strings(r.order)
		b = storage.GetBatch(r.partial)
		row := make(storage.Row, 0, r.partial.NumCols())
		for _, k := range r.order {
			acc := r.groups[k]
			row = r.appendPartialRow(row[:0], acc.keyVals, acc.cells)
			b.AppendRow(row)
		}
	}
	r.groups, r.order, r.global = nil, nil, nil
	r.dense, r.denseSeen, r.denseTouched, r.denseReady = nil, nil, nil, false
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = r.spec.Out, r.spec.Query, true, r.spec.Producers
	msg.Batch = b
	ctx.SendData(r.spec.To, msg)
}

// appendPartialRow appends one group's partial-layout cells (group
// values, then per-aggregate accumulator columns) to row.
func (r *scanReg) appendPartialRow(row storage.Row, keyVals []storage.Value, cells []aggCell) storage.Row {
	row = append(row, keyVals...)
	for j := range cells {
		cell := &cells[j]
		switch r.spec.Aggs[j].Fn {
		case AggCount:
			row = append(row, storage.Int(cell.count))
		case AggSum:
			if r.partial.Cols[len(keyVals)+partialWidth(r.spec.Aggs[:j])].Kind == storage.KInt {
				row = append(row, storage.Int(cell.sumI))
			} else {
				row = append(row, storage.Float(cell.sumF))
			}
		case AggAvg:
			row = append(row, storage.Float(cell.sumF), storage.Int(cell.count))
		default: // min/max
			row = append(row, cell.cur)
		}
	}
	return row
}

// partialWidth returns how many partial-layout columns the given
// aggregate prefix occupies (AVG takes two).
func partialWidth(aggs []AggExpr) int {
	n := 0
	for _, a := range aggs {
		if a.Fn == AggAvg {
			n += 2
		} else {
			n++
		}
	}
	return n
}

// flush emits the registration's accumulated streaming batch as one
// pooled data message (mirrors ScanSpec.flush).
func (r *scanReg) flush(ctx core.Context, last bool) {
	if r.out.Len() == 0 && !last {
		return
	}
	msg := core.GetDataMsg()
	msg.Stream, msg.Query, msg.Last, msg.Producers = r.spec.Out, r.spec.Query, last, r.spec.Producers
	if r.out.Len() > 0 {
		msg.Batch = r.out
		if last {
			r.out = nil
		} else {
			r.out = storage.GetBatch(msg.Batch.Schema)
		}
	} else {
		storage.FreeBatch(r.out)
		r.out = nil
	}
	ctx.SendData(r.spec.To, msg)
}

package olap

import (
	"testing"

	"anydb/internal/core"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// flushSink is a stub core.Context standing in for the runtime on the
// scan hot path: it plays the single consumer of the emitted stream,
// recycling each batch and envelope at their death points exactly like
// the real sinks (agg/collect/join) do.
type flushSink struct {
	costs   sim.CostModel
	resent  *core.Event
	batches int64
	rows    int64
}

func (c *flushSink) Self() core.ACID          { return 0 }
func (c *flushSink) Now() sim.Time            { return 0 }
func (c *flushSink) Charge(sim.Time)          {}
func (c *flushSink) Costs() *sim.CostModel    { return &c.costs }
func (c *flushSink) Topology() *core.Topology { return nil }
func (c *flushSink) Offloaded(core.ACID) bool { return true }
func (c *flushSink) Send(_ core.ACID, ev *core.Event) {
	c.resent = ev // the scan re-enqueueing its continuation
}
func (c *flushSink) SendData(_ core.ACID, msg *core.DataMsg) {
	if msg.Batch != nil {
		c.batches++
		c.rows += int64(msg.Batch.Len())
		storage.FreeBatch(msg.Batch)
	}
	core.FreeDataMsg(msg)
}

// BenchmarkScanFlush measures the steady-state allocation cost of the
// analytical scan's flush path: one op is one full chunked scan of a
// customer partition (several batch flushes + EOS). With the batch and
// data-message pools, flushes must show zero steady-state batch
// allocations — the scratch batch recycles through the consumer and
// back.
//
//	go test -bench ScanFlush -benchmem ./internal/olap
func BenchmarkScanFlush(b *testing.B) {
	cfg := tpcc.Config{Warehouses: 1, Districts: 2, Customers: 3000,
		Items: 10, InitOrders: 10, Seed: 7}.WithDefaults()
	db := storage.NewDatabase(cfg.Warehouses, tpcc.Schemas()...)
	tpcc.Populate(db, cfg)

	w := &Worker{DB: db}
	ctx := &flushSink{costs: sim.DefaultCosts()}
	spec := &ScanSpec{
		Query: 1, Table: tpcc.TCustomerID, Part: 0,
		Cols: []string{"c_w_id", "c_d_id", "c_id"},
		Out:  7, To: 1, Producers: 1,
	}
	// Each pass draws a fresh pooled install event, exactly as a real
	// query install does: the worker frees the event at scan completion
	// (its death point), so reusing one event across passes would be a
	// use-after-free against the pool.
	scan := func() {
		ev := core.GetEvent()
		ev.Kind, ev.Payload = core.EvInstallOp, spec
		spec.cursor = 0
		for {
			ctx.resent = nil
			w.OnEvent(ctx, nil, ev)
			if ctx.resent == nil {
				return // final flush sent; the scratch was recycled
			}
		}
	}
	// The scan's output schema, as the lazy init builds it.
	t := db.Partition(0).Table(tpcc.TCustomer)
	outCols := make([]storage.Column, len(spec.Cols))
	for i, cn := range spec.Cols {
		outCols[i] = t.Schema.Cols[t.Schema.MustCol(cn)]
	}
	scanSchema := storage.NewSchema(tpcc.TCustomer+"_scan", outCols...)

	scan() // warm: lazy spec init + pool population
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A finished scan releases its scratch; a new pass re-draws it
		// from the pool, as each new query's ScanSpec does.
		spec.batch = storage.GetBatch(scanSchema)
		scan()
	}
	b.StopTimer()
	if ctx.rows == 0 || ctx.batches == 0 {
		b.Fatalf("scan produced nothing (rows=%d batches=%d)", ctx.rows, ctx.batches)
	}
}

package olap_test

import (
	"math/rand"
	"sort"
	"testing"

	"anydb/internal/core"
	"anydb/internal/olap"
	"anydb/internal/sim"
	"anydb/internal/storage"
)

// joinRig wires one join operator on a single-AC cluster and feeds it
// hand-made batches.
type joinRig struct {
	cl   *core.SimCluster
	ac   core.ACID
	out  []storage.Row
	done bool
}

func newJoinRig(t *testing.T, semi bool) *joinRig {
	t.Helper()
	db := storage.NewDatabase(1,
		storage.NewSchema("t", storage.Column{Name: "x", Kind: storage.KInt}))
	topo := core.NewTopology(db)
	ids := topo.AddServer(2)
	r := &joinRig{ac: ids[0]}
	r.cl = core.NewSimCluster(topo, sim.DefaultCosts(), func(ac *core.AC) {
		ac.Register(core.EvInstallOp, &olap.Worker{DB: db})
	})
	r.cl.SetClient(func(_ sim.Time, ev *core.Event) {
		if res, ok := ev.Payload.(*olap.QueryResult); ok {
			r.out = res.Collected
			r.done = true
		}
	})
	spec := &olap.JoinSpec{
		Query: 1,
		Build: 1, BuildKey: []string{"bk"},
		Probe: 2, ProbeKey: []string{"pk"},
		Semi: semi,
		Out:  3, To: ids[0], Producers: 1,
		Notify: core.NoAC, Label: "j",
	}
	r.cl.Inject(ids[0], &core.Event{Kind: core.EvInstallOp, Query: 1, Payload: spec}, 0)
	return r
}

func intBatch(name, col string, vals []int64, base int) *storage.Batch {
	b := storage.NewBatch(storage.NewSchema(name,
		storage.Column{Name: col, Kind: storage.KInt},
		storage.Column{Name: col + "_tag", Kind: storage.KInt}))
	for i, v := range vals {
		b.AppendValues(storage.Int(v), storage.Int(int64(base+i)))
	}
	return b
}

// TestJoinMatchesNestedLoopReference drives random build/probe multisets
// through the streamed hash join and compares against a nested loop.
func TestJoinMatchesNestedLoopReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		nb, np := rng.Intn(30), rng.Intn(40)
		build := make([]int64, nb)
		probe := make([]int64, np)
		for i := range build {
			build[i] = int64(rng.Intn(8))
		}
		for i := range probe {
			probe[i] = int64(rng.Intn(8))
		}
		semi := rng.Intn(2) == 0

		r := newJoinRig(t, semi)
		// Split build/probe into several batches to exercise chunking.
		sendChunks := func(stream core.StreamID, col string, vals []int64, at sim.Time) {
			if len(vals) == 0 {
				r.cl.InjectData(r.ac, &core.DataMsg{Stream: stream, Last: true, Producers: 1}, at)
				return
			}
			for i := 0; i < len(vals); i += 7 {
				end := i + 7
				if end > len(vals) {
					end = len(vals)
				}
				r.cl.InjectData(r.ac, &core.DataMsg{
					Stream: stream,
					Batch:  intBatch("b", col, vals[i:end], i),
					Last:   end == len(vals), Producers: 1,
				}, at+sim.Time(i))
			}
		}
		sendChunks(1, "bk", build, 10)
		sendChunks(2, "pk", probe, 5) // probe partly beamed before build done
		// A collector on the join output.
		r.cl.Inject(r.ac, &core.Event{Kind: core.EvInstallOp, Query: 1, Payload: &olap.CollectSpec{
			Query: 1, In: 3, Cols: outCols(semi), Notify: core.ClientAC,
		}}, 0)
		r.cl.Run()
		if !r.done {
			t.Fatalf("trial %d: join never completed", trial)
		}

		// Reference.
		var want []int64 // probe tags of emitted rows (with multiplicity)
		bset := make(map[int64]int)
		for _, b := range build {
			bset[b]++
		}
		for i, p := range probe {
			if cnt := bset[p]; cnt > 0 {
				if semi {
					want = append(want, int64(i))
				} else {
					for k := 0; k < cnt; k++ {
						want = append(want, int64(i))
					}
				}
			}
		}
		var got []int64
		for _, row := range r.out {
			got = append(got, row[0].I)
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("trial %d (semi=%v): %d rows, want %d", trial, semi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: tag mismatch at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

// outCols picks the probe tag column in the join output schema: for semi
// joins the output is the probe row; for inner joins the probe columns
// keep their names unless they collide (they don't here: bk vs pk).
func outCols(bool) []string { return []string{"pk_tag"} }

package tpcc

import (
	"fmt"

	"anydb/internal/storage"
)

// Verify checks the TPC-C consistency conditions that the reproduced
// transactions must preserve (TPC-C §3.3.2). It is the cross-engine
// correctness oracle: after running any workload on any engine
// (AnyDB in every routing mode, or the DBx1000 baseline), these must
// hold. Returns the first violation found, or nil.
//
// Checked conditions:
//  1. W_YTD = 300000 + sum of payment amounts at that warehouse.
//     (Equivalently W_YTD = sum of D_YTD of its districts.)
//  2. For every district: d_next_o_id - 1 = max(o_id) = max(ol_o_id).
//  3. For every district: customer balance bookkeeping — for each
//     customer, c_balance = initial(-10) - sum(h_amount) is relaxed to
//     the aggregate form sum(c_balance) + sum(c_ytd_payment) is constant,
//     since payments move amount between the two fields.
//  4. Every open order (new_order row) has a matching orders row.
type Checked struct {
	Warehouses int
	Payments   int64 // history rows found
	Orders     int64
}

// Verify runs the consistency conditions over db.
func Verify(db *storage.Database, cfg Config) (Checked, error) {
	cfg = cfg.WithDefaults()
	var out Checked
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		wt := p.Table(TWarehouse)
		wRow, ok := wt.Get(WarehouseKey(w))
		if !ok {
			return out, fmt.Errorf("warehouse %d missing", w)
		}
		wYTD := wRow[wt.Schema.MustCol("w_ytd")].F

		// Condition 1: W_YTD = sum(D_YTD).
		dt := p.Table(TDistrict)
		var dSum float64
		dYTDCol := dt.Schema.MustCol("d_ytd")
		dNextCol := dt.Schema.MustCol("d_next_o_id")
		nextOID := make(map[int]int64)
		dt.Scan(func(_ int32, r storage.Row) bool {
			dSum += r[dYTDCol].F
			nextOID[int(r[dt.Schema.MustCol("d_id")].I)] = r[dNextCol].I
			return true
		})
		if !approxEq(wYTD, dSum) {
			return out, fmt.Errorf("warehouse %d: w_ytd %.2f != sum(d_ytd) %.2f", w, wYTD, dSum)
		}

		// Condition 2: d_next_o_id-1 = max(o_id) per district.
		ot := p.Table(TOrders)
		oDCol := ot.Schema.MustCol("o_d_id")
		oIDCol := ot.Schema.MustCol("o_id")
		maxO := make(map[int]int64)
		ot.Scan(func(_ int32, r storage.Row) bool {
			out.Orders++
			d := int(r[oDCol].I)
			if r[oIDCol].I > maxO[d] {
				maxO[d] = r[oIDCol].I
			}
			return true
		})
		for d, next := range nextOID {
			if maxO[d] != next-1 {
				return out, fmt.Errorf("warehouse %d district %d: d_next_o_id %d but max(o_id) %d",
					w, d, next, maxO[d])
			}
		}

		// Condition 3: per-customer balance bookkeeping. Payments do
		// c_balance -= amount; c_ytd_payment += amount, so the sum is
		// invariant at initial -10 + 10 = 0 per customer.
		ct := p.Table(TCustomer)
		balCol := ct.Schema.MustCol("c_balance")
		ytdCol := ct.Schema.MustCol("c_ytd_payment")
		var violation error
		ct.Scan(func(_ int32, r storage.Row) bool {
			if !approxEq(r[balCol].F+r[ytdCol].F, 0) {
				violation = fmt.Errorf("warehouse %d customer %d/%d: balance %.2f + ytd %.2f != 0",
					w, r[ct.Schema.MustCol("c_d_id")].I, r[ct.Schema.MustCol("c_id")].I,
					r[balCol].F, r[ytdCol].F)
				return false
			}
			return true
		})
		if violation != nil {
			return out, violation
		}

		// Condition 4: every new_order refers to an existing order.
		not := p.Table(TNewOrder)
		noD := not.Schema.MustCol("no_d_id")
		noO := not.Schema.MustCol("no_o_id")
		not.Scan(func(_ int32, r storage.Row) bool {
			if _, ok := ot.Lookup(OrderKey(w, int(r[noD].I), r[noO].I)); !ok {
				violation = fmt.Errorf("warehouse %d: new_order (%d,%d) without orders row",
					w, r[noD].I, r[noO].I)
				return false
			}
			return true
		})
		if violation != nil {
			return out, violation
		}

		out.Payments += int64(p.Table(THistory).Rows())
	}
	out.Warehouses = cfg.Warehouses
	return out, nil
}

// approxEq compares floats with a tolerance that absorbs accumulation
// error over millions of additions.
func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= 1e-6*scale+1e-4
}

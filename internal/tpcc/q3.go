package tpcc

import "anydb/internal/storage"

// The CH-benCHmark-style query of the paper's §4 experiment (based on
// CH-benCHmark Q3 [3]): "report all open orders for all customers from
// states beginning with 'A' since 2007" — three filtered scans (customer,
// orders, new_order) and two joins.

// Q3StatePrefix filters customers by state prefix (≈1/26 selectivity with
// uniform first letters).
const Q3StatePrefix = "A"

// Q3SinceYear filters orders by entry year (13 of 20 populated years
// qualify, ≈65% selectivity).
const Q3SinceYear = 2007

// ReferenceQ3 evaluates the query sequentially against the database — the
// correctness oracle every engine's result is compared to (tests only; it
// bypasses all execution machinery).
func ReferenceQ3(db *storage.Database, cfg Config) int64 {
	cfg = cfg.WithDefaults()
	cust := make(map[storage.Key]bool)
	ord := make(map[storage.Key]bool)
	var count int64
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		ct := p.Table(TCustomer)
		wc, dc, cc := ct.Schema.MustCol("c_w_id"), ct.Schema.MustCol("c_d_id"), ct.Schema.MustCol("c_id")
		sc := ct.Schema.MustCol("c_state")
		ct.Scan(func(_ int32, r storage.Row) bool {
			if len(r[sc].S) > 0 && r[sc].S[:1] == Q3StatePrefix {
				cust[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[cc].I)] = true
			}
			return true
		})
	}
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		ot := p.Table(TOrders)
		wc, dc, oc := ot.Schema.MustCol("o_w_id"), ot.Schema.MustCol("o_d_id"), ot.Schema.MustCol("o_id")
		ccol, yc := ot.Schema.MustCol("o_c_id"), ot.Schema.MustCol("o_entry_d")
		ot.Scan(func(_ int32, r storage.Row) bool {
			if r[yc].I >= Q3SinceYear &&
				cust[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[ccol].I)] {
				ord[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[oc].I)] = true
			}
			return true
		})
	}
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		nt := p.Table(TNewOrder)
		wc, dc, oc := nt.Schema.MustCol("no_w_id"), nt.Schema.MustCol("no_d_id"), nt.Schema.MustCol("no_o_id")
		nt.Scan(func(_ int32, r storage.Row) bool {
			if ord[storage.MakeKey(int(r[wc].I), int(r[dc].I), r[oc].I)] {
				count++
			}
			return true
		})
	}
	return count
}

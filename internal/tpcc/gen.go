package tpcc

import (
	"fmt"
	"math/rand"
	"strings"

	"anydb/internal/storage"
)

// Config scales the generated database. Zero fields take TPC-C-flavoured
// defaults via WithDefaults; tests use much smaller scales.
type Config struct {
	Warehouses int
	Districts  int // per warehouse (TPC-C: 10)
	Customers  int // per district (TPC-C: 3000)
	Items      int // catalog size (TPC-C: 100000)
	InitOrders int // initial orders per district (TPC-C: 3000)
	// OpenFrac is the fraction of initial orders that are still open
	// (have a new_order row). TPC-C seeds the last 30%.
	OpenFrac float64
	// DataPad is the size of the customer filler column in bytes,
	// keeping scanned/beamed row volumes realistic.
	DataPad int
	// LinesPerOrder fixes the initial order-line count per order;
	// 0 draws the TPC-C 5..15 uniformly. OLAP-heavy configs that never
	// read order_line set 1 to keep population cheap.
	LinesPerOrder int
	Seed          int64
}

// WithDefaults fills zero fields with reduced-scale defaults suitable for
// simulation (full TPC-C scale only changes constants, not shapes).
func (c Config) WithDefaults() Config {
	if c.Warehouses == 0 {
		c.Warehouses = 4
	}
	if c.Districts == 0 {
		c.Districts = 10
	}
	if c.Customers == 0 {
		c.Customers = 600
	}
	if c.Items == 0 {
		c.Items = 2000
	}
	if c.InitOrders == 0 {
		c.InitOrders = 600
	}
	if c.OpenFrac == 0 {
		c.OpenFrac = 0.30
	}
	if c.DataPad == 0 {
		c.DataPad = 64
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// lastSyllables are the TPC-C §4.3.2.3 last-name syllables; a last name
// is the concatenation of the syllables of a number's three digits.
var lastSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName renders number 0..999 as a TPC-C last name.
func LastName(num int) string {
	return lastSyllables[num/100] + lastSyllables[(num/10)%10] + lastSyllables[num%10]
}

// LastNameNum inverts LastName; it returns -1 for non-TPC-C names.
func LastNameNum(name string) int {
	for a := 0; a < 10; a++ {
		if !strings.HasPrefix(name, lastSyllables[a]) {
			continue
		}
		rest := name[len(lastSyllables[a]):]
		for b := 0; b < 10; b++ {
			if !strings.HasPrefix(rest, lastSyllables[b]) {
				continue
			}
			tail := rest[len(lastSyllables[b]):]
			for c := 0; c < 10; c++ {
				if tail == lastSyllables[c] {
					return a*100 + b*10 + c
				}
			}
		}
	}
	return -1
}

// nuRand is TPC-C §2.1.6 non-uniform random: used for customer and item
// selection.
func nuRand(rng *rand.Rand, a, x, y, c int) int {
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// states: two-letter codes with uniform first letter, so LIKE 'A%'
// selects ≈1/26 of customers (the CH query's filter).
func randState(rng *rand.Rand) string {
	return string([]byte{byte('A' + rng.Intn(26)), byte('A' + rng.Intn(26))})
}

// Years for o_entry_d: uniform 2000..2019, so the CH query's "since 2007"
// keeps 13/20 = 65% of orders.
const (
	minOrderYear = 2000
	maxOrderYear = 2019
)

// Populate fills db (one partition per warehouse) with a deterministic
// TPC-C dataset according to cfg. The customer by-last-name index is
// created on every partition.
func Populate(db *storage.Database, cfg Config) {
	cfg = cfg.WithDefaults()
	if db.NumPartitions() < cfg.Warehouses {
		panic(fmt.Sprintf("tpcc: need %d partitions, have %d", cfg.Warehouses, db.NumPartitions()))
	}
	pad := strings.Repeat("x", cfg.DataPad)
	setRowHints(db.Catalog, cfg)
	for w := 0; w < cfg.Warehouses; w++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
		p := db.Partition(w)
		reserveTables(p, db.Catalog)

		wt := p.Table(TWarehouse)
		// TPC-C seeds w_ytd = 300000 with 10 districts at 30000 each;
		// scale with the configured district count so the §3.3.2.1
		// consistency condition (w_ytd = sum of d_ytd) holds at any
		// scale.
		wt.Insert(WarehouseKey(w), storage.Row{
			storage.Int(int64(w)), storage.Str(fmt.Sprintf("W%03d", w)),
			storage.Str(randState(rng)), storage.Float(0.1),
			storage.Float(30000 * float64(cfg.Districts)),
		})

		items := p.Table(TItem)
		stock := p.Table(TStock)
		for i := 0; i < cfg.Items; i++ {
			items.Insert(ItemKey(i), storage.Row{
				storage.Int(int64(i)), storage.Str(fmt.Sprintf("item-%05d", i)),
				storage.Float(1 + float64(rng.Intn(9999))/100),
			})
			stock.Insert(StockKey(w, i), storage.Row{
				storage.Int(int64(w)), storage.Int(int64(i)),
				storage.Int(int64(10 + rng.Intn(91))), storage.Int(0),
				storage.Int(0), storage.Int(0),
			})
		}

		dt := p.Table(TDistrict)
		ct := p.Table(TCustomer)
		ot := p.Table(TOrders)
		not := p.Table(TNewOrder)
		olt := p.Table(TOrderLine)
		for d := 1; d <= cfg.Districts; d++ {
			dt.Insert(DistrictKey(w, d), storage.Row{
				storage.Int(int64(w)), storage.Int(int64(d)),
				storage.Str(fmt.Sprintf("D%02d", d)), storage.Float(0.05),
				storage.Float(30000), storage.Int(int64(cfg.InitOrders + 1)),
			})
			for c := 1; c <= cfg.Customers; c++ {
				// TPC-C: first 1000 customers cycle through all
				// last names; beyond that use NURand.
				lastNum := c - 1
				if lastNum >= 1000 {
					lastNum = nuRand(rng, 255, 0, 999, 173)
				}
				ct.Insert(CustomerKey(w, d, c), storage.Row{
					storage.Int(int64(w)), storage.Int(int64(d)), storage.Int(int64(c)),
					storage.Str(fmt.Sprintf("first-%04d", c)), storage.Str(LastName(lastNum)),
					storage.Str(randState(rng)), storage.Str("GC"),
					storage.Float(-10), storage.Float(10), storage.Int(1),
					storage.Str(pad),
				})
			}
			// Initial orders: every customer appears once in a random
			// permutation (TPC-C §4.3.3.1).
			perm := rng.Perm(cfg.Customers)
			for o := 1; o <= cfg.InitOrders; o++ {
				cid := perm[(o-1)%cfg.Customers] + 1
				olCnt := cfg.LinesPerOrder
				if olCnt == 0 {
					olCnt = 5 + rng.Intn(11)
				}
				open := float64(o) > float64(cfg.InitOrders)*(1-cfg.OpenFrac)
				carrier := int64(1 + rng.Intn(10))
				if open {
					carrier = 0
				}
				year := int64(minOrderYear + rng.Intn(maxOrderYear-minOrderYear+1))
				ot.Insert(OrderKey(w, d, int64(o)), storage.Row{
					storage.Int(int64(w)), storage.Int(int64(d)), storage.Int(int64(o)),
					storage.Int(int64(cid)), storage.Int(year),
					storage.Int(carrier), storage.Int(int64(olCnt)),
				})
				if open {
					not.Insert(NewOrderKey(w, d, int64(o)), storage.Row{
						storage.Int(int64(w)), storage.Int(int64(d)), storage.Int(int64(o)),
					})
				}
				for l := 1; l <= olCnt; l++ {
					olt.Insert(OrderLineKey(w, d, int64(o), l), storage.Row{
						storage.Int(int64(w)), storage.Int(int64(d)), storage.Int(int64(o)),
						storage.Int(int64(l)), storage.Int(int64(rng.Intn(cfg.Items))),
						storage.Int(int64(w)), storage.Int(5),
						storage.Float(float64(rng.Intn(9999)) / 100),
					})
				}
			}
		}

		// Secondary index for payment-by-last-name range scans.
		cLast := ct.Schema.MustCol("c_last")
		cDist := ct.Schema.MustCol("c_d_id")
		cID := ct.Schema.MustCol("c_id")
		ct.AddIndex(IdxCustomerByLast, func(r storage.Row) storage.Key {
			return CustomerLastKey(LastNameNum(r[cLast].S), int(r[cDist].I), int(r[cID].I))
		}, "c_last", "c_d_id", "c_id")
	}
}

// setRowHints records per-partition cardinality hints in the catalog,
// so table heaps are reserved up front and steady-state ingest never
// growth-reallocates (ROADMAP: ingest-path memory shaping). Static
// tables hint their exact size; tables the workload appends to
// (orders, order lines, open orders, history) hint 2× their initial
// population as working headroom.
func setRowHints(cat *storage.Catalog, cfg Config) {
	lines := cfg.LinesPerOrder
	if lines == 0 {
		lines = 10 // TPC-C draws 5..15 uniformly
	}
	orders := cfg.Districts * cfg.InitOrders
	cat.SetRowHint(TWarehouse, 1)
	cat.SetRowHint(TDistrict, cfg.Districts)
	cat.SetRowHint(TCustomer, cfg.Districts*cfg.Customers)
	cat.SetRowHint(TItem, cfg.Items)
	cat.SetRowHint(TStock, cfg.Items)
	cat.SetRowHint(TOrders, 2*orders)
	cat.SetRowHint(TNewOrder, orders)
	cat.SetRowHint(TOrderLine, 2*orders*lines)
	cat.SetRowHint(THistory, 2*cfg.Districts*cfg.Customers)
}

// reserveTables applies the catalog's cardinality hints to one
// partition's tables.
func reserveTables(p *storage.Partition, cat *storage.Catalog) {
	for _, name := range cat.Tables() {
		if n := cat.RowHint(name); n > 0 && p.HasTable(name) {
			p.Table(name).Reserve(n)
		}
	}
}

// NewDatabase creates and populates a database in one call.
func NewDatabase(cfg Config) (*storage.Database, Config) {
	cfg = cfg.WithDefaults()
	db := storage.NewDatabase(cfg.Warehouses, Schemas()...)
	Populate(db, cfg)
	return db, cfg
}

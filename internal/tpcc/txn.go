package tpcc

import (
	"math/rand"
	"sync"
)

// Mix configures the transaction stream a Generator produces. The paper's
// experiments (§3) use the two dominant TPC-C transactions; skew is the
// §3.2 scenario where "100% of TPC-C payment transactions operate on one
// warehouse only".
type Mix struct {
	// PaymentFrac is the fraction of payment transactions (the rest are
	// new-order). The paper's figures 1 and 5 are payment-dominated;
	// integration tests exercise both.
	PaymentFrac float64
	// HotFrac routes this fraction of transactions to warehouse 0
	// (skew). 0 = partitionable (home warehouse uniform).
	HotFrac float64
	// RemoteFrac is TPC-C's §2.5.1.2 probability that a payment pays a
	// customer of another warehouse (15% in the spec).
	RemoteFrac float64
	// ByLastFrac is TPC-C's §2.5.1.2 probability that the customer is
	// selected by last name (60%) instead of id.
	ByLastFrac float64
	// InvalidItemFrac is TPC-C's §2.4.1.4 probability that a new-order
	// contains an unused item id and must roll back (1%).
	InvalidItemFrac float64
}

// Partitionable returns the uniform TPC-C mix.
func Partitionable() Mix {
	return Mix{PaymentFrac: 1.0, HotFrac: 0, RemoteFrac: 0.15, ByLastFrac: 0.60, InvalidItemFrac: 0.01}
}

// Skewed returns the §3.2 contended mix: every payment hits warehouse 0.
func Skewed() Mix {
	m := Partitionable()
	m.HotFrac = 1.0
	m.RemoteFrac = 0 // all traffic is local to the hot warehouse
	return m
}

// MixedOLTP returns a payment/new-order blend (used by integration tests
// and the ablation benches).
func MixedOLTP() Mix {
	m := Partitionable()
	m.PaymentFrac = 0.5
	return m
}

// TxnKind discriminates generated transactions.
type TxnKind uint8

const (
	TxnPayment TxnKind = iota
	TxnNewOrder
)

// Payment carries the parameters of one payment transaction
// (TPC-C §2.5).
type Payment struct {
	W, D   int // home warehouse/district (paying district)
	CW, CD int // customer's warehouse/district (≠ home for remote)
	C      int // customer id, when ByLast is false
	ByLast bool
	Last   int // last-name number 0..999, when ByLast is true
	Amount float64
}

// NewOrderLine is one line of a new-order transaction.
type NewOrderLine struct {
	Item    int
	SupplyW int
	Qty     int
}

// NewOrder carries the parameters of one new-order transaction
// (TPC-C §2.4). Invalid item ids (< 0) trigger the 1% rollback case.
type NewOrder struct {
	W, D  int
	C     int
	Lines []NewOrderLine
}

// Txn is one generated transaction.
type Txn struct {
	Kind     TxnKind
	Payment  Payment
	NewOrder NewOrder
	// pooled marks txns issued by GetTxn: the consumer-side FreeTxn
	// recycles only those, so harnesses that inject (and retain) their
	// own Txn values are never mutated behind their back.
	pooled bool
}

// HomeWarehouse returns the partition the transaction starts at.
func (t Txn) HomeWarehouse() int {
	if t.Kind == TxnPayment {
		return t.Payment.W
	}
	return t.NewOrder.W
}

// txnPool recycles Txns across submissions: the client builds one per
// call and the dispatcher consumes it while compiling the op program,
// a clean single-consumer lifecycle (mirroring the event-plane pools),
// so the steady-state submission path stops allocating it.
var txnPool = sync.Pool{New: func() any { return new(Txn) }}

// GetTxn returns a zeroed Txn from the pool. Pair with FreeTxn at the
// point the transaction's parameters are provably dead (the dispatcher
// frees it once the op program is compiled).
func GetTxn() *Txn {
	t := txnPool.Get().(*Txn)
	t.pooled = true
	return t
}

// FreeTxn recycles t if it came from GetTxn and is a no-op otherwise,
// so the consumer (the dispatcher) can call it unconditionally while
// harness-owned Txn values stay untouched. The op program hands
// NewOrder.Lines off to the compiled InsertOrder operation, which
// outlives the txn — the reference is dropped, never reused. Frees are
// optional; txns that miss theirs fall back to the GC.
func FreeTxn(t *Txn) {
	if !t.pooled {
		return
	}
	t.Kind = 0
	t.Payment = Payment{}
	t.NewOrder = NewOrder{}
	t.pooled = false
	txnPool.Put(t)
}

// Generator produces a deterministic stream of transactions.
type Generator struct {
	cfg Config
	mix Mix
	rng *rand.Rand
}

// NewGenerator returns a generator over the database described by cfg.
func NewGenerator(cfg Config, mix Mix, seed int64) *Generator {
	return &Generator{cfg: cfg.WithDefaults(), mix: mix, rng: rand.New(rand.NewSource(seed))}
}

// SetMix swaps the workload mix (phase changes in the evolving-workload
// experiment).
func (g *Generator) SetMix(mix Mix) { g.mix = mix }

// Mix returns the current mix.
func (g *Generator) Mix() Mix { return g.mix }

// homeW picks the home warehouse under the current skew.
func (g *Generator) homeW() int {
	if g.rng.Float64() < g.mix.HotFrac {
		return 0
	}
	return g.rng.Intn(g.cfg.Warehouses)
}

// Next generates one transaction.
func (g *Generator) Next() Txn {
	var t Txn
	g.NextInto(&t)
	return t
}

// NextInto generates one transaction into t (usually a pooled Txn from
// GetTxn), drawing exactly the same random sequence as Next so pooled
// and value-based harnesses stay deterministic twins.
func (g *Generator) NextInto(t *Txn) {
	if g.rng.Float64() < g.mix.PaymentFrac {
		t.Kind, t.Payment = TxnPayment, g.payment()
		t.NewOrder = NewOrder{}
		return
	}
	t.Kind, t.Payment = TxnNewOrder, Payment{}
	t.NewOrder = g.newOrder()
}

func (g *Generator) payment() Payment {
	w := g.homeW()
	d := 1 + g.rng.Intn(g.cfg.Districts)
	p := Payment{
		W: w, D: d, CW: w, CD: d,
		Amount: 1 + float64(g.rng.Intn(499999))/100,
	}
	if g.rng.Float64() < g.mix.RemoteFrac && g.cfg.Warehouses > 1 {
		for {
			p.CW = g.rng.Intn(g.cfg.Warehouses)
			if p.CW != w {
				break
			}
		}
		p.CD = 1 + g.rng.Intn(g.cfg.Districts)
	}
	if g.rng.Float64() < g.mix.ByLastFrac {
		p.ByLast = true
		p.Last = g.lastNum()
	} else {
		p.C = g.customerID()
	}
	return p
}

// lastNum picks a last-name number that exists at the configured scale:
// TPC-C uses NURand(255,0,999), valid when ≥1000 customers per district;
// smaller test scales draw from the populated range.
func (g *Generator) lastNum() int {
	if g.cfg.Customers >= 1000 {
		return nuRand(g.rng, 255, 0, 999, 173)
	}
	return g.rng.Intn(g.cfg.Customers)
}

func (g *Generator) customerID() int {
	if g.cfg.Customers >= 3000 {
		return nuRand(g.rng, 1023, 1, g.cfg.Customers, 259)
	}
	return 1 + g.rng.Intn(g.cfg.Customers)
}

func (g *Generator) newOrder() NewOrder {
	w := g.homeW()
	no := NewOrder{
		W: w,
		D: 1 + g.rng.Intn(g.cfg.Districts),
		C: g.customerID(),
	}
	n := 5 + g.rng.Intn(11)
	rollback := g.rng.Float64() < g.mix.InvalidItemFrac
	for i := 0; i < n; i++ {
		line := NewOrderLine{
			Item:    g.itemID(),
			SupplyW: w,
			Qty:     1 + g.rng.Intn(10),
		}
		// TPC-C: 1% of lines source from a remote warehouse.
		if g.cfg.Warehouses > 1 && g.rng.Float64() < 0.01 {
			for {
				line.SupplyW = g.rng.Intn(g.cfg.Warehouses)
				if line.SupplyW != w {
					break
				}
			}
		}
		if rollback && i == n-1 {
			line.Item = -1 // unused item: §2.4.1.4 rollback trigger
		}
		no.Lines = append(no.Lines, line)
	}
	return no
}

func (g *Generator) itemID() int {
	if g.cfg.Items >= 100000 {
		return nuRand(g.rng, 8191, 0, g.cfg.Items-1, 7911)
	}
	return g.rng.Intn(g.cfg.Items)
}

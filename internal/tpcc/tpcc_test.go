package tpcc

import (
	"testing"

	"anydb/internal/storage"
)

func smallCfg() Config {
	return Config{Warehouses: 2, Districts: 2, Customers: 30,
		Items: 50, InitOrders: 20, Seed: 7}.WithDefaults()
}

func TestLastNameRoundTrip(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %q", LastName(371))
	}
	for n := 0; n < 1000; n++ {
		if got := LastNameNum(LastName(n)); got != n {
			t.Fatalf("round trip %d -> %q -> %d", n, LastName(n), got)
		}
	}
	if LastNameNum("NOTANAME") != -1 {
		t.Fatal("invalid name did not return -1")
	}
}

func TestPopulateShape(t *testing.T) {
	cfg := smallCfg()
	db, _ := NewDatabase(cfg)
	for w := 0; w < cfg.Warehouses; w++ {
		p := db.Partition(w)
		if p.Table(TWarehouse).Rows() != 1 {
			t.Fatalf("warehouse %d: %d warehouse rows", w, p.Table(TWarehouse).Rows())
		}
		if got := p.Table(TDistrict).Rows(); got != cfg.Districts {
			t.Fatalf("districts = %d, want %d", got, cfg.Districts)
		}
		if got := p.Table(TCustomer).Rows(); got != cfg.Districts*cfg.Customers {
			t.Fatalf("customers = %d, want %d", got, cfg.Districts*cfg.Customers)
		}
		if got := p.Table(TOrders).Rows(); got != cfg.Districts*cfg.InitOrders {
			t.Fatalf("orders = %d, want %d", got, cfg.Districts*cfg.InitOrders)
		}
		wantOpen := int(float64(cfg.InitOrders) * cfg.OpenFrac)
		if got := p.Table(TNewOrder).Rows(); got != cfg.Districts*wantOpen {
			t.Fatalf("new_orders = %d, want %d", got, cfg.Districts*wantOpen)
		}
		if p.Table(TItem).Rows() != cfg.Items || p.Table(TStock).Rows() != cfg.Items {
			t.Fatal("item/stock counts wrong")
		}
		if p.Table(TOrderLine).Rows() < cfg.Districts*cfg.InitOrders*5 {
			t.Fatal("too few order lines")
		}
	}
}

func TestPopulateDeterministic(t *testing.T) {
	cfg := smallCfg()
	db1, _ := NewDatabase(cfg)
	db2, _ := NewDatabase(cfg)
	t1 := db1.Partition(1).Table(TCustomer)
	t2 := db2.Partition(1).Table(TCustomer)
	if t1.Rows() != t2.Rows() {
		t.Fatal("row counts differ")
	}
	r1, _ := t1.Get(CustomerKey(1, 2, 5))
	r2, _ := t2.Get(CustomerKey(1, 2, 5))
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Fatalf("col %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestByLastNameIndex(t *testing.T) {
	cfg := smallCfg()
	db, _ := NewDatabase(cfg)
	ct := db.Partition(0).Table(TCustomer)
	// Customer 1 of district 1 has last name LastName(0) = BARBARBAR.
	found := 0
	var foundID int64
	ct.Range(IdxCustomerByLast, CustomerLastKey(0, 1, 0), CustomerLastKey(0, 1, 1<<30),
		func(_ int32, r storage.Row) bool {
			found++
			foundID = r[ct.Schema.MustCol("c_id")].I
			return true
		})
	if found != 1 || foundID != 1 {
		t.Fatalf("by-last range found %d rows, id %d; want 1 row id 1", found, foundID)
	}
	// District separation: district 2's BARBARBAR is a different entry.
	found = 0
	ct.Range(IdxCustomerByLast, CustomerLastKey(0, 2, 0), CustomerLastKey(0, 2, 1<<30),
		func(_ int32, r storage.Row) bool { found++; return true })
	if found != 1 {
		t.Fatalf("district 2 range = %d rows", found)
	}
}

func TestVerifyFreshDatabase(t *testing.T) {
	cfg := smallCfg()
	db, _ := NewDatabase(cfg)
	chk, err := Verify(db, cfg)
	if err != nil {
		t.Fatalf("fresh database violates consistency: %v", err)
	}
	if chk.Warehouses != cfg.Warehouses || chk.Orders == 0 {
		t.Fatalf("checked = %+v", chk)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	cfg := smallCfg()
	db, _ := NewDatabase(cfg)
	wt := db.Partition(0).Table(TWarehouse)
	slot, _ := wt.Lookup(WarehouseKey(0))
	wt.UpdateAt(slot, wt.Schema.MustCol("w_ytd"), storage.Float(1))
	if _, err := Verify(db, cfg); err == nil {
		t.Fatal("Verify accepted corrupted w_ytd")
	}
}

func TestGeneratorPartitionable(t *testing.T) {
	cfg := smallCfg()
	g := NewGenerator(cfg, Partitionable(), 1)
	seen := make(map[int]int)
	byLast, remote := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		txn := g.Next()
		if txn.Kind != TxnPayment {
			t.Fatal("partitionable mix must be all payments")
		}
		p := txn.Payment
		seen[p.W]++
		if p.ByLast {
			byLast++
			if p.Last < 0 || p.Last >= cfg.Customers {
				t.Fatalf("last num %d out of populated range", p.Last)
			}
		} else if p.C < 1 || p.C > cfg.Customers {
			t.Fatalf("customer id %d out of range", p.C)
		}
		if p.CW != p.W {
			remote++
		}
		if p.D < 1 || p.D > cfg.Districts {
			t.Fatalf("district %d out of range", p.D)
		}
	}
	for w := 0; w < cfg.Warehouses; w++ {
		if f := float64(seen[w]) / n; f < 0.4 || f > 0.6 {
			t.Fatalf("warehouse %d share = %.2f, want ≈0.5", w, f)
		}
	}
	if f := float64(byLast) / n; f < 0.55 || f > 0.65 {
		t.Fatalf("by-last fraction = %.2f, want ≈0.60", f)
	}
	if f := float64(remote) / n; f < 0.10 || f > 0.20 {
		t.Fatalf("remote fraction = %.2f, want ≈0.15", f)
	}
}

func TestGeneratorSkewed(t *testing.T) {
	g := NewGenerator(smallCfg(), Skewed(), 1)
	for i := 0; i < 1000; i++ {
		txn := g.Next()
		if txn.Payment.W != 0 || txn.Payment.CW != 0 {
			t.Fatal("skewed mix produced non-hot-warehouse payment")
		}
	}
}

func TestGeneratorNewOrder(t *testing.T) {
	cfg := smallCfg()
	m := MixedOLTP()
	m.PaymentFrac = 0 // all new-order
	g := NewGenerator(cfg, m, 3)
	rollbacks := 0
	const n = 3000
	for i := 0; i < n; i++ {
		txn := g.Next()
		if txn.Kind != TxnNewOrder {
			t.Fatal("expected new-order")
		}
		no := txn.NewOrder
		if len(no.Lines) < 5 || len(no.Lines) > 15 {
			t.Fatalf("line count %d out of [5,15]", len(no.Lines))
		}
		bad := false
		for _, l := range no.Lines {
			if l.Item < 0 {
				bad = true
			} else if l.Item >= cfg.Items {
				t.Fatalf("item %d out of range", l.Item)
			}
			if l.Qty < 1 || l.Qty > 10 {
				t.Fatalf("qty %d out of range", l.Qty)
			}
		}
		if bad {
			rollbacks++
		}
	}
	if f := float64(rollbacks) / n; f < 0.002 || f > 0.03 {
		t.Fatalf("rollback fraction = %.3f, want ≈0.01", f)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(smallCfg(), MixedOLTP(), 99)
	g2 := NewGenerator(smallCfg(), MixedOLTP(), 99)
	for i := 0; i < 200; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || a.HomeWarehouse() != b.HomeWarehouse() {
			t.Fatal("generators with same seed diverged")
		}
	}
}

func TestMixSwitch(t *testing.T) {
	g := NewGenerator(smallCfg(), Partitionable(), 5)
	g.SetMix(Skewed())
	if g.Mix().HotFrac != 1.0 {
		t.Fatal("SetMix did not take effect")
	}
	if g.Next().HomeWarehouse() != 0 {
		t.Fatal("post-switch txn not hot")
	}
}

// Package tpcc provides the workload substrate for the paper's
// evaluation: the TPC-C subset exercised by its experiments (payment and
// new-order, §3) plus the CH-benCHmark-style order/customer data that the
// data-beaming query of §4 scans. Everything is generated
// deterministically from a seed.
package tpcc

import "anydb/internal/storage"

// Table names.
const (
	TWarehouse = "warehouse"
	TDistrict  = "district"
	TCustomer  = "customer"
	THistory   = "history"
	TOrders    = "orders"
	TNewOrder  = "new_order"
	TOrderLine = "order_line"
	TItem      = "item"
	TStock     = "stock"
)

// IdxCustomerByLast is the secondary index used by payment's 60%
// select-by-last-name path.
const IdxCustomerByLast = "customer_by_last"

// Interned table handles: the position each table takes in Schemas(),
// which is the TableID `Catalog.AddSchema`/`Partition.CreateTable`
// assign at database creation. The OLTP execute path indexes partitions
// by these instead of hashing table names.
const (
	TWarehouseID storage.TableID = iota
	TDistrictID
	TCustomerID
	THistoryID
	TOrdersID
	TNewOrderID
	TOrderLineID
	TItemID
	TStockID
)

// Hot column positions, resolved once here instead of per-op MustCol
// lookups on the execute path. The schema layouts are fixed; init
// asserts every constant (and the table IDs) against Schemas().
const (
	ColWYTD        = 4 // warehouse.w_ytd
	ColDYTD        = 4 // district.d_ytd
	ColDNextOID    = 5 // district.d_next_o_id
	ColCBalance    = 7 // customer.c_balance
	ColCYtdPayment = 8 // customer.c_ytd_payment
	ColCPaymentCnt = 9 // customer.c_payment_cnt
	ColCLast       = 4 // customer.c_last
	ColIPrice      = 2 // item.i_price
	ColSQuantity   = 2 // stock.s_quantity
	ColSYTD        = 3 // stock.s_ytd
	ColSOrderCnt   = 4 // stock.s_order_cnt
)

func init() {
	cat := storage.NewCatalog()
	schemas := Schemas()
	for _, s := range schemas {
		cat.AddSchema(s)
	}
	ids := map[string]storage.TableID{
		TWarehouse: TWarehouseID, TDistrict: TDistrictID, TCustomer: TCustomerID,
		THistory: THistoryID, TOrders: TOrdersID, TNewOrder: TNewOrderID,
		TOrderLine: TOrderLineID, TItem: TItemID, TStock: TStockID,
	}
	cols := map[string]map[string]int{
		TWarehouse: {"w_ytd": ColWYTD},
		TDistrict:  {"d_ytd": ColDYTD, "d_next_o_id": ColDNextOID},
		TCustomer: {"c_balance": ColCBalance, "c_ytd_payment": ColCYtdPayment,
			"c_payment_cnt": ColCPaymentCnt, "c_last": ColCLast},
		TItem:  {"i_price": ColIPrice},
		TStock: {"s_quantity": ColSQuantity, "s_ytd": ColSYTD, "s_order_cnt": ColSOrderCnt},
	}
	for _, s := range schemas {
		if want := ids[s.Name]; s.ID != want {
			panic("tpcc: TableID constant out of sync for " + s.Name)
		}
		for col, idx := range cols[s.Name] {
			if s.MustCol(col) != idx {
				panic("tpcc: column constant out of sync: " + s.Name + "." + col)
			}
		}
	}
}

// Schemas returns the full schema set. Column subsets follow TPC-C §1.3
// trimmed to the attributes the reproduced transactions and the CH query
// touch; pad columns keep row sizes realistic for transfer modelling.
func Schemas() []*storage.Schema {
	return []*storage.Schema{
		storage.NewSchema(TWarehouse,
			storage.Column{Name: "w_id", Kind: storage.KInt},
			storage.Column{Name: "w_name", Kind: storage.KStr},
			storage.Column{Name: "w_state", Kind: storage.KStr},
			storage.Column{Name: "w_tax", Kind: storage.KFloat},
			storage.Column{Name: "w_ytd", Kind: storage.KFloat},
		),
		storage.NewSchema(TDistrict,
			storage.Column{Name: "d_w_id", Kind: storage.KInt},
			storage.Column{Name: "d_id", Kind: storage.KInt},
			storage.Column{Name: "d_name", Kind: storage.KStr},
			storage.Column{Name: "d_tax", Kind: storage.KFloat},
			storage.Column{Name: "d_ytd", Kind: storage.KFloat},
			storage.Column{Name: "d_next_o_id", Kind: storage.KInt},
		),
		storage.NewSchema(TCustomer,
			storage.Column{Name: "c_w_id", Kind: storage.KInt},
			storage.Column{Name: "c_d_id", Kind: storage.KInt},
			storage.Column{Name: "c_id", Kind: storage.KInt},
			storage.Column{Name: "c_first", Kind: storage.KStr},
			storage.Column{Name: "c_last", Kind: storage.KStr},
			storage.Column{Name: "c_state", Kind: storage.KStr},
			storage.Column{Name: "c_credit", Kind: storage.KStr},
			storage.Column{Name: "c_balance", Kind: storage.KFloat},
			storage.Column{Name: "c_ytd_payment", Kind: storage.KFloat},
			storage.Column{Name: "c_payment_cnt", Kind: storage.KInt},
			storage.Column{Name: "c_data", Kind: storage.KStr},
		),
		storage.NewSchema(THistory,
			storage.Column{Name: "h_c_id", Kind: storage.KInt},
			storage.Column{Name: "h_c_d_id", Kind: storage.KInt},
			storage.Column{Name: "h_c_w_id", Kind: storage.KInt},
			storage.Column{Name: "h_d_id", Kind: storage.KInt},
			storage.Column{Name: "h_w_id", Kind: storage.KInt},
			storage.Column{Name: "h_amount", Kind: storage.KFloat},
		),
		storage.NewSchema(TOrders,
			storage.Column{Name: "o_w_id", Kind: storage.KInt},
			storage.Column{Name: "o_d_id", Kind: storage.KInt},
			storage.Column{Name: "o_id", Kind: storage.KInt},
			storage.Column{Name: "o_c_id", Kind: storage.KInt},
			storage.Column{Name: "o_entry_d", Kind: storage.KInt}, // year
			storage.Column{Name: "o_carrier_id", Kind: storage.KInt},
			storage.Column{Name: "o_ol_cnt", Kind: storage.KInt},
		),
		storage.NewSchema(TNewOrder,
			storage.Column{Name: "no_w_id", Kind: storage.KInt},
			storage.Column{Name: "no_d_id", Kind: storage.KInt},
			storage.Column{Name: "no_o_id", Kind: storage.KInt},
		),
		storage.NewSchema(TOrderLine,
			storage.Column{Name: "ol_w_id", Kind: storage.KInt},
			storage.Column{Name: "ol_d_id", Kind: storage.KInt},
			storage.Column{Name: "ol_o_id", Kind: storage.KInt},
			storage.Column{Name: "ol_number", Kind: storage.KInt},
			storage.Column{Name: "ol_i_id", Kind: storage.KInt},
			storage.Column{Name: "ol_supply_w_id", Kind: storage.KInt},
			storage.Column{Name: "ol_quantity", Kind: storage.KInt},
			storage.Column{Name: "ol_amount", Kind: storage.KFloat},
		),
		storage.NewSchema(TItem,
			storage.Column{Name: "i_id", Kind: storage.KInt},
			storage.Column{Name: "i_name", Kind: storage.KStr},
			storage.Column{Name: "i_price", Kind: storage.KFloat},
		),
		storage.NewSchema(TStock,
			storage.Column{Name: "s_w_id", Kind: storage.KInt},
			storage.Column{Name: "s_i_id", Kind: storage.KInt},
			storage.Column{Name: "s_quantity", Kind: storage.KInt},
			storage.Column{Name: "s_ytd", Kind: storage.KInt},
			storage.Column{Name: "s_order_cnt", Kind: storage.KInt},
			storage.Column{Name: "s_remote_cnt", Kind: storage.KInt},
		),
	}
}

// Key builders. Partitioning is by warehouse: partition w holds every
// table's rows for warehouse w (items are replicated read-only).

// WarehouseKey returns the PK of warehouse w.
func WarehouseKey(w int) storage.Key { return storage.MakeKey(w, 0, 0) }

// DistrictKey returns the PK of district (w,d).
func DistrictKey(w, d int) storage.Key { return storage.MakeKey(w, d, 0) }

// CustomerKey returns the PK of customer (w,d,c).
func CustomerKey(w, d, c int) storage.Key { return storage.MakeKey(w, d, int64(c)) }

// CustomerLastKey builds the secondary key for the by-last-name index:
// TPC-C last names map onto 0..999, which packs into the key's leading
// field so (lastNum, d, c_id) ranges are contiguous.
func CustomerLastKey(lastNum, d, c int) storage.Key {
	return storage.MakeKey(lastNum, d, int64(c))
}

// OrderKey returns the PK of order (w,d,o).
func OrderKey(w, d int, o int64) storage.Key { return storage.MakeKey(w, d, o) }

// NewOrderKey returns the PK of the new-order row for order (w,d,o).
func NewOrderKey(w, d int, o int64) storage.Key { return storage.MakeKey(w, d, o) }

// OrderLineKey returns the PK of line ol of order (w,d,o). Orders have at
// most 15 lines, so the line number packs into the low bits.
func OrderLineKey(w, d int, o int64, ol int) storage.Key {
	return storage.MakeKey(w, d, o*16+int64(ol))
}

// HistoryKey returns a synthetic unique PK for history rows (TPC-C gives
// history no key; engines allocate sequence numbers per partition).
func HistoryKey(w int, seq int64) storage.Key { return storage.MakeKey(w, 0, seq) }

// ItemKey returns the PK of item i (replicated per partition).
func ItemKey(i int) storage.Key { return storage.MakeKey(0, 0, int64(i)) }

// StockKey returns the PK of the stock row for item i in warehouse w.
func StockKey(w, i int) storage.Key { return storage.MakeKey(w, 0, int64(i)) }

package dbx1000

import (
	"testing"

	"anydb/internal/sim"
	"anydb/internal/tpcc"
)

func testCfg() tpcc.Config {
	return tpcc.Config{Warehouses: 4, Districts: 2, Customers: 40,
		Items: 60, InitOrders: 20, Seed: 5}.WithDefaults()
}

// runEngine executes n transactions from the mix and returns the engine.
func runEngine(t *testing.T, cfg tpcc.Config, tes, n int, mix tpcc.Mix) (*Engine, sim.Time) {
	t.Helper()
	db, _ := tpcc.NewDatabase(cfg)
	sched := sim.NewScheduler()
	e := New(sched, db, cfg, tes, sim.DefaultCosts())
	g := tpcc.NewGenerator(cfg, mix, 77)
	issued := 0
	e.SetSource(func() *tpcc.Txn {
		if issued >= n {
			return nil
		}
		issued++
		txn := g.Next()
		return &txn
	})
	e.Prime(2 * tes)
	sched.Run()
	if got := e.Committed.Load() + e.Aborted.Load(); got != int64(n) {
		t.Fatalf("finished %d of %d transactions", got, n)
	}
	if _, err := tpcc.Verify(db, cfg); err != nil {
		t.Fatalf("consistency: %v", err)
	}
	return e, sched.Now()
}

func TestBaselinePaymentPartitionable(t *testing.T) {
	e, _ := runEngine(t, testCfg(), 4, 800, tpcc.Partitionable())
	if e.Committed.Load() != 800 {
		t.Fatalf("committed = %d", e.Committed.Load())
	}
}

func TestBaselineMixedWithAborts(t *testing.T) {
	mix := tpcc.MixedOLTP()
	mix.InvalidItemFrac = 0.15
	e, _ := runEngine(t, testCfg(), 4, 600, mix)
	if e.Aborted.Load() == 0 {
		t.Fatal("expected logical aborts")
	}
}

// TestSkewCollapsesToOneTE is the baseline's defining behavior in the
// paper: under the skewed workload, 4 TEs perform like a single TE.
func TestSkewCollapsesToOneTE(t *testing.T) {
	cfg := testCfg()
	const n = 1000
	_, t4 := runEngine(t, cfg, 4, n, tpcc.Skewed())
	_, t1 := runEngine(t, cfg, 1, n, tpcc.Skewed())
	ratio := float64(t1) / float64(t4)
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("4TE/1TE skewed makespan ratio = %.2f, want ≈1 (contention collapse)", ratio)
	}
	// And partitionable 4TE must clearly beat skewed 4TE.
	_, tp := runEngine(t, cfg, 4, n, tpcc.Partitionable())
	if speedup := float64(t4) / float64(tp); speedup < 2 {
		t.Fatalf("partitionable speedup over skew = %.2fx, want >2x", speedup)
	}
}

// TestRecordLockConflictNoLostUpdate: two TEs hammer the same customer
// record — TE1 locally, TE0 via remote payments. No-wait 2PL must produce
// conflict retries, yet every payment applies exactly once (no lost
// updates) and TPC-C consistency holds.
func TestRecordLockConflictNoLostUpdate(t *testing.T) {
	cfg := testCfg()
	db, _ := tpcc.NewDatabase(cfg)
	sched := sim.NewScheduler()
	e := New(sched, db, cfg, 2, sim.DefaultCosts())
	const n = 2000
	issued := 0
	e.SetSource(func() *tpcc.Txn {
		if issued >= n {
			return nil
		}
		issued++
		// Alternate home warehouse; always pay customer (1,1,1).
		home := issued % 2
		return &tpcc.Txn{Kind: tpcc.TxnPayment, Payment: tpcc.Payment{
			W: home, D: 1, CW: 1, CD: 1, C: 1, Amount: 1,
		}}
	})
	e.Prime(4)
	sched.Run()
	if e.Committed.Load() != n {
		t.Fatalf("committed %d of %d", e.Committed.Load(), n)
	}
	if e.Retries.Load() == 0 {
		t.Fatal("no lock conflicts despite contended record")
	}
	ct := db.Partition(1).Table(tpcc.TCustomer)
	slot, _ := ct.Lookup(tpcc.CustomerKey(1, 1, 1))
	bal := ct.Field(slot, ct.Schema.MustCol("c_balance")).F
	if bal != -10-float64(n) { // initial -10, minus n payments of 1
		t.Fatalf("balance = %v, want %v (lost updates?)", bal, -10-float64(n))
	}
	if _, err := tpcc.Verify(db, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOLAPQueryCorrectResult(t *testing.T) {
	cfg := testCfg()
	db, _ := tpcc.NewDatabase(cfg)
	sched := sim.NewScheduler()
	e := New(sched, db, cfg, 4, sim.DefaultCosts())
	e.StartOLAP(false, 1)
	sched.Run()
	if e.QueryDone != 1 {
		t.Fatalf("QueryDone = %d", e.QueryDone)
	}
	// Reference: sequential evaluation of Q3.
	want := tpcc.ReferenceQ3(db, cfg)
	if e.LastQueryRows != want {
		t.Fatalf("Q3 rows = %d, reference %d", e.LastQueryRows, want)
	}
	if want == 0 {
		t.Fatal("reference query selected nothing — workload broken")
	}
	if e.QueryLast <= 0 {
		t.Fatal("query latency not recorded")
	}
}

// TestHTAPInterference: running continuous OLAP alongside OLTP must cost
// OLTP throughput on the baseline (shared TEs + scan locks) — the effect
// Figure 1's HTAP phases measure.
func TestHTAPInterference(t *testing.T) {
	cfg := testCfg()
	cfg.InitOrders = 800 // the query needs scan/join volume to interfere
	window := 20 * sim.Millisecond

	run := func(olap bool) int64 {
		db, _ := tpcc.NewDatabase(cfg)
		sched := sim.NewScheduler()
		e := New(sched, db, cfg, 4, sim.DefaultCosts())
		g := tpcc.NewGenerator(cfg, tpcc.Partitionable(), 9)
		e.SetSource(func() *tpcc.Txn { txn := g.Next(); return &txn })
		e.Prime(8)
		if olap {
			e.StartOLAP(true, 4)
		}
		sched.RunUntil(window)
		return e.Committed.Load()
	}
	base := run(false)
	htap := run(true)
	if base == 0 {
		t.Fatal("no baseline throughput")
	}
	frac := float64(htap) / float64(base)
	if frac > 0.95 {
		t.Fatalf("OLAP co-running cost only %.1f%% — interference missing", 100*(1-frac))
	}
	if frac < 0.10 {
		t.Fatalf("OLAP starved OLTP to %.2f of baseline — too aggressive", frac)
	}
}

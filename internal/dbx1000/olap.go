package dbx1000

import (
	"time"

	"anydb/internal/cc"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// The baseline's HTAP story (§4, Figure 1 phases 6–11): OLAP queries run
// on the same transaction executors as the OLTP workload, chunk by
// chunk, taking shared partition locks while scanning. Writers conflict
// with those locks (no-wait → abort/retry) and the join work steals TE
// cycles — the two interference channels AnyDB avoids by beaming data to
// disaggregated compute.

// olapChunkRows bounds how many rows one scan chunk visits while holding
// the partition's shared lock. Longer chunks amortize locking but stall
// concurrent writers for the whole hold — the interference channel the
// Figure 1 HTAP phases measure.
const olapChunkRows = 2048

// olapCompile models the optimizer/plan time the baseline spends before
// the first scan chunk (AnyDB's QO charges the equivalent window).
const olapCompile = 2 * sim.Millisecond

// query is one in-flight Q3 execution.
type query struct {
	id      int64
	started sim.Time
	// customer-match and order-match sets (the two join hash tables).
	cust  map[storage.Key]bool
	ord   map[storage.Key]bool
	count int64 // open qualifying orders
	phase int   // 0=customer, 1=orders, 2=new_order
	// lockID is the query's identity in the lock table (reader txn).
	lockID  cc.TxnID
	pending int // partition scans outstanding in the current phase
}

type scanChunk struct {
	q    *query
	part int
	from int32
}

type joinWork struct {
	q *query
}

// StartOLAP begins Q3 execution: `streams` concurrent query chains, each
// re-issuing on completion when repeat is set (an HTAP query stream).
func (e *Engine) StartOLAP(repeat bool, streams int) {
	e.olapRepeat = repeat
	if streams < 1 {
		streams = 1
	}
	for i := 0; i < streams; i++ {
		e.startQuery(e.Sched.Now())
	}
}

// StopOLAP stops issuing new queries (the in-flight one completes).
func (e *Engine) StopOLAP() { e.olapRepeat = false }

func (e *Engine) startQuery(at sim.Time) {
	e.olapSeq++
	q := &query{
		id:      e.olapSeq,
		started: at,
		cust:    make(map[storage.Key]bool),
		ord:     make(map[storage.Key]bool),
		lockID:  cc.TxnID(1<<62 + uint64(e.olapSeq)),
		pending: e.cfg.Warehouses,
	}
	// One scan stream per partition, spread round-robin over the TEs,
	// starting after the compile window.
	for p := 0; p < e.cfg.Warehouses; p++ {
		e.teOf(p).DeliverAt(&scanChunk{q: q, part: p, from: 0}, at+olapCompile)
	}
}

// runScanChunk scans up to olapChunkRows rows of the current phase's
// table under a shared partition lock.
func (e *Engine) runScanChunk(a *sim.Actor, c *scanChunk) {
	res := cc.PartitionResource(c.part)
	a.Charge(e.Costs.LockAcquire)
	if !e.lm.Acquire(c.q.lockID, res, cc.Shared) {
		// A writer holds the partition: retry shortly.
		a.Charge(e.Costs.LockAbort)
		a.Deliver(c, a.Now()-a.Scheduler().Now()+e.Costs.RetryDelay)
		return
	}

	p := e.DB.Partition(c.part)
	var next int32
	var done bool
	switch c.q.phase {
	case 0:
		t := p.Table(tpcc.TCustomer)
		wCol, dCol, cCol := t.Schema.MustCol("c_w_id"), t.Schema.MustCol("c_d_id"), t.Schema.MustCol("c_id")
		sCol := t.Schema.MustCol("c_state")
		next, done = t.ScanRange(c.from, olapChunkRows, func(_ int32, r storage.Row) bool {
			a.Charge(e.Costs.ScanRow)
			if len(r[sCol].S) > 0 && r[sCol].S[:1] == tpcc.Q3StatePrefix {
				a.Charge(e.Costs.HashBuildRow)
				c.q.cust[storage.MakeKey(int(r[wCol].I), int(r[dCol].I), r[cCol].I)] = true
			}
			return true
		})
	case 1:
		t := p.Table(tpcc.TOrders)
		wCol, dCol, oCol := t.Schema.MustCol("o_w_id"), t.Schema.MustCol("o_d_id"), t.Schema.MustCol("o_id")
		cCol, yCol := t.Schema.MustCol("o_c_id"), t.Schema.MustCol("o_entry_d")
		next, done = t.ScanRange(c.from, olapChunkRows, func(_ int32, r storage.Row) bool {
			a.Charge(e.Costs.ScanRow)
			if r[yCol].I >= tpcc.Q3SinceYear {
				a.Charge(e.Costs.HashProbeRow)
				if c.q.cust[storage.MakeKey(int(r[wCol].I), int(r[dCol].I), r[cCol].I)] {
					a.Charge(e.Costs.HashBuildRow)
					c.q.ord[storage.MakeKey(int(r[wCol].I), int(r[dCol].I), r[oCol].I)] = true
				}
			}
			return true
		})
	case 2:
		t := p.Table(tpcc.TNewOrder)
		wCol, dCol, oCol := t.Schema.MustCol("no_w_id"), t.Schema.MustCol("no_d_id"), t.Schema.MustCol("no_o_id")
		next, done = t.ScanRange(c.from, olapChunkRows, func(_ int32, r storage.Row) bool {
			a.Charge(e.Costs.ScanRow)
			a.Charge(e.Costs.HashProbeRow)
			if c.q.ord[storage.MakeKey(int(r[wCol].I), int(r[dCol].I), r[oCol].I)] {
				c.q.count++
				a.Charge(e.Costs.AggRow)
			}
			return true
		})
	}
	// Release at the charged completion time (see releaseAt).
	a.Charge(e.Costs.LockRelease)
	lockID := c.q.lockID
	e.Sched.At(a.Now(), func() { e.lm.Release(lockID, res) })

	if !done {
		c.from = next
		a.Send(a, c, 0) // continue this partition's stream on this TE
		return
	}
	c.q.pending--
	if c.q.pending == 0 {
		c.q.phase++
		if c.q.phase <= 2 {
			for p := 0; p < e.cfg.Warehouses; p++ {
				e.teOf(p).DeliverAt(&scanChunk{q: c.q, part: p, from: 0}, a.Now())
			}
			c.q.pending = e.cfg.Warehouses
			return
		}
		// Final aggregation/result assembly.
		a.Send(a, &joinWork{q: c.q}, 0)
	}
}

// runJoinWork finishes the query: charge result materialization and
// restart when continuous.
func (e *Engine) runJoinWork(a *sim.Actor, w *joinWork) {
	a.Charge(e.Costs.AggRow * sim.Time(w.q.count+1))
	e.QueryDone++
	e.QueryLast = a.Now() - w.q.started
	e.LastQueryRows = w.q.count
	if e.olapRepeat {
		e.Sched.At(a.Now(), func() { e.startQuery(e.Sched.Now()) })
	}
}

func toDuration(t sim.Time) time.Duration { return time.Duration(t) }

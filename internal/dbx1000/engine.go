// Package dbx1000 is the baseline: a static shared-nothing DBMS in the
// spirit of DBx1000 [9] as the paper configures it — N transaction
// executors (TEs) pinned to cores, storage partitioned by warehouse,
// H-Store-style no-wait partition locking for multi-partition
// transactions, and OLAP queries executed on the same TEs as the OLTP
// workload (the resource coupling AnyDB's Figure 1 HTAP phases exploit).
// It runs on the virtual-time kernel and executes the identical
// oltp.Program operations against the identical storage as AnyDB, so
// every performance difference comes from architecture, not workload or
// implementation shortcuts.
package dbx1000

import (
	"fmt"

	"anydb/internal/cc"
	"anydb/internal/metrics"
	"anydb/internal/oltp"
	"anydb/internal/sim"
	"anydb/internal/storage"
	"anydb/internal/tpcc"
)

// Engine is the baseline DBMS instance.
type Engine struct {
	Sched *sim.Scheduler
	Costs sim.CostModel
	DB    *storage.Database
	cfg   tpcc.Config

	tes []*sim.Actor
	lm  *cc.LockManager

	source func() *tpcc.Txn
	nextID cc.TxnID

	// Counters (reset per measurement window by the harness).
	Committed metrics.Counter
	Aborted   metrics.Counter // user aborts (invalid item)
	Retries   metrics.Counter // lock-conflict retries

	// OLAP state (HTAP mode).
	olapRepeat    bool
	olapSeq       int64
	QueryDone     int64
	QueryLast     sim.Time // latency of the most recent completed query
	LastQueryRows int64    // result cardinality of the last query
	TxnLatency    metrics.Histogram
}

type txnMsg struct {
	id      cc.TxnID
	txn     *tpcc.Txn
	attempt int
	started sim.Time
}

type lockReq struct {
	res  cc.Resource
	mode cc.Mode
}

// maxBackoffMult caps exponential retry backoff.
const maxBackoffMult = 16

// New builds a baseline engine with the given TE count over db.
func New(sched *sim.Scheduler, db *storage.Database, cfg tpcc.Config, tes int, costs sim.CostModel) *Engine {
	e := &Engine{
		Sched: sched, Costs: costs, DB: db, cfg: cfg.WithDefaults(),
		lm: cc.NewLockManager(),
	}
	for i := 0; i < tes; i++ {
		te := sim.NewActor(sched, fmt.Sprintf("te%d", i), e.handle)
		e.tes = append(e.tes, te)
	}
	return e
}

// NumTEs returns the executor count.
func (e *Engine) NumTEs() int { return len(e.tes) }

// TE exposes an executor actor for utilization accounting.
func (e *Engine) TE(i int) *sim.Actor { return e.tes[i] }

// teOf statically routes a partition to its executor.
func (e *Engine) teOf(partition int) *sim.Actor { return e.tes[partition%len(e.tes)] }

// SetSource installs the closed-loop transaction source.
func (e *Engine) SetSource(fn func() *tpcc.Txn) { e.source = fn }

// Prime injects the initial outstanding transactions (closed loop: every
// completion immediately draws the next from the source).
func (e *Engine) Prime(outstanding int) {
	for i := 0; i < outstanding; i++ {
		e.injectNext(0)
	}
}

func (e *Engine) injectNext(at sim.Time) {
	if e.source == nil {
		return
	}
	txn := e.source()
	if txn == nil {
		return
	}
	e.nextID++
	m := &txnMsg{id: e.nextID, txn: txn, started: at}
	e.teOf(txn.HomeWarehouse()).DeliverAt(m, at)
}

// handle is the TE message loop.
func (e *Engine) handle(a *sim.Actor, m sim.Message) {
	switch v := m.(type) {
	case *txnMsg:
		e.runTxn(a, v)
	case *scanChunk:
		e.runScanChunk(a, v)
	case *joinWork:
		e.runJoinWork(a, v)
	default:
		panic(fmt.Sprintf("dbx1000: unknown message %T", m))
	}
}

// runTxn executes one transaction attempt under no-wait two-phase
// locking: intention-exclusive locks on every touched partition (so OLAP
// scans' shared partition locks conflict with writers) plus exclusive
// record locks per operation — DBx1000's NO_WAIT scheme. Locks
// conceptually remain held until the end of the charged execution window,
// so the release is scheduled at the actor's local completion time —
// handlers of other TEs running inside that window observe the conflict.
func (e *Engine) runTxn(a *sim.Actor, m *txnMsg) {
	a.Charge(e.Costs.TxnBegin)
	ops := oltp.Program(*m.txn)

	// Growing phase: partition IX locks first (stable order), then the
	// record locks of each operation.
	var wanted []lockReq
	seen := make(map[int]bool)
	for _, op := range ops {
		if !seen[op.Warehouse()] {
			seen[op.Warehouse()] = true
			wanted = append(wanted, lockReq{res: cc.PartitionResource(op.Warehouse()), mode: cc.IntentExclusive})
		}
	}
	for _, op := range ops {
		for _, res := range op.Locks() {
			wanted = append(wanted, lockReq{res: res, mode: cc.Exclusive})
		}
	}
	for _, req := range wanted {
		a.Charge(e.Costs.LockAcquire)
		if e.lm.Acquire(m.id, req.res, req.mode) {
			continue
		}
		// No-wait: abort, back off, retry on the same TE.
		a.Charge(e.Costs.LockAbort)
		n := e.lm.ReleaseAll(m.id)
		a.Charge(e.Costs.LockRelease * sim.Time(n))
		e.Retries.Inc()
		m.attempt++
		mult := sim.Time(m.attempt)
		if mult > maxBackoffMult {
			mult = maxBackoffMult
		}
		a.Deliver(m, a.Now()-a.Scheduler().Now()+e.Costs.RetryDelay*mult)
		return
	}

	var undo storage.UndoLog
	ex := &oltp.Exec{DB: e.DB, Costs: &e.Costs, Charge: a.Charge, Undo: &undo}
	for _, op := range ops {
		if err := op.Run(ex); err != nil {
			// Logical abort (invalid item): roll back and finish.
			n := undo.Rollback()
			a.Charge(e.Costs.UndoOp * sim.Time(n))
			e.releaseAt(a, m.id)
			e.Aborted.Inc()
			e.afterTxn(a, m)
			return
		}
	}
	undo.Commit()
	a.Charge(e.Costs.TxnCommit)
	e.releaseAt(a, m.id)
	e.Committed.Inc()
	e.TxnLatency.Record(toDuration(a.Now() - m.started))
	e.afterTxn(a, m)
}

// releaseAt schedules the lock release at the actor's local completion
// time so the critical section spans the whole charged window.
func (e *Engine) releaseAt(a *sim.Actor, id cc.TxnID) {
	n := e.lm.Held(id)
	a.Charge(e.Costs.LockRelease * sim.Time(n))
	e.Sched.At(a.Now(), func() { e.lm.ReleaseAll(id) })
}

// afterTxn keeps the closed loop full.
func (e *Engine) afterTxn(a *sim.Actor, m *txnMsg) {
	e.injectNext(a.Now())
}

package core

import "testing"

// BenchmarkTopologyRead measures the read side of the topology on the
// data-send pattern: every cross-AC send resolves ServerOf/SameServer
// and every routed operation resolves Owner. These sit on the hot path
// of both runtimes, so they must scale with readers (run with -cpu 1,4).
func BenchmarkTopologyRead(b *testing.B) {
	topo := NewTopology(testDB(8))
	execs := topo.AddServer(4)
	topo.AddServer(4)
	for w := 0; w < 8; w++ {
		topo.SetOwner(w, execs[w%len(execs)])
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		sink := 0
		for pb.Next() {
			a := ACID(i % 8)
			sink += topo.ServerOf(a)
			if topo.SameServer(a, ACID((i+3)%8)) {
				sink++
			}
			sink += int(topo.Owner(i % 8))
			i++
		}
		_ = sink
	})
}

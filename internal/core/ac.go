package core

import (
	"fmt"

	"anydb/internal/sim"
)

// Context is the runtime interface a behavior sees while handling an
// event or data message. The goroutine runtime implements Charge as a
// no-op (real time passes by itself); the simulation runtime accumulates
// virtual core time from the cost model.
type Context interface {
	// Self returns the AC executing the handler.
	Self() ACID
	// Now returns the current time in virtual nanoseconds (wall-clock
	// nanoseconds since engine start on the goroutine runtime).
	Now() sim.Time
	// Charge accounts d nanoseconds of core work for the current
	// handler.
	Charge(d sim.Time)
	// Costs exposes the cost model (used to price storage operations).
	Costs() *sim.CostModel
	// Send appends ev to the event stream toward dst.
	Send(dst ACID, ev *Event)
	// SendData appends msg to a data stream toward dst.
	SendData(dst ACID, msg *DataMsg)
	// Topology exposes cluster layout for routing decisions.
	Topology() *Topology
	// Offloaded reports whether data sent toward dst rides a DPI flow
	// (shuffle partitioning runs on the NIC instead of this core, §4).
	Offloaded(dst ACID) bool
}

// Behavior is one capability an AC can perform. Every AC registers the
// same behavior set — that is what makes components generic: the event
// kind alone decides whether an AC currently acts as a query optimizer,
// an executor, a sequencer or storage.
type Behavior interface {
	// OnEvent handles an event whose data prerequisites are satisfied.
	OnEvent(ctx Context, ac *AC, ev *Event)
}

// DataSink is implemented by behaviors that consume data streams
// incrementally (OLAP operators).
type DataSink interface {
	// OnData handles one batch for a stream the behavior subscribed to
	// via AC.Subscribe. The *DataMsg envelope is owned by the runtime
	// and recycled when OnData returns — sinks must not retain it.
	// msg.Batch MAY be retained (or freed via storage.FreeBatch at the
	// row data's own death point).
	OnData(ctx Context, ac *AC, msg *DataMsg)
}

// BehaviorFunc adapts a function to Behavior.
type BehaviorFunc func(ctx Context, ac *AC, ev *Event)

// OnEvent implements Behavior.
func (f BehaviorFunc) OnEvent(ctx Context, ac *AC, ev *Event) { f(ctx, ac, ev) }

// StreamState buffers one data stream at its consuming AC: batches that
// arrived before the consuming event or operator was ready, plus the
// closed flag. This is the staging area that makes data beaming work —
// beamed data waits here, already local, until its event shows up.
type StreamState struct {
	Pending []*DataMsg
	Closed  bool
	Bytes   int64
	// eos counts Last markers seen; expect is the producer fan-in (set
	// by the markers themselves).
	eos    int
	expect int
	// sink, once subscribed, receives batches directly.
	sink DataSink
}

// AC is the AnyComponent: a generic, stateless-by-design component driven
// entirely by its event and data inboxes. All the state it touches is
// either delivered by data streams or owned via explicit partition
// ownership (the physically-aggregated execution mode of §3.1).
type AC struct {
	ID ACID

	behaviors map[EventKind]Behavior
	streams   map[StreamID]*StreamState
	parked    map[StreamID][]*Event

	// OnBatchEnd, when set, runs after the AC's goroutine handled one
	// drained mailbox batch (goroutine runtime only). This is the group
	// boundary durability hangs off: a dispatcher parks admitted
	// transactions during the batch and the hook fsyncs once and
	// releases them all. Sends issued by the hook are flushed by the
	// runtime exactly like a handler's.
	OnBatchEnd func(ctx Context)

	// Stats.
	EventsHandled int64
	DataHandled   int64
	ParkedNow     int
}

// NewAC returns an AC with no behaviors registered.
func NewAC(id ACID) *AC {
	return &AC{
		ID:        id,
		behaviors: make(map[EventKind]Behavior),
		streams:   make(map[StreamID]*StreamState),
		parked:    make(map[StreamID][]*Event),
	}
}

// Register installs a behavior for an event kind. Registering the same
// kind twice is a wiring bug and panics.
func (ac *AC) Register(kind EventKind, b Behavior) {
	if _, dup := ac.behaviors[kind]; dup {
		panic(fmt.Sprintf("core: duplicate behavior for %v on AC %d", kind, ac.ID))
	}
	ac.behaviors[kind] = b
}

// stream returns (creating) the state for a stream id.
func (ac *AC) stream(id StreamID) *StreamState {
	s, ok := ac.streams[id]
	if !ok {
		s = &StreamState{}
		ac.streams[id] = s
	}
	return s
}

// ready reports whether the event's data prerequisites are met.
func (ac *AC) ready(ev *Event) bool {
	for _, sid := range ev.Need {
		s := ac.stream(sid)
		if ev.NeedClosed {
			if !s.Closed {
				return false
			}
		} else if len(s.Pending) == 0 && !s.Closed {
			return false
		}
	}
	return true
}

// HandleEvent dispatches ev, parking it when its data has not arrived
// yet (the paper's non-blocking rule: the component moves on to other
// events; the runtime keeps delivering).
func (ac *AC) HandleEvent(ctx Context, ev *Event) {
	if !ac.ready(ev) {
		// Park under the first unmet stream; re-checked on every
		// arrival for that stream.
		for _, sid := range ev.Need {
			s := ac.stream(sid)
			met := s.Closed || (!ev.NeedClosed && len(s.Pending) > 0)
			if !met {
				ac.parked[sid] = append(ac.parked[sid], ev)
				ac.ParkedNow++
				return
			}
		}
	}
	ac.dispatch(ctx, ev)
}

func (ac *AC) dispatch(ctx Context, ev *Event) {
	b, ok := ac.behaviors[ev.Kind]
	if !ok {
		panic(fmt.Sprintf("core: AC %d has no behavior for %v", ac.ID, ev.Kind))
	}
	ac.EventsHandled++
	b.OnEvent(ctx, ac, ev)
}

// HandleData stages or forwards one data message, then unparks any
// events whose prerequisites it satisfied. The AC is each message's
// single consumer: envelopes that were delivered to a sink (or carried
// only an EOS marker) are recycled here; staged envelopes are recycled
// when Subscribe replays them.
func (ac *AC) HandleData(ctx Context, msg *DataMsg) {
	ac.DataHandled++
	sid, query, last, producers := msg.Stream, msg.Query, msg.Last, msg.Producers
	s := ac.stream(sid)
	if msg.Batch != nil {
		// Batches forward (or stage) without the Last flag: with
		// multiple producers each sends its own marker, and the sink
		// must see exactly one synthetic EOS — emitted below once the
		// full fan-in closed.
		batchOnly := msg
		if last {
			// The split deliberately does not carry Prehashed: the
			// final batch of a stream charges at the full rate, which
			// is what the cost calibration (and the committed figures)
			// established.
			batchOnly = GetDataMsg()
			batchOnly.Stream, batchOnly.Query, batchOnly.Batch = sid, query, msg.Batch
			FreeDataMsg(msg)
		}
		if s.sink != nil {
			s.sink.OnData(ctx, ac, batchOnly)
			FreeDataMsg(batchOnly)
		} else {
			s.Pending = append(s.Pending, batchOnly)
			s.Bytes += batchOnly.WireSize()
		}
	} else if last {
		// Pure EOS marker: dead once counted below.
		FreeDataMsg(msg)
	}
	if last {
		s.eos++
		if producers <= 0 {
			producers = 1
		}
		if producers > s.expect {
			s.expect = producers
		}
		if s.eos >= s.expect && !s.Closed {
			s.Closed = true
			if s.sink != nil {
				eos := GetDataMsg()
				eos.Stream, eos.Query, eos.Last = sid, query, true
				s.sink.OnData(ctx, ac, eos)
				FreeDataMsg(eos)
			}
		}
	}
	ac.unpark(ctx, sid)
}

// unpark re-dispatches events waiting on stream sid whose prerequisites
// are now met.
func (ac *AC) unpark(ctx Context, sid StreamID) {
	waiting := ac.parked[sid]
	if len(waiting) == 0 {
		return
	}
	var still []*Event
	for _, ev := range waiting {
		if ac.ready(ev) {
			ac.ParkedNow--
			// A parked event re-enters the full path: it may park
			// again on a different stream.
			ac.HandleEvent(ctx, ev)
		} else {
			still = append(still, ev)
		}
	}
	if len(still) == 0 {
		delete(ac.parked, sid)
	} else {
		ac.parked[sid] = still
	}
}

// Subscribe hands all current and future batches of a stream to sink.
// Buffered (beamed) batches are replayed immediately in arrival order;
// their envelopes die (and are recycled) as they replay.
func (ac *AC) Subscribe(ctx Context, sid StreamID, sink DataSink) {
	s := ac.stream(sid)
	if s.sink != nil {
		panic(fmt.Sprintf("core: stream %d already subscribed on AC %d", sid, ac.ID))
	}
	s.sink = sink
	for i, m := range s.Pending {
		s.Pending[i] = nil
		sink.OnData(ctx, ac, m)
		FreeDataMsg(m)
	}
	s.Pending = nil
	if s.Closed {
		eos := GetDataMsg()
		eos.Stream, eos.Last = sid, true
		sink.OnData(ctx, ac, eos)
		FreeDataMsg(eos)
	}
}

// TakeBatches removes and returns all staged batches of a stream (used
// by consumers that want the buffered form directly, e.g. a hash-join
// build that fires only once the stream closed).
func (ac *AC) TakeBatches(sid StreamID) []*DataMsg {
	s := ac.stream(sid)
	out := s.Pending
	s.Pending = nil
	s.Bytes = 0
	return out
}

// StreamClosed reports whether a stream has fully arrived.
func (ac *AC) StreamClosed(sid StreamID) bool { return ac.stream(sid).Closed }

// DropStream releases stream state (query teardown).
func (ac *AC) DropStream(sid StreamID) {
	delete(ac.streams, sid)
	delete(ac.parked, sid)
}

// Package core implements the paper's primary contribution: the
// architecture-less execution model. A DBMS is composed of one generic
// component type — the AnyComponent (AC) — instrumented by two kinds of
// streams: events (what to execute) and data (the state the event needs).
// Per-query routing of those streams decides which architecture the
// system momentarily is: shared-nothing, shared-disk, or anything between
// (§2.1). The same AC logic runs on two runtimes: a goroutine runtime
// (Engine) used by the public API, and a deterministic virtual-time
// runtime (SimCluster) used by the benchmark harness to reproduce the
// paper's multi-core figures on any machine.
package core

import (
	"fmt"
	"sync"

	"anydb/internal/storage"
)

// ACID identifies an AnyComponent within a cluster.
type ACID int

// NoAC is the invalid component id.
const NoAC ACID = -1

// TxnID identifies a transaction.
type TxnID uint64

// QueryID identifies an OLAP query.
type QueryID uint64

// StreamID identifies one data stream (one producer→consumer edge of one
// query or transaction).
type StreamID uint64

// EventKind selects the behavior an AC performs for an event — the
// mechanism by which a generic component "acts as" a query optimizer, a
// worker, a sequencer, or storage (Figure 2).
type EventKind uint8

const (
	// EvTxn submits a whole transaction to a coordinator/dispatcher AC.
	EvTxn EventKind = iota
	// EvSegment executes a sub-sequence of transaction operations
	// (Figure 4: the unit of physical (dis)aggregation).
	EvSegment
	// EvAck reports segment completion to the transaction coordinator.
	EvAck
	// EvTxnDone reports transaction completion to the client/harness.
	EvTxnDone
	// EvQuery submits an OLAP query to whichever AC should act as the
	// query optimizer.
	EvQuery
	// EvInstallOp instruments an AC with a query operator (scan, join
	// build/probe, aggregate); the operator then consumes data streams.
	EvInstallOp
	// EvOpDone reports operator completion to the query coordinator.
	EvOpDone
	// EvQueryDone reports query completion to the client/harness.
	EvQueryDone
	// EvSeqStamp routes an event through a sequencer for streaming CC.
	EvSeqStamp
	// EvControl carries cluster management commands (elasticity,
	// draining, failure injection).
	EvControl
	// EvSignal carries a workload-signal report (*oltp.Report) from a
	// dispatching or coordinating AC toward the adaptation controller
	// AC — the observation half of the self-driving loop.
	EvSignal
	// EvAdapt carries an architecture-change decision
	// (*adapt.Decision) from the adaptation controller to the
	// client/harness, which owns injection and can therefore drain and
	// reroute safely.
	EvAdapt
)

var eventKindNames = [...]string{
	"Txn", "Segment", "Ack", "TxnDone", "Query", "InstallOp",
	"OpDone", "QueryDone", "SeqStamp", "Control", "Signal", "Adapt",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one self-contained unit of the event stream. Events fully
// describe what to do; required state arrives separately via data
// streams referenced by Need.
type Event struct {
	Kind  EventKind
	Txn   TxnID
	Query QueryID
	// Seq is the order stamp assigned by a sequencer under streaming
	// concurrency control; zero means unordered.
	Seq uint64
	// Need lists data streams that must have begun delivery (and, if
	// the payload demands, completed) before the event can execute. An
	// AC never blocks on them: the event parks and other events run
	// (§2.1 non-blocking execution).
	Need []StreamID
	// NeedClosed requires the Need streams to be fully delivered, not
	// just opened (e.g. a hash-join build consumes its entire input).
	NeedClosed bool
	// Payload is the behavior-specific body (*oltp.Segment,
	// *olap.OpSpec, query text, ...).
	Payload any
	// Client is an opaque completion token the submitter attaches to
	// EvTxn; the OLTP pipeline threads it through segments and acks so
	// the EvTxnDone payload carries it back. Completions then resolve
	// without any shared lookup table — the paper's "events fully
	// describe what to do" applied to the client boundary. Nil for
	// harness-injected work.
	Client any
	// Size approximates the wire size in bytes for transfer modelling.
	Size int64
}

// WireSize returns the modelled size of the event (header + payload).
func (e *Event) WireSize() int64 {
	if e.Size > 0 {
		return 64 + e.Size
	}
	return 64
}

// eventPool recycles Events on the OLTP hot path: every transaction
// costs several events (EvTxn, EvSegment, EvAck, EvTxnDone), all with
// clear single-consumer ownership, so pooling them removes the dominant
// steady-state allocations of the event plane.
var eventPool = sync.Pool{New: func() any { return new(Event) }}

// GetEvent returns a zeroed Event from the pool. Pair with FreeEvent at
// the point the event is provably dead.
func GetEvent() *Event {
	if trackPools.Load() {
		eventBal.Add(1)
	}
	return eventPool.Get().(*Event)
}

// FreeEvent recycles ev. Only the consumer an event was delivered to may
// free it, and only when no reference escaped its handler: a freed event
// may be reused for an unrelated message immediately. Events parked on
// data streams or re-sent (operator continuations) must not be freed.
// Freeing is optional — events that miss their free (dropped delivery to
// a killed AC, simulation runs) fall back to the GC.
func FreeEvent(ev *Event) {
	if trackPools.Load() {
		eventBal.Add(-1)
	}
	ClearEvent(ev)
	eventPool.Put(ev)
}

// ClearEvent resets every field an event producer may have set, keeping
// the Need slice's capacity. Field stores beat a whole-struct zero here:
// the compiler would route `*ev = Event{}` through memclr (the struct
// holds pointers), while explicit stores of mostly-already-zero fields
// cost a handful of moves.
func ClearEvent(ev *Event) {
	ev.Kind = 0
	ev.Txn = 0
	ev.Query = 0
	ev.Seq = 0
	ev.Need = ev.Need[:0]
	ev.NeedClosed = false
	ev.Payload = nil
	ev.Client = nil
	ev.Size = 0
}

// CountEventGet and CountEventFree maintain the leak-tracking balance
// for event recycling that bypasses GetEvent/FreeEvent — the per-AC
// free lists (oltp.Pools). Keeping the count through the bypass means
// PoolBalances still proves every event reaches a free, whichever pool
// it came from.
func CountEventGet() {
	if trackPools.Load() {
		eventBal.Add(1)
	}
}

// CountEventFree is the free-side counterpart of CountEventGet.
func CountEventFree() {
	if trackPools.Load() {
		eventBal.Add(-1)
	}
}

// DataMsg is one element of a data stream: a columnar batch, or a pure
// end-of-stream marker when Batch is nil and Last is true. Data is
// "active": producers push it toward the AC that will need it, ideally
// before the matching event arrives (data beaming, §2.3).
//
// A stream may have several producers (e.g. one scan per partition
// feeding one join). Each producer sends its own Last marker carrying
// Producers = the fan-in; the consumer treats the stream as closed once
// that many markers arrived. Producers == 0 means 1.
type DataMsg struct {
	Stream    StreamID
	Query     QueryID
	Batch     *storage.Batch
	Last      bool
	Producers int
	// Prehashed marks batches that crossed a DPI flow: the NIC already
	// partitioned/hashed them in flight (§4's co-processor effect), so
	// hash-consuming operators charge reduced per-row cost.
	Prehashed bool
}

// WireSize returns the modelled size of the message.
func (m *DataMsg) WireSize() int64 {
	if m.Batch == nil {
		return 32
	}
	return 32 + m.Batch.Bytes()
}

// dataPool recycles DataMsgs on the OLAP hot path: every scan flush and
// join emit wraps its batch in one, and each dies at exactly one
// consuming AC (HandleData/Subscribe), so pooling them removes the
// per-flush envelope allocation of the data plane.
var dataPool = sync.Pool{New: func() any { return new(DataMsg) }}

// GetDataMsg returns a zeroed DataMsg from the pool. Pair with
// FreeDataMsg at the message's single-consumer death point.
func GetDataMsg() *DataMsg {
	if trackPools.Load() {
		dataBal.Add(1)
	}
	return dataPool.Get().(*DataMsg)
}

// FreeDataMsg recycles m (not its Batch — batches have their own pool
// and their own, usually later, death point). The same ownership rules
// as FreeEvent apply: only the consumer a message was delivered to may
// free it, and only when no reference escaped. Frees are optional;
// missed ones fall back to the GC.
func FreeDataMsg(m *DataMsg) {
	if trackPools.Load() {
		dataBal.Add(-1)
	}
	m.Stream = 0
	m.Query = 0
	m.Batch = nil
	m.Last = false
	m.Producers = 0
	m.Prehashed = false
	dataPool.Put(m)
}

package core

import (
	"fmt"

	"anydb/internal/sim"
)

// ClientAC is the pseudo-destination representing the client/harness:
// events sent to it (EvTxnDone, EvQueryDone) invoke the cluster's client
// callback instead of an AC.
const ClientAC ACID = -2

// SimCluster runs a set of ACs on the virtual-time kernel: every AC is
// one sim.Actor (one virtual core), servers are connected by
// latency+bandwidth links, and all costs come from the cost model. It
// reproduces the paper's testbed deterministically (DESIGN.md §3,
// substitution 1).
type SimCluster struct {
	Sched *sim.Scheduler
	Costs sim.CostModel
	Topo  *Topology

	acs    map[ACID]*AC
	actors map[ACID]*sim.Actor
	mem    map[int]*sim.Link    // per-server shared-memory queue fabric
	net    map[[2]int]*sim.Link // directed server-pair network links

	// DPI enables network-flow offload: cross-server senders skip the
	// serialization charge and shuffle partitioning runs on the NIC
	// (the co-processor effect of §4).
	DPI bool

	client func(at sim.Time, ev *Event)

	nextStream StreamID
}

// NewSimCluster builds actors and links for the given topology. setup is
// called once per AC so callers can register behaviors.
func NewSimCluster(topo *Topology, costs sim.CostModel, setup func(ac *AC)) *SimCluster {
	cl := &SimCluster{
		Sched:  sim.NewScheduler(),
		Costs:  costs,
		Topo:   topo,
		acs:    make(map[ACID]*AC),
		actors: make(map[ACID]*sim.Actor),
		mem:    make(map[int]*sim.Link),
		net:    make(map[[2]int]*sim.Link),
	}
	for _, id := range topo.AllACs() {
		cl.addAC(id, setup)
	}
	return cl
}

func (cl *SimCluster) addAC(id ACID, setup func(ac *AC)) {
	ac := NewAC(id)
	if setup != nil {
		setup(ac)
	}
	cl.acs[id] = ac
	actor := sim.NewActor(cl.Sched, fmt.Sprintf("ac%d", id), func(a *sim.Actor, m sim.Message) {
		ctx := &simCtx{cl: cl, actor: a, self: id}
		switch v := m.(type) {
		case *Event:
			a.Charge(cl.Costs.EventDispatch)
			ac.HandleEvent(ctx, v)
		case *DataMsg:
			a.Charge(cl.Costs.BatchOverhead)
			ac.HandleData(ctx, v)
		default:
			panic(fmt.Sprintf("core: unknown message %T", m))
		}
	})
	cl.actors[id] = actor
	srv := cl.Topo.ServerOf(id)
	if _, ok := cl.mem[srv]; !ok {
		cl.mem[srv] = sim.NewLink(cl.Sched, fmt.Sprintf("mem%d", srv),
			cl.Costs.LocalHopLatency, cl.Costs.MemBytesPerSec)
	}
}

// GrowServer adds a new server with the given core count at runtime
// (elasticity, §5) and returns its AC ids.
func (cl *SimCluster) GrowServer(cores int, setup func(ac *AC)) []ACID {
	ids := cl.Topo.AddServer(cores)
	for _, id := range ids {
		cl.addAC(id, setup)
	}
	return ids
}

// SetClient registers the completion callback.
func (cl *SimCluster) SetClient(fn func(at sim.Time, ev *Event)) { cl.client = fn }

// AC returns the component with the given id.
func (cl *SimCluster) AC(id ACID) *AC { return cl.acs[id] }

// Actor returns the virtual core of an AC (for utilization accounting).
func (cl *SimCluster) Actor(id ACID) *sim.Actor { return cl.actors[id] }

// NewStream allocates a cluster-unique stream id.
func (cl *SimCluster) NewStream() StreamID {
	cl.nextStream++
	return cl.nextStream
}

// netLink returns (creating) the directed link between two servers. Per
// server pair and direction there is one flow, matching the paper's DPI
// flows.
func (cl *SimCluster) netLink(from, to int) *sim.Link {
	key := [2]int{from, to}
	l, ok := cl.net[key]
	if !ok {
		l = sim.NewLink(cl.Sched, fmt.Sprintf("net%d-%d", from, to),
			cl.Costs.NetHopLatency, cl.Costs.NetBytesPerSec)
		cl.net[key] = l
	}
	return l
}

// NetLink exposes the directed link between two servers for accounting.
func (cl *SimCluster) NetLink(from, to int) *sim.Link { return cl.netLink(from, to) }

// Inject delivers an event from outside the simulation (the workload
// harness) at absolute virtual time at.
func (cl *SimCluster) Inject(dst ACID, ev *Event, at sim.Time) {
	cl.actors[dst].DeliverAt(ev, at)
}

// InjectData delivers a data message from outside at absolute time at.
func (cl *SimCluster) InjectData(dst ACID, msg *DataMsg, at sim.Time) {
	cl.actors[dst].DeliverAt(msg, at)
}

// send moves an event or data message from a running handler to dst,
// charging the sender and occupying links per the cost model.
func (cl *SimCluster) send(src *sim.Actor, from, to ACID, m sim.Message, size int64, isData bool) {
	if to == ClientAC {
		ev, ok := m.(*Event)
		if !ok {
			panic("core: only events may be sent to the client")
		}
		at := src.Now() + cl.Costs.LocalHopLatency
		cl.Sched.At(at, func() {
			if cl.client != nil {
				cl.client(at, ev)
			}
		})
		return
	}
	dst := cl.actors[to]
	if dst == nil {
		panic(fmt.Sprintf("core: send to unknown AC %d", to))
	}
	sFrom, sTo := cl.Topo.ServerOf(from), cl.Topo.ServerOf(to)
	if sFrom == sTo {
		if isData {
			// Shared-memory queue: bandwidth-limited, latency small.
			cl.mem[sFrom].TransferTo(src.Now(), size, dst, m)
		} else {
			src.Send(dst, m, cl.Costs.LocalHopLatency)
		}
		return
	}
	// Cross-server: without DPI offload the sender pays serialization;
	// with DPI the flow processor also pre-hashes data batches in
	// flight (the NIC as co-processor).
	if !cl.DPI {
		src.Charge(cl.Costs.SerializeCost(size))
	} else if dm, ok := m.(*DataMsg); ok {
		dm.Prehashed = true
	}
	cl.netLink(sFrom, sTo).TransferTo(src.Now(), size, dst, m)
}

// simCtx implements Context for handlers running on the sim runtime.
type simCtx struct {
	cl    *SimCluster
	actor *sim.Actor
	self  ACID
}

func (c *simCtx) Self() ACID            { return c.self }
func (c *simCtx) Now() sim.Time         { return c.actor.Now() }
func (c *simCtx) Charge(d sim.Time)     { c.actor.Charge(d) }
func (c *simCtx) Costs() *sim.CostModel { return &c.cl.Costs }
func (c *simCtx) Topology() *Topology   { return c.cl.Topo }

func (c *simCtx) Send(dst ACID, ev *Event) {
	c.actor.Charge(c.cl.Costs.EventCreate)
	c.cl.send(c.actor, c.self, dst, ev, ev.WireSize(), false)
}

func (c *simCtx) SendData(dst ACID, msg *DataMsg) {
	c.cl.send(c.actor, c.self, dst, msg, msg.WireSize(), true)
}

// Offloaded reports whether a data stream from this AC toward dst rides
// a DPI flow (partitioning runs on the NIC, not this core).
func (c *simCtx) Offloaded(dst ACID) bool {
	return c.cl.DPI && dst != ClientAC && !c.cl.Topo.SameServer(c.self, dst)
}

// Run drains the simulation.
func (cl *SimCluster) Run() { cl.Sched.Run() }

// RunUntil advances virtual time to the deadline.
func (cl *SimCluster) RunUntil(t sim.Time) { cl.Sched.RunUntil(t) }

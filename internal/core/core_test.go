package core

import (
	"sync"
	"testing"

	"anydb/internal/sim"
	"anydb/internal/storage"
)

func testDB(parts int) *storage.Database {
	return storage.NewDatabase(parts,
		storage.NewSchema("t", storage.Column{Name: "id", Kind: storage.KInt}))
}

func TestTopologyLayout(t *testing.T) {
	topo := NewTopology(testDB(4))
	s0 := topo.AddServer(4)
	s1 := topo.AddServer(4)
	if topo.NumServers() != 2 || topo.NumACs() != 8 {
		t.Fatalf("servers=%d acs=%d", topo.NumServers(), topo.NumACs())
	}
	if !topo.SameServer(s0[0], s0[3]) || topo.SameServer(s0[0], s1[0]) {
		t.Fatal("locality broken")
	}
	topo.SetOwner(0, s0[0])
	topo.SetOwner(1, s0[1])
	topo.SetOwner(2, s0[0])
	if topo.Owner(1) != s0[1] {
		t.Fatal("owner lookup broken")
	}
	owned := topo.OwnedPartitions(s0[0])
	if len(owned) != 2 || owned[0] != 0 || owned[1] != 2 {
		t.Fatalf("OwnedPartitions = %v", owned)
	}
	if len(topo.ACs(1)) != 4 {
		t.Fatal("ACs(server) broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Owner of unowned partition did not panic")
		}
	}()
	topo.Owner(3)
}

// echoBehavior records handled events and optionally forwards.
type echoBehavior struct {
	handled []*Event
	forward ACID
}

func (b *echoBehavior) OnEvent(ctx Context, _ *AC, ev *Event) {
	b.handled = append(b.handled, ev)
	ctx.Charge(100)
	if b.forward != NoAC && ev.Kind == EvSegment {
		ctx.Send(b.forward, &Event{Kind: EvAck, Txn: ev.Txn})
	}
}

func TestSimClusterEventFlow(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(2)
	behaviors := make(map[ACID]*echoBehavior)
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		b := &echoBehavior{forward: NoAC}
		behaviors[ac.ID] = b
		ac.Register(EvSegment, b)
		ac.Register(EvAck, b)
	})
	behaviors[ids[0]].forward = ids[1]

	cl.Inject(ids[0], &Event{Kind: EvSegment, Txn: 1}, 0)
	cl.Run()

	if len(behaviors[ids[0]].handled) != 1 {
		t.Fatal("segment not handled at ac0")
	}
	if len(behaviors[ids[1]].handled) != 1 || behaviors[ids[1]].handled[0].Kind != EvAck {
		t.Fatal("ack not delivered to ac1")
	}
	// Virtual time advanced: dispatch + charge + create + local hop +
	// dispatch + charge.
	if cl.Sched.Now() == 0 {
		t.Fatal("virtual time did not advance")
	}
	if cl.Actor(ids[0]).BusyTime == 0 || cl.Actor(ids[1]).BusyTime == 0 {
		t.Fatal("busy time not accounted")
	}
}

func TestSimClusterLocalVsRemoteLatency(t *testing.T) {
	topo := NewTopology(testDB(1))
	s0 := topo.AddServer(2)
	s1 := topo.AddServer(1)
	var localAt, remoteAt sim.Time
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			ctx.Send(s0[1], &Event{Kind: EvAck})
			ctx.Send(s1[0], &Event{Kind: EvAck})
		}))
		ac.Register(EvAck, BehaviorFunc(func(ctx Context, _ *AC, _ *Event) {
			if ctx.Self() == s0[1] {
				localAt = ctx.Now()
			} else {
				remoteAt = ctx.Now()
			}
		}))
	})
	cl.Inject(s0[0], &Event{Kind: EvSegment}, 0)
	cl.Run()
	if localAt == 0 || remoteAt == 0 {
		t.Fatal("acks not delivered")
	}
	if remoteAt <= localAt {
		t.Fatalf("remote hop (%v) should arrive after local hop (%v)", remoteAt, localAt)
	}
}

func TestACParkUntilDataArrives(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(1)
	var order []string
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, ac *AC, ev *Event) {
			order = append(order, "need:"+ev.Payload.(string))
		}))
		ac.Register(EvAck, BehaviorFunc(func(ctx Context, _ *AC, _ *Event) {
			order = append(order, "free")
		}))
	})
	// Event needing stream 7 arrives before the data: it must park.
	cl.Inject(ids[0], &Event{Kind: EvSegment, Need: []StreamID{7}, NeedClosed: true, Payload: "a"}, 0)
	// An independent event arrives later and must NOT be blocked.
	cl.Inject(ids[0], &Event{Kind: EvAck}, 10)
	// Data for stream 7 arrives last.
	b := storage.NewBatch(storage.NewSchema("s", storage.Column{Name: "x", Kind: storage.KInt}))
	b.AppendValues(storage.Int(1))
	cl.InjectData(ids[0], &DataMsg{Stream: 7, Batch: b, Last: true}, 1000)
	cl.Run()

	if len(order) != 2 || order[0] != "free" || order[1] != "need:a" {
		t.Fatalf("order = %v, want [free need:a] (non-blocking execution)", order)
	}
	if cl.AC(ids[0]).ParkedNow != 0 {
		t.Fatal("parked count not drained")
	}
}

func TestACNeedOpenVsClosed(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(1)
	fired := map[string]sim.Time{}
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			fired[ev.Payload.(string)] = ctx.Now()
		}))
	})
	cl.Inject(ids[0], &Event{Kind: EvSegment, Need: []StreamID{1}, Payload: "open"}, 0)
	cl.Inject(ids[0], &Event{Kind: EvSegment, Need: []StreamID{1}, NeedClosed: true, Payload: "closed"}, 0)
	sch := storage.NewSchema("s", storage.Column{Name: "x", Kind: storage.KInt})
	b1 := storage.NewBatch(sch)
	b1.AppendValues(storage.Int(1))
	cl.InjectData(ids[0], &DataMsg{Stream: 1, Batch: b1}, 100)
	b2 := storage.NewBatch(sch)
	b2.AppendValues(storage.Int(2))
	cl.InjectData(ids[0], &DataMsg{Stream: 1, Batch: b2, Last: true}, 500)
	cl.Run()
	if fired["open"] == 0 || fired["closed"] == 0 {
		t.Fatalf("events not fired: %v", fired)
	}
	if fired["open"] >= fired["closed"] {
		t.Fatal("open-need event should fire on first batch, closed-need on Last")
	}
}

// dataCollector implements DataSink.
type dataCollector struct {
	rows   int
	closed bool
}

func (d *dataCollector) OnData(ctx Context, _ *AC, msg *DataMsg) {
	if msg.Batch != nil {
		d.rows += msg.Batch.Len()
	}
	if msg.Last {
		d.closed = true
	}
}

func TestACSubscribeReplaysBeamedData(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(1)
	sink := &dataCollector{}
	var sub bool
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvInstallOp, BehaviorFunc(func(ctx Context, ac *AC, ev *Event) {
			ac.Subscribe(ctx, 3, sink)
			sub = true
		}))
	})
	sch := storage.NewSchema("s", storage.Column{Name: "x", Kind: storage.KInt})
	// Data beamed BEFORE the operator event arrives.
	for i := 0; i < 3; i++ {
		b := storage.NewBatch(sch)
		b.AppendValues(storage.Int(int64(i)))
		cl.InjectData(ids[0], &DataMsg{Stream: 3, Batch: b, Last: i == 2}, sim.Time(i))
	}
	cl.Inject(ids[0], &Event{Kind: EvInstallOp}, 1000)
	cl.Run()
	if !sub || sink.rows != 3 || !sink.closed {
		t.Fatalf("subscribe replay failed: rows=%d closed=%v", sink.rows, sink.closed)
	}
}

func TestSequencerStampsAndForwards(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(3) // ac0 = sequencer, ac1/ac2 = executors
	var seen [3][]uint64
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSeqStamp, &Sequencer{})
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			seen[ctx.Self()] = append(seen[ctx.Self()], ev.Seq)
		}))
	})
	for txn := 0; txn < 10; txn++ {
		batch := &SeqBatch{Events: []Outbound{
			{Dst: ids[1], Ev: &Event{Kind: EvSegment, Txn: TxnID(txn)}},
			{Dst: ids[2], Ev: &Event{Kind: EvSegment, Txn: TxnID(txn)}},
		}}
		cl.Inject(ids[0], &Event{Kind: EvSeqStamp, Payload: batch}, sim.Time(txn))
	}
	cl.Run()
	for _, acIdx := range []int{1, 2} {
		if len(seen[acIdx]) != 10 {
			t.Fatalf("executor %d saw %d events", acIdx, len(seen[acIdx]))
		}
		for i := 1; i < len(seen[acIdx]); i++ {
			if seen[acIdx][i] <= seen[acIdx][i-1] {
				t.Fatalf("executor %d: stamps out of order: %v", acIdx, seen[acIdx])
			}
		}
	}
}

func TestSimClusterGrowServer(t *testing.T) {
	topo := NewTopology(testDB(1))
	topo.AddServer(1)
	var got int
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, _ *Event) { got++ }))
	})
	newIDs := cl.GrowServer(2, func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, _ *Event) { got += 100 }))
	})
	if topo.NumServers() != 2 || len(newIDs) != 2 {
		t.Fatal("grow failed")
	}
	cl.Inject(newIDs[1], &Event{Kind: EvSegment}, 0)
	cl.Run()
	if got != 100 {
		t.Fatalf("event not handled by grown AC: got=%d", got)
	}
}

func TestSimClusterClientCallback(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(1)
	var doneTxn TxnID
	var doneAt sim.Time
	cl := NewSimCluster(topo, sim.DefaultCosts(), func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			ctx.Charge(500)
			ctx.Send(ClientAC, &Event{Kind: EvTxnDone, Txn: ev.Txn})
		}))
	})
	cl.SetClient(func(at sim.Time, ev *Event) { doneTxn, doneAt = ev.Txn, at })
	cl.Inject(ids[0], &Event{Kind: EvSegment, Txn: 77}, 0)
	cl.Run()
	if doneTxn != 77 || doneAt == 0 {
		t.Fatalf("client callback: txn=%d at=%v", doneTxn, doneAt)
	}
}

func TestEngineRealRuntime(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(4)
	var mu sync.Mutex
	handled := 0
	done := make(chan struct{})
	eng := NewEngine(topo, func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			mu.Lock()
			handled++
			mu.Unlock()
			ctx.Send(ClientAC, &Event{Kind: EvTxnDone, Txn: ev.Txn})
		}))
	})
	var doneCount int
	eng.SetClient(func(ev *Event) {
		mu.Lock()
		doneCount++
		if doneCount == 40 {
			close(done)
		}
		mu.Unlock()
	})
	for i := 0; i < 40; i++ {
		eng.Inject(ids[i%4], &Event{Kind: EvSegment, Txn: TxnID(i)})
	}
	<-done
	eng.Stop()
	if handled != 40 {
		t.Fatalf("handled = %d, want 40", handled)
	}
	eng.Stop() // idempotent
}

func TestEngineDataFlow(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(2)
	done := make(chan int, 1)
	sink := &dataCollector{}
	eng := NewEngine(topo, func(ac *AC) {
		ac.Register(EvInstallOp, BehaviorFunc(func(ctx Context, ac *AC, _ *Event) {
			ac.Subscribe(ctx, 9, sink)
		}))
		ac.Register(EvControl, BehaviorFunc(func(ctx Context, ac *AC, _ *Event) {
			done <- sink.rows
		}))
	})
	sch := storage.NewSchema("s", storage.Column{Name: "x", Kind: storage.KInt})
	b := storage.NewBatch(sch)
	b.AppendValues(storage.Int(5))
	eng.InjectData(ids[1], &DataMsg{Stream: 9, Batch: b, Last: true})
	eng.Inject(ids[1], &Event{Kind: EvInstallOp})
	eng.Inject(ids[1], &Event{Kind: EvControl})
	if rows := <-done; rows != 1 {
		t.Fatalf("rows = %d, want 1", rows)
	}
	eng.Stop()
}

func TestEngineKillACDropsDelivery(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(2)
	var mu sync.Mutex
	var count int
	eng := NewEngine(topo, func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, _ *Event) {
			mu.Lock()
			count++
			mu.Unlock()
		}))
	})
	eng.KillAC(ids[0])
	eng.Inject(ids[0], &Event{Kind: EvSegment})
	eng.Stop()
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatal("killed AC still handled events")
	}
}

func TestEventKindString(t *testing.T) {
	if EvTxn.String() != "Txn" || EvQueryDone.String() != "QueryDone" {
		t.Fatal("kind names broken")
	}
	if EventKind(200).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestWireSizes(t *testing.T) {
	ev := &Event{Kind: EvSegment, Size: 100}
	if ev.WireSize() != 164 {
		t.Fatalf("event wire size = %d", ev.WireSize())
	}
	if (&Event{}).WireSize() != 64 {
		t.Fatal("default event size")
	}
	if (&DataMsg{Last: true}).WireSize() != 32 {
		t.Fatal("eos size")
	}
}

func TestDuplicateBehaviorPanics(t *testing.T) {
	ac := NewAC(1)
	ac.Register(EvTxn, BehaviorFunc(func(Context, *AC, *Event) {}))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	ac.Register(EvTxn, BehaviorFunc(func(Context, *AC, *Event) {}))
}

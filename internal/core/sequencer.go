package core

// Outbound pairs an event with its routed destination.
type Outbound struct {
	Dst ACID
	Ev  *Event
}

// SeqBatch is the payload of EvSeqStamp: the events of one transaction,
// already routed, to be stamped and forwarded in a consistent total
// order.
type SeqBatch struct {
	Events []Outbound
}

// Sequencer implements streaming concurrency control's ordering side
// (§3.3): conflicting transactions route their events through one
// sequencer AC, which stamps a monotone sequence number and forwards
// them. Because every executor receives its events through FIFO streams
// from the same sequencer, all executors observe conflicting operations
// in the same order — consistency without locks or active
// synchronization. Events of different transactions interleave freely at
// different executors, which is exactly what lets execution pipeline.
type Sequencer struct {
	next uint64
	// Stamped counts stamped events (observability/tests).
	Stamped int64
}

// OnEvent implements Behavior for EvSeqStamp.
func (s *Sequencer) OnEvent(ctx Context, _ *AC, ev *Event) {
	batch, ok := ev.Payload.(*SeqBatch)
	if !ok {
		panic("core: EvSeqStamp payload must be *SeqBatch")
	}
	for _, o := range batch.Events {
		s.next++
		o.Ev.Seq = s.next
		s.Stamped++
		ctx.Charge(ctx.Costs().SeqStamp)
		ctx.Send(o.Dst, o.Ev)
	}
	// The batch's events are forwarded; the envelope is dead.
	FreeEvent(ev)
}

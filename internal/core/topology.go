package core

import (
	"fmt"
	"sync"

	"anydb/internal/storage"
)

// Topology describes the physical layout the streams are routed over:
// servers, the ACs pinned to their cores, and which AC currently owns
// each storage partition. Ownership is the mechanism behind the paper's
// "physically aggregated" execution (§3.1): events for a partition's
// records routed to its owner execute with full locality and no
// concurrency control.
//
// On the goroutine runtime the topology grows at runtime (elasticity)
// while AC goroutines route against it, so all access goes through an
// RWMutex; the virtual-time runtime is single-threaded and pays only
// the uncontended fast path.
type Topology struct {
	mu         sync.RWMutex
	serverOf   map[ACID]int
	acsOf      map[int][]ACID
	nextAC     ACID
	owner      map[int]ACID // partition -> owning AC
	db         *storage.Database
	numServers int
}

// NewTopology returns a topology over db with no servers yet.
func NewTopology(db *storage.Database) *Topology {
	return &Topology{
		serverOf: make(map[ACID]int),
		acsOf:    make(map[int][]ACID),
		owner:    make(map[int]ACID),
		db:       db,
	}
}

// AddServer adds a server with cores ACs and returns their ids. Servers
// model the paper's Figure 2 layout (e.g. 2 servers × 4 cores); adding
// servers at runtime is the elasticity mechanism of §5.
func (t *Topology) AddServer(cores int) []ACID {
	t.mu.Lock()
	defer t.mu.Unlock()
	sid := t.numServers
	t.numServers++
	ids := make([]ACID, cores)
	for i := range ids {
		id := t.nextAC
		t.nextAC++
		t.serverOf[id] = sid
		t.acsOf[sid] = append(t.acsOf[sid], id)
		ids[i] = id
	}
	return ids
}

// NumServers returns the server count.
func (t *Topology) NumServers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.numServers
}

// NumACs returns the total AC count.
func (t *Topology) NumACs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.nextAC)
}

// ACs returns the ACs of one server. The returned slice is never
// mutated after the server exists, so it is safe to hold.
func (t *Topology) ACs(server int) []ACID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.acsOf[server]
}

// AllACs returns every AC id in order.
func (t *Topology) AllACs() []ACID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]ACID, 0, t.nextAC)
	for i := ACID(0); i < t.nextAC; i++ {
		out = append(out, i)
	}
	return out
}

// ServerOf returns the server hosting an AC.
func (t *Topology) ServerOf(ac ACID) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.serverOf[ac]
}

// SameServer reports whether two ACs share a server (local shared-memory
// hop vs network hop).
func (t *Topology) SameServer(a, b ACID) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.serverOf[a] == t.serverOf[b]
}

// SetOwner assigns a storage partition to an AC. Re-assignment is
// allowed (repartitioning/elastic handoff) — callers are responsible for
// quiescing in-flight events, which the engines do by draining.
func (t *Topology) SetOwner(partition int, ac ACID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.owner[partition] = ac
}

// Owner returns the AC owning a partition.
func (t *Topology) Owner(partition int) ACID {
	t.mu.RLock()
	ac, ok := t.owner[partition]
	t.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("core: partition %d has no owner", partition))
	}
	return ac
}

// OwnedPartitions returns the partitions owned by ac (ascending).
func (t *Topology) OwnedPartitions(ac ACID) []int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []int
	for p := 0; p < t.db.NumPartitions(); p++ {
		if owner, ok := t.owner[p]; ok && owner == ac {
			out = append(out, p)
		}
	}
	return out
}

// DB returns the shared storage layer.
func (t *Topology) DB() *storage.Database { return t.db }

// Partition is shorthand for DB().Partition.
func (t *Topology) Partition(id int) *storage.Partition { return t.db.Partition(id) }

package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"anydb/internal/storage"
)

// Topology describes the physical layout the streams are routed over:
// servers, the ACs pinned to their cores, and which AC currently owns
// each storage partition. Ownership is the mechanism behind the paper's
// "physically aggregated" execution (§3.1): events for a partition's
// records routed to its owner execute with full locality and no
// concurrency control.
//
// Reads ride an immutable, atomically published snapshot — the same
// treatment the engine's routing table gets — so ServerOf/SameServer/
// Owner on the per-message data-send paths are one atomic load plus
// indexed reads, with no lock. The mutex survives only for writers
// (AddServer, SetOwner), which rebuild and publish a fresh snapshot;
// topology changes are rare (elastic growth, repartitioning handoff).
type Topology struct {
	snap atomic.Pointer[topoSnap]

	mu         sync.Mutex // writers only
	serverOf   map[ACID]int
	acsOf      map[int][]ACID
	nextAC     ACID
	owner      map[int]ACID // partition -> owning AC
	db         *storage.Database
	numServers int
}

// topoSnap is one immutable topology version. Slices are never mutated
// after publication; writers copy and republish.
type topoSnap struct {
	serverOf []int    // ACID-indexed
	owner    []ACID   // partition-indexed; NoAC = unassigned
	acsOf    [][]ACID // server-indexed; the per-server slices are stable
	numACs   int
}

// NewTopology returns a topology over db with no servers yet.
func NewTopology(db *storage.Database) *Topology {
	t := &Topology{
		serverOf: make(map[ACID]int),
		acsOf:    make(map[int][]ACID),
		owner:    make(map[int]ACID),
		db:       db,
	}
	t.publishLocked()
	return t
}

// publishLocked snapshots the maps into a fresh immutable version and
// publishes it. mu must be held.
func (t *Topology) publishLocked() {
	parts := t.db.NumPartitions()
	for p := range t.owner {
		if p >= parts {
			parts = p + 1
		}
	}
	s := &topoSnap{
		serverOf: make([]int, t.nextAC),
		owner:    make([]ACID, parts),
		acsOf:    make([][]ACID, t.numServers),
		numACs:   int(t.nextAC),
	}
	for id, srv := range t.serverOf {
		s.serverOf[id] = srv
	}
	for i := range s.owner {
		s.owner[i] = NoAC
	}
	for p, ac := range t.owner {
		s.owner[p] = ac
	}
	for srv, acs := range t.acsOf {
		s.acsOf[srv] = acs
	}
	t.snap.Store(s)
}

// AddServer adds a server with cores ACs and returns their ids. Servers
// model the paper's Figure 2 layout (e.g. 2 servers × 4 cores); adding
// servers at runtime is the elasticity mechanism of §5.
func (t *Topology) AddServer(cores int) []ACID {
	t.mu.Lock()
	defer t.mu.Unlock()
	sid := t.numServers
	t.numServers++
	ids := make([]ACID, cores)
	for i := range ids {
		id := t.nextAC
		t.nextAC++
		t.serverOf[id] = sid
		t.acsOf[sid] = append(t.acsOf[sid], id)
		ids[i] = id
	}
	t.publishLocked()
	return ids
}

// NumServers returns the server count.
func (t *Topology) NumServers() int {
	return len(t.snap.Load().acsOf)
}

// NumACs returns the total AC count.
func (t *Topology) NumACs() int {
	return t.snap.Load().numACs
}

// ACs returns the ACs of one server. The returned slice is never
// mutated after the server's last core registered, so it is safe to
// hold.
func (t *Topology) ACs(server int) []ACID {
	return t.snap.Load().acsOf[server]
}

// AllACs returns every AC id in order.
func (t *Topology) AllACs() []ACID {
	n := t.snap.Load().numACs
	out := make([]ACID, 0, n)
	for i := ACID(0); i < ACID(n); i++ {
		out = append(out, i)
	}
	return out
}

// serverAt resolves an AC's server against one snapshot; unknown ACs
// report server 0, matching the old map-lookup zero value.
func serverAt(s *topoSnap, ac ACID) int {
	if ac < 0 || int(ac) >= len(s.serverOf) {
		return 0
	}
	return s.serverOf[ac]
}

// ServerOf returns the server hosting an AC. Lock-free: one snapshot
// load and an indexed read.
func (t *Topology) ServerOf(ac ACID) int {
	return serverAt(t.snap.Load(), ac)
}

// SameServer reports whether two ACs share a server (local shared-memory
// hop vs network hop). Lock-free.
func (t *Topology) SameServer(a, b ACID) bool {
	s := t.snap.Load()
	return serverAt(s, a) == serverAt(s, b)
}

// SetOwner assigns a storage partition to an AC. Re-assignment is
// allowed (repartitioning/elastic handoff) — callers are responsible for
// quiescing in-flight events, which the engines do by draining.
func (t *Topology) SetOwner(partition int, ac ACID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.owner[partition] = ac
	t.publishLocked()
}

// Owner returns the AC owning a partition. Lock-free: it sits on every
// routed operation of the dispatch hot path.
func (t *Topology) Owner(partition int) ACID {
	s := t.snap.Load()
	if partition < 0 || partition >= len(s.owner) || s.owner[partition] == NoAC {
		panic(fmt.Sprintf("core: partition %d has no owner", partition))
	}
	return s.owner[partition]
}

// OwnedPartitions returns the partitions owned by ac (ascending).
func (t *Topology) OwnedPartitions(ac ACID) []int {
	s := t.snap.Load()
	var out []int
	for p, owner := range s.owner {
		if owner == ac {
			out = append(out, p)
		}
	}
	return out
}

// DB returns the shared storage layer.
func (t *Topology) DB() *storage.Database { return t.db }

// Partition is shorthand for DB().Partition.
func (t *Topology) Partition(id int) *storage.Partition { return t.db.Partition(id) }

package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"anydb/internal/sim"
	"anydb/internal/stream"
)

// drainChunk sizes the reusable buffer one AC wakeup drains into — the
// amortization width of the consumer side (one RecvBatch per up to this
// many messages). Outbox flushing is per handled message and does not
// depend on this bound.
const drainChunk = 256

// Engine is the goroutine runtime: every AC runs as one goroutine
// draining a multi-producer mailbox — the paper's non-blocking queues
// realized with Go's native concurrency. The public anydb API and the
// examples run on this engine; the figures use SimCluster (same AC logic,
// virtual time).
//
// The send hot path is lock-free: routing goes through an immutable,
// atomically published table (ACID-indexed slice of mailboxes) rebuilt
// under mu on spawn/GrowServer. The mutex is only ever taken on the slow
// path — the brief window where elastic growth has advertised an AC in
// the topology before its goroutine spawned.
type Engine struct {
	Topo  *Topology
	Costs sim.CostModel

	// routes is the published routing table. The slice is immutable
	// once stored; rebuilds copy. Entries are nil for ACs whose mailbox
	// does not exist yet (resolved by boxSlow).
	routes atomic.Pointer[[]*stream.Mailbox[any]]

	// growMu serializes GrowServer against Stop, so a grow either
	// completes fully (its ACs' boxes are then closed by Stop) or
	// never touches the topology. Always acquired before mu.
	growMu sync.Mutex

	mu     sync.Mutex
	acs    map[ACID]*AC
	boxes  map[ACID]*stream.Mailbox[any] // authoritative; routes is its published snapshot
	wg     sync.WaitGroup
	start  time.Time
	client func(ev *Event)

	nextStream atomic.Uint64

	stopped bool
}

// NewEngine starts one goroutine per AC in topo. setup registers
// behaviors per AC before its goroutine starts.
func NewEngine(topo *Topology, setup func(ac *AC)) *Engine {
	return NewEngineAt(topo, setup, nil)
}

// NewEngineAt starts goroutines only for the ACs where local reports
// true (nil means all) — the multi-process entry point: a node runs its
// own server's ACs and registers transport outboxes (RegisterRemote)
// for every AC living in another process, so the send hot path stays
// one routing-table load regardless of where the destination runs.
func NewEngineAt(topo *Topology, setup func(ac *AC), local func(id ACID) bool) *Engine {
	e := &Engine{
		Topo:  topo,
		Costs: sim.DefaultCosts(),
		acs:   make(map[ACID]*AC),
		boxes: make(map[ACID]*stream.Mailbox[any]),
		start: time.Now(),
	}
	for _, id := range topo.AllACs() {
		if local != nil && !local(id) {
			continue
		}
		e.spawn(id, setup)
	}
	return e
}

// spawn creates and runs one AC. It refuses (returning false) once the
// engine stopped, so elastic growth racing Stop cannot leak goroutines.
func (e *Engine) spawn(id ACID, setup func(ac *AC)) bool {
	ac := NewAC(id)
	if setup != nil {
		setup(ac)
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	// boxSlow may have pre-created the mailbox for a send that raced
	// elastic growth; adopt it so nothing queued there is lost.
	box, ok := e.boxes[id]
	if !ok {
		box = stream.NewMailbox[any]()
		e.boxes[id] = box
		e.publishRoutesLocked()
	}
	e.acs[id] = ac
	e.wg.Add(1)
	e.mu.Unlock()

	go func() {
		defer e.wg.Done()
		ctx := &realCtx{e: e, self: id}
		buf := make([]any, drainChunk)
		for {
			n, ok := box.RecvBatch(buf)
			if !ok {
				return
			}
			for i := 0; i < n; i++ {
				switch v := buf[i].(type) {
				case *Event:
					ac.HandleEvent(ctx, v)
				case *DataMsg:
					ac.HandleData(ctx, v)
				default:
					panic(fmt.Sprintf("core: unknown message %T", buf[i]))
				}
				buf[i] = nil
				// Flush at handler return: everything one invocation
				// sent to one destination leaves as one push and one
				// wake, and the messages are visible before the next
				// handler on this AC runs.
				ctx.flush()
			}
			// Batch boundary: the natural group-commit point. The hook
			// sees every message of the drained batch already handled.
			if hook := ac.OnBatchEnd; hook != nil {
				hook(ctx)
				ctx.flush()
			}
		}
	}()
	return true
}

// publishRoutesLocked snapshots boxes into a fresh ACID-indexed table
// and publishes it. mu must be held.
func (e *Engine) publishRoutesLocked() {
	max := ACID(-1)
	for id := range e.boxes {
		if id > max {
			max = id
		}
	}
	table := make([]*stream.Mailbox[any], max+1)
	for id, b := range e.boxes {
		table[id] = b
	}
	e.routes.Store(&table)
}

// GrowServer adds a server and spawns its ACs at runtime (elasticity).
// It returns nil once the engine stopped — without having advertised
// the server in the topology, so nothing can route toward ACs that
// will never run.
func (e *Engine) GrowServer(cores int, setup func(ac *AC)) []ACID {
	e.growMu.Lock()
	defer e.growMu.Unlock()
	e.mu.Lock()
	stopped := e.stopped
	e.mu.Unlock()
	if stopped {
		return nil
	}
	ids := e.Topo.AddServer(cores)
	for _, id := range ids {
		// growMu excludes Stop for the whole call, so spawn cannot
		// refuse here: once the server is advertised, all its ACs run.
		e.spawn(id, setup)
	}
	return ids
}

// SetClient registers the completion callback; it runs on AC goroutines
// and must be cheap and thread-safe. Events delivered to it are recycled
// by the engine when the callback returns — implementations must not
// retain the *Event (payloads may be retained).
func (e *Engine) SetClient(fn func(ev *Event)) { e.client = fn }

// AC returns the component with the given id.
func (e *Engine) AC(id ACID) *AC {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.acs[id]
}

// NewStream allocates an engine-unique stream id. Lock-free: it sits on
// the query-submission path.
func (e *Engine) NewStream() StreamID {
	return StreamID(e.nextStream.Add(1))
}

// Inject delivers an event from outside (client requests).
func (e *Engine) Inject(dst ACID, ev *Event) {
	e.box(dst).Send(ev)
}

// InjectData delivers a data message from outside.
func (e *Engine) InjectData(dst ACID, msg *DataMsg) {
	e.box(dst).Send(msg)
}

// box resolves a destination mailbox. Steady state is one atomic load
// and an indexed read — no locks on the per-message send path.
func (e *Engine) box(id ACID) *stream.Mailbox[any] {
	if t := e.routes.Load(); t != nil {
		if table := *t; int(id) < len(table) && id >= 0 {
			if b := table[id]; b != nil {
				return b
			}
		}
	}
	return e.boxSlow(id)
}

// boxSlow handles the elastic-growth race window: a server is published
// in the topology before its AC goroutines spawn, and a concurrent
// sender can target such an AC before spawn published its mailbox.
// Create the mailbox now — deliveries buffer, and spawn adopts the box.
func (e *Engine) boxSlow(id ACID) *stream.Mailbox[any] {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[id]
	if !ok {
		if id < 0 || int(id) >= e.Topo.NumACs() {
			panic(fmt.Sprintf("core: unknown AC %d", id))
		}
		b = stream.NewMailbox[any]()
		if e.stopped {
			// Nothing will ever drain this box; reject deliveries the
			// same way sends to any stopped AC are rejected.
			b.Close()
		}
		e.boxes[id] = b
		e.publishRoutesLocked()
	}
	return b
}

// RegisterRemote installs an outbox mailbox for an AC that runs in
// another process: senders route to it exactly like to a local AC (same
// published table, same SendBatch semantics), and the transport's
// router drains it, serializing batches onto the peer connection. If a
// racing send already pre-created the box (boxSlow), it is adopted so
// nothing queued is lost. Stop closes the box like any other, which is
// what terminates the router's drain loop.
func (e *Engine) RegisterRemote(id ACID) *stream.Mailbox[any] {
	e.mu.Lock()
	defer e.mu.Unlock()
	box, ok := e.boxes[id]
	if !ok {
		box = stream.NewMailbox[any]()
		if e.stopped {
			box.Close()
		}
		e.boxes[id] = box
		e.publishRoutesLocked()
	}
	return box
}

// InjectClient delivers a completion event that arrived over the wire
// to the client callback, with the same ownership contract as a local
// Send(ClientAC, ev): the callback must not retain the event, and the
// engine recycles it when the callback returns.
func (e *Engine) InjectClient(ev *Event) {
	if e.client != nil {
		e.client(ev)
	}
	FreeEvent(ev)
}

// KillAC closes an AC's mailbox, dropping all further deliveries — the
// failure-injection hook used by the reliable-stream tests.
func (e *Engine) KillAC(id ACID) {
	e.box(id).Close()
}

// Stop shuts down all ACs and waits for their goroutines.
func (e *Engine) Stop() {
	// Let any in-flight grow finish registering its ACs so their boxes
	// are collected and closed below.
	e.growMu.Lock()
	defer e.growMu.Unlock()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	boxes := make([]*stream.Mailbox[any], 0, len(e.boxes))
	for _, b := range e.boxes {
		boxes = append(boxes, b)
	}
	e.mu.Unlock()
	for _, b := range boxes {
		b.Close()
	}
	e.wg.Wait()
}

// realCtx implements Context on wall-clock time. One instance lives per
// AC goroutine; its outbox accumulates the sends of the current handler
// invocation per destination, so a fan-out of N messages to one AC
// leaves as one mailbox push and one wake when the handler returns.
type realCtx struct {
	e    *Engine
	self ACID
	// perDst[dst] buffers pending messages; dirty lists destinations
	// with a non-empty buffer. Buffers keep their capacity across
	// flushes, so steady-state outboxing allocates nothing.
	perDst [][]any
	dirty  []ACID
}

func (c *realCtx) enqueue(dst ACID, m any) {
	if dst < 0 {
		panic(fmt.Sprintf("core: send to unknown AC %d", dst))
	}
	if int(dst) >= len(c.perDst) {
		grown := make([][]any, dst+1)
		copy(grown, c.perDst)
		c.perDst = grown
	}
	if len(c.perDst[dst]) == 0 {
		c.dirty = append(c.dirty, dst)
	}
	c.perDst[dst] = append(c.perDst[dst], m)
}

// flush pushes every per-destination buffer as one batch + one wake.
// SendBatch copies, so the buffers are immediately reusable.
func (c *realCtx) flush() {
	for _, dst := range c.dirty {
		msgs := c.perDst[dst]
		c.e.box(dst).SendBatch(msgs)
		clear(msgs)
		c.perDst[dst] = msgs[:0]
	}
	c.dirty = c.dirty[:0]
}

func (c *realCtx) Self() ACID    { return c.self }
func (c *realCtx) Now() sim.Time { return sim.Time(time.Since(c.e.start).Nanoseconds()) }

// Charge is a no-op for operation-scale costs (the real work already
// took real time), but large modelled windows — a query optimizer's
// compile time — occupy the AC for real, so beaming genuinely overlaps
// transfers with compilation on this runtime too. Pending outbox sends
// flush before the window starts: messages issued before the charge
// (beamed scans) must not wait out the modelled busy time.
func (c *realCtx) Charge(d sim.Time) {
	if d >= sim.Millisecond {
		c.flush()
		time.Sleep(time.Duration(d))
	}
}
func (c *realCtx) Costs() *sim.CostModel { return &c.e.Costs }
func (c *realCtx) Topology() *Topology   { return c.e.Topo }
func (c *realCtx) Offloaded(ACID) bool   { return false }

func (c *realCtx) Send(dst ACID, ev *Event) {
	if dst == ClientAC {
		// Client completions resolve synchronously (they gate Future
		// waiters); the callback must not retain the event.
		if c.e.client != nil {
			c.e.client(ev)
		}
		FreeEvent(ev)
		return
	}
	c.enqueue(dst, ev)
}

func (c *realCtx) SendData(dst ACID, msg *DataMsg) {
	if dst == ClientAC {
		return
	}
	c.enqueue(dst, msg)
}

package core

import (
	"fmt"
	"sync"
	"time"

	"anydb/internal/sim"
	"anydb/internal/stream"
)

// Engine is the goroutine runtime: every AC runs as one goroutine
// draining a multi-producer mailbox — the paper's non-blocking queues
// realized with Go's native concurrency. The public anydb API and the
// examples run on this engine; the figures use SimCluster (same AC logic,
// virtual time).
type Engine struct {
	Topo  *Topology
	Costs sim.CostModel

	// growMu serializes GrowServer against Stop, so a grow either
	// completes fully (its ACs' boxes are then closed by Stop) or
	// never touches the topology. Always acquired before mu.
	growMu sync.Mutex

	mu     sync.Mutex
	acs    map[ACID]*AC
	boxes  map[ACID]*stream.Mailbox[any]
	wg     sync.WaitGroup
	start  time.Time
	client func(ev *Event)

	nextStream  StreamID
	nextStreamM sync.Mutex

	stopped bool
}

// NewEngine starts one goroutine per AC in topo. setup registers
// behaviors per AC before its goroutine starts.
func NewEngine(topo *Topology, setup func(ac *AC)) *Engine {
	e := &Engine{
		Topo:  topo,
		Costs: sim.DefaultCosts(),
		acs:   make(map[ACID]*AC),
		boxes: make(map[ACID]*stream.Mailbox[any]),
		start: time.Now(),
	}
	for _, id := range topo.AllACs() {
		e.spawn(id, setup)
	}
	return e
}

// spawn creates and runs one AC. It refuses (returning false) once the
// engine stopped, so elastic growth racing Stop cannot leak goroutines.
func (e *Engine) spawn(id ACID, setup func(ac *AC)) bool {
	ac := NewAC(id)
	if setup != nil {
		setup(ac)
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return false
	}
	// box() may have pre-created the mailbox for a send that raced
	// elastic growth; adopt it so nothing queued there is lost.
	box, ok := e.boxes[id]
	if !ok {
		box = stream.NewMailbox[any]()
		e.boxes[id] = box
	}
	e.acs[id] = ac
	e.wg.Add(1)
	e.mu.Unlock()

	go func() {
		defer e.wg.Done()
		ctx := &realCtx{e: e, self: id}
		for {
			m, ok := box.Recv()
			if !ok {
				return
			}
			switch v := m.(type) {
			case *Event:
				ac.HandleEvent(ctx, v)
			case *DataMsg:
				ac.HandleData(ctx, v)
			default:
				panic(fmt.Sprintf("core: unknown message %T", m))
			}
		}
	}()
	return true
}

// GrowServer adds a server and spawns its ACs at runtime (elasticity).
// It returns nil once the engine stopped — without having advertised
// the server in the topology, so nothing can route toward ACs that
// will never run.
func (e *Engine) GrowServer(cores int, setup func(ac *AC)) []ACID {
	e.growMu.Lock()
	defer e.growMu.Unlock()
	e.mu.Lock()
	stopped := e.stopped
	e.mu.Unlock()
	if stopped {
		return nil
	}
	ids := e.Topo.AddServer(cores)
	for _, id := range ids {
		// growMu excludes Stop for the whole call, so spawn cannot
		// refuse here: once the server is advertised, all its ACs run.
		e.spawn(id, setup)
	}
	return ids
}

// SetClient registers the completion callback; it runs on AC goroutines
// and must be cheap and thread-safe.
func (e *Engine) SetClient(fn func(ev *Event)) { e.client = fn }

// AC returns the component with the given id.
func (e *Engine) AC(id ACID) *AC {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.acs[id]
}

// NewStream allocates an engine-unique stream id.
func (e *Engine) NewStream() StreamID {
	e.nextStreamM.Lock()
	defer e.nextStreamM.Unlock()
	e.nextStream++
	return e.nextStream
}

// Inject delivers an event from outside (client requests).
func (e *Engine) Inject(dst ACID, ev *Event) {
	e.box(dst).Send(ev)
}

// InjectData delivers a data message from outside.
func (e *Engine) InjectData(dst ACID, msg *DataMsg) {
	e.box(dst).Send(msg)
}

func (e *Engine) box(id ACID) *stream.Mailbox[any] {
	e.mu.Lock()
	defer e.mu.Unlock()
	b, ok := e.boxes[id]
	if !ok {
		// Elastic growth publishes a server in the topology before its
		// AC goroutines spawn; a concurrent sender can target such an
		// AC in that window. Create the mailbox now — deliveries
		// buffer, and spawn adopts the box.
		if id < 0 || int(id) >= e.Topo.NumACs() {
			panic(fmt.Sprintf("core: unknown AC %d", id))
		}
		b = stream.NewMailbox[any]()
		e.boxes[id] = b
	}
	return b
}

// KillAC closes an AC's mailbox, dropping all further deliveries — the
// failure-injection hook used by the reliable-stream tests.
func (e *Engine) KillAC(id ACID) {
	e.box(id).Close()
}

// Stop shuts down all ACs and waits for their goroutines.
func (e *Engine) Stop() {
	// Let any in-flight grow finish registering its ACs so their boxes
	// are collected and closed below.
	e.growMu.Lock()
	defer e.growMu.Unlock()
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	boxes := make([]*stream.Mailbox[any], 0, len(e.boxes))
	for _, b := range e.boxes {
		boxes = append(boxes, b)
	}
	e.mu.Unlock()
	for _, b := range boxes {
		b.Close()
	}
	e.wg.Wait()
}

// realCtx implements Context on wall-clock time.
type realCtx struct {
	e    *Engine
	self ACID
}

func (c *realCtx) Self() ACID    { return c.self }
func (c *realCtx) Now() sim.Time { return sim.Time(time.Since(c.e.start).Nanoseconds()) }

// Charge is a no-op for operation-scale costs (the real work already
// took real time), but large modelled windows — a query optimizer's
// compile time — occupy the AC for real, so beaming genuinely overlaps
// transfers with compilation on this runtime too.
func (c *realCtx) Charge(d sim.Time) {
	if d >= sim.Millisecond {
		time.Sleep(time.Duration(d))
	}
}
func (c *realCtx) Costs() *sim.CostModel { return &c.e.Costs }
func (c *realCtx) Topology() *Topology   { return c.e.Topo }
func (c *realCtx) Offloaded(ACID) bool   { return false }

func (c *realCtx) Send(dst ACID, ev *Event) {
	if dst == ClientAC {
		if c.e.client != nil {
			c.e.client(ev)
		}
		return
	}
	c.e.box(dst).Send(ev)
}

func (c *realCtx) SendData(dst ACID, msg *DataMsg) {
	if dst == ClientAC {
		return
	}
	c.e.box(dst).Send(msg)
}

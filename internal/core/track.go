package core

import (
	"fmt"
	"sync/atomic"

	"anydb/internal/storage"
)

// Pool-leak accounting: a test hook counting outstanding pooled objects
// (Event, DataMsg, storage.Batch). The transport codec boundary frees
// local copies of every message it serializes, which makes ownership
// slips (double free, missed free, free-after-send) easy to introduce
// silently — with tracking enabled they show up as a nonzero balance
// after a drained Close.
//
// Tracking is off by default: the only steady-state cost is one atomic
// flag load per Get/Free, preserving the 0-alloc hot paths. Enable from
// tests only; the counters are process-global, so concurrent clusters in
// one process share them (stress tests run sequentially).

var (
	trackPools atomic.Bool
	eventBal   atomic.Int64
	dataBal    atomic.Int64
)

// TrackPools toggles pool-leak accounting and resets the counters. Call
// with true before opening the cluster under test and read PoolBalances
// after its Close returned.
func TrackPools(on bool) {
	eventBal.Store(0)
	dataBal.Store(0)
	storage.TrackBatches(on)
	trackPools.Store(on)
}

// PoolBalances reports outstanding pooled objects (gets minus frees)
// since tracking was enabled: Events, DataMsgs, and storage Batches. All
// zero after a drained shutdown means every pooled message found its
// single-consumer death point.
func PoolBalances() (events, datas, batches int64) {
	return eventBal.Load(), dataBal.Load(), storage.BatchBalance()
}

// PoolBalanceString formats the balances for test failure messages.
func PoolBalanceString() string {
	e, d, b := PoolBalances()
	return fmt.Sprintf("events=%+d datamsgs=%+d batches=%+d", e, d, b)
}

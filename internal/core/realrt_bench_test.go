package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// BenchmarkDispatchHotPath measures the engine's steady-state message
// plane end to end on the dispatcher's traffic pattern: one router AC
// fans a 4-segment transaction out to four worker ACs (one outbox
// flush), the workers ack back, and the router completes the
// transaction toward the client — nine messages per op, all riding the
// lock-free routing table, pooled events, and batched mailbox pushes.
//
//	go test -bench DispatchHotPath -benchmem ./internal/core
func BenchmarkDispatchHotPath(b *testing.B) {
	topo := NewTopology(testDB(1))
	workers := topo.AddServer(4)
	router := topo.AddServer(1)[0]

	pending := make(map[TxnID]int)
	eng := NewEngine(topo, func(ac *AC) {
		if ac.ID == router {
			ac.Register(EvTxn, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
				id := ev.Txn
				FreeEvent(ev)
				for _, w := range workers {
					seg := GetEvent()
					seg.Kind, seg.Txn = EvSegment, id
					ctx.Send(w, seg)
				}
			}))
			ac.Register(EvAck, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
				id := ev.Txn
				FreeEvent(ev)
				if got := pending[id] + 1; got < len(workers) {
					pending[id] = got
					return
				}
				delete(pending, id)
				done := GetEvent()
				done.Kind, done.Txn = EvTxnDone, id
				ctx.Send(ClientAC, done)
			}))
			return
		}
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			id := ev.Txn
			FreeEvent(ev)
			ack := GetEvent()
			ack.Kind, ack.Txn = EvAck, id
			ctx.Send(router, ack)
		}))
	})
	defer eng.Stop()

	const window = 256
	sem := make(chan struct{}, window)
	var wg sync.WaitGroup
	wg.Add(b.N)
	eng.SetClient(func(*Event) {
		<-sem
		wg.Done()
	})

	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sem <- struct{}{}
		ev := GetEvent()
		ev.Kind, ev.Txn = EvTxn, TxnID(i+1)
		eng.Inject(router, ev)
	}
	wg.Wait()
}

// TestEngineBatchedFanoutFIFO pins the outbox semantics: all messages
// one handler invocation sends to one destination arrive as a contiguous
// FIFO run, and nothing is lost across many transactions.
func TestEngineBatchedFanoutFIFO(t *testing.T) {
	topo := NewTopology(testDB(1))
	ids := topo.AddServer(2)
	const txns, fan = 200, 8
	type rec struct {
		txn TxnID
		seq uint64
	}
	var mu sync.Mutex
	var got []rec
	done := make(chan struct{})
	eng := NewEngine(topo, func(ac *AC) {
		ac.Register(EvTxn, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			// Fan out: one handler, fan messages to one destination —
			// must leave as a single batch, preserving order.
			for i := 0; i < fan; i++ {
				ctx.Send(ids[1], &Event{Kind: EvSegment, Txn: ev.Txn, Seq: uint64(i)})
			}
		}))
		ac.Register(EvSegment, BehaviorFunc(func(ctx Context, _ *AC, ev *Event) {
			mu.Lock()
			got = append(got, rec{ev.Txn, ev.Seq})
			if len(got) == txns*fan {
				close(done)
			}
			mu.Unlock()
		}))
	})
	defer eng.Stop()
	for i := 1; i <= txns; i++ {
		eng.Inject(ids[0], &Event{Kind: EvTxn, Txn: TxnID(i)})
	}
	<-done
	// ids[0] handles transactions one at a time, so the receiver must
	// see every transaction's fan-out as one contiguous in-order run.
	for i, r := range got {
		if r.seq != uint64(i%fan) {
			t.Fatalf("message %d: got txn %d seq %d, want seq %d (batch split or reordered)",
				i, r.txn, r.seq, i%fan)
		}
	}
}

// TestEngineGrowServerConcurrentSends hammers the elastic-growth race
// window: senders target newly advertised ACs while their goroutines
// are still spawning, exercising the boxSlow path and the routing-table
// republish. Every message must be delivered.
func TestEngineGrowServerConcurrentSends(t *testing.T) {
	topo := NewTopology(testDB(1))
	topo.AddServer(1)
	var handled atomic.Int64
	setup := func(ac *AC) {
		ac.Register(EvSegment, BehaviorFunc(func(Context, *AC, *Event) {
			handled.Add(1)
		}))
	}
	eng := NewEngine(topo, setup)
	const rounds, sendsPerRound = 20, 50
	var want int64
	for r := 0; r < rounds; r++ {
		// Predict the grown server's AC ids, then race senders against
		// the spawn: they fire the moment the topology advertises the
		// ids, which can be before the mailboxes are published —
		// exactly the window boxSlow covers.
		base := ACID(topo.NumACs())
		ids := []ACID{base, base + 1}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for int(ids[1]) >= topo.NumACs() {
					// Spin until the server is advertised.
				}
				for i := 0; i < sendsPerRound; i++ {
					eng.Inject(ids[i%len(ids)], &Event{Kind: EvSegment})
				}
			}()
		}
		if got := eng.GrowServer(2, setup); len(got) != 2 || got[0] != ids[0] {
			t.Fatalf("grow round %d: ids %v, predicted %v", r, got, ids)
		}
		wg.Wait()
		want += 4 * sendsPerRound
	}
	eng.Stop()
	if handled.Load() != want {
		t.Fatalf("handled %d of %d sends across grow races", handled.Load(), want)
	}
}

// TestEngineNewStreamUnique checks the lock-free stream-id allocator
// under concurrency.
func TestEngineNewStreamUnique(t *testing.T) {
	topo := NewTopology(testDB(1))
	topo.AddServer(1)
	eng := NewEngine(topo, func(ac *AC) {})
	defer eng.Stop()
	const goroutines, per = 8, 1000
	ids := make([][]StreamID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids[g] = append(ids[g], eng.NewStream())
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[StreamID]bool, goroutines*per)
	for _, chunk := range ids {
		for _, id := range chunk {
			if id == 0 || seen[id] {
				t.Fatalf("stream id %d duplicated or zero", id)
			}
			seen[id] = true
		}
	}
}
